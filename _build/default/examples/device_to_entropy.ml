(* The full multilevel chain of paper Fig. 3, end to end, starting from
   transistor parameters rather than measured coefficients:

     MOSFET noise PSDs -> inverter -> ISF -> (b_th, b_fl) prediction
       -> event-level simulation of the predicted oscillator pair
       -> Fig. 6/7 measurement pipeline -> extracted (b_th, b_fl)
       -> entropy and design numbers.

     dune exec examples/device_to_entropy.exe

   The point is the closed loop: the device-level prediction feeds the
   simulator, and the measurement procedure recovers the prediction.  On
   real silicon the loop closes the other way (fit first, then
   calibrate the device model); Technology.fit_to_measurement does that
   step for the Cyclone III point. *)

let () =
  (* 1. Device level: the calibrated FPGA node. *)
  let node = Ptrng_device.Technology.find "cyclone3-fpga" in
  let ring = Ptrng_device.Technology.ring node in
  let f0 = ring.Ptrng_device.Technology.f0 in
  let predicted = ring.Ptrng_device.Technology.phase in
  Printf.printf "device prediction: f0 = %.1f MHz, b_th = %.1f, b_fl = %.3e\n"
    (f0 /. 1e6) predicted.Ptrng_noise.Psd_model.b_th
    predicted.Ptrng_noise.Psd_model.b_fl;

  (* 2. Build the oscillator pair carrying that prediction (per ring:
     the relative process doubles the coefficients). *)
  let relative =
    {
      Ptrng_noise.Psd_model.b_th = 2.0 *. predicted.Ptrng_noise.Psd_model.b_th;
      b_fl = 2.0 *. predicted.Ptrng_noise.Psd_model.b_fl;
    }
  in
  let pair = Ptrng_osc.Pair.of_relative ~f0 ~relative () in

  (* 3. Simulate and run the paper's measurement pipeline. *)
  Printf.printf "simulating 2^20 periods and measuring...\n%!";
  let analysis =
    Ptrng_model.Multilevel.characterize ~n_periods:(1 lsl 20)
      ~rng:(Ptrng_prng.Rng.create ~seed:99L ())
      pair
  in
  let e = analysis.extract in
  Printf.printf "measured:          b_th = %.1f, b_fl = %.3e\n"
    e.phase.Ptrng_noise.Psd_model.b_th e.phase.Ptrng_noise.Psd_model.b_fl;
  Printf.printf "prediction recovered within %.1f%% (thermal), %.1f%% (flicker)\n"
    (100.0
    *. Float.abs
         ((e.phase.Ptrng_noise.Psd_model.b_th /. relative.Ptrng_noise.Psd_model.b_th)
         -. 1.0))
    (100.0
    *. Float.abs
         ((e.phase.Ptrng_noise.Psd_model.b_fl /. relative.Ptrng_noise.Psd_model.b_fl)
         -. 1.0));

  (* 4. Entropy and design consequences. *)
  Printf.printf "\nthermal sigma     : %.2f ps (%.2f permil)\n"
    (e.sigma_thermal *. 1e12) (e.sigma_relative *. 1e3);
  Printf.printf "independence N    : %d (95%% thermal fraction)\n"
    (Ptrng_measure.Thermal_extract.independence_threshold e ~confidence:0.95);
  let k = Ptrng_model.Design.required_divisor ~extract:e () in
  Printf.printf "divisor for 0.997 : %d periods/sample (%.1f kbit/s)\n" k
    (Ptrng_model.Design.throughput ~extract:e ~divisor:k /. 1e3)
