(* Three evaluation standards, one generator, two operating points.

     dune exec examples/randomness_evaluation.exe

   The same simulated eRO-TRNG is evaluated at a sound accumulation
   length and at one that is too short (so the flicker-correlated phase
   barely refreshes between samples) by:

   - AIS31 procedure A  (pass/fail bounds, the paper's context),
   - NIST SP 800-22     (p-values),
   - SP 800-90B style   (min-entropy estimators).

   The point: the dependence the paper analyses at the jitter level is
   exactly what the Markov/t-tuple estimators and the serial/ApEn tests
   surface at the bit level. *)

let evaluate ~label ~divisor ~seed =
  Printf.printf "\n===== %s (divisor = %d) =====\n%!" label divisor;
  (* 100x-thermal generator so the simulation stays light; the relative
     strength of thermal vs flicker per *sample* is set by divisor. *)
  let paper = Ptrng_osc.Pair.paper_relative in
  let pair =
    Ptrng_osc.Pair.of_relative ~f0:Ptrng_osc.Pair.paper_f0
      ~relative:{ paper with Ptrng_noise.Psd_model.b_th = paper.b_th *. 100.0 }
      ()
  in
  let cfg = Ptrng_trng.Ero_trng.config ~divisor pair in
  let stream =
    Ptrng_trng.Ero_trng.generate
      (Ptrng_prng.Rng.create ~seed ())
      cfg ~bits:Ptrng_ais31.Procedure_a.block_bits
  in
  let bits = Ptrng_trng.Bitstream.to_bools stream in

  Printf.printf "bias %+.4f, lag-1 correlation %+.4f\n"
    (Ptrng_trng.Bitstream.bias stream)
    (Ptrng_trng.Bitstream.serial_correlation stream);

  let ais = Ptrng_ais31.Procedure_a.run_block bits in
  let ais_summary = Ptrng_ais31.Report.summarize ais in
  Printf.printf "AIS31 procedure A : %d/%d tests pass -> %s\n"
    ais_summary.Ptrng_ais31.Report.passed
    (ais_summary.Ptrng_ais31.Report.passed + ais_summary.Ptrng_ais31.Report.failed)
    (if ais_summary.Ptrng_ais31.Report.verdict then "PASS" else "FAIL");

  let nist = Ptrng_nist22.Sp80022.run_all bits in
  let nist_failed =
    List.filter (fun r -> not r.Ptrng_nist22.Sp80022.pass) nist
  in
  Printf.printf "SP 800-22         : %d/%d tests pass%s\n"
    (List.length nist - List.length nist_failed)
    (List.length nist)
    (match nist_failed with
    | [] -> ""
    | fs ->
      "  (failing: "
      ^ String.concat ", " (List.map (fun r -> r.Ptrng_nist22.Sp80022.name) fs)
      ^ ")");

  let estimates, aggregate = Ptrng_sp90b.Estimators.run_all bits in
  Printf.printf "SP 800-90B        : ";
  List.iter
    (fun (e : Ptrng_sp90b.Estimators.estimate) ->
      Printf.printf "%s %.3f  " e.name e.min_entropy)
    estimates;
  Printf.printf "\n                    aggregate min-entropy %.3f bit/bit\n" aggregate

let () =
  evaluate ~label:"sound accumulation" ~divisor:600 ~seed:11L;
  evaluate ~label:"too-short accumulation" ~divisor:40 ~seed:12L;
  Printf.printf
    "\nAt divisor 40 the sampled phase diffuses too little between samples:\n\
     the bits inherit the oscillator's correlated phase — MCV still sees a\n\
     balanced stream while Markov, serial and ApEn expose the dependence,\n\
     mirroring the paper's jitter-level analysis at the bit level.\n\
     Note the instrument ordering even at divisor 600: AIS31's fixed bounds\n\
     tolerate the residual +0.04 lag-1 correlation, the p-value tests flag\n\
     it, and the 90B aggregate quantifies what it costs in min-entropy.\n"
