examples/entropy_overestimation.mli:
