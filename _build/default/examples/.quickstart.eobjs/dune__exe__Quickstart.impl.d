examples/quickstart.ml: Printf Ptrng_ais31 Ptrng_measure Ptrng_model Ptrng_osc Ptrng_prng Ptrng_trng
