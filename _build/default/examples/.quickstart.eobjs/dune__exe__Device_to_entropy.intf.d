examples/device_to_entropy.mli:
