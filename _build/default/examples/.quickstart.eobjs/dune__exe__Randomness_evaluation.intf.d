examples/randomness_evaluation.mli:
