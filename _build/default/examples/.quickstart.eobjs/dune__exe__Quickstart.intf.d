examples/quickstart.mli:
