examples/technology_scaling.mli:
