examples/technology_scaling.ml: List Printf Ptrng_device Ptrng_noise
