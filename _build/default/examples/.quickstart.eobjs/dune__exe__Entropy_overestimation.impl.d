examples/entropy_overestimation.ml: Array List Printf Ptrng_measure Ptrng_model Ptrng_osc
