examples/coherent_sampling.ml: Int64 List Printf Ptrng_measure Ptrng_osc Ptrng_prng Ptrng_trng
