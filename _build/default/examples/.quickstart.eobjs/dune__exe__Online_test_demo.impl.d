examples/online_test_demo.ml: Array List Printf Ptrng_measure Ptrng_noise Ptrng_osc Ptrng_prng Ptrng_trng
