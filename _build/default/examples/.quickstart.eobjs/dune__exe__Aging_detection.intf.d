examples/aging_detection.mli:
