examples/online_test_demo.mli:
