examples/coherent_sampling.mli:
