examples/aging_detection.ml: Printf Ptrng_measure Ptrng_model Ptrng_noise Ptrng_osc Ptrng_prng
