examples/device_to_entropy.ml: Float Printf Ptrng_device Ptrng_measure Ptrng_model Ptrng_noise Ptrng_osc Ptrng_prng
