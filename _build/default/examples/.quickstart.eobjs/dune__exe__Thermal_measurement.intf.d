examples/thermal_measurement.mli:
