examples/randomness_evaluation.ml: List Printf Ptrng_ais31 Ptrng_nist22 Ptrng_noise Ptrng_osc Ptrng_prng Ptrng_sp90b Ptrng_trng String
