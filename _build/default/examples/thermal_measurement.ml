(* The paper's measurement pipeline end to end (Figs. 6 and 7):

     dune exec examples/thermal_measurement.exe

   1. simulate the two-ring differential circuit at event level;
   2. estimate the accumulated-jitter variance curve sigma_N^2;
   3. fit f0^2 sigma_N^2 = a N + b N^2;
   4. extract the thermal jitter sigma = sqrt(b_th / f0^3) and the
      independence threshold — and compare with the planted truth. *)

let () =
  let f0 = Ptrng_osc.Pair.paper_f0 in
  let truth = Ptrng_osc.Pair.paper_relative in
  let rng = Ptrng_prng.Rng.create ~seed:7L () in
  let pair = Ptrng_osc.Pair.paper_pair () in

  Printf.printf "simulating 2^20 periods of both rings...\n%!";
  let analysis = Ptrng_model.Multilevel.characterize ~n_periods:(1 lsl 20) ~rng pair in

  Printf.printf "\n%8s  %14s  %14s  %9s\n" "N" "measured" "model" "ratio";
  Array.iter
    (fun (p : Ptrng_measure.Variance_curve.point) ->
      let model = Ptrng_model.Spectral.scaled truth ~f0 ~n:p.n in
      Printf.printf "%8d  %14.6e  %14.6e  %9.3f\n" p.n p.scaled model (p.scaled /. model))
    analysis.ideal_curve;

  let e = analysis.extract in
  let se_th, se_fl = Ptrng_measure.Fit.phase_se_of analysis.fit in
  Printf.printf "\nextracted b_th  : %8.2f +- %.2f   (planted %.2f)\n"
    e.phase.Ptrng_noise.Psd_model.b_th se_th truth.Ptrng_noise.Psd_model.b_th;
  Printf.printf "extracted b_fl  : %8.3e +- %.1e (planted %.3e)\n"
    e.phase.Ptrng_noise.Psd_model.b_fl se_fl truth.Ptrng_noise.Psd_model.b_fl;
  Printf.printf "thermal sigma   : %8.3f ps            (planted 15.89 ps)\n"
    (e.sigma_thermal *. 1e12);
  Printf.printf "independence N  : %8d               (paper 281)\n"
    (Ptrng_measure.Thermal_extract.independence_threshold e ~confidence:0.95);

  (* The Bienaymé check that carries the paper's whole argument: the
     variance of a sum of independent variables is the sum of the
     variances — if that fails, the realizations are dependent. *)
  let ratios = Ptrng_model.Bienayme.departure_ratio analysis.ideal_curve in
  Printf.printf "\nBienaymé departure sigma_N^2 / (2 N sigma^2):\n";
  Array.iter
    (fun (n, r) -> if n >= 64 then Printf.printf "  N=%6d: %6.2f\n" n r)
    ratios;
  let slope, se = analysis.growth_exponent in
  Printf.printf
    "\nlog-log growth exponent: %.3f +- %.3f — pure independence predicts 1;\n\
     the flicker-driven drift toward 2 is the paper's dependence signature.\n"
    slope se
