(* How badly does the independence assumption overstate security?

     dune exec examples/entropy_overestimation.exe

   A designer measures accumulated jitter over N periods, divides by 2N
   (Bienaymé) and plugs the resulting per-period sigma into the entropy
   model.  Because flicker noise inflates sigma_N^2 quadratically, the
   longer the measurement, the larger the phantom entropy.  This is the
   security failure mode of paper Section V. *)

let () =
  let extract =
    Ptrng_measure.Thermal_extract.of_phase ~f0:Ptrng_osc.Pair.paper_f0
      Ptrng_osc.Pair.paper_relative
  in
  List.iter
    (fun sampling_periods ->
      Printf.printf "\nsampling interval K = %d oscillator periods\n" sampling_periods;
      Printf.printf "%8s  %14s  %10s  %10s  %12s\n" "N" "sigma_naive[ps]" "H_naive"
        "H_true" "phantom bits";
      let ns = [| 10; 100; 281; 1000; 5354; 30000; 100000 |] in
      let rows =
        Ptrng_model.Compare.overestimation_table ~extract ~sampling_periods ~ns
      in
      Array.iter
        (fun (r : Ptrng_model.Compare.row) ->
          Printf.printf "%8d  %14.2f  %10.5f  %10.5f  %12.5f\n" r.n
            (r.sigma_naive *. 1e12) r.entropy_naive r.entropy_true r.overestimate)
        rows)
    [ 100; 300; 1000 ];
  Printf.printf
    "\nReading: at K = 300 the generator's true entropy is far from full;\n\
     a sigma estimated from a 100000-period measurement would claim it is\n\
     essentially perfect.  Post-processing sized from H_naive (e.g. a parity\n\
     filter chosen for 'almost 1 bit/bit') silently under-corrects.\n"
