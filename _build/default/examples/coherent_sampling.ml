(* Coherent sampling (the paper's ref. [5] family) on free-running
   rings: how the rational-ratio sweep turns jitter into bits, and how
   the sweep resolution kd trades throughput against robustness.

     dune exec examples/coherent_sampling.exe

   The quality knob is the ratio of accumulated jitter to the sweep
   step T1/kd.  Too few critical samples per pattern and the output is
   nearly deterministic; enough of them and every pattern parity is a
   fresh coin flip. *)

let f0 = Ptrng_osc.Pair.paper_f0

let () =
  let extract =
    Ptrng_measure.Thermal_extract.of_phase ~f0 Ptrng_osc.Pair.paper_relative
  in
  Printf.printf "thermal sigma = %.2f ps; sweep ratios km/kd with km = kd + 1\n\n"
    (extract.sigma_thermal *. 1e12);
  Printf.printf "%6s %18s %10s %12s %14s\n" "kd" "critical fraction" "bias"
    "serial corr" "bits/s";
  List.iter
    (fun kd ->
      let cfg = Ptrng_trng.Coherent.config ~f0 ~km:(kd + 1) ~kd () in
      let frac =
        Ptrng_trng.Coherent.critical_fraction cfg
          ~sigma_period:extract.sigma_thermal
      in
      let bits =
        Ptrng_trng.Coherent.generate
          (Ptrng_prng.Rng.create ~seed:(Int64.of_int (100 + kd)) ())
          cfg ~bits:3000
      in
      Printf.printf "%6d %18.4f %+10.4f %+12.4f %14.0f\n" kd frac
        (Ptrng_trng.Bitstream.bias bits)
        (Ptrng_trng.Bitstream.serial_correlation bits)
        (f0 /. float_of_int kd))
    [ 16; 64; 156; 512 ];
  Printf.printf
    "\nSmall kd: few critical samples per pattern -> biased, correlated output.\n\
     Large kd: jitter spans many sweep steps -> clean bits at lower rate.\n\
     The sigma feeding this trade-off must be the thermal one: crediting\n\
     total (flicker-inflated) jitter overstates the critical fraction just\n\
     as it overstates entropy for the eRO-TRNG.\n"
