(* The paper's closing prediction: as CMOS nodes shrink, flicker noise
   (PSD ~ 1/(W L^2)) overtakes thermal noise, so the regime where jitter
   realizations may be treated as independent collapses.

     dune exec examples/technology_scaling.exe

   We build each preset node's ring oscillator from transistor-level
   parameters (Mosfet -> Inverter -> ISF -> Hajimiri conversion) and
   evaluate the paper's r_N threshold on the predicted coefficients. *)

let () =
  Printf.printf "%-16s %9s %11s %12s %11s %8s %8s\n" "node" "f0[MHz]"
    "sigma[ps]" "flicker/th" "corner[Hz]" "N(95%)" "N(99%)";
  List.iter
    (fun node ->
      let ring = Ptrng_device.Technology.ring node in
      let phase = ring.Ptrng_device.Technology.phase in
      let f0 = ring.Ptrng_device.Technology.f0 in
      let sigma = sqrt (Ptrng_noise.Psd_model.thermal_period_jitter_var ~f0 phase) in
      let threshold c =
        Ptrng_device.Technology.independence_threshold_n phase ~f0 ~confidence:c
      in
      Printf.printf "%-16s %9.1f %11.3f %12.2e %11.2e %8d %8d\n"
        node.Ptrng_device.Technology.name (f0 /. 1e6) (sigma *. 1e12)
        (phase.Ptrng_noise.Psd_model.b_fl /. phase.Ptrng_noise.Psd_model.b_th)
        (Ptrng_noise.Psd_model.corner_frequency phase)
        (threshold 0.95) (threshold 0.99))
    Ptrng_device.Technology.presets;

  (* Show the knob behind the trend: flicker rises as 1/L^2 at fixed
     everything-else. *)
  Printf.printf "\nIsolating the 1/L^2 law (65 nm node, channel length sweep):\n";
  let base = Ptrng_device.Technology.find "asic-65nm" in
  List.iter
    (fun scale ->
      let node =
        { base with
          Ptrng_device.Technology.name = Printf.sprintf "l x %.2f" scale;
          l = base.Ptrng_device.Technology.l *. scale;
          w = base.Ptrng_device.Technology.w *. scale;
        }
      in
      let ring = Ptrng_device.Technology.ring node in
      let p = ring.Ptrng_device.Technology.phase in
      Printf.printf "  L scale %.2f: b_fl/b_th = %.3e (expect ~ 1/scale^3 with W = 2L)\n"
        scale (p.Ptrng_noise.Psd_model.b_fl /. p.Ptrng_noise.Psd_model.b_th))
    [ 1.0; 0.7; 0.5; 0.35 ]
