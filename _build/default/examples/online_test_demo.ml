(* The embedded thermal-noise test from the paper's conclusion, facing
   the attack it was designed to catch.

     dune exec examples/online_test_demo.exe

   Two parts:

   1. Feasibility at the paper's operating point.  The counter only
      resolves the thermal term above its quantization floor, so we
      compute (analytically) how many windows the two-coefficient fit
      needs for a usable estimate — the honest cost of the paper's
      "fast and precise" proposal.

   2. A live demonstration on a generator with 100x the paper's thermal
      noise (where the averaging budget fits in a simulation), showing
      the test pass on a healthy device and alarm under both a
      frequency-injection lock and a stealthy thermal-only quench. *)

let f0 = Ptrng_osc.Pair.paper_f0
let paper = Ptrng_osc.Pair.paper_relative

let () =
  Printf.printf "Part 1 — averaging budget at the paper's jitter level\n";
  Printf.printf "%12s %16s %18s\n" "precision" "windows/point" "silicon time [s]";
  let ns = [| 4096; 16384; 65536; 262144 |] in
  List.iter
    (fun precision ->
      let w =
        Ptrng_measure.Online_test.windows_for_precision ~phase:paper ~floor:0.33 ~ns
          ~f0 ~rel_precision:precision
      in
      let cycles = Array.fold_left (fun acc n -> acc + (n * w)) 0 ns in
      Printf.printf "%11.0f%% %16d %18.2f\n" (precision *. 100.0) w
        (float_of_int cycles /. f0))
    [ 0.5; 0.25; 0.1 ];
  Printf.printf
    "-> cheap in gates, expensive in averaging time: a 25%%-accurate thermal\n\
    \   estimate needs seconds of counting at 103 MHz.  (Quantization floor\n\
    \   0.33 counts^2, grid up to N = 262144.)\n\n";

  Printf.printf "Part 2 — live demo on a 100x-thermal generator\n";
  let strong =
    Ptrng_osc.Pair.of_relative ~f0
      ~relative:{ paper with Ptrng_noise.Psd_model.b_th = paper.b_th *. 100.0 }
      ()
  in
  let reference = paper.Ptrng_noise.Psd_model.b_th *. 100.0 in
  let cfg =
    { Ptrng_measure.Online_test.ns = [| 512; 2048; 8192; 32768 |];
      windows = 64;
      min_fraction = 0.4 }
  in
  let evaluate ~label ~seed pair =
    let n = Ptrng_measure.Online_test.required_cycles cfg + 8192 in
    let p1, p2 = Ptrng_osc.Pair.simulate (Ptrng_prng.Rng.create ~seed ()) pair ~n in
    let edges1 = Ptrng_osc.Oscillator.edges_of_periods p1 in
    let edges2 = Ptrng_osc.Oscillator.edges_of_periods p2 in
    let v =
      Ptrng_measure.Online_test.run cfg ~f0 ~reference_b_th:reference ~edges1 ~edges2
    in
    Printf.printf "%-34s b_th %10.0f | total@maxN %8.2f | %s\n" label v.b_th_est
      v.total_var_max_n
      (if v.pass then "PASS" else "*** ALARM ***");
    v
  in
  let v_clean = evaluate ~label:"healthy generator" ~seed:100L strong in
  let injected = Ptrng_trng.Attack.frequency_injection ~lock_strength:0.95 strong in
  let v_inj = evaluate ~label:"injection attack (95% lock)" ~seed:101L injected in
  let quenched = Ptrng_trng.Attack.thermal_quench ~factor:0.05 strong in
  let v_q = evaluate ~label:"stealth thermal quench (x0.05)" ~seed:102L quenched in
  Printf.printf
    "\nBoth attacks trip the thermal-coefficient alarm (clean %.0f -> lock %.0f,\n\
     quench %.0f against a %.0f threshold).  At the paper's real jitter level\n\
     flicker dominates every total-jitter metric, so only this statistic is\n\
     tied to the entropy actually delivered — at the averaging cost Part 1\n\
     quantifies.\n"
    v_clean.b_th_est v_inj.b_th_est v_q.b_th_est
    (cfg.min_fraction *. reference)
