open Ptrng_ais31

let good_bits n =
  let rng = Testkit.rng ~seed:0xA1531L () in
  Array.init n (fun _ -> Ptrng_prng.Rng.bool rng)

let biased_bits ~p n =
  let rng = Testkit.rng ~seed:0xB1A5L () in
  Array.init n (fun _ -> Ptrng_prng.Distributions.bernoulli rng ~p)

let block () = good_bits Procedure_a.block_bits

let procedure_a_tests =
  [
    Testkit.case "T1 passes on balanced bits, fails on constant" (fun () ->
        Testkit.check_true "good" (Procedure_a.t1_monobit (block ())).Report.pass;
        Testkit.check_false "constant"
          (Procedure_a.t1_monobit (Array.make 20000 true)).Report.pass);
    Testkit.case "T1 boundary values" (fun () ->
        let mk ones =
          Array.init 20000 (fun i -> i < ones)
        in
        Testkit.check_true "9655 passes" (Procedure_a.t1_monobit (mk 9655)).Report.pass;
        Testkit.check_false "9654 fails" (Procedure_a.t1_monobit (mk 9654)).Report.pass;
        Testkit.check_true "10345 passes" (Procedure_a.t1_monobit (mk 10345)).Report.pass;
        Testkit.check_false "10346 fails" (Procedure_a.t1_monobit (mk 10346)).Report.pass);
    Testkit.case "T2 passes on random bits, fails on a stuck nibble" (fun () ->
        Testkit.check_true "good" (Procedure_a.t2_poker (block ())).Report.pass;
        (* Repeating 0101...: only two nibble values occur. *)
        let stuck = Array.init 20000 (fun i -> i land 1 = 1) in
        Testkit.check_false "stuck" (Procedure_a.t2_poker stuck).Report.pass);
    Testkit.case "T3 passes on random bits, fails on long blocks" (fun () ->
        Testkit.check_true "good" (Procedure_a.t3_runs (block ())).Report.pass;
        (* Runs of length 8 everywhere: every class is out of bounds. *)
        let blocky = Array.init 20000 (fun i -> i / 8 land 1 = 0) in
        Testkit.check_false "blocky" (Procedure_a.t3_runs blocky).Report.pass);
    Testkit.case "T4 long-run detection" (fun () ->
        Testkit.check_true "good" (Procedure_a.t4_long_run (block ())).Report.pass;
        let bits = block () in
        Array.fill bits 5000 34 true;
        Testkit.check_false "34-run planted" (Procedure_a.t4_long_run bits).Report.pass);
    Testkit.case "T5 passes on random bits, fails on periodic ones" (fun () ->
        Testkit.check_true "good" (Procedure_a.t5_autocorrelation (block ())).Report.pass;
        (* Period-16 pattern: perfect correlation at tau = 16. *)
        let periodic = Array.init 20000 (fun i -> i / 8 land 1 = 0) in
        Testkit.check_false "periodic" (Procedure_a.t5_autocorrelation periodic).Report.pass);
    Testkit.case "T0 detects duplicate words" (fun () ->
        let need = 48 * 65536 in
        let bits = good_bits need in
        let stream = Ptrng_trng.Bitstream.of_bools bits in
        Testkit.check_true "random distinct" (Procedure_a.t0_disjointness stream).Report.pass;
        (* Duplicate the first word into the second slot. *)
        Array.blit bits 0 bits 48 48;
        let stream = Ptrng_trng.Bitstream.of_bools bits in
        Testkit.check_false "planted duplicate"
          (Procedure_a.t0_disjointness stream).Report.pass);
    Testkit.case "run_block applies T1-T5" (fun () ->
        let results = Procedure_a.run_block (block ()) in
        Alcotest.(check int) "five tests" 5 (List.length results);
        List.iter (fun r -> Testkit.check_true r.Report.name r.Report.pass) results);
    Testkit.case "run summarizes multiple blocks" (fun () ->
        let stream = Ptrng_trng.Bitstream.of_bools (good_bits (2 * Procedure_a.block_bits)) in
        let summary = Procedure_a.run stream in
        Alcotest.(check int) "10 results" 10 (List.length summary.Report.results);
        Testkit.check_true "verdict" summary.Report.verdict);
    Testkit.case "run fails a heavily biased stream" (fun () ->
        let stream =
          Ptrng_trng.Bitstream.of_bools (biased_bits ~p:0.6 Procedure_a.block_bits)
        in
        let summary = Procedure_a.run stream in
        Testkit.check_false "verdict" summary.Report.verdict);
    Testkit.case "block length is enforced" (fun () ->
        Alcotest.check_raises "short"
          (Invalid_argument "Procedure_a.t1_monobit: block must be 20000 bits")
          (fun () -> ignore (Procedure_a.t1_monobit (Array.make 100 true))));
  ]

let procedure_b_tests =
  [
    Testkit.case "T6 uniformity pass and fail" (fun () ->
        Testkit.check_true "good"
          (Procedure_b.t6_uniform ~k:1 ~a:0.025 (good_bits 100000)).Report.pass;
        Testkit.check_false "biased"
          (Procedure_b.t6_uniform ~k:1 ~a:0.025 (biased_bits ~p:0.56 100000)).Report.pass);
    Testkit.case "T6 with 2-bit words" (fun () ->
        Testkit.check_true "good"
          (Procedure_b.t6_uniform ~k:2 ~a:0.02 (good_bits 100000)).Report.pass);
    Testkit.case "T7 homogeneity pass and fail" (fun () ->
        Testkit.check_true "good"
          (Procedure_b.t7_homogeneity ~k:4 (good_bits 400000)).Report.pass;
        (* First half fair, second half biased: inhomogeneous. *)
        let drifted =
          Array.append (good_bits 200000) (biased_bits ~p:0.58 200000)
        in
        Testkit.check_false "drift" (Procedure_b.t7_homogeneity ~k:4 drifted).Report.pass);
    Testkit.case "coron_g values" (fun () ->
        Testkit.check_abs ~tol:0.0 "g(1)" 0.0 (Procedure_b.coron_g 1);
        Testkit.check_rel ~tol:1e-12 "g(2)" (1.0 /. log 2.0) (Procedure_b.coron_g 2);
        Testkit.check_rel ~tol:1e-12 "g(3)" (1.5 /. log 2.0) (Procedure_b.coron_g 3);
        Testkit.check_rel ~tol:1e-12 "g(4)" ((1.0 +. 0.5 +. (1.0 /. 3.0)) /. log 2.0)
          (Procedure_b.coron_g 4));
    Testkit.case "T8 estimates ~8 bits for uniform bytes" (fun () ->
        let bits = good_bits (Procedure_b.required_bits_t8 ~q:2560 ~k:256000) in
        let r = Procedure_b.t8_entropy bits in
        Testkit.check_true "passes" r.Report.pass;
        Testkit.check_abs ~tol:0.02 "close to 8" 8.0 r.Report.statistic);
    Testkit.case "T8 fails on biased bits" (fun () ->
        let bits = biased_bits ~p:0.6 (Procedure_b.required_bits_t8 ~q:2560 ~k:256000) in
        let r = Procedure_b.t8_entropy bits in
        Testkit.check_false "fails" r.Report.pass;
        (* Entropy of a p=0.6 byte source: 8 h(0.6) ~ 7.77. *)
        Testkit.check_abs ~tol:0.05 "near theoretical entropy" 7.7704 r.Report.statistic);
    Testkit.case "run composes available tests" (fun () ->
        let stream = Ptrng_trng.Bitstream.of_bools (good_bits 500000) in
        let summary = Procedure_b.run stream in
        (* T6 (k=1,2) and T7; not enough bits for T8. *)
        Alcotest.(check int) "tests" 3 (List.length summary.Report.results);
        Testkit.check_true "verdict" summary.Report.verdict);
  ]

let report_tests =
  [
    Testkit.case "summarize applies the retry allowance" (fun () ->
        let pass = Report.make ~name:"a" ~statistic:0.0 ~pass:true ~detail:"" in
        let fail = Report.make ~name:"b" ~statistic:0.0 ~pass:false ~detail:"" in
        Testkit.check_true "one failure tolerated"
          (Report.summarize [ pass; fail ]).Report.verdict;
        Testkit.check_false "two failures rejected"
          (Report.summarize [ pass; fail; fail ]).Report.verdict;
        Testkit.check_false "strict mode"
          (Report.summarize ~allowed_failures:0 [ pass; fail ]).Report.verdict);
    Testkit.case "pp renders a table" (fun () ->
        let summary =
          Report.summarize
            [ Report.make ~name:"T1 monobit" ~statistic:10000.0 ~pass:true ~detail:"ok" ]
        in
        let text = Format.asprintf "%a" Report.pp summary in
        Testkit.check_true "contains name"
          (String.length text > 0
          && String.length (String.concat "" (String.split_on_char 'T' text))
             < String.length text));
  ]

let () =
  Alcotest.run "ptrng_ais31"
    [
      ("procedure_a", procedure_a_tests);
      ("procedure_b", procedure_b_tests);
      ("report", report_tests);
    ]
