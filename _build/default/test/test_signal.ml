open Ptrng_signal

let pi = Float.pi

(* O(n^2) reference DFT for validating the fast paths. *)
let naive_dft re im =
  let n = Array.length re in
  let outr = Array.make n 0.0 and outi = Array.make n 0.0 in
  for k = 0 to n - 1 do
    for j = 0 to n - 1 do
      let ang = -2.0 *. pi *. float_of_int (j * k) /. float_of_int n in
      outr.(k) <- outr.(k) +. (re.(j) *. cos ang) -. (im.(j) *. sin ang);
      outi.(k) <- outi.(k) +. (re.(j) *. sin ang) +. (im.(j) *. cos ang)
    done
  done;
  (outr, outi)

let max_abs_diff a b =
  let d = ref 0.0 in
  Array.iteri (fun i v -> d := Float.max !d (Float.abs (v -. b.(i)))) a;
  !d

let random_signal n =
  let rng = Testkit.rng () in
  Array.init n (fun _ -> Ptrng_prng.Rng.float rng -. 0.5)

let fft_tests =
  [
    Testkit.case "pow2 helpers" (fun () ->
        Testkit.check_true "1 is pow2" (Fft.is_pow2 1);
        Testkit.check_true "1024 is pow2" (Fft.is_pow2 1024);
        Testkit.check_false "0 is not" (Fft.is_pow2 0);
        Testkit.check_false "12 is not" (Fft.is_pow2 12);
        Alcotest.(check int) "next_pow2 12" 16 (Fft.next_pow2 12);
        Alcotest.(check int) "next_pow2 16" 16 (Fft.next_pow2 16);
        Alcotest.(check int) "next_pow2 0" 1 (Fft.next_pow2 0));
    Testkit.case "impulse transforms to flat spectrum" (fun () ->
        let n = 64 in
        let re = Array.make n 0.0 and im = Array.make n 0.0 in
        re.(0) <- 1.0;
        Fft.forward_pow2 ~re ~im;
        Array.iter (fun v -> Testkit.check_abs ~tol:1e-12 "re" 1.0 v) re;
        Array.iter (fun v -> Testkit.check_abs ~tol:1e-12 "im" 0.0 v) im);
    Testkit.case "single tone lands in one bin" (fun () ->
        let n = 256 and k0 = 10 in
        let re =
          Array.init n (fun j -> cos (2.0 *. pi *. float_of_int (k0 * j) /. float_of_int n))
        in
        let im = Array.make n 0.0 in
        Fft.forward_pow2 ~re ~im;
        Testkit.check_abs ~tol:1e-9 "peak bin" (float_of_int n /. 2.0) re.(k0);
        Testkit.check_abs ~tol:1e-9 "mirror bin" (float_of_int n /. 2.0) re.(n - k0);
        Testkit.check_abs ~tol:1e-9 "dc" 0.0 re.(0));
    Testkit.case "forward then inverse is identity" (fun () ->
        let n = 1024 in
        let x = random_signal n in
        let re = Array.copy x and im = Array.make n 0.0 in
        Fft.forward_pow2 ~re ~im;
        Fft.inverse_pow2 ~re ~im;
        Testkit.check_abs ~tol:1e-10 "round trip" 0.0 (max_abs_diff re x));
    Testkit.case "matches naive DFT on pow2 length" (fun () ->
        let n = 64 in
        let x = random_signal n and y = random_signal n in
        let fr, fi = Fft.dft ~re:x ~im:y in
        let nr, ni = naive_dft x y in
        Testkit.check_abs ~tol:1e-9 "re" 0.0 (max_abs_diff fr nr);
        Testkit.check_abs ~tol:1e-9 "im" 0.0 (max_abs_diff fi ni));
    Testkit.case "bluestein matches naive DFT on awkward lengths" (fun () ->
        List.iter
          (fun n ->
            let x = random_signal n and y = random_signal n in
            let fr, fi = Fft.dft ~re:x ~im:y in
            let nr, ni = naive_dft x y in
            Testkit.check_abs ~tol:1e-8 "re" 0.0 (max_abs_diff fr nr);
            Testkit.check_abs ~tol:1e-8 "im" 0.0 (max_abs_diff fi ni))
          [ 3; 7; 12; 37; 100; 241 ]);
    Testkit.case "bluestein round trip" (fun () ->
        let n = 137 in
        let x = random_signal n in
        let fr, fi = Fft.dft ~re:x ~im:(Array.make n 0.0) in
        let br, _ = Fft.idft ~re:fr ~im:fi in
        Testkit.check_abs ~tol:1e-9 "round trip" 0.0 (max_abs_diff br x));
    Testkit.case "parseval holds" (fun () ->
        let n = 512 in
        let x = random_signal n in
        let fr, fi = Fft.rfft x in
        let time = Array.fold_left (fun a v -> a +. (v *. v)) 0.0 x in
        let freq = ref 0.0 in
        for k = 0 to n - 1 do
          freq := !freq +. (fr.(k) *. fr.(k)) +. (fi.(k) *. fi.(k))
        done;
        Testkit.check_rel ~tol:1e-10 "parseval" time (!freq /. float_of_int n));
    Testkit.case "linearity" (fun () ->
        let n = 128 in
        let x = random_signal n and y = random_signal n in
        let z = Array.init n (fun i -> (2.0 *. x.(i)) +. (3.0 *. y.(i))) in
        let xr, xi = Fft.rfft x and yr, yi = Fft.rfft y and zr, zi = Fft.rfft z in
        let cr = Array.init n (fun k -> (2.0 *. xr.(k)) +. (3.0 *. yr.(k))) in
        let ci = Array.init n (fun k -> (2.0 *. xi.(k)) +. (3.0 *. yi.(k))) in
        Testkit.check_abs ~tol:1e-9 "re" 0.0 (max_abs_diff zr cr);
        Testkit.check_abs ~tol:1e-9 "im" 0.0 (max_abs_diff zi ci));
    Testkit.case "large transform keeps precision" (fun () ->
        let n = 1 lsl 18 in
        let x = random_signal n in
        let re = Array.copy x and im = Array.make n 0.0 in
        Fft.forward_pow2 ~re ~im;
        Fft.inverse_pow2 ~re ~im;
        Testkit.check_abs ~tol:1e-9 "round trip" 0.0 (max_abs_diff re x));
    Testkit.case "convolve_real matches naive convolution" (fun () ->
        let a = [| 1.0; 2.0; 3.0 |] and b = [| 0.5; -1.0; 0.25; 2.0 |] in
        let naive = Array.make 6 0.0 in
        Array.iteri
          (fun i av ->
            Array.iteri (fun j bv -> naive.(i + j) <- naive.(i + j) +. (av *. bv)) b)
          a;
        let fast = Fft.convolve_real a b in
        Alcotest.(check int) "length" 6 (Array.length fast);
        Testkit.check_abs ~tol:1e-10 "values" 0.0 (max_abs_diff fast naive));
    Testkit.case "rejects mismatched arrays" (fun () ->
        Alcotest.check_raises "mismatch" (Invalid_argument "Fft: re/im length mismatch")
          (fun () -> Fft.forward_pow2 ~re:(Array.make 4 0.0) ~im:(Array.make 8 0.0)));
    Testkit.case "rejects non-pow2 in-place" (fun () ->
        Alcotest.check_raises "12 points"
          (Invalid_argument "Fft: length not a power of two")
          (fun () -> Fft.forward_pow2 ~re:(Array.make 12 0.0) ~im:(Array.make 12 0.0)));
  ]

let window_tests =
  [
    Testkit.case "rectangular has unit gain" (fun () ->
        let w = Window.make Window.Rectangular 64 in
        Testkit.check_rel ~tol:1e-12 "gain" 1.0 (Window.coherent_gain w);
        Testkit.check_rel ~tol:1e-12 "sum_sq" 64.0 (Window.sum_sq w);
        Testkit.check_rel ~tol:1e-12 "enbw" 1.0 (Window.enbw_bins w));
    Testkit.case "hann coherent gain is 0.5" (fun () ->
        let w = Window.make Window.Hann 1024 in
        Testkit.check_rel ~tol:1e-10 "gain" 0.5 (Window.coherent_gain w);
        Testkit.check_rel ~tol:1e-3 "enbw" 1.5 (Window.enbw_bins w));
    Testkit.case "hamming coherent gain is 0.54" (fun () ->
        let w = Window.make Window.Hamming 1024 in
        Testkit.check_rel ~tol:1e-10 "gain" 0.54 (Window.coherent_gain w));
    Testkit.case "all windows stay bounded" (fun () ->
        List.iter
          (fun kind ->
            let w = Window.make kind 257 in
            Array.iter
              (fun v -> Testkit.check_in_range (Window.name kind) ~lo:(-0.1) ~hi:1.1 v)
              w)
          [ Window.Rectangular; Hann; Hamming; Blackman; Blackman_harris; Flattop ]);
    Testkit.case "rejects non-positive size" (fun () ->
        Alcotest.check_raises "n=0" (Invalid_argument "Window.make: n <= 0") (fun () ->
            ignore (Window.make Window.Hann 0)));
  ]

let psd_tests =
  [
    Testkit.case "white noise level is 2 sigma^2 / fs" (fun () ->
        let g = Ptrng_prng.Gaussian.create (Testkit.rng ()) in
        let sigma = 0.7 and fs = 1000.0 in
        let x = Array.init (1 lsl 16) (fun _ -> sigma *. Ptrng_prng.Gaussian.draw g) in
        let s = Psd.welch ~seg_len:1024 ~fs x in
        let level = Psd.band_mean s ~f_lo:(fs /. 20.0) ~f_hi:(fs /. 2.2) in
        Testkit.check_rel ~tol:0.05 "level" (2.0 *. sigma *. sigma /. fs) level);
    Testkit.case "total power approximates variance" (fun () ->
        let g = Ptrng_prng.Gaussian.create (Testkit.rng ()) in
        let x = Array.init (1 lsl 15) (fun _ -> Ptrng_prng.Gaussian.draw g) in
        let s = Psd.welch ~seg_len:2048 ~fs:1.0 x in
        Testkit.check_rel ~tol:0.05 "power" 1.0 (Psd.total_power s));
    Testkit.case "sine power concentrates at its frequency" (fun () ->
        let fs = 1000.0 and f_sig = 125.0 and amp = 2.0 in
        let n = 8192 in
        let x =
          Array.init n (fun i -> amp *. sin (2.0 *. pi *. f_sig *. float_of_int i /. fs))
        in
        let s = Psd.periodogram ~fs x in
        let acc = ref 0.0 in
        Array.iteri
          (fun k f ->
            if Float.abs (f -. f_sig) < 5.0 then
              acc := !acc +. (s.psd.(k) *. (fs /. float_of_int n)))
          s.freqs;
        Testkit.check_rel ~tol:0.05 "tone power" (amp *. amp /. 2.0) !acc);
    Testkit.case "welch counts segments with overlap" (fun () ->
        let x = Array.make 1000 1.0 in
        let s = Psd.welch ~overlap:0.5 ~seg_len:256 ~fs:1.0 x in
        Alcotest.(check int) "segments" 6 s.segments);
    Testkit.case "periodogram rejects empty input" (fun () ->
        Alcotest.check_raises "empty" (Invalid_argument "Psd.periodogram: empty input")
          (fun () -> ignore (Psd.periodogram ~fs:1.0 [||])));
    Testkit.case "welch rejects oversized segment" (fun () ->
        Alcotest.check_raises "seg" (Invalid_argument "Psd.welch: bad seg_len") (fun () ->
            ignore (Psd.welch ~seg_len:100 ~fs:1.0 (Array.make 10 0.0))));
    Testkit.case "band_mean rejects empty band" (fun () ->
        let s = Psd.periodogram ~fs:1.0 (Array.make 64 0.0) in
        Alcotest.check_raises "band" (Invalid_argument "Psd.band_mean: empty band")
          (fun () -> ignore (Psd.band_mean s ~f_lo:10.0 ~f_hi:20.0)));
  ]

let autocorr_tests =
  [
    Testkit.case "white noise ACF is a delta" (fun () ->
        let g = Ptrng_prng.Gaussian.create (Testkit.rng ()) in
        let x = Array.init 50000 (fun _ -> Ptrng_prng.Gaussian.draw g) in
        let r = Autocorr.acf ~max_lag:20 x in
        Testkit.check_rel ~tol:1e-12 "lag 0" 1.0 r.(0);
        let bound = Autocorr.confidence_bound ~n:50000 *. 2.0 in
        for k = 1 to 20 do
          Testkit.check_abs ~tol:bound "white lag" 0.0 r.(k)
        done);
    Testkit.case "AR(1) ACF decays geometrically" (fun () ->
        let g = Ptrng_prng.Gaussian.create (Testkit.rng ()) in
        let phi = 0.8 in
        let n = 200000 in
        let x = Array.make n 0.0 in
        for i = 1 to n - 1 do
          x.(i) <- (phi *. x.(i - 1)) +. Ptrng_prng.Gaussian.draw g
        done;
        let r = Autocorr.acf ~max_lag:5 x in
        for k = 1 to 5 do
          Testkit.check_abs ~tol:0.03 (Printf.sprintf "lag %d" k)
            (phi ** float_of_int k) r.(k)
        done);
    Testkit.case "matches naive autocovariance" (fun () ->
        let x = [| 1.0; 3.0; -2.0; 0.5; 4.0; -1.0; 2.0; 0.0 |] in
        let n = Array.length x in
        let mean = Array.fold_left ( +. ) 0.0 x /. float_of_int n in
        let naive k =
          let acc = ref 0.0 in
          for i = 0 to n - 1 - k do
            acc := !acc +. ((x.(i) -. mean) *. (x.(i + k) -. mean))
          done;
          !acc /. float_of_int n
        in
        let c = Autocorr.autocovariance ~max_lag:4 x in
        for k = 0 to 4 do
          Testkit.check_abs ~tol:1e-10 (Printf.sprintf "lag %d" k) (naive k) c.(k)
        done);
    Testkit.case "acf rejects constant series" (fun () ->
        Alcotest.check_raises "constant"
          (Invalid_argument "Autocorr.acf: zero-variance series")
          (fun () -> ignore (Autocorr.acf (Array.make 16 2.0))));
  ]

let filter_tests =
  [
    Testkit.case "fir_direct equals fir_fft" (fun () ->
        let h = random_signal 31 and x = random_signal 500 in
        let a = Filter.fir_direct ~h x and b = Filter.fir_fft ~h x in
        Testkit.check_abs ~tol:1e-9 "agreement" 0.0 (max_abs_diff a b));
    Testkit.case "identity FIR" (fun () ->
        let x = random_signal 100 in
        let y = Filter.fir_direct ~h:[| 1.0 |] x in
        Testkit.check_abs ~tol:0.0 "identity" 0.0 (max_abs_diff x y));
    Testkit.case "moving-average FIR reaches steady state" (fun () ->
        let x = Array.make 64 3.0 in
        let h = Array.make 4 0.25 in
        let y = Filter.fir_direct ~h x in
        for i = 3 to 63 do
          Testkit.check_abs ~tol:1e-12 "steady state" 3.0 y.(i)
        done);
    Testkit.case "iir implements the recursion" (fun () ->
        let x = Array.make 10 0.0 in
        x.(0) <- 1.0;
        let y = Filter.iir ~b:[| 1.0 |] ~a:[| 1.0; -0.5 |] x in
        Array.iteri
          (fun i v ->
            Testkit.check_abs ~tol:1e-12 "impulse response" (0.5 ** float_of_int i) v)
          y);
    Testkit.case "iir rejects zero leading coefficient" (fun () ->
        Alcotest.check_raises "a0 = 0"
          (Invalid_argument "Filter.iir: a.(0) must be non-zero")
          (fun () -> ignore (Filter.iir ~b:[| 1.0 |] ~a:[| 0.0 |] [| 1.0 |])));
    Testkit.case "biquad lowpass attenuates high frequencies" (fun () ->
        let fs = 1000.0 in
        let bq = Filter.biquad_lowpass ~fc:50.0 ~fs ~q:0.707 in
        let n = 4096 in
        let tone f = Array.init n (fun i -> sin (2.0 *. pi *. f *. float_of_int i /. fs)) in
        let rms x =
          sqrt
            (Array.fold_left (fun a v -> a +. (v *. v)) 0.0 x
            /. float_of_int (Array.length x))
        in
        let low = rms (Filter.biquad_apply bq (tone 10.0)) in
        let high = rms (Filter.biquad_apply bq (tone 400.0)) in
        Testkit.check_true "passband kept" (low > 0.6);
        Testkit.check_true "stopband rejected" (high < 0.05));
    Testkit.case "remove_mean zeroes the mean" (fun () ->
        let x = random_signal 1000 in
        let y = Filter.remove_mean x in
        Testkit.check_abs ~tol:1e-12 "mean" 0.0 (Ptrng_stats.Descriptive.mean y));
    Testkit.case "detrend_linear removes an exact line" (fun () ->
        let x = Array.init 100 (fun i -> 3.0 +. (0.25 *. float_of_int i)) in
        let y = Filter.detrend_linear x in
        Array.iter (fun v -> Testkit.check_abs ~tol:1e-9 "residual" 0.0 v) y);
  ]

let () =
  Alcotest.run "ptrng_signal"
    [
      ("fft", fft_tests);
      ("window", window_tests);
      ("psd", psd_tests);
      ("autocorr", autocorr_tests);
      ("filter", filter_tests);
    ]
