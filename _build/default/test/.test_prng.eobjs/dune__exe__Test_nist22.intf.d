test/test_nist22.mli:
