test/test_report.ml: Alcotest Array Assessment Format List Ptrng_osc Ptrng_prng Ptrng_report Ptrng_trng Testkit
