test/test_properties.ml: Alcotest Array Bytes Char Float Gen Int64 List Ptrng_measure Ptrng_model Ptrng_nist22 Ptrng_noise Ptrng_prng Ptrng_signal Ptrng_sp90b Ptrng_stats Ptrng_trng QCheck2 Testkit
