test/test_sp90b.ml: Alcotest Array Estimators Float Health List Predictors Ptrng_osc Ptrng_prng Ptrng_sp90b Ptrng_trng Testkit
