test/test_integration.ml: Alcotest Array Float Lazy List Printf Ptrng_ais31 Ptrng_measure Ptrng_model Ptrng_noise Ptrng_osc Ptrng_trng Testkit
