test/test_edge_cases.ml: Alcotest Array Float List Ptrng_ais31 Ptrng_measure Ptrng_model Ptrng_nist22 Ptrng_noise Ptrng_osc Ptrng_prng Ptrng_signal Ptrng_sp90b Ptrng_stats Ptrng_trng Testkit
