test/testkit.ml: Alcotest Float Ptrng_prng QCheck2 QCheck_alcotest String
