test/test_device.ml: Alcotest Constants Float Inverter Isf List Mosfet Phase_noise Printf Ptrng_device Ptrng_noise Technology Testkit
