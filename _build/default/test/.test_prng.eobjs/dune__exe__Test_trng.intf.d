test/test_trng.mli:
