test/test_noise.ml: Alcotest Array Float Kasdin List Printf Psd_model Ptrng_noise Ptrng_prng Ptrng_signal Ptrng_stats Slope Spectral_synth Testkit Voss White
