test/test_sp90b.mli:
