test/test_stats.ml: Alcotest Allan Array Bootstrap Descriptive Float Histogram Int64 List Matrix Printf Ptrng_noise Ptrng_prng Ptrng_stats Regression Special Testkit Tests
