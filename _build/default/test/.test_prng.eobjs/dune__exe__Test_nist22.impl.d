test/test_nist22.ml: Alcotest Array Format Int64 Lazy List Ptrng_nist22 Ptrng_osc Ptrng_prng Ptrng_trng Sp80022 String Testkit
