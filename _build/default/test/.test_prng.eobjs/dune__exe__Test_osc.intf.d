test/test_osc.mli:
