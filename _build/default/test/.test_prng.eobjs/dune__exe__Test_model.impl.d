test/test_model.ml: Alcotest Array Bienayme Bit_markov Compare Design Entropy Float List Multilevel Phase_chain Printf Ptrng_measure Ptrng_model Ptrng_noise Ptrng_osc Ptrng_trng Spectral Testkit
