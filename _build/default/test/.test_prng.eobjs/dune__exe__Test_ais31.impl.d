test/test_ais31.ml: Alcotest Array Format List Procedure_a Procedure_b Ptrng_ais31 Ptrng_prng Ptrng_trng Report String Testkit
