test/test_signal.ml: Alcotest Array Autocorr Fft Filter Float List Printf Psd Ptrng_prng Ptrng_signal Ptrng_stats Testkit Window
