test/test_trng.ml: Alcotest Array Attack Bitstream Bytes Char Ero_trng Float Metastable Multi_ring Post_process Ptrng_noise Ptrng_osc Ptrng_prng Ptrng_trng Sampler Testkit
