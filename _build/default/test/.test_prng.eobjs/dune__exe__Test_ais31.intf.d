test/test_ais31.mli:
