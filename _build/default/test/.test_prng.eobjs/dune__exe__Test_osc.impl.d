test/test_osc.ml: Alcotest Array List Oscillator Pair Printf Ptrng_measure Ptrng_model Ptrng_noise Ptrng_osc Ptrng_signal Ptrng_stats Restart Testkit
