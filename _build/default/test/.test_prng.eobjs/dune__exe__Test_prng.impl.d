test/test_prng.ml: Alcotest Array Distributions Float Gaussian Int64 List Pcg32 Ptrng_prng Ptrng_stats QCheck2 Rng Splitmix64 Testkit Xoshiro256
