open Ptrng_prng

let draw_array rng n = Array.init n (fun _ -> Rng.float rng)

(* --- Splitmix64 --- *)

let splitmix_tests =
  [
    Testkit.case "deterministic for equal seeds" (fun () ->
        let a = Splitmix64.create 42L and b = Splitmix64.create 42L in
        for _ = 1 to 100 do
          Alcotest.(check int64) "same stream" (Splitmix64.next a) (Splitmix64.next b)
        done);
    Testkit.case "different seeds give different streams" (fun () ->
        let a = Splitmix64.create 1L and b = Splitmix64.create 2L in
        let same = ref 0 in
        for _ = 1 to 64 do
          if Splitmix64.next a = Splitmix64.next b then incr same
        done;
        Testkit.check_true "almost surely disjoint" (!same = 0));
    Testkit.case "zero seed is fine" (fun () ->
        let t = Splitmix64.create 0L in
        Testkit.check_true "non-zero output" (Splitmix64.next t <> 0L));
    Testkit.case "next_float in [0,1)" (fun () ->
        let t = Splitmix64.create 7L in
        for _ = 1 to 1000 do
          let v = Splitmix64.next_float t in
          Testkit.check_in_range "float range" ~lo:0.0 ~hi:0.9999999999999999 v
        done);
    Testkit.case "output bits look balanced" (fun () ->
        let t = Splitmix64.create 99L in
        let ones = ref 0 in
        for _ = 1 to 1000 do
          let v = Splitmix64.next t in
          for b = 0 to 63 do
            if Int64.logand (Int64.shift_right_logical v b) 1L = 1L then incr ones
          done
        done;
        (* 64000 bits: expect 32000 +- ~5 sigma (sigma = 126.5). *)
        Testkit.check_in_range "ones count" ~lo:31350.0 ~hi:32650.0 (float_of_int !ones));
  ]

(* --- Xoshiro256++ --- *)

let xoshiro_tests =
  [
    Testkit.case "deterministic for equal seeds" (fun () ->
        let a = Xoshiro256.create ~seed:5L and b = Xoshiro256.create ~seed:5L in
        for _ = 1 to 100 do
          Alcotest.(check int64) "same stream" (Xoshiro256.next a) (Xoshiro256.next b)
        done);
    Testkit.case "of_state rejects wrong length" (fun () ->
        Alcotest.check_raises "3 words"
          (Invalid_argument "Xoshiro256.of_state: need 4 words")
          (fun () -> ignore (Xoshiro256.of_state [| 1L; 2L; 3L |])));
    Testkit.case "of_state rejects all-zero" (fun () ->
        Alcotest.check_raises "zero state"
          (Invalid_argument "Xoshiro256.of_state: all-zero state is absorbing")
          (fun () -> ignore (Xoshiro256.of_state [| 0L; 0L; 0L; 0L |])));
    Testkit.case "jump decorrelates streams" (fun () ->
        let a = Xoshiro256.create ~seed:11L in
        let b = Xoshiro256.create ~seed:11L in
        Xoshiro256.jump b;
        let same = ref 0 in
        for _ = 1 to 128 do
          if Xoshiro256.next a = Xoshiro256.next b then incr same
        done;
        Testkit.check_true "no collisions" (!same = 0));
    Testkit.case "jump is deterministic" (fun () ->
        let a = Xoshiro256.create ~seed:11L and b = Xoshiro256.create ~seed:11L in
        Xoshiro256.jump a;
        Xoshiro256.jump b;
        Alcotest.(check int64) "same after jump" (Xoshiro256.next a) (Xoshiro256.next b));
  ]

(* --- PCG32 --- *)

let pcg_tests =
  [
    Testkit.case "deterministic for equal seeds" (fun () ->
        let a = Pcg32.create ~seed:3L () and b = Pcg32.create ~seed:3L () in
        for _ = 1 to 100 do
          Alcotest.(check int32) "same stream" (Pcg32.next a) (Pcg32.next b)
        done);
    Testkit.case "streams are independent sequences" (fun () ->
        let a = Pcg32.create ~seed:3L ~stream:1L ()
        and b = Pcg32.create ~seed:3L ~stream:2L () in
        let same = ref 0 in
        for _ = 1 to 64 do
          if Pcg32.next a = Pcg32.next b then incr same
        done;
        Testkit.check_true "almost surely disjoint" (!same <= 1));
    Testkit.case "next64 combines two words" (fun () ->
        let a = Pcg32.create ~seed:8L () and b = Pcg32.create ~seed:8L () in
        let hi = Pcg32.next a and lo = Pcg32.next a in
        let expected =
          Int64.logor
            (Int64.shift_left (Int64.of_int32 hi) 32)
            (Int64.logand (Int64.of_int32 lo) 0xFFFFFFFFL)
        in
        Alcotest.(check int64) "composition" expected (Pcg32.next64 b));
  ]

(* --- Rng facade --- *)

let rng_tests =
  [
    Testkit.qcheck "float is in [0,1)" QCheck2.Gen.int (fun seed ->
        let rng = Rng.create ~seed:(Int64.of_int seed) () in
        let v = Rng.float rng in
        v >= 0.0 && v < 1.0);
    Testkit.qcheck "float_pos is in (0,1]" QCheck2.Gen.int (fun seed ->
        let rng = Rng.create ~seed:(Int64.of_int seed) () in
        let v = Rng.float_pos rng in
        v > 0.0 && v <= 1.0);
    Testkit.qcheck "int_below stays in range"
      QCheck2.Gen.(pair int (int_range 1 1000))
      (fun (seed, n) ->
        let rng = Rng.create ~seed:(Int64.of_int seed) () in
        let v = Rng.int_below rng n in
        v >= 0 && v < n);
    Testkit.case "int_below rejects non-positive bound" (fun () ->
        Alcotest.check_raises "n = 0" (Invalid_argument "Rng.int_below: n <= 0")
          (fun () -> ignore (Rng.int_below (Testkit.rng ()) 0)));
    Testkit.case "float_range rejects empty interval" (fun () ->
        Alcotest.check_raises "lo >= hi" (Invalid_argument "Rng.float_range: lo >= hi")
          (fun () -> ignore (Rng.float_range (Testkit.rng ()) ~lo:1.0 ~hi:1.0)));
    Testkit.case "int_below is uniform (chi2)" (fun () ->
        let rng = Testkit.rng () in
        let buckets = 16 and draws = 160000 in
        let observed = Array.make buckets 0 in
        for _ = 1 to draws do
          let v = Rng.int_below rng buckets in
          observed.(v) <- observed.(v) + 1
        done;
        let expected = Array.make buckets (float_of_int draws /. float_of_int buckets) in
        let r = Ptrng_stats.Tests.chi2_gof ~observed ~expected () in
        Testkit.check_true "uniform at 0.1%" (r.p_value > 0.001));
    Testkit.case "bool is fair" (fun () ->
        let rng = Testkit.rng () in
        let heads = ref 0 in
        let n = 100000 in
        for _ = 1 to n do
          if Rng.bool rng then incr heads
        done;
        (* 5 sigma band around n/2. *)
        Testkit.check_in_range "heads" ~lo:49200.0 ~hi:50800.0 (float_of_int !heads));
    Testkit.case "split yields a decorrelated stream" (fun () ->
        let rng = Testkit.rng () in
        let child = Rng.split rng in
        let a = draw_array rng 5000 and b = draw_array child 5000 in
        let mixed = Array.init 5000 (fun i -> a.(i) -. b.(i)) in
        (* Difference of independent U(0,1) has variance 1/6. *)
        Testkit.check_rel ~tol:0.1 "variance of difference" (1.0 /. 6.0)
          (Ptrng_stats.Descriptive.variance mixed));
    Testkit.case "fill_floats fills every slot" (fun () ->
        let rng = Testkit.rng () in
        let a = Array.make 100 (-1.0) in
        Rng.fill_floats rng a;
        Array.iter (fun v -> Testkit.check_in_range "slot" ~lo:0.0 ~hi:1.0 v) a);
    Testkit.case "all backends produce working generators" (fun () ->
        List.iter
          (fun backend ->
            let rng = Rng.create ~backend ~seed:12L () in
            let v = Rng.float rng in
            Testkit.check_in_range (Rng.backend_name rng) ~lo:0.0 ~hi:1.0 v)
          [ Rng.Xoshiro; Rng.Pcg; Rng.Splitmix ]);
  ]

(* --- Gaussian sampling --- *)

let gaussian_moments method_ name =
  Testkit.case (name ^ " has N(0,1) moments") (fun () ->
      let g = Gaussian.create ~method_ (Testkit.rng ()) in
      let n = 200000 in
      let x = Array.init n (fun _ -> Gaussian.draw g) in
      Testkit.check_abs ~tol:0.02 "mean" 0.0 (Ptrng_stats.Descriptive.mean x);
      Testkit.check_rel ~tol:0.03 "variance" 1.0 (Ptrng_stats.Descriptive.variance x);
      Testkit.check_abs ~tol:0.05 "skewness" 0.0 (Ptrng_stats.Descriptive.skewness x);
      Testkit.check_abs ~tol:0.1 "excess kurtosis" 0.0
        (Ptrng_stats.Descriptive.kurtosis_excess x))

let gaussian_ks method_ name =
  Testkit.case (name ^ " passes KS against Phi") (fun () ->
      let g = Gaussian.create ~method_ (Testkit.rng ~seed:77L ()) in
      let x = Array.init 20000 (fun _ -> Gaussian.draw g) in
      let r = Ptrng_stats.Tests.ks_one_sample ~cdf:Ptrng_stats.Special.normal_cdf x in
      Testkit.check_true "KS p-value > 0.001" (r.p_value > 0.001))

let gaussian_tests =
  [
    gaussian_moments Gaussian.Ziggurat "ziggurat";
    gaussian_moments Gaussian.Box_muller "box-muller";
    gaussian_moments Gaussian.Polar "polar";
    gaussian_ks Gaussian.Ziggurat "ziggurat";
    gaussian_ks Gaussian.Box_muller "box-muller";
    gaussian_ks Gaussian.Polar "polar";
    Testkit.case "tail samples occur and are finite" (fun () ->
        let g = Gaussian.create (Testkit.rng ~seed:5L ()) in
        let beyond = ref 0 in
        for _ = 1 to 2_000_000 do
          let v = Gaussian.draw g in
          Testkit.check_true "finite" (Float.is_finite v);
          if Float.abs v > 3.4426 then incr beyond
        done;
        (* P(|Z| > 3.4426) ~ 5.7e-4: expect ~1150 hits. *)
        Testkit.check_in_range "tail hits" ~lo:800.0 ~hi:1600.0 (float_of_int !beyond));
    Testkit.case "draw_scaled applies mu and sigma" (fun () ->
        let g = Gaussian.create (Testkit.rng ()) in
        let x = Array.init 100000 (fun _ -> Gaussian.draw_scaled g ~mu:3.0 ~sigma:0.5) in
        Testkit.check_abs ~tol:0.02 "mean" 3.0 (Ptrng_stats.Descriptive.mean x);
        Testkit.check_rel ~tol:0.05 "variance" 0.25 (Ptrng_stats.Descriptive.variance x));
    Testkit.case "pdf peak value" (fun () ->
        Testkit.check_rel ~tol:1e-12 "pdf 0" (1.0 /. sqrt (2.0 *. Float.pi)) (Gaussian.pdf 0.0));
  ]

(* --- Distributions --- *)

let distributions_tests =
  [
    Testkit.case "exponential mean and variance" (fun () ->
        let rng = Testkit.rng () in
        let x = Array.init 200000 (fun _ -> Distributions.exponential rng ~rate:2.0) in
        Testkit.check_rel ~tol:0.03 "mean" 0.5 (Ptrng_stats.Descriptive.mean x);
        Testkit.check_rel ~tol:0.05 "variance" 0.25 (Ptrng_stats.Descriptive.variance x));
    Testkit.case "exponential rejects bad rate" (fun () ->
        Alcotest.check_raises "rate 0"
          (Invalid_argument "Distributions.exponential: rate <= 0")
          (fun () -> ignore (Distributions.exponential (Testkit.rng ()) ~rate:0.0)));
    Testkit.case "laplace variance is 2 b^2" (fun () ->
        let rng = Testkit.rng () in
        let x = Array.init 200000 (fun _ -> Distributions.laplace rng ~mu:1.0 ~b:0.7) in
        Testkit.check_rel ~tol:0.03 "mean" 1.0 (Ptrng_stats.Descriptive.mean x);
        Testkit.check_rel ~tol:0.05 "variance" (2.0 *. 0.49)
          (Ptrng_stats.Descriptive.variance x));
    Testkit.case "cauchy median is x0" (fun () ->
        let rng = Testkit.rng () in
        let x = Array.init 100000 (fun _ -> Distributions.cauchy rng ~x0:4.0 ~gamma:1.0) in
        Testkit.check_abs ~tol:0.05 "median" 4.0 (Ptrng_stats.Descriptive.median x));
    Testkit.case "bernoulli frequency" (fun () ->
        let rng = Testkit.rng () in
        let hits = ref 0 in
        for _ = 1 to 100000 do
          if Distributions.bernoulli rng ~p:0.3 then incr hits
        done;
        Testkit.check_rel ~tol:0.03 "frequency" 0.3 (float_of_int !hits /. 100000.0));
    Testkit.case "binomial small-n path" (fun () ->
        let rng = Testkit.rng () in
        let x =
          Array.init 50000 (fun _ -> float_of_int (Distributions.binomial rng ~n:20 ~p:0.25))
        in
        Testkit.check_rel ~tol:0.03 "mean" 5.0 (Ptrng_stats.Descriptive.mean x);
        Testkit.check_rel ~tol:0.06 "variance" 3.75 (Ptrng_stats.Descriptive.variance x));
    Testkit.case "binomial large-n path" (fun () ->
        let rng = Testkit.rng () in
        let x =
          Array.init 50000 (fun _ ->
              float_of_int (Distributions.binomial rng ~n:10000 ~p:0.5))
        in
        Testkit.check_rel ~tol:0.002 "mean" 5000.0 (Ptrng_stats.Descriptive.mean x);
        Testkit.check_rel ~tol:0.1 "variance" 2500.0 (Ptrng_stats.Descriptive.variance x));
    Testkit.case "binomial edge cases" (fun () ->
        let rng = Testkit.rng () in
        Alcotest.(check int) "p=0" 0 (Distributions.binomial rng ~n:10 ~p:0.0);
        Alcotest.(check int) "p=1" 10 (Distributions.binomial rng ~n:10 ~p:1.0);
        Alcotest.(check int) "n=0" 0 (Distributions.binomial rng ~n:0 ~p:0.5));
    Testkit.case "poisson small-lambda path" (fun () ->
        let rng = Testkit.rng () in
        let x =
          Array.init 100000 (fun _ -> float_of_int (Distributions.poisson rng ~lambda:4.0))
        in
        Testkit.check_rel ~tol:0.03 "mean" 4.0 (Ptrng_stats.Descriptive.mean x);
        Testkit.check_rel ~tol:0.05 "variance" 4.0 (Ptrng_stats.Descriptive.variance x));
    Testkit.case "poisson large-lambda path" (fun () ->
        let rng = Testkit.rng () in
        let x =
          Array.init 50000 (fun _ -> float_of_int (Distributions.poisson rng ~lambda:400.0))
        in
        Testkit.check_rel ~tol:0.01 "mean" 400.0 (Ptrng_stats.Descriptive.mean x);
        Testkit.check_rel ~tol:0.1 "variance" 400.0 (Ptrng_stats.Descriptive.variance x));
    Testkit.case "geometric mean" (fun () ->
        let rng = Testkit.rng () in
        let x =
          Array.init 100000 (fun _ -> float_of_int (Distributions.geometric rng ~p:0.25))
        in
        Testkit.check_rel ~tol:0.05 "mean" 3.0 (Ptrng_stats.Descriptive.mean x));
    Testkit.case "uniform_array bounds and size" (fun () ->
        let a = Distributions.uniform_array (Testkit.rng ()) 1000 in
        Alcotest.(check int) "length" 1000 (Array.length a);
        Array.iter (fun v -> Testkit.check_in_range "value" ~lo:0.0 ~hi:1.0 v) a);
  ]

let () =
  Alcotest.run "ptrng_prng"
    [
      ("splitmix64", splitmix_tests);
      ("xoshiro256", xoshiro_tests);
      ("pcg32", pcg_tests);
      ("rng", rng_tests);
      ("gaussian", gaussian_tests);
      ("distributions", distributions_tests);
    ]
