open Ptrng_measure

let f0 = Ptrng_osc.Pair.paper_f0
let paper_phase = Ptrng_osc.Pair.paper_relative

let s_process_tests =
  [
    Testkit.case "cumulative prefix sums" (fun () ->
        Alcotest.(check (array (float 1e-12))) "cumsum" [| 0.0; 1.0; 3.0; 6.0 |]
          (S_process.cumulative [| 1.0; 2.0; 3.0 |]));
    Testkit.case "realizations match the hand-computed definition" (fun () ->
        (* j = [1;2;3;4;5;6], N = 2:
           s(0) = (3+4) - (1+2) = 4, s(1) = (4+5) - (2+3) = 4,
           s(2) = (5+6) - (3+4) = 4. *)
        let j = [| 1.0; 2.0; 3.0; 4.0; 5.0; 6.0 |] in
        Alcotest.(check (array (float 1e-12))) "overlapping" [| 4.0; 4.0; 4.0 |]
          (S_process.realizations ~n:2 j));
    Testkit.case "stride controls overlap" (fun () ->
        let j = Array.init 12 float_of_int in
        let disjoint = S_process.realizations ~stride:4 ~n:2 j in
        Alcotest.(check int) "count" 3 (Array.length disjoint));
    Testkit.case "a linear jitter drift cancels out" (fun () ->
        (* Constant mean offset (frequency mismatch) must not leak into
           s_N: second difference of a linear cumulative sum is 0. *)
        let j = Array.make 100 5.0 in
        let s = S_process.realizations ~n:10 j in
        Array.iter (fun v -> Testkit.check_abs ~tol:1e-9 "zero" 0.0 v) s);
    Testkit.case "rejects short series" (fun () ->
        Alcotest.check_raises "short"
          (Invalid_argument "S_process.realizations: series shorter than 2n")
          (fun () -> ignore (S_process.realizations ~n:8 (Array.make 15 0.0))));
    Testkit.case "relative jitter subtracts pointwise" (fun () ->
        let r =
          S_process.relative_jitter ~periods1:[| 3.0; 5.0 |] ~periods2:[| 1.0; 1.0; 9.0 |]
        in
        Alcotest.(check (array (float 1e-12))) "difference" [| 2.0; 4.0 |] r);
  ]

let counter_tests =
  [
    Testkit.case "counts edges in deterministic windows" (fun () ->
        (* Osc1 at 1 Hz (edges 0..29), Osc2 at 0.5 Hz (edges 0,2,4...).
           Windows of 3 Osc2 cycles = 6 s -> exactly 6 Osc1 edges. *)
        let edges1 = Array.init 30 float_of_int in
        let edges2 = Array.init 15 (fun i -> 2.0 *. float_of_int i) in
        let q = Counter.q_counts ~edges1 ~edges2 ~n:3 in
        Array.iter (fun c -> Alcotest.(check int) "window count" 6 c) q;
        Alcotest.(check int) "windows" 4 (Array.length q));
    Testkit.case "drops windows not covered by osc1" (fun () ->
        (* Osc2 spans 28 s but Osc1 only 10 s: only fully covered
           windows may be counted. *)
        let edges1 = Array.init 11 float_of_int in
        let edges2 = Array.init 15 (fun i -> 2.0 *. float_of_int i) in
        let q = Counter.q_counts ~edges1 ~edges2 ~n:2 in
        Alcotest.(check int) "covered windows" 2 (Array.length q);
        Array.iter (fun c -> Alcotest.(check int) "full count" 4 c) q);
    Testkit.case "s_of_counts scales adjacent differences" (fun () ->
        let s = Counter.s_of_counts ~f0:10.0 [| 100; 104; 101 |] in
        Alcotest.(check (array (float 1e-12))) "diffs" [| 0.4; -0.3 |] s);
    Testkit.case "detuned perfect oscillators show only quantization" (fun () ->
        let det = 1e-4 in
        let f1 = f0 *. (1.0 +. (det /. 2.0)) and f2 = f0 *. (1.0 -. (det /. 2.0)) in
        let n = 1 lsl 16 in
        let edges1 = Array.init (n + 1) (fun i -> float_of_int i /. f1) in
        let edges2 = Array.init (n + 1) (fun i -> float_of_int i /. f2) in
        let s = Counter.s_realizations ~edges1 ~edges2 ~f0 ~n:512 in
        let v = Ptrng_stats.Descriptive.variance s *. f0 *. f0 in
        (* Pure sawtooth quantization stays well below one count^2. *)
        Testkit.check_in_range "quantization floor" ~lo:0.0 ~hi:1.0 v);
    Testkit.case "rejects degenerate inputs" (fun () ->
        Alcotest.check_raises "n" (Invalid_argument "Counter.q_counts: n <= 0") (fun () ->
            ignore (Counter.q_counts ~edges1:[| 0.0; 1.0 |] ~edges2:[| 0.0; 1.0 |] ~n:0)));
  ]

let variance_curve_tests =
  [
    Testkit.case "log2 grid" (fun () ->
        Alcotest.(check (array int)) "octaves" [| 4; 8; 16; 32 |]
          (Variance_curve.log2_grid ~n_min:4 ~n_max:32));
    Testkit.case "log grid is increasing and deduplicated" (fun () ->
        let g = Variance_curve.log_grid ~n_min:4 ~n_max:10000 ~per_decade:5 in
        for i = 1 to Array.length g - 1 do
          Testkit.check_true "strictly increasing" (g.(i) > g.(i - 1))
        done;
        Testkit.check_true "covers the top" (g.(Array.length g - 1) = 10000));
    Testkit.case "white jitter produces a linear curve" (fun () ->
        let g = Ptrng_prng.Gaussian.create (Testkit.rng ()) in
        let sigma = 15.89e-12 in
        let j = Array.init (1 lsl 17) (fun _ -> sigma *. Ptrng_prng.Gaussian.draw g) in
        let ns = [| 16; 64; 256 |] in
        let pts = Variance_curve.of_jitter ~f0 ~ns j in
        (* Estimator scatter at N=256 on 2^17 samples is ~10% (1 sigma). *)
        Array.iter
          (fun (p : Variance_curve.point) ->
            Testkit.check_rel ~tol:0.25
              (Printf.sprintf "N=%d" p.n)
              (2.0 *. float_of_int p.n *. sigma *. sigma)
              p.sigma2)
          pts;
        (* Error bars should bracket the truth most of the time. *)
        Array.iter
          (fun (p : Variance_curve.point) ->
            let truth = 2.0 *. float_of_int p.n *. sigma *. sigma in
            Testkit.check_true "within 4 se" (Float.abs (p.sigma2 -. truth) < 4.0 *. p.stderr))
          pts);
    Testkit.case "overlapping and disjoint estimates agree" (fun () ->
        let g = Ptrng_prng.Gaussian.create (Testkit.rng ()) in
        let j = Array.init (1 lsl 16) (fun _ -> Ptrng_prng.Gaussian.draw g) in
        let ns = [| 32 |] in
        let a = (Variance_curve.of_jitter ~overlapping:true ~f0 ~ns j).(0) in
        let b = (Variance_curve.of_jitter ~overlapping:false ~f0 ~ns j).(0) in
        Testkit.check_rel ~tol:0.1 "consistent" a.Variance_curve.sigma2 b.Variance_curve.sigma2);
    Testkit.case "grid entries beyond the data are skipped" (fun () ->
        let j = Array.make 100 0.001 in
        let pts = Variance_curve.of_jitter ~f0 ~ns:[| 8; 64; 512 |] j in
        Alcotest.(check int) "kept" 1 (Array.length pts));
  ]

let robustness_tests =
  [
    Testkit.case "variance curve is distribution-free (Laplace jitter)" (fun () ->
        (* The sigma_N^2 analysis uses only second moments; heavy-ish
           tails must not bias the extraction. *)
        let rng = Testkit.rng ~seed:71L () in
        let sigma = 15.89e-12 in
        let b = sigma /. sqrt 2.0 in
        let j =
          Array.init (1 lsl 17) (fun _ ->
              Ptrng_prng.Distributions.laplace rng ~mu:0.0 ~b)
        in
        let pts = Variance_curve.of_jitter ~f0 ~ns:[| 16; 64; 256 |] j in
        Array.iter
          (fun (p : Variance_curve.point) ->
            Testkit.check_rel ~tol:0.25
              (Printf.sprintf "N=%d" p.n)
              (2.0 *. float_of_int p.n *. sigma *. sigma)
              p.sigma2)
          pts);
    Testkit.case "fit survives an outlier-contaminated curve point" (fun () ->
        (* One corrupted grid point (e.g. a burst during measurement)
           moves the weighted fit, but bounded by its claimed error. *)
        let ns = Variance_curve.log2_grid ~n_min:4 ~n_max:16384 in
        let pts =
          Array.map
            (fun n ->
              let fn = float_of_int n in
              let scaled = (5.36e-6 *. fn) +. (1.0e-9 *. fn *. fn) in
              { Variance_curve.n; sigma2 = scaled /. (f0 *. f0); scaled;
                neff = 1000; stderr = 0.02 *. scaled /. (f0 *. f0) })
            ns
        in
        (* Corrupt one mid-grid point by 3x but with an honest (large)
           error bar: the weighted fit must stay within a few percent. *)
        let k = Array.length pts / 2 in
        let p = pts.(k) in
        pts.(k) <-
          { p with Variance_curve.scaled = p.scaled *. 3.0;
            sigma2 = p.sigma2 *. 3.0; stderr = p.stderr *. 200.0 };
        let fit = Fit.fit ~f0 pts in
        Testkit.check_rel ~tol:0.05 "a" 5.36e-6 fit.a;
        Testkit.check_rel ~tol:0.05 "b" 1.0e-9 fit.b);
  ]

let fit_tests =
  let synthetic_points ?(noise = 0.0) ~a ~b ~c ns =
    let g = Ptrng_prng.Gaussian.create (Testkit.rng ~seed:21L ()) in
    Array.map
      (fun n ->
        let fn = float_of_int n in
        let scaled =
          ((a *. fn) +. (b *. fn *. fn) +. c)
          *. (1.0 +. (noise *. Ptrng_prng.Gaussian.draw g))
        in
        {
          Variance_curve.n;
          sigma2 = scaled /. (f0 *. f0);
          scaled;
          neff = 1000;
          stderr = (if noise = 0.0 then Float.nan else noise *. scaled /. (f0 *. f0));
        })
      ns
  in
  [
    Testkit.case "recovers exact coefficients" (fun () ->
        let ns = Variance_curve.log2_grid ~n_min:4 ~n_max:16384 in
        let pts = synthetic_points ~a:5.36e-6 ~b:1.036e-9 ~c:0.0 ns in
        let fit = Fit.fit ~f0 pts in
        Testkit.check_rel ~tol:1e-6 "a" 5.36e-6 fit.a;
        Testkit.check_rel ~tol:1e-6 "b" 1.036e-9 fit.b);
    Testkit.case "maps coefficients to (b_th, b_fl)" (fun () ->
        let ns = Variance_curve.log2_grid ~n_min:4 ~n_max:16384 in
        let pts = synthetic_points ~a:5.36e-6 ~b:1.036e-9 ~c:0.0 ns in
        let phase = Fit.phase_of (Fit.fit ~f0 pts) in
        Testkit.check_rel ~tol:1e-6 "b_th" (5.36e-6 *. f0 /. 2.0) phase.Ptrng_noise.Psd_model.b_th;
        Testkit.check_rel ~tol:1e-6 "b_fl"
          (1.036e-9 *. f0 *. f0 /. (8.0 *. log 2.0))
          phase.Ptrng_noise.Psd_model.b_fl);
    Testkit.case "with_floor recovers the quantization constant" (fun () ->
        let ns = Variance_curve.log2_grid ~n_min:4 ~n_max:65536 in
        let pts = synthetic_points ~a:5.36e-6 ~b:1.036e-9 ~c:0.33 ns in
        let fit = Fit.fit ~with_floor:true ~f0 pts in
        Testkit.check_rel ~tol:1e-6 "c" 0.33 fit.c;
        Testkit.check_rel ~tol:1e-5 "a survives" 5.36e-6 fit.a);
    Testkit.case "noisy fit stays within standard errors" (fun () ->
        let ns = Variance_curve.log2_grid ~n_min:4 ~n_max:16384 in
        let pts = synthetic_points ~noise:0.05 ~a:5.36e-6 ~b:1.036e-9 ~c:0.0 ns in
        let fit = Fit.fit ~f0 pts in
        Testkit.check_abs ~tol:(4.0 *. fit.a_se) "a" 5.36e-6 fit.a;
        Testkit.check_abs ~tol:(4.0 *. fit.b_se) "b" 1.036e-9 fit.b);
    Testkit.case "predict evaluates the model" (fun () ->
        let ns = Variance_curve.log2_grid ~n_min:4 ~n_max:16384 in
        let pts = synthetic_points ~a:2.0 ~b:3.0 ~c:0.0 ns in
        let fit = Fit.fit ~f0 pts in
        Testkit.check_rel ~tol:1e-6 "prediction" ((2.0 *. 10.0) +. (3.0 *. 100.0))
          (Fit.predict fit 10));
    Testkit.case "rejects insufficient points" (fun () ->
        let pts = synthetic_points ~a:1.0 ~b:1.0 ~c:0.0 [| 4; 8 |] in
        Alcotest.check_raises "points" (Invalid_argument "Fit.fit: not enough curve points")
          (fun () -> ignore (Fit.fit ~f0 pts)));
  ]

let thermal_extract_tests =
  [
    Testkit.case "paper numbers: sigma, ratio, k, threshold" (fun () ->
        let e = Thermal_extract.of_phase ~f0 paper_phase in
        Testkit.check_rel ~tol:2e-3 "sigma 15.89 ps" 15.89e-12 e.sigma_thermal;
        Testkit.check_rel ~tol:2e-3 "1.6 permil" 1.64e-3 e.sigma_relative;
        Testkit.check_rel ~tol:1e-6 "k = 5354" 5354.0 e.k_ratio;
        Alcotest.(check int) "N < 281 at 95%" 281
          (Thermal_extract.independence_threshold e ~confidence:0.95));
    Testkit.case "r_N follows k/(k+N)" (fun () ->
        let e = Thermal_extract.of_phase ~f0 paper_phase in
        Testkit.check_rel ~tol:1e-9 "r_0" 1.0 (Thermal_extract.r_n e 0);
        Testkit.check_rel ~tol:1e-6 "r_5354" 0.5 (Thermal_extract.r_n e 5354);
        Testkit.check_true "decreasing"
          (Thermal_extract.r_n e 100 > Thermal_extract.r_n e 1000));
    Testkit.case "pure thermal noise has infinite k" (fun () ->
        let e =
          Thermal_extract.of_phase ~f0 { Ptrng_noise.Psd_model.b_th = 100.0; b_fl = 0.0 }
        in
        Testkit.check_rel ~tol:1e-12 "r_N = 1" 1.0 (Thermal_extract.r_n e 1000000);
        Alcotest.(check int) "no threshold" max_int
          (Thermal_extract.independence_threshold e ~confidence:0.95));
    Testkit.case "rejects non-positive thermal coefficient" (fun () ->
        Alcotest.check_raises "b_th" (Invalid_argument "Thermal_extract.of_phase: b_th <= 0")
          (fun () ->
            ignore
              (Thermal_extract.of_phase ~f0 { Ptrng_noise.Psd_model.b_th = 0.0; b_fl = 1.0 })));
  ]

let quantization_tests =
  [
    Testkit.case "predicts the pure-sawtooth floor (no noise, detuned)" (fun () ->
        (* Perfect oscillators: measured floors from the event-level
           counter must track min(2 N delta, 1/2). *)
        let det = 1e-4 in
        let f1 = f0 *. (1.0 +. (det /. 2.0)) and f2 = f0 *. (1.0 -. (det /. 2.0)) in
        let m = 1 lsl 16 in
        let edges1 = Array.init (m + 1) (fun i -> float_of_int i /. f1) in
        let edges2 = Array.init (m + 1) (fun i -> float_of_int i /. f2) in
        let zero = { Ptrng_noise.Psd_model.b_th = 0.0; b_fl = 0.0 } in
        List.iter
          (fun n ->
            let s = Counter.s_realizations ~edges1 ~edges2 ~f0 ~n in
            let measured = Ptrng_stats.Descriptive.variance s *. f0 *. f0 in
            let predicted = Quantization.floor_variance ~phase:zero ~f0 ~detuning:det ~n in
            Testkit.check_rel ~tol:0.6 (Printf.sprintf "N=%d" n) predicted measured)
          [ 64; 512 ]);
    Testkit.case "saturates at 1/2 for large drift" (fun () ->
        let zero = { Ptrng_noise.Psd_model.b_th = 0.0; b_fl = 0.0 } in
        Testkit.check_rel ~tol:1e-12 "cap" Quantization.saturated_floor
          (Quantization.floor_variance ~phase:zero ~f0 ~detuning:1e-2 ~n:1000));
    Testkit.case "drift combines detuning and jitter in quadrature" (fun () ->
        let d1 = Quantization.drift_per_window ~phase:paper_phase ~f0 ~detuning:0.0 ~n:64 in
        let d2 =
          Quantization.drift_per_window
            ~phase:{ Ptrng_noise.Psd_model.b_th = 0.0; b_fl = 0.0 }
            ~f0 ~detuning:1e-4 ~n:64
        in
        let both =
          Quantization.drift_per_window ~phase:paper_phase ~f0 ~detuning:1e-4 ~n:64
        in
        Testkit.check_rel ~tol:1e-9 "quadrature" (sqrt ((d1 *. d1) +. (d2 *. d2))) both);
    Testkit.case "paper operating point is quantization-dominated until ~1e4" (fun () ->
        Testkit.check_true "N=1000 dominated"
          (Quantization.quantization_dominated ~phase:paper_phase ~f0 ~detuning:1e-4
             ~n:1000);
        Testkit.check_false "N=100000 signal-dominated"
          (Quantization.quantization_dominated ~phase:paper_phase ~f0 ~detuning:1e-4
             ~n:100000));
  ]

let trace_tests =
  let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name in
  [
    Testkit.case "series round-trips exactly" (fun () ->
        let path = tmp "ptrng_series_test.csv" in
        let series = [| 1.5; -2.25e-12; 0.0; 1e300; 3.141592653589793 |] in
        Trace.save_series ~path series;
        let back = Trace.load_series ~path in
        Sys.remove path;
        Alcotest.(check (array (float 0.0))) "identical" series back);
    Testkit.case "curve round-trips exactly" (fun () ->
        let path = tmp "ptrng_curve_test.csv" in
        let pts =
          [|
            { Variance_curve.n = 4; sigma2 = 1e-21; scaled = 1e-5; neff = 100; stderr = 1e-22 };
            { Variance_curve.n = 4096; sigma2 = 3e-18; scaled = 3e-2; neff = 7; stderr = 2e-18 };
          |]
        in
        Trace.save_curve ~path pts;
        let back = Trace.load_curve ~path in
        Sys.remove path;
        Alcotest.(check int) "count" 2 (Array.length back);
        Array.iteri
          (fun i (p : Variance_curve.point) ->
            Alcotest.(check int) "n" pts.(i).Variance_curve.n p.n;
            Testkit.check_rel ~tol:0.0 "sigma2" pts.(i).Variance_curve.sigma2 p.sigma2;
            Alcotest.(check int) "neff" pts.(i).Variance_curve.neff p.neff)
          back);
    Testkit.case "malformed content raises" (fun () ->
        let path = tmp "ptrng_bad_test.csv" in
        let oc = open_out path in
        output_string oc "n,sigma2,scaled,neff,stderr\n1,2,3\n";
        close_out oc;
        (try
           ignore (Trace.load_curve ~path);
           Alcotest.fail "expected Failure"
         with Failure _ -> ());
        Sys.remove path);
  ]

let online_test_tests =
  (* Mechanism-level scenario: thermal jitter amplified 1000x so the
     counter resolves it with a small simulation budget.  The
     paper-calibrated scenario (which needs ~0.4 s of simulated silicon
     time) runs in the benchmark harness. *)
  let amplified =
    { Ptrng_noise.Psd_model.b_th = 276.04 *. 1000.0;
      b_fl = paper_phase.Ptrng_noise.Psd_model.b_fl }
  in
  let test_cfg =
    { Online_test.ns = [| 256; 1024; 4096; 16384 |]; windows = 48; min_fraction = 0.4 }
  in
  let simulate_edges ~seed pair n =
    let p1, p2 = Ptrng_osc.Pair.simulate (Testkit.rng ~seed ()) pair ~n in
    ( Ptrng_osc.Oscillator.edges_of_periods p1,
      Ptrng_osc.Oscillator.edges_of_periods p2 )
  in
  [
    Testkit.case "clean generator passes" (fun () ->
        let n = Online_test.required_cycles test_cfg + 8192 in
        let pair = Ptrng_osc.Pair.of_relative ~f0 ~relative:amplified () in
        let edges1, edges2 = simulate_edges ~seed:31L pair n in
        let v =
          Online_test.run test_cfg ~f0 ~reference_b_th:amplified.b_th ~edges1 ~edges2
        in
        Testkit.check_true "pass" v.pass;
        Testkit.check_rel ~tol:0.6 "estimate near reference" amplified.b_th v.b_th_est);
    Testkit.case "thermal quench trips the alarm while flicker survives" (fun () ->
        let n = Online_test.required_cycles test_cfg + 8192 in
        let pair = Ptrng_osc.Pair.of_relative ~f0 ~relative:amplified () in
        let attacked = Ptrng_trng.Attack.thermal_quench ~factor:0.05 pair in
        let edges1, edges2 = simulate_edges ~seed:32L attacked n in
        let v =
          Online_test.run test_cfg ~f0 ~reference_b_th:amplified.b_th ~edges1 ~edges2
        in
        Testkit.check_false "alarm" v.pass);
    Testkit.case "rejects malformed configs" (fun () ->
        Alcotest.check_raises "grid too small"
          (Invalid_argument "Online_test: need >= 4 grid points")
          (fun () ->
            let cfg = { Online_test.ns = [| 64; 512 |]; windows = 16; min_fraction = 0.5 } in
            ignore
              (Online_test.run cfg ~f0 ~reference_b_th:1.0 ~edges1:[| 0.0 |]
                 ~edges2:[| 0.0 |])));
    Testkit.case "required_cycles accounting" (fun () ->
        let cfg =
          { Online_test.ns = [| 64; 512 |]; windows = 100; min_fraction = 0.5 }
        in
        Alcotest.(check int) "cycles" ((64 + 512) * 100) (Online_test.required_cycles cfg));
  ]

let () =
  Alcotest.run "ptrng_measure"
    [
      ("s_process", s_process_tests);
      ("counter", counter_tests);
      ("variance_curve", variance_curve_tests);
      ("fit", fit_tests);
      ("robustness", robustness_tests);
      ("thermal_extract", thermal_extract_tests);
      ("quantization", quantization_tests);
      ("trace", trace_tests);
      ("online_test", online_test_tests);
    ]
