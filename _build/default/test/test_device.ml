open Ptrng_device

let nominal_mosfet () =
  Mosfet.create ~gm:2e-3 ~i_d:1e-4 ~w:130e-9 ~l:65e-9 ~alpha:7.8e-10 ()

let mosfet_tests =
  [
    Testkit.case "thermal PSD is (8/3) k T gm" (fun () ->
        let m = nominal_mosfet () in
        Testkit.check_rel ~tol:1e-12 "psd"
          (8.0 /. 3.0 *. Constants.boltzmann *. 300.0 *. 2e-3)
          (Mosfet.thermal_psd m));
    Testkit.case "thermal PSD scales with temperature" (fun () ->
        let cold = Mosfet.create ~gm:2e-3 ~i_d:1e-4 ~w:1e-6 ~l:1e-7 ~alpha:1e-10 ~temp:150.0 () in
        let hot = Mosfet.create ~gm:2e-3 ~i_d:1e-4 ~w:1e-6 ~l:1e-7 ~alpha:1e-10 ~temp:300.0 () in
        Testkit.check_rel ~tol:1e-12 "2x" 2.0
          (Mosfet.thermal_psd hot /. Mosfet.thermal_psd cold));
    Testkit.case "flicker PSD follows alpha k T Id^2 / (W L^2 f)" (fun () ->
        let m = nominal_mosfet () in
        let expected f =
          7.8e-10 *. Constants.boltzmann *. 300.0 *. 1e-8 /. (130e-9 *. 65e-9 *. 65e-9 *. f)
        in
        List.iter
          (fun f -> Testkit.check_rel ~tol:1e-12 "psd" (expected f) (Mosfet.flicker_psd m f))
          [ 1.0; 1e3; 1e6 ]);
    Testkit.case "flicker grows as 1/L^2 at fixed W" (fun () ->
        let base = Mosfet.create ~gm:2e-3 ~i_d:1e-4 ~w:1e-6 ~l:100e-9 ~alpha:1e-10 () in
        let short = Mosfet.create ~gm:2e-3 ~i_d:1e-4 ~w:1e-6 ~l:50e-9 ~alpha:1e-10 () in
        Testkit.check_rel ~tol:1e-12 "4x" 4.0
          (Mosfet.flicker_coefficient short /. Mosfet.flicker_coefficient base));
    Testkit.case "total PSD adds the two sources (paper eq. 1)" (fun () ->
        let m = nominal_mosfet () in
        Testkit.check_rel ~tol:1e-12 "sum"
          (Mosfet.thermal_psd m +. Mosfet.flicker_psd m 1e4)
          (Mosfet.total_psd m 1e4));
    Testkit.case "corner frequency crosses over" (fun () ->
        let m = nominal_mosfet () in
        let fc = Mosfet.corner_frequency m in
        Testkit.check_rel ~tol:1e-9 "equal at corner" (Mosfet.thermal_psd m)
          (Mosfet.flicker_psd m fc));
    Testkit.case "rejects non-positive parameters" (fun () ->
        Alcotest.check_raises "gm" (Invalid_argument "Mosfet.create: non-positive gm")
          (fun () ->
            ignore (Mosfet.create ~gm:0.0 ~i_d:1e-4 ~w:1e-6 ~l:1e-7 ~alpha:1e-10 ())));
  ]

let isf_tests =
  [
    Testkit.case "symmetric ring ISF has zero DC" (fun () ->
        let isf = Isf.ring_oscillator ~stages:7 ~asymmetry:0.0 () in
        Testkit.check_abs ~tol:1e-6 "gamma_dc" 0.0 (Isf.gamma_dc isf));
    Testkit.case "gamma_rms matches the Hajimiri closed form" (fun () ->
        (* Triangular lobes: Gamma_rms^2 = pi^2 (1 + (1-a)^2) / (3 N^3),
           i.e. 2 pi^2/(3 N^3) for the symmetric ring. *)
        List.iter
          (fun stages ->
            let isf = Isf.ring_oscillator ~stages ~asymmetry:0.0 () in
            let n = float_of_int stages in
            let expected = sqrt (2.0 *. Float.pi *. Float.pi /. (3.0 *. n ** 3.0)) in
            Testkit.check_rel ~tol:0.01
              (Printf.sprintf "stages=%d" stages)
              expected (Isf.gamma_rms isf))
          [ 3; 5; 7; 11 ]);
    Testkit.case "gamma_dc grows linearly with asymmetry" (fun () ->
        (* Analytic mean: a * pi / (2 N^2). *)
        let stages = 7 in
        List.iter
          (fun a ->
            let isf = Isf.ring_oscillator ~stages ~asymmetry:a () in
            let expected = a *. Float.pi /. (2.0 *. float_of_int (stages * stages)) in
            Testkit.check_rel ~tol:0.02 (Printf.sprintf "a=%.2f" a) expected
              (Isf.gamma_dc isf))
          [ 0.1; 0.2; 0.5 ]);
    Testkit.case "fourier c0 is twice the DC value" (fun () ->
        let isf = Isf.ring_oscillator ~stages:5 ~asymmetry:0.3 () in
        Testkit.check_rel ~tol:1e-9 "c0" (2.0 *. Isf.gamma_dc isf)
          (Isf.fourier_coefficient isf 0));
    Testkit.case "fourier coefficient of a pure cosine" (fun () ->
        let isf = Isf.of_function (fun x -> 0.7 *. cos (3.0 *. x)) in
        Testkit.check_rel ~tol:1e-6 "c3" 0.7 (Isf.fourier_coefficient isf 3);
        Testkit.check_abs ~tol:1e-9 "c2" 0.0 (Isf.fourier_coefficient isf 2));
    Testkit.case "eval interpolates periodically" (fun () ->
        let isf = Isf.of_function (fun x -> sin x) in
        Testkit.check_abs ~tol:1e-3 "sin pi/2" 1.0 (Isf.eval isf (Float.pi /. 2.0));
        Testkit.check_abs ~tol:1e-3 "periodic" 1.0
          (Isf.eval isf ((Float.pi /. 2.0) +. (4.0 *. Float.pi)));
        Testkit.check_abs ~tol:1e-3 "negative arg" (-1.0)
          (Isf.eval isf (-.Float.pi /. 2.0)));
    Testkit.case "rejects degenerate configs" (fun () ->
        Alcotest.check_raises "stages" (Invalid_argument "Isf.ring_oscillator: stages < 3")
          (fun () -> ignore (Isf.ring_oscillator ~stages:2 ())));
  ]

let phase_noise_tests =
  [
    Testkit.case "b_th scales with stage count and current noise" (fun () ->
        let isf = Isf.ring_oscillator ~stages:7 () in
        let base =
          Phase_noise.of_ring ~isf ~qmax:1e-14 ~stages:7 ~thermal_current_psd:1e-23
            ~flicker_current_coeff:1e-17 ()
        in
        let double_noise =
          Phase_noise.of_ring ~isf ~qmax:1e-14 ~stages:7 ~thermal_current_psd:2e-23
            ~flicker_current_coeff:1e-17 ()
        in
        Testkit.check_rel ~tol:1e-12 "2x thermal" 2.0
          (double_noise.Ptrng_noise.Psd_model.b_th /. base.Ptrng_noise.Psd_model.b_th);
        Testkit.check_rel ~tol:1e-12 "flicker unchanged" 1.0
          (double_noise.b_fl /. base.b_fl));
    Testkit.case "b coefficients fall as qmax^2" (fun () ->
        let isf = Isf.ring_oscillator ~stages:7 () in
        let small =
          Phase_noise.of_ring ~isf ~qmax:1e-14 ~stages:7 ~thermal_current_psd:1e-23
            ~flicker_current_coeff:1e-17 ()
        in
        let big =
          Phase_noise.of_ring ~isf ~qmax:2e-14 ~stages:7 ~thermal_current_psd:1e-23
            ~flicker_current_coeff:1e-17 ()
        in
        Testkit.check_rel ~tol:1e-12 "4x" 4.0 (small.Ptrng_noise.Psd_model.b_th /. big.Ptrng_noise.Psd_model.b_th));
    Testkit.case "symmetric ISF kills the flicker up-conversion" (fun () ->
        let isf = Isf.ring_oscillator ~stages:7 ~asymmetry:0.0 () in
        let p =
          Phase_noise.of_ring ~isf ~qmax:1e-14 ~stages:7 ~thermal_current_psd:1e-23
            ~flicker_current_coeff:1e-17 ()
        in
        Testkit.check_true "b_fl ~ 0"
          (p.Ptrng_noise.Psd_model.b_fl < 1e-9 *. p.Ptrng_noise.Psd_model.b_th));
    Testkit.case "ring frequency formula" (fun () ->
        Testkit.check_rel ~tol:1e-12 "f0" (1.0 /. (2.0 *. 7.0 *. 1e-9))
          (Phase_noise.ring_frequency ~stages:7 ~stage_delay:1e-9));
    Testkit.case "inverter helpers" (fun () ->
        let m = nominal_mosfet () in
        let inv = Inverter.create ~nmos:m ~pmos:m ~cl:20e-15 ~vdd:1.2 () in
        Testkit.check_rel ~tol:1e-12 "qmax" 24e-15 (Inverter.qmax inv);
        Testkit.check_rel ~tol:1e-12 "delay" (20e-15 *. 1.2 /. 2e-4)
          (Inverter.stage_delay inv);
        Testkit.check_rel ~tol:1e-12 "thermal mean" (Mosfet.thermal_psd m)
          (Inverter.thermal_current_psd inv));
  ]

let technology_tests =
  [
    Testkit.case "presets include the FPGA node" (fun () ->
        let node = Technology.find "cyclone3-fpga" in
        Testkit.check_rel ~tol:1e-12 "65nm" 65e-9 node.Technology.l);
    Testkit.case "fpga ring lands near 103 MHz" (fun () ->
        let ring = Technology.ring (Technology.find "cyclone3-fpga") in
        Testkit.check_rel ~tol:0.05 "f0" 103e6 ring.Technology.f0);
    Testkit.case "fit_to_measurement reproduces the target exactly" (fun () ->
        let target = { Ptrng_noise.Psd_model.b_th = 138.0; b_fl = 9.576e5 } in
        let node = Technology.fit_to_measurement ~target (Technology.find "cyclone3-fpga") in
        let ring = Technology.ring node in
        Testkit.check_rel ~tol:1e-9 "b_th" 138.0 ring.Technology.phase.Ptrng_noise.Psd_model.b_th;
        Testkit.check_rel ~tol:1e-9 "b_fl" 9.576e5 ring.Technology.phase.Ptrng_noise.Psd_model.b_fl);
    Testkit.case "independence threshold matches the paper (281 at 95%)" (fun () ->
        let phase = { Ptrng_noise.Psd_model.b_th = 276.04;
                      b_fl = 276.04 *. 103e6 /. (4.0 *. log 2.0 *. 5354.0) } in
        Alcotest.(check int) "threshold" 281
          (Technology.independence_threshold_n phase ~f0:103e6 ~confidence:0.95));
    Testkit.case "flicker fraction grows as nodes shrink" (fun () ->
        let asic = List.filter (fun n -> n.Technology.routing_delay = 0.0) Technology.presets in
        let ratios =
          List.map
            (fun node ->
              let r = Technology.ring node in
              r.Technology.phase.Ptrng_noise.Psd_model.b_fl
              /. r.Technology.phase.Ptrng_noise.Psd_model.b_th)
            asic
        in
        let rec monotone = function
          | a :: (b :: _ as rest) -> a < b && monotone rest
          | _ -> true
        in
        Testkit.check_true "monotone flicker/thermal ratio" (monotone ratios));
    Testkit.case "independence threshold shrinks with the node" (fun () ->
        let threshold name =
          let r = Technology.ring (Technology.find name) in
          Technology.independence_threshold_n r.Technology.phase ~f0:r.Technology.f0
            ~confidence:0.95
        in
        Testkit.check_true "350nm allows longer accumulation"
          (threshold "asic-350nm" > threshold "asic-28nm"));
    Testkit.case "unknown preset raises Not_found" (fun () ->
        Alcotest.check_raises "missing" Not_found (fun () ->
            ignore (Technology.find "asic-3nm")));
    Testkit.case "temperature scales the noise but not the threshold" (fun () ->
        let node = Technology.find "cyclone3-fpga" in
        let cold = Technology.ring ~temp:250.0 node in
        let hot = Technology.ring ~temp:350.0 node in
        (* Both b coefficients are proportional to kT. *)
        Testkit.check_rel ~tol:1e-9 "b_th ratio" (350.0 /. 250.0)
          (hot.Technology.phase.Ptrng_noise.Psd_model.b_th
          /. cold.Technology.phase.Ptrng_noise.Psd_model.b_th);
        Testkit.check_rel ~tol:1e-9 "b_fl ratio" (350.0 /. 250.0)
          (hot.Technology.phase.Ptrng_noise.Psd_model.b_fl
          /. cold.Technology.phase.Ptrng_noise.Psd_model.b_fl);
        (* ... so r_N, hence the independence threshold, is invariant. *)
        let threshold r =
          Technology.independence_threshold_n r.Technology.phase
            ~f0:r.Technology.f0 ~confidence:0.95
        in
        Alcotest.(check int) "threshold invariant" (threshold cold) (threshold hot));
  ]

let () =
  Alcotest.run "ptrng_device"
    [
      ("mosfet", mosfet_tests);
      ("isf", isf_tests);
      ("phase_noise", phase_noise_tests);
      ("technology", technology_tests);
    ]
