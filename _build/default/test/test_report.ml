open Ptrng_report

let prng_stream n =
  let rng = Testkit.rng ~seed:0x11EL () in
  Ptrng_trng.Bitstream.of_bools (Array.init n (fun _ -> Ptrng_prng.Rng.bool rng))

let assessment_tests =
  [
    Testkit.case "good source passes the full assessment" (fun () ->
        let t = Assessment.evaluate (prng_stream 60000) in
        Alcotest.(check string) "verdict" "PASS" (Assessment.verdict_name t.verdict);
        Testkit.check_true "ais31 A present" (t.ais31_a <> None);
        Testkit.check_true "90B aggregate positive" (t.sp90b_aggregate > 0.3);
        Alcotest.(check int) "no rct alarms" 0 t.health_rct_alarms);
    Testkit.case "constant source fails everything" (fun () ->
        let t =
          Assessment.evaluate (Ptrng_trng.Bitstream.of_bools (Array.make 30000 true))
        in
        Alcotest.(check string) "verdict" "FAIL" (Assessment.verdict_name t.verdict);
        Testkit.check_true "health fires" (t.health_rct_alarms > 0);
        Testkit.check_abs ~tol:1e-9 "no entropy" 0.0 t.sp90b_aggregate);
    Testkit.case "locked TRNG fails" (fun () ->
        let pair =
          Ptrng_trng.Attack.frequency_injection ~lock_strength:0.9995
            (Ptrng_osc.Pair.paper_pair ())
        in
        let cfg = Ptrng_trng.Ero_trng.config ~divisor:100 pair in
        let stream =
          Ptrng_trng.Ero_trng.generate (Testkit.rng ~seed:17L ()) cfg ~bits:30000
        in
        let t = Assessment.evaluate stream in
        Alcotest.(check string) "verdict" "FAIL" (Assessment.verdict_name t.verdict));
    Testkit.case "short streams skip procedure A but still assess" (fun () ->
        let t = Assessment.evaluate (prng_stream 5000) in
        Testkit.check_true "no procedure A" (t.ais31_a = None);
        Testkit.check_true "nist present" (List.length t.nist >= 6));
    Testkit.case "report renders all sections" (fun () ->
        let t = Assessment.evaluate (prng_stream 30000) in
        let text = Format.asprintf "%a" Assessment.pp t in
        List.iter
          (fun needle ->
            Testkit.check_true needle (Testkit.contains ~needle text))
          [ "AIS31"; "SP 800-22"; "SP 800-90B"; "health"; "overall" ]);
    Testkit.case "rejects tiny streams" (fun () ->
        Alcotest.check_raises "short"
          (Invalid_argument "Assessment.evaluate: need >= 2000 bits")
          (fun () -> ignore (Assessment.evaluate (prng_stream 100))));
  ]

let () = Alcotest.run "ptrng_report" [ ("assessment", assessment_tests) ]
