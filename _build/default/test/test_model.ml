open Ptrng_model

let f0 = Ptrng_osc.Pair.paper_f0
let paper_phase = Ptrng_osc.Pair.paper_relative

let spectral_tests =
  [
    Testkit.case "closed form reproduces eq. 11 term by term" (fun () ->
        let n = 1000 in
        Testkit.check_rel ~tol:1e-12 "thermal"
          (2.0 *. paper_phase.Ptrng_noise.Psd_model.b_th *. 1000.0 /. (f0 ** 3.0))
          (Spectral.sigma2_n_thermal paper_phase ~f0 ~n);
        Testkit.check_rel ~tol:1e-12 "flicker"
          (8.0 *. log 2.0 *. paper_phase.Ptrng_noise.Psd_model.b_fl *. 1e6 /. (f0 ** 4.0))
          (Spectral.sigma2_n_flicker paper_phase ~f0 ~n);
        Testkit.check_rel ~tol:1e-12 "sum"
          (Spectral.sigma2_n_thermal paper_phase ~f0 ~n
          +. Spectral.sigma2_n_flicker paper_phase ~f0 ~n)
          (Spectral.sigma2_n paper_phase ~f0 ~n));
    Testkit.case "paper fit: f0^2 sigma_N^2 ~ 5.36e-6 N (1 + N/5354)" (fun () ->
        List.iter
          (fun n ->
            let fn = float_of_int n in
            let expected = 5.36e-6 *. fn *. (1.0 +. (fn /. 5354.0)) in
            Testkit.check_rel ~tol:2e-3 (Printf.sprintf "N=%d" n) expected
              (Spectral.scaled paper_phase ~f0 ~n))
          [ 10; 281; 5354; 100000 ]);
    Testkit.case "numeric eq. 9 integral matches the closed form" (fun () ->
        (* This validates the appendix calculus: the sin^4 kernel
           integrals against b_fl/f^3 + b_th/f^2. *)
        List.iter
          (fun n ->
            Testkit.check_rel ~tol:1e-4
              (Printf.sprintf "N=%d" n)
              (Spectral.sigma2_n paper_phase ~f0 ~n)
              (Spectral.sigma2_n_numeric paper_phase ~f0 ~n))
          [ 1; 10; 281; 5354 ]);
    Testkit.case "generic PSD integrator agrees on the thermal term" (fun () ->
        let phase = { Ptrng_noise.Psd_model.b_th = 276.04; b_fl = 0.0 } in
        let psd f = 276.04 /. (f *. f) in
        let n = 100 in
        (* Integrate far past the kernel's first decades. *)
        let numeric =
          Spectral.sigma2_n_numeric_of_psd ~psd ~f_max:(200.0 *. f0 /. float_of_int n)
            ~steps:2_000_000 ~f0 ~n
        in
        Testkit.check_rel ~tol:0.02 "thermal only" (Spectral.sigma2_n phase ~f0 ~n) numeric);
    Testkit.case "rejects bad arguments" (fun () ->
        Alcotest.check_raises "n" (Invalid_argument "Spectral: n <= 0") (fun () ->
            ignore (Spectral.sigma2_n paper_phase ~f0 ~n:0)));
  ]

let bienayme_tests =
  let synthetic phase =
    let ns = Ptrng_measure.Variance_curve.log2_grid ~n_min:4 ~n_max:16384 in
    Array.map
      (fun n ->
        let sigma2 = Spectral.sigma2_n phase ~f0 ~n in
        {
          Ptrng_measure.Variance_curve.n;
          sigma2;
          scaled = sigma2 *. f0 *. f0;
          neff = 1000;
          stderr = sigma2 *. 0.01;
        })
      ns
  in
  [
    Testkit.case "linear prediction is 2 N sigma^2" (fun () ->
        Testkit.check_rel ~tol:1e-12 "eq 6" 64.0
          (Bienayme.linear_prediction ~sigma2:2.0 ~n:16));
    Testkit.case "thermal-only curve has growth exponent 1" (fun () ->
        let pts = synthetic { Ptrng_noise.Psd_model.b_th = 276.0; b_fl = 0.0 } in
        let slope, _ = Bienayme.growth_exponent pts in
        Testkit.check_abs ~tol:1e-6 "slope" 1.0 slope);
    Testkit.case "flicker-only curve has growth exponent 2" (fun () ->
        let pts = synthetic { Ptrng_noise.Psd_model.b_th = 0.0; b_fl = 1.9e6 } in
        let slope, _ = Bienayme.growth_exponent pts in
        Testkit.check_abs ~tol:1e-6 "slope" 2.0 slope);
    Testkit.case "paper curve sits between the two regimes" (fun () ->
        let pts = synthetic paper_phase in
        let slope, _ = Bienayme.growth_exponent pts in
        Testkit.check_in_range "slope" ~lo:1.02 ~hi:1.6 slope);
    Testkit.case "departure ratio grows with N under flicker" (fun () ->
        let pts = synthetic paper_phase in
        let ratios = Bienayme.departure_ratio pts in
        let _, first = ratios.(0) in
        let _, last = ratios.(Array.length ratios - 1) in
        Testkit.check_rel ~tol:0.02 "anchored at 1" 1.0 first;
        Testkit.check_true "dependence signature" (last > 1.5));
    Testkit.case "departure ratio stays flat for white jitter" (fun () ->
        let pts = synthetic { Ptrng_noise.Psd_model.b_th = 276.0; b_fl = 0.0 } in
        Array.iter
          (fun (_, r) -> Testkit.check_rel ~tol:1e-6 "flat" 1.0 r)
          (Bienayme.departure_ratio pts));
    Testkit.case "significance flag fires only under flicker" (fun () ->
        let flicker = synthetic paper_phase in
        Testkit.check_true "flagged" (Bienayme.excess_is_significant flicker ~z_threshold:5.0);
        let white = synthetic { Ptrng_noise.Psd_model.b_th = 276.0; b_fl = 0.0 } in
        Testkit.check_false "not flagged"
          (Bienayme.excess_is_significant white ~z_threshold:5.0));
  ]

let entropy_tests =
  [
    Testkit.case "bit probability limits" (fun () ->
        (* Zero jitter: deterministic square wave; huge jitter: a coin. *)
        Testkit.check_rel ~tol:1e-9 "mu in high half" 1.0
          (Entropy.bit_probability ~mu:(Float.pi /. 2.0) ~phase_std:0.0);
        Testkit.check_abs ~tol:1e-9 "mu in low half" 0.0
          (Entropy.bit_probability ~mu:(-.Float.pi /. 2.0) ~phase_std:0.0);
        Testkit.check_rel ~tol:1e-9 "diffused" 0.5
          (Entropy.bit_probability ~mu:(Float.pi /. 2.0) ~phase_std:30.0));
    Testkit.case "probability is monotone toward 1/2 in the jitter" (fun () ->
        let mu = Float.pi /. 2.0 in
        let p1 = Entropy.bit_probability ~mu ~phase_std:0.5 in
        let p2 = Entropy.bit_probability ~mu ~phase_std:1.0 in
        let p3 = Entropy.bit_probability ~mu ~phase_std:2.0 in
        Testkit.check_true "ordered" (p1 > p2 && p2 > p3 && p3 > 0.5));
    Testkit.case "shannon entropy endpoints" (fun () ->
        Testkit.check_abs ~tol:0.0 "h(0)" 0.0 (Entropy.shannon 0.0);
        Testkit.check_abs ~tol:0.0 "h(1)" 0.0 (Entropy.shannon 1.0);
        Testkit.check_rel ~tol:1e-12 "h(1/2)" 1.0 (Entropy.shannon 0.5);
        Testkit.check_rel ~tol:1e-9 "h(1/4)"
          ((0.25 *. 2.0) +. (0.75 *. (log (4.0 /. 3.0) /. log 2.0)))
          (Entropy.shannon 0.25));
    Testkit.case "avg entropy is monotone in phase diffusion" (fun () ->
        let h1 = Entropy.avg_entropy ~phase_std:0.3 in
        let h2 = Entropy.avg_entropy ~phase_std:1.0 in
        let h3 = Entropy.avg_entropy ~phase_std:3.0 in
        Testkit.check_true "monotone" (h1 < h2 && h2 < h3);
        Testkit.check_in_range "saturates at 1" ~lo:0.9999 ~hi:1.0 h3);
    Testkit.case "min entropy is a lower bound on avg entropy" (fun () ->
        List.iter
          (fun s ->
            Testkit.check_true
              (Printf.sprintf "s=%.1f" s)
              (Entropy.min_entropy ~phase_std:s <= Entropy.avg_entropy ~phase_std:s +. 1e-9))
          [ 0.2; 0.5; 1.0; 2.0 ]);
    Testkit.case "closed approximation converges to the exact average" (fun () ->
        List.iter
          (fun (s, tol) ->
            let approx = Entropy.entropy_lower_bound ~phase_std:s in
            let exact = Entropy.avg_entropy ~phase_std:s in
            Testkit.check_abs ~tol (Printf.sprintf "s=%.1f" s) exact approx)
          [ (1.5, 2e-2); (2.0, 1e-3); (3.0, 1e-6) ]);
    Testkit.case "phase std conversions" (fun () ->
        Testkit.check_rel ~tol:1e-12 "accumulated"
          (2.0 *. Float.pi *. 103e6 *. 1e-9)
          (Entropy.phase_std_of_accumulated_jitter ~sigma_acc:1e-9 ~f0:103e6);
        Testkit.check_rel ~tol:1e-12 "thermal sqrt(k)"
          (2.0 *. Float.pi *. 103e6 *. 15.89e-12 *. sqrt 1000.0)
          (Entropy.phase_std_thermal ~sigma_period:15.89e-12 ~k:1000 ~f0:103e6));
  ]

let compare_tests =
  [
    Testkit.case "naive sigma grows with measurement length N" (fun () ->
        let extract = Ptrng_measure.Thermal_extract.of_phase ~f0 paper_phase in
        let rows =
          Compare.overestimation_table ~extract ~sampling_periods:1000
            ~ns:[| 10; 281; 5354; 50000 |]
        in
        for i = 1 to Array.length rows - 1 do
          Testkit.check_true "sigma_naive increasing"
            (rows.(i).Compare.sigma_naive > rows.(i - 1).Compare.sigma_naive)
        done);
    Testkit.case "entropy overestimate is nonnegative and grows" (fun () ->
        let extract = Ptrng_measure.Thermal_extract.of_phase ~f0 paper_phase in
        let rows =
          Compare.overestimation_table ~extract ~sampling_periods:300
            ~ns:[| 10; 5354; 100000 |]
        in
        Array.iter
          (fun r -> Testkit.check_true "nonnegative" (r.Compare.overestimate >= -1e-9))
          rows;
        Testkit.check_true "grows with N"
          (rows.(2).Compare.overestimate > rows.(0).Compare.overestimate);
        Testkit.check_true "material at large N" (rows.(2).Compare.overestimate > 0.01));
    Testkit.case "at small N the two models agree" (fun () ->
        let extract = Ptrng_measure.Thermal_extract.of_phase ~f0 paper_phase in
        let rows =
          Compare.overestimation_table ~extract ~sampling_periods:300 ~ns:[| 1 |]
        in
        Testkit.check_abs ~tol:1e-3 "no overestimate yet" 0.0 rows.(0).Compare.overestimate);
    Testkit.case "sigma_naive_of_point definition" (fun () ->
        let p =
          { Ptrng_measure.Variance_curve.n = 50; sigma2 = 1e-22; scaled = 0.0;
            neff = 10; stderr = 0.0 }
        in
        Testkit.check_rel ~tol:1e-12 "sqrt(sigma2/2N)"
          (sqrt (1e-22 /. 100.0))
          (Compare.sigma_naive_of_point p));
  ]

let bit_markov_tests =
  [
    Testkit.case "limits of the stay probability" (fun () ->
        (* No movement between samples: the bit repeats forever. *)
        let frozen = Bit_markov.create ~drift:0.0 ~diffusion:0.0 in
        Testkit.check_rel ~tol:1e-6 "frozen" 1.0 frozen.p_stay;
        (* Half-period drift with no noise: deterministic alternation. *)
        let flip = Bit_markov.create ~drift:Float.pi ~diffusion:1e-6 in
        Testkit.check_abs ~tol:1e-3 "flip" 0.0 flip.p_stay;
        (* Huge diffusion: a fair coin regardless of drift. *)
        let coin = Bit_markov.create ~drift:1.0 ~diffusion:20.0 in
        Testkit.check_rel ~tol:1e-6 "coin" 0.5 coin.p_stay);
    Testkit.case "entropy rate spans [0, 1] with diffusion" (fun () ->
        let low = Bit_markov.create ~drift:0.0 ~diffusion:0.1 in
        let mid = Bit_markov.create ~drift:0.0 ~diffusion:1.0 in
        let high = Bit_markov.create ~drift:0.0 ~diffusion:5.0 in
        Testkit.check_true "ordering"
          (Bit_markov.entropy_rate low < Bit_markov.entropy_rate mid
          && Bit_markov.entropy_rate mid < Bit_markov.entropy_rate high);
        Testkit.check_in_range "saturates" ~lo:0.999 ~hi:1.0
          (Bit_markov.entropy_rate high));
    Testkit.case "bit-conditioned rate dominates the phase-conditioned bound" (fun () ->
        (* The previous bit is a coarsening of the previous phase, so
           H(b'|b) >= H(b'|phi) — data processing. *)
        List.iter
          (fun diffusion ->
            let m = Bit_markov.create ~drift:0.0 ~diffusion in
            Testkit.check_true
              (Printf.sprintf "s=%.1f" diffusion)
              (Bit_markov.entropy_rate m
              >= Bit_markov.phase_conditioned_entropy m -. 1e-6))
          [ 0.3; 0.7; 1.5; 3.0 ]);
    Testkit.case "model matches the simulated thermal-only TRNG" (fun () ->
        (* Thermal-only pair so the model assumptions hold exactly. *)
        let sigma_rel = 15.89e-12 *. 10.0 in
        let f0 = Ptrng_osc.Pair.paper_f0 in
        let divisor = 200 in
        let detuning = 1e-4 in
        let relative =
          { Ptrng_noise.Psd_model.b_th = sigma_rel *. sigma_rel *. (f0 ** 3.0);
            b_fl = 0.0 }
        in
        let pair =
          Ptrng_osc.Pair.of_relative ~flicker_generator:`None ~detuning ~f0 ~relative ()
        in
        let cfg = Ptrng_trng.Ero_trng.config ~divisor pair in
        let stream =
          Ptrng_trng.Ero_trng.generate (Testkit.rng ~seed:14L ()) cfg ~bits:30000
        in
        let measured =
          Bit_markov.measured_p_stay (Ptrng_trng.Bitstream.to_bools stream)
        in
        let model =
          Bit_markov.of_thermal ~sigma_period:sigma_rel ~divisor ~detuning ~f0
        in
        Testkit.check_abs ~tol:0.03 "stay probability" model.p_stay measured);
    Testkit.case "total-jitter diffusion overstates the rate" (fun () ->
        (* The paper's warning restated on this model: a diffusion blown
           up by flicker-contaminated sigma inflates the entropy rate. *)
        let honest = Bit_markov.create ~drift:0.3 ~diffusion:0.5 in
        let naive = Bit_markov.create ~drift:0.3 ~diffusion:(0.5 *. 4.4) in
        Testkit.check_true "overstated"
          (Bit_markov.entropy_rate naive > Bit_markov.entropy_rate honest +. 0.1));
  ]

let phase_chain_tests =
  [
    Testkit.case "stationary distribution is uniform" (fun () ->
        let chain = Phase_chain.create ~bins:64 ~drift:0.7 ~diffusion:0.9 () in
        let pi_dist = Phase_chain.stationary chain in
        Array.iter
          (fun p -> Testkit.check_rel ~tol:1e-6 "uniform" (1.0 /. 64.0) p)
          pi_dist);
    Testkit.case "marginal bit probability is 1/2" (fun () ->
        let chain = Phase_chain.create ~drift:0.3 ~diffusion:0.8 () in
        Testkit.check_rel ~tol:1e-6 "fair" 0.5 (Phase_chain.marginal_bit_probability chain));
    Testkit.case "agrees with the analytic phase-conditioned entropy" (fun () ->
        (* Two independent numerical pipelines for H(b'|phase): the
           discrete chain vs Entropy.avg_entropy's direct integral. *)
        List.iter
          (fun s ->
            let chain = Phase_chain.create ~bins:512 ~drift:0.0 ~diffusion:s () in
            Testkit.check_abs ~tol:5e-3
              (Printf.sprintf "s=%.1f" s)
              (Entropy.avg_entropy ~phase_std:s)
              (Phase_chain.entropy_rate_given_state chain))
          [ 0.3; 0.7; 1.2; 2.0 ]);
    Testkit.case "zero diffusion with half-period drift is deterministic" (fun () ->
        let chain = Phase_chain.create ~drift:Float.pi ~diffusion:0.0 () in
        Testkit.check_abs ~tol:1e-9 "no entropy" 0.0
          (Phase_chain.entropy_rate_given_state chain));
    Testkit.case "simulated bits match Bit_markov's stay probability" (fun () ->
        let drift = 0.4 and diffusion = 0.8 in
        let chain = Phase_chain.create ~bins:512 ~drift ~diffusion () in
        let bits = Phase_chain.simulate (Testkit.rng ~seed:51L ()) chain ~bits:100000 in
        let markov = Bit_markov.create ~drift ~diffusion in
        Testkit.check_abs ~tol:0.01 "p_stay" markov.p_stay
          (Bit_markov.measured_p_stay bits));
    Testkit.case "rejects degenerate parameters" (fun () ->
        Alcotest.check_raises "bins" (Invalid_argument "Phase_chain.create: bins < 8")
          (fun () -> ignore (Phase_chain.create ~bins:4 ~drift:0.0 ~diffusion:1.0 ())));
  ]

let design_tests =
  let extract = Ptrng_measure.Thermal_extract.of_phase ~f0 paper_phase in
  [
    Testkit.case "entropy grows with the divisor" (fun () ->
        let h1 = Design.entropy_at ~extract ~divisor:1000 in
        let h2 = Design.entropy_at ~extract ~divisor:10000 in
        let h3 = Design.entropy_at ~extract ~divisor:100000 in
        Testkit.check_true "monotone" (h1 < h2 && h2 < h3));
    Testkit.case "required divisor brackets the target" (fun () ->
        let k = Design.required_divisor ~extract () in
        Testkit.check_true "meets target" (Design.entropy_at ~extract ~divisor:k >= 0.997);
        Testkit.check_true "minimal"
          (k = 1 || Design.entropy_at ~extract ~divisor:(k - 1) < 0.997));
    Testkit.case "paper generator needs tens of thousands of periods" (fun () ->
        (* sigma/T0 = 1.6e-3: the AIS31 PTG.2 target needs the phase to
           diffuse by ~2.3 rad, i.e. K ~ (2.3 / (2 pi 1.6e-3))^2. *)
        let k = Design.required_divisor ~extract () in
        Testkit.check_in_range "order of magnitude" ~lo:20000.0 ~hi:80000.0
          (float_of_int k));
    Testkit.case "throughput is f0 / divisor" (fun () ->
        Testkit.check_rel ~tol:1e-12 "rate" (103e6 /. 50000.0)
          (Design.throughput ~extract ~divisor:50000));
    Testkit.case "naive design under-provisions the divisor" (fun () ->
        (* Total jitter measured over 100000 periods inflates sigma by
           ~4.4x, shrinking the chosen divisor by ~20x: concrete
           security damage of the independence assumption. *)
        let naive = Design.naive_divisor ~extract ~measured_at:100000 () in
        let honest = Design.required_divisor ~extract () in
        Testkit.check_true "naive is smaller" (naive < honest / 4);
        let real_entropy = Design.entropy_at ~extract ~divisor:naive in
        Testkit.check_true "delivered entropy misses the target"
          (real_entropy < 0.99));
    Testkit.case "rejects bad targets" (fun () ->
        Alcotest.check_raises "target" (Invalid_argument "Design: target outside (0,1)")
          (fun () -> ignore (Design.required_divisor ~target:1.5 ~extract ())));
  ]

let multilevel_tests =
  [
    Testkit.case "predicted curve matches the closed form" (fun () ->
        let curve =
          Multilevel.predicted_curve paper_phase ~f0 ~ns:[| 10; 100 |]
        in
        Array.iter
          (fun (n, v) ->
            Testkit.check_rel ~tol:1e-12 "scaled" (Spectral.scaled paper_phase ~f0 ~n) v)
          curve);
    Testkit.case "nominal f0 averages the pair" (fun () ->
        let pair =
          Ptrng_osc.Pair.of_relative ~detuning:1e-3 ~f0 ~relative:paper_phase ()
        in
        Testkit.check_rel ~tol:1e-12 "mean" f0 (Multilevel.nominal_f0 pair));
    Testkit.case "characterize rejects tiny traces" (fun () ->
        Alcotest.check_raises "small"
          (Invalid_argument "Multilevel.characterize: n_periods < 1024")
          (fun () ->
            ignore
              (Multilevel.characterize ~n_periods:100 ~rng:(Testkit.rng ())
                 (Ptrng_osc.Pair.paper_pair ()))));
  ]

let () =
  Alcotest.run "ptrng_model"
    [
      ("spectral", spectral_tests);
      ("bienayme", bienayme_tests);
      ("entropy", entropy_tests);
      ("compare", compare_tests);
      ("bit_markov", bit_markov_tests);
      ("design", design_tests);
      ("phase_chain", phase_chain_tests);
      ("multilevel", multilevel_tests);
    ]
