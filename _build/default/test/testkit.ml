(* Shared helpers for the alcotest suites. *)

let check_rel ~tol name expected actual =
  let ok =
    if expected = 0.0 then Float.abs actual <= tol
    else Float.abs ((actual -. expected) /. expected) <= tol
  in
  if not ok then
    Alcotest.failf "%s: expected %.8g within %.2g%% but got %.8g"
      name expected (tol *. 100.0) actual

let check_abs ~tol name expected actual =
  if Float.abs (actual -. expected) > tol then
    Alcotest.failf "%s: expected %.8g +- %.3g but got %.8g" name expected tol actual

let check_in_range name ~lo ~hi actual =
  if actual < lo || actual > hi then
    Alcotest.failf "%s: %.8g outside [%.8g, %.8g]" name actual lo hi

let check_true name cond = Alcotest.(check bool) name true cond
let check_false name cond = Alcotest.(check bool) name false cond

let rng ?(seed = 0x5EEDL) () = Ptrng_prng.Rng.create ~seed ()

let case name f = Alcotest.test_case name `Quick f
let slow_case name f = Alcotest.test_case name `Slow f

let qcheck ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  nl = 0 || scan 0
