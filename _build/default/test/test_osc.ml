open Ptrng_osc

let paper_phase = Pair.paper_relative
let f0 = Pair.paper_f0

let thermal_only_config () =
  Oscillator.config ~f0
    ~phase:{ Ptrng_noise.Psd_model.b_th = paper_phase.Ptrng_noise.Psd_model.b_th; b_fl = 0.0 }
    ()

let oscillator_tests =
  [
    Testkit.case "mean period is 1/f0" (fun () ->
        let cfg = thermal_only_config () in
        let p = Oscillator.periods (Testkit.rng ()) cfg ~n:100000 in
        Testkit.check_rel ~tol:1e-4 "mean" (1.0 /. f0) (Ptrng_stats.Descriptive.mean p));
    Testkit.case "thermal sigma formula" (fun () ->
        let cfg = thermal_only_config () in
        Testkit.check_rel ~tol:1e-3 "15.89 ps" 15.89e-12 (Oscillator.thermal_sigma cfg));
    Testkit.case "thermal-only jitter variance is b_th/f0^3" (fun () ->
        let cfg = thermal_only_config () in
        let p = Oscillator.periods (Testkit.rng ()) cfg ~n:200000 in
        let j = Oscillator.jitter_of_periods ~f0 p in
        Testkit.check_rel ~tol:0.02 "variance"
          (paper_phase.Ptrng_noise.Psd_model.b_th /. (f0 ** 3.0))
          (Ptrng_stats.Descriptive.variance j));
    Testkit.case "simulated jitter is Gaussian out to the tails" (fun () ->
        let cfg = Oscillator.config ~f0 ~phase:paper_phase () in
        let p = Oscillator.periods (Testkit.rng ~seed:21L ()) cfg ~n:20000 in
        let j = Oscillator.jitter_of_periods ~f0 p in
        let r = Ptrng_stats.Tests.anderson_darling_normal j in
        Testkit.check_true "AD normality" (r.p_value > 0.005));
    Testkit.case "thermal-only jitter realizations are independent" (fun () ->
        let cfg = thermal_only_config () in
        let p = Oscillator.periods (Testkit.rng ()) cfg ~n:100000 in
        let j = Oscillator.jitter_of_periods ~f0 p in
        let r = Ptrng_stats.Tests.ljung_box ~lags:20 j in
        Testkit.check_true "white" (r.p_value > 0.001));
    Testkit.case "flicker makes jitter realizations dependent" (fun () ->
        let cfg = Oscillator.config ~f0 ~phase:paper_phase () in
        let p = Oscillator.periods (Testkit.rng ()) cfg ~n:(1 lsl 17) in
        let j = Oscillator.jitter_of_periods ~f0 p in
        let r = Ptrng_stats.Tests.variance_ratio j ~q:4096 in
        Testkit.check_true "super-linear variance growth" (r.statistic > 5.0));
    Testkit.case "edges are strictly increasing and cumulative" (fun () ->
        let cfg = Oscillator.config ~f0 ~phase:paper_phase () in
        let p = Oscillator.periods (Testkit.rng ()) cfg ~n:10000 in
        let e = Oscillator.edges_of_periods ~t0:1.0 p in
        Alcotest.(check int) "length" 10001 (Array.length e);
        Testkit.check_rel ~tol:0.0 "origin" 1.0 e.(0);
        for i = 0 to 9999 do
          Testkit.check_true "monotone" (e.(i + 1) > e.(i))
        done;
        Testkit.check_rel ~tol:1e-12 "total"
          (1.0 +. Array.fold_left ( +. ) 0.0 p)
          e.(10000));
    Testkit.case "flicker generators all produce the right s_N growth" (fun () ->
        (* Quadratic flicker contribution with matching coefficient for
           each of the three 1/f synthesisers. *)
        let n_test = 2048 in
        List.iter
          (fun gen ->
            let cfg =
              Oscillator.config ~flicker_generator:gen ~f0
                ~phase:{ Ptrng_noise.Psd_model.b_th = 0.0; b_fl = paper_phase.Ptrng_noise.Psd_model.b_fl }
                ()
            in
            let p = Oscillator.periods (Testkit.rng ~seed:11L ()) cfg ~n:(1 lsl 17) in
            let j = Oscillator.jitter_of_periods ~f0 p in
            let s = Ptrng_measure.S_process.realizations ~n:n_test j in
            let expected =
              8.0 *. log 2.0 *. paper_phase.Ptrng_noise.Psd_model.b_fl
              *. float_of_int (n_test * n_test) /. (f0 ** 4.0)
            in
            let tol = match gen with `Voss -> 0.5 | _ -> 0.3 in
            Testkit.check_rel ~tol
              (match gen with `Spectral -> "spectral" | `Kasdin -> "kasdin" | `Voss -> "voss" | `None -> "none")
              expected
              (Ptrng_stats.Descriptive.variance s))
          [ `Spectral; `Kasdin; `Voss ]);
    Testkit.case "flicker_generator `None drops the 1/f part" (fun () ->
        let cfg = Oscillator.config ~flicker_generator:`None ~f0 ~phase:paper_phase () in
        let p = Oscillator.periods (Testkit.rng ()) cfg ~n:100000 in
        let j = Oscillator.jitter_of_periods ~f0 p in
        Testkit.check_rel ~tol:0.03 "thermal variance only"
          (paper_phase.Ptrng_noise.Psd_model.b_th /. (f0 ** 3.0))
          (Ptrng_stats.Descriptive.variance j));
    Testkit.case "rejects bad parameters" (fun () ->
        Alcotest.check_raises "f0" (Invalid_argument "Oscillator.config: f0 <= 0")
          (fun () -> ignore (Oscillator.config ~f0:0.0 ~phase:paper_phase ())));
    Testkit.case "random-walk FM produces the cubic sigma_N^2 regime" (fun () ->
        (* Aging only: Var(s_N) = (4 pi^2/3) h-2 N^3 / f0^3. *)
        let hm2 = 1e-14 in
        let cfg =
          Oscillator.config ~rw_hm2:hm2 ~f0
            ~phase:{ Ptrng_noise.Psd_model.b_th = 0.0; b_fl = 0.0 }
            ()
        in
        let p = Oscillator.periods (Testkit.rng ~seed:77L ()) cfg ~n:(1 lsl 17) in
        let j = Oscillator.jitter_of_periods ~f0 p in
        List.iter
          (fun n ->
            let s = Ptrng_measure.S_process.realizations ~n j in
            Testkit.check_rel ~tol:0.35
              (Printf.sprintf "N=%d" n)
              (Ptrng_model.Spectral.sigma2_n_random_walk ~hm2 ~f0 ~n)
              (Ptrng_stats.Descriptive.variance s))
          [ 64; 256; 1024 ];
        (* And the log-log growth exponent approaches 3. *)
        let pts =
          Ptrng_measure.Variance_curve.of_jitter ~f0
            ~ns:[| 16; 64; 256; 1024; 4096 |] j
        in
        let slope, _ = Ptrng_model.Bienayme.growth_exponent pts in
        Testkit.check_in_range "cubic regime" ~lo:2.7 ~hi:3.2 slope);
    Testkit.slow_case "excess-phase PSD reproduces S_phi = b_fl/f^3 + b_th/f^2"
      (fun () ->
        (* The full multilevel loop: simulate at event level, measure the
           paper's eq. 10 back out of phi(t).  One-sided estimate = 2x
           the paper's two-sided coefficients. *)
        let cfg = Oscillator.config ~f0 ~phase:paper_phase () in
        let p = Oscillator.periods (Testkit.rng ~seed:33L ()) cfg ~n:(1 lsl 20) in
        let phi = Oscillator.excess_phase ~f0 p in
        let s = Ptrng_signal.Psd.welch ~seg_len:(1 lsl 16) ~fs:f0 phi in
        let model f =
          2.0
          *. ((paper_phase.Ptrng_noise.Psd_model.b_fl /. (f ** 3.0))
             +. (paper_phase.Ptrng_noise.Psd_model.b_th /. (f *. f)))
        in
        List.iter
          (fun (f_lo, f_hi, tol) ->
            let f_mid = sqrt (f_lo *. f_hi) in
            let measured = Ptrng_signal.Psd.band_mean s ~f_lo ~f_hi in
            (* Compare with the band-averaged model, not the midpoint. *)
            let model_avg =
              let steps = 50 in
              let acc = ref 0.0 in
              for i = 0 to steps - 1 do
                let f = f_lo +. ((f_hi -. f_lo) *. (float_of_int i +. 0.5) /. float_of_int steps) in
                acc := !acc +. model f
              done;
              !acc /. float_of_int steps
            in
            Testkit.check_rel ~tol
              (Printf.sprintf "band around %.0f Hz" f_mid)
              model_avg measured)
          [ (2.0e4, 1.0e5, 0.25); (2.0e5, 1.0e6, 0.15); (2.0e6, 2.0e7, 0.1) ]);
  ]

let pair_tests =
  [
    Testkit.case "relative coefficients are split in half" (fun () ->
        let pair = Pair.paper_pair () in
        Testkit.check_rel ~tol:1e-12 "osc1 b_th"
          (paper_phase.Ptrng_noise.Psd_model.b_th /. 2.0)
          pair.Pair.osc1.Oscillator.phase.Ptrng_noise.Psd_model.b_th;
        Testkit.check_rel ~tol:1e-12 "osc2 b_fl"
          (paper_phase.Ptrng_noise.Psd_model.b_fl /. 2.0)
          pair.Pair.osc2.Oscillator.phase.Ptrng_noise.Psd_model.b_fl);
    Testkit.case "detuning separates the frequencies symmetrically" (fun () ->
        let pair =
          Pair.of_relative ~detuning:1e-3 ~f0 ~relative:paper_phase ()
        in
        Testkit.check_rel ~tol:1e-12 "mean preserved" f0
          ((pair.Pair.osc1.Oscillator.f0 +. pair.Pair.osc2.Oscillator.f0) /. 2.0);
        Testkit.check_rel ~tol:1e-9 "offset" 1e-3
          ((pair.Pair.osc1.Oscillator.f0 -. pair.Pair.osc2.Oscillator.f0) /. f0));
    Testkit.case "paper_relative implies the paper's r_N ratio" (fun () ->
        (* b_th f0 / (4 ln2 b_fl) = 5354. *)
        let k =
          paper_phase.Ptrng_noise.Psd_model.b_th *. f0
          /. (4.0 *. log 2.0 *. paper_phase.Ptrng_noise.Psd_model.b_fl)
        in
        Testkit.check_rel ~tol:1e-9 "k ratio" 5354.0 k);
    Testkit.case "relative jitter variance is the sum of halves" (fun () ->
        let pair =
          Pair.of_relative ~flicker_generator:`None ~f0 ~relative:paper_phase ()
        in
        let p1, p2 = Pair.simulate (Testkit.rng ()) pair ~n:200000 in
        let rel = Ptrng_measure.S_process.relative_jitter ~periods1:p1 ~periods2:p2 in
        let j = Ptrng_signal.Filter.remove_mean rel in
        Testkit.check_rel ~tol:0.03 "variance"
          (paper_phase.Ptrng_noise.Psd_model.b_th /. (f0 ** 3.0))
          (Ptrng_stats.Descriptive.variance j));
    Testkit.case "simulate draws independent streams" (fun () ->
        let pair = Pair.paper_pair () in
        let p1, p2 = Pair.simulate (Testkit.rng ()) pair ~n:50000 in
        let j1 = Ptrng_signal.Filter.remove_mean p1 in
        let j2 = Ptrng_signal.Filter.remove_mean p2 in
        let cross = ref 0.0 in
        for i = 0 to 49999 do
          cross := !cross +. (j1.(i) *. j2.(i))
        done;
        let corr =
          !cross /. float_of_int 50000
          /. (Ptrng_stats.Descriptive.std j1 *. Ptrng_stats.Descriptive.std j2)
        in
        Testkit.check_abs ~tol:0.05 "cross-correlation" 0.0 corr);
  ]

let restart_tests =
  let single_osc_phase =
    (* One oscillator carrying the full relative coefficients, so the
       numbers are directly comparable to the free-running analysis. *)
    paper_phase
  in
  [
    Testkit.case "accumulated variance across restarts is thermal-linear" (fun () ->
        let cfg = Oscillator.config ~f0 ~phase:single_osc_phase () in
        let runs = Restart.ensemble (Testkit.rng ~seed:44L ()) cfg ~restarts:4000 ~n:4096 in
        let sigma_th2 = single_osc_phase.Ptrng_noise.Psd_model.b_th /. (f0 ** 3.0) in
        List.iter
          (fun n ->
            Testkit.check_rel ~tol:0.1
              (Printf.sprintf "N=%d" n)
              (float_of_int n *. sigma_th2)
              (Restart.accumulated_variance runs ~n))
          [ 64; 512; 4096 ]);
    Testkit.case "restart curve has growth exponent ~1 despite flicker" (fun () ->
        let cfg = Oscillator.config ~f0 ~phase:single_osc_phase () in
        let runs = Restart.ensemble (Testkit.rng ~seed:45L ()) cfg ~restarts:2000 ~n:4096 in
        let curve = Restart.variance_curve runs ~ns:[| 16; 64; 256; 1024; 4096 |] in
        let slope = Restart.growth_exponent curve in
        Testkit.check_abs ~tol:0.07 "linear" 1.0 slope);
    Testkit.case "free-running s_N beats restarts only because of flicker" (fun () ->
        (* Same oscillator, free-running: the paper's sigma_N^2 at large N
           exceeds the restart ensemble variance at the same N. *)
        let cfg = Oscillator.config ~f0 ~phase:single_osc_phase () in
        let n_test = 4096 in
        let runs = Restart.ensemble (Testkit.rng ~seed:46L ()) cfg ~restarts:500 ~n:n_test in
        let restart_var = Restart.accumulated_variance runs ~n:n_test in
        let free =
          Ptrng_model.Spectral.sigma2_n single_osc_phase ~f0 ~n:n_test /. 2.0
        in
        (* sigma_N^2 is a two-block statistic: /2 for one accumulation.
           The flicker excess ratio is 1 + N/5354 = 1.77 at N = 4096. *)
        Testkit.check_rel ~tol:0.15 "flicker excess ratio"
          (1.0 +. (float_of_int n_test /. 5354.0))
          (free /. restart_var));
    Testkit.case "rejects degenerate sizes" (fun () ->
        let cfg = Oscillator.config ~f0 ~phase:single_osc_phase () in
        Alcotest.check_raises "restarts" (Invalid_argument "Restart.ensemble: restarts <= 0")
          (fun () -> ignore (Restart.ensemble (Testkit.rng ()) cfg ~restarts:0 ~n:8)));
  ]

let () =
  Alcotest.run "ptrng_osc"
    [
      ("oscillator", oscillator_tests);
      ("pair", pair_tests);
      ("restart", restart_tests);
    ]
