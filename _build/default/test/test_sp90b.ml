open Ptrng_sp90b

let random_bits ?(seed = 0x90BL) n =
  let rng = Testkit.rng ~seed () in
  Array.init n (fun _ -> Ptrng_prng.Rng.bool rng)

let biased_bits ~p n =
  let rng = Testkit.rng ~seed:0xB1A5EDL () in
  Array.init n (fun _ -> Ptrng_prng.Distributions.bernoulli rng ~p)

(* A Markov chain that is balanced (50% ones) but strongly persistent:
   the adversarially relevant structure MCV cannot see. *)
let sticky_bits ~stay n =
  let rng = Testkit.rng ~seed:0x571CL () in
  let out = Array.make n false in
  for i = 1 to n - 1 do
    out.(i) <-
      (if Ptrng_prng.Rng.float rng < stay then out.(i - 1) else not out.(i - 1))
  done;
  out

let mcv_tests =
  [
    Testkit.case "near 1 bit for balanced bits" (fun () ->
        let e = Estimators.most_common_value (random_bits 100000) in
        Testkit.check_in_range "min-entropy" ~lo:0.95 ~hi:1.0 e.min_entropy);
    Testkit.case "matches the bias for a skewed source" (fun () ->
        let e = Estimators.most_common_value (biased_bits ~p:0.75 100000) in
        (* -log2(0.75) = 0.415; CI pulls it slightly lower. *)
        Testkit.check_in_range "min-entropy" ~lo:0.38 ~hi:0.42 e.min_entropy);
    Testkit.case "zero for a constant source" (fun () ->
        let e = Estimators.most_common_value (Array.make 1000 true) in
        Testkit.check_abs ~tol:1e-9 "min-entropy" 0.0 e.min_entropy);
    Testkit.case "rejects short input" (fun () ->
        Alcotest.check_raises "short"
          (Invalid_argument "Estimators.most_common_value: need >= 100 bits")
          (fun () -> ignore (Estimators.most_common_value (Array.make 10 true))));
  ]

let collision_tests =
  [
    Testkit.case "near 1 bit for balanced iid bits" (fun () ->
        (* Near p = 1/2 the inversion p = 1/2 + sqrt(1/4 - pq) turns an
           O(eps) confidence margin on the mean into an O(sqrt eps)
           margin on p — the binary collision estimator is known to be
           conservative for full-entropy sources. *)
        let e = Estimators.collision (random_bits 100000) in
        Testkit.check_in_range "min-entropy" ~lo:0.8 ~hi:1.0 e.min_entropy);
    Testkit.case "detects bias" (fun () ->
        let e = Estimators.collision (biased_bits ~p:0.7 100000) in
        (* p_u ~ 0.7 -> H ~ 0.51. *)
        Testkit.check_in_range "min-entropy" ~lo:0.42 ~hi:0.58 e.min_entropy);
    Testkit.case "estimate is conservative (p_max upper bound)" (fun () ->
        let e = Estimators.collision (biased_bits ~p:0.7 200000) in
        Testkit.check_true "p_max >= true p" (e.p_max >= 0.69));
  ]

let markov_tests =
  [
    Testkit.case "near 1 bit for iid bits" (fun () ->
        let e = Estimators.markov (random_bits 100000) in
        Testkit.check_in_range "min-entropy" ~lo:0.9 ~hi:1.0 e.min_entropy);
    Testkit.case "catches balanced-but-sticky dependence MCV misses" (fun () ->
        let bits = sticky_bits ~stay:0.9 200000 in
        let mcv = Estimators.most_common_value bits in
        let markov = Estimators.markov bits in
        (* MCV sees a balanced source; Markov sees P(stay) = 0.9. *)
        Testkit.check_true "MCV fooled" (mcv.min_entropy > 0.9);
        Testkit.check_in_range "markov honest" ~lo:0.1 ~hi:0.2 markov.min_entropy);
    Testkit.case "zero for deterministic alternation" (fun () ->
        let bits = Array.init 10000 (fun i -> i land 1 = 0) in
        let e = Estimators.markov bits in
        Testkit.check_in_range "min-entropy" ~lo:0.0 ~hi:0.02 e.min_entropy);
  ]

let t_tuple_tests =
  [
    Testkit.case "near 1 bit for iid bits" (fun () ->
        let e = Estimators.t_tuple (random_bits 100000) in
        Testkit.check_in_range "min-entropy" ~lo:0.85 ~hi:1.0 e.min_entropy);
    Testkit.case "crushes a short periodic pattern" (fun () ->
        (* Period-4 pattern: every t-tuple is one of 4 rotations, so the
           estimate converges to -(1/t) log2(1/4) = 2/t = 0.125 at the
           default max_t = 16. *)
        let bits = Array.init 50000 (fun i -> i mod 4 < 2) in
        let e = Estimators.t_tuple bits in
        Testkit.check_in_range "min-entropy" ~lo:0.05 ~hi:0.15 e.min_entropy;
        let deeper = Estimators.t_tuple ~max_t:32 bits in
        Testkit.check_true "longer tuples tighten the bound"
          (deeper.min_entropy < e.min_entropy));
    Testkit.case "detects bias at least as hard as MCV" (fun () ->
        let bits = biased_bits ~p:0.8 100000 in
        let t = Estimators.t_tuple bits in
        let mcv = Estimators.most_common_value bits in
        Testkit.check_true "t-tuple <= MCV + noise"
          (t.min_entropy <= mcv.min_entropy +. 0.02));
  ]

let predictor_tests =
  [
    Testkit.case "iid bits score high (modulo the conservative local bound)" (fun () ->
        (* For ideal binary data the longest-streak (P_local) bound of
           the 90B prediction estimators dominates the global rate and
           caps the assessment around 0.6-0.8 bit — a known, deliberate
           conservatism of the standard, reproduced here. *)
        let bits = random_bits 60000 in
        let estimates, aggregate = Predictors.run_all bits in
        Alcotest.(check int) "four" 4 (List.length estimates);
        Testkit.check_in_range "aggregate" ~lo:0.55 ~hi:1.0 aggregate;
        (* The global rates themselves are near 1/2 for every predictor. *)
        List.iter
          (fun (e : Estimators.estimate) ->
            Testkit.check_true (e.name ^ " p_max sane") (e.p_max < 0.75))
          estimates);
    Testkit.case "lag predictor nails a periodic source" (fun () ->
        let bits = Array.init 20000 (fun i -> i mod 7 < 3) in
        let e = Predictors.lag bits in
        Testkit.check_in_range "near zero" ~lo:0.0 ~hi:0.01
          e.Estimators.min_entropy);
    Testkit.case "multi-mmc nails a Markov source" (fun () ->
        let bits = sticky_bits ~stay:0.95 100000 in
        let e = Predictors.multi_mmc bits in
        (* Guess rate ~ 0.95 -> H ~ 0.074. *)
        Testkit.check_in_range "low entropy" ~lo:0.03 ~hi:0.12
          e.Estimators.min_entropy);
    Testkit.case "multi-mcw tracks a slowly drifting bias" (fun () ->
        (* Bias flips every 5000 samples: window predictors keep up. *)
        let rng = Testkit.rng ~seed:0xD21F7L () in
        let bits =
          Array.init 80000 (fun i ->
              let p = if i / 5000 land 1 = 0 then 0.8 else 0.2 in
              Ptrng_prng.Distributions.bernoulli rng ~p)
        in
        let e = Predictors.multi_mcw bits in
        (* Guessing the locally-common value succeeds ~80%. *)
        Testkit.check_in_range "H near -log2(0.8)" ~lo:0.2 ~hi:0.4
          e.Estimators.min_entropy);
    Testkit.case "lz78y compresses template-structured data" (fun () ->
        let bits = Array.init 40000 (fun i -> (i * i) mod 11 < 5) in
        let e = Predictors.lz78y bits in
        Testkit.check_true "well below 1" (e.Estimators.min_entropy < 0.7));
    Testkit.case "local bound responds to the longest streak" (fun () ->
        let loose = Predictors.local_bound ~n:10000 ~longest_run:13 in
        let tight = Predictors.local_bound ~n:10000 ~longest_run:40 in
        Testkit.check_true "longer streak -> higher p" (tight > loose);
        Testkit.check_in_range "iid-ish streak" ~lo:0.4 ~hi:0.7 loose);
    Testkit.case "prediction beats frequency on balanced-but-guessable data" (fun () ->
        (* The 90B rationale: alternating bits are perfectly balanced
           (MCV says 1 bit) but perfectly predictable. *)
        let bits = Array.init 20000 (fun i -> i land 1 = 0) in
        let mcv = Estimators.most_common_value bits in
        let lag = Predictors.lag bits in
        Testkit.check_true "MCV fooled" (mcv.Estimators.min_entropy > 0.95);
        Testkit.check_true "predictor not fooled"
          (lag.Estimators.min_entropy < 0.01));
  ]

let health_tests =
  [
    Testkit.case "rct cutoff formula" (fun () ->
        Alcotest.(check int) "h=1" 31 (Health.rct_cutoff ~h:1.0 ());
        Alcotest.(check int) "h=0.5" 61 (Health.rct_cutoff ~h:0.5 ());
        Alcotest.(check int) "alpha 2^-20" 21
          (Health.rct_cutoff ~alpha_exp:20 ~h:1.0 ()));
    Testkit.case "apt cutoff is sane for full entropy" (fun () ->
        let c = Health.apt_cutoff ~h:1.0 () in
        (* Mean 512, std 16; 2^-30 needs ~ mean + 5.7 sigma ~ 603. *)
        Testkit.check_in_range "cutoff" ~lo:590.0 ~hi:625.0 (float_of_int c);
        let c20 = Health.apt_cutoff ~alpha_exp:20 ~h:1.0 () in
        Testkit.check_true "looser alpha, smaller cutoff" (c20 < c));
    Testkit.case "healthy stream raises no alarms" (fun () ->
        let bits = random_bits 200000 in
        let rct, apt =
          Health.scan
            ~cutoff_rct:(Health.rct_cutoff ~h:1.0 ())
            ~cutoff_apt:(Health.apt_cutoff ~h:1.0 ())
            ~window:1024 bits
        in
        Alcotest.(check int) "rct" 0 rct;
        Alcotest.(check int) "apt" 0 apt);
    Testkit.case "rct fires on a stuck source" (fun () ->
        let bits = Array.make 200 true in
        let rct = Health.rct_create ~cutoff:31 in
        let alarm = ref false in
        Array.iter (fun b -> if Health.rct_feed rct b then alarm := true) bits;
        Testkit.check_true "alarm" !alarm);
    Testkit.case "apt fires on a heavily biased source" (fun () ->
        let rng = Testkit.rng () in
        let bits =
          Array.init 20480 (fun _ -> Ptrng_prng.Distributions.bernoulli rng ~p:0.75)
        in
        let _, apt =
          Health.scan ~cutoff_rct:1000
            ~cutoff_apt:(Health.apt_cutoff ~h:1.0 ())
            ~window:1024 bits
        in
        Testkit.check_true "alarms" (apt >= 1));
    Testkit.case "APT cannot see a thermal quench" (fun () ->
        (* The gap the paper's thermal test closes: quenching 95% of the
           thermal noise leaves the output marginally balanced, so the
           proportion test stays silent (the repetition test fires only
           sporadically, on flicker-induced beat stalls — it neither
           reliably detects the attack nor quantifies the entropy
           loss). *)
        let pair =
          Ptrng_trng.Attack.thermal_quench ~factor:0.05 (Ptrng_osc.Pair.paper_pair ())
        in
        let cfg = Ptrng_trng.Ero_trng.config ~divisor:2000 pair in
        let stream =
          Ptrng_trng.Ero_trng.generate (Testkit.rng ~seed:13L ()) cfg ~bits:10240
        in
        let bits = Ptrng_trng.Bitstream.to_bools stream in
        let rct, apt =
          Health.scan
            ~cutoff_rct:(Health.rct_cutoff ~h:1.0 ())
            ~cutoff_apt:(Health.apt_cutoff ~h:1.0 ())
            ~window:1024 bits
        in
        Alcotest.(check int) "apt silent" 0 apt;
        Testkit.check_true "rct at most sporadic" (rct < 20));
  ]

let run_all_tests =
  [
    Testkit.case "aggregate is the minimum" (fun () ->
        let estimates, aggregate = Estimators.run_all (random_bits 50000) in
        let manual =
          List.fold_left (fun acc (e : Estimators.estimate) -> Float.min acc e.min_entropy)
            1.0 estimates
        in
        Testkit.check_rel ~tol:1e-12 "min" manual aggregate;
        Alcotest.(check int) "four estimators" 4 (List.length estimates));
    Testkit.case "flicker-correlated TRNG output scores below iid output" (fun () ->
        (* The repo's own use case: bits from the simulated eRO-TRNG at a
           too-short accumulation are serially dependent; 90B sees it. *)
        let pair = Ptrng_osc.Pair.paper_pair () in
        let cfg = Ptrng_trng.Ero_trng.config ~divisor:50 pair in
        let stream =
          Ptrng_trng.Ero_trng.generate (Testkit.rng ~seed:3L ()) cfg ~bits:60000
        in
        let bits = Ptrng_trng.Bitstream.to_bools stream in
        let _, weak = Estimators.run_all bits in
        let _, strong = Estimators.run_all (random_bits 60000) in
        Testkit.check_true "dependence detected" (weak < strong -. 0.15));
  ]

let () =
  Alcotest.run "ptrng_sp90b"
    [
      ("mcv", mcv_tests);
      ("collision", collision_tests);
      ("markov", markov_tests);
      ("t_tuple", t_tuple_tests);
      ("predictors", predictor_tests);
      ("health", health_tests);
      ("run_all", run_all_tests);
    ]
