open Ptrng_nist22

let random_bits ?(seed = 0x822L) n =
  let rng = Testkit.rng ~seed () in
  Array.init n (fun _ -> Ptrng_prng.Rng.bool rng)

let biased_bits ~p n =
  let rng = Testkit.rng ~seed:0xBADL () in
  Array.init n (fun _ -> Ptrng_prng.Distributions.bernoulli rng ~p)

let good = lazy (random_bits 20000)

let check_pass name (r : Sp80022.result) = Testkit.check_true name r.pass
let check_fail name (r : Sp80022.result) =
  Testkit.check_true name (not r.pass && r.p_value < 0.001)

let per_test_cases =
  [
    Testkit.case "frequency: pass on random, fail on biased" (fun () ->
        check_pass "random" (Sp80022.frequency (Lazy.force good));
        check_fail "biased" (Sp80022.frequency (biased_bits ~p:0.53 20000)));
    Testkit.case "block frequency: pass on random, fail on bursty" (fun () ->
        check_pass "random" (Sp80022.block_frequency (Lazy.force good));
        (* Alternating all-ones / all-zeros blocks: globally balanced. *)
        let bursty = Array.init 20000 (fun i -> i / 128 land 1 = 0) in
        check_fail "bursty" (Sp80022.block_frequency bursty));
    Testkit.case "runs: pass on random, fail on alternating" (fun () ->
        check_pass "random" (Sp80022.runs (Lazy.force good));
        let alternating = Array.init 20000 (fun i -> i land 1 = 0) in
        check_fail "alternating" (Sp80022.runs alternating));
    Testkit.case "runs pre-test catches heavy bias" (fun () ->
        let r = Sp80022.runs (biased_bits ~p:0.6 20000) in
        Testkit.check_abs ~tol:1e-9 "p = 0" 0.0 r.p_value);
    Testkit.case "longest run: pass on random, fail on runny data" (fun () ->
        check_pass "random" (Sp80022.longest_run (Lazy.force good));
        let runny = Array.init 20000 (fun i -> i / 10 land 1 = 0) in
        check_fail "runny" (Sp80022.longest_run runny));
    Testkit.case "cumulative sums: pass on random, fail on drift" (fun () ->
        check_pass "random" (Sp80022.cumulative_sums (Lazy.force good));
        let rng = Testkit.rng () in
        let drift =
          Array.init 20000 (fun i ->
              Ptrng_prng.Distributions.bernoulli rng ~p:(if i < 10000 then 0.55 else 0.45))
        in
        check_fail "drift" (Sp80022.cumulative_sums drift));
    Testkit.case "cumulative sums backward variant runs" (fun () ->
        check_pass "backward" (Sp80022.cumulative_sums ~forward:false (Lazy.force good)));
    Testkit.case "spectral: pass on random, fail on periodic" (fun () ->
        check_pass "random" (Sp80022.spectral (Lazy.force good));
        let periodic = Array.init 20000 (fun i -> i mod 10 < 5) in
        check_fail "periodic" (Sp80022.spectral periodic));
    Testkit.case "serial: pass on random, fail on patterned" (fun () ->
        check_pass "random" (Sp80022.serial (Lazy.force good));
        let patterned = Array.init 20000 (fun i -> i mod 4 < 2) in
        check_fail "patterned" (Sp80022.serial patterned));
    Testkit.case "approximate entropy: pass on random, fail on patterned" (fun () ->
        check_pass "random" (Sp80022.approximate_entropy (Lazy.force good));
        let patterned = Array.init 20000 (fun i -> i mod 8 < 4) in
        check_fail "patterned" (Sp80022.approximate_entropy patterned));
  ]

let heavyweight_cases =
  let big = lazy (random_bits ~seed:0xB16L 1_100_000) in
  [
    Testkit.case "matrix rank: pass on random, fail on low-rank data" (fun () ->
        check_pass "random" (Sp80022.binary_matrix_rank (random_bits 60000));
        (* Repeating every 32 bits: every matrix has rank 1. *)
        let degenerate = Array.init 60000 (fun i -> i mod 32 < 16) in
        check_fail "rank-1" (Sp80022.binary_matrix_rank degenerate));
    Testkit.case "matrix rank distribution sanity" (fun () ->
        (* On truly random data the statistic itself should be modest. *)
        let r = Sp80022.binary_matrix_rank (random_bits ~seed:5L 120000) in
        Testkit.check_in_range "chi2" ~lo:0.0 ~hi:12.0 r.Sp80022.statistic);
    Testkit.case "maurer universal: pass on random, fail on repetitive" (fun () ->
        check_pass "random" (Sp80022.maurer_universal (random_bits 60000));
        let repetitive = Array.init 60000 (fun i -> i mod 12 < 6) in
        check_fail "repetitive" (Sp80022.maurer_universal repetitive));
    Testkit.case "maurer statistic approaches the L=6 expectation" (fun () ->
        let r = Sp80022.maurer_universal (random_bits ~seed:6L 600000) in
        Testkit.check_rel ~tol:0.01 "fn" 5.2177052 r.Sp80022.statistic);
    Testkit.case "linear complexity: pass on random, fail on LFSR-like" (fun () ->
        check_pass "random" (Sp80022.linear_complexity (random_bits 100000));
        (* A short LFSR: x_{i} = x_{i-3} xor x_{i-31} — tiny complexity. *)
        let lfsr = Array.make 100000 false in
        lfsr.(0) <- true;
        lfsr.(5) <- true;
        for i = 31 to 99999 do
          lfsr.(i) <- lfsr.(i - 3) <> lfsr.(i - 31)
        done;
        check_fail "lfsr" (Sp80022.linear_complexity lfsr));
    Testkit.case "berlekamp-massey via linear_complexity is exact on periodic data"
      (fun () ->
        (* Period-2 data has linear complexity 2 in every block: the
           statistic lands in the extreme bin and the test fails. *)
        let alternating = Array.init 50000 (fun i -> i land 1 = 0) in
        check_fail "alternating" (Sp80022.linear_complexity alternating));
    Testkit.case "template tests: pass on random, fail on planted templates" (fun () ->
        check_pass "random non-overlap" (Sp80022.non_overlapping_template (random_bits 80000));
        check_pass "random overlap" (Sp80022.overlapping_template (random_bits 103200));
        (* Saturate with the 000000001 pattern. *)
        let planted = Array.init 80000 (fun i -> i mod 9 = 8) in
        check_fail "planted" (Sp80022.non_overlapping_template planted);
        (* Long runs of ones everywhere overfill the overlapping bins. *)
        let ones_heavy = Array.init 103200 (fun i -> i mod 13 <> 0) in
        check_fail "ones-heavy" (Sp80022.overlapping_template ones_heavy));
    Testkit.case "random excursions behave on random data" (fun () ->
        let results = Sp80022.random_excursions (Lazy.force big) in
        Testkit.check_true "enough cycles" (List.length results = 8);
        let failures = List.length (List.filter (fun r -> not r.Sp80022.pass) results) in
        Testkit.check_true "at most one marginal state" (failures <= 1);
        let variant = Sp80022.random_excursions_variant (Lazy.force big) in
        Testkit.check_true "variant states" (List.length variant = 18));
    Testkit.case "excursions are skipped when cycles are scarce" (fun () ->
        (* A heavily biased walk rarely returns to zero. *)
        let rng = Testkit.rng () in
        let biased =
          Array.init 100000 (fun _ -> Ptrng_prng.Distributions.bernoulli rng ~p:0.8)
        in
        Alcotest.(check int) "skipped" 0
          (List.length (Sp80022.random_excursions biased)));
    Testkit.case "full battery on a megabit of good data" (fun () ->
        let results = Sp80022.run_all (Lazy.force big) in
        Alcotest.(check int) "15 rows" 15 (List.length results);
        let failures = List.filter (fun r -> not r.Sp80022.pass) results in
        Testkit.check_true "at most one failure"
          (List.length failures <= 1));
  ]

let battery_cases =
  [
    Testkit.case "run_all executes the full battery" (fun () ->
        let results = Sp80022.run_all (Lazy.force good) in
        Alcotest.(check int) "ten tests" 10 (List.length results);
        List.iter (fun (r : Sp80022.result) -> check_pass r.name r) results);
    Testkit.case "false-positive rate is near alpha" (fun () ->
        (* 25 independent streams x 8 tests at alpha = 0.01: expect ~2
           failures; 8+ would indicate broken p-values. *)
        let failures = ref 0 in
        for seed = 1 to 25 do
          let bits = random_bits ~seed:(Int64.of_int (1000 + seed)) 4000 in
          List.iter
            (fun (r : Sp80022.result) -> if not r.pass then incr failures)
            (Sp80022.run_all bits)
        done;
        Testkit.check_in_range "failures" ~lo:0.0 ~hi:7.0 (float_of_int !failures));
    Testkit.case "p-values are roughly uniform for a good source" (fun () ->
        (* Mean p over many streams should be near 0.5. *)
        let acc = ref 0.0 and count = ref 0 in
        for seed = 1 to 40 do
          let bits = random_bits ~seed:(Int64.of_int (2000 + seed)) 4000 in
          List.iter
            (fun (r : Sp80022.result) ->
              acc := !acc +. r.p_value;
              incr count)
            (Sp80022.run_all bits)
        done;
        Testkit.check_in_range "mean p" ~lo:0.35 ~hi:0.65 (!acc /. float_of_int !count));
    Testkit.case "pp_results renders" (fun () ->
        let text =
          Format.asprintf "%a" Sp80022.pp_results (Sp80022.run_all (random_bits 4000))
        in
        Testkit.check_true "non-empty" (String.length text > 50));
    Testkit.case "attacked TRNG output fails the battery" (fun () ->
        let pair =
          Ptrng_trng.Attack.frequency_injection ~lock_strength:0.9995
            (Ptrng_osc.Pair.paper_pair ())
        in
        let cfg = Ptrng_trng.Ero_trng.config ~divisor:100 pair in
        let stream =
          Ptrng_trng.Ero_trng.generate (Testkit.rng ~seed:6L ()) cfg ~bits:20000
        in
        let results = Sp80022.run_all (Ptrng_trng.Bitstream.to_bools stream) in
        let failed = List.length (List.filter (fun r -> not r.Sp80022.pass) results) in
        Testkit.check_true "several failures" (failed >= 3));
  ]

let () =
  Alcotest.run "ptrng_nist22"
    [ ("tests", per_test_cases); ("heavyweight", heavyweight_cases); ("battery", battery_cases) ]
