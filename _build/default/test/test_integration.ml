(* End-to-end tests of the full reproduction pipeline: simulated
   oscillator pair -> measurement -> fit -> extraction, checked against
   the paper's numbers and the planted ground truth. *)

let f0 = Ptrng_osc.Pair.paper_f0
let paper_phase = Ptrng_osc.Pair.paper_relative

let analysis =
  lazy
    (Ptrng_model.Multilevel.characterize ~n_periods:(1 lsl 20)
       ~rng:(Testkit.rng ~seed:2014L ())
       (Ptrng_osc.Pair.paper_pair ()))

let pipeline_tests =
  [
    Testkit.case "recovers the paper's b_th within 10%" (fun () ->
        let a = Lazy.force analysis in
        Testkit.check_rel ~tol:0.1 "b_th" 276.04
          a.extract.phase.Ptrng_noise.Psd_model.b_th);
    Testkit.case "recovers the paper's b_fl within 30%" (fun () ->
        (* The flicker term is resolved only at large N where the
           estimator has few independent samples: +-15% (1 sigma). *)
        let a = Lazy.force analysis in
        Testkit.check_rel ~tol:0.3 "b_fl"
          paper_phase.Ptrng_noise.Psd_model.b_fl
          a.extract.phase.Ptrng_noise.Psd_model.b_fl);
    Testkit.case "thermal jitter lands on 15.89 ps within 5%" (fun () ->
        let a = Lazy.force analysis in
        Testkit.check_rel ~tol:0.05 "sigma" 15.89e-12 a.extract.sigma_thermal);
    Testkit.case "relative jitter ratio is ~1.6 permil" (fun () ->
        let a = Lazy.force analysis in
        Testkit.check_rel ~tol:0.05 "ratio" 1.64e-3 a.extract.sigma_relative);
    Testkit.case "k-ratio reproduces the paper's 5354 within 40%" (fun () ->
        let a = Lazy.force analysis in
        Testkit.check_rel ~tol:0.4 "k" 5354.0 a.extract.k_ratio);
    Testkit.case "growth exponent sits between 1 and 2" (fun () ->
        let a = Lazy.force analysis in
        let slope, _ = a.growth_exponent in
        Testkit.check_in_range "dependence visible" ~lo:1.02 ~hi:1.8 slope);
    Testkit.case "measured curve tracks the closed form" (fun () ->
        let a = Lazy.force analysis in
        Array.iter
          (fun (p : Ptrng_measure.Variance_curve.point) ->
            let predicted = Ptrng_model.Spectral.scaled paper_phase ~f0 ~n:p.n in
            (* 4-sigma statistical window around the planted truth. *)
            let budget = Float.max (4.0 *. p.stderr *. f0 *. f0) (0.15 *. predicted) in
            Testkit.check_abs ~tol:budget
              (Printf.sprintf "N=%d" p.n)
              predicted p.scaled)
          a.ideal_curve);
    Testkit.case "counter curve floors at small N, converges at large N" (fun () ->
        let a = Lazy.force analysis in
        let find curve n =
          Array.to_list curve
          |> List.find_opt (fun (p : Ptrng_measure.Variance_curve.point) -> p.n = n)
        in
        (match (find a.counter_curve 16, find a.ideal_curve 16) with
        | Some c, Some i ->
          Testkit.check_true "quantization dominates small N"
            (c.Ptrng_measure.Variance_curve.scaled
            > 10.0 *. i.Ptrng_measure.Variance_curve.scaled)
        | _ -> Alcotest.fail "missing N=16 points");
        let last curve =
          Array.fold_left
            (fun acc (p : Ptrng_measure.Variance_curve.point) ->
              match acc with
              | Some (b : Ptrng_measure.Variance_curve.point) when b.n >= p.n -> acc
              | _ -> Some p)
            None curve
        in
        match (last a.counter_curve, last a.ideal_curve) with
        | Some c, Some i ->
          Testkit.check_true "counter adds variance"
            (c.Ptrng_measure.Variance_curve.scaled
            > 0.8 *. i.Ptrng_measure.Variance_curve.scaled);
          Testkit.check_true "signal emerges above the floor at large N"
            (c.Ptrng_measure.Variance_curve.scaled
            < 4.0 *. i.Ptrng_measure.Variance_curve.scaled)
        | _ -> Alcotest.fail "empty curves");
    Testkit.case "independence threshold is near the paper's 281" (fun () ->
        let a = Lazy.force analysis in
        let n95 =
          Ptrng_measure.Thermal_extract.independence_threshold a.extract ~confidence:0.95
        in
        Testkit.check_in_range "threshold" ~lo:200.0 ~hi:400.0 (float_of_int n95));
  ]

let counter_extraction_tests =
  [
    Testkit.case "counter-only extraction: flicker recoverable, thermal not" (fun () ->
        (* The realistic Fig. 6 hardware at a 2^21-period budget: the
           saturation-gated floor fit pins down the flicker (N^2)
           coefficient, while the thermal term drowns below the
           quantization floor — quantifying the averaging-budget
           finding of EXPERIMENTS.md Ablation C through the full
           pipeline. *)
        let a =
          Ptrng_model.Multilevel.characterize ~n_periods:(1 lsl 21)
            ~rng:(Testkit.rng ~seed:4242L ())
            (Ptrng_osc.Pair.paper_pair ())
        in
        match a.counter_fit with
        | None -> Alcotest.fail "expected a counter fit at this trace length"
        | Some cf ->
          let phase = Ptrng_measure.Fit.phase_of cf in
          let bth_se, bfl_se = Ptrng_measure.Fit.phase_se_of cf in
          Testkit.check_abs
            ~tol:(Float.max (4.0 *. bfl_se)
                    (1.5 *. paper_phase.Ptrng_noise.Psd_model.b_fl))
            "b_fl from counters" paper_phase.Ptrng_noise.Psd_model.b_fl
            phase.Ptrng_noise.Psd_model.b_fl;
          Testkit.check_true "thermal term unresolved (se above the signal)"
            (bth_se > 276.04);
          Testkit.check_in_range "floor near saturation" ~lo:0.3 ~hi:1.2 cf.c);
    Testkit.case "cubic fit recovers a planted aging term" (fun () ->
        let hm2 = 1e-13 in
        let ns = Ptrng_measure.Variance_curve.log2_grid ~n_min:4 ~n_max:16384 in
        let pts =
          Array.map
            (fun n ->
              let scaled =
                Ptrng_model.Spectral.scaled paper_phase ~f0 ~n
                +. (f0 *. f0
                   *. Ptrng_model.Spectral.sigma2_n_random_walk ~hm2 ~f0 ~n)
              in
              { Ptrng_measure.Variance_curve.n; sigma2 = scaled /. (f0 *. f0);
                scaled; neff = 1000; stderr = Float.nan })
            ns
        in
        let cf = Ptrng_measure.Fit.fit ~with_cubic:true ~f0 pts in
        Testkit.check_rel ~tol:1e-6 "h-2" hm2 (Ptrng_measure.Fit.rw_hm2_of cf);
        Testkit.check_rel ~tol:1e-5 "thermal survives" 5.36e-6 cf.a);
  ]

let model_comparison_tests =
  [
    Testkit.case "naive model overestimates entropy at long accumulation" (fun () ->
        let a = Lazy.force analysis in
        let rows =
          Ptrng_model.Compare.overestimation_table_measured ~extract:a.extract
            ~sampling_periods:300 a.ideal_curve
        in
        let last = rows.(Array.length rows - 1) in
        Testkit.check_true "overestimate present" (last.Ptrng_model.Compare.overestimate > 0.005);
        (* And the violation grows monotonically along the curve tail. *)
        let n = Array.length rows in
        Testkit.check_true "grows"
          (rows.(n - 1).Ptrng_model.Compare.overestimate
          > rows.(n / 2).Ptrng_model.Compare.overestimate));
    Testkit.case "baseline model (flicker off) shows no dependence" (fun () ->
        let pair =
          Ptrng_osc.Pair.of_relative ~flicker_generator:`None ~f0 ~relative:paper_phase ()
        in
        let a =
          Ptrng_model.Multilevel.characterize ~n_periods:(1 lsl 18)
            ~rng:(Testkit.rng ~seed:7L ()) pair
        in
        let slope, se = a.growth_exponent in
        Testkit.check_abs ~tol:(Float.max 0.05 (4.0 *. se)) "slope 1" 1.0 slope);
  ]

let trng_chain_tests =
  (* Simulating one AIS31 block at the paper's divisor-3000 accumulation
     costs 60M event-level periods; the unit test uses a 100x-thermal
     pair at divisor 600 (similar phase diffusion per sample, 5x cheaper).
     The paper-calibrated generator runs in examples/ and bench/. *)
  let strong_pair () =
    Ptrng_osc.Pair.of_relative ~f0
      ~relative:{ Ptrng_noise.Psd_model.b_th = paper_phase.Ptrng_noise.Psd_model.b_th *. 100.0;
                  b_fl = paper_phase.Ptrng_noise.Psd_model.b_fl }
      ()
  in
  [
    Testkit.case "eRO-TRNG with sufficient accumulation passes AIS31 T1-T5" (fun () ->
        let cfg = Ptrng_trng.Ero_trng.config ~divisor:600 (strong_pair ()) in
        let bits =
          Ptrng_trng.Ero_trng.generate (Testkit.rng ~seed:9L ()) cfg
            ~bits:Ptrng_ais31.Procedure_a.block_bits
        in
        let block =
          Array.init Ptrng_ais31.Procedure_a.block_bits (Ptrng_trng.Bitstream.get bits)
        in
        let results = Ptrng_ais31.Procedure_a.run_block block in
        let summary = Ptrng_ais31.Report.summarize results in
        Testkit.check_true "verdict" summary.Ptrng_ais31.Report.verdict);
    Testkit.case "locked (attacked) TRNG fails procedure A" (fun () ->
        let attacked =
          Ptrng_trng.Attack.frequency_injection ~lock_strength:0.9999 (strong_pair ())
        in
        let cfg = Ptrng_trng.Ero_trng.config ~divisor:600 attacked in
        let bits =
          Ptrng_trng.Ero_trng.generate (Testkit.rng ~seed:10L ()) cfg
            ~bits:Ptrng_ais31.Procedure_a.block_bits
        in
        let block =
          Array.init Ptrng_ais31.Procedure_a.block_bits (Ptrng_trng.Bitstream.get bits)
        in
        let summary =
          Ptrng_ais31.Report.summarize (Ptrng_ais31.Procedure_a.run_block block)
        in
        Testkit.check_false "verdict" summary.Ptrng_ais31.Report.verdict);
  ]

let () =
  Alcotest.run "integration"
    [
      ("pipeline", pipeline_tests);
      ("counter_extraction", counter_extraction_tests);
      ("model_comparison", model_comparison_tests);
      ("trng_chain", trng_chain_tests);
    ]
