(* Property-based tests (qcheck) on the core data structures and
   invariants, spanning all layers of the library. *)

open QCheck2

let float_array ?(min_len = 2) ?(max_len = 64) ?(lo = -100.0) ?(hi = 100.0) () =
  Gen.(
    list_size (int_range min_len max_len) (float_range lo hi)
    |> map Array.of_list)

let close ?(tol = 1e-9) a b =
  if a = 0.0 || b = 0.0 then Float.abs (a -. b) <= tol
  else Float.abs (a -. b) <= tol *. Float.max (Float.abs a) (Float.abs b)

(* ------------------------------------------------------------------ *)
(* prng                                                                *)
(* ------------------------------------------------------------------ *)

let prng_props =
  [
    Testkit.qcheck "rng stream is reproducible from its seed" Gen.int (fun seed ->
        let a = Ptrng_prng.Rng.create ~seed:(Int64.of_int seed) () in
        let b = Ptrng_prng.Rng.create ~seed:(Int64.of_int seed) () in
        let ok = ref true in
        for _ = 1 to 50 do
          if Ptrng_prng.Rng.bits64 a <> Ptrng_prng.Rng.bits64 b then ok := false
        done;
        !ok);
    Testkit.qcheck "gaussian draws are finite for any seed" Gen.int (fun seed ->
        let g =
          Ptrng_prng.Gaussian.create
            (Ptrng_prng.Rng.create ~seed:(Int64.of_int seed) ())
        in
        let ok = ref true in
        for _ = 1 to 200 do
          if not (Float.is_finite (Ptrng_prng.Gaussian.draw g)) then ok := false
        done;
        !ok);
    Testkit.qcheck "exponential samples are nonnegative"
      Gen.(pair int (float_range 0.01 50.0))
      (fun (seed, rate) ->
        let rng = Ptrng_prng.Rng.create ~seed:(Int64.of_int seed) () in
        Ptrng_prng.Distributions.exponential rng ~rate >= 0.0);
  ]

(* ------------------------------------------------------------------ *)
(* signal                                                              *)
(* ------------------------------------------------------------------ *)

let signal_props =
  [
    Testkit.qcheck "dft/idft round-trips arbitrary lengths"
      (Gen.pair (float_array ~min_len:1 ~max_len:50 ()) Gen.unit)
      (fun (x, ()) ->
        let n = Array.length x in
        let fr, fi = Ptrng_signal.Fft.dft ~re:x ~im:(Array.make n 0.0) in
        let br, bi = Ptrng_signal.Fft.idft ~re:fr ~im:fi in
        Array.for_all2 (fun a b -> close ~tol:1e-8 a b) br x
        && Array.for_all (fun v -> Float.abs v < 1e-6 *. (1.0 +. 100.0)) bi);
    Testkit.qcheck "parseval holds for any real signal"
      (float_array ~min_len:1 ~max_len:64 ())
      (fun x ->
        let n = Array.length x in
        let fr, fi = Ptrng_signal.Fft.rfft x in
        let time = Array.fold_left (fun a v -> a +. (v *. v)) 0.0 x in
        let freq = ref 0.0 in
        for k = 0 to n - 1 do
          freq := !freq +. (fr.(k) *. fr.(k)) +. (fi.(k) *. fi.(k))
        done;
        close ~tol:1e-8 time (!freq /. float_of_int n));
    Testkit.qcheck "convolution is commutative"
      (Gen.pair (float_array ~min_len:1 ~max_len:20 ()) (float_array ~min_len:1 ~max_len:20 ()))
      (fun (a, b) ->
        let ab = Ptrng_signal.Fft.convolve_real a b in
        let ba = Ptrng_signal.Fft.convolve_real b a in
        Array.for_all2 (fun x y -> close ~tol:1e-7 x y) ab ba);
    Testkit.qcheck "detrend leaves residuals orthogonal to the line"
      (float_array ~min_len:3 ~max_len:64 ())
      (fun x ->
        let y = Ptrng_signal.Filter.detrend_linear x in
        let n = Array.length y in
        let sum = Array.fold_left ( +. ) 0.0 y in
        let dot = ref 0.0 in
        Array.iteri (fun i v -> dot := !dot +. (float_of_int i *. v)) y;
        let scale = Array.fold_left (fun a v -> Float.max a (Float.abs v)) 1.0 x in
        Float.abs sum < 1e-6 *. scale *. float_of_int n
        && Float.abs !dot < 1e-5 *. scale *. float_of_int (n * n));
    Testkit.qcheck "windows stay within [-0.1, 1.01]"
      (Gen.pair (Gen.int_range 1 200) (Gen.int_range 0 5))
      (fun (n, kind_idx) ->
        let kind =
          List.nth
            [ Ptrng_signal.Window.Rectangular; Hann; Hamming; Blackman;
              Blackman_harris; Flattop ]
            kind_idx
        in
        let w = Ptrng_signal.Window.make kind n in
        Array.for_all (fun v -> v >= -0.11 && v <= 1.01) w);
  ]

(* ------------------------------------------------------------------ *)
(* stats                                                               *)
(* ------------------------------------------------------------------ *)

let stats_props =
  [
    Testkit.qcheck "mean is translation-equivariant"
      (Gen.pair (float_array ()) (Gen.float_range (-50.0) 50.0))
      (fun (x, c) ->
        let shifted = Array.map (fun v -> v +. c) x in
        close ~tol:1e-9
          (Ptrng_stats.Descriptive.mean shifted)
          (Ptrng_stats.Descriptive.mean x +. c));
    Testkit.qcheck "variance is translation-invariant and scale-quadratic"
      (Gen.triple (float_array ()) (Gen.float_range (-10.0) 10.0)
         (Gen.float_range 0.1 10.0))
      (fun (x, c, s) ->
        let y = Array.map (fun v -> (s *. v) +. c) x in
        close ~tol:1e-7
          (Ptrng_stats.Descriptive.variance y)
          (s *. s *. Ptrng_stats.Descriptive.variance x));
    Testkit.qcheck "quantile is monotone in p"
      (Gen.triple (float_array ()) (Gen.float_range 0.0 1.0) (Gen.float_range 0.0 1.0))
      (fun (x, p1, p2) ->
        let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
        Ptrng_stats.Descriptive.quantile x lo
        <= Ptrng_stats.Descriptive.quantile x hi +. 1e-12);
    Testkit.qcheck "histogram conserves the sample count"
      (Gen.pair (float_array ~min_len:1 ()) (Gen.int_range 1 30))
      (fun (x, bins) ->
        let lo, hi = Ptrng_stats.Descriptive.min_max x in
        if hi <= lo then true
        else begin
          let h = Ptrng_stats.Histogram.make ~bins x in
          Array.fold_left ( + ) 0 h.counts = Array.length x
        end);
    Testkit.qcheck "normal_cdf and normal_ppf are inverse"
      (Gen.float_range 0.001 0.999)
      (fun p ->
        close ~tol:1e-6 p (Ptrng_stats.Special.normal_cdf (Ptrng_stats.Special.normal_ppf p)));
    Testkit.qcheck "gamma_p is monotone in x"
      (Gen.triple (Gen.float_range 0.1 20.0) (Gen.float_range 0.0 30.0)
         (Gen.float_range 0.0 30.0))
      (fun (a, x1, x2) ->
        let lo = Float.min x1 x2 and hi = Float.max x1 x2 in
        Ptrng_stats.Special.gamma_p ~a ~x:lo
        <= Ptrng_stats.Special.gamma_p ~a ~x:hi +. 1e-12);
    Testkit.qcheck "lu solve then multiply recovers the rhs"
      (Gen.pair (Gen.int_range 1 6) Gen.int)
      (fun (n, seed) ->
        let rng = Ptrng_prng.Rng.create ~seed:(Int64.of_int seed) () in
        let a = Ptrng_stats.Matrix.create ~rows:n ~cols:n in
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            Ptrng_stats.Matrix.set a i j (Ptrng_prng.Rng.float rng -. 0.5)
          done;
          (* Diagonal dominance keeps the system well-conditioned. *)
          Ptrng_stats.Matrix.set a i i (2.0 +. Ptrng_prng.Rng.float rng)
        done;
        let b = Array.init n (fun _ -> Ptrng_prng.Rng.float rng -. 0.5) in
        let x = Ptrng_stats.Matrix.solve_lu a b in
        let back = Ptrng_stats.Matrix.mul_vec a x in
        Array.for_all2 (fun u v -> close ~tol:1e-8 (u +. 10.0) (v +. 10.0)) back b);
    Testkit.qcheck "polynomial fit reproduces exact polynomials"
      (Gen.quad (Gen.int_range 0 4) (Gen.float_range (-3.0) 3.0)
         (Gen.float_range (-3.0) 3.0) Gen.int)
      (fun (degree, c0, c1, seed) ->
        let rng = Ptrng_prng.Rng.create ~seed:(Int64.of_int seed) () in
        let npts = degree + 5 in
        let x =
          Array.init npts (fun i -> float_of_int i +. Ptrng_prng.Rng.float rng)
        in
        let y = Array.map (fun v -> c0 +. (c1 *. (v ** float_of_int degree))) x in
        let fit = Ptrng_stats.Regression.polynomial ~degree:(max 1 degree) ~x ~y in
        Array.for_all2
          (fun xv yv -> close ~tol:1e-5 (Ptrng_stats.Regression.predict_poly fit xv +. 10.0) (yv +. 10.0))
          x y);
    Testkit.qcheck "allan variance scales quadratically with y amplitude"
      (Gen.pair Gen.int (Gen.float_range 0.5 4.0))
      (fun (seed, s) ->
        let g =
          Ptrng_prng.Gaussian.create
            (Ptrng_prng.Rng.create ~seed:(Int64.of_int seed) ())
        in
        let y = Array.init 512 (fun _ -> Ptrng_prng.Gaussian.draw g) in
        let ys = Array.map (fun v -> s *. v) y in
        let a1 = Ptrng_stats.Allan.avar_overlapping ~tau0:1.0 ~m:4 y in
        let a2 = Ptrng_stats.Allan.avar_overlapping ~tau0:1.0 ~m:4 ys in
        close ~tol:1e-9 (s *. s *. a1) a2);
  ]

(* ------------------------------------------------------------------ *)
(* noise / model                                                       *)
(* ------------------------------------------------------------------ *)

let model_props =
  [
    Testkit.qcheck "psd_model conversions round-trip"
      (Gen.triple (Gen.float_range 1.0 1e4) (Gen.float_range 0.0 1e7)
         (Gen.float_range 1e6 1e9))
      (fun (b_th, b_fl, f0) ->
        let p = { Ptrng_noise.Psd_model.b_th; b_fl } in
        let back =
          Ptrng_noise.Psd_model.phase_of_frac_freq ~f0
            (Ptrng_noise.Psd_model.frac_freq_of_phase ~f0 p)
        in
        close ~tol:1e-12 p.b_th back.Ptrng_noise.Psd_model.b_th
        && close ~tol:1e-12 (p.b_fl +. 1.0) (back.Ptrng_noise.Psd_model.b_fl +. 1.0));
    Testkit.qcheck "sigma2_n is additive in the two noise terms"
      (Gen.quad (Gen.float_range 1.0 1e4) (Gen.float_range 1.0 1e7)
         (Gen.float_range 1e7 1e9) (Gen.int_range 1 100000))
      (fun (b_th, b_fl, f0, n) ->
        let p = { Ptrng_noise.Psd_model.b_th; b_fl } in
        close ~tol:1e-12
          (Ptrng_model.Spectral.sigma2_n p ~f0 ~n)
          (Ptrng_model.Spectral.sigma2_n_thermal p ~f0 ~n
          +. Ptrng_model.Spectral.sigma2_n_flicker p ~f0 ~n));
    Testkit.qcheck "sigma2_n is monotone in N"
      (Gen.quad (Gen.float_range 1.0 1e4) (Gen.float_range 0.0 1e7)
         (Gen.float_range 1e7 1e9) (Gen.pair (Gen.int_range 1 50000) (Gen.int_range 1 50000)))
      (fun (b_th, b_fl, f0, (n1, n2)) ->
        let p = { Ptrng_noise.Psd_model.b_th; b_fl } in
        let lo = min n1 n2 and hi = max n1 n2 in
        Ptrng_model.Spectral.sigma2_n p ~f0 ~n:lo
        <= Ptrng_model.Spectral.sigma2_n p ~f0 ~n:hi +. 1e-30);
    Testkit.qcheck "bit probability is a probability and symmetric"
      (Gen.pair (Gen.float_range (-10.0) 10.0) (Gen.float_range 0.0 5.0))
      (fun (mu, s) ->
        let p = Ptrng_model.Entropy.bit_probability ~mu ~phase_std:s in
        let q = Ptrng_model.Entropy.bit_probability ~mu:(-.mu) ~phase_std:s in
        p >= 0.0 && p <= 1.0 && close ~tol:1e-6 (p +. q +. 1.0) 2.0);
    Testkit.qcheck "shannon entropy is bounded and symmetric"
      (Gen.float_range 0.0 1.0)
      (fun p ->
        let h = Ptrng_model.Entropy.shannon p in
        let h' = Ptrng_model.Entropy.shannon (1.0 -. p) in
        h >= 0.0 && h <= 1.0 +. 1e-12 && close ~tol:1e-9 (h +. 1.0) (h' +. 1.0));
    Testkit.qcheck "r_N is a decreasing probability"
      (Gen.quad (Gen.float_range 1.0 1e4) (Gen.float_range 1.0 1e7)
         (Gen.float_range 1e7 1e9) (Gen.int_range 0 100000))
      (fun (b_th, b_fl, f0, n) ->
        let e =
          Ptrng_measure.Thermal_extract.of_phase ~f0 { Ptrng_noise.Psd_model.b_th; b_fl }
        in
        let r = Ptrng_measure.Thermal_extract.r_n e n in
        let r' = Ptrng_measure.Thermal_extract.r_n e (n + 1) in
        r >= 0.0 && r <= 1.0 && r' <= r +. 1e-12);
  ]

(* ------------------------------------------------------------------ *)
(* trng / measurement                                                  *)
(* ------------------------------------------------------------------ *)

let trng_props =
  [
    Testkit.qcheck "bitstream bytes round-trip through packing"
      (Gen.list_size (Gen.int_range 1 200) Gen.bool)
      (fun bools ->
        let bits = Array.of_list bools in
        let s = Ptrng_trng.Bitstream.of_bools bits in
        let packed = Ptrng_trng.Bitstream.to_bytes s in
        let unpack i =
          let byte = Char.code (Bytes.get packed (i / 8)) in
          byte lsr (7 - (i mod 8)) land 1 = 1
        in
        let ok = ref true in
        Array.iteri (fun i b -> if unpack i <> b then ok := false) bits;
        !ok);
    Testkit.qcheck "xor_decimate output parity matches manual fold"
      (Gen.pair (Gen.list_size (Gen.int_range 4 100) Gen.bool) (Gen.int_range 1 5))
      (fun (bools, k) ->
        let bits = Array.of_list bools in
        let s = Ptrng_trng.Bitstream.of_bools bits in
        let out = Ptrng_trng.Post_process.xor_decimate ~k s in
        let ok = ref true in
        for i = 0 to Ptrng_trng.Bitstream.length out - 1 do
          let expected = ref false in
          for j = 0 to k - 1 do
            expected := !expected <> bits.((i * k) + j)
          done;
          if Ptrng_trng.Bitstream.get out i <> !expected then ok := false
        done;
        !ok);
    Testkit.qcheck "von neumann output is at most half the input"
      (Gen.list_size (Gen.int_range 0 200) Gen.bool)
      (fun bools ->
        let s = Ptrng_trng.Bitstream.of_bools (Array.of_list bools) in
        let out = Ptrng_trng.Post_process.von_neumann s in
        Ptrng_trng.Bitstream.length out <= List.length bools / 2);
    Testkit.qcheck "s_N realizations are second differences of the cumsum"
      (Gen.pair (float_array ~min_len:8 ~max_len:60 ~lo:(-1.0) ~hi:1.0 ()) (Gen.int_range 1 4))
      (fun (j, n) ->
        if Array.length j < 2 * n then true
        else begin
          let s = Ptrng_measure.S_process.realizations ~n j in
          let c = Ptrng_measure.S_process.cumulative j in
          let ok = ref true in
          Array.iteri
            (fun i v ->
              let expected = c.(i + (2 * n)) -. (2.0 *. c.(i + n)) +. c.(i) in
              if not (close ~tol:1e-9 (v +. 10.0) (expected +. 10.0)) then ok := false)
            s;
          !ok
        end);
    Testkit.qcheck "counter windows sum to the total edge count"
      (Gen.pair Gen.int (Gen.int_range 1 16))
      (fun (seed, n) ->
        let rng = Ptrng_prng.Rng.create ~seed:(Int64.of_int seed) () in
        let len = 256 in
        (* Strictly increasing random edge times for both oscillators. *)
        let edges label =
          ignore label;
          let t = ref 0.0 in
          Array.init (len + 1) (fun _ ->
              t := !t +. 0.5 +. Ptrng_prng.Rng.float rng;
              !t)
        in
        let edges1 = edges 1 and edges2 = edges 2 in
        let q = Ptrng_measure.Counter.q_counts ~edges1 ~edges2 ~n in
        let windows = Array.length q in
        if windows < 2 then true
        else begin
          let t_start = edges2.(0) and t_stop = edges2.(windows * n) in
          let direct =
            Array.fold_left
              (fun acc t -> if t >= t_start && t < t_stop then acc + 1 else acc)
              0 edges1
          in
          Array.fold_left ( + ) 0 q = direct
        end);
  ]

(* ------------------------------------------------------------------ *)
(* newer modules                                                       *)
(* ------------------------------------------------------------------ *)

let extended_props =
  [
    Testkit.qcheck "phase-chain bit probabilities are probabilities"
      (Gen.triple (Gen.float_range (-6.0) 6.0) (Gen.float_range 0.0 4.0)
         (Gen.int_range 0 255))
      (fun (drift, diffusion, state) ->
        let chain = Ptrng_model.Phase_chain.create ~drift ~diffusion () in
        let p = Ptrng_model.Phase_chain.bit_probability_of_state chain state in
        p >= 0.0 && p <= 1.0 +. 1e-12);
    Testkit.qcheck "phase-chain stationary distribution sums to 1"
      (Gen.pair (Gen.float_range (-3.0) 3.0) (Gen.float_range 0.0 3.0))
      (fun (drift, diffusion) ->
        let chain = Ptrng_model.Phase_chain.create ~bins:64 ~drift ~diffusion () in
        let total =
          Array.fold_left ( +. ) 0.0 (Ptrng_model.Phase_chain.stationary chain)
        in
        close ~tol:1e-9 1.0 total);
    Testkit.qcheck "90B estimates live in [0, 1]"
      (Gen.pair Gen.int (Gen.float_range 0.05 0.95))
      (fun (seed, p) ->
        let rng = Ptrng_prng.Rng.create ~seed:(Int64.of_int seed) () in
        let bits =
          Array.init 2000 (fun _ -> Ptrng_prng.Distributions.bernoulli rng ~p)
        in
        let e = Ptrng_sp90b.Estimators.most_common_value bits in
        e.Ptrng_sp90b.Estimators.min_entropy >= 0.0
        && e.Ptrng_sp90b.Estimators.min_entropy <= 1.0);
    Testkit.qcheck "coherent config enforces coprimality"
      (Gen.pair (Gen.int_range 2 40) (Gen.int_range 2 40))
      (fun (km, kd) ->
        let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
        let built =
          try
            ignore (Ptrng_trng.Coherent.config ~f0:1e8 ~km ~kd ());
            true
          with Invalid_argument _ -> false
        in
        built = (gcd km kd = 1));
    Testkit.qcheck "metastable bit probability is monotone in the offset"
      (Gen.pair (Gen.float_range (-5e-11) 5e-11) (Gen.float_range (-5e-11) 5e-11))
      (fun (o1, o2) ->
        let cfg = Ptrng_trng.Metastable.config ~sigma_setup:10e-12 () in
        let lo = Float.min o1 o2 and hi = Float.max o1 o2 in
        Ptrng_trng.Metastable.bit_probability cfg ~offset:lo
        <= Ptrng_trng.Metastable.bit_probability cfg ~offset:hi +. 1e-12);
    Testkit.qcheck "quantization floor is capped at 1/2"
      (Gen.triple (Gen.float_range 0.0 1e4) (Gen.float_range 0.0 1e-3)
         (Gen.int_range 1 100000))
      (fun (b_th, detuning, n) ->
        let phase = { Ptrng_noise.Psd_model.b_th; b_fl = b_th /. 2.0 } in
        let v =
          Ptrng_measure.Quantization.floor_variance ~phase ~f0:1e8 ~detuning ~n
        in
        v >= 0.0 && v <= Ptrng_measure.Quantization.saturated_floor +. 1e-12);
    Testkit.qcheck "sp800-22 p-values are probabilities"
      Gen.int
      (fun seed ->
        let rng = Ptrng_prng.Rng.create ~seed:(Int64.of_int seed) () in
        let bits = Array.init 1200 (fun _ -> Ptrng_prng.Rng.bool rng) in
        List.for_all
          (fun (r : Ptrng_nist22.Sp80022.result) -> r.p_value >= 0.0 && r.p_value <= 1.0)
          (Ptrng_nist22.Sp80022.run_all bits));
  ]

let () =
  Alcotest.run "properties"
    [
      ("prng", prng_props);
      ("signal", signal_props);
      ("stats", stats_props);
      ("model", model_props);
      ("trng", trng_props);
      ("extended", extended_props);
    ]
