(* Edge-case and cross-module behaviors not covered by the per-library
   suites: boundary inputs, parameter extremes, and API contracts that
   only show up in combination. *)

let signal_edges =
  [
    Testkit.case "fft of length 1 and 2" (fun () ->
        let re = [| 3.5 |] and im = [| 0.0 |] in
        Ptrng_signal.Fft.forward_pow2 ~re ~im;
        Testkit.check_rel ~tol:0.0 "n=1 identity" 3.5 re.(0);
        let re = [| 1.0; 2.0 |] and im = [| 0.0; 0.0 |] in
        Ptrng_signal.Fft.forward_pow2 ~re ~im;
        Testkit.check_rel ~tol:1e-12 "n=2 sum" 3.0 re.(0);
        Testkit.check_rel ~tol:1e-12 "n=2 diff" (-1.0) re.(1));
    Testkit.case "dft of a single sample is itself" (fun () ->
        let fr, fi = Ptrng_signal.Fft.dft ~re:[| 7.0 |] ~im:[| -2.0 |] in
        Testkit.check_rel ~tol:0.0 "re" 7.0 fr.(0);
        Testkit.check_rel ~tol:0.0 "im" (-2.0) fi.(0));
    Testkit.case "convolution with an empty operand" (fun () ->
        Alcotest.(check (array (float 0.0))) "empty" [||]
          (Ptrng_signal.Fft.convolve_real [||] [| 1.0; 2.0 |]));
    Testkit.case "window of one point" (fun () ->
        List.iter
          (fun kind ->
            let w = Ptrng_signal.Window.make kind 1 in
            Alcotest.(check int) "length" 1 (Array.length w))
          [ Ptrng_signal.Window.Rectangular; Hann; Blackman ]);
    Testkit.case "welch with zero overlap" (fun () ->
        let x = Array.make 1024 1.0 in
        let s = Ptrng_signal.Psd.welch ~overlap:0.0 ~seg_len:256 ~fs:1.0 x in
        Alcotest.(check int) "segments" 4 s.segments);
    Testkit.case "autocovariance lag 0 equals biased variance" (fun () ->
        let g = Ptrng_prng.Gaussian.create (Testkit.rng ()) in
        let x = Array.init 1000 (fun _ -> Ptrng_prng.Gaussian.draw g) in
        let c = Ptrng_signal.Autocorr.autocovariance ~max_lag:0 x in
        Testkit.check_rel ~tol:1e-9 "c0"
          (Ptrng_stats.Descriptive.variance_biased x)
          c.(0));
    Testkit.case "fir with kernel longer than the signal" (fun () ->
        let y = Ptrng_signal.Filter.fir_direct ~h:(Array.make 10 0.1) [| 1.0; 1.0 |] in
        Alcotest.(check int) "length" 2 (Array.length y);
        Testkit.check_rel ~tol:1e-12 "causal tail" 0.2 y.(1));
    Testkit.case "detrend of fewer than two points" (fun () ->
        Alcotest.(check (array (float 1e-12))) "single" [| 0.0 |]
          (Ptrng_signal.Filter.detrend_linear [| 42.0 |]));
  ]

let stats_edges =
  [
    Testkit.case "quantile of a singleton" (fun () ->
        Testkit.check_rel ~tol:0.0 "median" 5.0 (Ptrng_stats.Descriptive.median [| 5.0 |]));
    Testkit.case "variance of two equal points is zero" (fun () ->
        Testkit.check_abs ~tol:0.0 "zero" 0.0
          (Ptrng_stats.Descriptive.variance [| 1.0; 1.0 |]));
    Testkit.case "gamma_p extreme arguments" (fun () ->
        Testkit.check_abs ~tol:1e-12 "x=0" 0.0 (Ptrng_stats.Special.gamma_p ~a:2.0 ~x:0.0);
        Testkit.check_rel ~tol:1e-9 "x>>a" 1.0 (Ptrng_stats.Special.gamma_p ~a:2.0 ~x:200.0);
        Testkit.check_rel ~tol:1e-6 "large a median"
          0.5
          (Ptrng_stats.Special.gamma_p ~a:1000.0 ~x:(1000.0 -. (1.0 /. 3.0))));
    Testkit.case "normal tail symmetry far out" (fun () ->
        let p = Ptrng_stats.Special.normal_sf 6.0 in
        Testkit.check_in_range "tail magnitude" ~lo:0.9e-9 ~hi:1.1e-9 p;
        Testkit.check_rel ~tol:1e-9 "symmetry" p (Ptrng_stats.Special.normal_cdf (-6.0)));
    Testkit.case "matrix 1x1 operations" (fun () ->
        let a = Ptrng_stats.Matrix.of_rows [| [| 4.0 |] |] in
        let x = Ptrng_stats.Matrix.solve_lu a [| 8.0 |] in
        Testkit.check_rel ~tol:0.0 "solve" 2.0 x.(0);
        Testkit.check_rel ~tol:0.0 "inverse" 0.25
          (Ptrng_stats.Matrix.get (Ptrng_stats.Matrix.inverse a) 0 0));
    Testkit.case "polynomial fit of degree zero is the mean" (fun () ->
        let x = [| 1.0; 2.0; 3.0; 4.0 |] and y = [| 2.0; 4.0; 6.0; 8.0 |] in
        let f = Ptrng_stats.Regression.polynomial ~degree:0 ~x ~y in
        Testkit.check_rel ~tol:1e-12 "mean" 5.0 f.coeffs.(0));
    Testkit.case "allan closed forms at the crossover are equal" (fun () ->
        let h0 = 1e-10 and hm1 = 3e-12 in
        let tau = Ptrng_stats.Allan.crossover_tau ~h0 ~hm1 in
        Testkit.check_rel ~tol:1e-12 "equal"
          (Ptrng_stats.Allan.avar_white_fm ~h0 ~tau)
          (Ptrng_stats.Allan.avar_flicker_fm ~hm1));
    Testkit.case "histogram with explicit range ignores data extent" (fun () ->
        let h = Ptrng_stats.Histogram.make ~bins:2 ~range:(0.0, 10.0) [| 1.0 |] in
        Testkit.check_rel ~tol:0.0 "edge" 5.0 h.edges.(1));
    Testkit.case "chi2 gof guards degrees of freedom" (fun () ->
        Alcotest.check_raises "ddof eats df"
          (Invalid_argument "Tests.chi2_gof: no degrees of freedom left")
          (fun () ->
            ignore
              (Ptrng_stats.Tests.chi2_gof ~ddof:1 ~observed:[| 1; 2 |]
                 ~expected:[| 1.5; 1.5 |] ())));
  ]

let model_edges =
  [
    Testkit.case "sigma2_n at N=1 is dominated by thermal" (fun () ->
        let p = Ptrng_osc.Pair.paper_relative in
        let f0 = Ptrng_osc.Pair.paper_f0 in
        let total = Ptrng_model.Spectral.sigma2_n p ~f0 ~n:1 in
        let thermal = Ptrng_model.Spectral.sigma2_n_thermal p ~f0 ~n:1 in
        Testkit.check_rel ~tol:1e-3 "thermal share" 1.0 (thermal /. total));
    Testkit.case "entropy approximation endpoints" (fun () ->
        (* At s = 0 the first-order formula returns its (untrustworthy)
           analytic value 1 - 4/(pi^2 ln 2); at large s it saturates. *)
        Testkit.check_rel ~tol:1e-12 "s=0"
          (1.0 -. (4.0 /. (Float.pi *. Float.pi *. log 2.0)))
          (Ptrng_model.Entropy.entropy_lower_bound ~phase_std:0.0);
        Testkit.check_rel ~tol:1e-12 "s huge" 1.0
          (Ptrng_model.Entropy.entropy_lower_bound ~phase_std:50.0));
    Testkit.case "min entropy at zero diffusion is zero" (fun () ->
        Testkit.check_abs ~tol:1e-9 "deterministic" 0.0
          (Ptrng_model.Entropy.min_entropy ~phase_std:0.0));
    Testkit.case "design: divisor 1 suffices for tiny targets" (fun () ->
        let extract =
          Ptrng_measure.Thermal_extract.of_phase ~f0:Ptrng_osc.Pair.paper_f0
            Ptrng_osc.Pair.paper_relative
        in
        Alcotest.(check int) "K=1" 1
          (Ptrng_model.Design.required_divisor ~target:1e-6 ~extract ()));
    Testkit.case "bit_markov of_thermal matches manual construction" (fun () ->
        let m =
          Ptrng_model.Bit_markov.of_thermal ~sigma_period:15.89e-12 ~divisor:400
            ~detuning:1e-4 ~f0:103e6
        in
        let manual =
          Ptrng_model.Bit_markov.create
            ~drift:(2.0 *. Float.pi *. 400.0 *. 1e-4)
            ~diffusion:
              (Ptrng_model.Entropy.phase_std_thermal ~sigma_period:15.89e-12 ~k:400
                 ~f0:103e6)
        in
        Testkit.check_rel ~tol:1e-9 "p_stay" manual.p_stay m.p_stay);
    Testkit.case "phase chain marginal is invariant under drift" (fun () ->
        List.iter
          (fun drift ->
            let c = Ptrng_model.Phase_chain.create ~drift ~diffusion:0.6 () in
            Testkit.check_rel ~tol:1e-6 "half" 0.5
              (Ptrng_model.Phase_chain.marginal_bit_probability c))
          [ 0.0; 0.5; 2.0; 5.0 ]);
  ]

let trng_edges =
  [
    Testkit.case "coherent critical fraction saturates at 1" (fun () ->
        let cfg = Ptrng_trng.Coherent.config ~f0:100e6 ~km:17 ~kd:16 () in
        Testkit.check_rel ~tol:0.0 "cap" 1.0
          (Ptrng_trng.Coherent.critical_fraction cfg ~sigma_period:1e-8));
    Testkit.case "multi_ring single-ring index bounds" (fun () ->
        let cfg = Ptrng_trng.Multi_ring.config ~f0:100e6 ~rings:2 ~divisor:50 () in
        Alcotest.check_raises "index"
          (Invalid_argument "Multi_ring.generate_single: ring index out of range")
          (fun () ->
            ignore
              (Ptrng_trng.Multi_ring.generate_single (Testkit.rng ()) cfg ~ring:5
                 ~bits:10)));
    Testkit.case "metastable entropy degrades smoothly with offset" (fun () ->
        let h offset0 =
          Ptrng_trng.Metastable.expected_entropy
            (Ptrng_trng.Metastable.config ~offset0 ~sigma_setup:10e-12 ())
        in
        Testkit.check_true "monotone" (h 0.0 > h 5e-12 && h 5e-12 > h 15e-12));
    Testkit.case "xor_decimate with k=1 is the identity" (fun () ->
        let s = Ptrng_trng.Bitstream.of_ints [| 1; 0; 1 |] in
        let out = Ptrng_trng.Post_process.xor_decimate ~k:1 s in
        Alcotest.(check int) "length" 3 (Ptrng_trng.Bitstream.length out);
        Testkit.check_true "same" (Ptrng_trng.Bitstream.get out 0));
    Testkit.case "von neumann of the empty stream is empty" (fun () ->
        Alcotest.(check int) "empty" 0
          (Ptrng_trng.Bitstream.length
             (Ptrng_trng.Post_process.von_neumann (Ptrng_trng.Bitstream.of_bools [||]))));
    Testkit.case "attacked pair with strength 0 is unchanged" (fun () ->
        let pair = Ptrng_osc.Pair.paper_pair () in
        let same = Ptrng_trng.Attack.frequency_injection ~lock_strength:0.0 pair in
        Testkit.check_rel ~tol:1e-12 "b_th"
          pair.Ptrng_osc.Pair.osc1.Ptrng_osc.Oscillator.phase.Ptrng_noise.Psd_model.b_th
          same.Ptrng_osc.Pair.osc1.Ptrng_osc.Oscillator.phase.Ptrng_noise.Psd_model.b_th);
  ]

let measure_edges =
  [
    Testkit.case "s_N at the exact minimum length" (fun () ->
        let s = Ptrng_measure.S_process.realizations ~n:4 (Array.make 8 1.0) in
        Alcotest.(check int) "one realization" 1 (Array.length s));
    Testkit.case "counter with osc1 faster than osc2" (fun () ->
        (* 3 osc1 edges per osc2 period, exactly. *)
        let edges1 = Array.init 31 (fun i -> float_of_int i /. 3.0) in
        let edges2 = Array.init 11 float_of_int in
        let q = Ptrng_measure.Counter.q_counts ~edges1 ~edges2 ~n:2 in
        Array.iter (fun c -> Alcotest.(check int) "6 per window" 6 c) q);
    Testkit.case "fit with floor on floor-only data" (fun () ->
        let pts =
          Array.map
            (fun n ->
              { Ptrng_measure.Variance_curve.n; sigma2 = 0.0; scaled = 0.4;
                neff = 100; stderr = Float.nan })
            [| 4; 8; 16; 32; 64 |]
        in
        let f = Ptrng_measure.Fit.fit ~with_floor:true ~f0:1e8 pts in
        Testkit.check_rel ~tol:1e-9 "floor" 0.4 f.c;
        Testkit.check_abs ~tol:1e-12 "no slope" 0.0 f.a);
    Testkit.case "online feasibility: more precision needs more windows" (fun () ->
        let ns = [| 4096; 16384; 65536 |] in
        let w p =
          Ptrng_measure.Online_test.windows_for_precision
            ~phase:Ptrng_osc.Pair.paper_relative ~floor:0.33 ~ns ~f0:103e6
            ~rel_precision:p
        in
        Testkit.check_true "monotone" (w 0.1 > w 0.25 && w 0.25 > w 0.5);
        (* Quadratic scaling in 1/precision. *)
        Testkit.check_rel ~tol:0.05 "quadratic" 4.0
          (float_of_int (w 0.125) /. float_of_int (w 0.25)));
    Testkit.case "quantization drift grows with N" (fun () ->
        let d n =
          Ptrng_measure.Quantization.drift_per_window
            ~phase:Ptrng_osc.Pair.paper_relative ~f0:103e6 ~detuning:1e-4 ~n
        in
        Testkit.check_true "monotone" (d 16 < d 256 && d 256 < d 4096));
    Testkit.case "thermal extract r_n rejects negative N" (fun () ->
        let e =
          Ptrng_measure.Thermal_extract.of_phase ~f0:103e6 Ptrng_osc.Pair.paper_relative
        in
        Alcotest.check_raises "negative"
          (Invalid_argument "Thermal_extract.r_n: negative N")
          (fun () -> ignore (Ptrng_measure.Thermal_extract.r_n e (-1))));
  ]

let evaluation_edges =
  [
    Testkit.case "AIS31 poker on a perfectly uniform nibble cycle" (fun () ->
        (* All 16 nibbles equally often: X = 0, below the lower bound
           (too perfect is also suspicious). *)
        let bits =
          Array.init 20000 (fun i ->
              let nibble = i / 4 mod 16 and pos = 3 - (i mod 4) in
              nibble lsr pos land 1 = 1)
        in
        let r = Ptrng_ais31.Procedure_a.t2_poker bits in
        Testkit.check_false "too uniform fails" r.Ptrng_ais31.Report.pass);
    Testkit.case "coron g is increasing and concave-ish" (fun () ->
        let g = Ptrng_ais31.Procedure_b.coron_g in
        Testkit.check_true "increasing" (g 10 < g 100 && g 100 < g 1000);
        Testkit.check_true "slowing growth" (g 100 -. g 10 > g 1000 -. g 910));
    Testkit.case "sp800-22 longest-run uses the 128-bit table on long input" (fun () ->
        let rng = Testkit.rng () in
        let bits = Array.init 10000 (fun _ -> Ptrng_prng.Rng.bool rng) in
        let r = Ptrng_nist22.Sp80022.longest_run bits in
        Testkit.check_true "pass" r.Ptrng_nist22.Sp80022.pass);
    Testkit.case "90B markov estimator caps at 1 bit" (fun () ->
        let rng = Testkit.rng () in
        let bits = Array.init 50000 (fun _ -> Ptrng_prng.Rng.bool rng) in
        let e = Ptrng_sp90b.Estimators.markov bits in
        Testkit.check_true "cap" (e.Ptrng_sp90b.Estimators.min_entropy <= 1.0));
    Testkit.case "health rct resets on value change" (fun () ->
        let rct = Ptrng_sp90b.Health.rct_create ~cutoff:3 in
        Testkit.check_false "1" (Ptrng_sp90b.Health.rct_feed rct true);
        Testkit.check_false "2" (Ptrng_sp90b.Health.rct_feed rct true);
        Testkit.check_false "reset" (Ptrng_sp90b.Health.rct_feed rct false);
        Testkit.check_false "1 again" (Ptrng_sp90b.Health.rct_feed rct false);
        Testkit.check_true "3rd in a row" (Ptrng_sp90b.Health.rct_feed rct false));
    Testkit.case "apt evaluates exactly once per window" (fun () ->
        let apt = Ptrng_sp90b.Health.apt_create ~cutoff:60 ~window:64 in
        let alarms = ref 0 in
        for i = 0 to 127 do
          if Ptrng_sp90b.Health.apt_feed apt (i >= 0) then incr alarms
        done;
        (* Two full windows of constant input, both above cutoff. *)
        Alcotest.(check int) "two alarms" 2 !alarms);
  ]

let () =
  Alcotest.run "edge_cases"
    [
      ("signal", signal_edges);
      ("stats", stats_edges);
      ("model", model_edges);
      ("trng", trng_edges);
      ("measure", measure_edges);
      ("evaluation", evaluation_edges);
    ]
