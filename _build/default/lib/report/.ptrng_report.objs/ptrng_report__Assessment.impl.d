lib/report/assessment.ml: Float Format List Ptrng_ais31 Ptrng_nist22 Ptrng_sp90b Ptrng_trng String
