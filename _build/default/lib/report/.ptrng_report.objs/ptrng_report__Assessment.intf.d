lib/report/assessment.mli: Format Ptrng_ais31 Ptrng_nist22 Ptrng_sp90b Ptrng_trng
