type verdict = [ `Pass | `Caution | `Fail ]

type t = {
  bits_evaluated : int;
  bias : float;
  serial_correlation : float;
  ais31_a : Ptrng_ais31.Report.summary option;
  ais31_b : Ptrng_ais31.Report.summary option;
  nist : Ptrng_nist22.Sp80022.result list;
  sp90b : Ptrng_sp90b.Estimators.estimate list;
  sp90b_aggregate : float;
  predictors : Ptrng_sp90b.Estimators.estimate list;
  predictor_aggregate : float;
  health_rct_alarms : int;
  health_apt_alarms : int;
  verdict : verdict;
}

let decide ~ais31_a ~nist ~aggregate ~rct ~apt =
  let ais_fail =
    match ais31_a with Some s -> not s.Ptrng_ais31.Report.verdict | None -> false
  in
  let nist_failures =
    List.length (List.filter (fun r -> not r.Ptrng_nist22.Sp80022.pass) nist)
  in
  if ais_fail || nist_failures >= 2 || rct > 0 || apt > 0 || aggregate < 0.3 then `Fail
  else if nist_failures = 1 || aggregate < 0.5 then `Caution
  else `Pass

let evaluate ?(claimed_entropy = 0.997) stream =
  let n = Ptrng_trng.Bitstream.length stream in
  if n < 2000 then invalid_arg "Assessment.evaluate: need >= 2000 bits";
  let bits = Ptrng_trng.Bitstream.to_bools stream in
  let ais31_a =
    if n >= Ptrng_ais31.Procedure_a.block_bits then
      Some (Ptrng_ais31.Procedure_a.run stream)
    else None
  in
  let ais31_b = Some (Ptrng_ais31.Procedure_b.run stream) in
  let nist = Ptrng_nist22.Sp80022.run_all bits in
  let sp90b, sp90b_aggregate = Ptrng_sp90b.Estimators.run_all bits in
  let predictors, predictor_aggregate =
    if n >= 4096 then Ptrng_sp90b.Predictors.run_all bits else ([], 1.0)
  in
  let health_rct_alarms, health_apt_alarms =
    Ptrng_sp90b.Health.scan
      ~cutoff_rct:(Ptrng_sp90b.Health.rct_cutoff ~h:claimed_entropy ())
      ~cutoff_apt:(Ptrng_sp90b.Health.apt_cutoff ~h:claimed_entropy ())
      ~window:1024 bits
  in
  let aggregate = Float.min sp90b_aggregate predictor_aggregate in
  let serial_correlation =
    (* A constant stream has no defined correlation; report 0 and let
       the batteries condemn it. *)
    try Ptrng_trng.Bitstream.serial_correlation stream with Invalid_argument _ -> 0.0
  in
  {
    bits_evaluated = n;
    bias = Ptrng_trng.Bitstream.bias stream;
    serial_correlation;
    ais31_a;
    ais31_b;
    nist;
    sp90b;
    sp90b_aggregate;
    predictors;
    predictor_aggregate;
    health_rct_alarms;
    health_apt_alarms;
    verdict =
      decide ~ais31_a ~nist ~aggregate ~rct:health_rct_alarms ~apt:health_apt_alarms;
  }

let verdict_name = function
  | `Pass -> "PASS"
  | `Caution -> "CAUTION"
  | `Fail -> "FAIL"

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "=== TRNG assessment (%d bits) ===@," t.bits_evaluated;
  Format.fprintf ppf "bias %+.4f, lag-1 correlation %+.4f@," t.bias t.serial_correlation;
  (match t.ais31_a with
  | Some s ->
    Format.fprintf ppf "AIS31 procedure A: %d/%d -> %s@," s.Ptrng_ais31.Report.passed
      (s.Ptrng_ais31.Report.passed + s.Ptrng_ais31.Report.failed)
      (if s.Ptrng_ais31.Report.verdict then "pass" else "FAIL")
  | None -> Format.fprintf ppf "AIS31 procedure A: (not enough bits)@,");
  (match t.ais31_b with
  | Some s ->
    Format.fprintf ppf "AIS31 procedure B: %d/%d -> %s@," s.Ptrng_ais31.Report.passed
      (s.Ptrng_ais31.Report.passed + s.Ptrng_ais31.Report.failed)
      (if s.Ptrng_ais31.Report.verdict then "pass" else "FAIL")
  | None -> ());
  let nist_failed = List.filter (fun r -> not r.Ptrng_nist22.Sp80022.pass) t.nist in
  Format.fprintf ppf "SP 800-22: %d/%d pass%s@,"
    (List.length t.nist - List.length nist_failed)
    (List.length t.nist)
    (match nist_failed with
    | [] -> ""
    | fs ->
      " (failing: "
      ^ String.concat ", " (List.map (fun r -> r.Ptrng_nist22.Sp80022.name) fs)
      ^ ")");
  Format.fprintf ppf "SP 800-90B estimators: ";
  List.iter
    (fun (e : Ptrng_sp90b.Estimators.estimate) ->
      Format.fprintf ppf "%s %.3f  " e.name e.min_entropy)
    t.sp90b;
  Format.fprintf ppf "-> %.3f@," t.sp90b_aggregate;
  if t.predictors <> [] then begin
    Format.fprintf ppf "SP 800-90B predictors: ";
    List.iter
      (fun (e : Ptrng_sp90b.Estimators.estimate) ->
        Format.fprintf ppf "%s %.3f  " e.name e.min_entropy)
      t.predictors;
    Format.fprintf ppf "-> %.3f@," t.predictor_aggregate
  end;
  Format.fprintf ppf "health tests: %d RCT alarms, %d APT alarms@," t.health_rct_alarms
    t.health_apt_alarms;
  Format.fprintf ppf "overall: %s@]" (verdict_name t.verdict)
