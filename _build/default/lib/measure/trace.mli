(** Persistence for measurement data (CSV, self-describing headers).

    Lets a long simulation (or, one day, a real capture) be analysed
    offline and keeps the benchmark outputs plottable with standard
    tools. *)

val save_series : path:string -> ?unit_label:string -> float array -> unit
(** Write a one-column series with an [index,value] header.
    @raise Sys_error on I/O failure. *)

val load_series : path:string -> float array
(** Read a file written by {!save_series}.
    @raise Failure on malformed content. *)

val save_curve : path:string -> Variance_curve.point array -> unit
(** Write a sigma_N^2 curve with all point fields. *)

val load_curve : path:string -> Variance_curve.point array
(** Read a file written by {!save_curve}.
    @raise Failure on malformed content. *)
