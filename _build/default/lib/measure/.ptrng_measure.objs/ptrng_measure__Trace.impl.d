lib/measure/trace.ml: Array Fun List Printf String Variance_curve
