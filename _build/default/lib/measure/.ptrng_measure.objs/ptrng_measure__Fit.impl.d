lib/measure/fit.ml: Array Float List Ptrng_noise Ptrng_stats Variance_curve
