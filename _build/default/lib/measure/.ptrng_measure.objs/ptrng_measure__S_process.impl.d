lib/measure/s_process.ml: Array
