lib/measure/online_test.mli: Ptrng_noise
