lib/measure/variance_curve.mli:
