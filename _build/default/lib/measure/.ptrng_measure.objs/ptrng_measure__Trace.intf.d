lib/measure/trace.mli: Variance_curve
