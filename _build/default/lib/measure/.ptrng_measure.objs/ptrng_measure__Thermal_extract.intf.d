lib/measure/thermal_extract.mli: Fit Ptrng_noise
