lib/measure/fit.mli: Ptrng_noise Variance_curve
