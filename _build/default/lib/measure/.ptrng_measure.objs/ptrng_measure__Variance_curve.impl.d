lib/measure/variance_curve.ml: Array Counter Float List Ptrng_stats S_process
