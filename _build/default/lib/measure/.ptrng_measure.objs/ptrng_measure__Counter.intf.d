lib/measure/counter.mli:
