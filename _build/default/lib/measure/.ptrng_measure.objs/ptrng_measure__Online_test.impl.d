lib/measure/online_test.ml: Array Fit Float Ptrng_noise Ptrng_stats Variance_curve
