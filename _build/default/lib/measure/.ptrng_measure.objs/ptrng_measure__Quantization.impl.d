lib/measure/quantization.ml: Float Ptrng_noise
