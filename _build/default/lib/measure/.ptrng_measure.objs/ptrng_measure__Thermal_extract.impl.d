lib/measure/thermal_extract.ml: Fit Float Ptrng_noise
