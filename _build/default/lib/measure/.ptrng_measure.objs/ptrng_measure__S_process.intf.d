lib/measure/s_process.mli:
