lib/measure/quantization.mli: Ptrng_noise
