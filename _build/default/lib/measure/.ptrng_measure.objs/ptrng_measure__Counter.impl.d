lib/measure/counter.ml: Array
