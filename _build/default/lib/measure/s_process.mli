(** The paper's accumulated-jitter difference statistic (eq. 4):

    [s_N(t_i) = sum_{j=N}^{2N-1} J(t_{i+j}) - sum_{j=0}^{N-1} J(t_{i+j})]

    i.e. the duration difference between two adjacent accumulations of
    N periods — an Allan-style two-sample difference whose variance
    stays finite under flicker noise.  Computed as a second difference
    of the cumulative jitter, [C(i+2N) - 2 C(i+N) + C(i)]. *)

val cumulative : float array -> float array
(** [cumulative j] is C with [C.(0) = 0] and [C.(k+1) = C.(k) + j.(k)]. *)

val realizations : ?stride:int -> n:int -> float array -> float array
(** [realizations ~n j] returns the s_N realizations available in the
    jitter series [j], starting points spaced by [stride] (default 1 =
    fully overlapping; [stride = 2n] gives disjoint realizations).
    @raise Invalid_argument if [n <= 0], [stride <= 0], or the series
    is shorter than [2n]. *)

val relative_jitter : periods1:float array -> periods2:float array -> float array
(** Per-index difference of two period series — the relative jitter
    process of an oscillator pair (constant frequency offset between
    the rings contributes only a constant, which the second difference
    in {!realizations} cancels). *)
