(** Weighted fit of the variance curve
    [f0^2 sigma_N^2 = a N + b N^2 (+ c)] (paper Section IV-A).

    The linear term is the thermal (independent-jitter) contribution,
    the quadratic term the flicker contribution, and the optional
    constant absorbs the counter quantization floor; coefficients map
    back to the paper's phase-noise parameters by
    [b_th = a f0 / 2] and [b_fl = b f0^2 / (8 ln 2)]. *)

type t = {
  a : float;       (** Linear coefficient (counts^2 per period). *)
  b : float;       (** Quadratic coefficient. *)
  c : float;       (** Constant floor (0 when not fitted). *)
  d : float;       (** Cubic (random-walk FM) coefficient (0 when not fitted). *)
  a_se : float;
  b_se : float;
  c_se : float;    (** nan when the floor is not fitted. *)
  d_se : float;    (** nan when the cubic term is not fitted. *)
  chi2 : float;
  dof : int;
  f0 : float;
}

val fit :
  ?with_floor:bool -> ?with_cubic:bool -> f0:float ->
  Variance_curve.point array -> t
(** Weighted least squares over the curve points (weights from each
    point's standard error when finite).  [with_floor] (default false)
    adds the constant term — recommended for counter-based curves;
    [with_cubic] adds an N^3 term for oscillators with random-walk FM
    (aging) on top of the paper's model.
    @raise Invalid_argument with fewer than points than parameters + 1. *)

val phase_of : t -> Ptrng_noise.Psd_model.phase
(** Recover (b_th, b_fl) from the fitted coefficients. *)

val phase_se_of : t -> float * float
(** Standard errors of (b_th, b_fl) propagated from the fit. *)

val predict : t -> int -> float
(** Fitted [f0^2 sigma_N^2] at accumulation length N. *)

val rw_hm2_of : t -> float
(** Recover the random-walk FM level from a cubic fit:
    [h_{-2} = 3 d f0 / (4 pi^2)] (from
    [f0^2 sigma_N^2 = (4 pi^2/3) h_{-2} N^3 / f0]). *)
