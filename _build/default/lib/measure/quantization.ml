let saturated_floor = 0.5

let sigma2_n phase ~f0 ~n =
  let open Ptrng_noise.Psd_model in
  let fn = float_of_int n in
  (2.0 *. phase.b_th *. fn /. (f0 ** 3.0))
  +. (8.0 *. log 2.0 *. phase.b_fl *. fn *. fn /. (f0 ** 4.0))

let drift_per_window ~phase ~f0 ~detuning ~n =
  if n <= 0 then invalid_arg "Quantization.drift_per_window: n <= 0";
  let deterministic = float_of_int n *. Float.abs detuning in
  (* Random boundary motion: std of the window-to-window phase change in
     counts is sqrt(f0^2 sigma_N^2); its mean absolute value carries the
     half-normal factor sqrt(2/pi). *)
  let random2 = 2.0 /. Float.pi *. f0 *. f0 *. sigma2_n phase ~f0 ~n in
  sqrt ((deterministic *. deterministic) +. random2)

let floor_variance ~phase ~f0 ~detuning ~n =
  let d = drift_per_window ~phase ~f0 ~detuning ~n in
  Float.min (2.0 *. d) saturated_floor

let quantization_dominated ~phase ~f0 ~detuning ~n =
  floor_variance ~phase ~f0 ~detuning ~n > f0 *. f0 *. sigma2_n phase ~f0 ~n
