type t = {
  phase : Ptrng_noise.Psd_model.phase;
  f0 : float;
  sigma_thermal : float;
  sigma_relative : float;
  k_ratio : float;
}

let of_phase ~f0 phase =
  let open Ptrng_noise.Psd_model in
  if f0 <= 0.0 then invalid_arg "Thermal_extract.of_phase: f0 <= 0";
  if phase.b_th <= 0.0 then invalid_arg "Thermal_extract.of_phase: b_th <= 0";
  let sigma_thermal = sqrt (phase.b_th /. (f0 ** 3.0)) in
  let k_ratio =
    if phase.b_fl <= 0.0 then Float.infinity
    else phase.b_th *. f0 /. (4.0 *. log 2.0 *. phase.b_fl)
  in
  { phase; f0; sigma_thermal; sigma_relative = sigma_thermal *. f0; k_ratio }

let of_fit fit = of_phase ~f0:fit.Fit.f0 (Fit.phase_of fit)

let r_n t n =
  if n < 0 then invalid_arg "Thermal_extract.r_n: negative N";
  if Float.is_finite t.k_ratio then t.k_ratio /. (t.k_ratio +. float_of_int n)
  else 1.0

let independence_threshold t ~confidence =
  if confidence <= 0.0 || confidence >= 1.0 then
    invalid_arg "Thermal_extract.independence_threshold: confidence outside (0,1)";
  if Float.is_finite t.k_ratio then
    int_of_float (Float.floor (t.k_ratio *. ((1.0 /. confidence) -. 1.0)))
  else max_int
