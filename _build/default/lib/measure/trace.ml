let with_out path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> f oc)

let fold_lines path f init =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec loop acc =
        match input_line ic with
        | line -> loop (f acc line)
        | exception End_of_file -> acc
      in
      loop init)

let malformed path line = failwith (Printf.sprintf "Trace: malformed line in %s: %S" path line)

let save_series ~path ?(unit_label = "value") series =
  with_out path (fun oc ->
      Printf.fprintf oc "index,%s\n" unit_label;
      Array.iteri (fun i v -> Printf.fprintf oc "%d,%.17g\n" i v) series)

let load_series ~path =
  let values =
    fold_lines path
      (fun acc line ->
        if String.length line = 0 then acc
        else
          match String.split_on_char ',' line with
          | [ _; v ] -> (
            match float_of_string_opt v with
            | Some f -> f :: acc
            | None ->
              (* Tolerate exactly one header line. *)
              if acc = [] && not (String.contains v '.') then acc
              else malformed path line)
          | _ -> malformed path line)
      []
  in
  Array.of_list (List.rev values)

let save_curve ~path points =
  with_out path (fun oc ->
      Printf.fprintf oc "n,sigma2,scaled,neff,stderr\n";
      Array.iter
        (fun (p : Variance_curve.point) ->
          Printf.fprintf oc "%d,%.17g,%.17g,%d,%.17g\n" p.n p.sigma2 p.scaled p.neff
            p.stderr)
        points)

let load_curve ~path =
  let points =
    fold_lines path
      (fun acc line ->
        if String.length line = 0 || String.length line >= 1 && line.[0] = 'n' then acc
        else
          match String.split_on_char ',' line with
          | [ n; sigma2; scaled; neff; stderr ] -> (
            match
              ( int_of_string_opt n,
                float_of_string_opt sigma2,
                float_of_string_opt scaled,
                int_of_string_opt neff,
                float_of_string_opt stderr )
            with
            | Some n, Some sigma2, Some scaled, Some neff, Some stderr ->
              { Variance_curve.n; sigma2; scaled; neff; stderr } :: acc
            | _ -> malformed path line)
          | _ -> malformed path line)
      []
  in
  Array.of_list (List.rev points)
