(** Model of the counter quantization floor.

    Q counts are integers, so each s_N realization from the Fig. 6
    circuit carries an error built from the fractional phases at three
    consecutive window boundaries, [-e_{i+2} + 2 e_{i+1} - e_i].  How
    much variance that adds depends on how far the fractional phase
    moves per window:

    - moves >> 1 count: the fractions decorrelate; with iid uniform
      fractions the second difference has variance 6/12 = 1/2 — the
      saturated floor;
    - moves d << 1 count (slow drift): the fraction is a slow sawtooth;
      its second difference vanishes except at the ~d-per-window wrap
      events, each contributing O(1) at two adjacent realizations, so
      the variance is ~ 2 d.

    The crossover is modelled as [min (2 d_eff, 1/2)] where d_eff
    combines the deterministic drift (N * detuning counts) and the
    random boundary-to-boundary jitter motion (E|N(0, s)| with s the
    per-window drift std in counts).  Semi-empirical — validated within
    ~40 % against the event-level simulator in the test-suite — it is
    good enough for its two jobs: sizing the [c] term of a counter-data
    fit, and predicting below which N counter measurements are
    quantization-dominated. *)

val saturated_floor : float
(** 1/2 count^2 — the iid-uniform-fraction limit. *)

val drift_per_window :
  phase:Ptrng_noise.Psd_model.phase -> f0:float -> detuning:float -> n:int -> float
(** Expected fractional-phase movement per window, in counts:
    [sqrt ((N d)^2 + (2/pi) f0^2 sigma_N^2)]. *)

val floor_variance :
  phase:Ptrng_noise.Psd_model.phase -> f0:float -> detuning:float -> n:int -> float
(** Predicted quantization contribution to [f0^2 Var(s_N)], counts^2. *)

val quantization_dominated :
  phase:Ptrng_noise.Psd_model.phase -> f0:float -> detuning:float -> n:int -> bool
(** True when the predicted floor exceeds the true signal
    [f0^2 sigma_N^2] — counter data at this N measures mostly the
    quantizer. *)
