(** The paper's headline application (Section IV): extracting the
    thermal-noise contribution to the period jitter from the fitted
    variance curve, plus the independence diagnostics of Section III-E. *)

type t = {
  phase : Ptrng_noise.Psd_model.phase;  (** Extracted (b_th, b_fl). *)
  f0 : float;
  sigma_thermal : float;   (** Thermal period jitter sqrt(b_th/f0^3), s
                               — the paper's 15.89 ps. *)
  sigma_relative : float;  (** sigma_thermal * f0 — the paper's 1.6 permil. *)
  k_ratio : float;         (** b_th f0 / (4 ln2 b_fl) — the paper's 5354:
                               r_N = k / (k + N). *)
}

val of_fit : Fit.t -> t
(** @raise Invalid_argument if the fitted thermal coefficient is not
    positive. *)

val of_phase : f0:float -> Ptrng_noise.Psd_model.phase -> t
(** Same summary computed from known model coefficients (ground truth
    in simulations). *)

val r_n : t -> int -> float
(** Thermal fraction of sigma_N^2 at accumulation length N. *)

val independence_threshold : t -> confidence:float -> int
(** Largest N with [r_n >= confidence] — below it, 2N consecutive
    jitter realizations are "almost mutually independent" in the
    paper's sense (281 at 95% for the paper's numbers). *)
