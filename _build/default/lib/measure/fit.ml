type t = {
  a : float;
  b : float;
  c : float;
  d : float;
  a_se : float;
  b_se : float;
  c_se : float;
  d_se : float;
  chi2 : float;
  dof : int;
  f0 : float;
}

let fit ?(with_floor = false) ?(with_cubic = false) ~f0 points =
  if f0 <= 0.0 then invalid_arg "Fit.fit: f0 <= 0";
  let usable = Array.to_list points in
  let p = 2 + (if with_floor then 1 else 0) + (if with_cubic then 1 else 0) in
  let m = List.length usable in
  if m < p + 1 then invalid_arg "Fit.fit: not enough curve points";
  let cubic_col = 2 and floor_col = if with_cubic then 3 else 2 in
  let design = Ptrng_stats.Matrix.create ~rows:m ~cols:p in
  let y = Array.make m 0.0 in
  let sigma = Array.make m 1.0 in
  let all_finite = ref true in
  List.iteri
    (fun i (pt : Variance_curve.point) ->
      let n = float_of_int pt.n in
      Ptrng_stats.Matrix.set design i 0 n;
      Ptrng_stats.Matrix.set design i 1 (n *. n);
      if with_cubic then Ptrng_stats.Matrix.set design i cubic_col (n *. n *. n);
      if with_floor then Ptrng_stats.Matrix.set design i floor_col 1.0;
      y.(i) <- pt.scaled;
      let se = pt.stderr *. f0 *. f0 in
      if Float.is_finite se && se > 0.0 then sigma.(i) <- se else all_finite := false)
    usable;
  let reg =
    if !all_finite then Ptrng_stats.Regression.general ~design ~y ~sigma ()
    else Ptrng_stats.Regression.general ~design ~y ()
  in
  let se k = Ptrng_stats.Regression.coeff_se reg k in
  {
    a = reg.coeffs.(0);
    b = reg.coeffs.(1);
    c = (if with_floor then reg.coeffs.(floor_col) else 0.0);
    d = (if with_cubic then reg.coeffs.(cubic_col) else 0.0);
    a_se = se 0;
    b_se = se 1;
    c_se = (if with_floor then se floor_col else Float.nan);
    d_se = (if with_cubic then se cubic_col else Float.nan);
    chi2 = reg.chi2;
    dof = reg.dof;
    f0;
  }

let phase_of t =
  {
    Ptrng_noise.Psd_model.b_th = t.a *. t.f0 /. 2.0;
    b_fl = t.b *. t.f0 *. t.f0 /. (8.0 *. log 2.0);
  }

let phase_se_of t =
  (t.a_se *. t.f0 /. 2.0, t.b_se *. t.f0 *. t.f0 /. (8.0 *. log 2.0))

let predict t n =
  let fn = float_of_int n in
  (t.a *. fn) +. (t.b *. fn *. fn) +. (t.d *. fn *. fn *. fn) +. t.c

let rw_hm2_of t = 3.0 *. t.d *. t.f0 /. (4.0 *. Float.pi *. Float.pi)
