(** Simulation of the paper's differential measurement circuit (Fig. 6).

    Two free-running rings; a counter records Q_i^N, the number of Osc1
    rising edges seen during the i-th window of N Osc2 cycles, and the
    statistic is recovered as [s_N(t_i) = (Q_{i+1} - Q_i) / f0]
    (paper eq. 12).  Unlike the ideal estimator in {!S_process}, counts
    are integers: the +-1 quantization adds a variance floor that is
    visible at small N and is reported honestly (see DESIGN.md). *)

val q_counts : edges1:float array -> edges2:float array -> n:int -> int array
(** [q_counts ~edges1 ~edges2 ~n] counts Osc1 edges within consecutive
    non-overlapping windows of [n] Osc2 cycles (half-open time
    intervals).  @raise Invalid_argument if [n <= 0] or [edges2] spans
    fewer than [2 n] cycles. *)

val s_of_counts : f0:float -> int array -> float array
(** Adjacent-window differences scaled to seconds (eq. 12); length is
    one less than the count array. *)

val s_realizations :
  edges1:float array -> edges2:float array -> f0:float -> n:int -> float array
(** [q_counts] composed with {!s_of_counts}. *)
