(** AIS31 procedure A: tests T0–T5 on the internal random numbers.

    T1–T4 are the FIPS 140-1 battery on 20000-bit blocks; T5 is the
    autocorrelation test; T0 checks disjointness of the first 2^16
    48-bit words.  Bounds follow the AIS31 reference values. *)

val block_bits : int
(** 20000 — the block length of T1–T5. *)

val t0_disjointness : Ptrng_trng.Bitstream.t -> Report.test_result
(** Needs [48 * 65536] bits; the statistic is the number of duplicate
    words (0 passes). *)

val t1_monobit : bool array -> Report.test_result
(** Ones count in a 20000-bit block; pass in (9654, 10346). *)

val t2_poker : bool array -> Report.test_result
(** 4-bit poker statistic; pass in (1.03, 57.4). *)

val t3_runs : bool array -> Report.test_result
(** Run-length distribution; every run-length class (1..5, >=6) of
    both polarities must fall in the FIPS interval.  The statistic is
    the number of out-of-bound classes. *)

val t4_long_run : bool array -> Report.test_result
(** No run of length >= 34. *)

val t5_autocorrelation : bool array -> Report.test_result
(** Shift selection on the first half of the block (tau in [1, 5000]
    maximising the departure), decision on the second half; pass in
    (2326, 2674). *)

val run_block : bool array -> Report.test_result list
(** T1–T5 on one 20000-bit block. @raise Invalid_argument if the block
    is not exactly [block_bits] long. *)

val run : ?blocks:int -> Ptrng_trng.Bitstream.t -> Report.summary
(** T0 (if enough bits) followed by T1–T5 on up to [blocks] consecutive
    blocks (default: as many as available, capped at 257 as in the
    standard).  @raise Invalid_argument if the stream holds less than
    one block. *)
