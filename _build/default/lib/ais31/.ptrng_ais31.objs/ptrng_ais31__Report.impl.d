lib/ais31/report.ml: Format List
