lib/ais31/report.mli: Format
