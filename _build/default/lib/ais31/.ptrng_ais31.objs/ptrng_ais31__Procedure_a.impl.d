lib/ais31/procedure_a.ml: Array Float Hashtbl Int64 List Printf Ptrng_trng Report
