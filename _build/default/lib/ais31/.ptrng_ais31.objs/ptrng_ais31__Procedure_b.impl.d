lib/ais31/procedure_b.ml: Array Float Printf Ptrng_stats Ptrng_trng Report
