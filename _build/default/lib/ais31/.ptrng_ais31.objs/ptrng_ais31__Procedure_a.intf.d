lib/ais31/procedure_a.mli: Ptrng_trng Report
