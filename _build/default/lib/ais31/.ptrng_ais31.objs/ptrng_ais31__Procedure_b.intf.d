lib/ais31/procedure_b.mli: Ptrng_trng Report
