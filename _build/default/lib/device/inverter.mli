(** A CMOS inverter stage: the delay element of the ring oscillators
    the paper studies. *)

type t = {
  nmos : Mosfet.t;
  pmos : Mosfet.t;
  cl : float;             (** Load capacitance, F. *)
  vdd : float;            (** Supply voltage, V. *)
  routing_delay : float;  (** Extra interconnect delay per stage, s
                              (large in FPGA fabric, small in ASIC). *)
}

val create :
  nmos:Mosfet.t -> pmos:Mosfet.t -> cl:float -> vdd:float ->
  ?routing_delay:float -> unit -> t
(** @raise Invalid_argument on non-positive [cl] or [vdd], or negative
    [routing_delay]. *)

val qmax : t -> float
(** Maximum charge swing [cl * vdd] — the normalisation of the ISF
    noise-to-phase conversion. *)

val stage_delay : t -> float
(** Propagation delay: [cl * vdd / (2 i_d)] (average of both edges,
    using the mean drive current) plus [routing_delay]. *)

val thermal_current_psd : t -> float
(** Aggregate white drain-noise density of the stage, A^2/Hz.  The two
    devices conduct on alternate edges, so on average one device's
    noise is active: we use the mean of the two. *)

val flicker_current_coefficient : t -> float
(** Aggregate 1/f coefficient K_fl (mean of the two devices), A^2. *)
