type t = { samples : float array }

let of_samples samples =
  if Array.length samples < 8 then invalid_arg "Isf.of_samples: need >= 8 samples";
  { samples = Array.copy samples }

let of_function ?(samples = 1024) f =
  if samples < 8 then invalid_arg "Isf.of_function: need >= 8 samples";
  { samples = Array.init samples (fun i ->
        f (2.0 *. Float.pi *. float_of_int i /. float_of_int samples)) }

let triangle_lobe ~center ~height ~half_width x =
  let d = Float.abs (x -. center) in
  if d >= half_width then 0.0 else height *. (1.0 -. (d /. half_width))

let ring_oscillator ~stages ?(asymmetry = 0.1) () =
  if stages < 3 then invalid_arg "Isf.ring_oscillator: stages < 3";
  if asymmetry < 0.0 || asymmetry > 1.0 then
    invalid_arg "Isf.ring_oscillator: asymmetry outside [0,1]";
  let n = float_of_int stages in
  let height = Float.pi /. n in
  let half_width = Float.pi /. n in
  let rise_center = Float.pi /. n in
  let fall_center = Float.pi +. (Float.pi /. n) in
  of_function (fun x ->
      triangle_lobe ~center:rise_center ~height ~half_width x
      -. ((1.0 -. asymmetry)
          *. triangle_lobe ~center:fall_center ~height ~half_width x))

let gamma_rms t =
  let acc = Array.fold_left (fun a v -> a +. (v *. v)) 0.0 t.samples in
  sqrt (acc /. float_of_int (Array.length t.samples))

let gamma_dc t =
  Array.fold_left ( +. ) 0.0 t.samples /. float_of_int (Array.length t.samples)

let fourier_coefficient t m =
  if m < 0 then invalid_arg "Isf.fourier_coefficient: negative order";
  let n = Array.length t.samples in
  if m = 0 then 2.0 *. Float.abs (gamma_dc t)
  else begin
    let cr = ref 0.0 and ci = ref 0.0 in
    for i = 0 to n - 1 do
      let theta = 2.0 *. Float.pi *. float_of_int (m * i) /. float_of_int n in
      cr := !cr +. (t.samples.(i) *. cos theta);
      ci := !ci +. (t.samples.(i) *. sin theta)
    done;
    2.0 *. sqrt ((!cr *. !cr) +. (!ci *. !ci)) /. float_of_int n
  end

let eval t x =
  let n = Array.length t.samples in
  let two_pi = 2.0 *. Float.pi in
  let x = x -. (two_pi *. Float.floor (x /. two_pi)) in
  let pos = x /. two_pi *. float_of_int n in
  let i = int_of_float (Float.floor pos) in
  let frac = pos -. float_of_int i in
  let a = t.samples.(i mod n) and b = t.samples.((i + 1) mod n) in
  a +. (frac *. (b -. a))
