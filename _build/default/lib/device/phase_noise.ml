let of_ring ~isf ~qmax ~stages ~thermal_current_psd ~flicker_current_coeff
    ?(excess = 1.0) () =
  if qmax <= 0.0 then invalid_arg "Phase_noise.of_ring: qmax <= 0";
  if stages <= 0 then invalid_arg "Phase_noise.of_ring: stages <= 0";
  if excess <= 0.0 then invalid_arg "Phase_noise.of_ring: excess <= 0";
  let denom = 4.0 *. Float.pi *. Float.pi *. qmax *. qmax in
  let grms = Isf.gamma_rms isf in
  let gdc = Isf.gamma_dc isf in
  let n = float_of_int stages in
  {
    Ptrng_noise.Psd_model.b_th =
      excess *. n *. grms *. grms *. thermal_current_psd /. denom;
    b_fl = excess *. n *. gdc *. gdc *. flicker_current_coeff /. denom;
  }

let of_inverter_ring ~isf ~inverter ~stages ?excess () =
  of_ring ~isf ~qmax:(Inverter.qmax inverter) ~stages
    ~thermal_current_psd:(Inverter.thermal_current_psd inverter)
    ~flicker_current_coeff:(Inverter.flicker_current_coefficient inverter)
    ?excess ()

let ring_frequency ~stages ~stage_delay =
  if stages <= 0 then invalid_arg "Phase_noise.ring_frequency: stages <= 0";
  if stage_delay <= 0.0 then invalid_arg "Phase_noise.ring_frequency: stage_delay <= 0";
  1.0 /. (2.0 *. float_of_int stages *. stage_delay)
