(** Physical constants (SI units). *)

val boltzmann : float
(** k, J/K. *)

val electron_charge : float
(** q, C. *)

val room_temperature : float
(** 300 K, the default operating point. *)
