type t = {
  nmos : Mosfet.t;
  pmos : Mosfet.t;
  cl : float;
  vdd : float;
  routing_delay : float;
}

let create ~nmos ~pmos ~cl ~vdd ?(routing_delay = 0.0) () =
  if cl <= 0.0 then invalid_arg "Inverter.create: cl <= 0";
  if vdd <= 0.0 then invalid_arg "Inverter.create: vdd <= 0";
  if routing_delay < 0.0 then invalid_arg "Inverter.create: negative routing_delay";
  { nmos; pmos; cl; vdd; routing_delay }

let qmax t = t.cl *. t.vdd

let stage_delay t =
  let mean_id = (t.nmos.Mosfet.i_d +. t.pmos.Mosfet.i_d) /. 2.0 in
  (t.cl *. t.vdd /. (2.0 *. mean_id)) +. t.routing_delay

let thermal_current_psd t =
  (Mosfet.thermal_psd t.nmos +. Mosfet.thermal_psd t.pmos) /. 2.0

let flicker_current_coefficient t =
  (Mosfet.flicker_coefficient t.nmos +. Mosfet.flicker_coefficient t.pmos) /. 2.0
