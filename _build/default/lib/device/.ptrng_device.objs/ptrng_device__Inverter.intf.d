lib/device/inverter.mli: Mosfet
