lib/device/isf.mli:
