lib/device/mosfet.mli:
