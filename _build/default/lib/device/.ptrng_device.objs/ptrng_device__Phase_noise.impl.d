lib/device/phase_noise.ml: Float Inverter Isf Ptrng_noise
