lib/device/phase_noise.mli: Inverter Isf Ptrng_noise
