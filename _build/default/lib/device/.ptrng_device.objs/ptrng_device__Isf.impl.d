lib/device/isf.ml: Array Float
