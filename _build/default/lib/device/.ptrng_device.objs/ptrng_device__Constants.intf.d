lib/device/constants.mli:
