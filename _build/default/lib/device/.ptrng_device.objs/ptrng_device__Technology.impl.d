lib/device/technology.ml: Float Inverter Isf List Mosfet Phase_noise Ptrng_noise
