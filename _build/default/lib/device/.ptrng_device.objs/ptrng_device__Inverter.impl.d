lib/device/inverter.ml: Mosfet
