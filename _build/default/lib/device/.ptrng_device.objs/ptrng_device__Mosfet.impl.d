lib/device/mosfet.ml: Constants
