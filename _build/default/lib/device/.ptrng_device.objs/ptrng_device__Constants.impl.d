lib/device/constants.ml:
