lib/device/technology.mli: Inverter Ptrng_noise
