let boltzmann = 1.380649e-23
let electron_charge = 1.602176634e-19
let room_temperature = 300.0
