(** Technology-node presets and scaling (the paper's Section V
    discussion: flicker noise grows as 1/L^2, so shrinking nodes make
    jitter realizations dependent at ever smaller accumulation
    lengths).

    Absolute noise prediction from first principles is only
    order-of-magnitude reliable, so each node carries a dimensionless
    [excess] fabric factor; {!fit_to_measurement} adjusts [excess] and
    the flicker constant so a node reproduces a measured
    (b_th, b_fl) pair — mirroring how the paper itself extracts the
    coefficients from a fit rather than predicting them ab initio. *)

type node = {
  name : string;
  l : float;              (** Channel length, m. *)
  w : float;              (** Channel width, m. *)
  vdd : float;            (** Supply, V. *)
  cl : float;             (** Stage load, F. *)
  i_d : float;            (** Drive current, A. *)
  gm : float;             (** Transconductance, A/V. *)
  alpha : float;          (** Flicker crystallography constant. *)
  routing_delay : float;  (** Per-stage interconnect delay, s. *)
  excess : float;         (** Fabric noise multiplier. *)
}

val presets : node list
(** ASIC nodes 350 nm down to 28 nm plus ["cyclone3-fpga"], a 65 nm
    FPGA-fabric preset calibrated against the paper's measurement. *)

val find : string -> node
(** Look up a preset by name. @raise Not_found if unknown. *)

val inverter : ?temp:float -> node -> Inverter.t
(** Build the stage inverter of a node (identical N/P devices — the
    rise/fall mismatch is carried by the ISF asymmetry instead).
    Default temperature 300 K. *)

type ring = {
  f0 : float;                           (** Ring frequency, Hz. *)
  phase : Ptrng_noise.Psd_model.phase;  (** Phase-noise coefficients. *)
  stages : int;
}

val ring : ?stages:int -> ?asymmetry:float -> ?temp:float -> node -> ring
(** Full prediction for a ring oscillator on this node: frequency from
    the delay model, (b_th, b_fl) from the Hajimiri conversion.
    Defaults: 7 stages, ISF asymmetry 0.2, 300 K.

    Temperature note: in the paper's noise formulas both the thermal
    PSD [(8/3) k T gm] and the flicker PSD [alpha k T I_D^2/(W L^2 f)]
    scale linearly with T, so heating changes the jitter magnitude
    (sigma_th grows as sqrt T) but leaves the flicker/thermal ratio —
    and with it r_N and the independence threshold — unchanged.  The
    test-suite pins this invariance down. *)

val fit_to_measurement :
  ?stages:int ->
  ?asymmetry:float ->
  target:Ptrng_noise.Psd_model.phase ->
  node ->
  node
(** Return a copy of the node whose [excess] and [alpha] are adjusted
    so {!ring} reproduces [target] exactly: [excess] matches the
    thermal coefficient and [alpha] the flicker/thermal ratio. *)

val independence_threshold_n :
  Ptrng_noise.Psd_model.phase -> f0:float -> confidence:float -> int
(** Largest N for which the thermal fraction
    [r_N = sigma_Nth^2 / sigma_N^2 = 1 / (1 + N (4 ln2 b_fl)/(b_th f0))]
    stays above [confidence] (paper Section III-E: 281 for 95%). *)
