(** Impulse sensitivity function (Hajimiri–Lee).

    The ISF Gamma(x) is a 2pi-periodic, dimensionless function giving
    the phase displacement caused by a unit charge injected at phase x
    of the oscillation.  Two of its summary statistics drive the
    noise-to-phase conversion used by the paper:

    - [Gamma_rms^2] sets how white current noise becomes the 1/f^2
      (thermal) phase-noise term;
    - the DC value [Gamma_dc] (the c0/2 Fourier term) sets how 1/f
      current noise up-converts into the 1/f^3 (flicker) term —
      a perfectly symmetric waveform has Gamma_dc = 0 and would show no
      flicker-induced phase noise at all. *)

type t
(** A sampled ISF over one period. *)

val of_samples : float array -> t
(** @raise Invalid_argument on fewer than 8 samples. *)

val of_function : ?samples:int -> (float -> float) -> t
(** [of_function f] samples [f] on [0, 2pi) (default 1024 points). *)

val ring_oscillator : stages:int -> ?asymmetry:float -> unit -> t
(** Hajimiri's ring-oscillator ISF approximation: one triangular lobe
    of height [pi/stages] and width [2pi/stages] per edge, the falling
    lobe scaled by [1 - asymmetry] (default asymmetry 0.1 — a realistic
    rise/fall mismatch; 0 gives a flicker-immune, perfectly symmetric
    ring).  The lobe height/width reproduce Hajimiri's
    [Gamma_rms^2 = 2 pi^2 / (3 N^3)].
    @raise Invalid_argument if [stages < 3] or asymmetry outside [0,1]. *)

val gamma_rms : t -> float
(** Root-mean-square of the ISF over one period. *)

val gamma_dc : t -> float
(** Mean of the ISF over one period (the c0/2 Fourier coefficient). *)

val fourier_coefficient : t -> int -> float
(** Magnitude of the m-th Fourier coefficient c_m
    (with [c_0 = 2 *. gamma_dc]). *)

val eval : t -> float -> float
(** Linear interpolation of the sampled ISF at any phase (radians). *)
