(** Hajimiri conversion: drain-current noise -> phase-noise
    coefficients (b_th, b_fl).

    For charge injected through an ISF Gamma into a node of maximum
    charge swing qmax, the excess phase is
    [phi(t) = (1/qmax) int Gamma(w0 tau) i(tau) dtau].  Averaging the
    periodic modulation:

    - white current noise of (two-sided) density S_i drives phi as an
      integrated white process of density [Gamma_rms^2 S_i / qmax^2],
      so [S_phi(f) = Gamma_rms^2 S_i / (4 pi^2 qmax^2 f^2)]
      giving [b_th = Gamma_rms^2 S_i / (4 pi^2 qmax^2)];
    - 1/f current noise [K_fl / f] is up-converted only by the DC
      Fourier term Gamma_dc, giving
      [b_fl = Gamma_dc^2 K_fl / (4 pi^2 qmax^2)].

    Contributions of the [stages] identical stages add (independent
    noise sources).  [excess] is a dimensionless fabric factor covering
    everything the clean-CMOS model omits (FPGA routing buffers, supply
    and substrate noise); it multiplies both coefficients and is fitted
    per technology in {!Technology}. *)

val of_ring :
  isf:Isf.t ->
  qmax:float ->
  stages:int ->
  thermal_current_psd:float ->
  flicker_current_coeff:float ->
  ?excess:float ->
  unit ->
  Ptrng_noise.Psd_model.phase
(** @raise Invalid_argument on non-positive [qmax], [stages] or
    [excess]. *)

val of_inverter_ring :
  isf:Isf.t -> inverter:Inverter.t -> stages:int -> ?excess:float -> unit ->
  Ptrng_noise.Psd_model.phase
(** Convenience wrapper reading the stage noise from an {!Inverter}. *)

val ring_frequency : stages:int -> stage_delay:float -> float
(** Oscillation frequency of a ring: [1 / (2 stages stage_delay)]. *)
