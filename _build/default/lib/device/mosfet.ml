type t = {
  gm : float;
  i_d : float;
  w : float;
  l : float;
  alpha : float;
  temp : float;
}

let create ~gm ~i_d ~w ~l ~alpha ?(temp = Constants.room_temperature) () =
  let check name v = if v <= 0.0 then invalid_arg ("Mosfet.create: non-positive " ^ name) in
  check "gm" gm;
  check "i_d" i_d;
  check "w" w;
  check "l" l;
  check "alpha" alpha;
  check "temp" temp;
  { gm; i_d; w; l; alpha; temp }

let thermal_psd m = 8.0 /. 3.0 *. Constants.boltzmann *. m.temp *. m.gm

let flicker_coefficient m =
  m.alpha *. Constants.boltzmann *. m.temp *. m.i_d *. m.i_d /. (m.w *. m.l *. m.l)

let flicker_psd m f =
  if f <= 0.0 then invalid_arg "Mosfet.flicker_psd: f <= 0";
  flicker_coefficient m /. f

let total_psd m f = thermal_psd m +. flicker_psd m f

let corner_frequency m = flicker_coefficient m /. thermal_psd m
