type node = {
  name : string;
  l : float;
  w : float;
  vdd : float;
  cl : float;
  i_d : float;
  gm : float;
  alpha : float;
  routing_delay : float;
  excess : float;
}

(* Crystallography constant fitted once against the paper's Cyclone III
   measurement and shared by all nodes; the W, L dependence carries the
   scaling. *)
let alpha_silicon = 7.8e-10

let asic name l vdd cl i_d gm =
  {
    name;
    l;
    w = 2.0 *. l;
    vdd;
    cl;
    i_d;
    gm;
    alpha = alpha_silicon;
    routing_delay = 0.0;
    excess = 1.0;
  }

let presets =
  [
    asic "asic-350nm" 350e-9 3.3 60e-15 300e-6 3.0e-3;
    asic "asic-180nm" 180e-9 1.8 30e-15 200e-6 2.5e-3;
    asic "asic-130nm" 130e-9 1.2 20e-15 150e-6 2.2e-3;
    asic "asic-90nm" 90e-9 1.0 12e-15 120e-6 2.0e-3;
    asic "asic-65nm" 65e-9 1.2 8e-15 100e-6 2.0e-3;
    asic "asic-45nm" 45e-9 1.0 5e-15 80e-6 1.8e-3;
    asic "asic-28nm" 28e-9 0.9 3e-15 60e-6 1.5e-3;
    (* 65 nm FPGA fabric: large routing load and delay bring a 7-stage
       ring down to the paper's 103 MHz; excess fitted by
       [fit_to_measurement] against the paper's coefficients. *)
    {
      name = "cyclone3-fpga";
      l = 65e-9;
      w = 130e-9;
      vdd = 1.2;
      cl = 20e-15;
      i_d = 100e-6;
      gm = 2.0e-3;
      alpha = alpha_silicon;
      routing_delay = 573e-12;
      excess = 1.3;
    };
  ]

let find name = List.find (fun n -> n.name = name) presets

let inverter ?temp n =
  let device =
    Mosfet.create ~gm:n.gm ~i_d:n.i_d ~w:n.w ~l:n.l ~alpha:n.alpha ?temp ()
  in
  Inverter.create ~nmos:device ~pmos:device ~cl:n.cl ~vdd:n.vdd
    ~routing_delay:n.routing_delay ()

type ring = {
  f0 : float;
  phase : Ptrng_noise.Psd_model.phase;
  stages : int;
}

let ring ?(stages = 7) ?(asymmetry = 0.2) ?temp n =
  let inv = inverter ?temp n in
  let isf = Isf.ring_oscillator ~stages ~asymmetry () in
  let phase = Phase_noise.of_inverter_ring ~isf ~inverter:inv ~stages ~excess:n.excess () in
  let f0 = Phase_noise.ring_frequency ~stages ~stage_delay:(Inverter.stage_delay inv) in
  { f0; phase; stages }

let fit_to_measurement ?stages ?asymmetry ~target n =
  let open Ptrng_noise.Psd_model in
  let base = ring ?stages ?asymmetry { n with excess = 1.0 } in
  if base.phase.b_th <= 0.0 || base.phase.b_fl <= 0.0 then
    invalid_arg "Technology.fit_to_measurement: degenerate base prediction";
  let excess = target.b_th /. base.phase.b_th in
  (* alpha scales the flicker coefficient linearly, so adjust it by the
     ratio of flicker/thermal ratios. *)
  let ratio_target = target.b_fl /. target.b_th in
  let ratio_base = base.phase.b_fl /. base.phase.b_th in
  { n with excess; alpha = n.alpha *. (ratio_target /. ratio_base) }

let independence_threshold_n phase ~f0 ~confidence =
  let open Ptrng_noise.Psd_model in
  if confidence <= 0.0 || confidence >= 1.0 then
    invalid_arg "Technology.independence_threshold_n: confidence outside (0,1)";
  if phase.b_fl <= 0.0 then max_int
  else begin
    (* r_N = 1 / (1 + N/k) with k = b_th f0 / (4 ln2 b_fl). *)
    let k = phase.b_th *. f0 /. (4.0 *. log 2.0 *. phase.b_fl) in
    let n_max = k *. ((1.0 /. confidence) -. 1.0) in
    int_of_float (Float.floor n_max)
  end
