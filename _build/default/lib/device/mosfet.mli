(** MOSFET drain-current noise model (paper Section III-A).

    The two dominant bulk-CMOS noise sources are modelled as a current
    source i_ds between drain and source, characterised by its PSD:

    - thermal (white, non-autocorrelated):
      [S_th = (8/3) k T gm]                      (paper, after Brederlow);
    - flicker (1/f, autocorrelated):
      [S_fl(f) = alpha k T I_D^2 / (W L^2 f)]    (paper, after Hung–Ko–Hu).

    PSDs follow the paper's (two-sided) convention so they can be
    combined directly with S_phi = b_fl/f^3 + b_th/f^2. *)

type t = {
  gm : float;       (** Transconductance, A/V. *)
  i_d : float;      (** Nominal drain current, A. *)
  w : float;        (** Channel width, m. *)
  l : float;        (** Channel length, m. *)
  alpha : float;    (** Flicker constant of the technology, m^3/J-ish
                        units folded so that [flicker_psd] is A^2/Hz;
                        fitted per process. *)
  temp : float;     (** Operating temperature, K. *)
}

val create :
  gm:float -> i_d:float -> w:float -> l:float -> alpha:float -> ?temp:float -> unit -> t
(** @raise Invalid_argument on non-positive parameters. *)

val thermal_psd : t -> float
(** White drain-noise density [(8/3) k T gm], A^2/Hz. *)

val flicker_coefficient : t -> float
(** K_fl such that [S_fl(f) = K_fl / f]:
    [alpha k T I_D^2 / (W L^2)], A^2. *)

val flicker_psd : t -> float -> float
(** [flicker_psd m f] = [flicker_coefficient m /. f].
    @raise Invalid_argument if [f <= 0]. *)

val total_psd : t -> float -> float
(** Thermal + flicker density at frequency [f] (paper eq. 1); the two
    parasitic phenomena are independent so their PSDs add. *)

val corner_frequency : t -> float
(** Frequency where flicker equals thermal noise. *)
