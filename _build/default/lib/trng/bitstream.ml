type t = { bits : bool array }

let of_bools bits = { bits = Array.copy bits }

let of_ints values =
  {
    bits =
      Array.map
        (function
          | 0 -> false
          | 1 -> true
          | v -> invalid_arg (Printf.sprintf "Bitstream.of_ints: %d is not a bit" v))
        values;
  }

let length t = Array.length t.bits
let get t i = t.bits.(i)
let to_bools t = Array.copy t.bits

let to_bytes t =
  let n = Array.length t.bits in
  let out = Bytes.make ((n + 7) / 8) '\000' in
  for i = 0 to n - 1 do
    if t.bits.(i) then begin
      let byte = i / 8 and bit = 7 - (i mod 8) in
      Bytes.set out byte (Char.chr (Char.code (Bytes.get out byte) lor (1 lsl bit)))
    end
  done;
  out

let ones t = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 t.bits

let bias t =
  let n = length t in
  if n = 0 then invalid_arg "Bitstream.bias: empty stream";
  (float_of_int (ones t) /. float_of_int n) -. 0.5

let sub t ~pos ~len = { bits = Array.sub t.bits pos len }

let concat ts = { bits = Array.concat (List.map (fun t -> t.bits) ts) }

let serial_correlation t =
  let n = length t in
  if n < 2 then invalid_arg "Bitstream.serial_correlation: need >= 2 bits";
  let v i = if t.bits.(i) then 1.0 else -1.0 in
  let mean = ref 0.0 in
  for i = 0 to n - 1 do
    mean := !mean +. v i
  done;
  let mean = !mean /. float_of_int n in
  let num = ref 0.0 and den = ref 0.0 in
  for i = 0 to n - 1 do
    let d = v i -. mean in
    den := !den +. (d *. d);
    if i < n - 1 then num := !num +. (d *. (v (i + 1) -. mean))
  done;
  if !den = 0.0 then invalid_arg "Bitstream.serial_correlation: constant stream";
  !num /. !den
