(** Non-invasive attack models on the entropy source.

    The frequency-injection attack (Markettos–Moore, paper ref. [3])
    locks the two rings to an injected tone; their relative jitter —
    the entropy source — collapses while each ring keeps oscillating,
    so frequency-counting health tests see nothing.  We model the locked
    pair by scaling the relative phase-noise coefficients. *)

val frequency_injection :
  lock_strength:float -> Ptrng_osc.Pair.t -> Ptrng_osc.Pair.t
(** [frequency_injection ~lock_strength pair] returns an attacked pair:
    relative b_th and b_fl scaled by [1 - lock_strength] and detuning
    collapsed (both rings pulled onto the injected tone).
    [lock_strength] in [0, 1): 0 = no attack, 0.99 = near-total lock.
    @raise Invalid_argument outside [0, 1). *)

val thermal_quench :
  factor:float -> Ptrng_osc.Pair.t -> Ptrng_osc.Pair.t
(** Scale only the thermal coefficient by [factor] (0 < factor <= 1) —
    the stealthiest scenario for total-jitter health tests: flicker
    keeps the measured long-run jitter looking healthy while the
    entropy-bearing thermal noise disappears. *)
