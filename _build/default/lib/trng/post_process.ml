let xor_decimate ~k stream =
  if k <= 0 then invalid_arg "Post_process.xor_decimate: k <= 0";
  let bits = Bitstream.to_bools stream in
  let n = Array.length bits / k in
  let out = Array.make n false in
  for i = 0 to n - 1 do
    let acc = ref false in
    for j = 0 to k - 1 do
      acc := !acc <> bits.((i * k) + j)
    done;
    out.(i) <- !acc
  done;
  Bitstream.of_bools out

let von_neumann stream =
  let bits = Bitstream.to_bools stream in
  let out = ref [] in
  let i = ref 0 in
  while !i + 1 < Array.length bits do
    (match (bits.(!i), bits.(!i + 1)) with
    | false, true -> out := false :: !out
    | true, false -> out := true :: !out
    | false, false | true, true -> ());
    i := !i + 2
  done;
  Bitstream.of_bools (Array.of_list (List.rev !out))

let expected_xor_bias ~bias ~k =
  if k <= 0 then invalid_arg "Post_process.expected_xor_bias: k <= 0";
  (2.0 ** float_of_int (k - 1)) *. (bias ** float_of_int k)
