type config = {
  rings : Ptrng_osc.Oscillator.config array;
  sampler_f0 : float;
  divisor : int;
}

let config ?relative ?flicker_generator ?(spread = 1e-3) ~f0 ~rings ~divisor () =
  if rings <= 0 || rings > 64 then invalid_arg "Multi_ring.config: rings outside [1,64]";
  if divisor <= 0 then invalid_arg "Multi_ring.config: divisor <= 0";
  if f0 <= 0.0 then invalid_arg "Multi_ring.config: f0 <= 0";
  let relative = Option.value relative ~default:Ptrng_osc.Pair.paper_relative in
  let open Ptrng_noise.Psd_model in
  let half = { b_th = relative.b_th /. 2.0; b_fl = relative.b_fl /. 2.0 } in
  {
    rings =
      Array.init rings (fun i ->
          (* Stagger the frequencies so no ring is harmonically locked
             to the sampler or to its neighbours. *)
          let detune = spread *. (1.0 +. float_of_int i) in
          Ptrng_osc.Oscillator.config ?flicker_generator
            ~f0:(f0 *. (1.0 +. detune))
            ~phase:half ());
    sampler_f0 = f0;
    divisor;
  }

let sample_ring rng cfg ring_cfg ~bits =
  let samples = bits + 2 in
  let n_ref = (samples * cfg.divisor) + 16 in
  (* The ring must cover the sampler's span plus detuning margin. *)
  let n_ring = n_ref + (n_ref / 16) + 16 in
  let ring_periods = Ptrng_osc.Oscillator.periods rng ring_cfg ~n:n_ring in
  let ring_edges = Ptrng_osc.Oscillator.edges_of_periods ring_periods in
  (* Ideal (noise-free) reference clock, as in the Sunar design. *)
  let ref_edges =
    Array.init (n_ref + 1) (fun i -> float_of_int i /. cfg.sampler_f0)
  in
  Sampler.sample ~osc1_edges:ring_edges ~osc2_edges:ref_edges ~divisor:cfg.divisor

let generate_single rng cfg ~ring ~bits =
  if bits <= 0 then invalid_arg "Multi_ring.generate_single: bits <= 0";
  if ring < 0 || ring >= Array.length cfg.rings then
    invalid_arg "Multi_ring.generate_single: ring index out of range";
  let raw = sample_ring (Ptrng_prng.Rng.split rng) cfg cfg.rings.(ring) ~bits in
  let take = min bits (Array.length raw) in
  Bitstream.of_bools (Array.sub raw 0 take)

let generate rng cfg ~bits =
  if bits <= 0 then invalid_arg "Multi_ring.generate: bits <= 0";
  let streams =
    Array.map (fun ring_cfg -> sample_ring (Ptrng_prng.Rng.split rng) cfg ring_cfg ~bits)
      cfg.rings
  in
  let len = Array.fold_left (fun acc s -> min acc (Array.length s)) bits streams in
  Bitstream.of_bools
    (Array.init len (fun i ->
         Array.fold_left (fun acc s -> acc <> s.(i)) false streams))
