(** Multi-ring TRNG (Sunar–Martin–Stinson, the paper's ref. [7]).

    Many free-running rings are sampled by one reference clock and
    XORed together.  The design argument is the piling-up lemma: if
    ring i alone yields a bit of bias e_i, the XOR has bias
    [2^{r-1} prod e_i] — exponentially small in the ring count even
    when each ring is individually poor.

    The argument silently assumes the rings are *independent* and each
    ring's successive samples are usable randomness; flicker-correlated
    phase (the paper's subject) weakens the second premise, which is
    observable here by comparing serial correlation before and after
    the XOR: bias collapses as promised, memory does not. *)

type config = {
  rings : Ptrng_osc.Oscillator.config array;
  sampler_f0 : float;  (** Reference (sampling) clock frequency. *)
  divisor : int;       (** Reference periods between samples. *)
}

val config :
  ?relative:Ptrng_noise.Psd_model.phase ->
  ?flicker_generator:[ `Spectral | `Kasdin | `Voss | `None ] ->
  ?spread:float ->
  f0:float ->
  rings:int ->
  divisor:int ->
  unit ->
  config
(** [config ~f0 ~rings ~divisor ()] builds [rings] oscillators around
    [f0], detuned from each other by multiples of [spread] (default
    1e-3, so ring frequencies do not lock to the sampler), each
    carrying the per-oscillator share of [relative] (default: the
    paper's coefficients).  The sampler runs at [f0].
    @raise Invalid_argument for non-positive sizes or [rings > 64]. *)

val generate : Ptrng_prng.Rng.t -> config -> bits:int -> Bitstream.t
(** XOR of all rings' sampled bits. *)

val generate_single : Ptrng_prng.Rng.t -> config -> ring:int -> bits:int -> Bitstream.t
(** One ring's sampled bits alone (for before/after comparisons). *)
