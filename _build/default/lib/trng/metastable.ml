type config = {
  sigma_setup : float;
  offset0 : float;
  drift_walk : float;
  flicker : Ptrng_noise.Psd_model.frac_freq;
  sample_rate : float;
}

let config ?(offset0 = 0.0) ?(drift_walk = 0.0) ?(flicker_hm1 = 0.0)
    ?(sample_rate = 1e6) ~sigma_setup () =
  if sigma_setup <= 0.0 then invalid_arg "Metastable.config: sigma_setup <= 0";
  if drift_walk < 0.0 then invalid_arg "Metastable.config: negative drift_walk";
  if flicker_hm1 < 0.0 then invalid_arg "Metastable.config: negative flicker_hm1";
  if sample_rate <= 0.0 then invalid_arg "Metastable.config: sample_rate <= 0";
  {
    sigma_setup;
    offset0;
    drift_walk;
    flicker = { Ptrng_noise.Psd_model.h0 = 0.0; hm1 = flicker_hm1; hm2 = 0.0 };
    sample_rate;
  }

let bit_probability cfg ~offset =
  Ptrng_stats.Special.normal_cdf (offset /. cfg.sigma_setup)

let generate rng cfg ~bits =
  if bits <= 0 then invalid_arg "Metastable.generate: bits <= 0";
  let g = Ptrng_prng.Gaussian.create rng in
  let flicker =
    if cfg.flicker.Ptrng_noise.Psd_model.hm1 > 0.0 then begin
      let n = Ptrng_signal.Fft.next_pow2 bits in
      Some
        (Ptrng_noise.Spectral_synth.generate_frac_freq rng ~model:cfg.flicker
           ~fs:cfg.sample_rate n)
    end
    else None
  in
  let offset = ref cfg.offset0 in
  Bitstream.of_bools
    (Array.init bits (fun i ->
         if cfg.drift_walk > 0.0 then
           offset := !offset +. (cfg.drift_walk *. Ptrng_prng.Gaussian.draw g);
         let wander = match flicker with Some f -> f.(i) | None -> 0.0 in
         let p = bit_probability cfg ~offset:(!offset +. wander) in
         Ptrng_prng.Rng.float rng < p))

let expected_entropy cfg =
  let p = bit_probability cfg ~offset:cfg.offset0 in
  if p <= 0.0 || p >= 1.0 then 0.0
  else begin
    let q = 1.0 -. p in
    -.((p *. log p) +. (q *. log q)) /. log 2.0
  end
