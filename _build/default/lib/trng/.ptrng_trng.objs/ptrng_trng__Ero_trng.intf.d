lib/trng/ero_trng.mli: Bitstream Ptrng_osc Ptrng_prng
