lib/trng/sampler.mli:
