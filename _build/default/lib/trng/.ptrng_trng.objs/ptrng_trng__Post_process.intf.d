lib/trng/post_process.mli: Bitstream
