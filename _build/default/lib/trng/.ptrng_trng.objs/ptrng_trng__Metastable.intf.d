lib/trng/metastable.mli: Bitstream Ptrng_noise Ptrng_prng
