lib/trng/multi_ring.ml: Array Bitstream Option Ptrng_noise Ptrng_osc Ptrng_prng Sampler
