lib/trng/coherent.mli: Bitstream Ptrng_noise Ptrng_osc Ptrng_prng
