lib/trng/post_process.ml: Array Bitstream List
