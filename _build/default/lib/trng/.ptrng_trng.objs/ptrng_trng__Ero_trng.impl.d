lib/trng/ero_trng.ml: Array Bitstream Post_process Ptrng_osc Sampler
