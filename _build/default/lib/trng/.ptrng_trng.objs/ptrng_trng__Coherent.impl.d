lib/trng/coherent.ml: Bitstream Float Option Post_process Ptrng_noise Ptrng_osc Ptrng_prng Sampler
