lib/trng/metastable.ml: Array Bitstream Ptrng_noise Ptrng_prng Ptrng_signal Ptrng_stats
