lib/trng/sampler.ml: Array List
