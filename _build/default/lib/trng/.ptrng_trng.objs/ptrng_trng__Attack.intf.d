lib/trng/attack.mli: Ptrng_osc
