lib/trng/multi_ring.mli: Bitstream Ptrng_noise Ptrng_osc Ptrng_prng
