lib/trng/bitstream.ml: Array Bytes Char List Printf
