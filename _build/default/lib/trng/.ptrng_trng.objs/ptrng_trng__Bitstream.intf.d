lib/trng/bitstream.mli:
