lib/trng/attack.ml: Ptrng_noise Ptrng_osc
