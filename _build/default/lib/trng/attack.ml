let scale_config factor_th factor_fl (c : Ptrng_osc.Oscillator.config) ~f0 =
  let open Ptrng_noise.Psd_model in
  Ptrng_osc.Oscillator.config
    ~flicker_generator:c.flicker_generator
    ~rw_hm2:c.rw_hm2
    ~f0
    ~phase:{ b_th = c.phase.b_th *. factor_th; b_fl = c.phase.b_fl *. factor_fl }
    ()

let frequency_injection ~lock_strength (pair : Ptrng_osc.Pair.t) =
  if lock_strength < 0.0 || lock_strength >= 1.0 then
    invalid_arg "Attack.frequency_injection: lock_strength outside [0,1)";
  let keep = 1.0 -. lock_strength in
  let f_locked =
    (pair.osc1.Ptrng_osc.Oscillator.f0 +. pair.osc2.Ptrng_osc.Oscillator.f0) /. 2.0
  in
  {
    Ptrng_osc.Pair.osc1 = scale_config keep keep pair.osc1 ~f0:f_locked;
    osc2 = scale_config keep keep pair.osc2 ~f0:f_locked;
  }

let thermal_quench ~factor (pair : Ptrng_osc.Pair.t) =
  if factor <= 0.0 || factor > 1.0 then
    invalid_arg "Attack.thermal_quench: factor outside (0,1]";
  {
    Ptrng_osc.Pair.osc1 =
      scale_config factor 1.0 pair.osc1 ~f0:pair.osc1.Ptrng_osc.Oscillator.f0;
    osc2 = scale_config factor 1.0 pair.osc2 ~f0:pair.osc2.Ptrng_osc.Oscillator.f0;
  }
