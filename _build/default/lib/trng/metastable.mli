(** Metastability-based TRNG model (Ben-Romdhane–Graba–Danger, the
    paper's ref. [9]).

    A flip-flop is clocked while its data input transitions; the
    resolution outcome depends on the data-to-clock offset delta within
    the metastability window.  With setup-time noise of std
    [sigma_setup], the bit is 1 with probability
    [Phi(delta / sigma_setup)] — maximal entropy at delta = 0, decaying
    as the offset drifts.

    The offset itself is not constant in silicon: it random-walks with
    thermal noise and wanders with flicker, so an initially calibrated
    generator degrades — the same thermal/flicker split as everywhere
    else in this repository decides how fast, and whether the drift is
    a random walk (recalibration-friendly) or long-memory flicker. *)

type config = {
  sigma_setup : float;    (** Metastability noise window, s. *)
  offset0 : float;        (** Initial data-to-clock offset, s. *)
  drift_walk : float;     (** Per-sample random-walk std of the offset, s. *)
  flicker : Ptrng_noise.Psd_model.frac_freq;
      (** Optional 1/f wandering of the offset (h0 unused). *)
  sample_rate : float;    (** Samples per second (for flicker scaling). *)
}

val config :
  ?offset0:float ->
  ?drift_walk:float ->
  ?flicker_hm1:float ->
  ?sample_rate:float ->
  sigma_setup:float ->
  unit ->
  config
(** Defaults: zero initial offset, no drift, no flicker, 1 MHz.
    @raise Invalid_argument if [sigma_setup <= 0]. *)

val bit_probability : config -> offset:float -> float
(** P(bit = 1) at a given instantaneous offset. *)

val generate : Ptrng_prng.Rng.t -> config -> bits:int -> Bitstream.t
(** Simulate the offset trajectory and the resolved bits. *)

val expected_entropy : config -> float
(** Shannon entropy per bit at the *initial* offset — what a one-shot
    calibration would certify. *)
