(** Coherent-sampling TRNG (Bernard–Fischer–Valtchanov, the paper's
    ref. [5], modelled on free-running rings instead of PLLs).

    The two clock frequencies are locked to a rational ratio
    [f1/f2 = km/kd] (coprime).  Sampling Osc1 at every Osc2 edge then
    sweeps the sampling point deterministically through [kd]
    equidistant positions of Osc1's period (step [T1/kd]); without
    jitter the [kd]-sample pattern repeats forever.  Jitter flips the
    samples taken near the waveform edges — the "critical samples" —
    and XOR-ing each group of [kd] samples concentrates exactly that
    randomness into one output bit per pattern period.

    The quality knob is the ratio [sigma / (T1/kd)] of jitter to the
    sweep step: the paper's thermal-vs-flicker split decides how much
    of that sigma is trustworthy, just as for the eRO-TRNG. *)

type config = {
  pair : Ptrng_osc.Pair.t;  (** Rings locked to the rational ratio. *)
  km : int;                 (** Osc1 periods per pattern. *)
  kd : int;                 (** Osc2 periods per pattern (samples/bit). *)
}

val config :
  ?relative:Ptrng_noise.Psd_model.phase ->
  ?flicker_generator:[ `Spectral | `Kasdin | `Voss | `None ] ->
  f0:float ->
  km:int ->
  kd:int ->
  unit ->
  config
(** Build a coherent pair: Osc2 at [f0], Osc1 at [f0 * km / kd], both
    carrying half of [relative] (default: the paper's coefficients).
    @raise Invalid_argument unless [0 < km], [0 < kd] and
    [gcd km kd = 1]. *)

val critical_fraction : config -> sigma_period:float -> float
(** Fraction of the [kd] samples whose distance to a waveform edge is
    below one jitter sigma accumulated over a pattern — a quick quality
    heuristic (should be >= 1/kd for useful output). *)

val generate : Ptrng_prng.Rng.t -> config -> bits:int -> Bitstream.t
(** Simulate the generator and return [bits] output bits (one per
    [kd]-sample pattern). @raise Invalid_argument if [bits <= 0]. *)
