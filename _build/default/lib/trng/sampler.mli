(** The digitizer of the eRO-TRNG (paper Fig. 4): a D flip-flop
    clocked by (divided) Osc2 latching the instantaneous state of Osc1.

    Osc1 is modelled as a 50% duty square wave: between consecutive
    rising edges [e_i, e_{i+1})] its state is high on the first half of
    the period. *)

val state_at : edges:float array -> float -> bool
(** [state_at ~edges t] is Osc1's level at time [t] (edges must be the
    increasing rising-edge instants covering [t]).
    @raise Invalid_argument if [t] lies outside the edge span. *)

val sample :
  osc1_edges:float array -> osc2_edges:float array -> divisor:int -> bool array
(** [sample ~osc1_edges ~osc2_edges ~divisor] latches Osc1 at every
    [divisor]-th Osc2 rising edge (skipping edge 0, which is the common
    time origin), producing as many bits as fit in the streams.
    @raise Invalid_argument if [divisor <= 0]. *)
