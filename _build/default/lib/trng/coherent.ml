type config = {
  pair : Ptrng_osc.Pair.t;
  km : int;
  kd : int;
}

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let config ?relative ?flicker_generator ~f0 ~km ~kd () =
  if km <= 0 || kd <= 0 then invalid_arg "Coherent.config: non-positive ratio";
  if gcd km kd <> 1 then invalid_arg "Coherent.config: km and kd must be coprime";
  let relative = Option.value relative ~default:Ptrng_osc.Pair.paper_relative in
  let open Ptrng_noise.Psd_model in
  let half = { b_th = relative.b_th /. 2.0; b_fl = relative.b_fl /. 2.0 } in
  let f1 = f0 *. float_of_int km /. float_of_int kd in
  {
    pair =
      {
        Ptrng_osc.Pair.osc1 =
          Ptrng_osc.Oscillator.config ?flicker_generator ~f0:f1 ~phase:half ();
        osc2 = Ptrng_osc.Oscillator.config ?flicker_generator ~f0 ~phase:half ();
      };
    km;
    kd;
  }

let critical_fraction cfg ~sigma_period =
  if sigma_period < 0.0 then invalid_arg "Coherent.critical_fraction: negative sigma";
  let f1 = cfg.pair.Ptrng_osc.Pair.osc1.Ptrng_osc.Oscillator.f0 in
  let t1 = 1.0 /. f1 in
  (* Jitter accumulated over one pattern (kd sampling periods). *)
  let sigma_pattern = sigma_period *. sqrt (float_of_int cfg.kd) in
  (* The kd sample phases are spaced t1/kd apart; with two waveform
     edges per period, the positions within +-sigma of an edge number
     4 sigma / (t1/kd), i.e. a fraction 4 sigma / t1 of all samples. *)
  Float.min 1.0 (4.0 *. sigma_pattern /. t1)

let generate rng cfg ~bits =
  if bits <= 0 then invalid_arg "Coherent.generate: bits <= 0";
  let samples = (bits + 2) * cfg.kd in
  let n2 = samples + 16 in
  (* Osc1 must cover the same time span: kd osc2 periods = km osc1
     periods per pattern, plus margin. *)
  let n1 = ((bits + 2) * cfg.km) + (cfg.km * 2) + 16 in
  let rng1 = Ptrng_prng.Rng.split rng in
  let rng2 = Ptrng_prng.Rng.split rng in
  let p1 = Ptrng_osc.Oscillator.periods rng1 cfg.pair.Ptrng_osc.Pair.osc1 ~n:n1 in
  let p2 = Ptrng_osc.Oscillator.periods rng2 cfg.pair.Ptrng_osc.Pair.osc2 ~n:n2 in
  (* Start Osc1 half a sweep step early so the kd sample phases sit
     midway between the grid points, never exactly on a waveform edge
     (the zero-jitter limit is ill-posed otherwise). *)
  let f1 = cfg.pair.Ptrng_osc.Pair.osc1.Ptrng_osc.Oscillator.f0 in
  let t0 = -1.0 /. (2.0 *. float_of_int cfg.kd *. f1) in
  let osc1_edges = Ptrng_osc.Oscillator.edges_of_periods ~t0 p1 in
  let osc2_edges = Ptrng_osc.Oscillator.edges_of_periods p2 in
  let raw = Sampler.sample ~osc1_edges ~osc2_edges ~divisor:1 in
  let stream = Bitstream.of_bools raw in
  let parity = Post_process.xor_decimate ~k:cfg.kd stream in
  if Bitstream.length parity <= bits then parity
  else Bitstream.sub parity ~pos:0 ~len:bits
