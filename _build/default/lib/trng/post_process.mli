(** Algebraic post-processing blocks (the third box of the AIS31
    decomposition, paper Fig. 1). *)

val xor_decimate : k:int -> Bitstream.t -> Bitstream.t
(** XOR each group of [k] consecutive bits into one output bit (parity
    filter): multiplies throughput by 1/k and, for independent bits of
    bias e, reduces the bias to [2^{k-1} e^k].
    @raise Invalid_argument if [k <= 0]. *)

val von_neumann : Bitstream.t -> Bitstream.t
(** Von Neumann corrector: maps bit pairs 01 -> 0, 10 -> 1, discards
    00/11.  Unbiased output for independent (possibly biased) input;
    dependent input breaks the guarantee — another face of the paper's
    warning. *)

val expected_xor_bias : bias:float -> k:int -> float
(** Piling-up lemma: output bias of the parity filter for iid input. *)
