(** The elementary ring-oscillator TRNG (paper Fig. 4): two
    free-running rings, a D flip-flop sampling Osc1 at every
    [divisor]-th Osc2 edge, and optional algebraic post-processing. *)

type config = {
  pair : Ptrng_osc.Pair.t;
  divisor : int;             (** Accumulation length K between samples. *)
  xor_factor : int;          (** Parity-filter factor (1 = none). *)
}

val config :
  ?divisor:int -> ?xor_factor:int -> Ptrng_osc.Pair.t -> config
(** Defaults: divisor 1000, no post-processing.
    @raise Invalid_argument on non-positive parameters. *)

val paper_trng : unit -> config
(** eRO-TRNG built on {!Ptrng_osc.Pair.paper_pair}. *)

val generate : Ptrng_prng.Rng.t -> config -> bits:int -> Bitstream.t
(** Simulate the generator until [bits] raw bits are produced, then
    apply the parity filter (so the output holds [bits / xor_factor]
    bits). @raise Invalid_argument if [bits <= 0]. *)

val generate_raw : Ptrng_prng.Rng.t -> config -> bits:int -> Bitstream.t
(** The raw binary sequence before post-processing. *)
