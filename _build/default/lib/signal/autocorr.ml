let autocovariance ?max_lag x =
  let n = Array.length x in
  if n = 0 then invalid_arg "Autocorr.autocovariance: empty input";
  let max_lag = match max_lag with Some l -> l | None -> n - 1 in
  if max_lag < 0 || max_lag >= n then invalid_arg "Autocorr.autocovariance: bad max_lag";
  let mean = Array.fold_left ( +. ) 0.0 x /. float_of_int n in
  (* Zero-padded FFT: |X|^2 back-transformed gives circular correlation;
     padding to >= 2n makes it the linear one. *)
  let m = Fft.next_pow2 (2 * n) in
  let re = Array.make m 0.0 and im = Array.make m 0.0 in
  for i = 0 to n - 1 do
    re.(i) <- x.(i) -. mean
  done;
  Fft.forward_pow2 ~re ~im;
  for k = 0 to m - 1 do
    re.(k) <- (re.(k) *. re.(k)) +. (im.(k) *. im.(k));
    im.(k) <- 0.0
  done;
  Fft.inverse_pow2 ~re ~im;
  Array.init (max_lag + 1) (fun k -> re.(k) /. float_of_int n)

let acf ?max_lag x =
  let c = autocovariance ?max_lag x in
  if c.(0) <= 0.0 then invalid_arg "Autocorr.acf: zero-variance series";
  Array.map (fun v -> v /. c.(0)) c

let confidence_bound ~n = 1.96 /. sqrt (float_of_int n)
