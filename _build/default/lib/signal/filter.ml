let fir_direct ~h x =
  let n = Array.length x and m = Array.length h in
  let y = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let acc = ref 0.0 in
    let kmax = min (m - 1) i in
    for k = 0 to kmax do
      acc := !acc +. (h.(k) *. x.(i - k))
    done;
    y.(i) <- !acc
  done;
  y

let fir_fft ~h x =
  let n = Array.length x in
  if n = 0 || Array.length h = 0 then Array.make n 0.0
  else begin
    let full = Fft.convolve_real h x in
    Array.sub full 0 n
  end

let iir ~b ~a x =
  let na = Array.length a in
  if na = 0 || a.(0) = 0.0 then invalid_arg "Filter.iir: a.(0) must be non-zero";
  let nb = Array.length b in
  let n = Array.length x in
  let y = Array.make n 0.0 in
  let a0 = a.(0) in
  for i = 0 to n - 1 do
    let acc = ref 0.0 in
    for k = 0 to min (nb - 1) i do
      acc := !acc +. (b.(k) *. x.(i - k))
    done;
    for k = 1 to min (na - 1) i do
      acc := !acc -. (a.(k) *. y.(i - k))
    done;
    y.(i) <- !acc /. a0
  done;
  y

type biquad = { b0 : float; b1 : float; b2 : float; a1 : float; a2 : float }

let biquad_lowpass ~fc ~fs ~q =
  if fc <= 0.0 || fc >= fs /. 2.0 then invalid_arg "Filter.biquad_lowpass: fc outside (0, fs/2)";
  if q <= 0.0 then invalid_arg "Filter.biquad_lowpass: q <= 0";
  let w0 = 2.0 *. Float.pi *. fc /. fs in
  let alpha = sin w0 /. (2.0 *. q) in
  let cw = cos w0 in
  let a0 = 1.0 +. alpha in
  {
    b0 = (1.0 -. cw) /. 2.0 /. a0;
    b1 = (1.0 -. cw) /. a0;
    b2 = (1.0 -. cw) /. 2.0 /. a0;
    a1 = -2.0 *. cw /. a0;
    a2 = (1.0 -. alpha) /. a0;
  }

let biquad_apply bq x =
  iir ~b:[| bq.b0; bq.b1; bq.b2 |] ~a:[| 1.0; bq.a1; bq.a2 |] x

let remove_mean x =
  let n = Array.length x in
  if n = 0 then [||]
  else begin
    let mean = Array.fold_left ( +. ) 0.0 x /. float_of_int n in
    Array.map (fun v -> v -. mean) x
  end

let detrend_linear x =
  let n = Array.length x in
  if n < 2 then remove_mean x
  else begin
    (* OLS line through (i, x_i) using the closed form for equally
       spaced abscissas. *)
    let fn = float_of_int n in
    let sum_x = ref 0.0 and sum_ix = ref 0.0 in
    for i = 0 to n - 1 do
      sum_x := !sum_x +. x.(i);
      sum_ix := !sum_ix +. (float_of_int i *. x.(i))
    done;
    let mean_i = (fn -. 1.0) /. 2.0 in
    let mean_x = !sum_x /. fn in
    let var_i = (fn *. fn -. 1.0) /. 12.0 in
    let cov = (!sum_ix /. fn) -. (mean_i *. mean_x) in
    let slope = cov /. var_i in
    let intercept = mean_x -. (slope *. mean_i) in
    Array.init n (fun i -> x.(i) -. intercept -. (slope *. float_of_int i))
  end
