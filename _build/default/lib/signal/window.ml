type kind = Rectangular | Hann | Hamming | Blackman | Blackman_harris | Flattop

let name = function
  | Rectangular -> "rectangular"
  | Hann -> "hann"
  | Hamming -> "hamming"
  | Blackman -> "blackman"
  | Blackman_harris -> "blackman-harris"
  | Flattop -> "flattop"

(* Cosine-sum windows in periodic form: w(j) = sum_k a_k cos(2 pi k j / n). *)
let cosine_sum coeffs n =
  Array.init n (fun j ->
      let theta = 2.0 *. Float.pi *. float_of_int j /. float_of_int n in
      let acc = ref 0.0 in
      Array.iteri (fun k a -> acc := !acc +. (a *. cos (theta *. float_of_int k))) coeffs;
      !acc)

let make kind n =
  if n <= 0 then invalid_arg "Window.make: n <= 0";
  match kind with
  | Rectangular -> Array.make n 1.0
  | Hann -> cosine_sum [| 0.5; -0.5 |] n
  | Hamming -> cosine_sum [| 0.54; -0.46 |] n
  | Blackman -> cosine_sum [| 0.42; -0.5; 0.08 |] n
  | Blackman_harris -> cosine_sum [| 0.35875; -0.48829; 0.14128; -0.01168 |] n
  | Flattop -> cosine_sum [| 0.21557895; -0.41663158; 0.277263158; -0.083578947; 0.006947368 |] n

let coherent_gain w =
  let n = Array.length w in
  Array.fold_left ( +. ) 0.0 w /. float_of_int n

let sum_sq w = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 w

let enbw_bins w =
  let s1 = Array.fold_left ( +. ) 0.0 w in
  float_of_int (Array.length w) *. sum_sq w /. (s1 *. s1)
