type spectrum = {
  freqs : float array;
  psd : float array;
  fs : float;
  segments : int;
}

(* One windowed, mean-removed segment accumulated into [acc].
   Density scaling: 2 |X_k|^2 / (fs * S2), halved at DC and Nyquist. *)
let accumulate_segment ~window ~fs x offset seg_len acc =
  let re = Array.make seg_len 0.0 and im = Array.make seg_len 0.0 in
  let mean = ref 0.0 in
  for j = 0 to seg_len - 1 do
    mean := !mean +. x.(offset + j)
  done;
  let mean = !mean /. float_of_int seg_len in
  for j = 0 to seg_len - 1 do
    re.(j) <- (x.(offset + j) -. mean) *. window.(j)
  done;
  let fr, fi = Fft.dft ~re ~im in
  let s2 = Window.sum_sq window in
  let scale = 2.0 /. (fs *. s2) in
  let nbins = Array.length acc in
  for k = 0 to nbins - 1 do
    let p = (fr.(k) *. fr.(k)) +. (fi.(k) *. fi.(k)) in
    let full = if k = 0 || (seg_len land 1 = 0 && k = nbins - 1) then 0.5 else 1.0 in
    acc.(k) <- acc.(k) +. (scale *. full *. p)
  done

let spectrum_of_acc ~fs ~seg_len ~segments acc =
  let nbins = Array.length acc in
  let freqs = Array.init nbins (fun k -> float_of_int k *. fs /. float_of_int seg_len) in
  let psd = Array.map (fun v -> v /. float_of_int segments) acc in
  { freqs; psd; fs; segments }

let periodogram ?(window = Window.Hann) ~fs x =
  let n = Array.length x in
  if n = 0 then invalid_arg "Psd.periodogram: empty input";
  if fs <= 0.0 then invalid_arg "Psd.periodogram: fs <= 0";
  let w = Window.make window n in
  let nbins = (n / 2) + 1 in
  let acc = Array.make nbins 0.0 in
  accumulate_segment ~window:w ~fs x 0 n acc;
  spectrum_of_acc ~fs ~seg_len:n ~segments:1 acc

let welch ?(window = Window.Hann) ?(overlap = 0.5) ~seg_len ~fs x =
  let n = Array.length x in
  if seg_len <= 0 || seg_len > n then invalid_arg "Psd.welch: bad seg_len";
  if overlap < 0.0 || overlap > 0.9 then invalid_arg "Psd.welch: overlap outside [0,0.9]";
  if fs <= 0.0 then invalid_arg "Psd.welch: fs <= 0";
  let w = Window.make window seg_len in
  let hop = max 1 (int_of_float (float_of_int seg_len *. (1.0 -. overlap))) in
  let nbins = (seg_len / 2) + 1 in
  let acc = Array.make nbins 0.0 in
  let segments = ref 0 in
  let offset = ref 0 in
  while !offset + seg_len <= n do
    accumulate_segment ~window:w ~fs x !offset seg_len acc;
    incr segments;
    offset := !offset + hop
  done;
  spectrum_of_acc ~fs ~seg_len ~segments:!segments acc

let band_mean s ~f_lo ~f_hi =
  let acc = ref 0.0 and count = ref 0 in
  Array.iteri
    (fun k f ->
      if f >= f_lo && f <= f_hi then begin
        acc := !acc +. s.psd.(k);
        incr count
      end)
    s.freqs;
  if !count = 0 then invalid_arg "Psd.band_mean: empty band";
  !acc /. float_of_int !count

let total_power s =
  let n = Array.length s.freqs in
  let acc = ref 0.0 in
  for k = 0 to n - 2 do
    let df = s.freqs.(k + 1) -. s.freqs.(k) in
    acc := !acc +. (0.5 *. (s.psd.(k) +. s.psd.(k + 1)) *. df)
  done;
  !acc
