(** Sample autocorrelation, computed via FFT in O(n log n).

    The normalised ACF is the primary empirical probe for the paper's
    central question: independent jitter realizations must show an ACF
    indistinguishable from zero at all non-zero lags, while flicker
    noise produces slowly decaying positive correlations. *)

val autocovariance : ?max_lag:int -> float array -> float array
(** [autocovariance ?max_lag x] returns biased sample autocovariances
    c_0 .. c_max_lag (mean removed, divided by n).  [max_lag] defaults
    to [n-1]. @raise Invalid_argument on empty input or bad lag. *)

val acf : ?max_lag:int -> float array -> float array
(** Normalised autocorrelation r_k = c_k / c_0 (so [r_0 = 1]).
    @raise Invalid_argument if the series has zero variance. *)

val confidence_bound : n:int -> float
(** Two-sided 95% bound (+- 1.96/sqrt n) under the white-noise null. *)
