lib/signal/psd.mli: Window
