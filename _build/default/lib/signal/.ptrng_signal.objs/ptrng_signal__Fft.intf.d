lib/signal/fft.mli:
