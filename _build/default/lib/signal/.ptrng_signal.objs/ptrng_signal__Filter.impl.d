lib/signal/filter.ml: Array Fft Float
