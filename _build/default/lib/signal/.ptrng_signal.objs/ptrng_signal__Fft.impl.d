lib/signal/fft.ml: Array Float
