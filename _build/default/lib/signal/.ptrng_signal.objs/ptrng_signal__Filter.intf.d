lib/signal/filter.mli:
