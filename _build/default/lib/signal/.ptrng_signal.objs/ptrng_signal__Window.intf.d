lib/signal/window.mli:
