lib/signal/autocorr.mli:
