lib/signal/psd.ml: Array Fft Window
