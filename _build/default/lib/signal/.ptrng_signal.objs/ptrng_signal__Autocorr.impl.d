lib/signal/autocorr.ml: Array Fft
