(** Fast Fourier transforms on split real/imaginary float arrays.

    Power-of-two lengths use an in-place iterative radix-2
    Cooley–Tukey; arbitrary lengths go through Bluestein's chirp-z
    algorithm.  Forward transforms are unscaled
    (X_k = sum_j x_j e^{-2 pi i jk/n}); inverse transforms divide by n,
    so [inverse (forward x) = x]. *)

val is_pow2 : int -> bool
(** [is_pow2 n] is true iff [n] is a positive power of two. *)

val next_pow2 : int -> int
(** Smallest power of two >= [n] (with [next_pow2 0 = 1]). *)

val forward_pow2 : re:float array -> im:float array -> unit
(** In-place forward FFT.  @raise Invalid_argument if the arrays differ
    in length or the length is not a power of two. *)

val inverse_pow2 : re:float array -> im:float array -> unit
(** In-place inverse FFT (scaled by 1/n).  Same preconditions as
    {!forward_pow2}. *)

val dft : re:float array -> im:float array -> float array * float array
(** [dft ~re ~im] is the forward transform for any length, returning
    fresh arrays (Bluestein when the length is not a power of two). *)

val idft : re:float array -> im:float array -> float array * float array
(** Inverse counterpart of {!dft} (scaled by 1/n). *)

val rfft : float array -> float array * float array
(** [rfft x] is the forward transform of a real signal of any length,
    returned as full-length (re, im) arrays. *)

val convolve_real : float array -> float array -> float array
(** [convolve_real a b] is the full linear convolution (length
    [|a|+|b|-1]) computed via FFT. *)
