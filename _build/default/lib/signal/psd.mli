(** One-sided power spectral density estimation.

    Estimates are densities in units of [x^2/Hz], normalised so that the
    integral over frequency equals the signal variance (Parseval); this
    is the convention needed to read the phase-noise coefficients b_th
    and b_fl directly off the estimated spectrum. *)

type spectrum = {
  freqs : float array;  (** Frequency grid in Hz, [0 .. fs/2]. *)
  psd : float array;    (** One-sided density estimate, x^2/Hz. *)
  fs : float;           (** Sampling frequency used. *)
  segments : int;       (** Number of averaged segments. *)
}

val periodogram : ?window:Window.kind -> fs:float -> float array -> spectrum
(** Single-segment windowed periodogram.  Default window: [Hann].
    @raise Invalid_argument on empty input or [fs <= 0]. *)

val welch :
  ?window:Window.kind ->
  ?overlap:float ->
  seg_len:int ->
  fs:float ->
  float array ->
  spectrum
(** Welch's averaged periodogram with fractional segment [overlap]
    (default 0.5).  Segments are detrended by mean removal.
    @raise Invalid_argument if [seg_len] exceeds the data length, is
    not positive, or [overlap] is outside [0, 0.9]. *)

val band_mean : spectrum -> f_lo:float -> f_hi:float -> float
(** Mean density over a frequency band — a robust level estimate for
    flat (white) regions. @raise Invalid_argument if the band contains
    no estimated frequency. *)

val total_power : spectrum -> float
(** Trapezoidal integral of the density over the estimated band;
    approximately the signal variance. *)
