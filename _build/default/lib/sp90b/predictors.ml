let z99 = 2.5758293035489004

(* --- shared scoring ------------------------------------------------ *)

(* Root near 1 of 1 - x + q p^r x^{r+1} = 0 by fixed-point iteration. *)
let run_root ~p ~q ~r =
  let x = ref 1.0 in
  for _ = 1 to 60 do
    x := 1.0 +. (q *. (p ** float_of_int r) *. (!x ** float_of_int (r + 1)))
  done;
  !x

(* P(longest success run < r in n trials) for success probability p. *)
let prob_no_run ~n ~p ~r =
  if p >= 1.0 then 0.0
  else if p <= 0.0 then 1.0
  else begin
    let q = 1.0 -. p in
    let x = run_root ~p ~q ~r in
    let logp =
      log ((1.0 -. (p *. x)) /. ((float_of_int (r + 1) -. (float_of_int r *. x)) *. q))
      -. (float_of_int (n + 1) *. log x)
    in
    Float.max 0.0 (Float.min 1.0 (exp logp))
  end

let local_bound ~n ~longest_run =
  if n <= 0 then invalid_arg "Predictors.local_bound: n <= 0";
  let r = longest_run + 1 in
  (* 99% upper confidence bound: the largest p under which observing no
     run of length r still has >= 1% probability.  P(no run >= r | p)
     decreases in p, so bisect to P = 0.01. *)
  let alpha = 0.01 in
  let lo = ref 1e-9 and hi = ref (1.0 -. 1e-9) in
  for _ = 1 to 80 do
    let mid = 0.5 *. (!lo +. !hi) in
    if prob_no_run ~n ~p:mid ~r > alpha then lo := mid else hi := mid
  done;
  0.5 *. (!lo +. !hi)

let score ~name ~correct ~n ~longest_run =
  if n <= 0 then invalid_arg "Predictors: no predictions made";
  let fn = float_of_int n in
  let p_global = float_of_int correct /. fn in
  let p_global_u =
    if correct = 0 then 1.0 -. (0.01 ** (1.0 /. fn))
    else
      Float.min 1.0
        (p_global +. (z99 *. sqrt (p_global *. (1.0 -. p_global) /. (fn -. 1.0))))
  in
  let p_local = local_bound ~n ~longest_run in
  let p_max = Float.max 0.5 (Float.max p_global_u p_local) in
  {
    Estimators.name;
    p_max;
    min_entropy = Float.max 0.0 (Float.min 1.0 (-.(log p_max /. log 2.0)));
  }

(* Fold a prediction stream: [predict i] returns the ensemble's guess
   for bits.(i) (or None early on); the caller updates its own state
   via [update i] afterwards. *)
let run_predictor ~name ~start bits predict update =
  let n = Array.length bits in
  let correct = ref 0 and made = ref 0 in
  let run = ref 0 and longest = ref 0 in
  for i = start to n - 1 do
    (match predict i with
    | Some guess ->
      incr made;
      if guess = bits.(i) then begin
        incr correct;
        incr run;
        if !run > !longest then longest := !run
      end
      else run := 0
    | None -> ());
    update i
  done;
  score ~name ~correct:!correct ~n:!made ~longest_run:!longest

(* --- MultiMCW ------------------------------------------------------ *)

let mcw_windows = [| 63; 255; 1023; 4095 |]

let multi_mcw bits =
  if Array.length bits < 4096 then invalid_arg "Predictors.multi_mcw: need >= 4096 bits";
  let n = Array.length bits in
  (* Prefix ones for O(1) window majority. *)
  let ones = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    ones.(i + 1) <- ones.(i) + (if bits.(i) then 1 else 0)
  done;
  let k = Array.length mcw_windows in
  let scoreboard = Array.make k 0 in
  let sub_predict w i =
    let lo = max 0 (i - w) in
    let c1 = ones.(i) - ones.(lo) in
    let len = i - lo in
    if 2 * c1 > len then true
    else if 2 * c1 < len then false
    else bits.(i - 1) (* tie: most recent value *)
  in
  let predict i =
    let best = ref 0 in
    for j = 1 to k - 1 do
      if scoreboard.(j) > scoreboard.(!best) then best := j
    done;
    Some (sub_predict mcw_windows.(!best) i)
  in
  let update i =
    for j = 0 to k - 1 do
      if sub_predict mcw_windows.(j) i = bits.(i) then
        scoreboard.(j) <- scoreboard.(j) + 1
    done
  in
  run_predictor ~name:"multi-mcw" ~start:64 bits predict update

(* --- Lag ------------------------------------------------------------ *)

let lag ?(max_lag = 128) bits =
  if max_lag < 1 then invalid_arg "Predictors.lag: max_lag < 1";
  if Array.length bits < max 1000 (2 * max_lag) then
    invalid_arg "Predictors.lag: need >= 1000 bits";
  let scoreboard = Array.make max_lag 0 in
  let predict i =
    let best = ref 0 in
    for j = 1 to max_lag - 1 do
      if scoreboard.(j) > scoreboard.(!best) then best := j
    done;
    Some bits.(i - (!best + 1))
  in
  let update i =
    for j = 0 to max_lag - 1 do
      if bits.(i - (j + 1)) = bits.(i) then scoreboard.(j) <- scoreboard.(j) + 1
    done
  in
  run_predictor ~name:"lag" ~start:max_lag bits predict update

(* --- MultiMMC ------------------------------------------------------- *)

let multi_mmc ?(max_order = 16) bits =
  if max_order < 1 || max_order > 30 then
    invalid_arg "Predictors.multi_mmc: max_order outside [1,30]";
  if Array.length bits < 1000 then invalid_arg "Predictors.multi_mmc: need >= 1000 bits";
  (* Per order: context (packed bits + length marker) -> (c0, c1). *)
  let tables = Array.init max_order (fun _ -> Hashtbl.create 1024) in
  let context d i =
    (* Bits i-d .. i-1 packed with a leading marker bit. *)
    let acc = ref 1 in
    for j = i - d to i - 1 do
      acc := (!acc lsl 1) lor (if bits.(j) then 1 else 0)
    done;
    !acc
  in
  let scoreboard = Array.make max_order 0 in
  let sub_predict d i =
    match Hashtbl.find_opt tables.(d - 1) (context d i) with
    | Some (c0, c1) when c0 <> c1 -> Some (c1 > c0)
    | Some _ | None -> None
  in
  let predict i =
    let best = ref 0 in
    for j = 1 to max_order - 1 do
      if scoreboard.(j) > scoreboard.(!best) then best := j
    done;
    sub_predict (!best + 1) i
  in
  let update i =
    for d = 1 to min max_order i do
      (match sub_predict d i with
      | Some guess when guess = bits.(i) -> scoreboard.(d - 1) <- scoreboard.(d - 1) + 1
      | _ -> ());
      let key = context d i in
      let c0, c1 = Option.value ~default:(0, 0) (Hashtbl.find_opt tables.(d - 1) key) in
      Hashtbl.replace tables.(d - 1) key
        (if bits.(i) then (c0, c1 + 1) else (c0 + 1, c1))
    done
  in
  run_predictor ~name:"multi-mmc" ~start:2 bits predict update

(* --- LZ78Y ----------------------------------------------------------- *)

let lz78y bits =
  if Array.length bits < 1000 then invalid_arg "Predictors.lz78y: need >= 1000 bits";
  let max_depth = 16 in
  let max_entries = 65536 in
  let dict : (int, int * int) Hashtbl.t = Hashtbl.create 4096 in
  let key d i =
    let acc = ref 1 in
    for j = i - d to i - 1 do
      acc := (!acc lsl 1) lor (if bits.(j) then 1 else 0)
    done;
    !acc
  in
  let predict i =
    let rec deepest d =
      if d = 0 then None
      else
        match Hashtbl.find_opt dict (key d i) with
        | Some (c0, c1) when c0 <> c1 -> Some (c1 > c0)
        | _ -> deepest (d - 1)
    in
    deepest (min max_depth i)
  in
  let update i =
    for d = 1 to min max_depth i do
      let k = key d i in
      match Hashtbl.find_opt dict k with
      | Some (c0, c1) ->
        Hashtbl.replace dict k (if bits.(i) then (c0, c1 + 1) else (c0 + 1, c1))
      | None ->
        if Hashtbl.length dict < max_entries then
          Hashtbl.add dict k (if bits.(i) then (0, 1) else (1, 0))
    done
  in
  run_predictor ~name:"lz78y" ~start:1 bits predict update

let run_all bits =
  let estimates = [ multi_mcw bits; lag bits; multi_mmc bits; lz78y bits ] in
  let aggregate =
    List.fold_left
      (fun acc (e : Estimators.estimate) -> Float.min acc e.min_entropy)
      1.0 estimates
  in
  (estimates, aggregate)
