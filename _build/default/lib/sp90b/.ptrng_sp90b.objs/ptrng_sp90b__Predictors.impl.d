lib/sp90b/predictors.ml: Array Estimators Float Hashtbl List Option
