lib/sp90b/health.ml: Array Float Ptrng_stats
