lib/sp90b/estimators.mli:
