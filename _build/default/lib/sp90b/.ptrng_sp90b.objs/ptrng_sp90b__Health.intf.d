lib/sp90b/health.mli:
