lib/sp90b/estimators.ml: Array Float Hashtbl List Option Printf Ptrng_stats
