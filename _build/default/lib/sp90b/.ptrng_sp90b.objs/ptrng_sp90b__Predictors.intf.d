lib/sp90b/predictors.mli: Estimators
