(** SP 800-90B prediction estimators (§6.3.7–6.3.10, binary).

    Each estimator trains a family of predictors on the fly and counts
    how often the ensemble guesses the next bit.  The guess rate upper
    bound (99% CI on the global rate, and a local bound from the
    longest streak of correct guesses) converts to min-entropy; a
    source whose future is guessable from its past — exactly what
    flicker-correlated jitter produces — scores low even when its
    marginal distribution is perfectly balanced.

    Returns the same {!Estimators.estimate} record as the §6.3
    estimators.  The local-bound computation follows the standard's
    longest-run inversion; the global bound dominates for the
    stationary sources modelled in this repository. *)

val multi_mcw : bool array -> Estimators.estimate
(** Most-common-in-window predictors (windows 63/255/1023/4095) under a
    pick-the-best meta-predictor.
    @raise Invalid_argument on fewer than 4096 bits. *)

val lag : ?max_lag:int -> bool array -> Estimators.estimate
(** Lag predictors (1..[max_lag], default 128) under a meta-predictor;
    the right tool for periodic or slowly drifting sources.
    @raise Invalid_argument on fewer than 1000 bits. *)

val multi_mmc : ?max_order:int -> bool array -> Estimators.estimate
(** Markov-model-with-counting predictors of orders 1..[max_order]
    (default 16). @raise Invalid_argument on fewer than 1000 bits. *)

val lz78y : bool array -> Estimators.estimate
(** LZ78-based predictor with a bounded dictionary.
    @raise Invalid_argument on fewer than 1000 bits. *)

val run_all : bool array -> Estimators.estimate list * float
(** The four prediction estimators and their minimum. *)

val local_bound : n:int -> longest_run:int -> float
(** Upper bound on the per-guess success probability implied by the
    longest streak of correct guesses among [n] predictions (the
    standard's P_local, 99% confidence); exposed for testing. *)
