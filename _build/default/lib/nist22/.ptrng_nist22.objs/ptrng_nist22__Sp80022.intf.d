lib/nist22/sp80022.mli: Format
