lib/nist22/sp80022.ml: Array Float Format Hashtbl List Option Printf Ptrng_signal Ptrng_stats
