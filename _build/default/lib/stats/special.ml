(* Lanczos approximation, g = 7, n = 9 coefficients (Boost/GSL grade:
   ~15 significant digits for x > 0). *)
let lanczos_g = 7.0

let lanczos_coeffs =
  [|
    0.99999999999980993;
    676.5203681218851;
    -1259.1392167224028;
    771.32342877765313;
    -176.61502916214059;
    12.507343278686905;
    -0.13857109526572012;
    9.9843695780195716e-6;
    1.5056327351493116e-7;
  |]

let rec log_gamma x =
  if x <= 0.0 then invalid_arg "Special.log_gamma: x <= 0";
  if x < 0.5 then
    (* Reflection: Gamma(x) Gamma(1-x) = pi / sin(pi x). *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1.0 -. x)
  else begin
    let x = x -. 1.0 in
    let acc = ref lanczos_coeffs.(0) in
    for i = 1 to Array.length lanczos_coeffs - 1 do
      acc := !acc +. (lanczos_coeffs.(i) /. (x +. float_of_int i))
    done;
    let t = x +. lanczos_g +. 0.5 in
    (0.5 *. log (2.0 *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !acc
  end

(* Series representation of P(a,x), converges fast for x < a + 1. *)
let gamma_p_series ~a ~x =
  let eps = 1e-15 in
  let rec loop n term sum =
    if Float.abs term < Float.abs sum *. eps || n > 1000 then sum
    else begin
      let term = term *. x /. (a +. float_of_int n) in
      loop (n + 1) term (sum +. term)
    end
  in
  let first = 1.0 /. a in
  let sum = loop 1 first first in
  sum *. exp ((a *. log x) -. x -. log_gamma a)

(* Lentz continued fraction for Q(a,x), converges fast for x >= a + 1. *)
let gamma_q_cf ~a ~x =
  let eps = 1e-15 and tiny = 1e-300 in
  let b = ref (x +. 1.0 -. a) in
  let c = ref (1.0 /. tiny) in
  let d = ref (1.0 /. !b) in
  let h = ref !d in
  (try
     for i = 1 to 1000 do
       let an = -.float_of_int i *. (float_of_int i -. a) in
       b := !b +. 2.0;
       d := (an *. !d) +. !b;
       if Float.abs !d < tiny then d := tiny;
       c := !b +. (an /. !c);
       if Float.abs !c < tiny then c := tiny;
       d := 1.0 /. !d;
       let delta = !d *. !c in
       h := !h *. delta;
       if Float.abs (delta -. 1.0) < eps then raise Exit
     done
   with Exit -> ());
  !h *. exp ((a *. log x) -. x -. log_gamma a)

let gamma_p ~a ~x =
  if a <= 0.0 then invalid_arg "Special.gamma_p: a <= 0";
  if x < 0.0 then invalid_arg "Special.gamma_p: x < 0";
  if x = 0.0 then 0.0
  else if x < a +. 1.0 then gamma_p_series ~a ~x
  else 1.0 -. gamma_q_cf ~a ~x

let gamma_q ~a ~x =
  if a <= 0.0 then invalid_arg "Special.gamma_q: a <= 0";
  if x < 0.0 then invalid_arg "Special.gamma_q: x < 0";
  if x = 0.0 then 1.0
  else if x < a +. 1.0 then 1.0 -. gamma_p_series ~a ~x
  else gamma_q_cf ~a ~x

let erf x =
  if x = 0.0 then 0.0
  else begin
    let p = gamma_p ~a:0.5 ~x:(x *. x) in
    if x > 0.0 then p else -.p
  end

let erfc_pos x = if x = 0.0 then 1.0 else gamma_q ~a:0.5 ~x:(x *. x)

let erfc x = if x < 0.0 then 2.0 -. erfc_pos (-.x) else erfc_pos x

let sqrt2 = sqrt 2.0

let normal_cdf x = 0.5 *. erfc (-.x /. sqrt2)
let normal_sf x = 0.5 *. erfc (x /. sqrt2)

(* Acklam's rational approximation to the normal quantile, then one
   step of Halley refinement using the exact CDF above. *)
let normal_ppf p =
  if p <= 0.0 || p >= 1.0 then invalid_arg "Special.normal_ppf: p outside (0,1)";
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  in
  let b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01 |]
  in
  let c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  in
  let d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00 |]
  in
  let p_low = 0.02425 in
  let x =
    if p < p_low then begin
      let q = sqrt (-2.0 *. log p) in
      (((((c.(0) *. q +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q +. c.(5))
      /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)
    end
    else if p <= 1.0 -. p_low then begin
      let q = p -. 0.5 in
      let r = q *. q in
      (((((a.(0) *. r +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4)) *. r +. a.(5)) *. q
      /. (((((b.(0) *. r +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4)) *. r +. 1.0)
    end
    else begin
      let q = sqrt (-2.0 *. log (1.0 -. p)) in
      -.((((((c.(0) *. q +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q +. c.(5))
         /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0))
    end
  in
  (* Halley polish. *)
  let e = normal_cdf x -. p in
  let u = e *. sqrt (2.0 *. Float.pi) *. exp (x *. x /. 2.0) in
  x -. (u /. (1.0 +. (x *. u /. 2.0)))

let chi2_cdf ~df x =
  if df <= 0.0 then invalid_arg "Special.chi2_cdf: df <= 0";
  if x <= 0.0 then 0.0 else gamma_p ~a:(df /. 2.0) ~x:(x /. 2.0)

let chi2_sf ~df x =
  if df <= 0.0 then invalid_arg "Special.chi2_sf: df <= 0";
  if x <= 0.0 then 1.0 else gamma_q ~a:(df /. 2.0) ~x:(x /. 2.0)

let ks_sf lambda =
  if lambda <= 0.0 then 1.0
  else begin
    let acc = ref 0.0 in
    (try
       for j = 1 to 100 do
         let sign = if j land 1 = 1 then 1.0 else -1.0 in
         let term = sign *. exp (-2.0 *. float_of_int (j * j) *. lambda *. lambda) in
         acc := !acc +. term;
         if Float.abs term < 1e-16 then raise Exit
       done
     with Exit -> ());
    Float.max 0.0 (Float.min 1.0 (2.0 *. !acc))
  end
