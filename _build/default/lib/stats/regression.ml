type linear_fit = {
  slope : float;
  intercept : float;
  slope_se : float;
  intercept_se : float;
  r2 : float;
}

let linear ~x ~y =
  let n = Array.length x in
  if Array.length y <> n then invalid_arg "Regression.linear: length mismatch";
  if n < 2 then invalid_arg "Regression.linear: need >= 2 points";
  let fn = float_of_int n in
  let mx = Descriptive.mean x and my = Descriptive.mean y in
  let sxx = ref 0.0 and sxy = ref 0.0 and syy = ref 0.0 in
  for i = 0 to n - 1 do
    let dx = x.(i) -. mx and dy = y.(i) -. my in
    sxx := !sxx +. (dx *. dx);
    sxy := !sxy +. (dx *. dy);
    syy := !syy +. (dy *. dy)
  done;
  if !sxx = 0.0 then invalid_arg "Regression.linear: degenerate x";
  let slope = !sxy /. !sxx in
  let intercept = my -. (slope *. mx) in
  let ss_res = !syy -. (slope *. !sxy) in
  let r2 = if !syy = 0.0 then 1.0 else 1.0 -. (ss_res /. !syy) in
  let slope_se, intercept_se =
    if n > 2 then begin
      let sigma2 = Float.max 0.0 ss_res /. (fn -. 2.0) in
      (sqrt (sigma2 /. !sxx), sqrt (sigma2 *. ((1.0 /. fn) +. (mx *. mx /. !sxx))))
    end
    else (Float.nan, Float.nan)
  in
  { slope; intercept; slope_se; intercept_se; r2 }

type fit = { coeffs : float array; cov : Matrix.t; chi2 : float; dof : int }

let general ~design ~y ?sigma () =
  let m = Matrix.rows design and p = Matrix.cols design in
  if Array.length y <> m then invalid_arg "Regression.general: y size mismatch";
  (match sigma with
  | Some s when Array.length s <> m -> invalid_arg "Regression.general: sigma size mismatch"
  | _ -> ());
  if m <= p then invalid_arg "Regression.general: need more points than parameters";
  let weight i = match sigma with None -> 1.0 | Some s -> 1.0 /. s.(i) in
  let a = Matrix.create ~rows:m ~cols:p in
  let b = Array.make m 0.0 in
  for i = 0 to m - 1 do
    let w = weight i in
    for j = 0 to p - 1 do
      Matrix.set a i j (Matrix.get design i j *. w)
    done;
    b.(i) <- y.(i) *. w
  done;
  let coeffs = Matrix.least_squares a b in
  let fitted = Matrix.mul_vec a coeffs in
  let chi2 = ref 0.0 in
  for i = 0 to m - 1 do
    let r = b.(i) -. fitted.(i) in
    chi2 := !chi2 +. (r *. r)
  done;
  let dof = m - p in
  let ata = Matrix.mul (Matrix.transpose a) a in
  let cov0 = Matrix.inverse ata in
  let cov =
    match sigma with
    | Some _ -> cov0
    | None ->
      (* Unit weights: scale by the residual variance estimate. *)
      let s2 = !chi2 /. float_of_int dof in
      let scaled = Matrix.copy cov0 in
      for i = 0 to p - 1 do
        for j = 0 to p - 1 do
          Matrix.set scaled i j (Matrix.get cov0 i j *. s2)
        done
      done;
      scaled
  in
  { coeffs; cov; chi2 = !chi2; dof }

let polynomial ~degree ~x ~y =
  if degree < 0 then invalid_arg "Regression.polynomial: negative degree";
  let m = Array.length x in
  if Array.length y <> m then invalid_arg "Regression.polynomial: length mismatch";
  let p = degree + 1 in
  (* Scale x by its max magnitude so Vandermonde columns stay O(1). *)
  let scale =
    Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 x
  in
  let scale = if scale = 0.0 then 1.0 else scale in
  let design = Matrix.create ~rows:m ~cols:p in
  for i = 0 to m - 1 do
    let xv = x.(i) /. scale in
    let pow = ref 1.0 in
    for j = 0 to p - 1 do
      Matrix.set design i j !pow;
      pow := !pow *. xv
    done
  done;
  let fit = general ~design ~y () in
  (* Undo the column scaling on coefficients and covariance. *)
  let coeffs = Array.mapi (fun j c -> c /. (scale ** float_of_int j)) fit.coeffs in
  let cov = Matrix.copy fit.cov in
  for i = 0 to p - 1 do
    for j = 0 to p - 1 do
      let s = scale ** float_of_int (i + j) in
      Matrix.set cov i j (Matrix.get fit.cov i j /. s)
    done
  done;
  { fit with coeffs; cov }

let coeff_se fit k = sqrt (Float.max 0.0 (Matrix.get fit.cov k k))

let predict_poly fit x =
  let acc = ref 0.0 and pow = ref 1.0 in
  Array.iter
    (fun c ->
      acc := !acc +. (c *. !pow);
      pow := !pow *. x)
    fit.coeffs;
  !acc
