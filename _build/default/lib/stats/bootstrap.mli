(** Bootstrap confidence intervals for arbitrary estimators. *)

val ci :
  rng:Ptrng_prng.Rng.t ->
  ?resamples:int ->
  ?level:float ->
  estimator:(float array -> float) ->
  float array ->
  float * float
(** [ci ~rng ~estimator x] returns a percentile bootstrap interval for
    [estimator] applied to [x].  Defaults: 1000 resamples, 0.95 level.
    @raise Invalid_argument on empty data or a level outside (0,1). *)
