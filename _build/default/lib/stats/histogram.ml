type t = { edges : float array; counts : int array; total : int }

let make ~bins ?range x =
  if bins <= 0 then invalid_arg "Histogram.make: bins <= 0";
  let n = Array.length x in
  if n = 0 then invalid_arg "Histogram.make: empty data";
  let lo, hi =
    match range with
    | Some (lo, hi) -> (lo, hi)
    | None -> Descriptive.min_max x
  in
  if hi <= lo then invalid_arg "Histogram.make: empty range";
  let width = (hi -. lo) /. float_of_int bins in
  let edges = Array.init (bins + 1) (fun i -> lo +. (float_of_int i *. width)) in
  let counts = Array.make bins 0 in
  Array.iter
    (fun v ->
      let b = int_of_float ((v -. lo) /. width) in
      let b = max 0 (min (bins - 1) b) in
      counts.(b) <- counts.(b) + 1)
    x;
  { edges; counts; total = n }

let density t =
  let bins = Array.length t.counts in
  Array.init bins (fun i ->
      let width = t.edges.(i + 1) -. t.edges.(i) in
      float_of_int t.counts.(i) /. (float_of_int t.total *. width))

let bin_centers t =
  Array.init (Array.length t.counts) (fun i -> 0.5 *. (t.edges.(i) +. t.edges.(i + 1)))
