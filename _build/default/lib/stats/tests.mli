(** Hypothesis tests.

    These are the independence/distribution probes applied to simulated
    jitter series: a truly independent sequence must pass Ljung–Box,
    runs and turning-point tests, while flicker-contaminated jitter
    fails them at long lags — the statistical face of the paper's
    claim. *)

type result = {
  statistic : float;
  p_value : float;
  df : float;  (** Degrees of freedom (or [nan] where not applicable). *)
}

val chi2_gof : ?ddof:int -> observed:int array -> expected:float array -> unit -> result
(** Pearson chi-squared goodness of fit; [ddof] extra degrees of
    freedom consumed by fitted parameters.
    @raise Invalid_argument on size mismatch or non-positive expected
    counts. *)

val ks_one_sample : cdf:(float -> float) -> float array -> result
(** One-sample Kolmogorov–Smirnov against a continuous [cdf], with the
    finite-n correction (n + 0.12 + 0.11/sqrt n). *)

val normality_ks : float array -> result
(** KS test against a normal with the sample's mean and std (a pragmatic
    Lilliefors-style check; the p-value is conservative). *)

val anderson_darling_normal : float array -> result
(** Anderson–Darling normality test with estimated parameters (case 3):
    the statistic is the small-sample-adjusted A*^2 and the p-value uses
    D'Agostino's approximation.  More tail-sensitive than KS — the right
    instrument for checking that simulated jitter is Gaussian out to the
    tails. @raise Invalid_argument on fewer than 8 samples. *)

val ljung_box : lags:int -> float array -> result
(** Ljung–Box portmanteau test for autocorrelation up to [lags]. *)

val runs_median : float array -> result
(** Wald–Wolfowitz runs test around the median (normal approximation);
    sensitive to positive serial dependence. *)

val turning_points : float array -> result
(** Turning-point randomness test (normal approximation). *)

val variance_ratio : float array -> q:int -> result
(** Lo–MacKinlay variance-ratio test: compares the variance of
    [q]-step sums against [q] times the one-step variance — a direct
    statistical form of the Bienaymé linearity property the paper
    exploits.  A positive statistic means super-linear variance growth
    (positively correlated increments, flicker-like). *)
