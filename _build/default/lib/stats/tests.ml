type result = { statistic : float; p_value : float; df : float }

let two_sided_normal_p z = 2.0 *. Special.normal_sf (Float.abs z)

let chi2_gof ?(ddof = 0) ~observed ~expected () =
  let k = Array.length observed in
  if Array.length expected <> k then invalid_arg "Tests.chi2_gof: size mismatch";
  if k - 1 - ddof <= 0 then invalid_arg "Tests.chi2_gof: no degrees of freedom left";
  let stat = ref 0.0 in
  for i = 0 to k - 1 do
    if expected.(i) <= 0.0 then invalid_arg "Tests.chi2_gof: non-positive expected count";
    let d = float_of_int observed.(i) -. expected.(i) in
    stat := !stat +. (d *. d /. expected.(i))
  done;
  let df = float_of_int (k - 1 - ddof) in
  { statistic = !stat; p_value = Special.chi2_sf ~df !stat; df }

let ks_one_sample ~cdf x =
  let n = Array.length x in
  if n = 0 then invalid_arg "Tests.ks_one_sample: empty data";
  let sorted = Array.copy x in
  Array.sort compare sorted;
  let fn = float_of_int n in
  let d = ref 0.0 in
  for i = 0 to n - 1 do
    let f = cdf sorted.(i) in
    let lo = float_of_int i /. fn and hi = float_of_int (i + 1) /. fn in
    d := Float.max !d (Float.max (Float.abs (f -. lo)) (Float.abs (hi -. f)))
  done;
  let sqrt_n = sqrt fn in
  let lambda = (sqrt_n +. 0.12 +. (0.11 /. sqrt_n)) *. !d in
  { statistic = !d; p_value = Special.ks_sf lambda; df = Float.nan }

let normality_ks x =
  if Array.length x < 4 then invalid_arg "Tests.normality_ks: need >= 4 samples";
  let mu = Descriptive.mean x in
  let sd = Descriptive.std ~mean:mu x in
  if sd = 0.0 then invalid_arg "Tests.normality_ks: zero variance";
  ks_one_sample ~cdf:(fun v -> Special.normal_cdf ((v -. mu) /. sd)) x

let anderson_darling_normal x =
  let n = Array.length x in
  if n < 8 then invalid_arg "Tests.anderson_darling_normal: need >= 8 samples";
  let mu = Descriptive.mean x in
  let sd = Descriptive.std ~mean:mu x in
  if sd = 0.0 then invalid_arg "Tests.anderson_darling_normal: zero variance";
  let z = Array.map (fun v -> (v -. mu) /. sd) x in
  Array.sort compare z;
  let fn = float_of_int n in
  let eps = 1e-300 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    let phi_lo = Float.max eps (Special.normal_cdf z.(i)) in
    let phi_hi = Float.max eps (Special.normal_sf z.(n - 1 - i)) in
    acc := !acc +. (float_of_int ((2 * i) + 1) *. (log phi_lo +. log phi_hi))
  done;
  let a2 = -.fn -. (!acc /. fn) in
  (* Small-sample adjustment and D'Agostino's p-value approximation. *)
  let a2s = a2 *. (1.0 +. (0.75 /. fn) +. (2.25 /. (fn *. fn))) in
  let p =
    if a2s >= 0.6 then exp (1.2937 -. (5.709 *. a2s) +. (0.0186 *. a2s *. a2s))
    else if a2s > 0.34 then exp (0.9177 -. (4.279 *. a2s) -. (1.38 *. a2s *. a2s))
    else if a2s > 0.2 then
      1.0 -. exp (-8.318 +. (42.796 *. a2s) -. (59.938 *. a2s *. a2s))
    else 1.0 -. exp (-13.436 +. (101.14 *. a2s) -. (223.73 *. a2s *. a2s))
  in
  { statistic = a2s; p_value = Float.max 0.0 (Float.min 1.0 p); df = Float.nan }

let ljung_box ~lags x =
  let n = Array.length x in
  if lags <= 0 then invalid_arg "Tests.ljung_box: lags <= 0";
  if n <= lags + 1 then invalid_arg "Tests.ljung_box: series too short";
  let r = Ptrng_signal.Autocorr.acf ~max_lag:lags x in
  let fn = float_of_int n in
  let q = ref 0.0 in
  for k = 1 to lags do
    q := !q +. (r.(k) *. r.(k) /. (fn -. float_of_int k))
  done;
  let stat = fn *. (fn +. 2.0) *. !q in
  let df = float_of_int lags in
  { statistic = stat; p_value = Special.chi2_sf ~df stat; df }

let runs_median x =
  let n = Array.length x in
  if n < 10 then invalid_arg "Tests.runs_median: need >= 10 samples";
  let med = Descriptive.median x in
  (* Drop exact ties with the median, as is standard. *)
  let signs =
    Array.to_list x
    |> List.filter_map (fun v -> if v = med then None else Some (v > med))
  in
  let signs = Array.of_list signs in
  let m = Array.length signs in
  if m < 10 then invalid_arg "Tests.runs_median: too many ties";
  let n1 = Array.fold_left (fun acc above -> if above then acc + 1 else acc) 0 signs in
  let n2 = m - n1 in
  if n1 = 0 || n2 = 0 then invalid_arg "Tests.runs_median: one-sided data";
  let runs = ref 1 in
  for i = 1 to m - 1 do
    if signs.(i) <> signs.(i - 1) then incr runs
  done;
  let f1 = float_of_int n1 and f2 = float_of_int n2 in
  let fm = f1 +. f2 in
  let mean = (2.0 *. f1 *. f2 /. fm) +. 1.0 in
  let var = 2.0 *. f1 *. f2 *. ((2.0 *. f1 *. f2) -. fm) /. (fm *. fm *. (fm -. 1.0)) in
  let z = (float_of_int !runs -. mean) /. sqrt var in
  { statistic = z; p_value = two_sided_normal_p z; df = Float.nan }

let turning_points x =
  let n = Array.length x in
  if n < 10 then invalid_arg "Tests.turning_points: need >= 10 samples";
  let count = ref 0 in
  for i = 1 to n - 2 do
    let a = x.(i - 1) and b = x.(i) and c = x.(i + 1) in
    if (b > a && b > c) || (b < a && b < c) then incr count
  done;
  let fn = float_of_int n in
  let mean = 2.0 *. (fn -. 2.0) /. 3.0 in
  let var = ((16.0 *. fn) -. 29.0) /. 90.0 in
  let z = (float_of_int !count -. mean) /. sqrt var in
  { statistic = z; p_value = two_sided_normal_p z; df = Float.nan }

let variance_ratio x ~q =
  let n = Array.length x in
  if q < 2 then invalid_arg "Tests.variance_ratio: q < 2";
  if n < 4 * q then invalid_arg "Tests.variance_ratio: series too short";
  let mu = Descriptive.mean x in
  let fn = float_of_int n in
  let var1 = ref 0.0 in
  Array.iter
    (fun v ->
      let d = v -. mu in
      var1 := !var1 +. (d *. d))
    x;
  let var1 = !var1 /. fn in
  if var1 = 0.0 then invalid_arg "Tests.variance_ratio: zero variance";
  (* Overlapping q-step sums of the mean-removed series. *)
  let fq = float_of_int q in
  let varq = ref 0.0 in
  let window = ref 0.0 in
  for i = 0 to q - 1 do
    window := !window +. (x.(i) -. mu)
  done;
  varq := !window *. !window;
  for i = q to n - 1 do
    window := !window +. (x.(i) -. mu) -. (x.(i - q) -. mu);
    varq := !varq +. (!window *. !window)
  done;
  let varq = !varq /. (fq *. float_of_int (n - q + 1)) in
  let vr = varq /. var1 in
  let phi = 2.0 *. ((2.0 *. fq) -. 1.0) *. (fq -. 1.0) /. (3.0 *. fq *. fn) in
  let z = (vr -. 1.0) /. sqrt phi in
  { statistic = z; p_value = two_sided_normal_p z; df = Float.nan }
