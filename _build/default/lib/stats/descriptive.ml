let require_len name n x =
  if Array.length x < n then
    invalid_arg (Printf.sprintf "Descriptive.%s: need at least %d samples" name n)

let sum x =
  let acc = ref 0.0 and comp = ref 0.0 in
  Array.iter
    (fun v ->
      let y = v -. !comp in
      let t = !acc +. y in
      comp := t -. !acc -. y;
      acc := t)
    x;
  !acc

let mean x =
  require_len "mean" 1 x;
  sum x /. float_of_int (Array.length x)

let centered_moment x m p =
  let acc = ref 0.0 in
  Array.iter (fun v -> acc := !acc +. ((v -. m) ** p)) x;
  !acc /. float_of_int (Array.length x)

let variance_biased ?mean:m x =
  require_len "variance_biased" 1 x;
  let m = match m with Some v -> v | None -> mean x in
  centered_moment x m 2.0

let variance ?mean:m x =
  require_len "variance" 2 x;
  let n = float_of_int (Array.length x) in
  variance_biased ?mean:m x *. n /. (n -. 1.0)

let std ?mean x = sqrt (variance ?mean x)

let skewness x =
  require_len "skewness" 3 x;
  let m = mean x in
  let s2 = centered_moment x m 2.0 in
  if s2 = 0.0 then invalid_arg "Descriptive.skewness: zero variance";
  centered_moment x m 3.0 /. (s2 ** 1.5)

let kurtosis_excess x =
  require_len "kurtosis_excess" 4 x;
  let m = mean x in
  let s2 = centered_moment x m 2.0 in
  if s2 = 0.0 then invalid_arg "Descriptive.kurtosis_excess: zero variance";
  (centered_moment x m 4.0 /. (s2 *. s2)) -. 3.0

let min_max x =
  require_len "min_max" 1 x;
  Array.fold_left
    (fun (lo, hi) v -> (Float.min lo v, Float.max hi v))
    (x.(0), x.(0))
    x

let quantile x p =
  require_len "quantile" 1 x;
  if p < 0.0 || p > 1.0 then invalid_arg "Descriptive.quantile: p outside [0,1]";
  let sorted = Array.copy x in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let h = p *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor h) in
  let hi = min (lo + 1) (n - 1) in
  let frac = h -. float_of_int lo in
  sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let median x = quantile x 0.5

let standard_error_of_variance ~n ~variance =
  if n < 2 then invalid_arg "Descriptive.standard_error_of_variance: n < 2";
  variance *. sqrt (2.0 /. float_of_int (n - 1))
