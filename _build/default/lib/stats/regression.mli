(** Least-squares regression.

    The workhorse of the reproduction: fitting
    [f0^2 sigma^2_N = a N + b N^2 (+ c)] to separate thermal from
    flicker contributions (paper Section IV-A). *)

type linear_fit = {
  slope : float;
  intercept : float;
  slope_se : float;      (** Standard error of the slope. *)
  intercept_se : float;  (** Standard error of the intercept. *)
  r2 : float;            (** Coefficient of determination. *)
}

val linear : x:float array -> y:float array -> linear_fit
(** Ordinary least squares line. Needs >= 3 points for standard errors
    (they are reported as [nan] with exactly 2). *)

type fit = {
  coeffs : float array;     (** Fitted parameters, in design-column order. *)
  cov : Matrix.t;           (** Parameter covariance estimate. *)
  chi2 : float;             (** Weighted residual sum of squares. *)
  dof : int;                (** Degrees of freedom (points - parameters). *)
}

val general :
  design:Matrix.t -> y:float array -> ?sigma:float array -> unit -> fit
(** Weighted least squares with per-point standard deviations [sigma]
    (default: unit weights).  With explicit [sigma] the covariance is
    [(A^T W A)^-1] (absolute); without, it is scaled by the residual
    variance. @raise Invalid_argument on size mismatches. *)

val polynomial : degree:int -> x:float array -> y:float array -> fit
(** Polynomial fit; [coeffs.(k)] multiplies [x^k].  Columns are scaled
    internally for conditioning. *)

val coeff_se : fit -> int -> float
(** Standard error of the k-th coefficient (sqrt of cov diagonal). *)

val predict_poly : fit -> float -> float
(** Evaluate a {!polynomial} fit at a point. *)
