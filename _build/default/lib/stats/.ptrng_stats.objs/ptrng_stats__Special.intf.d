lib/stats/special.mli:
