lib/stats/bootstrap.mli: Ptrng_prng
