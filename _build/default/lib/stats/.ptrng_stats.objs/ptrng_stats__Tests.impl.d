lib/stats/tests.ml: Array Descriptive Float List Ptrng_signal Special
