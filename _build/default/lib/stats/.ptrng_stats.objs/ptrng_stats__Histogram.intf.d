lib/stats/histogram.mli:
