lib/stats/descriptive.mli:
