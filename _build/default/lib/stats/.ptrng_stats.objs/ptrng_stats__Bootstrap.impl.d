lib/stats/bootstrap.ml: Array Descriptive Ptrng_prng
