lib/stats/regression.ml: Array Descriptive Float Matrix
