lib/stats/tests.mli:
