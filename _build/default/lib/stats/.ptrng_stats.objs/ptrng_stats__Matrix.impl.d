lib/stats/matrix.ml: Array Float
