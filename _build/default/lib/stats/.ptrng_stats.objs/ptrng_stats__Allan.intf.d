lib/stats/allan.mli:
