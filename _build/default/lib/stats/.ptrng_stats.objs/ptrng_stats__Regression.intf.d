lib/stats/regression.mli: Matrix
