lib/stats/allan.ml: Array Float List Printf Special
