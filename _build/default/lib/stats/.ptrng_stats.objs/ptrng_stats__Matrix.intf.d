lib/stats/matrix.mli:
