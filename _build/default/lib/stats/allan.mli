(** Allan, Hadamard and modified Allan variance.

    The paper's statistic [s_N] (eq. 4) is exactly an Allan-style
    two-sample difference: [sigma^2_N = 2 (N tau0)^2 sigma_y^2(N tau0)]
    where sigma_y^2 is the Allan variance of the fractional frequency of
    the oscillator.  This module provides the reference estimators used
    to validate the measurement pipeline and the noise generators.

    Inputs are fractional-frequency samples [y.(k)] taken at interval
    [tau0]; internally they are integrated into time-error data. *)

type point = {
  m : int;        (** Averaging factor. *)
  tau : float;    (** Averaging time [m * tau0]. *)
  avar : float;   (** Variance estimate at [tau]. *)
  neff : int;     (** Number of squared differences averaged. *)
}

val avar_nonoverlapping : tau0:float -> m:int -> float array -> float
(** Classic two-sample (Allan) variance with disjoint blocks.
    @raise Invalid_argument if fewer than [2m] samples are available. *)

val avar_overlapping : tau0:float -> m:int -> float array -> float
(** Overlapping estimator (all starting points); much lower estimator
    variance, the standard choice. *)

val hvar_overlapping : tau0:float -> m:int -> float array -> float
(** Overlapping Hadamard (three-sample) variance; insensitive to linear
    frequency drift. Needs [3m] samples. *)

val mvar : tau0:float -> m:int -> float array -> float
(** Modified Allan variance (phase-averaged); distinguishes white PM
    from flicker PM. Needs [3m] samples. *)

val sweep :
  ?estimator:[ `Overlapping | `Nonoverlapping ] ->
  tau0:float ->
  ms:int array ->
  float array ->
  point array
(** Evaluate the chosen estimator over a grid of averaging factors,
    skipping factors with insufficient data. *)

val octave_ms : n:int -> int array
(** Octave-spaced averaging factors 1, 2, 4, ... up to [n/4]. *)

val confidence_interval :
  ?level:float -> point -> float * float
(** Chi-squared confidence interval for the true Allan variance given a
    [point] estimate.  The equivalent degrees of freedom are
    approximated as [0.75 * neff / m]-ish for overlapping estimators;
    we use the simple conservative form [max 1 (neff / 2)].  Default
    level 0.683 (the conventional 1-sigma band).
    @raise Invalid_argument if [level] outside (0,1). *)

val crossover_tau :
  h0:float -> hm1:float -> float
(** Averaging time where white FM and flicker FM contribute equally:
    [h0 / (4 ln2 h_{-1})] — the Allan-domain face of the paper's ratio
    k/f0 (about 52 us for the paper's oscillator).
    @raise Invalid_argument on non-positive levels. *)

(** Closed forms for power-law noise (one-sided [S_y(f) = h_a f^a]),
    used as test oracles. *)

val avar_white_fm : h0:float -> tau:float -> float
(** White FM: [h0 / (2 tau)]. *)

val avar_flicker_fm : hm1:float -> float
(** Flicker FM: [2 ln 2 * h_{-1}], independent of tau. *)

val avar_random_walk_fm : hm2:float -> tau:float -> float
(** Random-walk FM: [(2 pi^2 / 3) h_{-2} tau]. *)
