type t = { rows : int; cols : int; data : float array }

let create ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Matrix.create: non-positive dimension";
  { rows; cols; data = Array.make (rows * cols) 0.0 }

let rows m = m.rows
let cols m = m.cols
let get m i j = m.data.((i * m.cols) + j)
let set m i j v = m.data.((i * m.cols) + j) <- v
let copy m = { m with data = Array.copy m.data }

let of_rows rws =
  let r = Array.length rws in
  if r = 0 then invalid_arg "Matrix.of_rows: empty";
  let c = Array.length rws.(0) in
  let m = create ~rows:r ~cols:c in
  Array.iteri
    (fun i row ->
      if Array.length row <> c then invalid_arg "Matrix.of_rows: ragged rows";
      Array.iteri (fun j v -> set m i j v) row)
    rws;
  m

let identity n =
  let m = create ~rows:n ~cols:n in
  for i = 0 to n - 1 do
    set m i i 1.0
  done;
  m

let transpose m =
  let out = create ~rows:m.cols ~cols:m.rows in
  for i = 0 to m.rows - 1 do
    for j = 0 to m.cols - 1 do
      set out j i (get m i j)
    done
  done;
  out

let mul a b =
  if a.cols <> b.rows then invalid_arg "Matrix.mul: dimension mismatch";
  let out = create ~rows:a.rows ~cols:b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = get a i k in
      if aik <> 0.0 then
        for j = 0 to b.cols - 1 do
          set out i j (get out i j +. (aik *. get b k j))
        done
    done
  done;
  out

let mul_vec a v =
  if a.cols <> Array.length v then invalid_arg "Matrix.mul_vec: dimension mismatch";
  Array.init a.rows (fun i ->
      let acc = ref 0.0 in
      for j = 0 to a.cols - 1 do
        acc := !acc +. (get a i j *. v.(j))
      done;
      !acc)

(* LU with partial pivoting; returns (lu, perm, sign). *)
let lu_decompose a =
  if a.rows <> a.cols then invalid_arg "Matrix.solve_lu: non-square";
  let n = a.rows in
  let lu = copy a in
  let perm = Array.init n (fun i -> i) in
  for k = 0 to n - 1 do
    let pivot = ref k and pmax = ref (Float.abs (get lu k k)) in
    for i = k + 1 to n - 1 do
      let v = Float.abs (get lu i k) in
      if v > !pmax then begin
        pmax := v;
        pivot := i
      end
    done;
    if !pmax < 1e-300 then failwith "Matrix: singular system";
    if !pivot <> k then begin
      for j = 0 to n - 1 do
        let tmp = get lu k j in
        set lu k j (get lu !pivot j);
        set lu !pivot j tmp
      done;
      let tmp = perm.(k) in
      perm.(k) <- perm.(!pivot);
      perm.(!pivot) <- tmp
    end;
    let pivot_val = get lu k k in
    for i = k + 1 to n - 1 do
      let factor = get lu i k /. pivot_val in
      set lu i k factor;
      for j = k + 1 to n - 1 do
        set lu i j (get lu i j -. (factor *. get lu k j))
      done
    done
  done;
  (lu, perm)

let lu_solve (lu, perm) b =
  let n = Array.length perm in
  let x = Array.init n (fun i -> b.(perm.(i))) in
  for i = 1 to n - 1 do
    for j = 0 to i - 1 do
      x.(i) <- x.(i) -. (get lu i j *. x.(j))
    done
  done;
  for i = n - 1 downto 0 do
    for j = i + 1 to n - 1 do
      x.(i) <- x.(i) -. (get lu i j *. x.(j))
    done;
    x.(i) <- x.(i) /. get lu i i
  done;
  x

let solve_lu a b =
  if Array.length b <> a.rows then invalid_arg "Matrix.solve_lu: rhs size mismatch";
  lu_solve (lu_decompose a) b

let inverse a =
  let n = a.rows in
  let decomp = lu_decompose a in
  let out = create ~rows:n ~cols:n in
  for j = 0 to n - 1 do
    let e = Array.make n 0.0 in
    e.(j) <- 1.0;
    let col = lu_solve decomp e in
    for i = 0 to n - 1 do
      set out i j col.(i)
    done
  done;
  out

(* Householder QR least squares, working on copies of A and b. *)
let least_squares a b =
  let m = a.rows and n = a.cols in
  if m < n then invalid_arg "Matrix.least_squares: underdetermined system";
  if Array.length b <> m then invalid_arg "Matrix.least_squares: rhs size mismatch";
  let r = copy a in
  let y = Array.copy b in
  (* Rank decisions are made relative to the matrix scale. *)
  let frobenius =
    sqrt (Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 a.data)
  in
  let rank_eps = 1e-12 *. Float.max frobenius 1e-300 in
  for k = 0 to n - 1 do
    (* Householder vector for column k below the diagonal. *)
    let norm = ref 0.0 in
    for i = k to m - 1 do
      let v = get r i k in
      norm := !norm +. (v *. v)
    done;
    let norm = sqrt !norm in
    if norm < rank_eps then failwith "Matrix: rank-deficient least squares";
    let alpha = if get r k k > 0.0 then -.norm else norm in
    let v = Array.make m 0.0 in
    v.(k) <- get r k k -. alpha;
    for i = k + 1 to m - 1 do
      v.(i) <- get r i k
    done;
    let vtv = ref 0.0 in
    for i = k to m - 1 do
      vtv := !vtv +. (v.(i) *. v.(i))
    done;
    if !vtv > 0.0 then begin
      let beta = 2.0 /. !vtv in
      for j = k to n - 1 do
        let dot = ref 0.0 in
        for i = k to m - 1 do
          dot := !dot +. (v.(i) *. get r i j)
        done;
        let s = beta *. !dot in
        for i = k to m - 1 do
          set r i j (get r i j -. (s *. v.(i)))
        done
      done;
      let dot = ref 0.0 in
      for i = k to m - 1 do
        dot := !dot +. (v.(i) *. y.(i))
      done;
      let s = beta *. !dot in
      for i = k to m - 1 do
        y.(i) <- y.(i) -. (s *. v.(i))
      done
    end
  done;
  (* Back substitution on the upper-triangular R. *)
  let x = Array.make n 0.0 in
  for i = n - 1 downto 0 do
    let acc = ref y.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (get r i j *. x.(j))
    done;
    x.(i) <- !acc /. get r i i
  done;
  x
