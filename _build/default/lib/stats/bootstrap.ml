let ci ~rng ?(resamples = 1000) ?(level = 0.95) ~estimator x =
  let n = Array.length x in
  if n = 0 then invalid_arg "Bootstrap.ci: empty data";
  if level <= 0.0 || level >= 1.0 then invalid_arg "Bootstrap.ci: level outside (0,1)";
  if resamples < 10 then invalid_arg "Bootstrap.ci: too few resamples";
  let stats =
    Array.init resamples (fun _ ->
        let sample = Array.init n (fun _ -> x.(Ptrng_prng.Rng.int_below rng n)) in
        estimator sample)
  in
  let alpha = (1.0 -. level) /. 2.0 in
  (Descriptive.quantile stats alpha, Descriptive.quantile stats (1.0 -. alpha))
