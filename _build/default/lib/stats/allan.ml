type point = { m : int; tau : float; avar : float; neff : int }

(* Time-error integral of the fractional frequency samples:
   x.(0) = 0, x.(k) = tau0 * (y.(0) + ... + y.(k-1)). *)
let time_error ~tau0 y =
  let n = Array.length y in
  let x = Array.make (n + 1) 0.0 in
  for k = 0 to n - 1 do
    x.(k + 1) <- x.(k) +. (tau0 *. y.(k))
  done;
  x

let check_samples name need got =
  if got < need then
    invalid_arg (Printf.sprintf "Allan.%s: need >= %d samples, got %d" name need got)

let avar_overlapping ~tau0 ~m y =
  if m <= 0 then invalid_arg "Allan.avar_overlapping: m <= 0";
  let n = Array.length y in
  check_samples "avar_overlapping" (2 * m) n;
  let x = time_error ~tau0 y in
  let tau = tau0 *. float_of_int m in
  let terms = n - (2 * m) + 1 in
  let acc = ref 0.0 in
  for i = 0 to terms - 1 do
    let d = x.(i + (2 * m)) -. (2.0 *. x.(i + m)) +. x.(i) in
    acc := !acc +. (d *. d)
  done;
  !acc /. (2.0 *. tau *. tau *. float_of_int terms)

let avar_nonoverlapping ~tau0 ~m y =
  if m <= 0 then invalid_arg "Allan.avar_nonoverlapping: m <= 0";
  let n = Array.length y in
  check_samples "avar_nonoverlapping" (2 * m) n;
  let x = time_error ~tau0 y in
  let tau = tau0 *. float_of_int m in
  let blocks = n / m in
  let terms = blocks - 1 in
  let acc = ref 0.0 in
  for j = 0 to terms - 1 do
    let i = j * m in
    let d = x.(i + (2 * m)) -. (2.0 *. x.(i + m)) +. x.(i) in
    acc := !acc +. (d *. d)
  done;
  !acc /. (2.0 *. tau *. tau *. float_of_int terms)

let hvar_overlapping ~tau0 ~m y =
  if m <= 0 then invalid_arg "Allan.hvar_overlapping: m <= 0";
  let n = Array.length y in
  check_samples "hvar_overlapping" (3 * m) n;
  let x = time_error ~tau0 y in
  let tau = tau0 *. float_of_int m in
  let terms = n - (3 * m) + 1 in
  let acc = ref 0.0 in
  for i = 0 to terms - 1 do
    let d =
      x.(i + (3 * m))
      -. (3.0 *. x.(i + (2 * m)))
      +. (3.0 *. x.(i + m))
      -. x.(i)
    in
    acc := !acc +. (d *. d)
  done;
  !acc /. (6.0 *. tau *. tau *. float_of_int terms)

let mvar ~tau0 ~m y =
  if m <= 0 then invalid_arg "Allan.mvar: m <= 0";
  let n = Array.length y in
  check_samples "mvar" (3 * m) n;
  let x = time_error ~tau0 y in
  let tau = tau0 *. float_of_int m in
  let terms = n - (3 * m) + 1 in
  (* Moving sum of second differences, updated incrementally. *)
  let second_diff i = x.(i + (2 * m)) -. (2.0 *. x.(i + m)) +. x.(i) in
  let window = ref 0.0 in
  for i = 0 to m - 1 do
    window := !window +. second_diff i
  done;
  let acc = ref (!window *. !window) in
  for j = 1 to terms - 1 do
    window := !window -. second_diff (j - 1) +. second_diff (j + m - 1);
    acc := !acc +. (!window *. !window)
  done;
  let fm = float_of_int m in
  !acc /. (2.0 *. fm *. fm *. tau *. tau *. float_of_int terms)

let sweep ?(estimator = `Overlapping) ~tau0 ~ms y =
  let n = Array.length y in
  let points = ref [] in
  Array.iter
    (fun m ->
      if m > 0 && 2 * m <= n then begin
        let avar =
          match estimator with
          | `Overlapping -> avar_overlapping ~tau0 ~m y
          | `Nonoverlapping -> avar_nonoverlapping ~tau0 ~m y
        in
        let neff =
          match estimator with
          | `Overlapping -> n - (2 * m) + 1
          | `Nonoverlapping -> (n / m) - 1
        in
        points := { m; tau = tau0 *. float_of_int m; avar; neff } :: !points
      end)
    ms;
  Array.of_list (List.rev !points)

let octave_ms ~n =
  let rec collect acc m = if m > n / 4 then List.rev acc else collect (m :: acc) (m * 2) in
  Array.of_list (collect [] 1)

let confidence_interval ?(level = 0.683) point =
  if level <= 0.0 || level >= 1.0 then
    invalid_arg "Allan.confidence_interval: level outside (0,1)";
  let df = float_of_int (max 1 (point.neff / 2)) in
  (* Invert the chi-squared CDF by bisection on [1e-8, huge]. *)
  let chi2_ppf p =
    let lo = ref 1e-8 and hi = ref (Float.max 10.0 (df *. 20.0)) in
    for _ = 1 to 200 do
      let mid = 0.5 *. (!lo +. !hi) in
      if Special.chi2_cdf ~df mid < p then lo := mid else hi := mid
    done;
    0.5 *. (!lo +. !hi)
  in
  let alpha = (1.0 -. level) /. 2.0 in
  let lo = df *. point.avar /. chi2_ppf (1.0 -. alpha) in
  let hi = df *. point.avar /. chi2_ppf alpha in
  (lo, hi)

let crossover_tau ~h0 ~hm1 =
  if h0 <= 0.0 || hm1 <= 0.0 then invalid_arg "Allan.crossover_tau: non-positive level";
  h0 /. (4.0 *. log 2.0 *. hm1)

let avar_white_fm ~h0 ~tau = h0 /. (2.0 *. tau)
let avar_flicker_fm ~hm1 = 2.0 *. log 2.0 *. hm1
let avar_random_walk_fm ~hm2 ~tau = 2.0 *. Float.pi *. Float.pi /. 3.0 *. hm2 *. tau
