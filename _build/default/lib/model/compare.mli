(** Head-to-head comparison of the state-of-the-art stochastic model
    (independent jitter realizations) against the paper's multilevel
    model — quantifying the entropy overestimation that motivates the
    paper's security warning (Section V).

    The naive model extracts a per-period jitter
    [sigma_naive(N) = sqrt (sigma_N^2 / (2 N))] from a variance
    measurement at accumulation length N, implicitly assuming Bienaymé
    linearity.  Because flicker noise inflates [sigma_N^2]
    quadratically, [sigma_naive] grows with N, and the entropy computed
    from it overshoots the entropy actually delivered by the
    independent (thermal) noise. *)

type row = {
  n : int;                (** Accumulation length of the measurement. *)
  sigma_naive : float;    (** Per-period jitter a naive model infers, s. *)
  entropy_naive : float;  (** Shannon entropy/bit the naive model claims. *)
  entropy_true : float;   (** Entropy/bit backed by thermal noise only. *)
  overestimate : float;   (** [entropy_naive - entropy_true], bits. *)
}

val sigma_naive_of_point : Ptrng_measure.Variance_curve.point -> float
(** [sqrt (sigma2 / 2N)] for one measured point. *)

val overestimation_table :
  extract:Ptrng_measure.Thermal_extract.t ->
  sampling_periods:int ->
  ns:int array ->
  row array
(** For each measurement length N, the entropy a TRNG sampled every
    [sampling_periods] oscillator periods would be credited with under
    each model, using the extracted ground-truth coefficients.
    @raise Invalid_argument if [sampling_periods <= 0]. *)

val overestimation_table_measured :
  extract:Ptrng_measure.Thermal_extract.t ->
  sampling_periods:int ->
  Ptrng_measure.Variance_curve.point array ->
  row array
(** Same table computed from measured curve points instead of the
    closed form. *)
