let linear_prediction ~sigma2 ~n =
  if n <= 0 then invalid_arg "Bienayme.linear_prediction: n <= 0";
  2.0 *. float_of_int n *. sigma2

let growth_exponent (points : Ptrng_measure.Variance_curve.point array) =
  if Array.length points < 3 then invalid_arg "Bienayme.growth_exponent: need >= 3 points";
  let x = Array.map (fun p -> log10 (float_of_int p.Ptrng_measure.Variance_curve.n)) points in
  let y = Array.map (fun p -> log10 p.Ptrng_measure.Variance_curve.sigma2) points in
  let fit = Ptrng_stats.Regression.linear ~x ~y in
  (fit.slope, fit.slope_se)

let per_period_sigma2 (points : Ptrng_measure.Variance_curve.point array) =
  if Array.length points = 0 then invalid_arg "Bienayme: empty curve";
  let first =
    Array.fold_left
      (fun acc p ->
        if p.Ptrng_measure.Variance_curve.n < acc.Ptrng_measure.Variance_curve.n then p
        else acc)
      points.(0) points
  in
  first.sigma2 /. (2.0 *. float_of_int first.n)

let departure_ratio points =
  let sigma2 = per_period_sigma2 points in
  Array.map
    (fun (p : Ptrng_measure.Variance_curve.point) ->
      (p.n, p.sigma2 /. linear_prediction ~sigma2 ~n:p.n))
    points

let excess_is_significant points ~z_threshold =
  let sigma2 = per_period_sigma2 points in
  let last =
    Array.fold_left
      (fun acc (p : Ptrng_measure.Variance_curve.point) -> if p.n > acc.Ptrng_measure.Variance_curve.n then p else acc)
      points.(0) points
  in
  let predicted = linear_prediction ~sigma2 ~n:last.n in
  Float.is_finite last.stderr
  && last.stderr > 0.0
  && (last.sigma2 -. predicted) /. last.stderr > z_threshold
