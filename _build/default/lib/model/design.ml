let entropy_of_sigma ~extract ~sigma ~divisor =
  let open Ptrng_measure.Thermal_extract in
  let phase_std = Entropy.phase_std_thermal ~sigma_period:sigma ~k:divisor ~f0:extract.f0 in
  Entropy.avg_entropy ~phase_std

let entropy_at ~extract ~divisor =
  if divisor <= 0 then invalid_arg "Design.entropy_at: divisor <= 0";
  entropy_of_sigma ~extract
    ~sigma:extract.Ptrng_measure.Thermal_extract.sigma_thermal ~divisor

(* Smallest divisor whose entropy meets the target: the entropy is
   monotone in the divisor, so double then bisect. *)
let search ~target entropy_of =
  if target <= 0.0 || target >= 1.0 then invalid_arg "Design: target outside (0,1)";
  let hi = ref 1 in
  while entropy_of !hi < target && !hi < 1 lsl 40 do
    hi := !hi * 2
  done;
  let lo = ref (max 1 (!hi / 2)) in
  if !lo = 1 && entropy_of 1 >= target then 1
  else begin
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if entropy_of mid >= target then hi := mid else lo := mid
    done;
    !hi
  end

let required_divisor ?(target = 0.997) ~extract () =
  search ~target (fun divisor -> entropy_at ~extract ~divisor)

let throughput ~extract ~divisor =
  if divisor <= 0 then invalid_arg "Design.throughput: divisor <= 0";
  extract.Ptrng_measure.Thermal_extract.f0 /. float_of_int divisor

let naive_divisor ?(target = 0.997) ~extract ~measured_at () =
  if measured_at <= 0 then invalid_arg "Design.naive_divisor: measured_at <= 0";
  let open Ptrng_measure.Thermal_extract in
  let sigma2_n = Spectral.sigma2_n extract.phase ~f0:extract.f0 ~n:measured_at in
  let sigma_naive = sqrt (sigma2_n /. (2.0 *. float_of_int measured_at)) in
  search ~target (fun divisor -> entropy_of_sigma ~extract ~sigma:sigma_naive ~divisor)
