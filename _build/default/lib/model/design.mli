(** Generator design from extracted noise parameters — the engineering
    payoff of the paper's measurement: once sigma_thermal is known, the
    accumulation length (sampler divisor) needed for a target entropy
    per bit follows, *without* crediting the flicker noise.

    AIS31's PTG.2 class asks for > 0.997 bit of Shannon entropy per raw
    bit; {!required_divisor} answers "how slow must I sample?" and
    {!throughput} what that costs in bits/s. *)

val entropy_at : extract:Ptrng_measure.Thermal_extract.t -> divisor:int -> float
(** Shannon entropy per raw bit when sampling every [divisor] periods,
    crediting thermal noise only. *)

val required_divisor :
  ?target:float -> extract:Ptrng_measure.Thermal_extract.t -> unit -> int
(** Smallest divisor reaching [target] entropy per bit (default 0.997,
    the AIS31 PTG.2 bound).  @raise Invalid_argument if [target] is
    outside (0, 1). *)

val throughput : extract:Ptrng_measure.Thermal_extract.t -> divisor:int -> float
(** Raw output bit rate [f0 / divisor], Hz. *)

val naive_divisor :
  ?target:float ->
  extract:Ptrng_measure.Thermal_extract.t ->
  measured_at:int ->
  unit ->
  int
(** The divisor a designer would pick after measuring total jitter over
    [measured_at] periods and assuming independence — i.e. using
    [sigma_naive = sqrt (sigma_N^2 / 2N)].  Always <= {!required_divisor};
    the shortfall factor is the concrete security damage of the paper's
    Section V. *)
