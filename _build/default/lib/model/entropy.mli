(** Entropy-per-bit model of the elementary RO-TRNG digitizer.

    The sampler latches the state of Osc1 (a ~50% duty square wave) at
    an instant whose phase, relative to Osc1, is Gaussian with standard
    deviation [s] radians (the accumulated jitter) around a drifting
    mean [mu].  Expanding the square wave in its Fourier series and
    averaging over the Gaussian gives

    [p(mu) = 1/2 + (2/pi) sum_{k odd} (1/k) exp(-k^2 s^2 / 2) sin(k mu)]

    from which Shannon and min-entropy per raw bit follow.  The
    security story of the paper lives here: [s] must be computed from
    the {e thermal} jitter only — plugging in total measured jitter
    (thermal + flicker) overstates [s], hence overstates entropy. *)

val bit_probability : mu:float -> phase_std:float -> float
(** P(bit = 1) given mean sampling phase [mu] (radians) and phase
    standard deviation [phase_std] (radians).
    @raise Invalid_argument if [phase_std < 0]. *)

val shannon : float -> float
(** Binary entropy of a probability (bits); [shannon 0 = shannon 1 = 0]. *)

val avg_entropy : phase_std:float -> float
(** Shannon entropy per bit averaged over a uniformly drifting mean
    phase — the standard assumption for free-running rings. *)

val min_entropy : phase_std:float -> float
(** Worst-case (min-)entropy: [-log2 p_max], with [p_max] attained at
    mu = pi/2. *)

val entropy_lower_bound : phase_std:float -> float
(** First-Fourier-term closed approximation
    [1 - (4 / (pi^2 ln 2)) exp(-phase_std^2)] (Baudet-style), clamped
    to [0, 1].  It agrees with [avg_entropy] to [O(exp(-2 s^2))] — for
    [phase_std >= 2] the two differ by less than 1e-3 — but is not a
    strict one-sided bound at small diffusion, where it should not be
    trusted anyway. *)

val phase_std_of_accumulated_jitter : sigma_acc:float -> f0:float -> float
(** Convert accumulated timing jitter (seconds, std) into radians of
    Osc1 phase: [2 pi f0 sigma_acc]. *)

val phase_std_thermal : sigma_period:float -> k:int -> f0:float -> float
(** Phase std after accumulating [k] independent periods of thermal
    jitter [sigma_period]: [2 pi f0 sigma_period sqrt k]. *)
