type row = {
  n : int;
  sigma_naive : float;
  entropy_naive : float;
  entropy_true : float;
  overestimate : float;
}

let sigma_naive_of_point (p : Ptrng_measure.Variance_curve.point) =
  sqrt (p.sigma2 /. (2.0 *. float_of_int p.n))

let row_of ~extract ~sampling_periods ~n ~sigma_naive =
  let open Ptrng_measure.Thermal_extract in
  let f0 = extract.f0 in
  let entropy_of sigma_period =
    let phase_std =
      Entropy.phase_std_thermal ~sigma_period ~k:sampling_periods ~f0
    in
    Entropy.avg_entropy ~phase_std
  in
  let entropy_naive = entropy_of sigma_naive in
  let entropy_true = entropy_of extract.sigma_thermal in
  { n; sigma_naive; entropy_naive; entropy_true;
    overestimate = entropy_naive -. entropy_true }

let overestimation_table ~extract ~sampling_periods ~ns =
  if sampling_periods <= 0 then
    invalid_arg "Compare.overestimation_table: sampling_periods <= 0";
  Array.map
    (fun n ->
      let sigma2 =
        Spectral.sigma2_n extract.Ptrng_measure.Thermal_extract.phase
          ~f0:extract.Ptrng_measure.Thermal_extract.f0 ~n
      in
      let sigma_naive = sqrt (sigma2 /. (2.0 *. float_of_int n)) in
      row_of ~extract ~sampling_periods ~n ~sigma_naive)
    ns

let overestimation_table_measured ~extract ~sampling_periods points =
  if sampling_periods <= 0 then
    invalid_arg "Compare.overestimation_table_measured: sampling_periods <= 0";
  Array.map
    (fun (p : Ptrng_measure.Variance_curve.point) ->
      row_of ~extract ~sampling_periods ~n:p.n ~sigma_naive:(sigma_naive_of_point p))
    points
