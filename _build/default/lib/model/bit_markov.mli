(** Markov model of the sampled bit process (Baudet et al. [8] style).

    Between two samples of the eRO-TRNG the relative phase advances by
    a deterministic [drift] (from the frequency mismatch of the rings)
    plus a Gaussian [diffusion] (accumulated jitter).  With a uniform
    stationary phase the bits form a symmetric binary Markov chain; its
    stay probability is

    [p_stay = (1/pi) int_0^pi P(bit = 1 | mu + drift, diffusion) dmu]

    and the entropy *rate* of the chain — the honest entropy per bit,
    accounting for memory — is the binary entropy of [p_stay].

    This is the model whose input jitter the paper corrects: feed it a
    diffusion derived from the total measured jitter and it overstates
    the rate; feed it the thermal-only jitter and it matches the
    simulated generator (verified in the test-suite). *)

type t = {
  drift : float;      (** Mean phase advance per sample, rad (mod 2pi). *)
  diffusion : float;  (** Phase std accumulated per sample, rad. *)
  p_stay : float;     (** P(b_{i+1} = b_i). *)
}

val create : drift:float -> diffusion:float -> t
(** @raise Invalid_argument if [diffusion < 0]. *)

val of_thermal :
  sigma_period:float -> divisor:int -> detuning:float -> f0:float -> t
(** Model for an eRO-TRNG sampling every [divisor] periods: thermal
    diffusion [2 pi f0 sigma sqrt divisor] and drift
    [2 pi divisor detuning] (the relative-frequency offset). *)

val entropy_rate : t -> float
(** Entropy rate of the chain, bits per bit: [h2 (p_stay)]. *)

val phase_conditioned_entropy : t -> float
(** The phase-conditioned entropy H(b_{i+1} | phi_i) for the same
    diffusion ([Entropy.avg_entropy]) — the conservative bound used
    when the adversary is granted the full phase.  Since the previous
    bit is a coarsening of the previous phase,
    [entropy_rate >= phase_conditioned_entropy] always (data
    processing); the gap is what bit-only adversaries lose. *)

val measured_p_stay : bool array -> float
(** Empirical stay frequency of a bit sequence.
    @raise Invalid_argument on fewer than 2 bits. *)
