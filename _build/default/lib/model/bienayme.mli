(** Bienaymé independence analysis (paper Section III-B2).

    If 2N consecutive jitter realizations are mutually independent,
    Bienaymé's formula forces [sigma_N^2 = 2 N sigma^2] — linear in N.
    The contraposition is the paper's weapon: observed super-linear
    growth proves the realizations are {e not} independent. *)

val linear_prediction : sigma2:float -> n:int -> float
(** Eq. 6: the variance an independent-jitter model predicts. *)

val growth_exponent :
  Ptrng_measure.Variance_curve.point array -> float * float
(** Log-log slope of sigma_N^2 vs N over the curve (slope, standard
    error).  1 means Bienaymé linearity (independence consistent);
    values toward 2 mean flicker-dominated, dependent realizations.
    @raise Invalid_argument with fewer than 3 points. *)

val departure_ratio :
  Ptrng_measure.Variance_curve.point array -> (int * float) array
(** For each curve point, [sigma_N^2 / (2 N sigma^2)] where [sigma^2]
    is calibrated on the smallest-N point (which the paper's threshold
    argument treats as effectively thermal).  A ratio drifting above 1
    with N is the dependence signature. *)

val excess_is_significant :
  Ptrng_measure.Variance_curve.point array -> z_threshold:float -> bool
(** True when the largest-N point exceeds its independent-model
    prediction by more than [z_threshold] standard errors. *)
