lib/model/multilevel.ml: Array Bienayme Float List Ptrng_measure Ptrng_osc Spectral
