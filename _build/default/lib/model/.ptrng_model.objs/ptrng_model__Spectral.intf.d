lib/model/spectral.mli: Ptrng_noise
