lib/model/bit_markov.mli:
