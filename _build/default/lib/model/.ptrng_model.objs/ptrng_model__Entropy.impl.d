lib/model/entropy.ml: Float Ptrng_stats
