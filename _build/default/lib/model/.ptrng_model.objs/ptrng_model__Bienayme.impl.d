lib/model/bienayme.ml: Array Float Ptrng_measure Ptrng_stats
