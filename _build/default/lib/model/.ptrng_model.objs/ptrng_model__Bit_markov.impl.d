lib/model/bit_markov.ml: Array Entropy Float
