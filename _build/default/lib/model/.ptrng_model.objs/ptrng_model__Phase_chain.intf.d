lib/model/phase_chain.mli: Ptrng_prng
