lib/model/entropy.mli:
