lib/model/compare.ml: Array Entropy Ptrng_measure Spectral
