lib/model/design.mli: Ptrng_measure
