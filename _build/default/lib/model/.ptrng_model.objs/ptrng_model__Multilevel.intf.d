lib/model/multilevel.mli: Ptrng_measure Ptrng_noise Ptrng_osc Ptrng_prng
