lib/model/compare.mli: Ptrng_measure
