lib/model/bienayme.mli: Ptrng_measure
