lib/model/spectral.ml: Float Ptrng_noise
