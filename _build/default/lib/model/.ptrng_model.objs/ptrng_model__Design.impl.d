lib/model/design.ml: Entropy Ptrng_measure Spectral
