lib/model/phase_chain.ml: Array Entropy Float Ptrng_prng
