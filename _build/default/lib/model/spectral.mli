(** Closed-form and numeric evaluation of the accumulated-jitter
    variance sigma_N^2 from the phase-noise model (paper eqs. 9–11).

    Eq. 9:  [sigma_N^2 = 8/(pi^2 f0^2) int_0^inf S_phi(f) sin^4(pi f N / f0) df]
    Eq. 11: [sigma_N^2 = (2 b_th / f0^3) N + (8 ln2 b_fl / f0^4) N^2]

    The numeric integrator exists to validate the closed form (and the
    appendix's calculus) inside the test-suite, and to evaluate
    arbitrary S_phi shapes the closed form does not cover. *)

val sigma2_n : Ptrng_noise.Psd_model.phase -> f0:float -> n:int -> float
(** Closed form (eq. 11). @raise Invalid_argument if [n <= 0] or
    [f0 <= 0]. *)

val sigma2_n_thermal : Ptrng_noise.Psd_model.phase -> f0:float -> n:int -> float
(** The linear (thermal) term only: [2 b_th N / f0^3]. *)

val sigma2_n_flicker : Ptrng_noise.Psd_model.phase -> f0:float -> n:int -> float
(** The quadratic (flicker) term only: [8 ln2 b_fl N^2 / f0^4]. *)

val sigma2_n_numeric :
  ?rel_tol:float -> Ptrng_noise.Psd_model.phase -> f0:float -> n:int -> float
(** Numeric evaluation of eq. 9 by composite Simpson integration in the
    substituted variable u = f N / f0, with analytic small-u limits and
    tail corrections.  Agrees with {!sigma2_n} to [rel_tol]
    (default 1e-6). *)

val sigma2_n_numeric_of_psd :
  psd:(float -> float) -> f_max:float -> steps:int -> f0:float -> n:int -> float
(** Eq. 9 for an arbitrary phase PSD, integrated on [0, f_max] with
    [steps] Simpson panels — for model shapes beyond thermal+flicker. *)

val scaled : Ptrng_noise.Psd_model.phase -> f0:float -> n:int -> float
(** The Fig. 7 ordinate [f0^2 sigma_N^2]. *)

val sigma2_n_random_walk : hm2:float -> f0:float -> n:int -> float
(** Contribution of random-walk FM (one-sided [S_y = h_{-2}/f^2],
    beyond the paper's model): [(4 pi^2 / 3) h_{-2} N^3 / f0^3] — the
    cubic regime that follows flicker's quadratic one if the oscillator
    also ages. *)
