type t = {
  drift : float;
  diffusion : float;
  p_stay : float;
}

(* p_stay = (1/pi) int_0^pi P(bit = 1 | mu + drift, diffusion) dmu:
   probability that a sample taken in the high half-period is followed
   by another high sample.  Midpoint rule; the integrand is smooth
   except at zero diffusion, where more points cost little. *)
let compute_p_stay ~drift ~diffusion =
  let steps = 1024 in
  let acc = ref 0.0 in
  for i = 0 to steps - 1 do
    let mu = Float.pi *. (float_of_int i +. 0.5) /. float_of_int steps in
    acc :=
      !acc +. Entropy.bit_probability ~mu:(mu +. drift) ~phase_std:diffusion
  done;
  !acc /. float_of_int steps

let create ~drift ~diffusion =
  if diffusion < 0.0 then invalid_arg "Bit_markov.create: negative diffusion";
  { drift; diffusion; p_stay = compute_p_stay ~drift ~diffusion }

let of_thermal ~sigma_period ~divisor ~detuning ~f0 =
  if divisor <= 0 then invalid_arg "Bit_markov.of_thermal: divisor <= 0";
  let diffusion =
    Entropy.phase_std_thermal ~sigma_period ~k:divisor ~f0
  in
  let drift = 2.0 *. Float.pi *. float_of_int divisor *. detuning in
  create ~drift ~diffusion

let entropy_rate t = Entropy.shannon t.p_stay

let phase_conditioned_entropy t = Entropy.avg_entropy ~phase_std:t.diffusion

let measured_p_stay bits =
  let n = Array.length bits in
  if n < 2 then invalid_arg "Bit_markov.measured_p_stay: need >= 2 bits";
  let stays = ref 0 in
  for i = 1 to n - 1 do
    if bits.(i) = bits.(i - 1) then incr stays
  done;
  float_of_int !stays /. float_of_int (n - 1)
