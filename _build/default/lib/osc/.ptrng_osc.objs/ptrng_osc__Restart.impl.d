lib/osc/restart.ml: Array List Oscillator Ptrng_noise Ptrng_prng Ptrng_stats
