lib/osc/pair.ml: Oscillator Ptrng_noise Ptrng_prng
