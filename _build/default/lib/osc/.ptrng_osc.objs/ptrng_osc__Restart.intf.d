lib/osc/restart.mli: Oscillator Ptrng_prng
