lib/osc/oscillator.ml: Array Float Ptrng_noise Ptrng_prng Ptrng_signal
