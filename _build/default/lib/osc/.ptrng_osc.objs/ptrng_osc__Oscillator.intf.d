lib/osc/oscillator.mli: Ptrng_noise Ptrng_prng
