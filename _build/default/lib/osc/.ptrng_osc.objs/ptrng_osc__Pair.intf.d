lib/osc/pair.mli: Oscillator Ptrng_noise Ptrng_prng
