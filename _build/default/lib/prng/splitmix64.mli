(** Splitmix64 pseudo-random generator (Steele, Lea, Flood 2014).

    A tiny, fast, well-distributed 64-bit generator.  Its main role in
    this library is to expand a single user seed into the larger state
    vectors required by {!Xoshiro256} and {!Pcg32}, which is the seeding
    procedure recommended by the xoshiro authors. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] builds a generator from any 64-bit seed (including 0). *)

val next : t -> int64
(** [next t] returns 64 fresh pseudo-random bits and advances the state. *)

val next_float : t -> float
(** [next_float t] returns a uniform float in [0, 1) using the top 53
    bits of {!next}. *)
