lib/prng/rng.mli:
