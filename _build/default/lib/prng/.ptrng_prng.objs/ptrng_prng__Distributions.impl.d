lib/prng/distributions.ml: Array Float Gaussian Rng
