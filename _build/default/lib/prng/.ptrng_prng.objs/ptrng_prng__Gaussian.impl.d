lib/prng/gaussian.ml: Array Float Int64 Rng
