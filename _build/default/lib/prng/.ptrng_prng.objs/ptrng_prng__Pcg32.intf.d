lib/prng/pcg32.mli:
