lib/prng/gaussian.mli: Rng
