lib/prng/distributions.mli: Rng
