lib/prng/pcg32.ml: Int32 Int64
