lib/prng/rng.ml: Array Int64 Pcg32 Splitmix64 Xoshiro256
