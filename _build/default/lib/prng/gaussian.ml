type method_ = Ziggurat | Box_muller | Polar

type t = {
  method_ : method_;
  rng : Rng.t;
  mutable spare : float;
  mutable has_spare : bool;
}

let pdf x = exp (-0.5 *. x *. x) /. sqrt (2.0 *. Float.pi)

(* Ziggurat tables (Marsaglia & Tsang 2000, 128 layers).

   f(x) = exp(-x^2/2) with abscissas x.(0) > x.(1) = r > ... > x.(128) = 0
   and heights y.(i) = f(x.(i)).  Layer i is the horizontal band between
   y.(i) and y.(i+1); every layer has area v; layer 0 is the base strip
   plus the tail beyond r.  The recurrence closes for the magic pair
   (r, v) below: it ends with y.(128) ~ 1 and x.(128) ~ 0. *)
let zig_r = 3.442619855899
let zig_v = 9.91256303526217e-3

let zig_x, zig_y =
  let n = 128 in
  let x = Array.make (n + 1) 0.0 and y = Array.make (n + 1) 0.0 in
  let f v = exp (-0.5 *. v *. v) in
  x.(1) <- zig_r;
  y.(1) <- f zig_r;
  x.(0) <- zig_v /. y.(1);
  y.(0) <- 0.0;
  for i = 1 to n - 1 do
    y.(i + 1) <- y.(i) +. (zig_v /. x.(i));
    x.(i + 1) <- (if y.(i + 1) >= 1.0 then 0.0 else sqrt (-2.0 *. log y.(i + 1)))
  done;
  (x, y)

let create ?(method_ = Ziggurat) rng = { method_; rng; spare = 0.0; has_spare = false }

let draw_tail rng =
  (* Marsaglia's exponential-rejection sampler for the normal tail x > r. *)
  let rec loop () =
    let x = -.log (Rng.float_pos rng) /. zig_r in
    let y = -.log (Rng.float_pos rng) in
    if y +. y >= x *. x then zig_r +. x else loop ()
  in
  loop ()

let rec draw_ziggurat rng =
  let i = Int64.to_int (Int64.logand (Rng.bits64 rng) 127L) in
  let u = (2.0 *. Rng.float rng) -. 1.0 in
  let z = u *. zig_x.(i) in
  let az = Float.abs z in
  if az < zig_x.(i + 1) then z
  else if i = 0 then
    let tail = draw_tail rng in
    if u < 0.0 then -.tail else tail
  else
    let y = zig_y.(i) +. (Rng.float rng *. (zig_y.(i + 1) -. zig_y.(i))) in
    if y < exp (-0.5 *. z *. z) then z else draw_ziggurat rng

let draw t =
  match t.method_ with
  | Ziggurat -> draw_ziggurat t.rng
  | Box_muller ->
    if t.has_spare then begin
      t.has_spare <- false;
      t.spare
    end
    else begin
      let u1 = Rng.float_pos t.rng and u2 = Rng.float t.rng in
      let radius = sqrt (-2.0 *. log u1) and angle = 2.0 *. Float.pi *. u2 in
      t.spare <- radius *. sin angle;
      t.has_spare <- true;
      radius *. cos angle
    end
  | Polar ->
    if t.has_spare then begin
      t.has_spare <- false;
      t.spare
    end
    else begin
      let rec loop () =
        let v1 = (2.0 *. Rng.float t.rng) -. 1.0
        and v2 = (2.0 *. Rng.float t.rng) -. 1.0 in
        let s = (v1 *. v1) +. (v2 *. v2) in
        if s >= 1.0 || s = 0.0 then loop ()
        else begin
          let scale = sqrt (-2.0 *. log s /. s) in
          t.spare <- v2 *. scale;
          t.has_spare <- true;
          v1 *. scale
        end
      in
      loop ()
    end

let draw_scaled t ~mu ~sigma = mu +. (sigma *. draw t)

let fill t a =
  for i = 0 to Array.length a - 1 do
    a.(i) <- draw t
  done
