(** Xoshiro256++ pseudo-random generator (Blackman, Vigna 2019).

    256-bit state, period 2^256 - 1, excellent statistical quality; the
    default generator of this library. *)

type t
(** Mutable generator state. *)

val create : seed:int64 -> t
(** [create ~seed] seeds the 256-bit state by running {!Splitmix64} on
    [seed], as recommended by the algorithm authors. *)

val of_state : int64 array -> t
(** [of_state s] uses the four words of [s] directly.
    @raise Invalid_argument if [Array.length s <> 4] or all words are 0. *)

val next : t -> int64
(** [next t] returns 64 fresh pseudo-random bits. *)

val jump : t -> unit
(** [jump t] advances the state by 2^128 steps, used to split one stream
    into non-overlapping substreams for independent simulations. *)
