(** PCG32 pseudo-random generator (O'Neill 2014, PCG-XSH-RR 64/32).

    64-bit LCG state with a permuted 32-bit output.  Provided as an
    alternative family to {!Xoshiro256} so statistical results can be
    cross-checked against a structurally different generator. *)

type t
(** Mutable generator state. *)

val create : seed:int64 -> ?stream:int64 -> unit -> t
(** [create ~seed ?stream ()] seeds the generator.  [stream] selects one
    of 2^63 independent sequences (default 0). *)

val next : t -> int32
(** [next t] returns 32 fresh pseudo-random bits. *)

val next64 : t -> int64
(** [next64 t] concatenates two {!next} outputs into 64 bits. *)
