(** Samplers for common distributions, built on {!Rng} and {!Gaussian}.

    Used by workload generators and by failure-injection tests (e.g.
    non-Gaussian jitter ablations). *)

val exponential : Rng.t -> rate:float -> float
(** Exponential with density [rate * exp (-rate*x)].
    @raise Invalid_argument if [rate <= 0]. *)

val laplace : Rng.t -> mu:float -> b:float -> float
(** Laplace (double exponential) with location [mu] and scale [b]. *)

val cauchy : Rng.t -> x0:float -> gamma:float -> float
(** Cauchy with location [x0] and scale [gamma]; a heavy-tail stressor
    (no finite variance). *)

val bernoulli : Rng.t -> p:float -> bool
(** [true] with probability [p]. @raise Invalid_argument unless
    [0 <= p <= 1]. *)

val binomial : Rng.t -> n:int -> p:float -> int
(** Number of successes in [n] Bernoulli([p]) trials.  Exact inversion
    for small [n*p], otherwise a normal approximation with continuity
    correction clamped to [0, n]. *)

val poisson : Rng.t -> lambda:float -> int
(** Poisson counts; Knuth multiplication for [lambda <= 30], normal
    approximation beyond. @raise Invalid_argument if [lambda <= 0]. *)

val geometric : Rng.t -> p:float -> int
(** Number of failures before the first success (support 0, 1, ...). *)

val uniform_array : Rng.t -> int -> float array
(** [uniform_array rng n] is [n] fresh uniforms in [0,1). *)
