type t = { mutable state : int64; inc : int64 }

let multiplier = 6364136223846793005L

let step t = t.state <- Int64.add (Int64.mul t.state multiplier) t.inc

let create ~seed ?(stream = 0L) () =
  (* The increment must be odd; the standard initseq trick. *)
  let inc = Int64.logor (Int64.shift_left stream 1) 1L in
  let t = { state = 0L; inc } in
  step t;
  t.state <- Int64.add t.state seed;
  step t;
  t

let ror32 x r =
  let r = r land 31 in
  if r = 0 then x
  else
    Int32.logor (Int32.shift_right_logical x r) (Int32.shift_left x (32 - r))

let next t =
  let old = t.state in
  step t;
  let xorshifted =
    Int64.to_int32
      (Int64.logand
         (Int64.shift_right_logical (Int64.logxor (Int64.shift_right_logical old 18) old) 27)
         0xFFFFFFFFL)
  in
  let rot = Int64.to_int (Int64.shift_right_logical old 59) in
  ror32 xorshifted rot

let next64 t =
  let hi = Int64.of_int32 (next t) in
  let lo = Int64.of_int32 (next t) in
  Int64.logor
    (Int64.shift_left hi 32)
    (Int64.logand lo 0xFFFFFFFFL)
