let exponential rng ~rate =
  if rate <= 0.0 then invalid_arg "Distributions.exponential: rate <= 0";
  -.log (Rng.float_pos rng) /. rate

let laplace rng ~mu ~b =
  if b <= 0.0 then invalid_arg "Distributions.laplace: b <= 0";
  let u = Rng.float rng -. 0.5 in
  mu -. (b *. Float.of_int (compare u 0.0) *. log (1.0 -. (2.0 *. Float.abs u)))

let cauchy rng ~x0 ~gamma =
  if gamma <= 0.0 then invalid_arg "Distributions.cauchy: gamma <= 0";
  x0 +. (gamma *. tan (Float.pi *. (Rng.float rng -. 0.5)))

let bernoulli rng ~p =
  if p < 0.0 || p > 1.0 then invalid_arg "Distributions.bernoulli: p outside [0,1]";
  Rng.float rng < p

let binomial rng ~n ~p =
  if n < 0 then invalid_arg "Distributions.binomial: n < 0";
  if p < 0.0 || p > 1.0 then invalid_arg "Distributions.binomial: p outside [0,1]";
  if n = 0 || p = 0.0 then 0
  else if p = 1.0 then n
  else if float_of_int n *. p <= 30.0 || float_of_int n *. (1.0 -. p) <= 30.0 then begin
    (* Direct simulation: exact and fast enough in the thin regime. *)
    let count = ref 0 in
    for _ = 1 to n do
      if Rng.float rng < p then incr count
    done;
    !count
  end
  else begin
    let mean = float_of_int n *. p in
    let sd = sqrt (mean *. (1.0 -. p)) in
    let g = Gaussian.create rng in
    let k = int_of_float (Float.round (Gaussian.draw_scaled g ~mu:mean ~sigma:sd)) in
    max 0 (min n k)
  end

let poisson rng ~lambda =
  if lambda <= 0.0 then invalid_arg "Distributions.poisson: lambda <= 0";
  if lambda <= 30.0 then begin
    let threshold = exp (-.lambda) in
    let rec loop k prod =
      let prod = prod *. Rng.float_pos rng in
      if prod <= threshold then k else loop (k + 1) prod
    in
    loop 0 1.0
  end
  else begin
    let g = Gaussian.create rng in
    let k = int_of_float (Float.round (Gaussian.draw_scaled g ~mu:lambda ~sigma:(sqrt lambda))) in
    max 0 k
  end

let geometric rng ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Distributions.geometric: p outside (0,1]";
  if p = 1.0 then 0
  else
    let u = Rng.float_pos rng in
    int_of_float (Float.floor (log u /. log (1.0 -. p)))

let uniform_array rng n =
  Array.init n (fun _ -> Rng.float rng)
