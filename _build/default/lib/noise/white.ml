let variance_of_level ~level ~fs =
  if level < 0.0 then invalid_arg "White.variance_of_level: negative level";
  if fs <= 0.0 then invalid_arg "White.variance_of_level: fs <= 0";
  level *. fs /. 2.0

let level_of_variance ~variance ~fs =
  if variance < 0.0 then invalid_arg "White.level_of_variance: negative variance";
  if fs <= 0.0 then invalid_arg "White.level_of_variance: fs <= 0";
  2.0 *. variance /. fs

let generate g ~level ~fs n =
  let sigma = sqrt (variance_of_level ~level ~fs) in
  Array.init n (fun _ -> sigma *. Ptrng_prng.Gaussian.draw g)
