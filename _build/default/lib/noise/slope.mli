(** Log-log slope estimation on spectra — identifies which power law a
    measured PSD follows (thermal f^-2 vs flicker f^-3 regions of
    S_phi, or f^0 vs f^-1 of S_y). *)

val log_log_slope :
  Ptrng_signal.Psd.spectrum -> f_lo:float -> f_hi:float -> float * float
(** [log_log_slope s ~f_lo ~f_hi] fits [log10 psd = a + slope log10 f]
    over the band and returns (slope, standard error).
    @raise Invalid_argument if fewer than 3 usable bins fall in band. *)
