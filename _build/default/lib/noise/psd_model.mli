(** Power-law spectral models.

    Two representations are linked here:

    - the paper's phase-noise form (eq. 10, two-sided convention):
      [S_phi(f) = b_fl / f^3 + b_th / f^2];
    - the time-and-frequency community's one-sided fractional-frequency
      form: [S_y(f) = h2 f^2 + h1 f + h0 + h_{-1}/f + h_{-2}/f^2].

    For an oscillator of nominal frequency [f0] they are related by
    [S_phi(f) = f0^2 S_y(f) / f^2] (same sidedness); with the paper
    using two-sided phase PSDs, the one-sided S_y levels carry an extra
    factor of two:
    [h0 = 2 b_th / f0^2] and [h_{-1} = 2 b_fl / f0^2]. *)

type phase = { b_th : float; b_fl : float }
(** Two-sided phase-noise coefficients (the paper's b_th, b_fl). *)

type frac_freq = { h0 : float; hm1 : float; hm2 : float }
(** One-sided fractional-frequency levels: white FM [h0], flicker FM
    [h_{-1}], random-walk FM [h_{-2}] (the last is 0 in the paper's
    model but supported for ablations). *)

val phase_psd : phase -> float -> float
(** [phase_psd p f] evaluates [b_fl/f^3 + b_th/f^2].
    @raise Invalid_argument if [f <= 0]. *)

val frac_freq_psd : frac_freq -> float -> float
(** One-sided [S_y(f)]. @raise Invalid_argument if [f <= 0]. *)

val frac_freq_of_phase : f0:float -> phase -> frac_freq
(** The calibration identity above ([hm2 = 0]). *)

val phase_of_frac_freq : f0:float -> frac_freq -> phase
(** Inverse mapping (ignores [hm2]). *)

val thermal_period_jitter_var : f0:float -> phase -> float
(** Per-period jitter variance from the thermal term only:
    [b_th / f0^3] (paper Section IV-A). *)

val corner_frequency : phase -> float
(** Frequency where flicker and thermal phase noise are equal:
    [b_fl / b_th]. @raise Invalid_argument if [b_th <= 0]. *)
