let log_log_slope (s : Ptrng_signal.Psd.spectrum) ~f_lo ~f_hi =
  let xs = ref [] and ys = ref [] in
  Array.iteri
    (fun k f ->
      if f >= f_lo && f <= f_hi && f > 0.0 && s.psd.(k) > 0.0 then begin
        xs := log10 f :: !xs;
        ys := log10 s.psd.(k) :: !ys
      end)
    s.freqs;
  let x = Array.of_list (List.rev !xs) and y = Array.of_list (List.rev !ys) in
  if Array.length x < 3 then invalid_arg "Slope.log_log_slope: fewer than 3 bins in band";
  let fit = Ptrng_stats.Regression.linear ~x ~y in
  (fit.slope, fit.slope_se)
