lib/noise/slope.ml: Array List Ptrng_signal Ptrng_stats
