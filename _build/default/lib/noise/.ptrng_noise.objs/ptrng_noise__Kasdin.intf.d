lib/noise/kasdin.mli: Ptrng_prng
