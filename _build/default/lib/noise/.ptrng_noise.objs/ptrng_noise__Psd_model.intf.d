lib/noise/psd_model.mli:
