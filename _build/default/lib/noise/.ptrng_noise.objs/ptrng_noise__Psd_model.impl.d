lib/noise/psd_model.ml:
