lib/noise/kasdin.ml: Array Float Ptrng_prng Ptrng_signal
