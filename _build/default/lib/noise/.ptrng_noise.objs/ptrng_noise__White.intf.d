lib/noise/white.mli: Ptrng_prng
