lib/noise/voss.ml: Array Ptrng_prng
