lib/noise/voss.mli: Ptrng_prng
