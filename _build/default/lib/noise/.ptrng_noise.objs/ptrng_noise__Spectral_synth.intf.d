lib/noise/spectral_synth.mli: Psd_model Ptrng_prng
