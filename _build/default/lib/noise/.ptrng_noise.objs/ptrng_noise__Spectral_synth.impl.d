lib/noise/spectral_synth.ml: Array Psd_model Ptrng_prng Ptrng_signal White
