lib/noise/white.ml: Array Ptrng_prng
