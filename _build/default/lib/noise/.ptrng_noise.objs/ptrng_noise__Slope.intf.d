lib/noise/slope.mli: Ptrng_signal
