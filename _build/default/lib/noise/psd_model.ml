type phase = { b_th : float; b_fl : float }
type frac_freq = { h0 : float; hm1 : float; hm2 : float }

let check_f f = if f <= 0.0 then invalid_arg "Psd_model: f <= 0"

let phase_psd p f =
  check_f f;
  (p.b_fl /. (f *. f *. f)) +. (p.b_th /. (f *. f))

let frac_freq_psd y f =
  check_f f;
  y.h0 +. (y.hm1 /. f) +. (y.hm2 /. (f *. f))

let frac_freq_of_phase ~f0 p =
  if f0 <= 0.0 then invalid_arg "Psd_model.frac_freq_of_phase: f0 <= 0";
  let f02 = f0 *. f0 in
  { h0 = 2.0 *. p.b_th /. f02; hm1 = 2.0 *. p.b_fl /. f02; hm2 = 0.0 }

let phase_of_frac_freq ~f0 y =
  if f0 <= 0.0 then invalid_arg "Psd_model.phase_of_frac_freq: f0 <= 0";
  let f02 = f0 *. f0 in
  { b_th = y.h0 *. f02 /. 2.0; b_fl = y.hm1 *. f02 /. 2.0 }

let thermal_period_jitter_var ~f0 p =
  if f0 <= 0.0 then invalid_arg "Psd_model.thermal_period_jitter_var: f0 <= 0";
  p.b_th /. (f0 *. f0 *. f0)

let corner_frequency p =
  if p.b_th <= 0.0 then invalid_arg "Psd_model.corner_frequency: b_th <= 0";
  p.b_fl /. p.b_th
