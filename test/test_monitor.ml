(* The live observatory: windows, control charts, the streaming r_N
   estimator against the paper's closed form, verdict/health JSON
   round-trips, and an HTTP smoke test on an ephemeral port. *)

module M = Ptrng_monitor
module Tm = Ptrng_telemetry

let paper_f0 = Ptrng_osc.Pair.paper_f0

(* ------------------------------------------------------------------ *)
(* Window                                                              *)
(* ------------------------------------------------------------------ *)

let window_tests =
  [
    Testkit.case "mean/variance match the closed form" (fun () ->
        let w = M.Window.create ~capacity:8 in
        List.iter (M.Window.push w) [ 1.0; 2.0; 3.0; 4.0 ];
        Alcotest.(check int) "count" 4 (M.Window.count w);
        Testkit.check_abs ~tol:1e-12 "mean" 2.5 (M.Window.mean w);
        Testkit.check_abs ~tol:1e-12 "variance" (5.0 /. 3.0) (M.Window.variance w);
        Testkit.check_abs ~tol:1e-12 "last" 4.0 (M.Window.last w));
    Testkit.case "eviction keeps the newest samples in order" (fun () ->
        let w = M.Window.create ~capacity:3 in
        List.iter (M.Window.push w) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
        Alcotest.(check int) "count" 3 (M.Window.count w);
        Alcotest.(check int) "lifetime total" 5 (M.Window.total w);
        Testkit.check_true "oldest first"
          (M.Window.to_array w = [| 3.0; 4.0; 5.0 |]));
    Testkit.case "non-finite samples are dropped" (fun () ->
        let w = M.Window.create ~capacity:4 in
        List.iter (M.Window.push w) [ 1.0; nan; infinity; 2.0 ];
        Alcotest.(check int) "count" 2 (M.Window.count w);
        Testkit.check_abs ~tol:1e-12 "mean" 1.5 (M.Window.mean w));
    Testkit.case "wraparound exactly at capacity" (fun () ->
        (* The push that lands precisely on the capacity boundary must
           still retain everything; only the next one evicts. *)
        let w = M.Window.create ~capacity:4 in
        List.iter (M.Window.push w) [ 1.0; 2.0; 3.0; 4.0 ];
        Alcotest.(check int) "full at capacity" 4 (M.Window.count w);
        Testkit.check_true "all retained in order"
          (M.Window.to_array w = [| 1.0; 2.0; 3.0; 4.0 |]);
        Testkit.check_abs ~tol:1e-12 "mean over the full ring" 2.5
          (M.Window.mean w);
        M.Window.push w 5.0;
        Alcotest.(check int) "count pinned at capacity" 4 (M.Window.count w);
        Alcotest.(check int) "lifetime total keeps counting" 5
          (M.Window.total w);
        Testkit.check_true "oldest evicted on the wrap"
          (M.Window.to_array w = [| 2.0; 3.0; 4.0; 5.0 |]);
        Testkit.check_abs ~tol:1e-12 "last survives the wrap" 5.0
          (M.Window.last w));
  ]

(* ------------------------------------------------------------------ *)
(* Control charts                                                      *)
(* ------------------------------------------------------------------ *)

let chart_tests =
  [
    Testkit.case "EWMA stays quiet in control, flags a burst" (fun () ->
        let e = M.Control_chart.ewma_create ~mean:0.0 ~sigma:1.0 () in
        for _ = 1 to 200 do
          Testkit.check_false "in control" (M.Control_chart.ewma_feed e 0.0)
        done;
        Testkit.check_false "never crossed" (M.Control_chart.ewma_crossed e);
        Testkit.check_true "burst alarms" (M.Control_chart.ewma_feed e 30.0);
        Testkit.check_true "crossing is sticky"
          (M.Control_chart.ewma_crossed e));
    Testkit.case "EWMA recursion matches the textbook update" (fun () ->
        let e =
          M.Control_chart.ewma_create ~lambda:0.25 ~mean:1.0 ~sigma:1.0 ()
        in
        ignore (M.Control_chart.ewma_feed e 3.0);
        (* z1 = (1 - 0.25) * 1.0 + 0.25 * 3.0 *)
        Testkit.check_abs ~tol:1e-12 "one step" 1.5 (M.Control_chart.ewma_value e);
        ignore (M.Control_chart.ewma_feed e 3.0);
        Testkit.check_abs ~tol:1e-12 "two steps" 1.875
          (M.Control_chart.ewma_value e));
    Testkit.case "CUSUM accumulates a sustained small shift" (fun () ->
        let c = M.Control_chart.cusum_create ~k:0.5 ~h:5.0 ~mean:0.0 ~sigma:1.0 () in
        (* A one-sigma shift: each step adds 1 - 0.5 to S+; the
           decision interval h = 5 is reached on the tenth step. *)
        let alarm_step = ref 0 in
        for i = 1 to 20 do
          if M.Control_chart.cusum_feed c 1.0 && !alarm_step = 0 then
            alarm_step := i
        done;
        Alcotest.(check int) "detected on step 11" 11 !alarm_step;
        Testkit.check_true "sticky" (M.Control_chart.cusum_crossed c));
    Testkit.case "CUSUM ignores in-control noise, reset clears it" (fun () ->
        let c = M.Control_chart.cusum_create ~mean:0.0 ~sigma:1.0 () in
        let rng = Testkit.rng () in
        for _ = 1 to 500 do
          ignore
            (M.Control_chart.cusum_feed c
               (Ptrng_prng.Rng.float rng -. 0.5))
        done;
        Testkit.check_false "no alarm on noise" (M.Control_chart.cusum_crossed c);
        ignore (M.Control_chart.cusum_feed c 50.0);
        Testkit.check_true "burst alarms" (M.Control_chart.cusum_crossed c);
        M.Control_chart.cusum_reset c;
        Testkit.check_false "reset clears" (M.Control_chart.cusum_crossed c);
        Testkit.check_abs ~tol:1e-12 "sums zeroed" 0.0 (M.Control_chart.cusum_pos c));
    Testkit.case "EWMA reset, clear_crossed and decay" (fun () ->
        let e = M.Control_chart.ewma_create ~mean:2.0 ~sigma:1.0 () in
        ignore (M.Control_chart.ewma_feed e 50.0);
        Testkit.check_true "crossed" (M.Control_chart.ewma_crossed e);
        let v = M.Control_chart.ewma_value e in
        M.Control_chart.ewma_clear_crossed e;
        Testkit.check_false "flag cleared" (M.Control_chart.ewma_crossed e);
        Testkit.check_abs ~tol:1e-12 "statistic kept" v
          (M.Control_chart.ewma_value e);
        M.Control_chart.ewma_decay e ~keep:0.5;
        (* Departure from the in-control mean halves. *)
        Testkit.check_abs ~tol:1e-12 "decayed halfway"
          (2.0 +. (0.5 *. (v -. 2.0)))
          (M.Control_chart.ewma_value e);
        M.Control_chart.ewma_reset e;
        Testkit.check_abs ~tol:1e-12 "reset to mean" 2.0
          (M.Control_chart.ewma_value e);
        Alcotest.check_raises "decay rejects keep > 1"
          (Invalid_argument "Control_chart.ewma_decay: keep outside [0,1]")
          (fun () -> M.Control_chart.ewma_decay e ~keep:1.5));
    Testkit.case "CUSUM clear_crossed and decay" (fun () ->
        let c = M.Control_chart.cusum_create ~mean:0.0 ~sigma:1.0 () in
        ignore (M.Control_chart.cusum_feed c 50.0);
        Testkit.check_true "crossed" (M.Control_chart.cusum_crossed c);
        let s = M.Control_chart.cusum_pos c in
        M.Control_chart.cusum_clear_crossed c;
        Testkit.check_false "flag cleared" (M.Control_chart.cusum_crossed c);
        Testkit.check_abs ~tol:1e-12 "sum kept" s (M.Control_chart.cusum_pos c);
        M.Control_chart.cusum_decay c ~keep:0.25;
        Testkit.check_abs ~tol:1e-12 "sum quartered" (0.25 *. s)
          (M.Control_chart.cusum_pos c);
        Alcotest.check_raises "decay rejects negative keep"
          (Invalid_argument "Control_chart.cusum_decay: keep outside [0,1]")
          (fun () -> M.Control_chart.cusum_decay c ~keep:(-0.1)));
  ]

(* ------------------------------------------------------------------ *)
(* Streaming r_N estimator                                             *)
(* ------------------------------------------------------------------ *)

let gaussian rng =
  (* Box-Muller is enough for test data. *)
  let u1 = Ptrng_prng.Rng.float_pos rng and u2 = Ptrng_prng.Rng.float rng in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let rn_tests =
  [
    Testkit.case "second-difference realizations match hand computation" (fun () ->
        let e =
          M.Rn_estimator.create ~ns:[| 2 |] ~realizations:4 ~min_realizations:2
            ~f0:1.0 ()
        in
        (* Two disjoint realizations over 2N = 4 samples each:
           (3+4)-(1+2) = 4 and (9+16)-(5+7) = 13. *)
        List.iter (M.Rn_estimator.feed e) [ 1.0; 2.0; 3.0; 4.0; 5.0; 7.0; 9.0; 16.0 ];
        let pts = M.Rn_estimator.points e in
        Alcotest.(check int) "one grid point" 1 (Array.length pts);
        Alcotest.(check int) "two realizations" 2 pts.(0).neff;
        (* Sample variance of {4, 13}. *)
        Testkit.check_abs ~tol:1e-9 "sigma2" 40.5 pts.(0).sigma2);
    Testkit.case "white jitter reproduces sigma_N^2 = 2 N sigma^2" (fun () ->
        let sigma = 1.5e-12 in
        let ns = [| 4; 8; 16; 64 |] in
        let e =
          M.Rn_estimator.create ~ns ~realizations:512 ~min_realizations:64
            ~f0:paper_f0 ()
        in
        let rng = Testkit.rng ~seed:42L () in
        for _ = 1 to 1 lsl 17 do
          M.Rn_estimator.feed e (sigma *. gaussian rng)
        done;
        let pts = M.Rn_estimator.points e in
        Alcotest.(check int) "all grid points ready" 4 (Array.length pts);
        Array.iter
          (fun (p : Ptrng_measure.Variance_curve.point) ->
            Testkit.check_rel ~tol:0.3
              (Printf.sprintf "sigma2 at N=%d" p.n)
              (2.0 *. float_of_int p.n *. sigma *. sigma)
              p.sigma2)
          pts;
        match M.Rn_estimator.estimate e with
        | None -> Alcotest.fail "estimate not ready"
        | Some est ->
          (* Thermal-only truth: a = 2 sigma^2 f0^2, negligible b. *)
          Testkit.check_rel ~tol:0.15 "fitted a"
            (2.0 *. sigma *. sigma *. paper_f0 *. paper_f0)
            est.fit.a;
          Testkit.check_true "r_8 near 1"
            (M.Rn_estimator.r_of_fit est.fit 8 > 0.95));
    Testkit.case "r_of_fit matches the paper's closed form k/(k+N)" (fun () ->
        let a = 5.36e-6 in
        let k = 5354.0 in
        let fit =
          { Ptrng_measure.Fit.a; b = a /. k; c = 0.0; d = 0.0; a_se = 0.0;
            b_se = 0.0; c_se = nan; d_se = nan; chi2 = 0.0; dof = 0;
            f0 = paper_f0 }
        in
        List.iter
          (fun n ->
            Testkit.check_rel ~tol:1e-9
              (Printf.sprintf "r at N=%d" n)
              (k /. (k +. float_of_int n))
              (M.Rn_estimator.r_of_fit fit n))
          [ 1; 10; 100; 281; 1000; 5354 ];
        (* The paper's 95% independence threshold. *)
        Testkit.check_in_range "r_281 straddles 95%" ~lo:0.95 ~hi:0.9502
          (M.Rn_estimator.r_of_fit fit 281);
        Testkit.check_true "r_282 below"
          (M.Rn_estimator.r_of_fit fit 282 < 0.95));
  ]

(* ------------------------------------------------------------------ *)
(* Verdict                                                             *)
(* ------------------------------------------------------------------ *)

let verdict_tests =
  [
    Testkit.case "aggregation: empty ok, failing escalates" (fun () ->
        Testkit.check_true "empty is ok"
          ((M.Verdict.make [] ~failing:(fun _ -> true)).status = M.Verdict.Ok);
        let r = { M.Verdict.code = "x"; detail = "d" } in
        Testkit.check_true "reason degrades"
          ((M.Verdict.make [ r ] ~failing:(fun _ -> false)).status
          = M.Verdict.Degraded);
        Testkit.check_true "failing predicate escalates"
          ((M.Verdict.make [ r ] ~failing:(fun _ -> true)).status
          = M.Verdict.Failing));
    Testkit.case "JSON round-trip" (fun () ->
        let v =
          M.Verdict.make
            [
              { M.Verdict.code = "independence"; detail = "r low" };
              { M.Verdict.code = "cusum"; detail = "S+ = 7" };
            ]
            ~failing:(fun r -> r.M.Verdict.code = "cusum")
        in
        match M.Verdict.of_json (Tm.Json.of_string
                                   (Tm.Json.to_string (M.Verdict.to_json v)))
        with
        | Some v' -> Testkit.check_true "identical" (v = v')
        | None -> Alcotest.fail "round-trip lost the verdict");
  ]

(* ------------------------------------------------------------------ *)
(* Monitor end to end                                                  *)
(* ------------------------------------------------------------------ *)

(* Small grid so the tests converge in thousands of samples. *)
let test_config () =
  {
    (M.Monitor.default_config ~f0:paper_f0) with
    ns = [| 4; 8; 16; 64 |];
    realizations = 256;
    min_realizations = 32;
    judge_n = 8;
    fit_stride = 4096;
    h_claim = 0.9;
    bit_window = 64;
    ais31_block = 128;
    history = 16;
  }

let feed_white mon rng ~samples ~sigma =
  for _ = 1 to samples do
    M.Monitor.feed_jitter mon (sigma *. gaussian rng)
  done

let feed_fair_bits mon rng ~bits =
  for _ = 1 to bits do
    M.Monitor.feed_bit mon (Ptrng_prng.Rng.bool rng)
  done

let monitor_tests =
  [
    Testkit.case "healthy streams end with verdict ok" (fun () ->
        let mon = M.Monitor.create (test_config ()) in
        let rng = Testkit.rng ~seed:7L () in
        feed_white mon rng ~samples:(1 lsl 16) ~sigma:1e-12;
        feed_fair_bits mon rng ~bits:4096;
        let s = M.Monitor.snapshot mon in
        Testkit.check_true "ready" s.ready;
        Testkit.check_true "independent regime" (s.r_judge >= 0.95);
        Alcotest.(check int) "windows closed" 64 s.windows;
        Testkit.check_true "entropy healthy" (s.min_entropy > 0.8);
        Testkit.check_false "no chart alarm" (s.ewma_crossed || s.cusum_crossed);
        Testkit.check_true "verdict ok" (s.verdict.status = M.Verdict.Ok));
    Testkit.case "alarm burst crosses the CUSUM and degrades the verdict"
      (fun () ->
        let mon = M.Monitor.create (test_config ()) in
        let rng = Testkit.rng ~seed:8L () in
        feed_white mon rng ~samples:(1 lsl 16) ~sigma:1e-12;
        feed_fair_bits mon rng ~bits:2048;
        Testkit.check_true "healthy before the burst"
          ((M.Monitor.snapshot mon).verdict.status = M.Verdict.Ok);
        (* A stuck-at-one source: RCT/APT and the online monobit all
           fire, the per-window alarm counts shift, the CUSUM crosses. *)
        for _ = 1 to 4096 do
          M.Monitor.feed_bit mon true
        done;
        let s = M.Monitor.snapshot mon in
        Testkit.check_true "rct fired" (s.rct_alarms > 0);
        Testkit.check_true "apt fired" (s.apt_alarms > 0);
        Testkit.check_true "monobit fired" (s.ais31_alarms > 0);
        Testkit.check_true "cusum crossed" (s.cusum_crossed);
        Testkit.check_true "verdict flipped"
          (s.verdict.status <> M.Verdict.Ok);
        Testkit.check_true "cusum reason present"
          (List.exists
             (fun (r : M.Verdict.reason) -> r.code = "cusum")
             s.verdict.reasons));
    Testkit.slow_case "flicker-dominated source degrades via independence"
      (fun () ->
        (* The paper's attack scenario: quench the thermal noise so the
           flicker term dominates, k = a/b collapses from 5354 to a few
           hundred, and the live r_N falls out of the regime. *)
        let cfg =
          {
            (M.Monitor.default_config ~f0:paper_f0) with
            ns = [| 8; 32; 128; 256 |];
            realizations = 128;
            min_realizations = 16;
            judge_n = 64;
            fit_stride = 16384;
          }
        in
        let mon = M.Monitor.create cfg in
        let pair =
          Ptrng_trng.Attack.thermal_quench ~factor:0.05
            (Ptrng_osc.Pair.paper_pair ())
        in
        let rng = Ptrng_prng.Rng.create ~seed:2014L () in
        let chunk = 1 lsl 16 in
        for _ = 1 to 5 do
          let p1, p2 = Ptrng_osc.Pair.simulate rng pair ~n:chunk in
          M.Monitor.feed_jitter_array mon
            (Array.init chunk (fun i -> p1.(i) -. p2.(i)))
        done;
        let s = M.Monitor.snapshot mon in
        Testkit.check_true "ready" s.ready;
        Testkit.check_true "r collapsed" (s.r_judge < 0.95);
        Testkit.check_true "degraded" (s.verdict.status = M.Verdict.Degraded);
        Testkit.check_true "independence reason"
          (List.exists
             (fun (r : M.Verdict.reason) -> r.code = "independence")
             s.verdict.reasons));
    Testkit.case "fail-safe recovery walks the verdict back to ok" (fun () ->
        let mon =
          M.Monitor.create { (test_config ()) with recovery_windows = 2 }
        in
        let rng = Testkit.rng ~seed:21L () in
        feed_white mon rng ~samples:(1 lsl 16) ~sigma:1e-12;
        feed_fair_bits mon rng ~bits:2048;
        Testkit.check_true "healthy before the burst"
          ((M.Monitor.snapshot mon).verdict.status = M.Verdict.Ok);
        for _ = 1 to 1024 do
          M.Monitor.feed_bit mon true
        done;
        let s = M.Monitor.snapshot mon in
        Testkit.check_true "burst degrades" (s.verdict.status <> M.Verdict.Ok);
        Testkit.check_true "cusum latched" s.cusum_crossed;
        (* A clean tail: the de-escalation streaks forgive the charts
           one level at a time until the verdict is ok again. *)
        feed_fair_bits mon rng ~bits:4096;
        let s = M.Monitor.snapshot mon in
        Testkit.check_true "verdict recovered" (s.verdict.status = M.Verdict.Ok);
        Testkit.check_true "de-escalations granted" (s.recoveries >= 1);
        Testkit.check_false "charts forgiven"
          (s.ewma_crossed || s.cusum_crossed));
    Testkit.case "recovery_windows = 0 disables de-escalation" (fun () ->
        let mon =
          M.Monitor.create { (test_config ()) with recovery_windows = 0 }
        in
        let rng = Testkit.rng ~seed:22L () in
        feed_white mon rng ~samples:(1 lsl 16) ~sigma:1e-12;
        feed_fair_bits mon rng ~bits:1024;
        for _ = 1 to 1024 do
          M.Monitor.feed_bit mon true
        done;
        feed_fair_bits mon rng ~bits:4096;
        let s = M.Monitor.snapshot mon in
        Testkit.check_true "still latched" (s.cusum_crossed);
        Testkit.check_true "never forgiven" (s.recoveries = 0);
        Testkit.check_true "verdict stays non-ok"
          (s.verdict.status <> M.Verdict.Ok));
    Testkit.case "refit lands exactly on the fit_stride boundary" (fun () ->
        (* test_config refits every 4096 jitter samples.  A feed count
           one short of the stride must not refit; the sample landing
           precisely on it must. *)
        let mon = M.Monitor.create (test_config ()) in
        let rng = Testkit.rng ~seed:23L () in
        feed_white mon rng ~samples:8192 ~sigma:1e-12;
        let refits () =
          Array.length (M.Monitor.snapshot mon).M.Monitor.recent_r
        in
        let base = refits () in
        Testkit.check_true "estimator ready after warm-up" (base >= 1);
        feed_white mon rng ~samples:4095 ~sigma:1e-12;
        Alcotest.(check int) "one short of the stride: no refit" base
          (refits ());
        feed_white mon rng ~samples:1 ~sigma:1e-12;
        Alcotest.(check int) "landing on the stride refits" (base + 1)
          (refits ());
        feed_white mon rng ~samples:4096 ~sigma:1e-12;
        Alcotest.(check int) "next full stride refits again" (base + 2)
          (refits ()));
    Testkit.case "health JSON round-trips and carries the verdict" (fun () ->
        let mon = M.Monitor.create (test_config ()) in
        let rng = Testkit.rng ~seed:9L () in
        feed_white mon rng ~samples:(1 lsl 15) ~sigma:1e-12;
        feed_fair_bits mon rng ~bits:1024;
        let j =
          Tm.Json.of_string (Tm.Json.to_string (M.Monitor.health_json mon))
        in
        (match Tm.Json.member "schema" j with
        | Some (Tm.Json.String "ptrng-monitor-health/1") -> ()
        | _ -> Alcotest.fail "schema tag lost");
        (match M.Verdict.of_json j with
        | Some v ->
          Testkit.check_true "verdict parses back"
            (v.status = (M.Monitor.snapshot mon).verdict.status)
        | None -> Alcotest.fail "verdict not parseable from /health");
        (match Tm.Json.member "independence" j with
        | Some ind -> (
          match Tm.Json.member "r_n" ind with
          | Some r ->
            Testkit.check_true "r_n serialized"
              (Option.is_some (Tm.Json.to_float r))
          | None -> Alcotest.fail "no r_n field")
        | None -> Alcotest.fail "no independence object"));
  ]

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

let fr_prov =
  {
    M.Flight_recorder.kind = "test";
    workload = "unit";
    seed = 1;
    divisor = 10;
    chunk = 16;
    flicker_block = 16;
  }

let fr_config ?(post_windows = 0) ?(max_incidents = 2) () =
  {
    M.Flight_recorder.jitter_capacity = 4;
    bit_capacity = 4;
    window_capacity = 4;
    post_windows;
    max_incidents;
  }

let fr_trigger ?(at_period = 0) r =
  M.Flight_recorder.note_trigger r ~direction:"escalation" ~severity_from:0
    ~severity_to:1 ~at_period ~at_bit:0 ~at_window:0
    ~reasons:[ ("independence", "test trigger") ]

let recorder_tests =
  [
    Testkit.case "capacities are validated" (fun () ->
        Alcotest.check_raises "zero jitter ring"
          (Invalid_argument "Flight_recorder.create: jitter_capacity < 1")
          (fun () ->
            ignore
              (M.Flight_recorder.create
                 ~config:{ (fr_config ()) with jitter_capacity = 0 }
                 ~provenance:fr_prov ()));
        Alcotest.check_raises "negative post windows"
          (Invalid_argument "Flight_recorder.create: post_windows < 0")
          (fun () ->
            ignore
              (M.Flight_recorder.create
                 ~config:{ (fr_config ()) with post_windows = -1 }
                 ~provenance:fr_prov ())));
    Testkit.case "jitter ring wraps; freeze keeps the newest with its start"
      (fun () ->
        let r =
          M.Flight_recorder.create ~config:(fr_config ()) ~provenance:fr_prov ()
        in
        for i = 0 to 9 do
          M.Flight_recorder.record_jitter r (float_of_int i)
        done;
        M.Flight_recorder.record_bit r true;
        M.Flight_recorder.record_bit r false;
        fr_trigger ~at_period:10 r;
        Alcotest.(check int) "post_windows = 0 freezes immediately" 1
          (M.Flight_recorder.incident_count r);
        let inc = Option.get (M.Flight_recorder.incident r 0) in
        let j = M.Flight_recorder.incident_json r inc in
        let capture = Option.get (Tm.Json.member "capture" j) in
        (match Tm.Json.member "jitter_start" capture with
        | Some (Tm.Json.Int 6) -> ()
        | _ -> Alcotest.fail "jitter_start should be total - capacity = 6");
        (match Tm.Json.member "jitter" capture with
        | Some (Tm.Json.List l) ->
          Testkit.check_true "newest four samples in order"
            (List.map Tm.Json.to_float l
            = [ Some 6.0; Some 7.0; Some 8.0; Some 9.0 ])
        | _ -> Alcotest.fail "no jitter payload");
        (match Tm.Json.member "bits" capture with
        | Some (Tm.Json.String "10") -> ()
        | _ -> Alcotest.fail "bit ring should freeze to \"10\""));
    Testkit.case "post_windows countdown, re-arm suppression, max_incidents"
      (fun () ->
        let r =
          M.Flight_recorder.create
            ~config:(fr_config ~post_windows:2 ())
            ~provenance:fr_prov ()
        in
        fr_trigger r;
        Alcotest.(check int) "armed, not yet frozen" 0
          (M.Flight_recorder.incident_count r);
        fr_trigger r (* ignored while armed *);
        M.Flight_recorder.tick_window r;
        Alcotest.(check int) "one window of post context" 0
          (M.Flight_recorder.incident_count r);
        M.Flight_recorder.tick_window r;
        Alcotest.(check int) "frozen after post_windows ticks" 1
          (M.Flight_recorder.incident_count r);
        fr_trigger r;
        M.Flight_recorder.tick_window r;
        M.Flight_recorder.tick_window r;
        Alcotest.(check int) "second incident frozen" 2
          (M.Flight_recorder.incident_count r);
        fr_trigger r (* over max_incidents = 2: dropped *);
        M.Flight_recorder.tick_window r;
        M.Flight_recorder.tick_window r;
        Alcotest.(check int) "retention capped at max_incidents" 2
          (M.Flight_recorder.incident_count r);
        Testkit.check_true "ids are stable"
          (M.Flight_recorder.incident_id
             (Option.get (M.Flight_recorder.incident r 1))
          = 1));
    Testkit.case "bundle JSON reparses to identical bytes" (fun () ->
        let r =
          M.Flight_recorder.create ~config:(fr_config ()) ~provenance:fr_prov ()
        in
        M.Flight_recorder.set_monitor_config r
          (M.Monitor.config_json (test_config ()));
        for i = 0 to 7 do
          M.Flight_recorder.record_jitter r (float_of_int i *. 0.125)
        done;
        M.Flight_recorder.record_window r ~index:0 ~alarms:1 ~min_entropy:0.93
          ~ewma:0.5 ~cusum_pos:1.25 ~r_n:0.97 ~severity:0;
        M.Flight_recorder.record_transition r ~at_window:0 ~at_period:80
          ~at_bit:8 ~severity_from:0 ~severity_to:1;
        fr_trigger ~at_period:80 r;
        let inc = Option.get (M.Flight_recorder.incident r 0) in
        let s =
          Tm.Json.to_string (M.Flight_recorder.incident_json r inc)
        in
        Alcotest.(check string) "parse . print is the identity" s
          (Tm.Json.to_string (Tm.Json.of_string s));
        (match Tm.Json.member "schema" (Tm.Json.of_string s) with
        | Some (Tm.Json.String "ptrng-incident/1") -> ()
        | _ -> Alcotest.fail "schema tag missing");
        let summary = M.Flight_recorder.summary_json r inc in
        match Tm.Json.member "schema" summary with
        | Some (Tm.Json.String "ptrng-incident-summary/1") -> ()
        | _ -> Alcotest.fail "summary schema tag missing");
  ]

(* ------------------------------------------------------------------ *)
(* HTTP endpoint smoke                                                 *)
(* ------------------------------------------------------------------ *)

let http_request port request =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      ignore (Unix.write_substring sock request 0 (String.length request));
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        let n = Unix.read sock chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
        end
      in
      (try drain () with Unix.Unix_error _ -> ());
      Buffer.contents buf)

let http_get port path =
  http_request port (Printf.sprintf "GET %s HTTP/1.1\r\nHost: t\r\n\r\n" path)

let body_of response =
  match String.index_opt response '{' with
  | Some i -> String.sub response i (String.length response - i)
  | None -> Alcotest.fail "no JSON body in response"

let http_tests =
  [
    Testkit.case "GET /health and /metrics on an ephemeral port" (fun () ->
        Tm.Registry.enable ();
        let mon = M.Monitor.create (test_config ()) in
        let rng = Testkit.rng ~seed:10L () in
        feed_white mon rng ~samples:(1 lsl 15) ~sigma:1e-12;
        feed_fair_bits mon rng ~bits:1024;
        let srv = M.Monitor.serve ~port:0 mon in
        Fun.protect
          ~finally:(fun () ->
            M.Http.stop srv;
            M.Http.stop srv (* idempotent *);
            Tm.Registry.disable ())
          (fun () ->
            let port = M.Http.port srv in
            Testkit.check_true "ephemeral port assigned" (port > 0);
            let health = http_get port "/health" in
            Testkit.check_true "health 200"
              (Testkit.contains ~needle:"HTTP/1.1 200 OK" health);
            Testkit.check_true "health is json"
              (Testkit.contains ~needle:"application/json" health);
            (match
               M.Verdict.of_json (Tm.Json.of_string (body_of health))
             with
            | Some _ -> ()
            | None -> Alcotest.fail "/health body does not parse");
            let metrics = http_get port "/metrics" in
            Testkit.check_true "metrics 200"
              (Testkit.contains ~needle:"HTTP/1.1 200 OK" metrics);
            Testkit.check_true "prometheus content type"
              (Testkit.contains ~needle:"text/plain; version=0.0.4" metrics);
            Testkit.check_true "monitor gauges exposed"
              (Testkit.contains ~needle:"ptrng_monitor_r_n" metrics);
            let missing = http_get port "/nope" in
            Testkit.check_true "unknown path 404"
              (Testkit.contains ~needle:"HTTP/1.1 404" missing);
            let post =
              http_request port "POST /health HTTP/1.1\r\nHost: t\r\n\r\n"
            in
            Testkit.check_true "non-GET 405"
              (Testkit.contains ~needle:"HTTP/1.1 405" post)));
    Testkit.case "GET / index and the /incidents routes" (fun () ->
        let mon = M.Monitor.create (test_config ()) in
        let srv = M.Monitor.serve ~port:0 mon in
        Fun.protect
          ~finally:(fun () -> M.Http.stop srv)
          (fun () ->
            let port = M.Http.port srv in
            let index = http_get port "/" in
            Testkit.check_true "index 200"
              (Testkit.contains ~needle:"HTTP/1.1 200 OK" index);
            List.iter
              (fun needle ->
                Testkit.check_true
                  (Printf.sprintf "index lists %s" needle)
                  (Testkit.contains ~needle index))
              [ "/metrics"; "/health"; "/incidents"; "/incidents/<n>" ];
            (* No recorder attached: the index is well-formed and empty,
               bundle lookups are 404. *)
            let empty = http_get port "/incidents" in
            Testkit.check_true "incidents 200"
              (Testkit.contains ~needle:"HTTP/1.1 200 OK" empty);
            Testkit.check_true "incidents schema"
              (Testkit.contains ~needle:"ptrng-incidents/1" empty);
            Testkit.check_true "empty count"
              (Testkit.contains ~needle:"\"count\":0" empty);
            Testkit.check_true "missing bundle 404"
              (Testkit.contains ~needle:"HTTP/1.1 404"
                 (http_get port "/incidents/0"));
            Testkit.check_true "negative id 404"
              (Testkit.contains ~needle:"HTTP/1.1 404"
                 (http_get port "/incidents/-1"));
            Testkit.check_true "non-numeric id 404"
              (Testkit.contains ~needle:"HTTP/1.1 404"
                 (http_get port "/incidents/zero"));
            (* With a recorder holding one frozen incident, both the
               listing and the bundle route serve it. *)
            let r =
              M.Flight_recorder.create ~config:(fr_config ())
                ~provenance:fr_prov ()
            in
            M.Monitor.attach_recorder mon r;
            fr_trigger r;
            let idx = http_get port "/incidents" in
            Testkit.check_true "count reflects the freeze"
              (Testkit.contains ~needle:"\"count\":1" idx);
            Testkit.check_true "summary schema in the listing"
              (Testkit.contains ~needle:"ptrng-incident-summary/1" idx);
            let bundle = http_get port "/incidents/0" in
            Testkit.check_true "bundle 200"
              (Testkit.contains ~needle:"HTTP/1.1 200 OK" bundle);
            Testkit.check_true "bundle schema"
              (Testkit.contains ~needle:"ptrng-incident/1" bundle)));
    Testkit.case "hardened edges: 400, 431 and 408" (fun () ->
        let srv =
          M.Http.start ~read_timeout:0.3
            ~handler:(fun path ->
              if path = "/ok" then Some (M.Http.response "fine") else None)
            ()
        in
        Fun.protect
          ~finally:(fun () -> M.Http.stop srv)
          (fun () ->
            let port = M.Http.port srv in
            let malformed = http_request port "BOGUS\r\n\r\n" in
            Testkit.check_true "malformed line 400"
              (Testkit.contains ~needle:"HTTP/1.1 400" malformed);
            let huge =
              http_request port
                ("GET /" ^ String.make 5000 'a' ^ " HTTP/1.1\r\n\r\n")
            in
            Testkit.check_true "oversized line 431"
              (Testkit.contains ~needle:"HTTP/1.1 431" huge);
            (* A stalled client: request line never terminated, the
               server must answer 408 after read_timeout instead of
               hanging its only listener. *)
            let stalled = http_request port "GET /ok" in
            Testkit.check_true "stalled client 408"
              (Testkit.contains ~needle:"HTTP/1.1 408" stalled);
            (* And the server is still alive for the next client. *)
            let after = http_get port "/ok" in
            Testkit.check_true "listener survives"
              (Testkit.contains ~needle:"HTTP/1.1 200 OK" after)));
  ]

let () =
  Alcotest.run "ptrng_monitor"
    [
      ("window", window_tests);
      ("control_chart", chart_tests);
      ("rn_estimator", rn_tests);
      ("verdict", verdict_tests);
      ("monitor", monitor_tests);
      ("flight_recorder", recorder_tests);
      ("http", http_tests);
    ]
