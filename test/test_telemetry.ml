open Ptrng_telemetry

(* The registry and span stack are process-global; give every test a
   clean slate so ordering never matters. *)
let fresh () =
  Registry.clear ();
  Registry.disable ();
  Span.reset ();
  Series.reset ();
  Runtime_profile.reset ()

let exact_quantile sorted q =
  let n = Array.length sorted in
  let idx = int_of_float (Float.round (q *. float_of_int (n - 1))) in
  sorted.(idx)

let histogram_tests =
  [
    Testkit.case "bucket bounds form the geometric grid" (fun () ->
        fresh ();
        let h = Histogram.create ~lo:1.0 ~hi:1000.0 ~buckets_per_decade:1 () in
        let bounds = Histogram.bucket_bounds h in
        Alcotest.(check int) "bound count" 4 (Array.length bounds);
        Array.iteri
          (fun i b -> Testkit.check_abs ~tol:1e-9 "bound" (10.0 ** float_of_int i) b)
          bounds);
    Testkit.case "observations land in the right buckets" (fun () ->
        fresh ();
        let h = Histogram.create ~lo:1.0 ~hi:1000.0 ~buckets_per_decade:1 () in
        List.iter (Histogram.observe h) [ 0.5; 1.0; 1.5; 10.0; 10.1; 5000.0; nan ];
        (* nan is dropped; 5000 overflows into the +inf bucket. *)
        Alcotest.(check int) "count" 6 (Histogram.count h);
        Alcotest.(check (array int)) "per-bucket"
          [| 2; 2; 1; 0; 1 |]
          (Histogram.bucket_counts h));
    Testkit.case "count/sum/mean/min/max are exact" (fun () ->
        fresh ();
        let h = Histogram.create ~lo:1e-3 ~hi:1e3 () in
        List.iter (Histogram.observe h) [ 3.0; 1.0; 2.0 ];
        Alcotest.(check int) "count" 3 (Histogram.count h);
        Testkit.check_abs ~tol:1e-12 "sum" 6.0 (Histogram.sum h);
        Testkit.check_abs ~tol:1e-12 "mean" 2.0 (Histogram.mean h);
        Testkit.check_abs ~tol:1e-12 "min" 1.0 (Histogram.min_value h);
        Testkit.check_abs ~tol:1e-12 "max" 3.0 (Histogram.max_value h));
    Testkit.case "quantiles match exact within one bucket ratio" (fun () ->
        fresh ();
        let bpd = 20 in
        let h = Histogram.create ~lo:1e-2 ~hi:1e4 ~buckets_per_decade:bpd () in
        let n = 2000 in
        (* Deterministic log-spaced sample spanning three decades. *)
        let values =
          Array.init n (fun i -> 10.0 ** (3.0 *. float_of_int i /. float_of_int (n - 1)))
        in
        Array.iter (Histogram.observe h) values;
        let sorted = Array.copy values in
        Array.sort compare sorted;
        let ratio = 10.0 ** (1.0 /. float_of_int bpd) in
        List.iter
          (fun q ->
            let est = Histogram.quantile h q in
            let exact = exact_quantile sorted q in
            Testkit.check_true
              (Printf.sprintf "q=%.2f est=%g exact=%g" q est exact)
              (est >= exact /. ratio && est <= exact *. ratio))
          [ 0.1; 0.5; 0.9; 0.99 ]);
    Testkit.case "quantile extremes return the exact min and max" (fun () ->
        fresh ();
        let h = Histogram.create ~lo:1.0 ~hi:1000.0 () in
        List.iter (Histogram.observe h) [ 3.7; 42.0; 512.5 ];
        (* Not bucket midpoints: q=0 and q=1 must be the observed extremes. *)
        Testkit.check_abs ~tol:0.0 "q=0 is min" 3.7 (Histogram.quantile h 0.0);
        Testkit.check_abs ~tol:0.0 "q=1 is max" 512.5 (Histogram.quantile h 1.0);
        Histogram.observe h 0.001;
        Histogram.observe h 123456.0;
        (* Even out-of-range observations (underflow/overflow buckets). *)
        Testkit.check_abs ~tol:0.0 "q=0 tracks underflow" 0.001
          (Histogram.quantile h 0.0);
        Testkit.check_abs ~tol:0.0 "q=1 tracks overflow" 123456.0
          (Histogram.quantile h 1.0);
        let empty = Histogram.create () in
        Testkit.check_true "empty q=0 is nan"
          (Float.is_nan (Histogram.quantile empty 0.0));
        Testkit.check_true "empty q=1 is nan"
          (Float.is_nan (Histogram.quantile empty 1.0)));
    Testkit.case "reset empties without changing the grid" (fun () ->
        fresh ();
        let h = Histogram.create () in
        Histogram.observe h 1.0;
        Histogram.reset h;
        Alcotest.(check int) "count" 0 (Histogram.count h);
        Testkit.check_true "mean is nan" (Float.is_nan (Histogram.mean h)));
  ]

let span_tests =
  [
    Testkit.case "nesting builds a tree, children in start order" (fun () ->
        fresh ();
        Registry.enable ();
        Span.with_ ~name:"outer" (fun () ->
            Span.set_attr "k" (Json.Int 7);
            Span.with_ ~name:"first" (fun () -> ());
            Span.with_ ~name:"second" (fun () ->
                Span.with_ ~name:"inner" (fun () -> ())));
        (match Span.roots () with
        | [ root ] ->
          Alcotest.(check string) "root name" "outer" root.Span.name;
          Alcotest.(check (list string)) "child order" [ "first"; "second" ]
            (List.map (fun (c : Span.t) -> c.Span.name) root.Span.children);
          Testkit.check_true "attr recorded"
            (List.assoc_opt "k" root.Span.attrs = Some (Json.Int 7));
          Testkit.check_true "root wall covers children"
            (root.Span.wall_s
            >= List.fold_left
                 (fun a (c : Span.t) -> a +. c.Span.wall_s)
                 0.0 root.Span.children);
          (match root.Span.children with
          | [ _; second ] ->
            Alcotest.(check (list string)) "grandchild" [ "inner" ]
              (List.map (fun (c : Span.t) -> c.Span.name) second.Span.children)
          | _ -> Alcotest.fail "expected two children")
        | roots -> Alcotest.fail (Printf.sprintf "expected 1 root, got %d" (List.length roots)));
        Registry.disable ());
    Testkit.case "roots complete in completion order" (fun () ->
        fresh ();
        Registry.enable ();
        Span.with_ ~name:"a" (fun () -> ());
        Span.with_ ~name:"b" (fun () -> ());
        Alcotest.(check (list string)) "order" [ "a"; "b" ]
          (List.map (fun (s : Span.t) -> s.Span.name) (Span.roots ()));
        Registry.disable ());
    Testkit.case "a raising span is still closed and recorded" (fun () ->
        fresh ();
        Registry.enable ();
        (try Span.with_ ~name:"boom" (fun () -> failwith "x") with Failure _ -> ());
        Alcotest.(check (list string)) "recorded" [ "boom" ]
          (List.map (fun (s : Span.t) -> s.Span.name) (Span.roots ()));
        (* The stack must be balanced: a new span is a fresh root. *)
        Span.with_ ~name:"after" (fun () -> ());
        Alcotest.(check int) "two roots" 2 (List.length (Span.roots ()));
        Registry.disable ());
  ]

(* Serialization is lossy in exactly one way: non-finite floats become
   JSON null (the format has no NaN/Infinity).  Everything else — raw
   byte strings, control characters, extreme exponents, deep nesting —
   must survive a to_string/of_string round trip bit-exactly. *)
let rec json_normalize = function
  | Json.Float f when not (Float.is_finite f) -> Json.Null
  | Json.List l -> Json.List (List.map json_normalize l)
  | Json.Obj kvs -> Json.Obj (List.map (fun (k, v) -> (k, json_normalize v)) kvs)
  | j -> j

let json_gen =
  let open QCheck2.Gen in
  let str =
    oneof
      [
        small_string ~gen:printable;
        small_string ~gen:char;
        oneofl [ ""; "\xce\xbb \xe2\x88\x9e \xc2\xb5s"; "tab\there\nand \"quotes\"" ];
      ]
  in
  let scalar =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) int;
        map (fun f -> Json.Float f) float;
        map
          (fun f -> Json.Float f)
          (oneofl
             [ Float.nan; Float.infinity; Float.neg_infinity; -0.0; 1e308; 5.36e-6 ]);
        map (fun s -> Json.String s) str;
      ]
  in
  let tree =
    fix
      (fun self n ->
        if n = 0 then scalar
        else
          frequency
            [
              (3, scalar);
              (1, map (fun l -> Json.List l) (list_size (0 -- 4) (self (n / 2))));
              ( 1,
                map
                  (fun kvs -> Json.Obj kvs)
                  (list_size (0 -- 4) (pair str (self (n / 2)))) );
            ])
      3
  in
  tree

let json_props =
  [
    Testkit.qcheck "compact serialization round-trips" json_gen (fun j ->
        Json.of_string (Json.to_string j) = json_normalize j);
    Testkit.qcheck "pretty serialization round-trips" json_gen (fun j ->
        Json.of_string (Json.to_string_pretty j) = json_normalize j);
  ]

let prometheus_golden =
  String.concat "\n"
    [
      "# HELP t_demo_total demo counter";
      "# TYPE t_demo_total counter";
      "t_demo_total 3";
      "# HELP t_demo_ratio demo gauge";
      "# TYPE t_demo_ratio gauge";
      "t_demo_ratio 2.5";
      "# HELP t_demo_size demo histogram";
      "# TYPE t_demo_size histogram";
      "t_demo_size_bucket{le=\"1\"} 0";
      "t_demo_size_bucket{le=\"10\"} 1";
      "t_demo_size_bucket{le=\"100\"} 2";
      "t_demo_size_bucket{le=\"+Inf\"} 3";
      "t_demo_size_sum 555";
      "t_demo_size_count 3";
      "";
    ]

let sink_tests =
  [
    Testkit.case "prometheus exposition matches golden" (fun () ->
        fresh ();
        Registry.enable ();
        let c = Registry.Counter.v ~help:"demo counter" "t_demo_total" in
        let g = Registry.Gauge.v ~help:"demo gauge" "t_demo_ratio" in
        let h =
          Registry.Hist.v ~help:"demo histogram" ~lo:1.0 ~hi:100.0
            ~buckets_per_decade:1 "t_demo_size"
        in
        Registry.Counter.incr ~by:3 c;
        Registry.Gauge.set g 2.5;
        List.iter (Registry.Hist.observe h) [ 5.0; 50.0; 500.0 ];
        Alcotest.(check string) "exposition" prometheus_golden (Sink.to_prometheus ());
        Registry.disable ());
    Testkit.case "help text is escaped in the exposition" (fun () ->
        fresh ();
        Registry.enable ();
        let c =
          Registry.Counter.v ~help:"line one\nback\\slash\rdone" "t_esc_total"
        in
        Registry.Counter.incr c;
        let out = Sink.to_prometheus () in
        Testkit.check_true "breaks and backslashes escaped"
          (Testkit.contains
             ~needle:"# HELP t_esc_total line one\\nback\\\\slash\\ndone" out);
        Testkit.check_true "sample line intact"
          (Testkit.contains ~needle:"t_esc_total 1" out);
        Registry.disable ());
    Testkit.case "metric-name grammar and sanitization" (fun () ->
        Testkit.check_true "scheme name" (Sink.valid_metric_name "ptrng_ok:name_2");
        Testkit.check_false "space" (Sink.valid_metric_name "bad name");
        Testkit.check_false "leading digit" (Sink.valid_metric_name "2bad");
        Testkit.check_false "empty" (Sink.valid_metric_name "");
        Alcotest.(check string) "valid passes through" "good_name"
          (Sink.sanitize_metric_name "good_name");
        Alcotest.(check string) "invalid chars mapped" "bad_name_x"
          (Sink.sanitize_metric_name "bad-name.x");
        Alcotest.(check string) "leading digit prefixed" "_2fast"
          (Sink.sanitize_metric_name "2fast");
        Testkit.check_true "sanitized is always valid"
          (Sink.valid_metric_name (Sink.sanitize_metric_name "9 weird\nname")));
    Testkit.case "invalid registered name is sanitized, not dropped" (fun () ->
        fresh ();
        Registry.enable ();
        let c = Registry.Counter.v ~help:"h" "bad metric-name" in
        Registry.Counter.incr c;
        let out = Sink.to_prometheus () in
        Testkit.check_true "sanitized sample served"
          (Testkit.contains ~needle:"bad_metric_name 1" out);
        Testkit.check_false "raw name absent"
          (Testkit.contains ~needle:"bad metric-name 1" out);
        Registry.disable ());
    Testkit.case "snapshot json round-trips through the parser" (fun () ->
        fresh ();
        Registry.enable ();
        let c = Registry.Counter.v "t_rt_total" in
        Registry.Counter.incr ~by:42 c;
        let j = Json.of_string (Json.to_string (Sink.snapshot_json ())) in
        (match Json.member "schema" j with
        | Some (Json.String "ptrng-telemetry/1") -> ()
        | _ -> Alcotest.fail "schema tag lost");
        let metrics = Option.get (Json.member "metrics" j) in
        Testkit.check_true "counter survives"
          (Json.member "t_rt_total" metrics = Some (Json.Int 42));
        Registry.disable ());
  ]

(* Helpers over the exported trace. *)
let trace_events j =
  match Json.member "traceEvents" j with
  | Some (Json.List l) -> l
  | _ -> Alcotest.fail "no traceEvents list"

let events_with_ph ph evs =
  List.filter (fun e -> Json.member "ph" e = Some (Json.String ph)) evs

let event_name e =
  match Json.member "name" e with Some (Json.String s) -> s | _ -> "?"

let float_field key e =
  match Option.bind (Json.member key e) Json.to_float with
  | Some f -> f
  | None -> Alcotest.fail (Printf.sprintf "event lacks numeric %s" key)

let trace_tests =
  [
    Testkit.case "perfetto export is parseable and structurally sound" (fun () ->
        fresh ();
        Registry.enable ();
        Span.with_ ~name:"outer" (fun () ->
            Runtime_profile.sample_now ();
            Span.with_ ~name:"inner" (fun () ->
                ignore (Sys.opaque_identity (Array.make 4096 0.0)));
            Runtime_profile.sample_now ());
        let g = Registry.Gauge.v ~help:"trace test gauge" "t_trace_gauge" in
        Registry.Gauge.set g 3.25;
        let path = Filename.temp_file "ptrng_trace" ".json" in
        Trace_export.write path;
        let j =
          Json.of_string (In_channel.with_open_text path In_channel.input_all)
        in
        Sys.remove path;
        (match Json.member "displayTimeUnit" j with
        | Some (Json.String "ms") -> ()
        | _ -> Alcotest.fail "displayTimeUnit is not ms");
        (match Option.bind (Json.member "otherData" j) (Json.member "schema") with
        | Some (Json.String "ptrng-trace/1") -> ()
        | _ -> Alcotest.fail "schema tag missing");
        let evs = trace_events j in
        let xs = events_with_ph "X" evs in
        Alcotest.(check (list string)) "span events in tree order"
          [ "outer"; "inner" ] (List.map event_name xs);
        (match xs with
        | [ outer; inner ] ->
          let ts e = float_field "ts" e and dur e = float_field "dur" e in
          Testkit.check_true "ts starts near origin" (ts outer >= 0.0);
          Testkit.check_true "inner starts inside outer" (ts inner >= ts outer);
          Testkit.check_true "inner ends inside outer"
            (ts inner +. dur inner <= ts outer +. dur outer +. 1e-3);
          Alcotest.(check int) "same domain track"
            (int_of_float (float_field "tid" outer))
            (int_of_float (float_field "tid" inner));
          Testkit.check_true "alloc recorded in args"
            (match
               Option.bind (Json.member "args" inner)
                 (Json.member "alloc_bytes")
             with
            | Some a -> Option.get (Json.to_float a) > 0.0
            | None -> false)
        | _ -> Alcotest.fail "expected exactly two X events");
        let cs = events_with_ph "C" evs in
        let track name =
          List.filter (fun e -> event_name e = name) cs |> List.length
        in
        Alcotest.(check int) "two gc minor samples" 2 (track "gc minor collections");
        Alcotest.(check int) "two gc heap samples" 2 (track "gc heap MiB");
        Alcotest.(check int) "gauge emitted once" 1 (track "t_trace_gauge");
        let ms = events_with_ph "M" evs in
        Testkit.check_true "process_name metadata"
          (List.exists (fun e -> event_name e = "process_name") ms);
        Testkit.check_true "thread_name metadata"
          (List.exists (fun e -> event_name e = "thread_name") ms);
        Registry.disable ());
    Testkit.case "runtime profiler background sampler records a series" (fun () ->
        fresh ();
        Registry.enable ();
        Runtime_profile.start ~interval_s:0.001 ();
        Testkit.check_true "running" (Runtime_profile.running ());
        (* Idempotent: a second start must not spawn a second sampler. *)
        Runtime_profile.start ~interval_s:0.001 ();
        Unix.sleepf 0.02;
        Runtime_profile.stop ();
        Testkit.check_false "stopped" (Runtime_profile.running ());
        let samples = Runtime_profile.samples () in
        Testkit.check_true "at least start+closing samples"
          (List.length samples >= 2);
        let rec chronological = function
          | (a : Runtime_profile.sample) :: (b :: _ as rest) ->
            a.Runtime_profile.t_s <= b.Runtime_profile.t_s && chronological rest
          | _ -> true
        in
        Testkit.check_true "samples are chronological" (chronological samples);
        List.iter
          (fun (s : Runtime_profile.sample) ->
            Testkit.check_true "gc counters sane"
              (s.Runtime_profile.minor_collections >= 0
              && s.Runtime_profile.heap_words > 0))
          samples;
        Registry.disable ());
  ]

let noop_tests =
  [
    Testkit.case "disabled instrumentation records nothing" (fun () ->
        fresh ();
        let c = Registry.Counter.v "t_off_total" in
        let h = Registry.Hist.v "t_off_seconds" in
        Registry.Counter.incr ~by:1000 c;
        Registry.Hist.observe h 1.0;
        let r = Registry.Hist.time h (fun () -> 9) in
        Alcotest.(check int) "time passes result through" 9 r;
        Span.with_ ~name:"off" (fun () -> ());
        Runtime_profile.sample_now ();
        Testkit.check_true "no runtime samples" (Runtime_profile.samples () = []);
        Alcotest.(check int) "counter untouched" 0 (Registry.Counter.value c);
        Alcotest.(check int) "histogram untouched" 0
          (Histogram.count (Registry.Hist.histogram h));
        Testkit.check_true "no spans" (Span.roots () = []));
    Testkit.case "no metric leaks into any sink while disabled" (fun () ->
        fresh ();
        let c = Registry.Counter.v "t_leak_total" in
        Registry.Counter.incr c;
        Testkit.check_true "all is empty" (Registry.all () = []);
        Alcotest.(check string) "prometheus empty" "" (Sink.to_prometheus ());
        Alcotest.(check string) "human empty" "" (Sink.to_human ());
        (match Json.member "metrics" (Sink.snapshot_json ()) with
        | Some (Json.Obj []) -> ()
        | _ -> Alcotest.fail "snapshot leaked metrics");
        (* Flipping telemetry on later must not resurrect dropped events. *)
        Registry.enable ();
        Alcotest.(check int) "nothing retroactive" 0 (Registry.Counter.value c);
        Registry.disable ());
    Testkit.case "registration is idempotent by name" (fun () ->
        fresh ();
        Registry.enable ();
        let a = Registry.Counter.v "t_same_total" in
        let b = Registry.Counter.v "t_same_total" in
        Registry.Counter.incr a;
        Registry.Counter.incr b;
        Alcotest.(check int) "shared handle" 2 (Registry.Counter.value a);
        Alcotest.(check int) "single registration" 1 (List.length (Registry.all ()));
        Registry.disable ());
  ]

let series_tests =
  [
    Testkit.case "records are timestamped and ordered oldest first" (fun () ->
        fresh ();
        Registry.enable ();
        let s = Series.v ~help:"demo" "t_series_demo" in
        Series.record_at s ~t_s:1.0 10.0;
        Series.record_at s ~t_s:2.0 20.0;
        (match Series.points s with
        | [ (1.0, 10.0); (2.0, 20.0) ] -> ()
        | _ -> Alcotest.fail "points lost or reordered");
        Testkit.check_true "listed in all ()"
          (List.mem_assoc "t_series_demo" (Series.all ()));
        Registry.disable ());
    Testkit.case "disabled or non-finite records are dropped" (fun () ->
        fresh ();
        let s = Series.v "t_series_off" in
        Series.record_at s ~t_s:1.0 1.0;
        Registry.enable ();
        Series.record_at s ~t_s:2.0 nan;
        Series.record_at s ~t_s:3.0 infinity;
        Testkit.check_true "nothing recorded" (Series.points s = []);
        Registry.disable ());
    Testkit.case "reset drops samples, keeps the registration" (fun () ->
        fresh ();
        Registry.enable ();
        let s = Series.v "t_series_reset" in
        Series.record_at s ~t_s:1.0 1.0;
        Series.reset ();
        Testkit.check_true "samples gone" (Series.points s = []);
        Testkit.check_true "registration kept"
          (List.mem_assoc "t_series_reset" (Series.all ()));
        Series.record_at s ~t_s:2.0 2.0;
        Testkit.check_true "handle still live"
          (Series.points s = [ (2.0, 2.0) ]);
        Registry.disable ());
    Testkit.case "series render as perfetto counter tracks" (fun () ->
        fresh ();
        Registry.enable ();
        let s = Series.v ~help:"track" "t_series_track" in
        Series.record_at s ~t_s:1.0 5.0;
        Series.record_at s ~t_s:1.5 6.0;
        let evs = trace_events (Trace_export.to_json ()) in
        let track =
          List.filter
            (fun e -> Json.member "name" e = Some (Json.String "t_series_track"))
            (events_with_ph "C" evs)
        in
        Alcotest.(check int) "one counter event per sample" 2 (List.length track);
        Registry.disable ());
  ]

let () =
  Alcotest.run "ptrng_telemetry"
    [
      ("histogram", histogram_tests);
      ("span", span_tests);
      ("json", json_props);
      ("sink", sink_tests);
      ("series", series_tests);
      ("trace", trace_tests);
      ("noop", noop_tests);
    ]
