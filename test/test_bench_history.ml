(* Bench-history records: schema validation, JSONL persistence and the
   regression comparison used by check_bench --baseline. *)

module History = Bench_history.History
module Json = Ptrng_telemetry.Json

let report ~sha ~scale =
  Json.Obj
    [
      ("schema", Json.String "ptrng-bench/2");
      ("mode", Json.String "smoke");
      ("sha", Json.String sha);
      ("domains", Json.Int 2);
      ("total_s", Json.num (scale *. 3.0));
      ( "sections",
        Json.List
          (List.map
             (fun (name, wall_s) ->
               Json.Obj
                 [
                   ("name", Json.String name);
                   ("wall_s", Json.num (scale *. wall_s));
                 ])
             [ ("fig7", 1.0); ("extraction", 0.5); ("tiny", 0.001) ]) );
    ]

let record_tests =
  [
    Testkit.case "record_of_report produces a valid history record" (fun () ->
        let r =
          match
            History.record_of_report ~sha:"abc123" ~time_unix:1e9
              (report ~sha:"abc123" ~scale:1.0)
          with
          | Ok r -> r
          | Error e -> Alcotest.fail e
        in
        (match History.validate_record r with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
        (match Json.member "schema" r with
        | Some (Json.String s) ->
          Alcotest.(check string) "schema" History.schema s
        | _ -> Alcotest.fail "no schema");
        match History.sections_of r with
        | Ok s -> Alcotest.(check int) "sections carried over" 3 (List.length s)
        | Error e -> Alcotest.fail e);
    Testkit.case "lint summary is carried when given, absent otherwise"
      (fun () ->
        let with_lint =
          match
            History.record_of_report ~sha:"abc" ~time_unix:1e9
              ~lint:"ptrng-lint: 0 errors" (report ~sha:"abc" ~scale:1.0)
          with
          | Ok r -> r
          | Error e -> Alcotest.fail e
        in
        (match History.validate_record with_lint with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
        (match Json.member "lint" with_lint with
        | Some (Json.String s) ->
          Alcotest.(check string) "lint field" "ptrng-lint: 0 errors" s
        | _ -> Alcotest.fail "lint field missing");
        let without =
          match
            History.record_of_report ~sha:"abc" ~time_unix:1e9
              (report ~sha:"abc" ~scale:1.0)
          with
          | Ok r -> r
          | Error e -> Alcotest.fail e
        in
        Testkit.check_true "no lint field by default"
          (Json.member "lint" without = None));
    Testkit.case "validate_record rejects wrong schema and missing fields"
      (fun () ->
        Testkit.check_true "wrong schema rejected"
          (Result.is_error
             (History.validate_record
                (Json.Obj [ ("schema", Json.String "something-else/9") ])));
        Testkit.check_true "bare report rejected"
          (Result.is_error (History.validate_record (report ~sha:"x" ~scale:1.0))));
  ]

let persistence_tests =
  [
    Testkit.case "append then load round-trips, oldest first" (fun () ->
        let path = Filename.temp_file "ptrng_hist" ".jsonl" in
        Sys.remove path;
        let add sha =
          match
            History.record_of_report ~sha ~time_unix:1e9 (report ~sha ~scale:1.0)
          with
          | Ok r -> (
            match History.append ~path r with
            | Ok () -> ()
            | Error e -> Alcotest.fail e)
          | Error e -> Alcotest.fail e
        in
        add "first";
        add "second";
        let records =
          match History.load ~path with
          | Ok r -> r
          | Error e -> Alcotest.fail e
        in
        Sys.remove path;
        Alcotest.(check int) "two records" 2 (List.length records);
        let shas =
          List.map
            (fun r ->
              match Json.member "sha" r with
              | Some (Json.String s) -> s
              | _ -> "?")
            records
        in
        Alcotest.(check (list string)) "order" [ "first"; "second" ] shas);
    Testkit.case "load reports a malformed line with its number" (fun () ->
        let path = Filename.temp_file "ptrng_hist" ".jsonl" in
        let oc = open_out path in
        output_string oc "{\"schema\":\"x\"}\nnot json at all\n";
        close_out oc;
        (match History.load ~path with
        | Error e -> Testkit.check_true "line number named" (Testkit.contains ~needle:"line 2" e)
        | Ok _ -> Alcotest.fail "malformed history accepted");
        Sys.remove path);
  ]

(* Like [report], with alloc_bytes on the two real sections scaled by
   [alloc_scale]; "tiny" stays below default_min_alloc_bytes. *)
let report_alloc ~sha ~alloc_scale =
  Json.Obj
    [
      ("schema", Json.String "ptrng-bench/2");
      ("mode", Json.String "smoke");
      ("sha", Json.String sha);
      ("domains", Json.Int 2);
      ("total_s", Json.num 3.0);
      ( "sections",
        Json.List
          (List.map
             (fun (name, wall_s, alloc) ->
               Json.Obj
                 [
                   ("name", Json.String name);
                   ("wall_s", Json.num wall_s);
                   ("alloc_bytes", Json.num (alloc_scale *. alloc));
                 ])
             [
               ("fig7", 1.0, 4.0e7);
               ("extraction", 0.5, 1.0e6);
               ("tiny", 0.001, 1024.0);
             ]) );
    ]

let alloc_comparison_tests =
  [
    Testkit.case "records without alloc_bytes are skipped, not regressions"
      (fun () ->
        (* Pre-PR 6 baselines carry no alloc_bytes: the comparison must
           come back empty rather than failing or inventing changes. *)
        let base = report ~sha:"a" ~scale:1.0 in
        match History.compare_alloc ~baseline:base ~current:base () with
        | Ok c -> Alcotest.(check int) "nothing comparable" 0 (List.length c)
        | Error e -> Alcotest.fail e);
    Testkit.case "identical allocation shows exactly zero change" (fun () ->
        let base = report_alloc ~sha:"a" ~alloc_scale:1.0 in
        let compared =
          match History.compare_alloc ~baseline:base ~current:base () with
          | Ok c -> c
          | Error e -> Alcotest.fail e
        in
        (* "tiny" sits below default_min_alloc_bytes and is skipped. *)
        Alcotest.(check int) "comparable sections" 2 (List.length compared);
        List.iter
          (fun (c : History.alloc_comparison) ->
            Testkit.check_abs ~tol:1e-12 "no change" 0.0
              c.History.alloc_change_pct)
          compared;
        Alcotest.(check int) "no regressions" 0
          (List.length
             (History.alloc_regressions ~max_alloc_regression_pct:25.0
                compared)));
    Testkit.case "an allocation blow-up is flagged, a reduction is not"
      (fun () ->
        let base = report_alloc ~sha:"a" ~alloc_scale:1.0 in
        let heavy = report_alloc ~sha:"b" ~alloc_scale:3.0 in
        let regs =
          match History.compare_alloc ~baseline:base ~current:heavy () with
          | Ok c ->
            History.alloc_regressions ~max_alloc_regression_pct:25.0 c
          | Error e -> Alcotest.fail e
        in
        Alcotest.(check int) "both real sections regress" 2 (List.length regs);
        List.iter
          (fun (c : History.alloc_comparison) ->
            Testkit.check_abs ~tol:1e-9 "+200%" 200.0
              c.History.alloc_change_pct)
          regs;
        let back =
          match History.compare_alloc ~baseline:heavy ~current:base () with
          | Ok c ->
            History.alloc_regressions ~max_alloc_regression_pct:25.0 c
          | Error e -> Alcotest.fail e
        in
        Alcotest.(check int) "a reduction is not a regression" 0
          (List.length back));
    Testkit.case "alloc_bytes survives the report -> history round trip"
      (fun () ->
        let r =
          match
            History.record_of_report ~sha:"abc" ~time_unix:1e9
              (report_alloc ~sha:"abc" ~alloc_scale:1.0)
          with
          | Ok r -> r
          | Error e -> Alcotest.fail e
        in
        match History.compare_alloc ~baseline:r
                ~current:(report_alloc ~sha:"abc" ~alloc_scale:1.0) ()
        with
        | Ok c -> Alcotest.(check int) "history record comparable" 2 (List.length c)
        | Error e -> Alcotest.fail e);
  ]

let comparison_tests =
  [
    Testkit.case "identical reports show no regression" (fun () ->
        let base = report ~sha:"a" ~scale:1.0 in
        let compared =
          match History.compare_sections ~baseline:base ~current:base () with
          | Ok c -> c
          | Error e -> Alcotest.fail e
        in
        (* The 1 ms section sits below default_min_wall_s and is skipped. *)
        Alcotest.(check int) "comparable sections" 2 (List.length compared);
        List.iter
          (fun (c : History.comparison) ->
            Testkit.check_abs ~tol:1e-12 "no change" 0.0 c.History.change_pct)
          compared;
        Alcotest.(check int) "no regressions" 0
          (List.length (History.regressions ~max_regression_pct:25.0 compared)));
    Testkit.case "a 2x slowdown is flagged, a speedup is not" (fun () ->
        let base = report ~sha:"a" ~scale:1.0 in
        let slow = report ~sha:"b" ~scale:2.0 in
        let compared =
          match History.compare_sections ~baseline:base ~current:slow () with
          | Ok c -> c
          | Error e -> Alcotest.fail e
        in
        let regs = History.regressions ~max_regression_pct:50.0 compared in
        Alcotest.(check int) "both real sections regress" 2 (List.length regs);
        List.iter
          (fun (c : History.comparison) ->
            Testkit.check_abs ~tol:1e-9 "+100%" 100.0 c.History.change_pct)
          regs;
        let back =
          match History.compare_sections ~baseline:slow ~current:base () with
          | Ok c -> History.regressions ~max_regression_pct:50.0 c
          | Error e -> Alcotest.fail e
        in
        Alcotest.(check int) "speedup is not a regression" 0 (List.length back));
    Testkit.case "min_wall_s filter is adjustable" (fun () ->
        let base = report ~sha:"a" ~scale:1.0 in
        match
          History.compare_sections ~min_wall_s:0.0 ~baseline:base ~current:base
            ()
        with
        | Ok c -> Alcotest.(check int) "tiny section included" 3 (List.length c)
        | Error e -> Alcotest.fail e);
  ]

let () =
  Alcotest.run "bench_history"
    [
      ("records", record_tests);
      ("persistence", persistence_tests);
      ("comparison", comparison_tests);
      ("alloc-comparison", alloc_comparison_tests);
    ]
