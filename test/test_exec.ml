(* The domain pool's one contract: whatever runs through it returns
   bit-identical results for every domain count — plus the usual
   edge-case and failure-path coverage.  The @par-smoke alias re-runs
   this binary under PTRNG_DOMAINS=1 and =4 so both the sequential
   fallback and the true parallel path stay exercised. *)

module Pool = Ptrng_exec.Pool
module Rng = Ptrng_prng.Rng

let domain_counts = [ 1; 2; 4 ]

(* Run [f d] for every probed domain count and assert all results are
   structurally (hence for floats bitwise) equal. *)
let check_invariant name f =
  match List.map f domain_counts with
  | [] -> assert false
  | reference :: rest ->
    List.iteri
      (fun i r ->
        Testkit.check_true
          (Printf.sprintf "%s: domains=%d matches domains=%d" name
             (List.nth domain_counts (i + 1))
             (List.hd domain_counts))
          (r = reference))
      rest

let pool_tests =
  [
    Testkit.case "parallel_map keeps input order" (fun () ->
        let xs = Array.init 100 (fun i -> i) in
        let expected = Array.map (fun x -> x * x) xs in
        List.iter
          (fun d ->
            Alcotest.(check (array int))
              (Printf.sprintf "domains=%d" d)
              expected
              (Pool.parallel_map ~domains:d (fun x -> x * x) xs))
          domain_counts);
    Testkit.case "empty and singleton inputs" (fun () ->
        Alcotest.(check (array int)) "map empty" [||]
          (Pool.parallel_map ~domains:4 (fun x -> x) [||]);
        Alcotest.(check (array int)) "map singleton" [| 7 |]
          (Pool.parallel_map ~domains:4 (fun x -> x + 1) [| 6 |]);
        Alcotest.(check int) "init_floats 0" 0
          (Array.length
             (Pool.parallel_init_floats ~domains:4 ~rng:(Testkit.rng ())
                ~fill:(fun _ ~offset:_ ~len:_ _ -> ())
                0));
        Alcotest.(check int) "map_streams 0" 0
          (Array.length
             (Pool.parallel_map_streams ~domains:4 ~rng:(Testkit.rng ())
                (fun _ _ -> 0)
                0));
        Alcotest.(check (array int)) "filter_map empty" [||]
          (Pool.parallel_filter_map ~domains:4 (fun x -> Some x) [||]));
    Testkit.case "filter_map keeps order and drops Nones" (fun () ->
        let xs = Array.init 50 (fun i -> i) in
        let keep_even x = if x mod 2 = 0 then Some (x * 10) else None in
        let expected = Array.init 25 (fun i -> i * 20) in
        List.iter
          (fun d ->
            Alcotest.(check (array int))
              (Printf.sprintf "domains=%d" d)
              expected
              (Pool.parallel_filter_map ~domains:d keep_even xs))
          domain_counts);
    Testkit.case "parallel_reduce folds non-commutative combine in order" (fun () ->
        let xs = Array.init 21 (fun i -> i) in
        let expected =
          Array.fold_left (fun acc x -> acc ^ string_of_int x) "" xs
        in
        check_invariant "concat" (fun d ->
            Pool.parallel_reduce ~domains:d ~map:string_of_int ~combine:( ^ )
              ~init:"" xs);
        Alcotest.(check string)
          "matches sequential" expected
          (Pool.parallel_reduce ~domains:4 ~map:string_of_int ~combine:( ^ )
             ~init:"" xs));
    Testkit.case "a worker exception aborts the section and re-raises" (fun () ->
        let xs = Array.init 64 (fun i -> i) in
        Alcotest.check_raises "original exception" (Failure "boom") (fun () ->
            ignore
              (Pool.parallel_map ~domains:4
                 (fun x -> if x = 37 then failwith "boom" else x)
                 xs)));
    Testkit.case "nested sections resolve to one domain" (fun () ->
        let inner_domains =
          Pool.parallel_map ~domains:4
            (fun _ ->
              (* A nested map still works; it just runs sequentially. *)
              let nested = Pool.parallel_map ~domains:4 (fun x -> x) [| 1; 2 |] in
              Alcotest.(check (array int)) "nested result" [| 1; 2 |] nested;
              Pool.resolve ~domains:4 ())
            (Array.make 8 ())
        in
        Array.iter (fun d -> Alcotest.(check int) "inside worker" 1 d) inner_domains);
    Testkit.case "set_default and PTRNG_DOMAINS resolution order" (fun () ->
        Unix.putenv "PTRNG_DOMAINS" "3";
        Alcotest.(check int) "env wins without CLI" 3 (Pool.available ());
        Pool.set_default (Some 2);
        Alcotest.(check int) "CLI override wins" 2 (Pool.available ());
        Pool.set_default None;
        Unix.putenv "PTRNG_DOMAINS" "not-a-number";
        Testkit.check_true "malformed env ignored" (Pool.available () >= 1);
        Unix.putenv "PTRNG_DOMAINS" "";
        Alcotest.check_raises "domains < 1 rejected"
          (Invalid_argument "Pool.set_default: domains < 1") (fun () ->
            Pool.set_default (Some 0)));
  ]

let rng_stream_tests =
  [
    Testkit.case "init_floats is bit-identical across domains and fills every slot"
      (fun () ->
        List.iter
          (fun n ->
            check_invariant
              (Printf.sprintf "n=%d" n)
              (fun d ->
                let rng = Testkit.rng ~seed:11L () in
                Pool.parallel_init_floats ~domains:d ~chunk:7 ~rng
                  ~fill:(fun child ~offset ~len out ->
                    for k = offset to offset + len - 1 do
                      out.(k) <- 1.0 +. Rng.float child
                    done)
                  n);
            let out =
              Pool.parallel_init_floats ~domains:4 ~chunk:7 ~rng:(Testkit.rng ())
                ~fill:(fun child ~offset ~len out ->
                  for k = offset to offset + len - 1 do
                    out.(k) <- 1.0 +. Rng.float child
                  done)
                n
            in
            Array.iter
              (fun v -> Testkit.check_true "slot written" (v >= 1.0))
              out)
          (* Around the custom chunk size 7: below, at, above, multiple. *)
          [ 1; 6; 7; 8; 13; 14; 15; 70 ]);
    Testkit.case "caller rng advances by one draw regardless of domains" (fun () ->
        let after d =
          let rng = Testkit.rng ~seed:21L () in
          ignore
            (Pool.parallel_init_floats ~domains:d ~rng
               ~fill:(fun child ~offset ~len out ->
                 for k = offset to offset + len - 1 do
                   out.(k) <- Rng.float child
                 done)
               20000);
          Rng.bits64 rng
        in
        check_invariant "next caller draw" after);
    Testkit.case "map_streams derives one stream per task" (fun () ->
        check_invariant "streams" (fun d ->
            let rng = Testkit.rng ~seed:31L () in
            Pool.parallel_map_streams ~domains:d ~rng
              (fun i child -> (i, Rng.bits64 child, Rng.bits64 child))
              17);
        (* Distinct tasks must see distinct streams. *)
        let rng = Testkit.rng ~seed:31L () in
        let draws =
          Pool.parallel_map_streams ~domains:4 ~rng
            (fun _ child -> Rng.bits64 child)
            17
        in
        let distinct =
          List.sort_uniq compare (Array.to_list draws) |> List.length
        in
        Alcotest.(check int) "all distinct" 17 distinct);
  ]

let workload_tests =
  [
    Testkit.case "variance curve is bit-identical across domains" (fun () ->
        let jitter =
          let g = Ptrng_prng.Gaussian.create (Testkit.rng ~seed:41L ()) in
          Array.init 20000 (fun _ -> 1e-12 *. Ptrng_prng.Gaussian.draw g)
        in
        let ns = Ptrng_measure.Variance_curve.log2_grid ~n_min:4 ~n_max:1024 in
        check_invariant "curve" (fun d ->
            Ptrng_measure.Variance_curve.of_jitter ~domains:d ~f0:103e6 ~ns jitter);
        let curve =
          Ptrng_measure.Variance_curve.of_jitter ~domains:2 ~f0:103e6 ~ns jitter
        in
        let fit = Ptrng_measure.Fit.fit ~f0:103e6 curve in
        check_invariant "fitted (a, b)" (fun d ->
            let c =
              Ptrng_measure.Variance_curve.of_jitter ~domains:d ~f0:103e6 ~ns
                jitter
            in
            let f = Ptrng_measure.Fit.fit ~f0:103e6 c in
            (f.a, f.b));
        Testkit.check_true "fit is finite" (Float.is_finite fit.a));
    Testkit.case "spectral synthesis is bit-identical across domains" (fun () ->
        check_invariant "generate" (fun d ->
            let rng = Testkit.rng ~seed:51L () in
            Ptrng_noise.Spectral_synth.generate ~domains:d rng
              ~psd:(fun f -> 1e-3 /. f)
              ~fs:1.0 (1 lsl 13));
        check_invariant "generate_many" (fun d ->
            let rng = Testkit.rng ~seed:52L () in
            Ptrng_noise.Spectral_synth.generate_many ~domains:d rng
              ~psd:(fun f -> 1e-3 /. f)
              ~fs:1.0 ~count:5 (1 lsl 10)));
    Testkit.case "kasdin and oscillator traces are bit-identical across domains"
      (fun () ->
        check_invariant "kasdin flicker" (fun d ->
            Ptrng_noise.Kasdin.flicker_fm_block ~domains:d
              (Testkit.rng ~seed:61L ()) ~hm1:1e-6 ~fs:1.0 (1 lsl 12));
        let cfg =
          Ptrng_osc.Oscillator.config ~f0:103e6
            ~phase:{ Ptrng_noise.Psd_model.b_th = 138.0; b_fl = 9.6e5 }
            ()
        in
        check_invariant "oscillator periods" (fun d ->
            Ptrng_osc.Oscillator.periods ~domains:d (Testkit.rng ~seed:62L ())
              cfg ~n:20000);
        check_invariant "restart ensemble" (fun d ->
            Ptrng_osc.Restart.ensemble ~domains:d (Testkit.rng ~seed:63L ())
              cfg ~restarts:16 ~n:512));
    Testkit.case "test batteries return identical reports across domains"
      (fun () ->
        let bits =
          let rng = Testkit.rng ~seed:71L () in
          Array.init 20000 (fun _ -> Rng.bool rng)
        in
        check_invariant "sp800-22" (fun d ->
            Ptrng_nist22.Sp80022.run_all ~domains:d bits);
        check_invariant "sp800-90b" (fun d ->
            Ptrng_sp90b.Estimators.run_all ~domains:d bits));
    Testkit.slow_case "monte_carlo replicates are bit-identical across domains"
      (fun () ->
        let pair = Ptrng_osc.Pair.paper_pair () in
        check_invariant "fitted ensemble" (fun d ->
            let rng = Testkit.rng ~seed:81L () in
            let runs =
              Ptrng_model.Multilevel.monte_carlo ~domains:d ~n_periods:2048
                ~rng ~replicates:3 pair
            in
            Array.map
              (fun (a : Ptrng_model.Multilevel.analysis) -> (a.fit.a, a.fit.b))
              runs);
        check_invariant "phase chain runs" (fun d ->
            let chain =
              Ptrng_model.Phase_chain.create ~bins:64 ~drift:0.1 ~diffusion:0.4 ()
            in
            Ptrng_model.Phase_chain.simulate_many ~domains:d
              (Testkit.rng ~seed:82L ())
              chain ~runs:6 ~bits:500));
  ]

(* ------------------------------------------------------------------ *)
(* Telemetry under the pool: spans must stay per-domain                *)
(* ------------------------------------------------------------------ *)

module Tm = Ptrng_telemetry

(* Every in-tree parent/child edge must stay on one domain: worker
   spans are collected as separate worker roots, never spliced across
   domains. *)
let rec check_edges_same_tid (s : Tm.Span.t) =
  List.iter
    (fun (c : Tm.Span.t) ->
      Alcotest.(check int)
        (Printf.sprintf "edge %s->%s stays on one domain" s.Tm.Span.name
           c.Tm.Span.name)
        s.Tm.Span.tid c.Tm.Span.tid;
      check_edges_same_tid c)
    s.Tm.Span.children

let rec count_named name (s : Tm.Span.t) =
  (if s.Tm.Span.name = name then 1 else 0)
  + List.fold_left (fun a c -> a + count_named name c) 0 s.Tm.Span.children

(* For each tid, the X events must form a proper nesting: any two
   intervals are either disjoint or one contains the other. *)
let check_tid_nesting events =
  let field key e = Option.bind (Tm.Json.member key e) Tm.Json.to_float in
  let spans =
    List.filter_map
      (fun e ->
        match (field "tid" e, field "ts" e, field "dur" e) with
        | Some tid, Some ts, Some dur -> Some (int_of_float tid, ts, dur)
        | _ -> None)
      events
  in
  let tids = List.sort_uniq compare (List.map (fun (t, _, _) -> t) spans) in
  List.iter
    (fun tid ->
      let mine = List.filter (fun (t, _, _) -> t = tid) spans in
      List.iter
        (fun (_, ts_a, dur_a) ->
          List.iter
            (fun (_, ts_b, dur_b) ->
              let ea = ts_a +. dur_a and eb = ts_b +. dur_b in
              let eps = 1e-3 (* us *) in
              let disjoint = ea <= ts_b +. eps || eb <= ts_a +. eps in
              let a_in_b = ts_a >= ts_b -. eps && ea <= eb +. eps in
              let b_in_a = ts_b >= ts_a -. eps && eb <= ea +. eps in
              Testkit.check_true
                (Printf.sprintf "tid %d intervals nest" tid)
                (disjoint || a_in_b || b_in_a))
            mine)
        mine)
    tids

let telemetry_tests =
  [
    Testkit.case "spans under Pool.run nest per domain, no cross-domain edges"
      (fun () ->
        Tm.Registry.clear ();
        Tm.Span.reset ();
        Tm.Runtime_profile.reset ();
        Tm.Registry.enable ();
        Fun.protect
          ~finally:(fun () -> Tm.Registry.disable ())
          (fun () ->
            let xs = Array.init 64 (fun i -> i) in
            let result = ref [||] in
            Tm.Span.with_ ~name:"section" (fun () ->
                result :=
                  Pool.parallel_map ~domains:4
                    (fun x -> Tm.Span.with_ ~name:"task" (fun () -> x * 2))
                    xs);
            Alcotest.(check (array int)) "payload unchanged"
              (Array.map (fun x -> x * 2) xs)
              !result;
            let roots = Tm.Span.roots () in
            let workers = Tm.Span.worker_roots () in
            (match roots with
            | [ root ] ->
              Alcotest.(check string) "main root" "section" root.Tm.Span.name;
              let main_tid = root.Tm.Span.tid in
              List.iter
                (fun (w : Tm.Span.t) ->
                  Testkit.check_true "worker root is on another domain"
                    (w.Tm.Span.tid <> main_tid))
                workers
            | l ->
              Alcotest.fail
                (Printf.sprintf "expected 1 main root, got %d" (List.length l)));
            List.iter check_edges_same_tid roots;
            List.iter check_edges_same_tid workers;
            let tasks =
              List.fold_left (fun a s -> a + count_named "task" s) 0 roots
              + List.fold_left (fun a s -> a + count_named "task" s) 0 workers
            in
            Alcotest.(check int) "every task span recorded" 64 tasks;
            (* The exported trace must be valid JSON whose per-domain
               tracks are properly nested. *)
            let path = Filename.temp_file "ptrng_pool_trace" ".json" in
            Tm.Trace_export.write path;
            let j =
              Tm.Json.of_string
                (In_channel.with_open_text path In_channel.input_all)
            in
            Sys.remove path;
            match Tm.Json.member "traceEvents" j with
            | Some (Tm.Json.List evs) ->
              let xs_events =
                List.filter
                  (fun e ->
                    Tm.Json.member "ph" e = Some (Tm.Json.String "X"))
                  evs
              in
              Alcotest.(check int) "one X event per span" 65
                (List.length xs_events);
              check_tid_nesting xs_events
            | _ -> Alcotest.fail "exported trace lacks traceEvents"));
  ]

let () =
  Alcotest.run "ptrng_exec"
    [
      ("pool", pool_tests);
      ("rng-streams", rng_stream_tests);
      ("workloads", workload_tests);
      ("telemetry", telemetry_tests);
    ]
