(* Streamed-vs-batch equivalence for the Source API (PR 6).

   The contract under test: a Source stream is a pure function of its
   creation root — identical whatever chunk sizes the fills use, and
   (for White/Voss/Spectral) identical to the legacy batch entry points
   seeded the same way.  The batch generators are exercised on purpose,
   so the deprecation alert is silenced for this file. *)
[@@@ocaml.alert "-deprecated"]

open Ptrng_noise
module FA = Float.Array
module Rng = Ptrng_prng.Rng

let chunk_sizes = [ 1; 7; 64; 1000; 4096; 8192; 10000 ]

(* Stream [total] samples out of a fresh source in chunks of [size]. *)
let streamed config ~seed ~size total =
  let src = Source.create config (Testkit.rng ~seed ()) in
  let out = FA.create total in
  let pos = ref 0 in
  while !pos < total do
    let len = min size (total - !pos) in
    Source.fill_range src out ~pos:!pos ~len;
    pos := !pos + len
  done;
  out

let check_fa_eq name expected out =
  let n = Array.length expected in
  Alcotest.(check int) (name ^ ": length") n (FA.length out);
  for i = 0 to n - 1 do
    if not (Float.equal expected.(i) (FA.get out i)) then
      Alcotest.failf "%s: sample %d differs: %h vs %h" name i expected.(i)
        (FA.get out i)
  done

let check_fa_close ~tol name expected out =
  for i = 0 to Array.length expected - 1 do
    let e = expected.(i) and a = FA.get out i in
    let scale = Float.max 1e-30 (Float.abs e) in
    if Float.abs (a -. e) /. scale > tol then
      Alcotest.failf "%s: sample %d: %.17g vs %.17g" name i e a
  done

let total = 20000

(* The batch reference for the white stream: the chunked parallel
   initializer the oscillator thermal path uses. *)
let batch_white ~seed ~sigma n =
  Ptrng_exec.Pool.parallel_init_floats ~domains:1 ~rng:(Testkit.rng ~seed ())
    ~fill:(fun child ~offset ~len out ->
      let g = Ptrng_prng.Gaussian.create child in
      for k = offset to offset + len - 1 do
        out.(k) <- sigma *. Ptrng_prng.Gaussian.draw g
      done)
    n

let white_tests =
  [
    Testkit.case "white stream == batch parallel fill, every chunk size"
      (fun () ->
        let sigma = 2.5 in
        let expected = batch_white ~seed:11L ~sigma total in
        List.iter
          (fun size ->
            let out =
              streamed (Source.white ~sigma) ~seed:11L ~size total
            in
            check_fa_eq (Printf.sprintf "chunk %d" size) expected out)
          chunk_sizes);
    Testkit.case "reset replays the identical stream" (fun () ->
        let src = Source.create (Source.white ~sigma:1.0) (Testkit.rng ()) in
        let a = FA.create 999 and b = FA.create 999 in
        Source.fill src a;
        Source.reset src;
        Source.fill src b;
        for i = 0 to 998 do
          Testkit.check_true "equal" (Float.equal (FA.get a i) (FA.get b i))
        done);
    Testkit.case "skip lands on the same samples" (fun () ->
        let expected = batch_white ~seed:7L ~sigma:1.0 total in
        let src = Source.create (Source.white ~sigma:1.0) (Testkit.rng ~seed:7L ()) in
        let out = FA.create 100 in
        (* Jump over a chunk boundary and deep into a later chunk. *)
        Source.skip src 12000;
        Source.fill src out;
        for i = 0 to 99 do
          Testkit.check_true "sample"
            (Float.equal expected.(12000 + i) (FA.get out i))
        done;
        Alcotest.(check int) "position" 12100 (Source.position src));
  ]

let voss_tests =
  [
    Testkit.case "voss stream == batch ladder, every chunk size" (fun () ->
        let octaves = 12 and sigma = 0.5 in
        (* Replicate the source's seeding: one root draw, ladder on
           child stream 0. *)
        let rng = Testkit.rng ~seed:42L () in
        let backend = Rng.backend rng in
        let root = Rng.bits64 rng in
        let v = Voss.create (Rng.child ~backend ~root ~index:0 ()) ~octaves in
        let expected =
          Array.map (fun s -> sigma *. s) (Voss.generate v 5000)
        in
        List.iter
          (fun size ->
            let out =
              streamed (Source.voss ~octaves ~sigma ()) ~seed:42L ~size 5000
            in
            check_fa_eq (Printf.sprintf "chunk %d" size) expected out)
          chunk_sizes);
  ]

let spectral_tests =
  [
    Testkit.case "spectral block 0 == Spectral_synth.generate" (fun () ->
        let psd f = 1.0 /. f and fs = 1e6 in
        let n = 4096 in
        let expected =
          Spectral_synth.generate (Testkit.rng ~seed:5L ()) ~psd ~fs n
        in
        List.iter
          (fun size ->
            let out =
              streamed (Source.spectral ~block:n ~psd ~fs ()) ~seed:5L ~size n
            in
            check_fa_eq (Printf.sprintf "chunk %d" size) expected out)
          chunk_sizes);
    Testkit.case "blocks are independent but reproducible" (fun () ->
        let psd f = 1.0 /. f and fs = 1e6 in
        let config = Source.spectral ~block:1024 ~psd ~fs () in
        let a = streamed config ~seed:9L ~size:512 4096 in
        let b = streamed config ~seed:9L ~size:4096 4096 in
        for i = 0 to 4095 do
          Testkit.check_true "replay" (Float.equal (FA.get a i) (FA.get b i))
        done;
        (* Distinct blocks must not repeat each other. *)
        let same = ref true in
        for i = 0 to 1023 do
          if not (Float.equal (FA.get a i) (FA.get a (1024 + i))) then
            same := false
        done;
        Testkit.check_false "blocks differ" !same);
  ]

let kasdin_tests =
  [
    Testkit.case "full-tap streamed filter == batch FFT filter" (fun () ->
        (* With taps >= n the truncated overlap-add convolution equals
           the batch full-length convolution up to FFT rounding. *)
        let n = 4096 in
        let alpha = 1.0 and sigma_w = 0.7 in
        let expected =
          Kasdin.generate_block ~domains:1 (Testkit.rng ~seed:3L ()) ~alpha
            ~sigma_w n
        in
        List.iter
          (fun size ->
            let out =
              streamed
                (Source.kasdin ~taps:n ~block:1024 ~alpha ~sigma_w ())
                ~seed:3L ~size n
            in
            check_fa_close ~tol:1e-9 (Printf.sprintf "chunk %d" size) expected
              out)
          [ 1000; 4096 ]);
    Testkit.case "overlap-add block size does not change the stream" (fun () ->
        let mk block =
          streamed
            (Source.kasdin ~taps:512 ~block ~alpha:1.0 ~sigma_w:1.0 ())
            ~seed:13L ~size:997 6000
        in
        let a = mk 256 and b = mk 2048 in
        for i = 0 to 5999 do
          let e = FA.get a i and v = FA.get b i in
          if Float.abs (v -. e) > 1e-10 *. Float.max 1.0 (Float.abs e) then
            Alcotest.failf "sample %d: %.17g vs %.17g" i e v
        done);
    Testkit.case "skip preserves the filter tail" (fun () ->
        let config = Source.kasdin ~taps:256 ~block:512 ~alpha:1.0 ~sigma_w:1.0 () in
        let expected = streamed config ~seed:21L ~size:8192 3000 in
        let src = Source.create config (Testkit.rng ~seed:21L ()) in
        Source.skip src 2000;
        let out = FA.create 1000 in
        Source.fill src out;
        for i = 0 to 999 do
          let e = FA.get expected (2000 + i) and v = FA.get out i in
          if Float.abs (v -. e) > 1e-10 *. Float.max 1.0 (Float.abs e) then
            Alcotest.failf "sample %d: %.17g vs %.17g" i e v
        done);
  ]

let fft_tests =
  [
    Testkit.case "floatarray FFT == signal FFT bit for bit" (fun () ->
        let n = 1024 in
        let rng = Testkit.rng ~seed:77L () in
        let re = Array.init n (fun _ -> Rng.float rng -. 0.5) in
        let im = Array.init n (fun _ -> Rng.float rng -. 0.5) in
        let fre = FA.init n (fun i -> re.(i)) in
        let fim = FA.init n (fun i -> im.(i)) in
        Ptrng_signal.Fft.forward_pow2 ~re ~im;
        Fft.forward_pow2 ~re:fre ~im:fim;
        for i = 0 to n - 1 do
          Testkit.check_true "re" (Float.equal re.(i) (FA.get fre i));
          Testkit.check_true "im" (Float.equal im.(i) (FA.get fim i))
        done;
        Ptrng_signal.Fft.inverse_pow2 ~re ~im;
        Fft.inverse_pow2 ~re:fre ~im:fim;
        for i = 0 to n - 1 do
          Testkit.check_true "inv re" (Float.equal re.(i) (FA.get fre i))
        done);
    Testkit.case "overlap-add == direct convolution" (fun () ->
        let taps = 37 and total = 1000 in
        let rng = Testkit.rng ~seed:15L () in
        let h = FA.init taps (fun _ -> Rng.float rng -. 0.5) in
        let x = Array.init total (fun _ -> Rng.float rng -. 0.5) in
        let direct =
          Array.init total (fun i ->
              let acc = ref 0.0 in
              for j = 0 to min i (taps - 1) do
                acc := !acc +. (FA.get h j *. x.(i - j))
              done;
              !acc)
        in
        let ola = Fft.Overlap_add.create ~h ~block:128 in
        let src = FA.init total (fun i -> x.(i)) in
        let out = FA.create total in
        let pos = ref 0 in
        (* Deliberately ragged block sizes. *)
        List.iter
          (fun len ->
            Fft.Overlap_add.process ola ~src ~src_pos:!pos ~dst:out
              ~dst_pos:!pos ~len;
            pos := !pos + len)
          [ 1; 127; 128; 100; 128; 128; 128; 128; 128; 4 ];
        Alcotest.(check int) "consumed" total !pos;
        check_fa_close ~tol:1e-12 "ola" direct out);
  ]

(* ------------------------------------------------------------------ *)
(* Oscillator / pair streaming                                         *)
(* ------------------------------------------------------------------ *)

module Osc = Ptrng_osc.Oscillator
module Pair = Ptrng_osc.Pair

let fill_chunked ?(sizes = [ 1; 100; 4096; 8192; 997 ]) src total =
  let out = FA.create total in
  let buf = FA.create 8192 in
  let pos = ref 0 in
  let rec go = function
    | [] -> go sizes
    | size :: rest ->
      if !pos < total then begin
        let len = min size (total - !pos) in
        Osc.fill_periods src ~len buf;
        FA.blit buf 0 out !pos len;
        pos := !pos + len;
        go rest
      end
  in
  if total > 0 then go sizes;
  out

let paper_cfg generator =
  Osc.config ~flicker_generator:generator ~f0:Pair.paper_f0
    ~phase:Pair.paper_relative ()

let oscillator_tests =
  [
    Testkit.case "spectral source == periods, bit for bit" (fun () ->
        let n = 20000 in
        let cfg = paper_cfg `Spectral in
        let expected = Osc.periods ~domains:1 (Testkit.rng ~seed:31L ()) cfg ~n in
        let src =
          Osc.source ~flicker_block:n (Testkit.rng ~seed:31L ()) cfg
        in
        check_fa_eq "periods" expected (fill_chunked src n));
    Testkit.case "thermal-only source == periods, bit for bit" (fun () ->
        let n = 20000 in
        let cfg = paper_cfg `None in
        let expected = Osc.periods ~domains:1 (Testkit.rng ~seed:32L ()) cfg ~n in
        let src = Osc.source (Testkit.rng ~seed:32L ()) cfg in
        check_fa_eq "periods" expected (fill_chunked src n));
    Testkit.case "random-walk source == periods, bit for bit" (fun () ->
        let n = 8192 in
        let cfg =
          Osc.config ~flicker_generator:`Spectral ~rw_hm2:1e-22 ~f0:Pair.paper_f0
            ~phase:Pair.paper_relative ()
        in
        let expected = Osc.periods ~domains:1 (Testkit.rng ~seed:33L ()) cfg ~n in
        let src =
          Osc.source ~flicker_block:n (Testkit.rng ~seed:33L ()) cfg
        in
        check_fa_eq "periods" expected (fill_chunked src n));
    Testkit.case "source_skip lands on the same periods" (fun () ->
        let n = 16384 in
        let cfg = paper_cfg `Spectral in
        let expected = Osc.periods ~domains:1 (Testkit.rng ~seed:34L ()) cfg ~n in
        let src =
          Osc.source ~flicker_block:n (Testkit.rng ~seed:34L ()) cfg
        in
        Osc.source_skip src 10000;
        let buf = FA.create 500 in
        Osc.fill_periods src buf;
        for i = 0 to 499 do
          Testkit.check_true "period"
            (Float.equal expected.(10000 + i) (FA.get buf i))
        done;
        Alcotest.(check int) "position" 10500 (Osc.source_position src));
    Testkit.case "source_reset replays; rw sources refuse" (fun () ->
        let cfg = paper_cfg `Spectral in
        let src = Osc.source (Testkit.rng ~seed:35L ()) cfg in
        let a = fill_chunked src 5000 in
        Osc.source_reset src;
        let b = fill_chunked src 5000 in
        for i = 0 to 4999 do
          Testkit.check_true "replay" (Float.equal (FA.get a i) (FA.get b i))
        done;
        let rw_cfg =
          Osc.config ~rw_hm2:1e-22 ~f0:1e8
            ~phase:{ Psd_model.b_th = 1.0; b_fl = 0.0 } ()
        in
        let rw_src = Osc.source (Testkit.rng ()) rw_cfg in
        Alcotest.check_raises "rw reset"
          (Invalid_argument
             "Oscillator.source_reset: random-walk FM sources cannot rewind")
          (fun () -> Osc.source_reset rw_src));
    Testkit.case "pair stream == simulate, bit for bit" (fun () ->
        let n = 16384 in
        let pair = Pair.paper_pair () in
        let p1, p2 =
          Pair.simulate ~domains:1 (Testkit.rng ~seed:36L ()) pair ~n
        in
        let st = Pair.stream ~flicker_block:n (Testkit.rng ~seed:36L ()) pair in
        let b1 = FA.create n and b2 = FA.create n in
        let pos = ref 0 in
        while !pos < n do
          let len = min 4096 (n - !pos) in
          let c1 = FA.create len and c2 = FA.create len in
          Pair.fill st ~p1:c1 ~p2:c2 ~len;
          FA.blit c1 0 b1 !pos len;
          FA.blit c2 0 b2 !pos len;
          pos := !pos + len
        done;
        check_fa_eq "osc1" p1 b1;
        check_fa_eq "osc2" p2 b2);
  ]

(* ------------------------------------------------------------------ *)
(* Streaming variance-curve accumulators                               *)
(* ------------------------------------------------------------------ *)

module Vc = Ptrng_measure.Variance_curve

let check_points_close ~tol name (expected : Vc.point array)
    (got : Vc.point array) =
  Alcotest.(check int) (name ^ ": point count") (Array.length expected)
    (Array.length got);
  Array.iteri
    (fun i (e : Vc.point) ->
      let g = got.(i) in
      Alcotest.(check int) (Printf.sprintf "%s: n[%d]" name i) e.Vc.n g.Vc.n;
      Alcotest.(check int) (Printf.sprintf "%s: neff[%d]" name i) e.Vc.neff
        g.Vc.neff;
      Testkit.check_rel (Printf.sprintf "%s: sigma2[%d]" name i) ~tol e.Vc.sigma2
        g.Vc.sigma2;
      Testkit.check_rel (Printf.sprintf "%s: stderr[%d]" name i) ~tol e.Vc.stderr
        g.Vc.stderr)
    expected

let jitter_fixture n =
  let pair = Pair.paper_pair () in
  let p1, p2 = Pair.simulate ~domains:1 (Testkit.rng ~seed:41L ()) pair ~n in
  let jitter = Array.init n (fun i -> p1.(i) -. p2.(i)) in
  (p1, p2, jitter)

let acc_tests =
  let f0 = Pair.paper_f0 in
  let ns = [| 1; 4; 16; 64; 256; 1024 |] in
  [
    Testkit.case "Jitter_acc == of_jitter (overlapping), every chunk size"
      (fun () ->
        let total = 40000 in
        let _, _, jitter = jitter_fixture total in
        let expected = Vc.of_jitter ~domains:1 ~f0 ~ns jitter in
        List.iter
          (fun size ->
            let acc = Vc.Jitter_acc.create ~f0 ns in
            let pos = ref 0 in
            while !pos < total do
              let len = min size (total - !pos) in
              let buf = FA.init len (fun i -> jitter.(!pos + i)) in
              Vc.Jitter_acc.feed acc buf ~len;
              pos := !pos + len
            done;
            Alcotest.(check int) "total" total (Vc.Jitter_acc.total acc);
            check_points_close ~tol:1e-9
              (Printf.sprintf "chunk %d" size)
              expected
              (Vc.Jitter_acc.points acc))
          [ 1; 1000; 8192; 40000 ]);
    Testkit.case "Jitter_acc == of_jitter (non-overlapping)" (fun () ->
        let total = 40000 in
        let _, _, jitter = jitter_fixture total in
        let expected =
          Vc.of_jitter ~domains:1 ~overlapping:false ~f0 ~ns jitter
        in
        let acc = Vc.Jitter_acc.create ~overlapping:false ~f0 ns in
        let buf = FA.init total (fun i -> jitter.(i)) in
        Vc.Jitter_acc.feed acc buf ~len:total;
        check_points_close ~tol:1e-9 "points" expected
          (Vc.Jitter_acc.points acc));
    Testkit.case "Jitter_acc points are a snapshot, feeding continues"
      (fun () ->
        let total = 20000 in
        let _, _, jitter = jitter_fixture total in
        let acc = Vc.Jitter_acc.create ~f0 ns in
        let buf = FA.init total (fun i -> jitter.(i)) in
        Vc.Jitter_acc.feed acc buf ~len:10000;
        let early = Vc.Jitter_acc.points acc in
        Testkit.check_true "has early points" (Array.length early > 0);
        let tail = FA.init 10000 (fun i -> jitter.(10000 + i)) in
        Vc.Jitter_acc.feed acc tail ~len:10000;
        let expected = Vc.of_jitter ~domains:1 ~f0 ~ns jitter in
        check_points_close ~tol:1e-9 "final" expected
          (Vc.Jitter_acc.points acc));
    Testkit.case "Counter_acc == of_counters, every chunk size" (fun () ->
        let total = 40000 in
        let p1, p2, _ = jitter_fixture total in
        let edges1 = Osc.edges_of_periods p1 in
        let edges2 = Osc.edges_of_periods p2 in
        let expected = Vc.of_counters ~domains:1 ~f0 ~ns edges1 edges2 in
        List.iter
          (fun size ->
            let acc = Vc.Counter_acc.create ~f0 ~ns in
            let pos = ref 0 in
            while !pos < total do
              let len = min size (total - !pos) in
              let b1 = FA.init len (fun i -> p1.(pos.contents + i)) in
              let b2 = FA.init len (fun i -> p2.(pos.contents + i)) in
              Vc.Counter_acc.feed acc ~p1:b1 ~p2:b2 ~len;
              pos := !pos + len
            done;
            check_points_close ~tol:1e-9
              (Printf.sprintf "chunk %d" size)
              expected
              (Vc.Counter_acc.points acc))
          [ 1; 1000; 8192; 40000 ]);
    Testkit.case "Counter_acc refuses feeding after points" (fun () ->
        let p1, p2, _ = jitter_fixture 4096 in
        let acc = Vc.Counter_acc.create ~f0 ~ns:[| 4 |] in
        let b1 = FA.init 4096 (fun i -> p1.(i)) in
        let b2 = FA.init 4096 (fun i -> p2.(i)) in
        Vc.Counter_acc.feed acc ~p1:b1 ~p2:b2 ~len:4096;
        let _ = Vc.Counter_acc.points acc in
        Alcotest.check_raises "finalized"
          (Invalid_argument "Counter_acc.feed: already finalized") (fun () ->
            Vc.Counter_acc.feed acc ~p1:b1 ~p2:b2 ~len:1));
  ]

(* ------------------------------------------------------------------ *)
(* FFT-path statistical validation                                     *)
(* ------------------------------------------------------------------ *)

module Fit = Ptrng_measure.Fit
module Allan = Ptrng_stats.Allan

(* Stream [n] samples out of a kasdin-config source into a plain array. *)
let fftpath_samples config ~seed n =
  let src = Source.create config (Testkit.rng ~seed ()) in
  let buf = FA.create n in
  Source.fill src buf;
  Array.init n (fun i -> FA.get buf i)

let fftpath_tests =
  let f0 = 1e8 in
  (* Fit the paper's a N + b N^2 model to a synthetic white+flicker
     relative-jitter series whose flicker part comes from [flicker]. *)
  let fit_of ~white_seed ~sigma_th flicker =
    let g = Ptrng_prng.Gaussian.create (Testkit.rng ~seed:white_seed ()) in
    let jitter =
      Array.map (fun fl -> (sigma_th *. Ptrng_prng.Gaussian.draw g) +. fl)
        flicker
    in
    let ns = Ptrng_measure.Variance_curve.log2_grid ~n_min:4 ~n_max:1024 in
    let pts = Ptrng_measure.Variance_curve.of_jitter ~domains:1 ~f0 ~ns jitter in
    Fit.fit ~f0 pts
  in
  [
    Testkit.case "overlap-add fitted (a, b) within 2 SE of the direct filter"
      (fun () ->
        (* Same truncated fractional-integration filter, two convolution
           engines: the streaming FFT overlap-add (Source.kasdin) and
           the O(taps)-per-sample direct form (Kasdin.stream_next), on
           independent input streams.  The fitted thermal and flicker
           coefficients must agree statistically. *)
        let n = 1 lsl 15 and taps = 2048 in
        let sigma_th = 1e-12 and sigma_w = 1e-12 in
        let fft_flicker =
          fftpath_samples
            (Source.kasdin ~taps ~block:2048 ~alpha:1.0 ~sigma_w ())
            ~seed:101L n
        in
        let st =
          Kasdin.stream_create
            (Ptrng_prng.Gaussian.create (Testkit.rng ~seed:303L ()))
            ~alpha:1.0 ~sigma_w ~taps
        in
        let direct_flicker = Array.init n (fun _ -> Kasdin.stream_next st) in
        let ff = fit_of ~white_seed:202L ~sigma_th fft_flicker in
        let df = fit_of ~white_seed:404L ~sigma_th direct_flicker in
        let tol2 s1 s2 = 2.0 *. sqrt ((s1 *. s1) +. (s2 *. s2)) in
        Testkit.check_abs ~tol:(tol2 ff.Fit.a_se df.Fit.a_se) "a" df.Fit.a
          ff.Fit.a;
        Testkit.check_abs ~tol:(tol2 ff.Fit.b_se df.Fit.b_se) "b" df.Fit.b
          ff.Fit.b);
    Testkit.case "PSD slope of the streamed 1/f output is -1" (fun () ->
        let n = 1 lsl 16 in
        let x =
          fftpath_samples
            (Source.kasdin ~taps:4096 ~block:4096 ~alpha:1.0 ~sigma_w:1.0 ())
            ~seed:55L n
        in
        let s = Ptrng_signal.Psd.welch ~seg_len:4096 ~fs:1.0 x in
        let slope, se = Slope.log_log_slope s ~f_lo:(8.0 /. 4096.0) ~f_hi:0.05 in
        Testkit.check_abs ~tol:(Float.max 0.15 (3.0 *. se)) "slope" (-1.0) slope);
    Testkit.case "Allan variance of streamed flicker FM is flat at 2 ln2 h-1"
      (fun () ->
        (* Source.flicker_fm calibrates sigma_w^2 = pi h_{-1}, putting
           the one-sided level at h_{-1}/f; flicker FM then has
           avar(tau) = 2 ln2 h_{-1}, independent of tau. *)
        let hm1 = 1.0 in
        let y =
          fftpath_samples
            (Source.flicker_fm ~taps:8192 ~block:4096 ~hm1 ())
            ~seed:77L (1 lsl 16)
        in
        let expected = Allan.avar_flicker_fm ~hm1 in
        List.iter
          (fun m ->
            let v = Allan.avar_overlapping ~tau0:1.0 ~m y in
            Testkit.check_rel ~tol:0.3 (Printf.sprintf "m=%d" m) expected v)
          [ 4; 16; 64 ]);
  ]

let () =
  Alcotest.run "streaming"
    [
      ("fft", fft_tests);
      ("white", white_tests);
      ("voss", voss_tests);
      ("spectral", spectral_tests);
      ("kasdin", kasdin_tests);
      ("fft-path", fftpath_tests);
      ("oscillator", oscillator_tests);
      ("accumulators", acc_tests);
    ]
