(* The scenario engine: profile/fault evaluation math, constructor
   validation, scenario-aware streaming physics (identity parity,
   quench and coupling effects on the relative jitter), the registry
   matrix, and the detection-latency scorer over synthetic snapshots. *)

module FA = Float.Array
module Sc = Ptrng_device.Scenario
module M = Ptrng_monitor
module Registry = Ptrng_scenario.Registry

let pi = Float.pi

(* ------------------------------------------------------------------ *)
(* Profile evaluation                                                  *)
(* ------------------------------------------------------------------ *)

let profile_tests =
  [
    Testkit.case "Const and Step" (fun () ->
        Testkit.check_abs ~tol:1e-15 "const" 1.3
          (Sc.eval_profile (Sc.Const 1.3) 12345);
        let s = Sc.Step { at = 100; before = 1.0; after = 0.5 } in
        Testkit.check_abs ~tol:1e-15 "before" 1.0 (Sc.eval_profile s 99);
        Testkit.check_abs ~tol:1e-15 "at" 0.5 (Sc.eval_profile s 100);
        Testkit.check_abs ~tol:1e-15 "after" 0.5 (Sc.eval_profile s 5000));
    Testkit.case "Ramp interpolates and clamps" (fun () ->
        let r = Sc.Ramp { start = 100; stop = 300; from_ = 1.0; to_ = 3.0 } in
        Testkit.check_abs ~tol:1e-12 "clamped low" 1.0 (Sc.eval_profile r 0);
        Testkit.check_abs ~tol:1e-12 "midpoint" 2.0 (Sc.eval_profile r 200);
        Testkit.check_abs ~tol:1e-12 "clamped high" 3.0 (Sc.eval_profile r 999));
    Testkit.case "Sine matches mean + A sin(2 pi k/P + phase)" (fun () ->
        let s =
          Sc.Sine { period = 400; mean = 1.0; amplitude = 0.25; phase = 0.0 }
        in
        Testkit.check_abs ~tol:1e-12 "k=0" 1.0 (Sc.eval_profile s 0);
        Testkit.check_abs ~tol:1e-12 "quarter period" 1.25
          (Sc.eval_profile s 100);
        Testkit.check_abs ~tol:1e-12 "three quarters" 0.75
          (Sc.eval_profile s 300);
        let c =
          Sc.Sine
            { period = 400; mean = 1.0; amplitude = 0.25; phase = pi /. 2.0 }
        in
        Testkit.check_abs ~tol:1e-12 "cosine phase at k=0" 1.25
          (Sc.eval_profile c 0));
    Testkit.case "Drift is exp(rate k)" (fun () ->
        let d = Sc.Drift { rate = -1e-3 } in
        Testkit.check_abs ~tol:1e-15 "identity at k=0" 1.0
          (Sc.eval_profile d 0);
        Testkit.check_rel ~tol:1e-12 "decay" (exp (-1.0))
          (Sc.eval_profile d 1000));
  ]

(* ------------------------------------------------------------------ *)
(* Constructor validation and fault evaluation                         *)
(* ------------------------------------------------------------------ *)

let make ?b_th ?b_fl ?f0 ?faults () =
  Sc.make ?b_th ?b_fl ?f0 ?faults ~name:"t" ~description:"test" ()

let raises_invalid name f =
  Testkit.check_true name
    (match f () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let validation_tests =
  [
    Testkit.case "rejects out-of-range parameters" (fun () ->
        raises_invalid "non-positive const" (fun () ->
            make ~b_th:(Sc.Const 0.0) ());
        raises_invalid "sine amplitude >= mean" (fun () ->
            make
              ~b_fl:
                (Sc.Sine { period = 64; mean = 1.0; amplitude = 1.0; phase = 0.0 })
              ());
        raises_invalid "quench factor > 1" (fun () ->
            make
              ~faults:
                [ Sc.Thermal_quench { onset = 0; duration = 1; factor = 1.5 } ]
              ());
        raises_invalid "negative onset" (fun () ->
            make
              ~faults:
                [ Sc.Thermal_quench { onset = -1; duration = 1; factor = 0.5 } ]
              ());
        raises_invalid "coupling strength = 1" (fun () ->
            make
              ~faults:[ Sc.Coupling { onset = 0; duration = 1; strength = 1.0 } ]
              ());
        raises_invalid "tone freq above Nyquist" (fun () ->
            make
              ~faults:
                [
                  Sc.Tone_injection
                    { onset = 0; duration = 1; freq = 0.6; amplitude = 1e-4 };
                ]
              ()));
    Testkit.case "faults apply only inside their window" (fun () ->
        let t =
          make
            ~faults:
              [ Sc.Thermal_quench { onset = 100; duration = 50; factor = 0.1 } ]
            ()
        in
        let st = Sc.state () in
        Sc.eval t 99 st;
        Testkit.check_abs ~tol:1e-15 "identity before onset" 1.0 st.th_mult;
        Sc.eval t 100 st;
        Testkit.check_abs ~tol:1e-15 "quenched at onset" 0.1 st.th_mult;
        Sc.eval t 149 st;
        Testkit.check_abs ~tol:1e-15 "quenched at last index" 0.1 st.th_mult;
        Sc.eval t 150 st;
        Testkit.check_abs ~tol:1e-15 "identity after" 1.0 st.th_mult);
    Testkit.case "supply droop scales f0 down and b_th up" (fun () ->
        let t =
          make
            ~faults:
              [ Sc.Supply_droop { onset = 0; duration = 10; depth = 0.2 } ]
            ()
        in
        let st = Sc.state () in
        Sc.eval t 5 st;
        Testkit.check_abs ~tol:1e-12 "f0 x (1-depth)" 0.8 st.f0_mult;
        Testkit.check_rel ~tol:1e-12 "b_th x 1/(1-depth)" 1.25 st.th_mult);
    Testkit.case "tone and coupling land in the state" (fun () ->
        let t =
          make
            ~faults:
              [
                Sc.Tone_injection
                  { onset = 10; duration = 100; freq = 0.25; amplitude = 2e-4 };
                Sc.Coupling { onset = 10; duration = 100; strength = 0.9 };
              ]
            ()
        in
        let st = Sc.state () in
        Sc.eval t 11 st;
        (* One quarter tone cycle past the onset: sin(2 pi 0.25) = 1. *)
        Testkit.check_rel ~tol:1e-12 "tone peak" 2e-4 st.tone;
        Testkit.check_abs ~tol:1e-15 "coupling strength" 0.9 st.coupling;
        Sc.eval t 5 st;
        Testkit.check_abs ~tol:1e-15 "no tone before onset" 0.0 st.tone;
        Testkit.check_abs ~tol:1e-15 "no coupling before onset" 0.0 st.coupling);
    Testkit.case "onset is the earliest departure" (fun () ->
        Testkit.check_true "calm has none" (Sc.onset (make ()) = None);
        let t =
          make
            ~b_th:(Sc.Step { at = 500; before = 1.0; after = 0.5 })
            ~faults:
              [ Sc.Thermal_quench { onset = 300; duration = 10; factor = 0.5 } ]
            ()
        in
        Testkit.check_true "earliest of profile and fault"
          (Sc.onset t = Some 300));
  ]

(* ------------------------------------------------------------------ *)
(* Scenario-aware streaming physics                                    *)
(* ------------------------------------------------------------------ *)

let stream_periods ?scenario ~seed n =
  let rng = Ptrng_prng.Rng.create ~seed () in
  let pair = Ptrng_osc.Pair.paper_pair () in
  let st = Ptrng_osc.Pair.stream ~flicker_block:n ?scenario rng pair in
  let p1 = FA.create n and p2 = FA.create n in
  Ptrng_osc.Pair.fill st ~p1 ~p2 ~len:n;
  (p1, p2)

let relative_sd p1 p2 =
  let n = FA.length p1 in
  let mean = ref 0.0 in
  for i = 0 to n - 1 do
    mean := !mean +. (FA.get p1 i -. FA.get p2 i)
  done;
  let mean = !mean /. float_of_int n in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    let d = FA.get p1 i -. FA.get p2 i -. mean in
    acc := !acc +. (d *. d)
  done;
  sqrt (!acc /. float_of_int (n - 1))

let stream_tests =
  [
    Testkit.case "identity scenario is bit-identical to the plain stream"
      (fun () ->
        let n = 4096 in
        let a1, a2 = stream_periods ~seed:11L n in
        let b1, b2 = stream_periods ~scenario:(make ()) ~seed:11L n in
        Testkit.check_true "osc1 parity" (a1 = b1);
        Testkit.check_true "osc2 parity" (a2 = b2));
    Testkit.case "thermal quench shrinks the relative jitter" (fun () ->
        let n = 1 lsl 14 in
        let quench =
          make
            ~faults:
              [ Sc.Thermal_quench { onset = 0; duration = Sc.forever; factor = 0.01 } ]
            ()
        in
        let c1, c2 = stream_periods ~seed:12L n in
        let q1, q2 = stream_periods ~scenario:quench ~seed:12L n in
        let sd_calm = relative_sd c1 c2 and sd_q = relative_sd q1 q2 in
        (* b_th x 0.01 scales the thermal deviation by 10x; flicker is
           untouched, so allow a loose factor. *)
        Testkit.check_true "jitter collapsed" (sd_q < 0.5 *. sd_calm));
    Testkit.case "coupling collapses relative jitter and detuning" (fun () ->
        let n = 1 lsl 14 in
        let lock =
          make
            ~faults:
              [ Sc.Coupling { onset = 0; duration = Sc.forever; strength = 0.95 } ]
            ()
        in
        let c1, c2 = stream_periods ~seed:13L n in
        let l1, l2 = stream_periods ~scenario:lock ~seed:13L n in
        Testkit.check_true "jitter collapsed"
          (relative_sd l1 l2 < 0.2 *. relative_sd c1 c2);
        let mean p =
          let acc = ref 0.0 in
          FA.iter (fun v -> acc := !acc +. v) p;
          !acc /. float_of_int n
        in
        let detuning a b = Float.abs (mean a -. mean b) in
        Testkit.check_true "frequencies pulled together"
          (detuning l1 l2 < 0.2 *. detuning c1 c2));
  ]

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let registry_tests =
  [
    Testkit.case "matrix has at least 8 uniquely named workloads" (fun () ->
        let names = Registry.names () in
        Testkit.check_true "size" (List.length names >= 8);
        Testkit.check_true "unique"
          (List.length (List.sort_uniq compare names) = List.length names));
    Testkit.case "find round-trips every name, rejects unknowns" (fun () ->
        List.iter
          (fun n ->
            match Registry.find n with
            | Some e ->
              Testkit.check_true ("name " ^ n) (Sc.name e.scenario = n)
            | None -> Alcotest.fail ("registry lost " ^ n))
          (Registry.names ());
        Testkit.check_true "unknown name" (Registry.find "no-such" = None));
    Testkit.case "geometry is coherent" (fun () ->
        Testkit.check_true "onset inside the run"
          (Registry.fault_onset + Registry.fault_duration
          < Registry.default_periods);
        List.iter
          (fun (e : Registry.entry) ->
            Testkit.check_true (Sc.name e.scenario ^ " periods") (e.periods > 0);
            Testkit.check_true (Sc.name e.scenario ^ " divisor") (e.divisor > 0);
            Testkit.check_true
              (Sc.name e.scenario ^ " expected text")
              (String.length e.expected > 0);
            match Sc.onset e.scenario with
            | None -> ()
            | Some o ->
              Testkit.check_true (Sc.name e.scenario ^ " onset") (o < e.periods))
          (Registry.all ()));
  ]

(* ------------------------------------------------------------------ *)
(* Detection scoring over synthetic snapshots                          *)
(* ------------------------------------------------------------------ *)

let ok_verdict = M.Verdict.make [] ~failing:(fun _ -> false)

let bad_verdict code =
  M.Verdict.make
    [ { M.Verdict.code; detail = "t" } ]
    ~failing:(fun _ -> false)

let snap ?(periods = 0) ?(bits = 0) ?(windows = 0) ?(rct = 0) ?(apt = 0)
    ?(ais31 = 0) ?(r = 0.99) ?(verdict = ok_verdict) () : M.Monitor.snapshot =
  {
    t_s = 0.0;
    periods;
    bits;
    windows;
    ready = true;
    judge_n = 32;
    confidence = 0.95;
    r_judge = r;
    k_est = 5354.0;
    threshold_n = max_int;
    points = [||];
    rct_alarms = rct;
    apt_alarms = apt;
    ais31_alarms = ais31;
    ais31_blocks = 0;
    alarm_rate = 0.0;
    ewma_value = 0.0;
    ewma_crossed = false;
    cusum_pos = 0.0;
    cusum_neg = 0.0;
    cusum_crossed = false;
    min_entropy = 0.95;
    clean_streak = 0;
    recoveries = 0;
    windows_since_alarm = 0;
    recent_r = [||];
    recent_entropy = [||];
    recent_alarms = [||];
    recent_since_alarm = [||];
    transitions = [||];
    verdict;
  }

let detection_tests =
  [
    Testkit.case "calm run counts false alarms, never detects" (fun () ->
        let d = M.Detection.create () in
        M.Detection.observe d (snap ~periods:100 ());
        M.Detection.observe d (snap ~periods:200 ~rct:2 ());
        let s = M.Detection.summary d in
        Alcotest.(check int) "false alarms" 2 s.false_alarms;
        Testkit.check_true "no detection" (s.detected = None));
    Testkit.case "first alarm is attributed and latency-stamped" (fun () ->
        let d = M.Detection.create ~onset_period:1000 () in
        M.Detection.observe d (snap ~periods:900 ~bits:30 ~windows:2 ());
        M.Detection.observe d
          (snap ~periods:1500 ~bits:50 ~windows:3 ~rct:1
             ~verdict:(bad_verdict "rct") ());
        match (M.Detection.summary d).detected with
        | None -> Alcotest.fail "no detection"
        | Some a ->
          Alcotest.(check string) "detector" "rct" a.detector;
          Alcotest.(check int) "at period" 1500 a.at_period;
          Alcotest.(check int) "latency periods" 500 a.latency_periods;
          Alcotest.(check int) "latency bits" 20 a.latency_bits;
          Alcotest.(check int) "latency windows" 1 a.latency_windows);
    Testkit.case "model-level detection falls back to the verdict reason"
      (fun () ->
        let d = M.Detection.create ~onset_period:100 () in
        M.Detection.observe d (snap ~periods:50 ());
        M.Detection.observe d
          (snap ~periods:200 ~r:0.80 ~verdict:(bad_verdict "independence") ());
        match (M.Detection.summary d).detected with
        | Some a -> Alcotest.(check string) "detector" "independence" a.detector
        | None -> Alcotest.fail "no detection");
    Testkit.case "recovery is the terminal ok streak" (fun () ->
        let d = M.Detection.create ~onset_period:100 () in
        M.Detection.observe d
          (snap ~periods:200 ~rct:1 ~verdict:(bad_verdict "rct") ());
        M.Detection.observe d (snap ~periods:300 ~windows:3 ~rct:1 ());
        Testkit.check_true "recovered after first ok"
          ((M.Detection.summary d).recovered <> None);
        M.Detection.observe d
          (snap ~periods:400 ~rct:2 ~verdict:(bad_verdict "rct") ());
        Testkit.check_true "relapse clears it"
          ((M.Detection.summary d).recovered = None);
        M.Detection.observe d (snap ~periods:500 ~windows:5 ~rct:2 ());
        match (M.Detection.summary d).recovered with
        | Some r -> Alcotest.(check int) "terminal streak start" 500 r.at_period
        | None -> Alcotest.fail "terminal recovery lost");
    Testkit.case "lie margins track static minus live" (fun () ->
        let d =
          M.Detection.create ~onset_period:100 ~static_r:0.994
            ~static_entropy:0.27 ()
        in
        M.Detection.observe d ~live_entropy:0.26 (snap ~periods:200 ~r:0.91 ());
        M.Detection.observe d ~live_entropy:0.10 (snap ~periods:300 ~r:0.95 ());
        let s = M.Detection.summary d in
        Testkit.check_abs ~tol:1e-9 "r margin is the max" 0.084 s.lie_margin_r;
        Testkit.check_abs ~tol:1e-9 "entropy margin" 0.17 s.lie_margin_entropy);
  ]

let () =
  Alcotest.run "ptrng_scenario"
    [
      ("profile", profile_tests);
      ("validation", validation_tests);
      ("stream", stream_tests);
      ("registry", registry_tests);
      ("detection", detection_tests);
    ]
