open Ptrng_trng

let bitstream_tests =
  [
    Testkit.case "of_ints validates bit values" (fun () ->
        let s = Bitstream.of_ints [| 1; 0; 1; 1 |] in
        Alcotest.(check int) "length" 4 (Bitstream.length s);
        Testkit.check_true "bit 0" (Bitstream.get s 0);
        Testkit.check_false "bit 1" (Bitstream.get s 1);
        Alcotest.check_raises "2 is not a bit"
          (Invalid_argument "Bitstream.of_ints: 2 is not a bit")
          (fun () -> ignore (Bitstream.of_ints [| 2 |])));
    Testkit.case "to_bytes packs MSB first" (fun () ->
        let s = Bitstream.of_ints [| 1; 0; 1; 0; 0; 0; 0; 1; 1 |] in
        let b = Bitstream.to_bytes s in
        Alcotest.(check int) "bytes" 2 (Bytes.length b);
        Alcotest.(check int) "first byte" 0xA1 (Char.code (Bytes.get b 0));
        Alcotest.(check int) "padded tail" 0x80 (Char.code (Bytes.get b 1)));
    Testkit.case "ones and bias" (fun () ->
        let s = Bitstream.of_ints [| 1; 1; 1; 0 |] in
        Alcotest.(check int) "ones" 3 (Bitstream.ones s);
        Testkit.check_rel ~tol:1e-12 "bias" 0.25 (Bitstream.bias s));
    Testkit.case "sub and concat" (fun () ->
        let s = Bitstream.of_ints [| 1; 0; 1; 1; 0 |] in
        let t = Bitstream.sub s ~pos:1 ~len:3 in
        Alcotest.(check int) "sub length" 3 (Bitstream.length t);
        let u = Bitstream.concat [ t; t ] in
        Alcotest.(check int) "concat length" 6 (Bitstream.length u);
        Testkit.check_false "first" (Bitstream.get u 0);
        Testkit.check_true "second" (Bitstream.get u 1));
    Testkit.case "serial correlation of alternating bits is -1" (fun () ->
        let s = Bitstream.of_bools (Array.init 100 (fun i -> i land 1 = 0)) in
        Testkit.check_abs ~tol:0.05 "alternating" (-1.0) (Bitstream.serial_correlation s));
    Testkit.case "serial correlation of random bits is ~0" (fun () ->
        let rng = Testkit.rng () in
        let s = Bitstream.of_bools (Array.init 20000 (fun _ -> Ptrng_prng.Rng.bool rng)) in
        Testkit.check_abs ~tol:0.03 "random" 0.0 (Bitstream.serial_correlation s));
  ]

let sampler_tests =
  [
    Testkit.case "state_at reads the square wave" (fun () ->
        (* Period 2 s: high on [0,1), low on [1,2). *)
        let edges = [| 0.0; 2.0; 4.0 |] in
        Testkit.check_true "early" (Sampler.state_at ~edges 0.5);
        Testkit.check_false "late" (Sampler.state_at ~edges 1.5);
        Testkit.check_true "second period" (Sampler.state_at ~edges 2.9);
        Alcotest.check_raises "outside"
          (Invalid_argument "Sampler.state_at: instant outside edge span")
          (fun () -> ignore (Sampler.state_at ~edges 4.5)));
    Testkit.case "sample latches at divided clock edges" (fun () ->
        (* Osc1: period 2 (high first half).  Osc2: period 3.
           divisor 1 -> samples at t = 3, 6, 9, ...:
           t=3: 3 mod 2 = 1 -> low; t=6: 0 -> high; t=9: 1 -> low. *)
        let osc1 = Array.init 20 (fun i -> 2.0 *. float_of_int i) in
        let osc2 = Array.init 10 (fun i -> 3.0 *. float_of_int i) in
        let bits = Sampler.sample ~osc1_edges:osc1 ~osc2_edges:osc2 ~divisor:1 in
        Alcotest.(check (array bool)) "pattern"
          [| false; true; false; true; false; true; false; true; false |]
          bits);
    Testkit.case "divisor strides the sampling clock" (fun () ->
        let osc1 = Array.init 200 (fun i -> 2.0 *. float_of_int i) in
        let osc2 = Array.init 100 (fun i -> 3.0 *. float_of_int i) in
        let bits = Sampler.sample ~osc1_edges:osc1 ~osc2_edges:osc2 ~divisor:4 in
        (* Samples at t = 12, 24, 36...: 12 mod 2 = 0 -> all high. *)
        Array.iter (fun b -> Testkit.check_true "high" b) bits;
        Alcotest.(check int) "count" 24 (Array.length bits));
    Testkit.case "rejects non-positive divisor" (fun () ->
        Alcotest.check_raises "divisor" (Invalid_argument "Sampler.sample: divisor <= 0")
          (fun () ->
            ignore (Sampler.sample ~osc1_edges:[| 0.0; 1.0 |] ~osc2_edges:[| 0.0 |] ~divisor:0)));
  ]

let post_process_tests =
  [
    Testkit.case "xor_decimate computes group parity" (fun () ->
        let s = Bitstream.of_ints [| 1; 0; 1; 1; 0; 0; 1; 1; 1 |] in
        let out = Post_process.xor_decimate ~k:3 s in
        Alcotest.(check int) "length" 3 (Bitstream.length out);
        Testkit.check_false "110 -> 0" (Bitstream.get out 0);
        Testkit.check_true "100 -> 1" (Bitstream.get out 1);
        Testkit.check_true "111 -> 1" (Bitstream.get out 2));
    Testkit.case "xor_decimate reduces bias per the piling-up lemma" (fun () ->
        let rng = Testkit.rng () in
        let p = 0.6 in
        let raw =
          Bitstream.of_bools
            (Array.init 400000 (fun _ -> Ptrng_prng.Distributions.bernoulli rng ~p))
        in
        let out = Post_process.xor_decimate ~k:4 raw in
        let expected = Post_process.expected_xor_bias ~bias:0.1 ~k:4 in
        Testkit.check_abs ~tol:0.004 "bias" expected (Bitstream.bias out));
    Testkit.case "expected_xor_bias closed form" (fun () ->
        Testkit.check_rel ~tol:1e-12 "k=4" (8.0 *. (0.1 ** 4.0))
          (Post_process.expected_xor_bias ~bias:0.1 ~k:4));
    Testkit.case "von_neumann mapping" (fun () ->
        let s = Bitstream.of_ints [| 0; 1; 1; 0; 0; 0; 1; 1; 1; 0 |] in
        let out = Post_process.von_neumann s in
        (* Pairs: 01 -> 0, 10 -> 1, 00 -> drop, 11 -> drop, 10 -> 1. *)
        Alcotest.(check int) "length" 3 (Bitstream.length out);
        Testkit.check_false "01" (Bitstream.get out 0);
        Testkit.check_true "10" (Bitstream.get out 1);
        Testkit.check_true "10 again" (Bitstream.get out 2));
    Testkit.case "von_neumann unbiases independent biased bits" (fun () ->
        let rng = Testkit.rng () in
        let raw =
          Bitstream.of_bools
            (Array.init 200000 (fun _ -> Ptrng_prng.Distributions.bernoulli rng ~p:0.7))
        in
        let out = Post_process.von_neumann raw in
        (* Throughput p(1-p)*2 = 0.42 pairs kept. *)
        Testkit.check_true "output long enough" (Bitstream.length out > 30000);
        Testkit.check_abs ~tol:0.01 "bias" 0.0 (Bitstream.bias out));
  ]

let ero_trng_tests =
  [
    Testkit.case "generates the requested number of bits" (fun () ->
        let cfg = Ero_trng.config ~divisor:100 (Ptrng_osc.Pair.paper_pair ()) in
        let s = Ero_trng.generate (Testkit.rng ()) cfg ~bits:500 in
        Alcotest.(check int) "bits" 500 (Bitstream.length s));
    Testkit.case "xor_factor divides the output length" (fun () ->
        let cfg = Ero_trng.config ~divisor:50 ~xor_factor:2 (Ptrng_osc.Pair.paper_pair ()) in
        let s = Ero_trng.generate (Testkit.rng ()) cfg ~bits:400 in
        Alcotest.(check int) "bits" 200 (Bitstream.length s));
    Testkit.case "long accumulation gives nearly unbiased bits" (fun () ->
        (* divisor 2000 >> V_th: phase diffusion covers many periods. *)
        let cfg = Ero_trng.config ~divisor:2000 (Ptrng_osc.Pair.paper_pair ()) in
        let s = Ero_trng.generate (Testkit.rng ()) cfg ~bits:2000 in
        Testkit.check_abs ~tol:0.08 "bias" 0.0 (Bitstream.bias s));
    Testkit.case "rejects bad bit counts" (fun () ->
        let cfg = Ero_trng.paper_trng () in
        Alcotest.check_raises "bits" (Invalid_argument "Ero_trng.generate_raw: bits <= 0")
          (fun () -> ignore (Ero_trng.generate (Testkit.rng ()) cfg ~bits:0)));
  ]

let coherent_tests =
  [
    Testkit.case "rejects non-coprime ratios" (fun () ->
        Alcotest.check_raises "6/4"
          (Invalid_argument "Coherent.config: km and kd must be coprime")
          (fun () ->
            ignore (Ptrng_trng.Coherent.config ~f0:100e6 ~km:6 ~kd:4 ())));
    Testkit.case "zero jitter gives a deterministic pattern" (fun () ->
        let cfg =
          Ptrng_trng.Coherent.config
            ~relative:{ Ptrng_noise.Psd_model.b_th = 0.0; b_fl = 0.0 }
            ~f0:100e6 ~km:17 ~kd:16 ()
        in
        let bits = Ptrng_trng.Coherent.generate (Testkit.rng ()) cfg ~bits:500 in
        (* Constant output: every pattern sees the same sample phases. *)
        let ones = Ptrng_trng.Bitstream.ones bits in
        Testkit.check_true "constant"
          (ones = 0 || ones = Ptrng_trng.Bitstream.length bits));
    Testkit.case "paper-level jitter produces nearly unbiased bits" (fun () ->
        let cfg =
          Ptrng_trng.Coherent.config ~f0:Ptrng_osc.Pair.paper_f0 ~km:157 ~kd:156 ()
        in
        let bits = Ptrng_trng.Coherent.generate (Testkit.rng ~seed:8L ()) cfg ~bits:3000 in
        Alcotest.(check int) "count" 3000 (Ptrng_trng.Bitstream.length bits);
        Testkit.check_abs ~tol:0.06 "bias" 0.0 (Ptrng_trng.Bitstream.bias bits);
        Testkit.check_abs ~tol:0.08 "serial correlation" 0.0
          (Ptrng_trng.Bitstream.serial_correlation bits));
    Testkit.case "critical fraction scales as sqrt(kd) * sigma / T1" (fun () ->
        let f0 = 100e6 in
        let cfg16 = Ptrng_trng.Coherent.config ~f0 ~km:17 ~kd:16 () in
        let cfg64 = Ptrng_trng.Coherent.config ~f0 ~km:65 ~kd:64 () in
        let sigma = 10e-12 in
        let frac16 = Ptrng_trng.Coherent.critical_fraction cfg16 ~sigma_period:sigma in
        let frac64 = Ptrng_trng.Coherent.critical_fraction cfg64 ~sigma_period:sigma in
        (* f1 differs slightly between the two ratios; compare loosely. *)
        Testkit.check_rel ~tol:0.1 "x2 when kd x4" 2.0 (frac64 /. frac16);
        let doubled = Ptrng_trng.Coherent.critical_fraction cfg16 ~sigma_period:(2.0 *. sigma) in
        Testkit.check_rel ~tol:1e-9 "linear in sigma" 2.0 (doubled /. frac16));
  ]

let multi_ring_tests =
  [
    Testkit.case "rejects bad configurations" (fun () ->
        Alcotest.check_raises "rings"
          (Invalid_argument "Multi_ring.config: rings outside [1,64]")
          (fun () -> ignore (Multi_ring.config ~f0:100e6 ~rings:0 ~divisor:100 ())));
    Testkit.case "XOR whitens the structure of a single ring" (fun () ->
        (* Short accumulation: each ring alone shows strong serial
           structure (its sampling phase sweeps quasi-periodically);
           XOR-ing 4 independently detuned rings collapses it. *)
        let cfg = Multi_ring.config ~f0:Ptrng_osc.Pair.paper_f0 ~rings:4 ~divisor:60 () in
        let rng = Testkit.rng ~seed:61L () in
        let single = Multi_ring.generate_single rng cfg ~ring:0 ~bits:6000 in
        let xored = Multi_ring.generate rng cfg ~bits:6000 in
        let c_single = Float.abs (Bitstream.serial_correlation single) in
        let c_xor = Float.abs (Bitstream.serial_correlation xored) in
        Testkit.check_true "single ring is strongly structured" (c_single > 0.1);
        Testkit.check_true "xor collapses the structure" (c_xor < c_single /. 2.0));
    Testkit.case "output length follows the request" (fun () ->
        let cfg = Multi_ring.config ~f0:Ptrng_osc.Pair.paper_f0 ~rings:2 ~divisor:50 () in
        let bits = Multi_ring.generate (Testkit.rng ()) cfg ~bits:1000 in
        Alcotest.(check int) "count" 1000 (Bitstream.length bits));
  ]

let metastable_tests =
  [
    Testkit.case "bit probability follows the offset" (fun () ->
        let cfg = Metastable.config ~sigma_setup:10e-12 () in
        Testkit.check_rel ~tol:1e-9 "centered" 0.5
          (Metastable.bit_probability cfg ~offset:0.0);
        Testkit.check_true "positive offset favours 1"
          (Metastable.bit_probability cfg ~offset:10e-12 > 0.8);
        Testkit.check_true "negative offset favours 0"
          (Metastable.bit_probability cfg ~offset:(-10e-12) < 0.2));
    Testkit.case "calibrated generator is unbiased, detuned one is not" (fun () ->
        let centered = Metastable.config ~sigma_setup:10e-12 () in
        let off = Metastable.config ~offset0:20e-12 ~sigma_setup:10e-12 () in
        let rng = Testkit.rng ~seed:62L () in
        let b1 = Bitstream.bias (Metastable.generate rng centered ~bits:50000) in
        let b2 = Bitstream.bias (Metastable.generate rng off ~bits:50000) in
        Testkit.check_abs ~tol:0.01 "centered" 0.0 b1;
        Testkit.check_true "offset biases the output" (b2 > 0.4));
    Testkit.case "expected entropy is maximal at zero offset" (fun () ->
        let centered = Metastable.config ~sigma_setup:10e-12 () in
        Testkit.check_rel ~tol:1e-9 "full" 1.0 (Metastable.expected_entropy centered);
        let off = Metastable.config ~offset0:15e-12 ~sigma_setup:10e-12 () in
        Testkit.check_true "degraded" (Metastable.expected_entropy off < 0.65));
    Testkit.case "random-walk drift degrades a calibrated generator" (fun () ->
        (* A one-shot calibration certifies H = 1; the drifting offset
           walks away and late bits become biased. *)
        let cfg =
          Metastable.config ~drift_walk:0.3e-12 ~sigma_setup:10e-12 ()
        in
        let bits = Metastable.generate (Testkit.rng ~seed:63L ()) cfg ~bits:60000 in
        let early = Bitstream.sub bits ~pos:0 ~len:5000 in
        let late = Bitstream.sub bits ~pos:55000 ~len:5000 in
        Testkit.check_true "late bias exceeds early bias"
          (Float.abs (Bitstream.bias late) > Float.abs (Bitstream.bias early) +. 0.05));
    Testkit.case "flicker wandering correlates the bits" (fun () ->
        let cfg =
          Metastable.config ~flicker_hm1:3e-24 ~sigma_setup:10e-12 ()
        in
        let bits = Metastable.generate (Testkit.rng ~seed:64L ()) cfg ~bits:40000 in
        let clean = Metastable.config ~sigma_setup:10e-12 () in
        let ref_bits = Metastable.generate (Testkit.rng ~seed:64L ()) clean ~bits:40000 in
        Testkit.check_true "serial correlation grows"
          (Float.abs (Bitstream.serial_correlation bits)
          > Float.abs (Bitstream.serial_correlation ref_bits) +. 0.02));
  ]

let attack_tests =
  [
    Testkit.case "frequency injection scales both coefficients" (fun () ->
        let pair = Ptrng_osc.Pair.paper_pair () in
        let attacked = Attack.frequency_injection ~lock_strength:0.9 pair in
        Testkit.check_rel ~tol:1e-12 "b_th x0.1"
          (pair.Ptrng_osc.Pair.osc1.Ptrng_osc.Oscillator.phase.Ptrng_noise.Psd_model.b_th *. 0.1)
          attacked.Ptrng_osc.Pair.osc1.Ptrng_osc.Oscillator.phase.Ptrng_noise.Psd_model.b_th;
        Testkit.check_rel ~tol:1e-12 "locked frequencies"
          attacked.Ptrng_osc.Pair.osc1.Ptrng_osc.Oscillator.f0
          attacked.Ptrng_osc.Pair.osc2.Ptrng_osc.Oscillator.f0);
    Testkit.case "thermal quench leaves flicker untouched" (fun () ->
        let pair = Ptrng_osc.Pair.paper_pair () in
        let attacked = Attack.thermal_quench ~factor:0.2 pair in
        Testkit.check_rel ~tol:1e-12 "b_th x0.2"
          (pair.Ptrng_osc.Pair.osc1.Ptrng_osc.Oscillator.phase.Ptrng_noise.Psd_model.b_th *. 0.2)
          attacked.Ptrng_osc.Pair.osc1.Ptrng_osc.Oscillator.phase.Ptrng_noise.Psd_model.b_th;
        Testkit.check_rel ~tol:1e-12 "b_fl unchanged"
          pair.Ptrng_osc.Pair.osc1.Ptrng_osc.Oscillator.phase.Ptrng_noise.Psd_model.b_fl
          attacked.Ptrng_osc.Pair.osc1.Ptrng_osc.Oscillator.phase.Ptrng_noise.Psd_model.b_fl);
    Testkit.case "attacked TRNG produces more biased samples" (fun () ->
        (* With the relative jitter almost gone, the sampled phase barely
           diffuses between samples: strong serial correlation. *)
        let clean = Ero_trng.config ~divisor:500 (Ptrng_osc.Pair.paper_pair ()) in
        let locked =
          Ero_trng.config ~divisor:500
            (Attack.frequency_injection ~lock_strength:0.999 (Ptrng_osc.Pair.paper_pair ()))
        in
        let s_clean = Ero_trng.generate (Testkit.rng ~seed:4L ()) clean ~bits:4000 in
        let s_locked = Ero_trng.generate (Testkit.rng ~seed:4L ()) locked ~bits:4000 in
        let corr s = Float.abs (Bitstream.serial_correlation s) in
        Testkit.check_true "correlation grows under attack"
          (corr s_locked > corr s_clean +. 0.1));
    Testkit.case "rejects out-of-range strengths" (fun () ->
        Alcotest.check_raises "1.0"
          (Invalid_argument "Attack.frequency_injection: lock_strength outside [0,1)")
          (fun () ->
            ignore (Attack.frequency_injection ~lock_strength:1.0 (Ptrng_osc.Pair.paper_pair ())));
        Alcotest.check_raises "negative lock"
          (Invalid_argument "Attack.frequency_injection: lock_strength outside [0,1)")
          (fun () ->
            ignore
              (Attack.frequency_injection ~lock_strength:(-0.1)
                 (Ptrng_osc.Pair.paper_pair ())));
        Alcotest.check_raises "zero factor"
          (Invalid_argument "Attack.thermal_quench: factor outside (0,1]")
          (fun () ->
            ignore (Attack.thermal_quench ~factor:0.0 (Ptrng_osc.Pair.paper_pair ())));
        Alcotest.check_raises "factor above one"
          (Invalid_argument "Attack.thermal_quench: factor outside (0,1]")
          (fun () ->
            ignore (Attack.thermal_quench ~factor:1.5 (Ptrng_osc.Pair.paper_pair ()))));
    Testkit.case "quench shrinks the fitted thermal coefficient" (fun () ->
        (* The statistical face of the attack: the variance-curve fit
           over the quenched pair's relative jitter must recover a
           linear coefficient close to factor x the calibrated one. *)
        let fitted_a pair seed =
          let n = 1 lsl 15 in
          let p1, p2 = Ptrng_osc.Pair.simulate (Testkit.rng ~seed ()) pair ~n in
          let jitter = Array.init n (fun i -> p1.(i) -. p2.(i)) in
          let ns = Ptrng_measure.Variance_curve.log2_grid ~n_min:4 ~n_max:256 in
          let curve =
            Ptrng_measure.Variance_curve.of_jitter
              ~f0:Ptrng_osc.Pair.paper_f0 ~ns jitter
          in
          (Ptrng_measure.Fit.fit ~f0:Ptrng_osc.Pair.paper_f0 curve).a
        in
        let clean = fitted_a (Ptrng_osc.Pair.paper_pair ()) 31L in
        let quenched =
          fitted_a
            (Attack.thermal_quench ~factor:0.05 (Ptrng_osc.Pair.paper_pair ()))
            31L
        in
        Testkit.check_true "a collapsed with the quench"
          (quenched < 0.2 *. clean));
  ]

let () =
  Alcotest.run "ptrng_trng"
    [
      ("bitstream", bitstream_tests);
      ("sampler", sampler_tests);
      ("post_process", post_process_tests);
      ("ero_trng", ero_trng_tests);
      ("coherent", coherent_tests);
      ("multi_ring", multi_ring_tests);
      ("metastable", metastable_tests);
      ("attack", attack_tests);
    ]
