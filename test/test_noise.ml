(* The legacy whole-array generators are the statistical references
   here, so their deprecation alert is silenced for this file. *)
[@@@ocaml.alert "-deprecated"]

open Ptrng_noise

let psd_model_tests =
  [
    Testkit.case "phase PSD evaluates the two-term law" (fun () ->
        let p = { Psd_model.b_th = 276.04; b_fl = 1.9e6 } in
        Testkit.check_rel ~tol:1e-12 "at 1 kHz"
          ((1.9e6 /. 1e9) +. (276.04 /. 1e6))
          (Psd_model.phase_psd p 1e3));
    Testkit.case "phase <-> frac_freq round trip" (fun () ->
        let p = { Psd_model.b_th = 276.04; b_fl = 1.9152e6 } in
        let y = Psd_model.frac_freq_of_phase ~f0:103e6 p in
        let back = Psd_model.phase_of_frac_freq ~f0:103e6 y in
        Testkit.check_rel ~tol:1e-12 "b_th" p.b_th back.Psd_model.b_th;
        Testkit.check_rel ~tol:1e-12 "b_fl" p.b_fl back.Psd_model.b_fl);
    Testkit.case "calibration identities" (fun () ->
        (* h0 = 2 b_th / f0^2, h-1 = 2 b_fl / f0^2. *)
        let f0 = 103e6 in
        let p = { Psd_model.b_th = 276.04; b_fl = 1.9152e6 } in
        let y = Psd_model.frac_freq_of_phase ~f0 p in
        Testkit.check_rel ~tol:1e-12 "h0" (2.0 *. 276.04 /. (f0 *. f0)) y.Psd_model.h0;
        Testkit.check_rel ~tol:1e-12 "hm1" (2.0 *. 1.9152e6 /. (f0 *. f0)) y.Psd_model.hm1);
    Testkit.case "thermal period jitter variance matches the paper" (fun () ->
        (* sigma = sqrt(b_th/f0^3) = 15.89 ps for the paper's numbers. *)
        let p = { Psd_model.b_th = 276.04; b_fl = 0.0 } in
        let v = Psd_model.thermal_period_jitter_var ~f0:103e6 p in
        Testkit.check_rel ~tol:1e-3 "sigma in ps" 15.89 (sqrt v *. 1e12));
    Testkit.case "corner frequency" (fun () ->
        let p = { Psd_model.b_th = 2.0; b_fl = 10.0 } in
        Testkit.check_rel ~tol:1e-12 "corner" 5.0 (Psd_model.corner_frequency p));
    Testkit.case "rejects non-positive frequency" (fun () ->
        Alcotest.check_raises "f=0" (Invalid_argument "Psd_model: f <= 0") (fun () ->
            ignore (Psd_model.phase_psd { Psd_model.b_th = 1.0; b_fl = 1.0 } 0.0)));
  ]

let white_tests =
  [
    Testkit.case "level/variance round trip" (fun () ->
        let v = White.variance_of_level ~level:4e-3 ~fs:250.0 in
        Testkit.check_rel ~tol:1e-12 "variance" 0.5 v;
        Testkit.check_rel ~tol:1e-12 "level" 4e-3 (White.level_of_variance ~variance:v ~fs:250.0));
    Testkit.case "generated white noise hits its PSD level" (fun () ->
        let g = Ptrng_prng.Gaussian.create (Testkit.rng ()) in
        let level = 2e-4 and fs = 1e3 in
        let x = White.generate g ~level ~fs (1 lsl 16) in
        let s = Ptrng_signal.Psd.welch ~seg_len:1024 ~fs x in
        let measured = Ptrng_signal.Psd.band_mean s ~f_lo:(fs /. 50.0) ~f_hi:(fs /. 2.2) in
        Testkit.check_rel ~tol:0.05 "level" level measured);
  ]

let kasdin_tests =
  [
    Testkit.case "fractional-integrator coefficients (alpha = 1)" (fun () ->
        (* h0 = 1, h_k = h_{k-1} (k - 1/2) / k: 1, 1/2, 3/8, 5/16 ... *)
        let h = Kasdin.coefficients ~alpha:1.0 5 in
        Alcotest.(check (array (float 1e-12)))
          "first coefficients"
          [| 1.0; 0.5; 0.375; 0.3125; 0.2734375 |]
          h);
    Testkit.case "alpha = 0 is an identity filter" (fun () ->
        let h = Kasdin.coefficients ~alpha:0.0 4 in
        Alcotest.(check (array (float 1e-12))) "delta" [| 1.0; 0.0; 0.0; 0.0 |] h);
    Testkit.case "alpha = 2 integrates (all ones)" (fun () ->
        let h = Kasdin.coefficients ~alpha:2.0 4 in
        Alcotest.(check (array (float 1e-12))) "ones" [| 1.0; 1.0; 1.0; 1.0 |] h);
    Testkit.case "flicker block PSD has slope -1 and level h-1" (fun () ->
        let rng = Testkit.rng () in
        let hm1 = 3e-5 and fs = 1.0 in
        let x = Kasdin.flicker_fm_block rng ~hm1 ~fs (1 lsl 16) in
        let s = Ptrng_signal.Psd.welch ~seg_len:4096 ~fs x in
        let slope, _ = Slope.log_log_slope s ~f_lo:(4.0 /. 4096.0) ~f_hi:0.05 in
        Testkit.check_abs ~tol:0.15 "slope" (-1.0) slope;
        (* Level at a reference frequency inside the calibrated band. *)
        let f_ref = 0.01 in
        let level = Ptrng_signal.Psd.band_mean s ~f_lo:(f_ref /. 1.3) ~f_hi:(f_ref *. 1.3) in
        Testkit.check_rel ~tol:0.25 "level" (hm1 /. f_ref) level);
    Testkit.case "stream agrees with block spectrum above fs/taps" (fun () ->
        let g = Ptrng_prng.Gaussian.create (Testkit.rng ()) in
        let sigma_w = sqrt (Float.pi *. 1e-4) in
        let st = Kasdin.stream_create g ~alpha:1.0 ~sigma_w ~taps:1024 in
        let n = 1 lsl 15 in
        let x = Array.init n (fun _ -> Kasdin.stream_next st) in
        let s = Ptrng_signal.Psd.welch ~seg_len:2048 ~fs:1.0 x in
        let slope, _ = Slope.log_log_slope s ~f_lo:(8.0 /. 1024.0) ~f_hi:0.05 in
        Testkit.check_abs ~tol:0.2 "slope" (-1.0) slope);
    Testkit.case "allan variance of flicker block is flat" (fun () ->
        let rng = Testkit.rng ~seed:99L () in
        let hm1 = 1e-6 in
        let y = Kasdin.flicker_fm_block rng ~hm1 ~fs:1.0 (1 lsl 16) in
        let reference = Ptrng_stats.Allan.avar_flicker_fm ~hm1 in
        List.iter
          (fun m ->
            let est = Ptrng_stats.Allan.avar_overlapping ~tau0:1.0 ~m y in
            Testkit.check_rel ~tol:0.25 (Printf.sprintf "m=%d" m) reference est)
          [ 4; 32; 256 ]);
    Testkit.case "rejects bad arguments" (fun () ->
        Alcotest.check_raises "n=0" (Invalid_argument "Kasdin.coefficients: n <= 0")
          (fun () -> ignore (Kasdin.coefficients ~alpha:1.0 0)));
  ]

let voss_tests =
  [
    Testkit.case "spectrum slope is about -1" (fun () ->
        let v = Voss.create (Testkit.rng ()) ~octaves:16 in
        let x = Voss.generate v (1 lsl 16) in
        let s = Ptrng_signal.Psd.welch ~seg_len:4096 ~fs:1.0 x in
        let slope, _ = Slope.log_log_slope s ~f_lo:2e-3 ~f_hi:0.1 in
        Testkit.check_abs ~tol:0.2 "slope" (-1.0) slope);
    Testkit.case "level matches sigma^2/ln2 within the staircase ripple" (fun () ->
        let v = Voss.create (Testkit.rng ()) ~octaves:16 in
        let x = Voss.generate v (1 lsl 16) in
        let s = Ptrng_signal.Psd.welch ~seg_len:4096 ~fs:1.0 x in
        let f_ref = 0.01 in
        let level = Ptrng_signal.Psd.band_mean s ~f_lo:(f_ref /. 2.0) ~f_hi:(f_ref *. 2.0) in
        Testkit.check_rel ~tol:0.35 "level" (Voss.level_hm1 ~sigma:1.0 /. f_ref) level);
    Testkit.case "rejects octave overflow" (fun () ->
        let rng = Testkit.rng () in
        Alcotest.check_raises "63" (Invalid_argument "Voss.create: octaves outside [1,62]")
          (fun () -> ignore (Voss.create rng ~octaves:63)));
  ]

let spectral_synth_tests =
  [
    Testkit.case "white target reproduces a flat spectrum" (fun () ->
        let rng = Testkit.rng () in
        let level = 5e-4 and fs = 100.0 in
        let x = Spectral_synth.generate rng ~psd:(fun _ -> level) ~fs (1 lsl 15) in
        let s = Ptrng_signal.Psd.welch ~seg_len:1024 ~fs x in
        let measured = Ptrng_signal.Psd.band_mean s ~f_lo:(fs /. 100.0) ~f_hi:(fs /. 2.2) in
        Testkit.check_rel ~tol:0.06 "level" level measured);
    Testkit.case "1/f target reproduces slope and level" (fun () ->
        let rng = Testkit.rng () in
        let hm1 = 1e-3 and fs = 1.0 in
        let x = Spectral_synth.generate rng ~psd:(fun f -> hm1 /. f) ~fs (1 lsl 16) in
        let s = Ptrng_signal.Psd.welch ~seg_len:4096 ~fs x in
        let slope, _ = Slope.log_log_slope s ~f_lo:2e-3 ~f_hi:0.2 in
        Testkit.check_abs ~tol:0.1 "slope" (-1.0) slope;
        let f_ref = 0.02 in
        let level = Ptrng_signal.Psd.band_mean s ~f_lo:(f_ref /. 1.3) ~f_hi:(f_ref *. 1.3) in
        Testkit.check_rel ~tol:0.2 "level" (hm1 /. f_ref) level);
    Testkit.case "flicker synthesis matches the Allan closed form" (fun () ->
        let rng = Testkit.rng ~seed:123L () in
        let hm1 = 2e-6 in
        let model = { Psd_model.h0 = 0.0; hm1; hm2 = 0.0 } in
        let y = Spectral_synth.generate_frac_freq rng ~model ~fs:1.0 (1 lsl 17) in
        let reference = Ptrng_stats.Allan.avar_flicker_fm ~hm1 in
        List.iter
          (fun m ->
            let est = Ptrng_stats.Allan.avar_overlapping ~tau0:1.0 ~m y in
            Testkit.check_rel ~tol:0.2 (Printf.sprintf "m=%d" m) reference est)
          [ 8; 64; 512 ]);
    Testkit.case "white + flicker mixture has both regimes" (fun () ->
        let rng = Testkit.rng () in
        let model = { Psd_model.h0 = 1e-4; hm1 = 1e-6; hm2 = 0.0 } in
        let y = Spectral_synth.generate_frac_freq rng ~model ~fs:1.0 (1 lsl 16) in
        let s = Ptrng_signal.Psd.welch ~seg_len:4096 ~fs:1.0 y in
        (* At high f the white floor dominates, at low f the 1/f term. *)
        let high = Ptrng_signal.Psd.band_mean s ~f_lo:0.2 ~f_hi:0.45 in
        Testkit.check_rel ~tol:0.1 "white floor" 1e-4 high;
        let low = Ptrng_signal.Psd.band_mean s ~f_lo:0.002 ~f_hi:0.004 in
        Testkit.check_rel ~tol:0.35 "flicker lift"
          (1e-4 +. (1e-6 /. 0.003)) low);
    Testkit.case "zero model yields silence" (fun () ->
        let rng = Testkit.rng () in
        let model = { Psd_model.h0 = 0.0; hm1 = 0.0; hm2 = 0.0 } in
        let y = Spectral_synth.generate_frac_freq rng ~model ~fs:1.0 256 in
        Array.iter (fun v -> Testkit.check_abs ~tol:0.0 "zero" 0.0 v) y);
    Testkit.case "rejects non-pow2 length" (fun () ->
        let rng = Testkit.rng () in
        Alcotest.check_raises "100"
          (Invalid_argument "Spectral_synth.generate: n must be a power of two")
          (fun () -> ignore (Spectral_synth.generate rng ~psd:(fun _ -> 1.0) ~fs:1.0 100)));
  ]

let cross_generator_tests =
  [
    Testkit.slow_case "three flicker generators agree on the Allan level" (fun () ->
        (* Kasdin, spectral synthesis and Voss are independent
           constructions; their Allan variances at matched h-1 must
           agree within estimator error + Voss ripple. *)
        let hm1 = 1e-6 in
        let n = 1 lsl 16 in
        let reference = Ptrng_stats.Allan.avar_flicker_fm ~hm1 in
        let kasdin = Kasdin.flicker_fm_block (Testkit.rng ~seed:1L ()) ~hm1 ~fs:1.0 n in
        let rng2 = Testkit.rng ~seed:2L () in
        let spectral =
          Spectral_synth.generate rng2 ~psd:(fun f -> hm1 /. f) ~fs:1.0 n
        in
        let voss_gen = Voss.create (Testkit.rng ~seed:3L ()) ~octaves:16 in
        let sigma = sqrt (hm1 *. log 2.0) in
        let voss = Array.map (fun v -> sigma *. v) (Voss.generate voss_gen n) in
        List.iter
          (fun (name, series, tol) ->
            let est = Ptrng_stats.Allan.avar_overlapping ~tau0:1.0 ~m:64 series in
            Testkit.check_rel ~tol name reference est)
          [ ("kasdin", kasdin, 0.25); ("spectral", spectral, 0.25); ("voss", voss, 0.4) ]);
  ]

let () =
  Alcotest.run "ptrng_noise"
    [
      ("psd_model", psd_model_tests);
      ("white", white_tests);
      ("kasdin", kasdin_tests);
      ("voss", voss_tests);
      ("spectral_synth", spectral_synth_tests);
      ("cross_generator", cross_generator_tests);
    ]
