open Ptrng_stats

let gaussian_array ?(seed = 0x5EEDL) ?(sigma = 1.0) n =
  let g = Ptrng_prng.Gaussian.create (Testkit.rng ~seed ()) in
  Array.init n (fun _ -> sigma *. Ptrng_prng.Gaussian.draw g)

let descriptive_tests =
  [
    Testkit.case "mean/variance of a known sample" (fun () ->
        let x = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
        Testkit.check_rel ~tol:1e-12 "mean" 5.0 (Descriptive.mean x);
        Testkit.check_rel ~tol:1e-12 "biased var" 4.0 (Descriptive.variance_biased x);
        Testkit.check_rel ~tol:1e-12 "unbiased var" (32.0 /. 7.0) (Descriptive.variance x));
    Testkit.case "median and quantiles" (fun () ->
        let x = [| 7.0; 1.0; 3.0; 5.0 |] in
        Testkit.check_rel ~tol:1e-12 "median" 4.0 (Descriptive.median x);
        Testkit.check_rel ~tol:1e-12 "q0" 1.0 (Descriptive.quantile x 0.0);
        Testkit.check_rel ~tol:1e-12 "q1" 7.0 (Descriptive.quantile x 1.0);
        Testkit.check_rel ~tol:1e-12 "q25" 2.5 (Descriptive.quantile x 0.25));
    Testkit.case "min_max" (fun () ->
        let lo, hi = Descriptive.min_max [| 3.0; -1.0; 9.0; 0.0 |] in
        Testkit.check_rel ~tol:0.0 "lo" (-1.0) lo;
        Testkit.check_rel ~tol:0.0 "hi" 9.0 hi);
    Testkit.case "kahan sum survives cancellation" (fun () ->
        let x = Array.concat [ [| 1e16 |]; Array.make 10 1.0; [| -1e16 |] ] in
        Testkit.check_rel ~tol:1e-12 "sum" 10.0 (Descriptive.sum x));
    Testkit.case "skewness and kurtosis of a gaussian sample" (fun () ->
        let x = gaussian_array 100000 in
        Testkit.check_abs ~tol:0.05 "skew" 0.0 (Descriptive.skewness x);
        Testkit.check_abs ~tol:0.1 "kurt" 0.0 (Descriptive.kurtosis_excess x));
    Testkit.case "exponential sample has skew 2, kurtosis 6" (fun () ->
        let rng = Testkit.rng () in
        let x =
          Array.init 300000 (fun _ -> Ptrng_prng.Distributions.exponential rng ~rate:1.0)
        in
        Testkit.check_rel ~tol:0.1 "skew" 2.0 (Descriptive.skewness x);
        Testkit.check_rel ~tol:0.2 "kurt" 6.0 (Descriptive.kurtosis_excess x));
    Testkit.case "guards on short input" (fun () ->
        Alcotest.check_raises "variance of singleton"
          (Invalid_argument "Descriptive.variance: need at least 2 samples")
          (fun () -> ignore (Descriptive.variance [| 1.0 |])));
    Testkit.case "standard error of variance" (fun () ->
        Testkit.check_rel ~tol:1e-12 "se" (2.0 *. sqrt (2.0 /. 99.0))
          (Descriptive.standard_error_of_variance ~n:100 ~variance:2.0));
  ]

let histogram_tests =
  [
    Testkit.case "counts land in the right bins" (fun () ->
        let h = Histogram.make ~bins:4 ~range:(0.0, 4.0) [| 0.5; 1.5; 1.6; 2.5; 3.9 |] in
        Alcotest.(check (array int)) "counts" [| 1; 2; 1; 1 |] h.counts);
    Testkit.case "outliers are clamped to edge bins" (fun () ->
        let h = Histogram.make ~bins:2 ~range:(0.0, 2.0) [| -5.0; 0.5; 9.0 |] in
        Alcotest.(check (array int)) "counts" [| 2; 1 |] h.counts);
    Testkit.case "density integrates to one" (fun () ->
        let x = gaussian_array 10000 in
        let h = Histogram.make ~bins:40 x in
        let d = Histogram.density h in
        let acc = ref 0.0 in
        Array.iteri (fun i v -> acc := !acc +. (v *. (h.edges.(i + 1) -. h.edges.(i)))) d;
        Testkit.check_rel ~tol:1e-9 "integral" 1.0 !acc);
    Testkit.case "bin centers are midpoints" (fun () ->
        let h = Histogram.make ~bins:2 ~range:(0.0, 2.0) [| 0.5 |] in
        Alcotest.(check (array (float 1e-12))) "centers" [| 0.5; 1.5 |]
          (Histogram.bin_centers h));
    Testkit.case "rejects empty range" (fun () ->
        Alcotest.check_raises "range" (Invalid_argument "Histogram.make: empty range")
          (fun () -> ignore (Histogram.make ~bins:4 ~range:(1.0, 1.0) [| 1.0 |])));
  ]

let special_tests =
  [
    Testkit.case "log_gamma at integers and half-integers" (fun () ->
        Testkit.check_abs ~tol:1e-12 "lgamma 1" 0.0 (Special.log_gamma 1.0);
        Testkit.check_rel ~tol:1e-12 "lgamma 5" (log 24.0) (Special.log_gamma 5.0);
        Testkit.check_rel ~tol:1e-12 "lgamma 0.5" (0.5 *. log Float.pi)
          (Special.log_gamma 0.5);
        Testkit.check_rel ~tol:1e-10 "lgamma 10.5"
          (Special.log_gamma 9.5 +. log 9.5)
          (Special.log_gamma 10.5));
    Testkit.case "erf reference values" (fun () ->
        Testkit.check_abs ~tol:1e-10 "erf 0" 0.0 (Special.erf 0.0);
        Testkit.check_rel ~tol:1e-9 "erf 1" 0.8427007929497149 (Special.erf 1.0);
        Testkit.check_rel ~tol:1e-9 "erf 0.5" 0.5204998778130465 (Special.erf 0.5);
        Testkit.check_rel ~tol:1e-9 "erf -1" (-0.8427007929497149) (Special.erf (-1.0));
        Testkit.check_rel ~tol:1e-8 "erfc 2" 0.004677734981063127 (Special.erfc 2.0));
    Testkit.case "erf + erfc = 1" (fun () ->
        List.iter
          (fun x ->
            Testkit.check_rel ~tol:1e-12 "sum" 1.0 (Special.erf x +. Special.erfc x))
          [ -2.0; -0.3; 0.0; 0.7; 3.0 ]);
    Testkit.case "gamma_p of a = 1 is 1 - exp(-x)" (fun () ->
        List.iter
          (fun x ->
            Testkit.check_rel ~tol:1e-10 "gamma_p" (1.0 -. exp (-.x))
              (Special.gamma_p ~a:1.0 ~x))
          [ 0.1; 1.0; 3.0; 10.0 ]);
    Testkit.case "gamma_p + gamma_q = 1" (fun () ->
        List.iter
          (fun (a, x) ->
            Testkit.check_rel ~tol:1e-10 "sum" 1.0
              (Special.gamma_p ~a ~x +. Special.gamma_q ~a ~x))
          [ (0.5, 0.2); (2.0, 5.0); (10.0, 3.0); (10.0, 30.0) ]);
    Testkit.case "normal cdf reference values" (fun () ->
        Testkit.check_rel ~tol:1e-12 "cdf 0" 0.5 (Special.normal_cdf 0.0);
        Testkit.check_rel ~tol:1e-9 "cdf of the 97.5% quantile" 0.975
          (Special.normal_cdf 1.959963984540054);
        Testkit.check_rel ~tol:1e-9 "sf tail" (Special.normal_cdf (-4.0))
          (Special.normal_sf 4.0));
    Testkit.case "normal_ppf inverts the cdf" (fun () ->
        List.iter
          (fun p ->
            Testkit.check_abs ~tol:1e-9 "round trip" p
              (Special.normal_cdf (Special.normal_ppf p)))
          [ 1e-6; 0.01; 0.3; 0.5; 0.9; 0.999; 1.0 -. 1e-6 ]);
    Testkit.case "chi2 reference values" (fun () ->
        Testkit.check_rel ~tol:1e-10 "df=2 cdf" (1.0 -. exp (-1.0))
          (Special.chi2_cdf ~df:2.0 2.0);
        Testkit.check_rel ~tol:1e-4 "df=1 95pc" 0.05
          (Special.chi2_sf ~df:1.0 3.841458820694124));
    Testkit.case "ks survival sanity" (fun () ->
        Testkit.check_rel ~tol:1e-12 "0" 1.0 (Special.ks_sf 0.0);
        Testkit.check_rel ~tol:1e-6 "1.0"
          (2.0 *. (exp (-2.0) -. exp (-8.0) +. exp (-18.0) -. exp (-32.0)))
          (Special.ks_sf 1.0);
        Testkit.check_true "decreasing" (Special.ks_sf 0.5 > Special.ks_sf 1.5));
  ]

let matrix_tests =
  [
    Testkit.case "solve_lu on a known system" (fun () ->
        let a = Matrix.of_rows [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
        let x = Matrix.solve_lu a [| 5.0; 10.0 |] in
        Testkit.check_rel ~tol:1e-12 "x0" 1.0 x.(0);
        Testkit.check_rel ~tol:1e-12 "x1" 3.0 x.(1));
    Testkit.case "solve_lu with pivoting" (fun () ->
        let a = Matrix.of_rows [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
        let x = Matrix.solve_lu a [| 2.0; 3.0 |] in
        Testkit.check_rel ~tol:1e-12 "x0" 3.0 x.(0);
        Testkit.check_rel ~tol:1e-12 "x1" 2.0 x.(1));
    Testkit.case "inverse times original is identity" (fun () ->
        let a =
          Matrix.of_rows [| [| 4.0; 7.0; 2.0 |]; [| 3.0; 5.0; 1.0 |]; [| 8.0; 1.0; 6.0 |] |]
        in
        let prod = Matrix.mul a (Matrix.inverse a) in
        for i = 0 to 2 do
          for j = 0 to 2 do
            Testkit.check_abs ~tol:1e-10 "entry" (if i = j then 1.0 else 0.0)
              (Matrix.get prod i j)
          done
        done);
    Testkit.case "mul_vec" (fun () ->
        let a = Matrix.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
        Alcotest.(check (array (float 1e-12))) "product" [| 5.0; 11.0 |]
          (Matrix.mul_vec a [| 1.0; 2.0 |]));
    Testkit.case "singular system raises" (fun () ->
        let a = Matrix.of_rows [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
        Alcotest.check_raises "singular" (Failure "Matrix: singular system") (fun () ->
            ignore (Matrix.solve_lu a [| 1.0; 2.0 |])));
    Testkit.case "least_squares recovers an exact solution" (fun () ->
        (* Overdetermined but consistent: y = 2 x0 - x1. *)
        let a =
          Matrix.of_rows
            [| [| 1.0; 0.0 |]; [| 0.0; 1.0 |]; [| 1.0; 1.0 |]; [| 2.0; 1.0 |] |]
        in
        let y = [| 2.0; -1.0; 1.0; 3.0 |] in
        let x = Matrix.least_squares a y in
        Testkit.check_rel ~tol:1e-12 "x0" 2.0 x.(0);
        Testkit.check_rel ~tol:1e-10 "x1" (-1.0) x.(1));
    Testkit.case "least_squares equals normal equations on noisy data" (fun () ->
        let rng = Testkit.rng () in
        let m = 50 in
        let a =
          Matrix.of_rows
            (Array.init m (fun _ ->
                 [| Ptrng_prng.Rng.float rng; Ptrng_prng.Rng.float rng; 1.0 |]))
        in
        let y = Array.init m (fun _ -> Ptrng_prng.Rng.float rng) in
        let qr = Matrix.least_squares a y in
        let at = Matrix.transpose a in
        let ne = Matrix.solve_lu (Matrix.mul at a) (Matrix.mul_vec at y) in
        for j = 0 to 2 do
          Testkit.check_abs ~tol:1e-9 "coef" ne.(j) qr.(j)
        done);
    Testkit.case "rank-deficient least squares raises" (fun () ->
        let a = Matrix.of_rows [| [| 1.0; 1.0 |]; [| 2.0; 2.0 |]; [| 3.0; 3.0 |] |] in
        Alcotest.check_raises "rank" (Failure "Matrix: rank-deficient least squares")
          (fun () -> ignore (Matrix.least_squares a [| 1.0; 2.0; 3.0 |])));
  ]

let regression_tests =
  [
    Testkit.case "exact line gives r2 = 1" (fun () ->
        let x = Array.init 20 float_of_int in
        let y = Array.map (fun v -> (3.0 *. v) -. 7.0) x in
        let f = Regression.linear ~x ~y in
        Testkit.check_rel ~tol:1e-12 "slope" 3.0 f.slope;
        Testkit.check_rel ~tol:1e-10 "intercept" (-7.0) f.intercept;
        Testkit.check_rel ~tol:1e-12 "r2" 1.0 f.r2;
        Testkit.check_abs ~tol:1e-9 "slope se" 0.0 f.slope_se);
    Testkit.case "noisy line: estimate within 4 standard errors" (fun () ->
        let g = Ptrng_prng.Gaussian.create (Testkit.rng ()) in
        let x = Array.init 500 (fun i -> float_of_int i /. 10.0) in
        let y = Array.map (fun v -> (1.5 *. v) +. 2.0 +. Ptrng_prng.Gaussian.draw g) x in
        let f = Regression.linear ~x ~y in
        Testkit.check_abs ~tol:(4.0 *. f.slope_se) "slope" 1.5 f.slope;
        Testkit.check_abs ~tol:(4.0 *. f.intercept_se) "intercept" 2.0 f.intercept);
    Testkit.case "polynomial fit recovers a planted cubic" (fun () ->
        let x = Array.init 50 (fun i -> (float_of_int i /. 5.0) -. 5.0) in
        let y = Array.map (fun v -> 1.0 -. (2.0 *. v) +. (0.5 *. v *. v *. v)) x in
        let f = Regression.polynomial ~degree:3 ~x ~y in
        Testkit.check_abs ~tol:1e-8 "c0" 1.0 f.coeffs.(0);
        Testkit.check_abs ~tol:1e-8 "c1" (-2.0) f.coeffs.(1);
        Testkit.check_abs ~tol:1e-8 "c2" 0.0 f.coeffs.(2);
        Testkit.check_abs ~tol:1e-9 "c3" 0.5 f.coeffs.(3);
        Testkit.check_abs ~tol:1e-7 "predict" (1.0 -. 4.0 +. 4.0) (Regression.predict_poly f 2.0));
    Testkit.case "polynomial with huge abscissas stays conditioned" (fun () ->
        (* The paper's N^2 fit reaches N ~ 1e5: columns span 10 decades. *)
        let x = Array.init 40 (fun i -> float_of_int (1 lsl (i mod 18 + 2))) in
        let y = Array.map (fun v -> (5.36e-6 *. v) +. (1.0e-9 *. v *. v)) x in
        let f = Regression.polynomial ~degree:2 ~x ~y in
        Testkit.check_rel ~tol:1e-6 "linear term" 5.36e-6 f.coeffs.(1);
        Testkit.check_rel ~tol:1e-6 "quadratic term" 1.0e-9 f.coeffs.(2));
    Testkit.case "weighted fit honours the weights" (fun () ->
        (* Two inconsistent measurements of a constant; the fit must land
           close to the precise one. *)
        let design = Matrix.of_rows [| [| 1.0 |]; [| 1.0 |]; [| 1.0 |] |] in
        let y = [| 10.0; 10.0; 20.0 |] in
        let sigma = [| 0.1; 0.1; 10.0 |] in
        let f = Regression.general ~design ~y ~sigma () in
        Testkit.check_abs ~tol:0.02 "estimate" 10.0 f.coeffs.(0));
    Testkit.case "covariance has the analytic scale for known sigma" (fun () ->
        (* Constant model, n unit-weight points: var(mean) = sigma^2/n. *)
        let n = 16 in
        let design = Matrix.of_rows (Array.make n [| 1.0 |]) in
        let y = Array.make n 5.0 in
        let sigma = Array.make n 2.0 in
        let f = Regression.general ~design ~y ~sigma () in
        Testkit.check_rel ~tol:1e-10 "se of mean" (2.0 /. 4.0) (Regression.coeff_se f 0));
    Testkit.case "rejects size mismatch" (fun () ->
        Alcotest.check_raises "mismatch"
          (Invalid_argument "Regression.linear: length mismatch")
          (fun () -> ignore (Regression.linear ~x:[| 1.0 |] ~y:[| 1.0; 2.0 |])));
  ]

let allan_tests =
  let white_y ~sigma n = gaussian_array ~sigma n in
  [
    Testkit.case "white FM follows h0 / (2 tau)" (fun () ->
        let sigma = 0.5 and tau0 = 1e-3 in
        let y = white_y ~sigma 200000 in
        (* Discrete white with variance sigma^2 at rate 1/tau0 has
           h0 = 2 sigma^2 tau0. *)
        let h0 = 2.0 *. sigma *. sigma *. tau0 in
        List.iter
          (fun m ->
            let tau = float_of_int m *. tau0 in
            let est = Allan.avar_overlapping ~tau0 ~m y in
            Testkit.check_rel ~tol:0.05
              (Printf.sprintf "avar m=%d" m)
              (Allan.avar_white_fm ~h0 ~tau) est)
          [ 1; 4; 16; 64 ]);
    Testkit.case "overlapping and non-overlapping agree for white FM" (fun () ->
        let y = white_y ~sigma:1.0 100000 in
        let a = Allan.avar_overlapping ~tau0:1.0 ~m:8 y in
        let b = Allan.avar_nonoverlapping ~tau0:1.0 ~m:8 y in
        Testkit.check_rel ~tol:0.1 "estimators agree" a b);
    Testkit.case "flicker FM is flat at 2 ln2 h-1" (fun () ->
        let hm1 = 1e-6 and fs = 1.0 in
        let y = Ptrng_noise.Kasdin.flicker_fm_block (Testkit.rng ()) ~hm1 ~fs (1 lsl 17) in
        let expected = Allan.avar_flicker_fm ~hm1 in
        List.iter
          (fun m ->
            let est = Allan.avar_overlapping ~tau0:(1.0 /. fs) ~m y in
            Testkit.check_rel ~tol:0.2 (Printf.sprintf "flicker m=%d" m) expected est)
          [ 8; 32; 128; 512 ]);
    Testkit.case "random-walk FM grows linearly in tau" (fun () ->
        let g = Ptrng_prng.Gaussian.create (Testkit.rng ()) in
        let n = 1 lsl 16 in
        let y = Array.make n 0.0 in
        for i = 1 to n - 1 do
          y.(i) <- y.(i - 1) +. (0.01 *. Ptrng_prng.Gaussian.draw g)
        done;
        let a16 = Allan.avar_overlapping ~tau0:1.0 ~m:16 y in
        let a64 = Allan.avar_overlapping ~tau0:1.0 ~m:64 y in
        Testkit.check_rel ~tol:0.3 "x4 growth" 4.0 (a64 /. a16));
    Testkit.case "hadamard matches allan for white FM" (fun () ->
        let y = white_y ~sigma:1.0 100000 in
        let a = Allan.avar_overlapping ~tau0:1.0 ~m:16 y in
        let h = Allan.hvar_overlapping ~tau0:1.0 ~m:16 y in
        Testkit.check_rel ~tol:0.1 "hvar ~ avar" a h);
    Testkit.case "hadamard is immune to linear drift" (fun () ->
        let y = white_y ~sigma:0.1 50000 in
        let drifted = Array.mapi (fun i v -> v +. (1e-4 *. float_of_int i)) y in
        let h_clean = Allan.hvar_overlapping ~tau0:1.0 ~m:32 y in
        let h_drift = Allan.hvar_overlapping ~tau0:1.0 ~m:32 drifted in
        Testkit.check_rel ~tol:0.05 "drift rejected" h_clean h_drift);
    Testkit.case "mvar equals avar at m = 1" (fun () ->
        let y = white_y ~sigma:1.0 10000 in
        (* The estimators share their second differences at m = 1 but
           average n-1 vs n-2 of them. *)
        let a = Allan.avar_overlapping ~tau0:1.0 ~m:1 y in
        let m = Allan.mvar ~tau0:1.0 ~m:1 y in
        Testkit.check_rel ~tol:0.01 "identical up to edge terms" a m);
    Testkit.case "sweep skips oversized factors" (fun () ->
        let y = white_y ~sigma:1.0 100 in
        let pts = Allan.sweep ~tau0:1.0 ~ms:[| 1; 10; 1000 |] y in
        Alcotest.(check int) "kept points" 2 (Array.length pts));
    Testkit.case "octave_ms spacing" (fun () ->
        Alcotest.(check (array int)) "octaves" [| 1; 2; 4; 8; 16; 32 |]
          (Allan.octave_ms ~n:128));
    Testkit.case "needs enough samples" (fun () ->
        Alcotest.check_raises "short"
          (Invalid_argument "Allan.avar_overlapping: need >= 64 samples, got 10")
          (fun () -> ignore (Allan.avar_overlapping ~tau0:1.0 ~m:32 (Array.make 10 0.0))));
    Testkit.case "confidence interval brackets the estimate and shrinks" (fun () ->
        let point = { Allan.m = 8; tau = 8.0; avar = 2.0; neff = 100 } in
        let lo, hi = Allan.confidence_interval point in
        Testkit.check_true "bracket" (lo < 2.0 && 2.0 < hi);
        let wide_lo, wide_hi = Allan.confidence_interval { point with neff = 10 } in
        Testkit.check_true "fewer samples, wider band"
          (wide_hi -. wide_lo > hi -. lo);
        let lo99, hi99 = Allan.confidence_interval ~level:0.99 point in
        Testkit.check_true "higher level, wider band" (hi99 -. lo99 > hi -. lo));
    Testkit.case "CI coverage on white FM" (fun () ->
        (* Repeated estimates: the 1-sigma band should cover the truth
           roughly 2/3 of the time. *)
        let h0 = 2.0 and tau0 = 1.0 and m = 4 in
        let truth = Allan.avar_white_fm ~h0 ~tau:(float_of_int m *. tau0) in
        let covered = ref 0 in
        for seed = 1 to 60 do
          let g =
            Ptrng_prng.Gaussian.create (Testkit.rng ~seed:(Int64.of_int seed) ())
          in
          let y = Array.init 1024 (fun _ -> Ptrng_prng.Gaussian.draw g) in
          let pts = Allan.sweep ~tau0 ~ms:[| m |] y in
          let lo, hi = Allan.confidence_interval pts.(0) in
          if truth >= lo && truth <= hi then incr covered
        done;
        (* Nominal 68%; accept a broad band because the edf formula is
           a deliberate simplification. *)
        Testkit.check_in_range "coverage" ~lo:30.0 ~hi:60.9 (float_of_int !covered));
    Testkit.case "crossover tau matches the paper's k/f0" (fun () ->
        (* h0/(4 ln2 h-1) = b_th f0 / (4 ln2 b_fl) / f0^... = k / f0. *)
        let f0 = 103e6 in
        let b_th = 276.04 in
        let b_fl = b_th *. f0 /. (4.0 *. log 2.0 *. 5354.0) in
        let h0 = 2.0 *. b_th /. (f0 *. f0) in
        let hm1 = 2.0 *. b_fl /. (f0 *. f0) in
        Testkit.check_rel ~tol:1e-9 "tau_c" (5354.0 /. f0) (Allan.crossover_tau ~h0 ~hm1));
  ]

let tests_tests =
  [
    Testkit.case "chi2 gof accepts uniform counts" (fun () ->
        let rng = Testkit.rng () in
        let observed = Array.make 10 0 in
        for _ = 1 to 10000 do
          let b = Ptrng_prng.Rng.int_below rng 10 in
          observed.(b) <- observed.(b) + 1
        done;
        let expected = Array.make 10 1000.0 in
        let r = Tests.chi2_gof ~observed ~expected () in
        Testkit.check_true "p > 0.001" (r.p_value > 0.001));
    Testkit.case "chi2 gof rejects a skewed die" (fun () ->
        let observed = [| 2000; 1000; 1000; 1000; 1000; 1000 |] in
        let expected = Array.make 6 (7000.0 /. 6.0) in
        let r = Tests.chi2_gof ~observed ~expected () in
        Testkit.check_true "p tiny" (r.p_value < 1e-10));
    Testkit.case "ks accepts matching distribution" (fun () ->
        let rng = Testkit.rng () in
        let x = Array.init 5000 (fun _ -> Ptrng_prng.Rng.float rng) in
        let r = Tests.ks_one_sample ~cdf:(fun v -> Float.max 0.0 (Float.min 1.0 v)) x in
        Testkit.check_true "p > 0.001" (r.p_value > 0.001));
    Testkit.case "ks rejects wrong distribution" (fun () ->
        let rng = Testkit.rng () in
        let x = Array.init 5000 (fun _ -> Ptrng_prng.Rng.float rng ** 2.0) in
        let r = Tests.ks_one_sample ~cdf:(fun v -> Float.max 0.0 (Float.min 1.0 v)) x in
        Testkit.check_true "p tiny" (r.p_value < 1e-10));
    Testkit.case "normality ks on gaussian and uniform" (fun () ->
        let ok = Tests.normality_ks (gaussian_array 5000) in
        Testkit.check_true "gaussian passes" (ok.p_value > 0.001);
        let rng = Testkit.rng () in
        let u = Array.init 5000 (fun _ -> Ptrng_prng.Rng.float rng) in
        let bad = Tests.normality_ks u in
        Testkit.check_true "uniform fails" (bad.p_value < 1e-6));
    Testkit.case "anderson-darling accepts gaussian, rejects others" (fun () ->
        let g = Tests.anderson_darling_normal (gaussian_array 5000) in
        Testkit.check_true "gaussian passes" (g.p_value > 0.005);
        let rng = Testkit.rng () in
        let u = Array.init 5000 (fun _ -> Ptrng_prng.Rng.float rng) in
        Testkit.check_true "uniform fails"
          ((Tests.anderson_darling_normal u).p_value < 1e-6);
        let lap =
          Array.init 5000 (fun _ -> Ptrng_prng.Distributions.laplace rng ~mu:0.0 ~b:1.0)
        in
        Testkit.check_true "laplace tails fail"
          ((Tests.anderson_darling_normal lap).p_value < 1e-4));
    Testkit.case "anderson-darling beats KS on mild tail contamination" (fun () ->
        (* 2% of samples from a 5x-wider Gaussian: AD (tail-weighted)
           must produce a smaller p-value than KS. *)
        let g = Ptrng_prng.Gaussian.create (Testkit.rng ~seed:88L ()) in
        let rng = Testkit.rng ~seed:89L () in
        let x =
          Array.init 8000 (fun _ ->
              let scale = if Ptrng_prng.Rng.float rng < 0.02 then 5.0 else 1.0 in
              scale *. Ptrng_prng.Gaussian.draw g)
        in
        let ad = Tests.anderson_darling_normal x in
        let ks = Tests.normality_ks x in
        Testkit.check_true "AD more sensitive" (ad.p_value <= ks.p_value));
    Testkit.case "ljung-box accepts iid, rejects AR(1)" (fun () ->
        let iid = gaussian_array 20000 in
        let r1 = Tests.ljung_box ~lags:10 iid in
        Testkit.check_true "iid passes" (r1.p_value > 0.001);
        let g = Ptrng_prng.Gaussian.create (Testkit.rng ()) in
        let ar = Array.make 20000 0.0 in
        for i = 1 to 19999 do
          ar.(i) <- (0.3 *. ar.(i - 1)) +. Ptrng_prng.Gaussian.draw g
        done;
        let r2 = Tests.ljung_box ~lags:10 ar in
        Testkit.check_true "AR(1) fails" (r2.p_value < 1e-10));
    Testkit.case "runs test flags alternation" (fun () ->
        let alternating = Array.init 1000 (fun i -> if i land 1 = 0 then 1.0 else -1.0) in
        let r = Tests.runs_median alternating in
        Testkit.check_true "rejected" (r.p_value < 1e-10);
        let iid = gaussian_array 1000 in
        let r2 = Tests.runs_median iid in
        Testkit.check_true "iid passes" (r2.p_value > 0.001));
    Testkit.case "turning points flags a ramp" (fun () ->
        let ramp = Array.init 1000 float_of_int in
        let r = Tests.turning_points ramp in
        Testkit.check_true "rejected" (r.p_value < 1e-10);
        let iid = gaussian_array 1000 in
        Testkit.check_true "iid passes" ((Tests.turning_points iid).p_value > 0.001));
    Testkit.case "variance ratio: iid near 1, AR(1) inflated" (fun () ->
        let iid = gaussian_array 50000 in
        let r = Tests.variance_ratio iid ~q:8 in
        Testkit.check_true "iid passes" (r.p_value > 0.001);
        let g = Ptrng_prng.Gaussian.create (Testkit.rng ()) in
        let ar = Array.make 50000 0.0 in
        for i = 1 to 49999 do
          ar.(i) <- (0.5 *. ar.(i - 1)) +. Ptrng_prng.Gaussian.draw g
        done;
        let r2 = Tests.variance_ratio ar ~q:8 in
        Testkit.check_true "AR(1) super-linear" (r2.statistic > 5.0));
  ]

let bootstrap_tests =
  [
    Testkit.case "CI of the mean covers the truth" (fun () ->
        let x = gaussian_array ~sigma:2.0 2000 in
        let lo, hi =
          Bootstrap.ci ~rng:(Testkit.rng ()) ~estimator:Descriptive.mean x
        in
        Testkit.check_true "contains 0" (lo < 0.0 && hi > 0.0);
        (* Half-width ~ 1.96 * 2/sqrt(2000) ~ 0.088. *)
        Testkit.check_in_range "width" ~lo:0.1 ~hi:0.25 (hi -. lo));
    Testkit.case "level widens the interval" (fun () ->
        let x = gaussian_array 500 in
        let rng = Testkit.rng () in
        let lo1, hi1 = Bootstrap.ci ~rng ~level:0.5 ~estimator:Descriptive.mean x in
        let lo2, hi2 = Bootstrap.ci ~rng ~level:0.99 ~estimator:Descriptive.mean x in
        Testkit.check_true "nested" (hi2 -. lo2 > hi1 -. lo1));
    Testkit.case "rejects empty data" (fun () ->
        Alcotest.check_raises "empty" (Invalid_argument "Bootstrap.ci: empty data")
          (fun () ->
            ignore (Bootstrap.ci ~rng:(Testkit.rng ()) ~estimator:Descriptive.mean [||])));
  ]

let () =
  Alcotest.run "ptrng_stats"
    [
      ("descriptive", descriptive_tests);
      ("histogram", histogram_tests);
      ("special", special_tests);
      ("matrix", matrix_tests);
      ("regression", regression_tests);
      ("allan", allan_tests);
      ("tests", tests_tests);
      ("bootstrap", bootstrap_tests);
    ]
