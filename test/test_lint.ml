(* ptrng-lint: each rule against a violating and a clean fixture, the
   baseline workflow, and the JSON round-trip of the report schema.

   Fixtures are real OCaml sources compiled with ocamlc -bin-annot into
   a scratch directory, then loaded with [scope_all] so the rules skip
   their repo-path scoping.  Each check selects a single rule: the
   fixtures have no .mli, which R5 would otherwise flag everywhere. *)

module A = Ptrng_analysis
module Json = Ptrng_telemetry.Json

let ocamlc =
  (* dune exposes the toolchain on PATH inside test actions. *)
  "ocamlc"

let scratch = ref None

let scratch_dir () =
  match !scratch with
  | Some d -> d
  | None ->
    let d = Filename.temp_file "ptrng_lint_fix" "" in
    Sys.remove d;
    Unix.mkdir d 0o755;
    scratch := Some d;
    d

(* Compile [source] as [name].ml in the scratch dir; returns the cmt
   path.  Fixture names are unique per test so reruns in one process
   cannot collide. *)
let compile ~name source =
  let dir = scratch_dir () in
  let ml = Filename.concat dir (name ^ ".ml") in
  let oc = open_out ml in
  output_string oc source;
  close_out oc;
  let cmd =
    Printf.sprintf "cd %s && %s -bin-annot -c %s.ml 2>%s.err" (Filename.quote dir)
      ocamlc name name
  in
  if Sys.command cmd <> 0 then
    Alcotest.failf "fixture %s does not compile: %s" name
      (In_channel.with_open_text
         (Filename.concat dir (name ^ ".err"))
         In_channel.input_all);
  Filename.concat dir (name ^ ".cmt")

let findings_of ~rule_id ~name source =
  let cmt = compile ~name source in
  let loader = A.Loader.load_files ~scope_all:true [ cmt ] in
  let rule =
    match A.Rules.find rule_id with
    | Some r -> r
    | None -> Alcotest.failf "unknown rule %s" rule_id
  in
  A.Engine.run ~rules:[ rule ] loader

let check_flags ~rule_id ~name ~detail_part source =
  let fs = findings_of ~rule_id ~name source in
  Testkit.check_true
    (Printf.sprintf "%s flags %s" rule_id name)
    (List.exists
       (fun (f : A.Finding.t) ->
         Testkit.contains ~needle:detail_part f.A.Finding.detail
         || Testkit.contains ~needle:detail_part f.A.Finding.message)
       fs);
  fs

let check_clean ~rule_id ~name source =
  match findings_of ~rule_id ~name source with
  | [] -> ()
  | f :: _ ->
    Alcotest.failf "%s should be clean for %s but: %s" rule_id name
      (Format.asprintf "%a" A.Finding.pp f)

(* ------------------------------------------------------------------ *)
(* Per-rule fixtures                                                   *)
(* ------------------------------------------------------------------ *)

let r1_tests =
  [
    Testkit.case "R1 flags Random and wall-clock calls" (fun () ->
        let fs =
          check_flags ~rule_id:"R1" ~name:"r1_bad" ~detail_part:"Random"
            "let roll () = Random.int 6\nlet now () = Sys.time ()\n"
        in
        Testkit.check_true "Sys.time flagged too"
          (List.exists
             (fun (f : A.Finding.t) ->
               Testkit.contains ~needle:"Sys.time" f.A.Finding.detail)
             fs);
        List.iter
          (fun (f : A.Finding.t) ->
            Testkit.check_true "R1 is error severity"
              (f.A.Finding.severity = A.Finding.Error))
          fs);
    Testkit.case "R1 flags hash-order iteration, not keyed lookup" (fun () ->
        ignore
          (check_flags ~rule_id:"R1" ~name:"r1_hash" ~detail_part:"Hashtbl.fold"
             "let sum h = Hashtbl.fold (fun _ v acc -> v + acc) h 0\n");
        check_clean ~rule_id:"R1" ~name:"r1_ok"
          "let lookup h k = Hashtbl.find_opt h k\nlet add h k v = Hashtbl.replace h k v\n");
  ]

let r2_tests =
  [
    Testkit.case "R2 flags float equality and unguarded division" (fun () ->
        ignore
          (check_flags ~rule_id:"R2" ~name:"r2_eq" ~detail_part:"float-="
             "let degenerate s = s = 0.0\n");
        ignore
          (check_flags ~rule_id:"R2" ~name:"r2_div" ~detail_part:"div-by-n"
             "let mean total n = total /. float_of_int n\n"));
    Testkit.case "R2 accepts epsilon guards and validated denominators"
      (fun () ->
        check_clean ~rule_id:"R2" ~name:"r2_ok"
          "let near_zero x = Float.abs x < 1e-12\n\
           let mean total n = if n <= 0 then nan else total /. float_of_int n\n\
           let fixed total = total /. float_of_int 2048\n");
  ]

let r3_tests =
  (* A local module named Pool makes the suffix-based entry-point match
     fire without depending on ptrng_exec from a fixture. *)
  let pool_prelude =
    "module Pool = struct let run_tasks f = f 0 end\n"
  in
  [
    Testkit.case "R3 flags a module-level ref reachable from pool tasks"
      (fun () ->
        ignore
          (check_flags ~rule_id:"R3" ~name:"r3_bad" ~detail_part:"counter"
             (pool_prelude
             ^ "let counter = ref 0\n\
                let work () = Pool.run_tasks (fun i -> counter := !counter + i)\n"
             )));
    Testkit.case "R3 accepts Atomic state and mutex-guarded modules" (fun () ->
        check_clean ~rule_id:"R3" ~name:"r3_atomic"
          (pool_prelude
          ^ "let counter = Atomic.make 0\n\
             let work () = Pool.run_tasks (fun i -> ignore i; Atomic.incr counter)\n"
          );
        check_clean ~rule_id:"R3" ~name:"r3_mutex"
          (pool_prelude
          ^ "let lock = Mutex.create ()\n\
             let counter = ref 0\n\
             let work () =\n\
             \  Pool.run_tasks (fun i ->\n\
             \    Mutex.protect lock (fun () -> counter := !counter + i))\n"
          ));
    Testkit.case "R3 reports an unreachable module-level ref as info"
      (fun () ->
        let fs =
          findings_of ~rule_id:"R3" ~name:"r3_unreachable"
            "let cache = ref 0\nlet bump () = incr cache\n"
        in
        match fs with
        | [ f ] ->
          Testkit.check_true "info severity"
            (f.A.Finding.severity = A.Finding.Info)
        | _ -> Alcotest.failf "expected exactly one info finding, got %d"
                 (List.length fs));
  ]

let r4_tests =
  (* Local Span/Mutex modules stand in for the real pairs. *)
  let prelude =
    "module Span = struct let enter _ = () let exit _ = () end\n"
  in
  [
    Testkit.case "R4 flags a bare enter/exit pair" (fun () ->
        ignore
          (check_flags ~rule_id:"R4" ~name:"r4_bad" ~detail_part:"Span.enter"
             (prelude
             ^ "let timed f = Span.enter \"x\"; let r = f () in Span.exit \"x\"; r\n"
             )));
    Testkit.case "R4 accepts the pair under Fun.protect" (fun () ->
        check_clean ~rule_id:"R4" ~name:"r4_ok"
          (prelude
          ^ "let timed f =\n\
             \  Span.enter \"x\";\n\
             \  Fun.protect ~finally:(fun () -> Span.exit \"x\") f\n"
          ));
    Testkit.case "R4 accepts the closure-free release-and-reraise idiom"
      (fun () ->
        (* The zero-allocation spelling on hot entries: a [try] whose
           handler releases the pair and re-raises is exception-safe
           without the per-call closure Mutex.protect would build. *)
        check_clean ~rule_id:"R4" ~name:"r4_manual"
          "let m = Mutex.create ()\n\
           let locked f =\n\
           \  Mutex.lock m;\n\
           \  (try f () with e -> Mutex.unlock m; raise e);\n\
           \  Mutex.unlock m\n");
    Testkit.case "R4 still flags a handler that swallows without releasing"
      (fun () ->
        ignore
          (check_flags ~rule_id:"R4" ~name:"r4_swallow"
             ~detail_part:"Mutex.lock"
             "let m = Mutex.create ()\n\
              let leaky f =\n\
              \  Mutex.lock m;\n\
              \  (try f () with _ -> ());\n\
              \  Mutex.unlock m\n"));
  ]

let r5_tests =
  [
    Testkit.case "R5 flags a lib module without an mli" (fun () ->
        ignore
          (check_flags ~rule_id:"R5" ~name:"r5_bad" ~detail_part:"mli"
             "let answer = 42\n"));
    Testkit.case "R5 flags an undocumented val and accepts a documented one"
      (fun () ->
        (* An interface fixture: compile the mli alone to get a cmti. *)
        let dir = scratch_dir () in
        let write name text =
          let oc = open_out (Filename.concat dir name) in
          output_string oc text;
          close_out oc
        in
        write "r5_iface.mli"
          "val documented : int\n(** Has a doc comment. *)\n\nval bare : int\n";
        write "r5_iface.ml" "let documented = 1\nlet bare = 2\n";
        let cmd =
          Printf.sprintf
            "cd %s && %s -bin-annot -c r5_iface.mli r5_iface.ml 2>/dev/null"
            (Filename.quote dir) ocamlc
        in
        if Sys.command cmd <> 0 then Alcotest.fail "r5_iface does not compile";
        let loader =
          A.Loader.load_files ~scope_all:true
            [
              Filename.concat dir "r5_iface.cmt";
              Filename.concat dir "r5_iface.cmti";
            ]
        in
        let rule = Option.get (A.Rules.find "R5") in
        let fs = A.Engine.run ~rules:[ rule ] loader in
        Testkit.check_true "bare flagged"
          (List.exists
             (fun (f : A.Finding.t) -> f.A.Finding.symbol = "bare")
             fs);
        Testkit.check_false "documented not flagged"
          (List.exists
             (fun (f : A.Finding.t) -> f.A.Finding.symbol = "documented")
             fs));
  ]

let r6_tests =
  [
    Testkit.case "R6 flags allocating combinators" (fun () ->
        ignore
          (check_flags ~rule_id:"R6" ~name:"r6_map" ~detail_part:"Array.map"
             "let scale s xs = Array.map (fun x -> s *. x) xs\n");
        ignore
          (check_flags ~rule_id:"R6" ~name:"r6_append"
             ~detail_part:"Array.append"
             "let grow a b = Array.append a b\n");
        ignore
          (check_flags ~rule_id:"R6" ~name:"r6_lmap" ~detail_part:"List.map"
             "let twice xs = List.map (fun x -> 2 * x) xs\n"));
    Testkit.case "R6 accepts in-place fills and folds" (fun () ->
        check_clean ~rule_id:"R6" ~name:"r6_ok"
          "let scale_into s xs =\n\
          \  for i = 0 to Float.Array.length xs - 1 do\n\
          \    Float.Array.set xs i (s *. Float.Array.get xs i)\n\
          \  done\n\
           let total xs = Array.fold_left (+.) 0.0 xs\n\
           let each f xs = Array.iter f xs\n");
  ]

(* ------------------------------------------------------------------ *)
(* Call graph and the interprocedural rules                            *)
(* ------------------------------------------------------------------ *)

(* Compile several fixtures in one ocamlc invocation so cross-module
   references resolve against the scratch dir's cmi files; returns a
   loader over all of their cmts.  Dependency order matters. *)
let compile_all specs =
  let dir = scratch_dir () in
  List.iter
    (fun (name, source) ->
      let oc = open_out (Filename.concat dir (name ^ ".ml")) in
      output_string oc source;
      close_out oc)
    specs;
  let files = String.concat " " (List.map (fun (n, _) -> n ^ ".ml") specs) in
  let cmd =
    Printf.sprintf "cd %s && %s -bin-annot -c %s 2>multi.err"
      (Filename.quote dir) ocamlc files
  in
  if Sys.command cmd <> 0 then
    Alcotest.failf "fixtures [%s] do not compile: %s" files
      (In_channel.with_open_text
         (Filename.concat dir "multi.err")
         In_channel.input_all);
  A.Loader.load_files ~scope_all:true
    (List.map (fun (n, _) -> Filename.concat dir (n ^ ".cmt")) specs)

let callgraph_tests =
  [
    Testkit.case "mutual recursion collapses into one SCC, callees first"
      (fun () ->
        let g =
          A.Callgraph.build
            (compile_all
               [
                 ( "cg_scc",
                   "let rec ping n = if n = 0 then 0 else pong (n - 1)\n\
                    and pong n = if n = 0 then 1 else ping (n - 1)\n\
                    let entry n = ping n\n" );
               ])
        in
        Alcotest.(check (list string))
          "ping and pong share an SCC"
          [ "Cg_scc.ping"; "Cg_scc.pong" ]
          (List.sort compare (A.Callgraph.scc_members g "Cg_scc.ping"));
        Alcotest.(check (list string))
          "entry sits alone"
          [ "Cg_scc.entry" ]
          (A.Callgraph.scc_members g "Cg_scc.entry");
        match
          ( A.Callgraph.scc_index g "Cg_scc.ping",
            A.Callgraph.scc_index g "Cg_scc.entry" )
        with
        | Some callee, Some caller ->
          Testkit.check_true "recursive pair precedes its caller"
            (callee < caller)
        | _ -> Alcotest.fail "SCC index missing");
    Testkit.case "edges and reachability cross compilation units" (fun () ->
        let g =
          A.Callgraph.build
            (compile_all
               [
                 ("cg_leaf", "let f x = x + 1\nlet unused x = x * 2\n");
                 ("cg_root", "let run x = Cg_leaf.f x\n");
               ])
        in
        (match A.Callgraph.find g "Cg_root.run" with
        | None -> Alcotest.fail "Cg_root.run not in the graph"
        | Some n ->
          Testkit.check_true "resolved cross-unit edge"
            (List.mem "Cg_leaf.f" n.A.Callgraph.callees));
        let parents =
          A.Callgraph.reachable g ~roots:[ "Cg_root.run" ]
            ~follow:(fun _ -> true)
        in
        Testkit.check_true "callee reached across units"
          (Hashtbl.mem parents "Cg_leaf.f");
        Testkit.check_false "sibling not reached"
          (Hashtbl.mem parents "Cg_leaf.unused");
        Alcotest.(check (list string))
          "witness path, root first"
          [ "Cg_root.run"; "Cg_leaf.f" ]
          (A.Callgraph.witness parents "Cg_leaf.f"));
  ]

(* R7 against a fixture-local manifest. *)
let run_r7 ~entries ?(cuts = []) specs =
  let loader = compile_all specs in
  let rule =
    A.Rule_hotpath.make ~manifest:{ A.Rule_hotpath.entries; cuts } ()
  in
  A.Engine.run ~rules:[ rule ] loader

let r7_tests =
  [
    Testkit.case "an injected transitive allocation fails the proof"
      (fun () ->
        (* The acceptance fixture: the entry itself is clean, the
           allocation hides one call away. *)
        let fs =
          run_r7 ~entries:[ "R7_trans.fill" ]
            [
              ( "r7_trans",
                "let helper n = Array.make n 0.0\nlet fill n = helper n\n" );
            ]
        in
        match fs with
        | [ f ] ->
          Testkit.check_true "allocator named"
            (Testkit.contains ~needle:"Array.make" f.A.Finding.detail);
          Testkit.check_true "witness call path in the message"
            (Testkit.contains ~needle:"reachable from R7_trans.fill"
               f.A.Finding.message);
          Testkit.check_true "warning severity"
            (f.A.Finding.severity = A.Finding.Warning)
        | _ ->
          Alcotest.failf "expected exactly one finding, got %d"
            (List.length fs));
    Testkit.case "the same allocator out of reach stays clean" (fun () ->
        Alcotest.(check int)
          "no findings" 0
          (List.length
             (run_r7 ~entries:[ "R7_clean.fill" ]
                [
                  ( "r7_clean",
                    "let cold n = Array.make n 0.0\n\
                     let fill buf = Float.Array.set buf 0 1.0\n" );
                ])));
    Testkit.case "a manifest entry naming nothing is an error" (fun () ->
        let fs =
          run_r7 ~entries:[ "R7_ghost.nope" ]
            [ ("r7_ghost", "let fill buf = Float.Array.set buf 0 1.0\n") ]
        in
        match fs with
        | [ f ] ->
          Testkit.check_true "error severity"
            (f.A.Finding.severity = A.Finding.Error);
          Testkit.check_true "names the missing entry"
            (Testkit.contains ~needle:"missing-entry:R7_ghost.nope"
               f.A.Finding.detail)
        | _ -> Alcotest.fail "expected exactly one manifest-drift error");
    Testkit.case "an amortized cut stops traversal but leaves an Info trail"
      (fun () ->
        let fs =
          run_r7 ~entries:[ "R7_cut.fill" ]
            ~cuts:[ ("R7_cut.flush", "flushes once per window") ]
            [
              ( "r7_cut",
                "let flush n = Array.make n 0.0\n\
                 let fill n = let _a = flush n in 0\n" );
            ]
        in
        match fs with
        | [ f ] ->
          Testkit.check_true "info severity"
            (f.A.Finding.severity = A.Finding.Info);
          Testkit.check_true "cut named"
            (Testkit.contains ~needle:"amortized-cut:R7_cut.flush"
               f.A.Finding.detail);
          Testkit.check_true "the why travels in the message"
            (Testkit.contains ~needle:"once per window" f.A.Finding.message)
        | _ ->
          Alcotest.failf
            "expected only the cut's Info finding, got %d findings"
            (List.length fs));
    Testkit.case "a boxed int64 return is flagged; [@inline] erases it"
      (fun () ->
        let fs =
          run_r7 ~entries:[ "R7_box.fill" ]
            [
              ( "r7_box",
                "let next s = Int64.add s 1L\n\
                 let fill s = Int64.to_int (next s)\n" );
            ]
        in
        Testkit.check_true "boxed return flagged"
          (List.exists
             (fun (f : A.Finding.t) ->
               Testkit.contains ~needle:"boxed-return:int64"
                 f.A.Finding.detail)
             fs);
        Alcotest.(check int)
          "inline variant is clean" 0
          (List.length
             (run_r7 ~entries:[ "R7_boxinl.fill" ]
                [
                  ( "r7_boxinl",
                    "let[@inline] next s = Int64.add s 1L\n\
                     let fill s = Int64.to_int (next s)\n" );
                ])));
  ]

let r8_tests =
  (* A local Rng module makes the suffix-based head and type matches
     fire without linking ptrng_prng into a fixture. *)
  let rng_prelude =
    "module Rng = struct\n\
    \  type t = { mutable s : int }\n\
    \  let split t = { s = t.s + 1 }\n\
    \  let bits64 t = t.s <- t.s + 1; Int64.of_int t.s\n\
     end\n"
  in
  [
    Testkit.case "R8 flags a direct draw after splitting the stream"
      (fun () ->
        ignore
          (check_flags ~rule_id:"R8" ~name:"r8_bad"
             ~detail_part:"draw-after-split:rng"
             (rng_prelude
             ^ "let bad rng =\n\
                \  let child = Rng.split rng in\n\
                \  let a = Rng.bits64 rng in\n\
                \  (child, a)\n")));
    Testkit.case "R8 accepts draw-then-split" (fun () ->
        check_clean ~rule_id:"R8" ~name:"r8_ok"
          (rng_prelude
          ^ "let ok rng =\n\
             \  let a = Rng.bits64 rng in\n\
             \  let child = Rng.split rng in\n\
             \  (child, a)\n"));
    Testkit.case "R8 sees a draw hidden behind a callee (dataflow fixpoint)"
      (fun () ->
        ignore
          (check_flags ~rule_id:"R8" ~name:"r8_via"
             ~detail_part:"draw-after-split-via:rng"
             (rng_prelude
             ^ "let draw_twice rng = Int64.add (Rng.bits64 rng) (Rng.bits64 rng)\n\
                let bad rng =\n\
                \  let child = Rng.split rng in\n\
                \  let a = draw_twice rng in\n\
                \  ignore child; a\n")));
    Testkit.case "R8 flags module-level stream state" (fun () ->
        ignore
          (check_flags ~rule_id:"R8" ~name:"r8_state"
             ~detail_part:"module-state"
             (rng_prelude ^ "let global = { Rng.s = 42 }\n")));
    Testkit.case "R8 flags a pool task capturing a stream" (fun () ->
        ignore
          (check_flags ~rule_id:"R8" ~name:"r8_pool"
             ~detail_part:"pool-capture:rng"
             (rng_prelude
             ^ "module Pool = struct let run_tasks f = f 0 end\n\
                let bad rng =\n\
                \  Pool.run_tasks (fun i -> ignore i; ignore (Rng.bits64 rng))\n"
             )));
    Testkit.case "R8 warns on a split inside a sequential iterator" (fun () ->
        let fs =
          check_flags ~rule_id:"R8" ~name:"r8_iter"
            ~detail_part:"iterator-split"
            (rng_prelude
            ^ "let streams rng = Array.init 4 (fun _ -> Rng.split rng)\n")
        in
        List.iter
          (fun (f : A.Finding.t) ->
            Testkit.check_true "warning, not error — baselinable with a note"
              (f.A.Finding.severity = A.Finding.Warning))
          fs);
  ]

let r9_tests =
  [
    Testkit.case "R9 flags an unregistered schema tag" (fun () ->
        ignore
          (check_flags ~rule_id:"R9" ~name:"r9_unreg"
             ~detail_part:"unregistered"
             "let tag = \"ptrng-bogus/1\"\n"));
    Testkit.case "R9 flags a version skew against the registry" (fun () ->
        ignore
          (check_flags ~rule_id:"R9" ~name:"r9_skew"
             ~detail_part:"skew:lint@9!=1" "let old = \"ptrng-lint/9\"\n"));
    Testkit.case "R9 accepts registered current-version literals" (fun () ->
        check_clean ~rule_id:"R9" ~name:"r9_ok"
          "let ok = \"ptrng-lint/1\"\nlet prose = \"no tags here\"\n");
  ]

(* ------------------------------------------------------------------ *)
(* SARIF export                                                        *)
(* ------------------------------------------------------------------ *)

let sarif_tests =
  [
    Testkit.case "emitted SARIF validates, including after a round-trip"
      (fun () ->
        let fs =
          findings_of ~rule_id:"R1" ~name:"sarif_v1"
            "let roll () = Random.int 6\nlet t () = Sys.time ()\n"
        in
        let report =
          A.Report.make ~rules:A.Rules.all ~units:1 ~suppressed:0 fs
        in
        let doc = A.Sarif.of_report ~rules:A.Rules.all report in
        (match A.Sarif.validate doc with
        | Ok n -> Alcotest.(check int) "result count" (List.length fs) n
        | Error e -> Alcotest.fail e);
        match A.Sarif.validate (Json.of_string (Json.to_string_pretty doc)) with
        | Ok n -> Alcotest.(check int) "round-tripped count" (List.length fs) n
        | Error e -> Alcotest.fail e);
    Testkit.case "validation rejects broken documents" (fun () ->
        let fs =
          findings_of ~rule_id:"R1" ~name:"sarif_v2"
            "let roll () = Random.int 6\n"
        in
        let report =
          A.Report.make ~rules:A.Rules.all ~units:1 ~suppressed:0 fs
        in
        Testkit.check_true "undeclared ruleId rejected"
          (Result.is_error (A.Sarif.validate (A.Sarif.of_report ~rules:[] report)));
        Testkit.check_true "wrong version rejected"
          (Result.is_error
             (A.Sarif.validate
                (Json.Obj
                   [ ("version", Json.String "2.0.0"); ("runs", Json.List []) ])));
        Testkit.check_true "empty runs rejected"
          (Result.is_error
             (A.Sarif.validate
                (Json.Obj
                   [ ("version", Json.String "2.1.0"); ("runs", Json.List []) ])));
        (* A handcrafted run whose result lacks the fingerprint. *)
        let no_fp =
          Json.Obj
            [
              ("version", Json.String "2.1.0");
              ( "runs",
                Json.List
                  [
                    Json.Obj
                      [
                        ( "tool",
                          Json.Obj
                            [
                              ( "driver",
                                Json.Obj
                                  [
                                    ("name", Json.String "ptrng-lint");
                                    ( "rules",
                                      Json.List
                                        [ Json.Obj [ ("id", Json.String "R1") ] ]
                                    );
                                  ] );
                            ] );
                        ( "results",
                          Json.List
                            [
                              Json.Obj
                                [
                                  ("ruleId", Json.String "R1");
                                  ("level", Json.String "error");
                                  ( "message",
                                    Json.Obj [ ("text", Json.String "x") ] );
                                  ( "locations",
                                    Json.List
                                      [
                                        Json.Obj
                                          [
                                            ( "physicalLocation",
                                              Json.Obj
                                                [
                                                  ( "artifactLocation",
                                                    Json.Obj
                                                      [
                                                        ( "uri",
                                                          Json.String "a.ml" );
                                                      ] );
                                                ] );
                                          ];
                                      ] );
                                ];
                            ] );
                      ];
                  ] );
            ]
        in
        Testkit.check_true "missing fingerprint rejected"
          (Result.is_error (A.Sarif.validate no_fp)));
  ]

(* ------------------------------------------------------------------ *)
(* Baseline workflow and report schema                                 *)
(* ------------------------------------------------------------------ *)

let baseline_tests =
  [
    Testkit.case "a baselined finding is suppressed, a new one is fresh"
      (fun () ->
        let fs =
          findings_of ~rule_id:"R1" ~name:"bl_roll"
            "let roll () = Random.int 6\n"
        in
        Testkit.check_true "fixture produced findings" (fs <> []);
        let baseline = A.Baseline.of_findings fs in
        let fresh, suppressed = A.Baseline.apply baseline fs in
        Alcotest.(check int) "all suppressed" (List.length fs)
          (List.length suppressed);
        Alcotest.(check int) "none fresh" 0 (List.length fresh);
        (* Recompile the same module with one extra violation: the old
           fingerprint stays absorbed, the new symbol surfaces. *)
        let fs2 =
          findings_of ~rule_id:"R1" ~name:"bl_roll"
            "let roll () = Random.int 6\nlet extra () = Sys.time ()\n"
        in
        let fresh2, suppressed2 = A.Baseline.apply baseline fs2 in
        Testkit.check_true "new violation is fresh"
          (List.exists
             (fun (f : A.Finding.t) ->
               Testkit.contains ~needle:"Sys.time" f.A.Finding.detail)
             fresh2);
        Testkit.check_true "old violation stays absorbed"
          (List.exists
             (fun (f : A.Finding.t) ->
               Testkit.contains ~needle:"Random" f.A.Finding.detail)
             suppressed2));
    Testkit.case "baseline JSON round-trips" (fun () ->
        let fs =
          findings_of ~rule_id:"R1" ~name:"bl_json" "let t () = Sys.time ()\n"
        in
        let b = A.Baseline.of_findings fs in
        match A.Baseline.of_json (A.Baseline.to_json b) with
        | Ok b2 -> Alcotest.(check int) "count" (A.Baseline.count b) (A.Baseline.count b2)
        | Error e -> Alcotest.fail e);
    Testkit.case
      "prune drops dead entries, keeps notes, never absorbs a new finding"
      (fun () ->
        let fs =
          findings_of ~rule_id:"R1" ~name:"pr_v1"
            "let roll () = Random.int 6\nlet t () = Sys.time ()\n"
        in
        (match fs with
        | _ :: _ :: _ -> ()
        | _ -> Alcotest.fail "fixture must yield two findings");
        (* Attach a note to every entry through the JSON form — the
           same channel a human editing lint_baseline.json uses. *)
        let noted =
          let entries =
            match Json.member "entries" (A.Baseline.to_json (A.Baseline.of_findings fs)) with
            | Some (Json.List es) ->
              List.map
                (fun e ->
                  match e with
                  | Json.Obj kvs ->
                    Json.Obj (kvs @ [ ("note", Json.String "kept-note") ])
                  | other -> other)
                es
            | _ -> Alcotest.fail "baseline without entries"
          in
          match
            A.Baseline.of_json
              (Json.Obj
                 [
                   ("schema", Json.String "ptrng-lint-baseline/1");
                   ("entries", Json.List entries);
                 ])
          with
          | Ok b -> b
          | Error e -> Alcotest.fail e
        in
        (* Everything still live: pruning is the identity. *)
        let kept, removed = A.Baseline.prune noted fs in
        Alcotest.(check int) "nothing removed" 0 (List.length removed);
        Alcotest.(check int)
          "count unchanged"
          (A.Baseline.count noted)
          (A.Baseline.count kept);
        (* Only the Random finding survives an imagined fix of the
           Sys.time one: its entry is dropped and reported. *)
        let live =
          List.filter
            (fun (f : A.Finding.t) ->
              Testkit.contains ~needle:"Random" f.A.Finding.detail)
            fs
        in
        let kept2, removed2 = A.Baseline.prune noted live in
        Testkit.check_true "dead occurrences reported" (removed2 <> []);
        Alcotest.(check int)
          "pruned to the live set"
          (List.length live)
          (A.Baseline.count kept2);
        Testkit.check_true "note survives pruning"
          (Testkit.contains ~needle:"kept-note"
             (Json.to_string_pretty (A.Baseline.to_json kept2)));
        (* The pruned baseline must not absorb the finding it dropped:
           reintroducing the violation surfaces it as fresh. *)
        let fresh, _ = A.Baseline.apply kept2 fs in
        Testkit.check_true "reintroduced violation is fresh again"
          (List.exists
             (fun (f : A.Finding.t) ->
               Testkit.contains ~needle:"Sys.time" f.A.Finding.detail)
             fresh));
  ]

let report_tests =
  [
    Testkit.case "report JSON round-trips through Json.of_string" (fun () ->
        let fs =
          findings_of ~rule_id:"R1" ~name:"rep_v1"
            "let roll () = Random.int 6\nlet t () = Sys.time ()\n"
        in
        let report = A.Report.make ~rules:A.Rules.all ~units:1 ~suppressed:3 fs in
        let json = A.Report.to_json report in
        let reparsed = Json.of_string (Json.to_string_pretty json) in
        match A.Report.validate reparsed with
        | Error e -> Alcotest.fail e
        | Ok r2 ->
          Alcotest.(check int) "errors" (A.Report.errors report) (A.Report.errors r2);
          Alcotest.(check int) "suppressed" 3 r2.A.Report.suppressed;
          Alcotest.(check int) "units" 1 r2.A.Report.units;
          Alcotest.(check int) "findings"
            (List.length report.A.Report.findings)
            (List.length r2.A.Report.findings);
          let s = A.Report.summary_line r2 in
          Testkit.check_true "summary names the rules"
            (Testkit.contains ~needle:"R1,R2,R3,R4,R5" s);
          Testkit.check_true "summary counts baselined"
            (Testkit.contains ~needle:"(3 baselined)" s));
    Testkit.case "fingerprints ignore line drift" (fun () ->
        let f1 =
          findings_of ~rule_id:"R1" ~name:"fp_v1" "let t () = Sys.time ()\n"
        in
        let f2 =
          findings_of ~rule_id:"R1" ~name:"fp_v2"
            "(* pushed down by a comment *)\n\n\nlet t () = Sys.time ()\n"
        in
        match (f1, f2) with
        | [ a ], [ b ] ->
          (* Same rule/symbol/detail, different file names — fingerprints
             differ only in the file component. *)
          Testkit.check_true "lines differ"
            (a.A.Finding.line <> b.A.Finding.line);
          let strip_file (f : A.Finding.t) =
            (f.A.Finding.rule, f.A.Finding.symbol, f.A.Finding.detail)
          in
          Alcotest.(check bool) "location-free parts equal" true
            (strip_file a = strip_file b)
        | _ -> Alcotest.fail "expected one finding per fixture");
  ]

let () =
  Alcotest.run "ptrng_lint"
    [
      ("R1 determinism", r1_tests);
      ("R2 float safety", r2_tests);
      ("R3 concurrency", r3_tests);
      ("R4 span safety", r4_tests);
      ("R5 interface hygiene", r5_tests);
      ("R6 hot-path alloc", r6_tests);
      ("call graph", callgraph_tests);
      ("R7 hot-path proof", r7_tests);
      ("R8 rng streams", r8_tests);
      ("R9 schema registry", r9_tests);
      ("sarif", sarif_tests);
      ("baseline", baseline_tests);
      ("report", report_tests);
    ]
