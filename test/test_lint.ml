(* ptrng-lint: each rule against a violating and a clean fixture, the
   baseline workflow, and the JSON round-trip of the report schema.

   Fixtures are real OCaml sources compiled with ocamlc -bin-annot into
   a scratch directory, then loaded with [scope_all] so the rules skip
   their repo-path scoping.  Each check selects a single rule: the
   fixtures have no .mli, which R5 would otherwise flag everywhere. *)

module A = Ptrng_analysis
module Json = Ptrng_telemetry.Json

let ocamlc =
  (* dune exposes the toolchain on PATH inside test actions. *)
  "ocamlc"

let scratch = ref None

let scratch_dir () =
  match !scratch with
  | Some d -> d
  | None ->
    let d = Filename.temp_file "ptrng_lint_fix" "" in
    Sys.remove d;
    Unix.mkdir d 0o755;
    scratch := Some d;
    d

(* Compile [source] as [name].ml in the scratch dir; returns the cmt
   path.  Fixture names are unique per test so reruns in one process
   cannot collide. *)
let compile ~name source =
  let dir = scratch_dir () in
  let ml = Filename.concat dir (name ^ ".ml") in
  let oc = open_out ml in
  output_string oc source;
  close_out oc;
  let cmd =
    Printf.sprintf "cd %s && %s -bin-annot -c %s.ml 2>%s.err" (Filename.quote dir)
      ocamlc name name
  in
  if Sys.command cmd <> 0 then
    Alcotest.failf "fixture %s does not compile: %s" name
      (In_channel.with_open_text
         (Filename.concat dir (name ^ ".err"))
         In_channel.input_all);
  Filename.concat dir (name ^ ".cmt")

let findings_of ~rule_id ~name source =
  let cmt = compile ~name source in
  let loader = A.Loader.load_files ~scope_all:true [ cmt ] in
  let rule =
    match A.Rules.find rule_id with
    | Some r -> r
    | None -> Alcotest.failf "unknown rule %s" rule_id
  in
  A.Engine.run ~rules:[ rule ] loader

let check_flags ~rule_id ~name ~detail_part source =
  let fs = findings_of ~rule_id ~name source in
  Testkit.check_true
    (Printf.sprintf "%s flags %s" rule_id name)
    (List.exists
       (fun (f : A.Finding.t) ->
         Testkit.contains ~needle:detail_part f.A.Finding.detail
         || Testkit.contains ~needle:detail_part f.A.Finding.message)
       fs);
  fs

let check_clean ~rule_id ~name source =
  match findings_of ~rule_id ~name source with
  | [] -> ()
  | f :: _ ->
    Alcotest.failf "%s should be clean for %s but: %s" rule_id name
      (Format.asprintf "%a" A.Finding.pp f)

(* ------------------------------------------------------------------ *)
(* Per-rule fixtures                                                   *)
(* ------------------------------------------------------------------ *)

let r1_tests =
  [
    Testkit.case "R1 flags Random and wall-clock calls" (fun () ->
        let fs =
          check_flags ~rule_id:"R1" ~name:"r1_bad" ~detail_part:"Random"
            "let roll () = Random.int 6\nlet now () = Sys.time ()\n"
        in
        Testkit.check_true "Sys.time flagged too"
          (List.exists
             (fun (f : A.Finding.t) ->
               Testkit.contains ~needle:"Sys.time" f.A.Finding.detail)
             fs);
        List.iter
          (fun (f : A.Finding.t) ->
            Testkit.check_true "R1 is error severity"
              (f.A.Finding.severity = A.Finding.Error))
          fs);
    Testkit.case "R1 flags hash-order iteration, not keyed lookup" (fun () ->
        ignore
          (check_flags ~rule_id:"R1" ~name:"r1_hash" ~detail_part:"Hashtbl.fold"
             "let sum h = Hashtbl.fold (fun _ v acc -> v + acc) h 0\n");
        check_clean ~rule_id:"R1" ~name:"r1_ok"
          "let lookup h k = Hashtbl.find_opt h k\nlet add h k v = Hashtbl.replace h k v\n");
  ]

let r2_tests =
  [
    Testkit.case "R2 flags float equality and unguarded division" (fun () ->
        ignore
          (check_flags ~rule_id:"R2" ~name:"r2_eq" ~detail_part:"float-="
             "let degenerate s = s = 0.0\n");
        ignore
          (check_flags ~rule_id:"R2" ~name:"r2_div" ~detail_part:"div-by-n"
             "let mean total n = total /. float_of_int n\n"));
    Testkit.case "R2 accepts epsilon guards and validated denominators"
      (fun () ->
        check_clean ~rule_id:"R2" ~name:"r2_ok"
          "let near_zero x = Float.abs x < 1e-12\n\
           let mean total n = if n <= 0 then nan else total /. float_of_int n\n\
           let fixed total = total /. float_of_int 2048\n");
  ]

let r3_tests =
  (* A local module named Pool makes the suffix-based entry-point match
     fire without depending on ptrng_exec from a fixture. *)
  let pool_prelude =
    "module Pool = struct let run_tasks f = f 0 end\n"
  in
  [
    Testkit.case "R3 flags a module-level ref reachable from pool tasks"
      (fun () ->
        ignore
          (check_flags ~rule_id:"R3" ~name:"r3_bad" ~detail_part:"counter"
             (pool_prelude
             ^ "let counter = ref 0\n\
                let work () = Pool.run_tasks (fun i -> counter := !counter + i)\n"
             )));
    Testkit.case "R3 accepts Atomic state and mutex-guarded modules" (fun () ->
        check_clean ~rule_id:"R3" ~name:"r3_atomic"
          (pool_prelude
          ^ "let counter = Atomic.make 0\n\
             let work () = Pool.run_tasks (fun i -> ignore i; Atomic.incr counter)\n"
          );
        check_clean ~rule_id:"R3" ~name:"r3_mutex"
          (pool_prelude
          ^ "let lock = Mutex.create ()\n\
             let counter = ref 0\n\
             let work () =\n\
             \  Pool.run_tasks (fun i ->\n\
             \    Mutex.protect lock (fun () -> counter := !counter + i))\n"
          ));
    Testkit.case "R3 reports an unreachable module-level ref as info"
      (fun () ->
        let fs =
          findings_of ~rule_id:"R3" ~name:"r3_unreachable"
            "let cache = ref 0\nlet bump () = incr cache\n"
        in
        match fs with
        | [ f ] ->
          Testkit.check_true "info severity"
            (f.A.Finding.severity = A.Finding.Info)
        | _ -> Alcotest.failf "expected exactly one info finding, got %d"
                 (List.length fs));
  ]

let r4_tests =
  (* Local Span/Mutex modules stand in for the real pairs. *)
  let prelude =
    "module Span = struct let enter _ = () let exit _ = () end\n"
  in
  [
    Testkit.case "R4 flags a bare enter/exit pair" (fun () ->
        ignore
          (check_flags ~rule_id:"R4" ~name:"r4_bad" ~detail_part:"Span.enter"
             (prelude
             ^ "let timed f = Span.enter \"x\"; let r = f () in Span.exit \"x\"; r\n"
             )));
    Testkit.case "R4 accepts the pair under Fun.protect" (fun () ->
        check_clean ~rule_id:"R4" ~name:"r4_ok"
          (prelude
          ^ "let timed f =\n\
             \  Span.enter \"x\";\n\
             \  Fun.protect ~finally:(fun () -> Span.exit \"x\") f\n"
          ));
  ]

let r5_tests =
  [
    Testkit.case "R5 flags a lib module without an mli" (fun () ->
        ignore
          (check_flags ~rule_id:"R5" ~name:"r5_bad" ~detail_part:"mli"
             "let answer = 42\n"));
    Testkit.case "R5 flags an undocumented val and accepts a documented one"
      (fun () ->
        (* An interface fixture: compile the mli alone to get a cmti. *)
        let dir = scratch_dir () in
        let write name text =
          let oc = open_out (Filename.concat dir name) in
          output_string oc text;
          close_out oc
        in
        write "r5_iface.mli"
          "val documented : int\n(** Has a doc comment. *)\n\nval bare : int\n";
        write "r5_iface.ml" "let documented = 1\nlet bare = 2\n";
        let cmd =
          Printf.sprintf
            "cd %s && %s -bin-annot -c r5_iface.mli r5_iface.ml 2>/dev/null"
            (Filename.quote dir) ocamlc
        in
        if Sys.command cmd <> 0 then Alcotest.fail "r5_iface does not compile";
        let loader =
          A.Loader.load_files ~scope_all:true
            [
              Filename.concat dir "r5_iface.cmt";
              Filename.concat dir "r5_iface.cmti";
            ]
        in
        let rule = Option.get (A.Rules.find "R5") in
        let fs = A.Engine.run ~rules:[ rule ] loader in
        Testkit.check_true "bare flagged"
          (List.exists
             (fun (f : A.Finding.t) -> f.A.Finding.symbol = "bare")
             fs);
        Testkit.check_false "documented not flagged"
          (List.exists
             (fun (f : A.Finding.t) -> f.A.Finding.symbol = "documented")
             fs));
  ]

let r6_tests =
  [
    Testkit.case "R6 flags allocating combinators" (fun () ->
        ignore
          (check_flags ~rule_id:"R6" ~name:"r6_map" ~detail_part:"Array.map"
             "let scale s xs = Array.map (fun x -> s *. x) xs\n");
        ignore
          (check_flags ~rule_id:"R6" ~name:"r6_append"
             ~detail_part:"Array.append"
             "let grow a b = Array.append a b\n");
        ignore
          (check_flags ~rule_id:"R6" ~name:"r6_lmap" ~detail_part:"List.map"
             "let twice xs = List.map (fun x -> 2 * x) xs\n"));
    Testkit.case "R6 accepts in-place fills and folds" (fun () ->
        check_clean ~rule_id:"R6" ~name:"r6_ok"
          "let scale_into s xs =\n\
          \  for i = 0 to Float.Array.length xs - 1 do\n\
          \    Float.Array.set xs i (s *. Float.Array.get xs i)\n\
          \  done\n\
           let total xs = Array.fold_left (+.) 0.0 xs\n\
           let each f xs = Array.iter f xs\n");
  ]

(* ------------------------------------------------------------------ *)
(* Baseline workflow and report schema                                 *)
(* ------------------------------------------------------------------ *)

let baseline_tests =
  [
    Testkit.case "a baselined finding is suppressed, a new one is fresh"
      (fun () ->
        let fs =
          findings_of ~rule_id:"R1" ~name:"bl_roll"
            "let roll () = Random.int 6\n"
        in
        Testkit.check_true "fixture produced findings" (fs <> []);
        let baseline = A.Baseline.of_findings fs in
        let fresh, suppressed = A.Baseline.apply baseline fs in
        Alcotest.(check int) "all suppressed" (List.length fs)
          (List.length suppressed);
        Alcotest.(check int) "none fresh" 0 (List.length fresh);
        (* Recompile the same module with one extra violation: the old
           fingerprint stays absorbed, the new symbol surfaces. *)
        let fs2 =
          findings_of ~rule_id:"R1" ~name:"bl_roll"
            "let roll () = Random.int 6\nlet extra () = Sys.time ()\n"
        in
        let fresh2, suppressed2 = A.Baseline.apply baseline fs2 in
        Testkit.check_true "new violation is fresh"
          (List.exists
             (fun (f : A.Finding.t) ->
               Testkit.contains ~needle:"Sys.time" f.A.Finding.detail)
             fresh2);
        Testkit.check_true "old violation stays absorbed"
          (List.exists
             (fun (f : A.Finding.t) ->
               Testkit.contains ~needle:"Random" f.A.Finding.detail)
             suppressed2));
    Testkit.case "baseline JSON round-trips" (fun () ->
        let fs =
          findings_of ~rule_id:"R1" ~name:"bl_json" "let t () = Sys.time ()\n"
        in
        let b = A.Baseline.of_findings fs in
        match A.Baseline.of_json (A.Baseline.to_json b) with
        | Ok b2 -> Alcotest.(check int) "count" (A.Baseline.count b) (A.Baseline.count b2)
        | Error e -> Alcotest.fail e);
  ]

let report_tests =
  [
    Testkit.case "report JSON round-trips through Json.of_string" (fun () ->
        let fs =
          findings_of ~rule_id:"R1" ~name:"rep_v1"
            "let roll () = Random.int 6\nlet t () = Sys.time ()\n"
        in
        let report = A.Report.make ~rules:A.Rules.all ~units:1 ~suppressed:3 fs in
        let json = A.Report.to_json report in
        let reparsed = Json.of_string (Json.to_string_pretty json) in
        match A.Report.validate reparsed with
        | Error e -> Alcotest.fail e
        | Ok r2 ->
          Alcotest.(check int) "errors" (A.Report.errors report) (A.Report.errors r2);
          Alcotest.(check int) "suppressed" 3 r2.A.Report.suppressed;
          Alcotest.(check int) "units" 1 r2.A.Report.units;
          Alcotest.(check int) "findings"
            (List.length report.A.Report.findings)
            (List.length r2.A.Report.findings);
          let s = A.Report.summary_line r2 in
          Testkit.check_true "summary names the rules"
            (Testkit.contains ~needle:"R1,R2,R3,R4,R5" s);
          Testkit.check_true "summary counts baselined"
            (Testkit.contains ~needle:"(3 baselined)" s));
    Testkit.case "fingerprints ignore line drift" (fun () ->
        let f1 =
          findings_of ~rule_id:"R1" ~name:"fp_v1" "let t () = Sys.time ()\n"
        in
        let f2 =
          findings_of ~rule_id:"R1" ~name:"fp_v2"
            "(* pushed down by a comment *)\n\n\nlet t () = Sys.time ()\n"
        in
        match (f1, f2) with
        | [ a ], [ b ] ->
          (* Same rule/symbol/detail, different file names — fingerprints
             differ only in the file component. *)
          Testkit.check_true "lines differ"
            (a.A.Finding.line <> b.A.Finding.line);
          let strip_file (f : A.Finding.t) =
            (f.A.Finding.rule, f.A.Finding.symbol, f.A.Finding.detail)
          in
          Alcotest.(check bool) "location-free parts equal" true
            (strip_file a = strip_file b)
        | _ -> Alcotest.fail "expected one finding per fixture");
  ]

let () =
  Alcotest.run "ptrng_lint"
    [
      ("R1 determinism", r1_tests);
      ("R2 float safety", r2_tests);
      ("R3 concurrency", r3_tests);
      ("R4 span safety", r4_tests);
      ("R5 interface hygiene", r5_tests);
      ("R6 hot-path alloc", r6_tests);
      ("baseline", baseline_tests);
      ("report", report_tests);
    ]
