(** Post-mortem replay of flight-recorder incident bundles.

    An incident bundle ([ptrng-incident/1], see docs/POSTMORTEM.md) is
    wall-clock-free and records everything needed to re-create its run:
    the PRNG seed, the workload, the chunking discipline and the full
    monitor/recorder configuration.  This module re-simulates a loaded
    bundle two ways:

    - {!segment_check} — the cheap path: rebuild the stream, fast
      forward with {!Ptrng_osc.Pair.skip} to the recorded jitter-ring
      position, refill the captured segment and compare every raw
      jitter sample bit for bit;
    - {!replay} — the full path: re-run the identical pipeline from
      the seed until the recorder freezes the same incident id again,
      and return the replayed bundle, which must serialize to the
      byte-identical JSON (detector trajectory, verdict transitions
      and all) under any [PTRNG_DOMAINS].

    Supported provenance kinds: ["scenario"] (workload is a
    {!Registry} name) and ["monitor"] ([repro monitor] runs; workload
    is ["none"], ["quench:<strength>"] or ["inject:<strength>"]). *)

type verdict = {
  id : int;               (** Incident id from the bundle. *)
  kind : string;          (** Provenance kind. *)
  workload : string;      (** Provenance workload. *)
  segment_match : bool;   (** Skip-based raw-segment check passed. *)
  bundle_match : bool;    (** Full replay serialized byte-identically. *)
  replayed : Ptrng_telemetry.Json.t option;
                          (** The replayed bundle, when the replay froze one. *)
  errors : string list;   (** Why a check failed or could not run. *)
}
(** Outcome of {!verify}.  The replay contract holds iff
    [segment_match && bundle_match]. *)

val load : string -> (Ptrng_telemetry.Json.t, string) result
(** Read and parse an incident bundle from a file, checking the
    schema tag. *)

val segment_check : Ptrng_telemetry.Json.t -> (bool, string) result
(** Skip-and-refill verification of the captured raw jitter segment. *)

val replay : Ptrng_telemetry.Json.t -> (Ptrng_telemetry.Json.t, string) result
(** Deterministic full re-run; returns the freshly frozen bundle for
    the same incident id.  [Error] when the workload is unknown, the
    configuration does not parse, or the replay never freezes the
    incident. *)

val verify : Ptrng_telemetry.Json.t -> verdict
(** Run {!segment_check} and {!replay}, comparing the replayed bundle
    byte-for-byte against the loaded one. *)

val timeline : ?color:bool -> Ptrng_telemetry.Json.t -> string
(** Annotated ANSI timeline of the captured context: sparklines of the
    r_N / min-entropy / alarm trajectories, a severity strip with the
    trigger marked, and the recorded verdict transitions.  [color]
    (default true) enables ANSI colors. *)

val report_json : file:string -> verdict -> Ptrng_telemetry.Json.t
(** Machine-readable outcome, schema ["ptrng-postmortem/1"]
    (wall-clock-free). *)
