module FA = Float.Array
module Scenario = Ptrng_device.Scenario
module M = Ptrng_monitor
module Json = Ptrng_telemetry.Json

type result = {
  name : string;
  description : string;
  expected : string;
  seed : int;
  periods : int;
  divisor : int;
  onset : int option;
  detection : M.Detection.summary;
  final_status : M.Verdict.status;
  final_r : float;
  final_k : float;
  final_min_entropy : float;
  bits : int;
  windows : int;
  rct_alarms : int;
  apt_alarms : int;
  ais31_alarms : int;
  recoveries : int;
  incidents : Json.t list;
  incident_summaries : Json.t list;
}

(* Scored chunk: one snapshot is taken per chunk, which bounds the
   detection-timing error; 65536 periods is 1.6 chart windows at the
   stock divisor. *)
let chunk = 65536

(* The observatory defaults are sized for an indefinitely running
   device (256 sliding realizations per N refresh far too slowly to
   resolve the stock transient fault block).  Scenario scoring shrinks
   the windows so the estimator can track the schedule, judges r_N at
   N = 32 — the sliding fit's k = a/b carries a small-sample downward
   bias, and the smaller judged N keeps a calm run's noisy dips well
   clear of the confidence threshold while every scheduled fault still
   crosses it — narrows the chart window for finer latency resolution,
   and arms the fail-safe de-escalation. *)
let monitor_config () =
  {
    (M.Monitor.default_config ~f0:Ptrng_osc.Pair.paper_f0) with
    realizations = 128;
    min_realizations = 32;
    judge_n = 32;
    bit_window = 128;
    sp_window = 512;
    ais31_block = 512;
    recovery_windows = 4;
  }

let edges_of buf len =
  (* Chunk-local edge times (t0 = 0): the sampler compares edge times
     within the chunk only, so the global offset is irrelevant. *)
  let e = Array.make (len + 1) 0.0 in
  for k = 0 to len - 1 do
    e.(k + 1) <- e.(k) +. FA.get buf k
  done;
  e

(* The live model claim, rebuilt exactly the way a fresh calibration
   would from the monitor's current sliding variance curve.  Early
   windows (too few points) or degenerate fits (non-positive thermal
   coefficient) yield nan, which the scorer ignores. *)
let live_entropy_claim ~f0 ~divisor (snap : M.Monitor.snapshot) =
  try
    let fit = Ptrng_measure.Fit.fit ~f0 snap.points in
    let extract = Ptrng_measure.Thermal_extract.of_fit fit in
    Ptrng_model.Design.entropy_at ~extract ~divisor
  with Invalid_argument _ | Failure _ -> nan

(* The detection scorer attributes the first alarm to one detector;
   the frozen incident records the verdict reasons at its trigger.
   When both exist, reporting whether they agree is the cross-check
   the scorer cannot do alone ([Null] when the incident is a recovery
   or nothing was detected). *)
let attribution_match (d : M.Detection.summary) inc =
  let direction, _, _ = M.Flight_recorder.incident_trigger inc in
  if direction <> "escalation" then Json.Null
  else
    match d.detected with
    | None -> Json.Null
    | Some a ->
      Json.Bool
        (List.exists
           (fun (code, _) -> code = a.detector)
           (M.Flight_recorder.incident_reasons inc))

let run ?(seed = 7) (e : Registry.entry) : result =
  let scen = e.Registry.scenario in
  let cfg = monitor_config () in
  let mon = M.Monitor.create cfg in
  let recorder =
    M.Flight_recorder.create
      ~provenance:
        {
          kind = "scenario";
          workload = Scenario.name scen;
          seed;
          divisor = e.divisor;
          chunk;
          flicker_block = chunk;
        }
      ()
  in
  M.Monitor.attach_recorder mon recorder;
  let static =
    Ptrng_measure.Thermal_extract.of_phase ~f0:Ptrng_osc.Pair.paper_f0
      Ptrng_osc.Pair.paper_relative
  in
  let static_r = Ptrng_measure.Thermal_extract.r_n static cfg.judge_n in
  let static_entropy =
    Ptrng_model.Design.entropy_at ~extract:static ~divisor:e.divisor
  in
  let onset = Scenario.onset scen in
  let det =
    M.Detection.create ?onset_period:onset ~static_r ~static_entropy ()
  in
  let rng = Ptrng_prng.Rng.create ~seed:(Int64.of_int seed) () in
  let pair = Ptrng_osc.Pair.paper_pair () in
  let stream = Ptrng_osc.Pair.stream ~flicker_block:chunk ~scenario:scen rng pair in
  let p1 = FA.create chunk in
  let p2 = FA.create chunk in
  let jbuf = FA.create chunk in
  let pos = ref 0 in
  while !pos < e.periods do
    let len = min chunk (e.periods - !pos) in
    Ptrng_osc.Pair.fill stream ~p1 ~p2 ~len;
    for i = 0 to len - 1 do
      FA.set jbuf i (FA.get p1 i -. FA.get p2 i)
    done;
    M.Monitor.feed_jitter_chunk mon jbuf ~len;
    let osc1_edges = edges_of p1 len in
    let osc2_edges = edges_of p2 len in
    M.Monitor.feed_bits mon
      (Ptrng_trng.Sampler.sample ~osc1_edges ~osc2_edges ~divisor:e.divisor);
    pos := !pos + len;
    let snap = M.Monitor.snapshot mon in
    M.Detection.observe det
      ~live_entropy:(live_entropy_claim ~f0:cfg.f0 ~divisor:e.divisor snap)
      snap
  done;
  let snap = M.Monitor.snapshot mon in
  let det_summary = M.Detection.summary det in
  let frozen = M.Flight_recorder.incidents recorder in
  let summaries =
    List.map
      (fun inc ->
        match M.Flight_recorder.summary_json recorder inc with
        | Json.Obj kvs ->
          Json.Obj (kvs @ [ ("attribution_match", attribution_match det_summary inc) ])
        | j -> j)
      frozen
  in
  {
    name = Scenario.name scen;
    description = Scenario.description scen;
    expected = e.expected;
    seed;
    periods = e.periods;
    divisor = e.divisor;
    onset;
    detection = det_summary;
    final_status = snap.verdict.status;
    final_r = snap.r_judge;
    final_k = snap.k_est;
    final_min_entropy = snap.min_entropy;
    bits = snap.bits;
    windows = snap.windows;
    rct_alarms = snap.rct_alarms;
    apt_alarms = snap.apt_alarms;
    ais31_alarms = snap.ais31_alarms;
    recoveries = snap.recoveries;
    incidents = List.map (M.Flight_recorder.incident_json recorder) frozen;
    incident_summaries = summaries;
  }

let alarm_json (a : M.Detection.alarm) =
  Json.Obj
    [
      ("detector", Json.String a.detector);
      ("at_period", Json.Int a.at_period);
      ("at_bit", Json.Int a.at_bit);
      ("at_window", Json.Int a.at_window);
      ("latency_periods", Json.Int a.latency_periods);
      ("latency_bits", Json.Int a.latency_bits);
      ("latency_windows", Json.Int a.latency_windows);
    ]

let recovery_json (r : M.Detection.recovery) =
  Json.Obj
    [ ("at_period", Json.Int r.at_period); ("at_window", Json.Int r.at_window) ]

(* Deliberately free of wall-clock values: the same seed must produce
   byte-identical reports under any PTRNG_DOMAINS setting. *)
let result_json (r : result) =
  let d = r.detection in
  Json.Obj
    [
      ("name", Json.String r.name);
      ("description", Json.String r.description);
      ("expected", Json.String r.expected);
      ("seed", Json.Int r.seed);
      ("periods", Json.Int r.periods);
      ("divisor", Json.Int r.divisor);
      ("onset", match r.onset with None -> Json.Null | Some o -> Json.Int o);
      ("false_alarms", Json.Int d.false_alarms);
      ("pre_onset_nonok", Json.Int d.pre_onset_nonok);
      ( "detected",
        match d.detected with None -> Json.Null | Some a -> alarm_json a );
      ( "recovered",
        match d.recovered with None -> Json.Null | Some x -> recovery_json x );
      ( "static",
        Json.Obj
          [ ("r", Json.num d.static_r); ("entropy", Json.num d.static_entropy) ]
      );
      ( "live",
        Json.Obj
          [
            ("r", Json.num d.live_r);
            ("entropy", Json.num d.live_entropy);
            ("min_entropy", Json.num r.final_min_entropy);
          ] );
      ( "lie_margin",
        Json.Obj
          [
            ("r", Json.num d.lie_margin_r);
            ("entropy", Json.num d.lie_margin_entropy);
          ] );
      ( "alarms",
        Json.Obj
          [
            ("rct", Json.Int r.rct_alarms);
            ("apt", Json.Int r.apt_alarms);
            ("ais31", Json.Int r.ais31_alarms);
          ] );
      ("recoveries", Json.Int r.recoveries);
      ("incidents", Json.List r.incident_summaries);
      ( "final",
        Json.Obj
          [
            ("status", Json.String (M.Verdict.status_string r.final_status));
            ("r", Json.num r.final_r);
            ("k", Json.num r.final_k);
            ("bits", Json.Int r.bits);
            ("windows", Json.Int r.windows);
          ] );
    ]

let schema = "ptrng-scenario/1"

let report_json ~seed results =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("seed", Json.Int seed);
      ("scenarios", Json.List (List.map result_json results));
    ]
