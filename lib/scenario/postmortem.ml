module FA = Float.Array
module Json = Ptrng_telemetry.Json
module M = Ptrng_monitor
module FR = Ptrng_monitor.Flight_recorder

type verdict = {
  id : int;
  kind : string;
  workload : string;
  segment_match : bool;
  bundle_match : bool;
  replayed : Json.t option;
  errors : string list;
}

(* ------------------------------------------------------------------ *)
(* Bundle field access                                                 *)
(* ------------------------------------------------------------------ *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let obj_field k j =
  match Json.member k j with Some v -> v | None -> bad "missing field %S" k

let int_field k j =
  match Json.member k j with Some (Json.Int n) -> n | _ -> bad "field %S is not an int" k

let str_field k j =
  match Json.member k j with
  | Some (Json.String s) -> s
  | _ -> bad "field %S is not a string" k

let float_list_field k j =
  match Json.member k j with
  | Some (Json.List l) ->
    Array.of_list
      (List.map
         (fun v ->
           match Json.to_float v with
           | Some f -> f
           | None -> bad "field %S holds a non-number" k)
         l)
  | _ -> bad "field %S is not a list" k

let provenance_of_json j =
  {
    FR.kind = str_field "kind" j;
    workload = str_field "workload" j;
    seed = int_field "seed" j;
    divisor = int_field "divisor" j;
    chunk = int_field "chunk" j;
    flicker_block = int_field "flicker_block" j;
  }

let recorder_config_of_json j =
  {
    FR.jitter_capacity = int_field "jitter_capacity" j;
    bit_capacity = int_field "bit_capacity" j;
    window_capacity = int_field "window_capacity" j;
    post_windows = int_field "post_windows" j;
    max_incidents = int_field "max_incidents" j;
  }

let schema = "ptrng-incident/1"

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | raw -> (
    match Json.of_string raw with
    | exception Failure e -> Error (Printf.sprintf "%s: bad JSON: %s" path e)
    | j -> (
      match Json.member "schema" j with
      | Some (Json.String s) when s = schema -> Ok j
      | Some (Json.String s) ->
        Error (Printf.sprintf "%s: schema %S, expected %S" path s schema)
      | _ -> Error (Printf.sprintf "%s: missing schema tag" path)))

(* ------------------------------------------------------------------ *)
(* Stream reconstruction                                               *)
(* ------------------------------------------------------------------ *)

(* A "monitor"-kind workload is the attack spec of [repro monitor]:
   "none", "quench:<strength>" or "inject:<strength>". *)
let attacked_pair workload pair =
  match String.split_on_char ':' workload with
  | [ "none" ] -> pair
  | [ "quench"; s ] -> (
    match float_of_string_opt s with
    | Some st -> Ptrng_trng.Attack.thermal_quench ~factor:(1.0 -. st) pair
    | None -> bad "bad quench strength %S" s)
  | [ "inject"; s ] -> (
    match float_of_string_opt s with
    | Some st -> Ptrng_trng.Attack.frequency_injection ~lock_strength:st pair
    | None -> bad "bad inject strength %S" s)
  | _ -> bad "unknown monitor workload %S" workload

(* The stream of the original run: scenario workloads resolve through
   the registry, monitor workloads rebuild the attacked pair. *)
let stream_of (prov : FR.provenance) =
  let rng = Ptrng_prng.Rng.create ~seed:(Int64.of_int prov.seed) () in
  let pair = Ptrng_osc.Pair.paper_pair () in
  match prov.kind with
  | "scenario" -> (
    match Registry.find prov.workload with
    | None -> bad "unknown scenario %S" prov.workload
    | Some e ->
      ( Ptrng_osc.Pair.stream ~flicker_block:prov.flicker_block
          ~scenario:e.Registry.scenario rng pair,
        Some e ))
  | "monitor" ->
    ( Ptrng_osc.Pair.stream ~flicker_block:prov.flicker_block rng
        (attacked_pair prov.workload pair),
      None )
  | k -> bad "unknown provenance kind %S" k

(* ------------------------------------------------------------------ *)
(* Cheap segment verification: Pair.skip to the ring position          *)
(* ------------------------------------------------------------------ *)

let segment_check bundle =
  try
    let prov = provenance_of_json (obj_field "provenance" bundle) in
    let capture = obj_field "capture" bundle in
    let jitter_start = int_field "jitter_start" capture in
    let jitter = float_list_field "jitter" capture in
    let stream, _ = stream_of prov in
    Ptrng_osc.Pair.skip stream jitter_start;
    let n = Array.length jitter in
    let p1 = FA.create n and p2 = FA.create n in
    Ptrng_osc.Pair.fill stream ~p1 ~p2 ~len:n;
    let ok = ref true in
    for i = 0 to n - 1 do
      if
        Int64.bits_of_float (FA.get p1 i -. FA.get p2 i)
        <> Int64.bits_of_float jitter.(i)
      then ok := false
    done;
    Ok !ok
  with Bad e -> Error e

(* ------------------------------------------------------------------ *)
(* Full deterministic replay                                           *)
(* ------------------------------------------------------------------ *)

let replay bundle =
  try
    let prov = provenance_of_json (obj_field "provenance" bundle) in
    let rec_cfg = recorder_config_of_json (obj_field "recorder" bundle) in
    let mon_cfg =
      match M.Monitor.config_of_json (obj_field "monitor_config" bundle) with
      | Some c -> c
      | None -> bad "monitor_config does not parse"
    in
    let id = int_field "id" bundle in
    let at_period = int_field "at_period" (obj_field "trigger" bundle) in
    let stream, entry = stream_of prov in
    (* The replay must present the identical chunk partitioning: the
       refit cadence is evaluated once per chunk, so partitioning is
       part of the trajectory.  Scenario runs cap at the registry run
       length (and always fill [min chunk remaining]); monitor runs
       fill whole chunks, capped a safe margin past the trigger. *)
    let cap, partial_tail =
      match entry with
      | Some e -> (e.Registry.periods, true)
      | None ->
        ( at_period
          + ((rec_cfg.FR.post_windows + 8) * mon_cfg.M.Monitor.bit_window
            * prov.divisor)
          + (2 * prov.chunk),
          false )
    in
    let mon = M.Monitor.create mon_cfg in
    let recorder = FR.create ~config:rec_cfg ~provenance:prov () in
    M.Monitor.attach_recorder mon recorder;
    let chunk = prov.chunk in
    let p1 = FA.create chunk in
    let p2 = FA.create chunk in
    let jbuf = FA.create chunk in
    let pos = ref 0 in
    while FR.incident_count recorder <= id && !pos < cap do
      let len = if partial_tail then min chunk (cap - !pos) else chunk in
      Ptrng_osc.Pair.fill stream ~p1 ~p2 ~len;
      for i = 0 to len - 1 do
        FA.set jbuf i (FA.get p1 i -. FA.get p2 i)
      done;
      M.Monitor.feed_jitter_chunk mon jbuf ~len;
      let osc1_edges = Runner.edges_of p1 len in
      let osc2_edges = Runner.edges_of p2 len in
      M.Monitor.feed_bits mon
        (Ptrng_trng.Sampler.sample ~osc1_edges ~osc2_edges
           ~divisor:prov.divisor);
      pos := !pos + len
    done;
    match FR.incident recorder id with
    | Some i -> Ok (FR.incident_json recorder i)
    | None ->
      Error
        (Printf.sprintf
           "replay streamed %d periods without freezing incident %d" !pos id)
  with Bad e -> Error e

let verify bundle =
  let id = try int_field "id" bundle with Bad _ -> -1 in
  let kind, workload =
    try
      let p = obj_field "provenance" bundle in
      (str_field "kind" p, str_field "workload" p)
    with Bad _ -> ("?", "?")
  in
  let errors = ref [] in
  let segment_match =
    match segment_check bundle with
    | Ok true -> true
    | Ok false ->
      errors := "captured jitter segment does not reproduce" :: !errors;
      false
    | Error e ->
      errors := Printf.sprintf "segment check: %s" e :: !errors;
      false
  in
  let bundle_match, replayed =
    match replay bundle with
    | Error e ->
      errors := Printf.sprintf "replay: %s" e :: !errors;
      (false, None)
    | Ok r ->
      if Json.to_string r = Json.to_string bundle then (true, Some r)
      else begin
        errors := "replayed bundle differs from the recorded one" :: !errors;
        (false, Some r)
      end
  in
  { id; kind; workload; segment_match; bundle_match; replayed;
    errors = List.rev !errors }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let paint color code s = if color then "\x1b[" ^ code ^ "m" ^ s ^ "\x1b[0m" else s

let severity_glyph = function 0 -> '.' | 1 -> 'd' | _ -> 'F'
let status_name = function
  | 0 -> "ok"
  | 1 -> "degraded"
  | _ -> "failing"

let timeline ?(color = true) bundle =
  try
    let b = Buffer.create 1024 in
    let trigger = obj_field "trigger" bundle in
    let capture = obj_field "capture" bundle in
    let id = int_field "id" bundle in
    let direction = str_field "direction" trigger in
    let sev_to = int_field "severity_to" trigger in
    let at_window = int_field "at_window" trigger in
    let head =
      Printf.sprintf "incident %d — %s to %s at window %d (period %d, bit %d)"
        id direction (status_name sev_to) at_window
        (int_field "at_period" trigger)
        (int_field "at_bit" trigger)
    in
    Buffer.add_string b
      (paint color (if sev_to > 0 then "1;33" else "1;32") head);
    Buffer.add_char b '\n';
    (match Json.member "reasons" trigger with
    | Some (Json.List l) ->
      List.iter
        (fun r ->
          Buffer.add_string b
            (Printf.sprintf "  reason: %s — %s\n" (str_field "code" r)
               (str_field "detail" r)))
        l
    | _ -> ());
    let rows =
      match Json.member "windows" capture with
      | Some (Json.List l) -> Array.of_list l
      | _ -> [||]
    in
    let n = Array.length rows in
    if n > 0 then begin
      let col k = Array.map (fun r -> Option.value ~default:nan (Json.to_float (obj_field k r))) rows in
      let first = int_field "index" rows.(0) in
      let last = int_field "index" rows.(n - 1) in
      Buffer.add_string b
        (Printf.sprintf "  captured windows %d..%d:\n" first last);
      let line name xs =
        Buffer.add_string b
          (Printf.sprintf "    %-12s %s\n" name (M.Dashboard.spark xs))
      in
      line "r_N" (col "r_n");
      line "min-entropy" (col "min_entropy");
      line "alarms" (col "alarms");
      let strip =
        String.init n (fun i -> severity_glyph (int_field "severity" rows.(i)))
      in
      Buffer.add_string b (Printf.sprintf "    %-12s %s\n" "severity" strip);
      let marker =
        String.init n (fun i ->
            if int_field "index" rows.(i) = at_window then '^' else ' ')
      in
      if String.trim marker <> "" then
        Buffer.add_string b (Printf.sprintf "    %-12s %s  (^ trigger)\n" "" marker)
    end;
    (match Json.member "transitions" capture with
    | Some (Json.List (_ :: _ as l)) ->
      Buffer.add_string b "  transitions:\n";
      List.iter
        (fun tr ->
          Buffer.add_string b
            (Printf.sprintf "    window %d: %s -> %s (period %d, bit %d)\n"
               (int_field "window" tr)
               (status_name (int_field "from" tr))
               (status_name (int_field "to" tr))
               (int_field "at_period" tr)
               (int_field "at_bit" tr)))
        l
    | _ -> ());
    Buffer.contents b
  with Bad e -> Printf.sprintf "timeline unavailable: %s\n" e

let report_json ~file v =
  Json.Obj
    [
      ("schema", Json.String "ptrng-postmortem/1");
      ("file", Json.String file);
      ("id", Json.Int v.id);
      ("kind", Json.String v.kind);
      ("workload", Json.String v.workload);
      ("segment_match", Json.Bool v.segment_match);
      ("bundle_match", Json.Bool v.bundle_match);
      ("ok", Json.Bool (v.segment_match && v.bundle_match));
      ("errors", Json.List (List.map (fun e -> Json.String e) v.errors));
    ]
