(** The scenario matrix: named adversarial and environmental workloads
    for the paper's demonstrator P-TRNG.

    Every entry pairs a {!Ptrng_device.Scenario} schedule with the
    workload geometry it is scored under (run length and sampler
    divisor) and a one-line statement of the expected outcome.  The
    matrix spans the interesting quadrants: clean baselines, benign
    environmental variation, stealthy degradations only the live
    variance-curve fit can see, transient faults the verdict must
    recover from, and persistent faults that must stay latched. *)

type entry = {
  scenario : Ptrng_device.Scenario.t;  (** The schedule itself. *)
  periods : int;   (** Jitter samples to stream (run length). *)
  divisor : int;   (** Sampler divisor (output bit every [divisor]
                       periods of the sampled ring). *)
  expected : string;  (** One-line expected outcome, for reports. *)
}
(** One named workload. *)

val default_periods : int
(** Run length shared by the stock entries (2^22 periods). *)

val default_divisor : int
(** Sampler divisor shared by the stock entries (1000): the detuning
    beat then outruns the sampling-phase diffusion by an order of
    magnitude, so a calm run's RCT false-alarm baseline is zero. *)

val fault_onset : int
(** Period at which the stock faults switch on (a whole number of
    chart windows into the run). *)

val fault_duration : int
(** Length of the stock transient fault block, periods. *)

val all : unit -> entry list
(** The full matrix, in presentation order (11 scenarios). *)

val names : unit -> string list
(** Scenario names, in the same order as {!all}. *)

val find : string -> entry option
(** Look an entry up by scenario name. *)
