(** Scenario execution and scoring.

    A run streams one {!Registry.entry}'s schedule through the full
    pipeline — scenario-aware oscillator pair ({!Ptrng_osc.Pair.stream}),
    relative jitter into the {!Ptrng_monitor.Monitor} variance-curve /
    health-test / control-chart stack, coincidence-sampled bits through
    the same monitor — while a {!Ptrng_monitor.Detection} scorer
    watches one snapshot per chunk.  The result carries the detection
    latency, first detector, false-alarm baseline, recovery timing and
    silent-lie margins, and serializes to the deterministic
    ["ptrng-scenario/1"] JSON report (no wall-clock fields, so equal
    seeds compare byte-identical across [PTRNG_DOMAINS] settings). *)

type result = {
  name : string;         (** Scenario name. *)
  description : string;  (** Scenario description. *)
  expected : string;     (** Registry's expected-outcome line. *)
  seed : int;            (** PRNG seed the run used. *)
  periods : int;         (** Jitter samples streamed. *)
  divisor : int;         (** Sampler divisor. *)
  onset : int option;    (** Schedule onset ({!Ptrng_device.Scenario.onset}). *)
  detection : Ptrng_monitor.Detection.summary;
      (** Latency, attribution, false alarms, recovery, lie margins. *)
  final_status : Ptrng_monitor.Verdict.status;  (** Verdict at the end. *)
  final_r : float;            (** Live r_N at the judged N, at the end. *)
  final_k : float;            (** Fitted k = a/b at the end. *)
  final_min_entropy : float;  (** Last windowed MCV min-entropy. *)
  bits : int;                 (** Output bits produced. *)
  windows : int;              (** Chart windows closed. *)
  rct_alarms : int;           (** Total RCT alarms over the run. *)
  apt_alarms : int;           (** Total APT alarms over the run. *)
  ais31_alarms : int;         (** Total AIS31 monobit alarms. *)
  recoveries : int;           (** Fail-safe de-escalations granted. *)
  incidents : Ptrng_telemetry.Json.t list;
      (** Full frozen ["ptrng-incident/1"] bundles, in freeze order —
          every run carries a {!Ptrng_monitor.Flight_recorder}, so an
          escalating scenario leaves replayable evidence behind. *)
  incident_summaries : Ptrng_telemetry.Json.t list;
      (** One summary per bundle, augmented with
          [attribution_match]: whether the {!Ptrng_monitor.Detection}
          scorer's first-alarm detector appears among the incident
          trigger's verdict reasons ([null] for recoveries or
          undetected runs). *)
}
(** One scored scenario run. *)

val chunk : int
(** Streaming chunk size (65536 periods); also the snapshot cadence,
    which bounds the detection-timing error. *)

val monitor_config : unit -> Ptrng_monitor.Monitor.config
(** The observatory configuration scenario runs are scored under:
    stock paper-f0 defaults with sliding windows shrunk (128
    realizations, 32 minimum) so the estimator tracks transients,
    r judged at N = 32 to absorb the sliding fit's small-sample bias
    on k, 128-bit chart windows, 512-bit APT/AIS31 blocks and a
    4-window recovery streak. *)

val run : ?seed:int -> Registry.entry -> result
(** Execute and score one entry.  [seed] (default 7) seeds the noise
    PRNG; everything else is deterministic. *)

val edges_of : Float.Array.t -> int -> float array
(** [edges_of buf len] is the chunk-local edge-time array the sampler
    consumes ([len + 1] cumulative sums starting at 0) — exposed so
    {!Postmortem} replays bits with the identical discipline. *)

val result_json : result -> Ptrng_telemetry.Json.t
(** One scenario's JSON record (wall-clock-free). *)

val schema : string
(** ["ptrng-scenario/1"]. *)

val report_json : seed:int -> result list -> Ptrng_telemetry.Json.t
(** The full report: schema tag, seed and one record per scenario. *)
