module Scenario = Ptrng_device.Scenario

type entry = {
  scenario : Scenario.t;
  periods : int;
  divisor : int;
  expected : string;
}

(* Shared workload geometry.  One period is about 10 ns of device
   time, so a run covers ~42 ms of simulated operation.  The divisor
   matches the monitor's proven operating point (1000): the detuning
   beat then advances 0.1 T0 per bit, an order of magnitude faster
   than the sampling phase diffuses, so a calm run produces no
   false alarms.  Faults start ten chart windows in (divisor 1000 x
   128 bits = 128000 periods per window) and the transient block
   spans four windows, leaving an ~18-window tail for the de-escalation
   streaks. *)
let default_periods = 4_194_304
let default_divisor = 1000
let fault_onset = 1_280_000
let fault_duration = 512_000

let entry ?(periods = default_periods) ?(divisor = default_divisor) ~expected
    scenario =
  { scenario; periods; divisor; expected }

let calm () =
  entry ~expected:"clean run; counts the false-alarm baseline"
    (Scenario.make ~name:"calm"
       ~description:
         "calibrated pair, identity schedule — the false-alarm baseline" ())

let temp_cycle () =
  (* A +-35% swing in thermal noise power and a 50 ppm frequency
     wobble, both over ~10 ms: a device breathing with ambient
     temperature.  r_N = k/(k+N) moves with the ratio a/b, which this
     modulates by at most ~1.5x — never near the judged threshold. *)
  entry ~expected:"benign environmental cycling; verdict stays ok"
    (Scenario.make ~name:"temp-cycle"
       ~description:
         "sinusoidal thermal-noise and frequency cycling within the \
          independence margin"
       ~b_th:
         (Scenario.Sine
            { period = 1_048_576; mean = 1.0; amplitude = 0.35; phase = 0.0 })
       ~f0:
         (Scenario.Sine
            {
              period = 1_048_576;
              mean = 1.0;
              amplitude = 5e-5;
              phase = 1.5707963267948966;
            })
       ())

let supply_droop () =
  (* Both rings sit on the same rail, so the droop scales both
     frequencies by the same factor: the relative detuning — and with
     it the sampler's beat — is unchanged, and a/b moves by ~1.2x.
     Every bit-level test and r_N itself are blind to it. *)
  entry
    ~expected:
      "stealth: a symmetric rail droop is invisible to bit-level tests and \
       to r_N"
    (Scenario.make ~name:"supply-droop"
       ~description:
         "transient 12% symmetric supply droop slowing both rings together"
       ~faults:
         [
           Scenario.Supply_droop
             { onset = fault_onset; duration = fault_duration; depth = 0.12 };
         ]
       ())

let thermal_quench () =
  (* The classic cooling attack from lib/trng/attack.ml, made
     transient: thermal noise drops to 2% of calibration for one fault
     block.  The bits stay balanced (the detuning beat still dithers
     the sampling phase), so the health tests stay silent — only the
     live variance curve sees the small-N points collapse, the fitted
     k crash, and r_N fall through the confidence floor. *)
    entry
      ~expected:
        "silent at bit level; detected by the independence ratio, verdict \
         recovers after the fault clears"
      (Scenario.make ~name:"thermal-quench"
         ~description:"transient thermal quench to 2% of calibrated b_th"
         ~faults:
           [
             Scenario.Thermal_quench
               { onset = fault_onset; duration = fault_duration; factor = 0.02 };
           ]
         ())

let thermal_aging () =
  (* Slow exponential decay of thermal noise: b_th is down to ~9% of
     calibration by the end of the run.  Nothing alarms for most of
     the run while the static calibration still claims the paper's
     r_N — the silent-lie scenario. *)
  entry
    ~expected:
      "slow drift: online tests lag, the stale static claim lies about r_N"
    (Scenario.make ~name:"thermal-aging"
       ~description:
         "exponential thermal-noise decay to ~9% of calibration over the run"
       ~b_th:(Scenario.Drift { rate = -5.5e-7 })
       ())

let flicker_surge () =
  (* Ramping flicker power 25x moves the curve's quadratic term:
     k = a/b collapses from 5354 to ~214, dragging r_64 far below
     95%.  A pure model-level detection with moderate latency. *)
  entry ~expected:"ramping flicker shrinks k = a/b; independence detects"
    (Scenario.make ~name:"flicker-surge"
       ~description:"flicker noise power ramping 1x -> 25x mid-run"
       ~b_fl:
         (Scenario.Ramp
            { start = fault_onset; stop = 3_200_000; from_ = 1.0; to_ = 25.0 })
       ())

let tone_burst () =
  (* An injected tone sized so its accumulated phase drift per bit
     (divisor x amplitude = 0.12 T0) slightly exceeds the detuning
     beat (0.1 T0 per bit): twice per slow tone cycle the two cancel,
     the beat stalls for tens of bits and the repetition-count test
     fires.  The tone also pumps the accumulated variance at large N,
     so the independence ratio may fire first — either way the fault
     is caught, and after the burst the verdict de-escalates.  The
     burst spans two full tone cycles (1M periods) so it covers
     several stall opportunities. *)
  entry
    ~expected:
      "RCT fires during the burst, charts latch, verdict de-escalates back \
       to ok"
    (Scenario.make ~name:"tone-burst"
       ~description:
         "transient injected tone at the detuning amplitude, stalling the \
          sampler beat"
       ~faults:
         [
           Scenario.Tone_injection
             {
               onset = fault_onset;
               duration = 1_024_000;
               freq = 2e-6;
               amplitude = 1.2e-4;
             };
         ]
       ())

let tone_lock () =
  (* The same tone, never removed: the beat keeps stalling, the tests
     keep alarming, no clean streak ever accrues and the sticky chart
     state is never forgiven. *)
  entry ~expected:"persistent tone keeps alarming; verdict stays latched"
    (Scenario.make ~name:"tone-lock"
       ~description:"persistent injected tone at the detuning amplitude"
       ~faults:
         [
           Scenario.Tone_injection
             {
               onset = fault_onset;
               duration = Scenario.forever;
               freq = 2e-6;
               amplitude = 1.2e-4;
             };
         ]
       ())

let lock_burst () =
  (* Transient injection locking: for four chart windows the rings
     pull together, the beat stalls and the output freezes solid —
     RCT fires continuously, the min-entropy window collapses and
     both charts cross (failing).  When the aggressor is removed the
     raw stream is clean again and the fail-safe streaks walk the
     verdict back: failing -> degraded (CUSUM forgiven) -> ok. *)
  entry
    ~expected:
      "hard failure during the burst; staged de-escalation failing -> \
       degraded -> ok afterwards"
    (Scenario.make ~name:"lock-burst"
       ~description:
         "transient 95% inter-ring coupling freezing the output for four \
          windows"
       ~faults:
         [
           Scenario.Coupling
             { onset = fault_onset; duration = fault_duration; strength = 0.95 };
         ]
       ())

let injection_lock () =
  (* Strong inter-ring coupling pulls both rings onto a common
     frequency and correlates their jitter: the relative jitter and
     the beat both collapse, the output freezes, and the bit-level
     tests plus the entropy floor fail hard. *)
  entry ~expected:"locking collapses relative jitter; failing, no recovery"
    (Scenario.make ~name:"injection-lock"
       ~description:"persistent 95% inter-ring coupling (injection locking)"
       ~faults:
         [
           Scenario.Coupling
             { onset = fault_onset; duration = Scenario.forever; strength = 0.95 };
         ]
       ())

let brownout_step () =
  (* A permanent operating-point step: the rail settles 7% low and
     the thermal noise drops to 8% of calibration (a cold, starved
     die).  k falls to ~320, r_32 to ~0.91 — detected by the
     independence ratio and never recovering, because the step never
     reverts. *)
  entry
    ~expected:"permanent step; independence detects and the verdict stays \
               degraded"
    (Scenario.make ~name:"brownout-step"
       ~description:
         "permanent 7% frequency and 92% thermal-noise step at the onset"
       ~f0:(Scenario.Step { at = fault_onset; before = 1.0; after = 0.93 })
       ~b_th:(Scenario.Step { at = fault_onset; before = 1.0; after = 0.08 })
       ())

let all () =
  [
    calm ();
    temp_cycle ();
    supply_droop ();
    thermal_quench ();
    thermal_aging ();
    flicker_surge ();
    tone_burst ();
    tone_lock ();
    lock_burst ();
    injection_lock ();
    brownout_step ();
  ]

let names () = List.map (fun e -> Scenario.name e.scenario) (all ())

let find name =
  List.find_opt (fun e -> Scenario.name e.scenario = name) (all ())
