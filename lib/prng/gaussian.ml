type method_ = Ziggurat | Box_muller | Polar

type t = {
  method_ : method_;
  rng : Rng.t;
  mutable spare : float;
  mutable has_spare : bool;
}

let pdf x = exp (-0.5 *. x *. x) /. sqrt (2.0 *. Float.pi)

(* Ziggurat tables (Marsaglia & Tsang 2000, 128 layers).

   f(x) = exp(-x^2/2) with abscissas x.(0) > x.(1) = r > ... > x.(128) = 0
   and heights y.(i) = f(x.(i)).  Layer i is the horizontal band between
   y.(i) and y.(i+1); every layer has area v; layer 0 is the base strip
   plus the tail beyond r.  The recurrence closes for the magic pair
   (r, v) below: it ends with y.(128) ~ 1 and x.(128) ~ 0. *)
let zig_r = 3.442619855899
let zig_v = 9.91256303526217e-3

let zig_x, zig_y =
  let n = 128 in
  let x = Array.make (n + 1) 0.0 and y = Array.make (n + 1) 0.0 in
  let f v = exp (-0.5 *. v *. v) in
  x.(1) <- zig_r;
  y.(1) <- f zig_r;
  x.(0) <- zig_v /. y.(1);
  y.(0) <- 0.0;
  for i = 1 to n - 1 do
    y.(i + 1) <- y.(i) +. (zig_v /. x.(i));
    x.(i + 1) <- (if y.(i + 1) >= 1.0 then 0.0 else sqrt (-2.0 *. log y.(i + 1)))
  done;
  (x, y)

(* No default on [?method_]: a defaulted optional splits the currying
   chain and allocates the inner closure per call (R7). *)
let create ?method_ rng =
  let method_ = match method_ with None -> Ziggurat | Some m -> m in
  { method_; rng; spare = 0.0; has_spare = false }

let draw_tail rng =
  (* Marsaglia's exponential-rejection sampler for the normal tail x > r. *)
  let rec loop () =
    let x = -.log (Rng.float_pos rng) /. zig_r in
    let y = -.log (Rng.float_pos rng) in
    if y +. y >= x *. x then zig_r +. x else loop ()
  in
  loop ()

let rec draw_ziggurat rng =
  let i = Int64.to_int (Int64.logand (Rng.bits64 rng) 127L) in
  let u = (2.0 *. Rng.float rng) -. 1.0 in
  let z = u *. zig_x.(i) in
  let az = Float.abs z in
  if az < zig_x.(i + 1) then z
  else if i = 0 then
    let tail = draw_tail rng in
    if u < 0.0 then -.tail else tail
  else
    let y = zig_y.(i) +. (Rng.float rng *. (zig_y.(i + 1) -. zig_y.(i))) in
    if y < exp (-0.5 *. z *. z) then z else draw_ziggurat rng

let draw t =
  match t.method_ with
  | Ziggurat -> draw_ziggurat t.rng
  | Box_muller ->
    if t.has_spare then begin
      t.has_spare <- false;
      t.spare
    end
    else begin
      let u1 = Rng.float_pos t.rng and u2 = Rng.float t.rng in
      let radius = sqrt (-2.0 *. log u1) and angle = 2.0 *. Float.pi *. u2 in
      t.spare <- radius *. sin angle;
      t.has_spare <- true;
      radius *. cos angle
    end
  | Polar ->
    if t.has_spare then begin
      t.has_spare <- false;
      t.spare
    end
    else begin
      let rec loop () =
        let v1 = (2.0 *. Rng.float t.rng) -. 1.0
        and v2 = (2.0 *. Rng.float t.rng) -. 1.0 in
        let s = (v1 *. v1) +. (v2 *. v2) in
        if s >= 1.0 || s = 0.0 then loop ()
        else begin
          let scale = sqrt (-2.0 *. log s /. s) in
          t.spare <- v2 *. scale;
          t.has_spare <- true;
          v1 *. scale
        end
      in
      loop ()
    end

let draw_scaled t ~mu ~sigma = mu +. (sigma *. draw t)

let fill t a =
  for i = 0 to Array.length a - 1 do
    a.(i) <- draw t
  done

(* ------------------------------------------------------------------ *)
(* Bulk zero-allocation fill                                           *)
(* ------------------------------------------------------------------ *)

module FA = Float.Array

(* Small enough for the inliner, so the recurrence below runs on
   unboxed int64 locals. *)
let[@inline] rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* The ziggurat of [draw], draw-for-draw: every [xo_next] below is one
   Xoshiro256.next, consumed in the exact order of [draw_ziggurat]
   (index bits, then the uniform for u, then — on the slow branches —
   the tail / wedge uniforms), so a [fill_fa] stream is bit-identical
   to a [draw] loop on the same generator.  Keeping the whole sampler
   in one function body is what makes it allocation-free: the classic
   (non-flambda) compiler unboxes int64/float locals within a function
   but boxes every value that crosses a call boundary, which is ~800
   bytes per boxed-path draw once the Rng and Gaussian frames stack up. *)
let fill_fa_xoshiro xs ~sigma dst ~pos ~len =
  let st = Xoshiro256.state xs in
  let s0 = ref st.(0) and s1 = ref st.(1) and s2 = ref st.(2) in
  let s3 = ref st.(3) in
  for i = pos to pos + len - 1 do
    let z = ref 0.0 and accepted = ref false in
    while not !accepted do
      (* xo_next -> index bits *)
      let b_idx = Int64.add (rotl (Int64.add !s0 !s3) 23) !s0 in
      let tmp = Int64.shift_left !s1 17 in
      s2 := Int64.logxor !s2 !s0;
      s3 := Int64.logxor !s3 !s1;
      s1 := Int64.logxor !s1 !s2;
      s0 := Int64.logxor !s0 !s3;
      s2 := Int64.logxor !s2 tmp;
      s3 := rotl !s3 45;
      (* xo_next -> uniform for u *)
      let b_u = Int64.add (rotl (Int64.add !s0 !s3) 23) !s0 in
      let tmp = Int64.shift_left !s1 17 in
      s2 := Int64.logxor !s2 !s0;
      s3 := Int64.logxor !s3 !s1;
      s1 := Int64.logxor !s1 !s2;
      s0 := Int64.logxor !s0 !s3;
      s2 := Int64.logxor !s2 tmp;
      s3 := rotl !s3 45;
      let idx = Int64.to_int (Int64.logand b_idx 127L) in
      let u =
        (2.0 *. (Int64.to_float (Int64.shift_right_logical b_u 11) *. 0x1.0p-53))
        -. 1.0
      in
      let zz = u *. Array.unsafe_get zig_x idx in
      if Float.abs zz < Array.unsafe_get zig_x (idx + 1) then begin
        z := zz;
        accepted := true
      end
      else if idx = 0 then begin
        (* The tail sampler: float_pos, float_pos per attempt. *)
        let x = ref 0.0 and tail_done = ref false in
        while not !tail_done do
          let b1 = Int64.add (rotl (Int64.add !s0 !s3) 23) !s0 in
          let tmp = Int64.shift_left !s1 17 in
          s2 := Int64.logxor !s2 !s0;
          s3 := Int64.logxor !s3 !s1;
          s1 := Int64.logxor !s1 !s2;
          s0 := Int64.logxor !s0 !s3;
          s2 := Int64.logxor !s2 tmp;
          s3 := rotl !s3 45;
          let b2 = Int64.add (rotl (Int64.add !s0 !s3) 23) !s0 in
          let tmp = Int64.shift_left !s1 17 in
          s2 := Int64.logxor !s2 !s0;
          s3 := Int64.logxor !s3 !s1;
          s1 := Int64.logxor !s1 !s2;
          s0 := Int64.logxor !s0 !s3;
          s2 := Int64.logxor !s2 tmp;
          s3 := rotl !s3 45;
          let u1 =
            1.0
            -. (Int64.to_float (Int64.shift_right_logical b1 11) *. 0x1.0p-53)
          in
          let u2 =
            1.0
            -. (Int64.to_float (Int64.shift_right_logical b2 11) *. 0x1.0p-53)
          in
          let xx = -.log u1 /. zig_r in
          let y = -.log u2 in
          if y +. y >= xx *. xx then begin
            x := xx;
            tail_done := true
          end
        done;
        z := (if u < 0.0 then -.(zig_r +. !x) else zig_r +. !x);
        accepted := true
      end
      else begin
        (* Wedge test: one more uniform; on rejection fall through to a
           fresh ziggurat attempt, like the recursive [draw_ziggurat]. *)
        let b3 = Int64.add (rotl (Int64.add !s0 !s3) 23) !s0 in
        let tmp = Int64.shift_left !s1 17 in
        s2 := Int64.logxor !s2 !s0;
        s3 := Int64.logxor !s3 !s1;
        s1 := Int64.logxor !s1 !s2;
        s0 := Int64.logxor !s0 !s3;
        s2 := Int64.logxor !s2 tmp;
        s3 := rotl !s3 45;
        let y =
          Array.unsafe_get zig_y idx
          +. ((Int64.to_float (Int64.shift_right_logical b3 11) *. 0x1.0p-53)
             *. (Array.unsafe_get zig_y (idx + 1) -. Array.unsafe_get zig_y idx)
             )
        in
        if y < exp (-0.5 *. zz *. zz) then begin
          z := zz;
          accepted := true
        end
      end
    done;
    FA.unsafe_set dst i (sigma *. !z)
  done;
  st.(0) <- !s0;
  st.(1) <- !s1;
  st.(2) <- !s2;
  st.(3) <- !s3;
  Xoshiro256.restore xs st

(* [sigma] is a required label: an optional argument would make every
   hot caller build a [Some] block, and a defaulted one would split
   the currying chain into per-call closures.  The match nests instead
   of pairing so no scrutinee tuple is allocated per call. *)
let fill_fa t ~sigma dst ~pos ~len =
  if len < 0 || pos < 0 || pos + len > FA.length dst then
    invalid_arg "Gaussian.fill_fa: bad range";
  match t.method_ with
  | Ziggurat -> (
    match Rng.xoshiro_state t.rng with
    | Some xs -> fill_fa_xoshiro xs ~sigma dst ~pos ~len
    | None ->
      for i = pos to pos + len - 1 do
        FA.unsafe_set dst i (sigma *. draw t)
      done)
  | Box_muller | Polar ->
    for i = pos to pos + len - 1 do
      FA.unsafe_set dst i (sigma *. draw t)
    done
