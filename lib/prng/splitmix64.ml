type t = { mutable state : int64 }

let create seed = { state = seed }

let golden_gamma = 0x9E3779B97F4A7C15L

(* [@inline] erases the boxed int64 return at hot call sites (the
   classic compiler unboxes int64 locals only within one body). *)
let[@inline] next t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_float t =
  (* Top 53 bits give a uniform dyadic rational in [0,1). *)
  let bits = Int64.shift_right_logical (next t) 11 in
  Int64.to_float bits *. 0x1.0p-53
