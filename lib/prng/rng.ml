type backend = Xoshiro | Pcg | Splitmix

type state =
  | S_xoshiro of Xoshiro256.t
  | S_pcg of Pcg32.t
  | S_splitmix of Splitmix64.t

type t = { state : state }

(* The option-free core; [create]'s [?backend] carries no default
   value, because a defaulted optional splits the currying chain and
   allocates the inner closure per call (R7). *)
let make backend seed =
  let state =
    match backend with
    | Xoshiro -> S_xoshiro (Xoshiro256.create ~seed)
    | Pcg -> S_pcg (Pcg32.create ~seed ())
    | Splitmix -> S_splitmix (Splitmix64.create seed)
  in
  { state }

let create ?backend ~seed () =
  make (match backend with None -> Xoshiro | Some b -> b) seed

let backend_name t =
  match t.state with
  | S_xoshiro _ -> "xoshiro256++"
  | S_pcg _ -> "pcg32"
  | S_splitmix _ -> "splitmix64"

let bits64 t =
  match t.state with
  | S_xoshiro s -> Xoshiro256.next s
  | S_pcg s -> Pcg32.next64 s
  | S_splitmix s -> Splitmix64.next s

let float t =
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let float_pos t =
  (* 1 - u maps [0,1) to (0,1]. *)
  1.0 -. float t

let float_range t ~lo ~hi =
  if lo >= hi then invalid_arg "Rng.float_range: lo >= hi";
  lo +. ((hi -. lo) *. float t)

let int_below t n =
  if n <= 0 then invalid_arg "Rng.int_below: n <= 0";
  (* Rejection sampling on the top bits to avoid modulo bias. *)
  let n64 = Int64.of_int n in
  let limit = Int64.sub (Int64.div Int64.max_int n64) 1L in
  let bound = Int64.mul limit n64 in
  let rec draw () =
    let v = Int64.shift_right_logical (bits64 t) 1 in
    if v >= bound then draw () else Int64.to_int (Int64.rem v n64)
  in
  draw ()

let bool t = Int64.logand (bits64 t) 1L = 1L

let backend t =
  match t.state with
  | S_xoshiro _ -> Xoshiro
  | S_pcg _ -> Pcg
  | S_splitmix _ -> Splitmix

let xoshiro_state t =
  match t.state with S_xoshiro s -> Some s | S_pcg _ | S_splitmix _ -> None

let split t = make (backend t) (bits64 t)

let[@inline] derive_seed root index =
  if index < 0 then invalid_arg "Rng.derive_seed: negative index";
  (* Two SplitMix64 outputs of a state perturbed by the stream index:
     a stateless, well-scrambled child seed, so chunk [index] of a
     parallel computation gets the same stream no matter which domain
     (or how many domains) runs it. *)
  let golden = 0x9E3779B97F4A7C15L in
  let s =
    Splitmix64.create
      (Int64.logxor root (Int64.mul golden (Int64.of_int (index + 1))))
  in
  let _ = Splitmix64.next s in
  Splitmix64.next s

let child ~backend ~root ~index () = make backend (derive_seed root index)

let fill_floats t a =
  for i = 0 to Array.length a - 1 do
    a.(i) <- float t
  done
