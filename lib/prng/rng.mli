(** Unified random-generator interface.

    All stochastic code in this repository draws randomness through this
    module, so any backend ({!Xoshiro256}, {!Pcg32}, {!Splitmix64}) can
    be swapped in, and every simulation is reproducible from a seed. *)

type t
(** A generator handle: a backend plus its mutable state. *)

type backend = Xoshiro | Pcg | Splitmix

val create : ?backend:backend -> seed:int64 -> unit -> t
(** [create ?backend ~seed ()] builds a seeded generator.
    Default backend is [Xoshiro]. *)

val backend_name : t -> string
(** Human-readable backend label ("xoshiro256++", ...). *)

val bits64 : t -> int64
(** 64 uniform pseudo-random bits. *)

val float : t -> float
(** Uniform float in [0, 1), 53-bit resolution. *)

val float_pos : t -> float
(** Uniform float in (0, 1] — never 0, safe as a [log] argument. *)

val float_range : t -> lo:float -> hi:float -> float
(** Uniform float in [lo, hi). @raise Invalid_argument if [lo >= hi]. *)

val int_below : t -> int -> int
(** [int_below t n] is uniform on [0, n-1] without modulo bias.
    @raise Invalid_argument if [n <= 0]. *)

val bool : t -> bool
(** A fair coin flip. *)

val backend : t -> backend
(** The backend [t] was created with. *)

val xoshiro_state : t -> Xoshiro256.t option
(** The underlying {!Xoshiro256} state when [t] was created with the
    [Xoshiro] backend, [None] otherwise.  This is the hook for bulk
    samplers ({!Gaussian.fill_fa}) that run the recurrence on unboxed
    locals instead of paying a boxed [int64] round trip per draw;
    mutating the returned state advances [t]'s stream, exactly as
    drawing from [t] would. *)

val split : t -> t
(** [split t] returns a generator seeded from [t]'s stream, for
    independent substreams (e.g. one per simulated oscillator). *)

val derive_seed : int64 -> int -> int64
(** [derive_seed root index] is a stateless, scrambled child seed for
    substream [index] of the root seed — the basis of deterministic
    parallel RNG streams: chunk [index] receives the same stream
    regardless of which domain (or how many domains) runs it.
    @raise Invalid_argument on negative [index]. *)

val child : backend:backend -> root:int64 -> index:int -> unit -> t
(** [child ~root ~index ()] is [create ~seed:(derive_seed root index)]:
    the generator for substream [index] of [root]. *)

val fill_floats : t -> float array -> unit
(** [fill_floats t a] overwrites [a] with uniform [0,1) samples. *)
