(** Standard-normal sampling.

    Three classic algorithms are provided; the ziggurat is the default
    used by the noise generators, with Box–Muller and the polar method
    kept as independently-testable references. *)

type method_ = Ziggurat | Box_muller | Polar

type t
(** A sampler: an algorithm plus its cached state (spare deviate,
    ziggurat tables are global and shared). *)

val create : ?method_:method_ -> Rng.t -> t
(** [create ?method_ rng] builds a sampler drawing uniforms from [rng].
    Default method is [Ziggurat]. *)

val draw : t -> float
(** One N(0,1) deviate. *)

val draw_scaled : t -> mu:float -> sigma:float -> float
(** [draw_scaled t ~mu ~sigma] is [mu + sigma * draw t]. *)

val fill : t -> float array -> unit
(** Overwrite an array with N(0,1) deviates. *)

val fill_fa : t -> sigma:float -> Float.Array.t -> pos:int -> len:int -> unit
(** [fill_fa t ~sigma dst ~pos ~len] overwrites [dst.(pos ..
    pos+len-1)] with [sigma *. draw t] samples ([sigma] is a required
    label so hot callers never build a [Some] block),
    draw-for-draw identical to calling {!draw} in a loop — same uniform
    consumption, same values, any partition of a stream into fills.
    For the default ziggurat-on-xoshiro sampler the whole loop runs on
    unboxed locals ({!Rng.xoshiro_state}), making it allocation-free;
    other methods and backends fall back to per-sample draws.  This is
    the generator behind the streaming noise hot path
    ({!Ptrng_noise.Source}).
    @raise Invalid_argument on a bad range. *)

val pdf : float -> float
(** Standard normal density. *)
