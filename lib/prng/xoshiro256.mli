(** Xoshiro256++ pseudo-random generator (Blackman, Vigna 2019).

    256-bit state, period 2^256 - 1, excellent statistical quality; the
    default generator of this library. *)

type t
(** Mutable generator state. *)

val create : seed:int64 -> t
(** [create ~seed] seeds the 256-bit state by running {!Splitmix64} on
    [seed], as recommended by the algorithm authors. *)

val of_state : int64 array -> t
(** [of_state s] uses the four words of [s] directly.
    @raise Invalid_argument if [Array.length s <> 4] or all words are 0. *)

val next : t -> int64
(** [next t] returns 64 fresh pseudo-random bits. *)

val state : t -> int64 array
(** [state t] is a copy of the four state words (position included):
    [of_state (state t)] replays [t]'s stream from here.  Together with
    {!restore} it lets bulk samplers run the recurrence on unboxed
    locals and write the advanced state back — the zero-allocation hot
    path of {!Gaussian.fill_fa}. *)

val restore : t -> int64 array -> unit
(** [restore t s] overwrites [t]'s state with the four words of [s]
    in place.
    @raise Invalid_argument if [Array.length s <> 4] or all words
    are 0 (the absorbing state). *)

val jump : t -> unit
(** [jump t] advances the state by 2^128 steps, used to split one stream
    into non-overlapping substreams for independent simulations. *)
