(** Digital filtering: direct and FFT FIR convolution, IIR recursion,
    biquad sections, and simple detrending. *)

val fir_direct : h:float array -> float array -> float array
(** Causal FIR filtering: [y.(n) = sum_k h.(k) * x.(n-k)], output the
    same length as the input (zero initial conditions). *)

val fir_fft : h:float array -> float array -> float array
(** Same result as {!fir_direct}, computed via FFT convolution;
    preferable when [|h|] is large. *)

val iir : b:float array -> a:float array -> float array -> float array
(** Direct-form IIR: [a.(0)*y.(n) = sum b.(k) x.(n-k) - sum_{k>=1} a.(k) y.(n-k)].
    @raise Invalid_argument if [a] is empty or [a.(0) = 0]. *)

type biquad = { b0 : float; b1 : float; b2 : float; a1 : float; a2 : float }
(** One second-order section (a0 normalised to 1). *)

val biquad_lowpass : fc:float -> fs:float -> q:float -> biquad
(** RBJ cookbook low-pass section. *)

val biquad_apply : biquad -> float array -> float array
(** Run the section over the signal (zero initial conditions). *)

val remove_mean : float array -> float array
(** Subtract the sample mean. *)

val detrend_linear : float array -> float array
(** Subtract the least-squares line through the samples. *)
