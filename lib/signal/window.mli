(** Tapering windows for spectral estimation.

    Each window comes with the two normalisation constants PSD code
    needs: the coherent gain (mean of the window) and the sum of squared
    coefficients (for density scaling). *)

type kind = Rectangular | Hann | Hamming | Blackman | Blackman_harris | Flattop

val name : kind -> string
(** Lower-case window name, e.g. ["blackman-harris"]. *)

val make : kind -> int -> float array
(** [make kind n] is the [n]-point window (periodic form, suited to
    Welch averaging). @raise Invalid_argument if [n <= 0]. *)

val coherent_gain : float array -> float
(** Mean of the window coefficients. *)

val sum_sq : float array -> float
(** Sum of squared coefficients (S2), the periodogram density scale. *)

val enbw_bins : float array -> float
(** Equivalent noise bandwidth in bins: [n * S2 / S1^2]. *)
