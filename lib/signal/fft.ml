module Tm = Ptrng_telemetry.Registry

let fft_total =
  Tm.Counter.v ~help:"Power-of-two FFT passes executed (forward or inverse)."
    "ptrng_signal_fft_total"

let bluestein_total =
  Tm.Counter.v ~help:"Bluestein chirp-z transforms of non-power-of-two length."
    "ptrng_signal_fft_bluestein_total"

let fft_size =
  Tm.Hist.v ~help:"Transform length in points." ~lo:1.0 ~hi:1e9
    ~buckets_per_decade:3 "ptrng_signal_fft_size"

let is_pow2 n = n > 0 && n land (n - 1) = 0

let next_pow2 n =
  let rec grow p = if p >= n then p else grow (p * 2) in
  grow 1

let check_pair re im =
  let n = Array.length re in
  if Array.length im <> n then invalid_arg "Fft: re/im length mismatch";
  n

let bit_reverse_permute re im =
  let n = Array.length re in
  let j = ref 0 in
  for i = 0 to n - 2 do
    if i < !j then begin
      let tr = re.(i) in
      re.(i) <- re.(!j);
      re.(!j) <- tr;
      let ti = im.(i) in
      im.(i) <- im.(!j);
      im.(!j) <- ti
    end;
    let bit = ref (n lsr 1) in
    while !j land !bit <> 0 do
      j := !j lxor !bit;
      bit := !bit lsr 1
    done;
    j := !j lor !bit
  done

(* One butterfly stage of span [len].  The twiddle factor walks the unit
   circle with a multiplicative recurrence, re-anchored every 64 steps by
   a direct cos/sin evaluation so rounding error cannot accumulate over
   multi-million-point transforms. *)
let stage re im n len sign =
  let half = len / 2 in
  let ang = sign *. 2.0 *. Float.pi /. float_of_int len in
  let step_r = cos ang and step_i = sin ang in
  let i = ref 0 in
  while !i < n do
    let wr = ref 1.0 and wi = ref 0.0 in
    for k = 0 to half - 1 do
      if k land 63 = 0 then begin
        let a = ang *. float_of_int k in
        wr := cos a;
        wi := sin a
      end;
      let p = !i + k in
      let q = p + half in
      let vr = (re.(q) *. !wr) -. (im.(q) *. !wi) in
      let vi = (re.(q) *. !wi) +. (im.(q) *. !wr) in
      re.(q) <- re.(p) -. vr;
      im.(q) <- im.(p) -. vi;
      re.(p) <- re.(p) +. vr;
      im.(p) <- im.(p) +. vi;
      let nwr = (!wr *. step_r) -. (!wi *. step_i) in
      wi := (!wr *. step_i) +. (!wi *. step_r);
      wr := nwr
    done;
    i := !i + len
  done

let transform_pow2 ~sign re im =
  let n = check_pair re im in
  if not (is_pow2 n) then invalid_arg "Fft: length not a power of two";
  if !Tm.on then begin
    Tm.Counter.incr fft_total;
    Tm.Hist.observe fft_size (float_of_int n)
  end;
  if n > 1 then begin
    bit_reverse_permute re im;
    let len = ref 2 in
    while !len <= n do
      stage re im n !len sign;
      len := !len * 2
    done
  end

let forward_pow2 ~re ~im = transform_pow2 ~sign:(-1.0) re im

let inverse_pow2 ~re ~im =
  transform_pow2 ~sign:1.0 re im;
  let n = Array.length re in
  let inv = 1.0 /. float_of_int n in
  for i = 0 to n - 1 do
    re.(i) <- re.(i) *. inv;
    im.(i) <- im.(i) *. inv
  done

(* Bluestein chirp-z: an n-point DFT as a cyclic convolution of length
   m = next_pow2 (2n-1).  Chirp phases use k^2 mod 2n in exact integer
   arithmetic to keep the angle accurate for large k. *)
let chirp_angle n k =
  let k2 = k * k mod (2 * n) in
  Float.pi *. float_of_int k2 /. float_of_int n

let bluestein ~sign re im =
  let n = check_pair re im in
  if !Tm.on then begin
    Tm.Counter.incr bluestein_total;
    Tm.Hist.observe fft_size (float_of_int n)
  end;
  let m = next_pow2 ((2 * n) - 1) in
  let ar = Array.make m 0.0 and ai = Array.make m 0.0 in
  let br = Array.make m 0.0 and bi = Array.make m 0.0 in
  for k = 0 to n - 1 do
    let ang = sign *. chirp_angle n k in
    let c = cos ang and s = sin ang in
    ar.(k) <- (re.(k) *. c) -. (im.(k) *. s);
    ai.(k) <- (re.(k) *. s) +. (im.(k) *. c);
    br.(k) <- c;
    bi.(k) <- -.s;
    if k > 0 then begin
      br.(m - k) <- c;
      bi.(m - k) <- -.s
    end
  done;
  forward_pow2 ~re:ar ~im:ai;
  forward_pow2 ~re:br ~im:bi;
  for k = 0 to m - 1 do
    let pr = (ar.(k) *. br.(k)) -. (ai.(k) *. bi.(k)) in
    let pi = (ar.(k) *. bi.(k)) +. (ai.(k) *. br.(k)) in
    ar.(k) <- pr;
    ai.(k) <- pi
  done;
  inverse_pow2 ~re:ar ~im:ai;
  let outr = Array.make n 0.0 and outi = Array.make n 0.0 in
  for k = 0 to n - 1 do
    let ang = sign *. chirp_angle n k in
    let c = cos ang and s = sin ang in
    outr.(k) <- (ar.(k) *. c) -. (ai.(k) *. s);
    outi.(k) <- (ar.(k) *. s) +. (ai.(k) *. c)
  done;
  (outr, outi)

let dft ~re ~im =
  let n = check_pair re im in
  if is_pow2 n then begin
    let cr = Array.copy re and ci = Array.copy im in
    forward_pow2 ~re:cr ~im:ci;
    (cr, ci)
  end
  else bluestein ~sign:(-1.0) re im

let idft ~re ~im =
  let n = check_pair re im in
  if is_pow2 n then begin
    let cr = Array.copy re and ci = Array.copy im in
    inverse_pow2 ~re:cr ~im:ci;
    (cr, ci)
  end
  else begin
    let outr, outi = bluestein ~sign:1.0 re im in
    let inv = 1.0 /. float_of_int n in
    for k = 0 to n - 1 do
      outr.(k) <- outr.(k) *. inv;
      outi.(k) <- outi.(k) *. inv
    done;
    (outr, outi)
  end

let rfft x =
  let n = Array.length x in
  dft ~re:(Array.copy x) ~im:(Array.make n 0.0)

let convolve_real a b =
  let na = Array.length a and nb = Array.length b in
  if na = 0 || nb = 0 then [||]
  else begin
    let n = na + nb - 1 in
    let m = next_pow2 n in
    let ar = Array.make m 0.0 and ai = Array.make m 0.0 in
    let br = Array.make m 0.0 and bi = Array.make m 0.0 in
    Array.blit a 0 ar 0 na;
    Array.blit b 0 br 0 nb;
    forward_pow2 ~re:ar ~im:ai;
    forward_pow2 ~re:br ~im:bi;
    for k = 0 to m - 1 do
      let pr = (ar.(k) *. br.(k)) -. (ai.(k) *. bi.(k)) in
      let pi = (ar.(k) *. bi.(k)) +. (ai.(k) *. br.(k)) in
      ar.(k) <- pr;
      ai.(k) <- pi
    done;
    inverse_pow2 ~re:ar ~im:ai;
    Array.sub ar 0 n
  end
