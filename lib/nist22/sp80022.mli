(** A core subset of the NIST SP 800-22 statistical test suite.

    AIS31's procedure A (in [Ptrng_ais31]) gives pass/fail bounds; the
    800-22 tests return p-values, which makes them better instruments
    for *characterising* the residual structure flicker noise leaves in
    eRO-TRNG output.  All tests use significance level 0.01 as in the
    standard.

    Eight tests: frequency, block frequency, runs, longest run of ones,
    cumulative sums, spectral (DFT), serial, and approximate entropy. *)

type result = {
  name : string;
  statistic : float;
  p_value : float;
  pass : bool;  (** [p_value >= 0.01]. *)
}

val frequency : bool array -> result
(** Monobit test. @raise Invalid_argument on fewer than 100 bits. *)

val block_frequency : ?m:int -> bool array -> result
(** Frequency within m-bit blocks (default m = 128). *)

val runs : bool array -> result
(** Total number of runs vs the expectation for the observed bias. *)

val longest_run : bool array -> result
(** Longest run of ones in fixed blocks (M = 8 for short inputs,
    M = 128 for n >= 6272), chi-squared against the reference
    distribution. @raise Invalid_argument on fewer than 128 bits. *)

val cumulative_sums : ?forward:bool -> bool array -> result
(** Maximal excursion of the +-1 random walk. *)

val spectral : bool array -> result
(** DFT test: fraction of low-magnitude spectral lines vs the 95%
    threshold.  @raise Invalid_argument on fewer than 1000 bits. *)

val serial : ?m:int -> bool array -> result
(** Overlapping m-bit pattern test (default m = 3); returns the first
    p-value (nabla psi^2). *)

val approximate_entropy : ?m:int -> bool array -> result
(** ApEn(m) - ApEn(m+1) compared with ln 2 (default m = 3). *)

(** {1 Heavyweight tests}

    The remaining major tests of the standard.  They need long inputs
    (hundreds of kilobits to a megabit); {!run_all} includes them
    automatically when the data suffices. *)

val binary_matrix_rank : bool array -> result
(** Ranks of disjoint 32x32 GF(2) matrices against the asymptotic rank
    distribution. @raise Invalid_argument with fewer than 38 matrices
    (38912 bits). *)

val maurer_universal : bool array -> result
(** Maurer's universal statistical test (L = 6, Q = 640): mean log
    distance between block recurrences vs the reference expectation.
    @raise Invalid_argument with fewer than (640 + 1000) 6-bit blocks. *)

val linear_complexity : ?block:int -> bool array -> result
(** Berlekamp–Massey linear complexity of [block]-bit chunks (default
    500), classified around the theoretical mean.
    @raise Invalid_argument with fewer than 100 blocks. *)

val non_overlapping_template : ?template:bool array -> bool array -> result
(** Non-overlapping matches of a template (default 000000001) in 8
    blocks. @raise Invalid_argument below 8 x 1000 bits. *)

val overlapping_template : bool array -> result
(** Overlapping matches of the 9-ones template in 1032-bit blocks
    against the reference Polya distribution.
    @raise Invalid_argument with fewer than 50 blocks. *)

val random_excursions : bool array -> result list
(** Chi-squared visit-count tests for the eight states -4..4 of the
    cumulative-sum random walk; returns one result per state, or an
    empty list when the walk has fewer than 100 zero-crossing cycles
    (the standard demands 500; we scale the requirement down and note
    it in the result detail). *)

val random_excursions_variant : bool array -> result list
(** Total-visit variant for the 18 states -9..9 (same cycle-count
    gating as {!random_excursions}). *)

val run_all : ?domains:int -> bool array -> result list
(** Every test that has enough data, basic battery first, then the
    heavyweight tests (excursions contribute their worst state).
    Tests run as independent tasks on a {!Ptrng_exec.Pool} (the input
    is read-only shared data); the result list is identical for every
    [?domains] value. *)

val pp_results : Format.formatter -> result list -> unit
(** One table row per test: name, p-value, pass/fail. *)
