type result = {
  name : string;
  statistic : float;
  p_value : float;
  pass : bool;
}

let alpha = 0.01

let finish ~name ~statistic p_value =
  let p_value = Float.max 0.0 (Float.min 1.0 p_value) in
  { name; statistic; p_value; pass = p_value >= alpha }

let require name minimum bits =
  if Array.length bits < minimum then
    invalid_arg (Printf.sprintf "Sp80022.%s: need >= %d bits" name minimum)

let erfc = Ptrng_stats.Special.erfc
let gamma_q = fun a x -> Ptrng_stats.Special.gamma_q ~a ~x
let sqrt2 = sqrt 2.0

let frequency bits =
  require "frequency" 100 bits;
  let n = Array.length bits in
  let s = Array.fold_left (fun acc b -> acc + (if b then 1 else -1)) 0 bits in
  let s_obs = Float.abs (float_of_int s) /. sqrt (float_of_int n) in
  finish ~name:"frequency" ~statistic:s_obs (erfc (s_obs /. sqrt2))

let block_frequency ?(m = 128) bits =
  require "block_frequency" (2 * m) bits;
  if m < 8 then invalid_arg "Sp80022.block_frequency: m < 8";
  let n = Array.length bits in
  let blocks = n / m in
  let chi2 = ref 0.0 in
  for b = 0 to blocks - 1 do
    let ones = ref 0 in
    for j = 0 to m - 1 do
      if bits.((b * m) + j) then incr ones
    done;
    let pi = float_of_int !ones /. float_of_int m in
    chi2 := !chi2 +. ((pi -. 0.5) ** 2.0)
  done;
  let chi2 = 4.0 *. float_of_int m *. !chi2 in
  finish ~name:"block-frequency" ~statistic:chi2
    (gamma_q (float_of_int blocks /. 2.0) (chi2 /. 2.0))

let runs bits =
  require "runs" 100 bits;
  let n = Array.length bits in
  let fn = float_of_int n in
  let ones = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 bits in
  let pi = float_of_int ones /. fn in
  if Float.abs (pi -. 0.5) >= 2.0 /. sqrt fn then
    (* Pre-test of the standard: dominated by bias, report p = 0. *)
    finish ~name:"runs" ~statistic:0.0 0.0
  else begin
    let v = ref 1 in
    for i = 1 to n - 1 do
      if bits.(i) <> bits.(i - 1) then incr v
    done;
    let v = float_of_int !v in
    let num = Float.abs (v -. (2.0 *. fn *. pi *. (1.0 -. pi))) in
    let den = 2.0 *. sqrt (2.0 *. fn) *. pi *. (1.0 -. pi) in
    finish ~name:"runs" ~statistic:v (erfc (num /. den))
  end

(* Reference distributions from SP 800-22 section 2.4. *)
let longest_run_params n =
  if n >= 6272 then (128, 49, [| 4; 5; 6; 7; 8; 9 |],
                     [| 0.1174; 0.2430; 0.2493; 0.1752; 0.1027; 0.1124 |])
  else (8, 16, [| 1; 2; 3; 4 |], [| 0.2148; 0.3672; 0.2305; 0.1875 |])

let longest_run bits =
  require "longest_run" 128 bits;
  let n = Array.length bits in
  let m, blocks_needed, cats, pis = longest_run_params n in
  let blocks = min (n / m) blocks_needed in
  let k = Array.length cats in
  let counts = Array.make k 0 in
  for b = 0 to blocks - 1 do
    let longest = ref 0 and current = ref 0 in
    for j = 0 to m - 1 do
      if bits.((b * m) + j) then begin
        incr current;
        if !current > !longest then longest := !current
      end
      else current := 0
    done;
    (* Map the longest run onto the category index. *)
    let cat =
      if !longest <= cats.(0) then 0
      else if !longest >= cats.(k - 1) then k - 1
      else begin
        let idx = ref 0 in
        Array.iteri (fun i c -> if !longest = c then idx := i) cats;
        !idx
      end
    in
    counts.(cat) <- counts.(cat) + 1
  done;
  let fb = float_of_int blocks in
  let chi2 = ref 0.0 in
  for i = 0 to k - 1 do
    let expected = fb *. pis.(i) in
    let d = float_of_int counts.(i) -. expected in
    chi2 := !chi2 +. (d *. d /. expected)
  done;
  finish ~name:"longest-run" ~statistic:!chi2
    (gamma_q (float_of_int (k - 1) /. 2.0) (!chi2 /. 2.0))

let cumulative_sums ?(forward = true) bits =
  require "cumulative_sums" 100 bits;
  let n = Array.length bits in
  let fn = float_of_int n in
  let z = ref 0 and s = ref 0 in
  let step i =
    s := !s + (if bits.(i) then 1 else -1);
    if abs !s > !z then z := abs !s
  in
  if forward then
    for i = 0 to n - 1 do
      step i
    done
  else
    for i = n - 1 downto 0 do
      step i
    done;
  let z = float_of_int !z in
  if z = 0.0 then finish ~name:"cumulative-sums" ~statistic:0.0 0.0
  else begin
    let phi = Ptrng_stats.Special.normal_cdf in
    let sum1 = ref 0.0 in
    let k_lo = int_of_float (Float.floor ((-.fn /. z) +. 1.0) /. 4.0) in
    let k_hi = int_of_float (Float.floor ((fn /. z) -. 1.0) /. 4.0) in
    for k = k_lo to k_hi do
      let fk = float_of_int k in
      sum1 := !sum1
        +. phi ((((4.0 *. fk) +. 1.0) *. z) /. sqrt fn)
        -. phi ((((4.0 *. fk) -. 1.0) *. z) /. sqrt fn)
    done;
    let sum2 = ref 0.0 in
    let k_lo = int_of_float (Float.floor ((-.fn /. z) -. 3.0) /. 4.0) in
    for k = k_lo to k_hi do
      let fk = float_of_int k in
      sum2 := !sum2
        +. phi ((((4.0 *. fk) +. 3.0) *. z) /. sqrt fn)
        -. phi ((((4.0 *. fk) +. 1.0) *. z) /. sqrt fn)
    done;
    finish ~name:"cumulative-sums" ~statistic:z (1.0 -. !sum1 +. !sum2)
  end

let spectral bits =
  require "spectral" 1000 bits;
  let n = Array.length bits in
  let x = Array.map (fun b -> if b then 1.0 else -1.0) bits in
  let re, im = Ptrng_signal.Fft.rfft x in
  let half = n / 2 in
  let threshold = sqrt (log (1.0 /. 0.05) *. float_of_int n) in
  let below = ref 0 in
  for k = 0 to half - 1 do
    let modulus = sqrt ((re.(k) *. re.(k)) +. (im.(k) *. im.(k))) in
    if modulus < threshold then incr below
  done;
  let n0 = 0.95 *. float_of_int half in
  let n1 = float_of_int !below in
  let d = (n1 -. n0) /. sqrt (float_of_int n *. 0.95 *. 0.05 /. 4.0) in
  finish ~name:"spectral" ~statistic:d (erfc (Float.abs d /. sqrt2))

(* psi^2 statistic over overlapping (cyclic) m-bit patterns. *)
let psi2 bits m =
  if m <= 0 then 0.0
  else begin
    let n = Array.length bits in
    let cells = 1 lsl m in
    let counts = Array.make cells 0 in
    let key = ref 0 in
    for j = 0 to m - 1 do
      key := (!key lsl 1) lor (if bits.(j mod n) then 1 else 0)
    done;
    let mask = cells - 1 in
    counts.(!key) <- 1;
    for i = 1 to n - 1 do
      key := ((!key lsl 1) lor (if bits.((i + m - 1) mod n) then 1 else 0)) land mask;
      counts.(!key) <- counts.(!key) + 1
    done;
    let fn = float_of_int n in
    let sum =
      Array.fold_left (fun acc c -> acc +. (float_of_int c *. float_of_int c)) 0.0 counts
    in
    (float_of_int cells *. sum /. fn) -. fn
  end

let serial ?(m = 3) bits =
  require "serial" (1 lsl (m + 3)) bits;
  if m < 2 then invalid_arg "Sp80022.serial: m < 2";
  let d1 = psi2 bits m -. psi2 bits (m - 1) in
  let p = gamma_q (2.0 ** float_of_int (m - 2)) (d1 /. 2.0) in
  finish ~name:"serial" ~statistic:d1 p

let approximate_entropy ?(m = 3) bits =
  require "approximate_entropy" (1 lsl (m + 3)) bits;
  let n = Array.length bits in
  let fn = float_of_int n in
  let phi mm =
    if mm = 0 then 0.0
    else begin
      let cells = 1 lsl mm in
      let counts = Array.make cells 0 in
      let key = ref 0 in
      for j = 0 to mm - 1 do
        key := (!key lsl 1) lor (if bits.(j mod n) then 1 else 0)
      done;
      let mask = cells - 1 in
      counts.(!key) <- 1;
      for i = 1 to n - 1 do
        key := ((!key lsl 1) lor (if bits.((i + mm - 1) mod n) then 1 else 0)) land mask;
        counts.(!key) <- counts.(!key) + 1
      done;
      Array.fold_left
        (fun acc c ->
          if c = 0 then acc
          else begin
            let p = float_of_int c /. fn in
            acc +. (p *. log p)
          end)
        0.0 counts
    end
  in
  let apen = phi m -. phi (m + 1) in
  let chi2 = 2.0 *. fn *. (log 2.0 -. apen) in
  finish ~name:"approximate-entropy" ~statistic:apen
    (gamma_q (2.0 ** float_of_int (m - 1)) (chi2 /. 2.0))

(* ------------------------------------------------------------------ *)
(* Heavyweight tests                                                   *)
(* ------------------------------------------------------------------ *)

(* Rank of a square GF(2) matrix given as row bitmasks (int). *)
let gf2_rank rows size =
  let rows = Array.copy rows in
  let rank = ref 0 in
  let row = ref 0 in
  for col = size - 1 downto 0 do
    let bit = 1 lsl col in
    (* Find a pivot row at or below !row with this column set. *)
    let pivot = ref (-1) in
    (try
       for r = !row to size - 1 do
         if rows.(r) land bit <> 0 then begin
           pivot := r;
           raise Exit
         end
       done
     with Exit -> ());
    if !pivot >= 0 then begin
      let tmp = rows.(!row) in
      rows.(!row) <- rows.(!pivot);
      rows.(!pivot) <- tmp;
      for r = 0 to size - 1 do
        if r <> !row && rows.(r) land bit <> 0 then rows.(r) <- rows.(r) lxor rows.(!row)
      done;
      incr rank;
      incr row
    end
  done;
  !rank

let binary_matrix_rank bits =
  let size = 32 in
  let per_matrix = size * size in
  let n = Array.length bits in
  let matrices = n / per_matrix in
  if matrices < 38 then invalid_arg "Sp80022.binary_matrix_rank: need >= 38 matrices";
  (* Asymptotic probabilities of rank 32, 31 and <= 30 for random
     32x32 GF(2) matrices. *)
  let p_full = 0.2888 and p_minus1 = 0.5776 in
  let p_rest = 1.0 -. p_full -. p_minus1 in
  let full = ref 0 and minus1 = ref 0 in
  for m = 0 to matrices - 1 do
    let rows =
      Array.init size (fun r ->
          let acc = ref 0 in
          for c = 0 to size - 1 do
            acc := (!acc lsl 1) lor (if bits.((m * per_matrix) + (r * size) + c) then 1 else 0)
          done;
          !acc)
    in
    match gf2_rank rows size with
    | r when r = size -> incr full
    | r when r = size - 1 -> incr minus1
    | _ -> ()
  done;
  let rest = matrices - !full - !minus1 in
  let fm = float_of_int matrices in
  let term observed p =
    let e = fm *. p in
    let d = float_of_int observed -. e in
    d *. d /. e
  in
  let chi2 = term !full p_full +. term !minus1 p_minus1 +. term rest p_rest in
  finish ~name:"matrix-rank" ~statistic:chi2 (exp (-.chi2 /. 2.0))

let maurer_universal bits =
  let l = 6 in
  let q = 640 in
  let blocks = Array.length bits / l in
  let k = blocks - q in
  if k < 1000 then invalid_arg "Sp80022.maurer_universal: need >= 1640 6-bit blocks";
  let value i =
    let acc = ref 0 in
    for j = 0 to l - 1 do
      acc := (!acc lsl 1) lor (if bits.((i * l) + j) then 1 else 0)
    done;
    !acc
  in
  let last = Array.make (1 lsl l) 0 in
  for i = 0 to q - 1 do
    last.(value i) <- i + 1
  done;
  let sum = ref 0.0 in
  for i = q to blocks - 1 do
    let v = value i in
    let dist = (i + 1) - last.(v) in
    (* Blocks unseen during init count their distance from the start. *)
    sum := !sum +. (log (float_of_int (if last.(v) = 0 then i + 1 else dist)) /. log 2.0);
    last.(v) <- i + 1
  done;
  let fn = !sum /. float_of_int k in
  (* Reference mean and variance for L = 6 (SP 800-22 table 2-12). *)
  let expected = 5.2177052 and variance = 2.954 in
  let c =
    0.7 -. (0.8 /. float_of_int l)
    +. ((4.0 +. (32.0 /. float_of_int l))
       *. (float_of_int k ** (-3.0 /. float_of_int l))
       /. 15.0)
  in
  let sigma = c *. sqrt (variance /. float_of_int k) in
  finish ~name:"maurer-universal" ~statistic:fn
    (erfc (Float.abs (fn -. expected) /. (sqrt2 *. sigma)))

(* Berlekamp-Massey over GF(2): length of the shortest LFSR generating
   the sequence. *)
let berlekamp_massey s =
  let n = Array.length s in
  let b = Array.make n 0 and c = Array.make n 0 in
  b.(0) <- 1;
  c.(0) <- 1;
  let l = ref 0 and m = ref (-1) in
  for i = 0 to n - 1 do
    let d = ref s.(i) in
    for j = 1 to !l do
      d := !d lxor (c.(j) land s.(i - j))
    done;
    if !d = 1 then begin
      let t = Array.copy c in
      let shift = i - !m in
      for j = 0 to n - 1 - shift do
        c.(j + shift) <- c.(j + shift) lxor b.(j)
      done;
      if 2 * !l <= i then begin
        l := i + 1 - !l;
        m := i;
        Array.blit t 0 b 0 n
      end
    end
  done;
  !l

let linear_complexity ?(block = 500) bits =
  if block < 100 then invalid_arg "Sp80022.linear_complexity: block < 100";
  let n = Array.length bits in
  let blocks = n / block in
  if blocks < 100 then invalid_arg "Sp80022.linear_complexity: need >= 100 blocks";
  let fm = float_of_int block in
  let sign = if block land 1 = 0 then 1.0 else -1.0 in
  let mu =
    (fm /. 2.0)
    +. ((9.0 +. sign) /. 36.0)
    -. (((fm /. 3.0) +. (2.0 /. 9.0)) /. (2.0 ** fm))
  in
  let pis = [| 0.010417; 0.03125; 0.125; 0.5; 0.25; 0.0625; 0.020833 |] in
  let counts = Array.make 7 0 in
  for b = 0 to blocks - 1 do
    let chunk =
      Array.init block (fun j -> if bits.((b * block) + j) then 1 else 0)
    in
    let lc = berlekamp_massey chunk in
    let t = (sign *. (float_of_int lc -. mu)) +. (2.0 /. 9.0) in
    let bin =
      if t <= -2.5 then 0
      else if t <= -1.5 then 1
      else if t <= -0.5 then 2
      else if t <= 0.5 then 3
      else if t <= 1.5 then 4
      else if t <= 2.5 then 5
      else 6
    in
    counts.(bin) <- counts.(bin) + 1
  done;
  let fb = float_of_int blocks in
  let chi2 = ref 0.0 in
  Array.iteri
    (fun i c ->
      let e = fb *. pis.(i) in
      let d = float_of_int c -. e in
      chi2 := !chi2 +. (d *. d /. e))
    counts;
  finish ~name:"linear-complexity" ~statistic:!chi2 (gamma_q 3.0 (!chi2 /. 2.0))

let default_template = [| false; false; false; false; false; false; false; false; true |]

let non_overlapping_template ?(template = default_template) bits =
  let m = Array.length template in
  if m < 2 || m > 16 then
    invalid_arg "Sp80022.non_overlapping_template: template length outside [2,16]";
  let n = Array.length bits in
  let blocks = 8 in
  let block_len = n / blocks in
  if block_len < 1000 then
    invalid_arg "Sp80022.non_overlapping_template: need >= 8000 bits";
  let fm_len = float_of_int block_len in
  let mu = (fm_len -. float_of_int m +. 1.0) /. (2.0 ** float_of_int m) in
  let sigma2 =
    fm_len
    *. ((1.0 /. (2.0 ** float_of_int m))
       -. ((2.0 *. float_of_int m -. 1.0) /. (2.0 ** float_of_int (2 * m))))
  in
  let chi2 = ref 0.0 in
  for b = 0 to blocks - 1 do
    let count = ref 0 in
    let i = ref 0 in
    while !i <= block_len - m do
      let matches = ref true in
      for j = 0 to m - 1 do
        if bits.((b * block_len) + !i + j) <> template.(j) then matches := false
      done;
      if !matches then begin
        incr count;
        i := !i + m
      end
      else incr i
    done;
    let d = float_of_int !count -. mu in
    chi2 := !chi2 +. (d *. d /. sigma2)
  done;
  finish ~name:"non-overlapping-template" ~statistic:!chi2
    (gamma_q (float_of_int blocks /. 2.0) (!chi2 /. 2.0))

let overlapping_template bits =
  let m = 9 and block_len = 1032 in
  let n = Array.length bits in
  let blocks = n / block_len in
  if blocks < 50 then invalid_arg "Sp80022.overlapping_template: need >= 50 blocks";
  (* Reference category probabilities for m = 9, M = 1032 (SP 800-22). *)
  let pis = [| 0.364091; 0.185659; 0.139381; 0.100571; 0.070432; 0.139866 |] in
  let counts = Array.make 6 0 in
  for b = 0 to blocks - 1 do
    let hits = ref 0 in
    for i = 0 to block_len - m do
      let all_ones = ref true in
      for j = 0 to m - 1 do
        if not bits.((b * block_len) + i + j) then all_ones := false
      done;
      if !all_ones then incr hits
    done;
    counts.(min 5 !hits) <- counts.(min 5 !hits) + 1
  done;
  let fb = float_of_int blocks in
  let chi2 = ref 0.0 in
  Array.iteri
    (fun i c ->
      let e = fb *. pis.(i) in
      let d = float_of_int c -. e in
      chi2 := !chi2 +. (d *. d /. e))
    counts;
  finish ~name:"overlapping-template" ~statistic:!chi2 (gamma_q 2.5 (!chi2 /. 2.0))

(* Decompose the +-1 walk into zero-to-zero cycles. *)
let walk_cycles bits =
  let n = Array.length bits in
  let s = ref 0 in
  let cycles = ref [] in
  let current = ref [ 0 ] in
  for i = 0 to n - 1 do
    s := !s + (if bits.(i) then 1 else -1);
    current := !s :: !current;
    if !s = 0 then begin
      cycles := Array.of_list (List.rev !current) :: !cycles;
      current := [ 0 ]
    end
  done;
  List.rev !cycles

(* pi_k(x): probability of k visits to state x within one cycle. *)
let excursion_pi k x =
  let ax = float_of_int (abs x) in
  if k = 0 then 1.0 -. (1.0 /. (2.0 *. ax))
  else if k < 5 then begin
    let base = 1.0 -. (1.0 /. (2.0 *. ax)) in
    (1.0 /. (4.0 *. ax *. ax)) *. (base ** float_of_int (k - 1))
  end
  else begin
    let base = 1.0 -. (1.0 /. (2.0 *. ax)) in
    (1.0 /. (2.0 *. ax)) *. (base ** 4.0)
  end

let min_cycles = 100

let random_excursions bits =
  let cycles = walk_cycles bits in
  let j = List.length cycles in
  if j < min_cycles then []
  else begin
    let states = [ -4; -3; -2; -1; 1; 2; 3; 4 ] in
    List.map
      (fun x ->
        let counts = Array.make 6 0 in
        List.iter
          (fun cycle ->
            let visits = Array.fold_left (fun a v -> if v = x then a + 1 else a) 0 cycle in
            counts.(min 5 visits) <- counts.(min 5 visits) + 1)
          cycles;
        let fj = float_of_int j in
        let chi2 = ref 0.0 in
        Array.iteri
          (fun k c ->
            let e = fj *. excursion_pi k x in
            let d = float_of_int c -. e in
            chi2 := !chi2 +. (d *. d /. e))
          counts;
        finish
          ~name:(Printf.sprintf "random-excursions (x=%+d)" x)
          ~statistic:!chi2
          (gamma_q 2.5 (!chi2 /. 2.0)))
      states
  end

let random_excursions_variant bits =
  let cycles = walk_cycles bits in
  let j = List.length cycles in
  if j < min_cycles then []
  else begin
    let visits = Hashtbl.create 32 in
    List.iter
      (fun cycle ->
        Array.iter
          (fun v ->
            if v <> 0 then
              Hashtbl.replace visits v (1 + Option.value ~default:0 (Hashtbl.find_opt visits v)))
          cycle)
      cycles;
    let fj = float_of_int j in
    List.filter_map
      (fun x ->
        if x = 0 then None
        else begin
          let xi = float_of_int (Option.value ~default:0 (Hashtbl.find_opt visits x)) in
          let denom = sqrt (2.0 *. fj *. ((4.0 *. float_of_int (abs x)) -. 2.0)) in
          Some
            (finish
               ~name:(Printf.sprintf "excursions-variant (x=%+d)" x)
               ~statistic:xi
               (erfc (Float.abs (xi -. fj) /. denom)))
        end)
      (List.init 19 (fun i -> i - 9))
  end

module Tm = Ptrng_telemetry.Registry

let tests_total =
  Tm.Counter.v ~help:"SP 800-22 test results produced by run_all."
    "ptrng_nist22_tests_total"

let failures_total =
  Tm.Counter.v ~help:"SP 800-22 results with p below the 0.01 level."
    "ptrng_nist22_failures_total"

let test_seconds =
  Tm.Hist.v ~help:"Wall time of one SP 800-22 test." ~lo:1e-6 ~hi:1e3
    "ptrng_nist22_test_seconds"

let run_all ?domains bits =
  Ptrng_telemetry.Span.with_ ~name:"nist22.run_all" @@ fun () ->
  let n = Array.length bits in
  let tests =
    [
      (100, fun () -> [ frequency bits ]);
      (256, fun () -> [ block_frequency bits ]);
      (100, fun () -> [ runs bits ]);
      (128, fun () -> [ longest_run bits ]);
      (100, fun () -> [ cumulative_sums bits ]);
      (1000, fun () -> [ spectral bits ]);
      (64, fun () -> [ serial bits ]);
      (64, fun () -> [ approximate_entropy bits ]);
      (38912, fun () -> [ binary_matrix_rank bits ]);
      (8000, fun () -> [ non_overlapping_template bits ]);
      (51600, fun () -> [ overlapping_template bits ]);
      ((640 + 1000) * 6, fun () -> [ maurer_universal bits ]);
      (50000, fun () -> [ linear_complexity bits ]);
      ( 100000,
        fun () ->
          (* Report each excursion family through its most extreme
             state, Bonferroni-corrected so the battery row keeps the
             nominal false-positive rate. *)
          let worst = function
            | [] -> []
            | results ->
              let r =
                List.fold_left
                  (fun acc (r : result) -> if r.p_value < acc.p_value then r else acc)
                  (List.hd results) results
              in
              [ { r with pass = r.p_value >= alpha /. float_of_int (List.length results) } ]
          in
          worst (random_excursions bits) @ worst (random_excursions_variant bits) );
    ]
  in
  (* One pool task per test; results are reassembled in battery order,
     so the report is identical to the sequential one.  The wall-time
     histogram is observed inside workers (domain-safe); the pass/fail
     counters are tallied after the join. *)
  let per_test =
    Ptrng_exec.Pool.parallel_map ?domains
      (fun (minimum, f) ->
        if n >= minimum then Tm.Hist.time test_seconds f else [])
      (Array.of_list tests)
  in
  let results = List.concat (Array.to_list per_test) in
  if !Tm.on then
    List.iter
      (fun (r : result) ->
        Tm.Counter.incr tests_total;
        if not r.pass then Tm.Counter.incr failures_total)
      results;
  results

let pp_results ppf results =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-24s stat %12.4f  p = %8.5f  %s@,"
        r.name r.statistic r.p_value (if r.pass then "ok" else "FAIL"))
    results;
  Format.fprintf ppf "@]"
