(** 1/f^alpha Gaussian noise by fractional integration (Kasdin 1995).

    White noise is filtered through the impulse response of
    [(1 - z^{-1})^{-alpha/2}], whose coefficients obey
    [h_0 = 1, h_k = h_{k-1} (k - 1 + alpha/2) / k].
    The resulting one-sided PSD at sample rate [fs] is
    [2 sigma_w^2 / (fs (2 sin(pi f / fs))^alpha)], which approaches
    [2 sigma_w^2 / fs (f fs / (2 pi f))^...] — for flicker (alpha = 1):
    [S(f) ~ sigma_w^2 / (pi f)] well below Nyquist, so a target
    flicker-FM level [h_{-1}] needs input variance
    [sigma_w^2 = pi h_{-1}].

    This is the reference generator; {!Spectral_synth} is the faster
    block generator validated against it. *)

val coefficients : alpha:float -> int -> float array
(** First [n] impulse-response coefficients h_0 .. h_{n-1}.
    @raise Invalid_argument if [n <= 0]. *)

val generate_block :
  ?domains:int ->
  Ptrng_prng.Rng.t ->
  alpha:float ->
  sigma_w:float ->
  int ->
  float array
[@@deprecated "allocates the whole trace; use Source.fill with Source.kasdin"]
(** Exact MA filtering of [n] white samples with a full-length
    coefficient array (FFT convolution): the highest-fidelity spectrum
    down to the lowest representable frequency.  Takes the [Rng.t]
    explicitly (no hidden generator state); the white input is chunked
    over a {!Ptrng_exec.Pool}, bit-identical for every [?domains].
    @deprecated Allocates the whole trace: stream through
    {!Source.fill} with a {!Source.kasdin} config (a truncated-window
    overlap-add convolution; with [taps >= n] it matches this function
    to FFT rounding). *)

val flicker_fm_block :
  ?domains:int -> Ptrng_prng.Rng.t -> hm1:float -> fs:float -> int -> float array
(** Flicker (alpha = 1) block calibrated to one-sided level [hm1]. *)

type stream
(** Streaming generator with a truncated coefficient window. *)

val stream_create :
  Ptrng_prng.Gaussian.t -> alpha:float -> sigma_w:float -> taps:int -> stream
(** Streaming 1/f^alpha generator over an explicit Gaussian source,
    keeping only the last [taps] filter coefficients.
    @raise Invalid_argument if [taps <= 0]. *)

val stream_next : stream -> float
(** Next sample; the spectrum is accurate above roughly [fs / taps]. *)
