(** Streaming noise sources — the allocation-free hot-path API.

    A source is created once from a configuration and a generator, then
    asked repeatedly to {!fill} caller-owned [Float.Array.t] buffers.
    The stream a source produces is a pure function of the single root
    draw taken at creation: it does not depend on how fills partition
    it, so chunked streaming, batch generation and parallel chunked
    generation (PR 2's [Pool.parallel_init_floats] seed-derivation
    scheme, whose chunk boundaries this module reuses) all agree —
    white streams bit-identically, filtered streams to rounding.

    Buffer-ownership rule: the caller owns every buffer passed to
    {!fill}/{!fill_range}; the source never retains a reference to it.
    Internal scratch (filter spectra, synthesis blocks) is allocated at
    {!create} and reused for the life of the source.  See
    docs/STREAMING.md for the full contract.

    The legacy whole-array entry points ([White.generate],
    [Kasdin.generate_block], [Voss.generate]/[generate_blocks]) remain
    as deprecated wrappers over the same underlying streams. *)

type config
(** Which process to synthesize, with its backend-specific tuning. *)

val white : sigma:float -> config
(** IID N(0, sigma^2) samples, one Gaussian child stream per
    [Pool.default_chunk]-aligned chunk — bit-identical to the batch
    parallel white path for the same creating generator.
    @raise Invalid_argument if [sigma < 0]. *)

val kasdin :
  ?taps:int -> ?block:int -> alpha:float -> sigma_w:float -> unit -> config
(** 1/f^alpha noise by Kasdin–Walter fractional integration of a white
    stream of deviation [sigma_w], truncated to [taps] filter
    coefficients (default 2^15) and streamed through an FFT overlap-add
    convolver in blocks of [block] (default [Pool.default_chunk]).
    The truncation flattens the spectrum below [fs/taps]; choose [taps]
    of the order of the longest correlation probed.
    @raise Invalid_argument if [taps <= 0], [block <= 0] or
    [sigma_w < 0]. *)

val flicker_fm :
  ?taps:int -> ?block:int -> hm1:float -> unit -> config
(** {!kasdin} with [alpha = 1] calibrated so the one-sided
    fractional-frequency PSD is [h_{-1}/f] (the [Kasdin.flicker_fm_block]
    calibration, sampling-rate independent).
    @raise Invalid_argument if [hm1 < 0]. *)

val voss : ?octaves:int -> sigma:float -> unit -> config
(** Voss–McCartney pink noise scaled by [sigma], a sequential octave
    ladder (default 20 octaves) seeded from child stream 0 of the root.
    @raise Invalid_argument if [octaves] is outside [1,62] or
    [sigma < 0]. *)

val spectral : ?block:int -> psd:(float -> float) -> fs:float -> unit -> config
(** Frequency-domain synthesis with target one-sided PSD [psd] at rate
    [fs], streamed as consecutive independent blocks of [block] samples
    (a power of two, default 2^16); block 0 is bit-identical to
    [Spectral_synth.generate] for the same creating generator, and any
    block can be resynthesized on demand from its salted per-block
    root, making {!skip} O(1) until the next fill.  Statistics probing
    lags beyond ~[block]/8 feel the per-block periodicity — pick
    [block] comfortably above the longest correlation studied.
    @raise Invalid_argument if [block] is not a power of two or
    [fs <= 0]. *)

type t
(** A live source: configuration, root seed and stream position. *)

val create : config -> Ptrng_prng.Rng.t -> t
(** [create config rng] builds a source, consuming exactly one root
    draw ([bits64]) from [rng] — the same generator advancement as the
    batch entry points, so batch and streamed pipelines can share a
    seeding discipline. *)

val fill : t -> Float.Array.t -> unit
(** [fill t buf] overwrites all of [buf] with the next
    [Float.Array.length buf] samples of the stream. *)

val fill_range : t -> Float.Array.t -> pos:int -> len:int -> unit
(** [fill_range t buf ~pos ~len] overwrites [buf.(pos .. pos+len-1)]
    with the next [len] samples.
    @raise Invalid_argument on a bad range. *)

val reset : t -> unit
(** Rewind to position 0: the source replays exactly the same stream
    (all state re-derives from the root). *)

val skip : t -> int -> unit
(** [skip t n] advances the stream position by [n] without delivering
    samples.  O(1) for white (whole chunks are never drawn) and
    spectral (blocks are resynthesized on demand); Voss and Kasdin
    must push the skipped span through their recurrences.
    @raise Invalid_argument if [n < 0]. *)

val position : t -> int
(** Samples delivered (or skipped) since creation or the last reset. *)

val config : t -> config
(** The configuration the source was created with. *)
