(** White Gaussian noise with a prescribed one-sided PSD level.

    A discrete white sequence at sample rate [fs] with variance
    [sigma^2] has one-sided PSD [2 sigma^2 / fs]; these helpers do that
    bookkeeping. *)

val variance_of_level : level:float -> fs:float -> float
(** Sample variance giving one-sided PSD [level] at rate [fs]. *)

val level_of_variance : variance:float -> fs:float -> float
(** One-sided PSD level of a white sequence with [variance]. *)

val generate : Ptrng_prng.Gaussian.t -> level:float -> fs:float -> int -> float array
[@@deprecated "allocates the whole trace; use Source.fill with Source.white"]
(** [generate g ~level ~fs n] draws [n] samples of white noise whose
    one-sided PSD is [level]. @raise Invalid_argument for negative
    [level] or non-positive [fs].
    @deprecated Allocates the whole trace: stream through
    {!Source.fill} with a {!Source.white} config instead. *)
