(* Power-of-two complex FFT over unboxed [Float.Array.t] buffers, plus
   the overlap-add block convolver that turns the Kasdin-Walter
   fractional-integration filter into a streaming O(log m)-per-sample
   engine.

   The butterfly network is the same algorithm as Ptrng_signal.Fft —
   identical bit-reversal order, identical twiddle recurrence with the
   64-step re-anchor — so spectra computed here agree with the
   array-based path to the last bit for the same input.  What differs
   is purely the storage: floatarray scratch owned by the caller, so a
   long-running source performs no per-block allocation. *)

module FA = Float.Array

let is_pow2 n = n > 0 && n land (n - 1) = 0

let next_pow2 n =
  let rec grow p = if p >= n then p else grow (p * 2) in
  grow 1

let check_pair re im =
  let n = FA.length re in
  if FA.length im <> n then invalid_arg "Noise Fft: re/im length mismatch";
  n

let bit_reverse_permute re im =
  let n = FA.length re in
  let j = ref 0 in
  for i = 0 to n - 2 do
    if i < !j then begin
      let tr = FA.unsafe_get re i in
      FA.unsafe_set re i (FA.unsafe_get re !j);
      FA.unsafe_set re !j tr;
      let ti = FA.unsafe_get im i in
      FA.unsafe_set im i (FA.unsafe_get im !j);
      FA.unsafe_set im !j ti
    end;
    let bit = ref (n lsr 1) in
    while !j land !bit <> 0 do
      j := !j lxor !bit;
      bit := !bit lsr 1
    done;
    j := !j lor !bit
  done

(* One butterfly stage of span [len]; the twiddle factor walks the unit
   circle multiplicatively, re-anchored every 64 steps by a direct
   cos/sin so rounding cannot accumulate over 2^24-point transforms. *)
let stage re im n len sign =
  let half = len / 2 in
  let ang = sign *. 2.0 *. Float.pi /. float_of_int len in
  let step_r = cos ang and step_i = sin ang in
  let i = ref 0 in
  while !i < n do
    let wr = ref 1.0 and wi = ref 0.0 in
    for k = 0 to half - 1 do
      if k land 63 = 0 then begin
        let a = ang *. float_of_int k in
        wr := cos a;
        wi := sin a
      end;
      let p = !i + k in
      let q = p + half in
      let rq = FA.unsafe_get re q and iq = FA.unsafe_get im q in
      let vr = (rq *. !wr) -. (iq *. !wi) in
      let vi = (rq *. !wi) +. (iq *. !wr) in
      let rp = FA.unsafe_get re p and ip = FA.unsafe_get im p in
      FA.unsafe_set re q (rp -. vr);
      FA.unsafe_set im q (ip -. vi);
      FA.unsafe_set re p (rp +. vr);
      FA.unsafe_set im p (ip +. vi);
      let nwr = (!wr *. step_r) -. (!wi *. step_i) in
      wi := (!wr *. step_i) +. (!wi *. step_r);
      wr := nwr
    done;
    i := !i + len
  done

let transform_pow2 ~sign re im =
  let n = check_pair re im in
  if not (is_pow2 n) then invalid_arg "Noise Fft: length not a power of two";
  if n > 1 then begin
    bit_reverse_permute re im;
    let len = ref 2 in
    while !len <= n do
      stage re im n !len sign;
      len := !len * 2
    done
  end

let forward_pow2 ~re ~im = transform_pow2 ~sign:(-1.0) re im

let inverse_pow2 ~re ~im =
  transform_pow2 ~sign:1.0 re im;
  let n = FA.length re in
  let inv = 1.0 /. float_of_int n in
  for i = 0 to n - 1 do
    FA.unsafe_set re i (FA.unsafe_get re i *. inv);
    FA.unsafe_set im i (FA.unsafe_get im i *. inv)
  done

module Overlap_add = struct
  type t = {
    m : int;          (* transform length *)
    block : int;      (* max input samples per [process] call *)
    taps : int;
    hr : FA.t;        (* filter spectrum, length m *)
    hi : FA.t;
    xr : FA.t;        (* work buffers, length m *)
    xi : FA.t;
    tail : FA.t;      (* taps-1 carried convolution tail *)
  }

  let taps t = t.taps

  let block t = t.block

  let fft_length t = t.m

  let create ~h ~block =
    let taps = FA.length h in
    if taps <= 0 then invalid_arg "Overlap_add.create: empty filter";
    if block <= 0 then invalid_arg "Overlap_add.create: block <= 0";
    let m = next_pow2 (block + taps - 1) in
    let hr = FA.make m 0.0 and hi = FA.make m 0.0 in
    FA.blit h 0 hr 0 taps;
    forward_pow2 ~re:hr ~im:hi;
    {
      m;
      block;
      taps;
      hr;
      hi;
      xr = FA.make m 0.0;
      xi = FA.make m 0.0;
      tail = FA.make (max 1 (taps - 1)) 0.0;
    }

  let reset t = FA.fill t.tail 0 (FA.length t.tail) 0.0

  let process t ~src ~src_pos ~dst ~dst_pos ~len =
    if len <= 0 || len > t.block then invalid_arg "Overlap_add.process: bad len";
    if src_pos < 0 || src_pos + len > FA.length src then
      invalid_arg "Overlap_add.process: src range";
    if dst_pos < 0 || dst_pos + len > FA.length dst then
      invalid_arg "Overlap_add.process: dst range";
    let { m; xr; xi; hr; hi; tail; taps; _ } = t in
    FA.fill xr 0 m 0.0;
    FA.fill xi 0 m 0.0;
    FA.blit src src_pos xr 0 len;
    forward_pow2 ~re:xr ~im:xi;
    for k = 0 to m - 1 do
      let ar = FA.unsafe_get xr k and ai = FA.unsafe_get xi k in
      let br = FA.unsafe_get hr k and bi = FA.unsafe_get hi k in
      FA.unsafe_set xr k ((ar *. br) -. (ai *. bi));
      FA.unsafe_set xi k ((ar *. bi) +. (ai *. br))
    done;
    inverse_pow2 ~re:xr ~im:xi;
    (* y_full has len + taps - 1 terms: emit the first len (adding the
       carried tail), keep the remaining taps - 1 as the new tail. *)
    let tl = taps - 1 in
    let overlap = min len tl in
    for i = 0 to overlap - 1 do
      FA.unsafe_set dst (dst_pos + i)
        (FA.unsafe_get xr i +. FA.unsafe_get tail i)
    done;
    for i = overlap to len - 1 do
      FA.unsafe_set dst (dst_pos + i) (FA.unsafe_get xr i)
    done;
    for j = 0 to tl - 1 do
      let carried = if len + j < tl then FA.unsafe_get tail (len + j) else 0.0 in
      FA.unsafe_set tail j (FA.unsafe_get xr (len + j) +. carried)
    done
end
