module Tm = Ptrng_telemetry.Registry

let samples_total =
  Tm.Counter.v ~help:"Pink-noise samples synthesized by the Voss-McCartney stack."
    "ptrng_noise_voss_samples_total"

type t = {
  g : Ptrng_prng.Gaussian.t;
  sources : float array;
  mutable counter : int;
}

let create g ~octaves =
  if octaves < 1 || octaves > 62 then invalid_arg "Voss.create: octaves outside [1,62]";
  let sources = Array.init octaves (fun _ -> Ptrng_prng.Gaussian.draw g) in
  { g; sources; counter = 0 }

let next t =
  Tm.Counter.incr samples_total;
  let octaves = Array.length t.sources in
  for j = 0 to octaves - 1 do
    (* Source j holds its value for 2^j consecutive samples. *)
    if t.counter land ((1 lsl j) - 1) = 0 then
      t.sources.(j) <- Ptrng_prng.Gaussian.draw t.g
  done;
  t.counter <- t.counter + 1;
  Array.fold_left ( +. ) 0.0 t.sources

let generate t n = Array.init n (fun _ -> next t)

let level_hm1 ~sigma = sigma *. sigma /. log 2.0
