module Tm = Ptrng_telemetry.Registry

let samples_total =
  Tm.Counter.v ~help:"Pink-noise samples synthesized by the Voss-McCartney stack."
    "ptrng_noise_voss_samples_total"

type t = {
  g : Ptrng_prng.Gaussian.t;
  sources : float array;
  mutable counter : int;
}

let create rng ~octaves =
  if octaves < 1 || octaves > 62 then invalid_arg "Voss.create: octaves outside [1,62]";
  let g = Ptrng_prng.Gaussian.create rng in
  let sources = Array.init octaves (fun _ -> Ptrng_prng.Gaussian.draw g) in
  { g; sources; counter = 0 }

(* [@inline] erases the boxed float return at fill-loop call sites;
   the accumulator ref is erased by Simplif.eliminate_ref (summing
   with Array.fold_left would box every partial sum instead). *)
let[@inline] next t =
  Tm.Counter.incr samples_total;
  let octaves = Array.length t.sources in
  for j = 0 to octaves - 1 do
    (* Source j holds its value for 2^j consecutive samples. *)
    if t.counter land ((1 lsl j) - 1) = 0 then
      t.sources.(j) <- Ptrng_prng.Gaussian.draw t.g
  done;
  t.counter <- t.counter + 1;
  let sum = ref 0.0 in
  for j = 0 to octaves - 1 do
    sum := !sum +. Array.unsafe_get t.sources j
  done;
  !sum

let generate t n = Array.init n (fun _ -> next t)

let generate_blocks ?domains rng ~octaves ~blocks n =
  if blocks < 0 then invalid_arg "Voss.generate_blocks: blocks < 0";
  (* The octave ladder is a sequential recurrence, so parallelism lives
     at the block level: one independent generator (own child stream)
     per block. *)
  Ptrng_exec.Pool.parallel_map_streams ?domains ~rng
    (fun _ child -> generate (create child ~octaves) n)
    blocks

let level_hm1 ~sigma = sigma *. sigma /. log 2.0
