module Tm = Ptrng_telemetry.Registry

let samples_total =
  Tm.Counter.v ~help:"1/f^alpha samples synthesized by the Kasdin-Walter filter."
    "ptrng_noise_kasdin_samples_total"

let coefficients ~alpha n =
  if n <= 0 then invalid_arg "Kasdin.coefficients: n <= 0";
  let h = Array.make n 0.0 in
  h.(0) <- 1.0;
  for k = 1 to n - 1 do
    let fk = float_of_int k in
    h.(k) <- h.(k - 1) *. (fk -. 1.0 +. (alpha /. 2.0)) /. fk
  done;
  h

let generate_block ?domains rng ~alpha ~sigma_w n =
  if n <= 0 then invalid_arg "Kasdin.generate_block: n <= 0";
  Tm.Counter.add samples_total n;
  (* The white input is chunked over the pool (one child stream per
     fixed chunk); the fractional-integration filter itself is one FFT
     convolution on the calling domain. *)
  let white =
    Ptrng_exec.Pool.parallel_init_floats ?domains ~rng
      ~fill:(fun child ~offset ~len out ->
        let g = Ptrng_prng.Gaussian.create child in
        for i = offset to offset + len - 1 do
          out.(i) <- sigma_w *. Ptrng_prng.Gaussian.draw g
        done)
      n
  in
  let h = coefficients ~alpha n in
  Ptrng_signal.Filter.fir_fft ~h white

let flicker_fm_block ?domains rng ~hm1 ~fs n =
  if hm1 < 0.0 then invalid_arg "Kasdin.flicker_fm_block: negative hm1";
  if fs <= 0.0 then invalid_arg "Kasdin.flicker_fm_block: fs <= 0";
  let sigma_w = sqrt (Float.pi *. hm1) in
  generate_block ?domains rng ~alpha:1.0 ~sigma_w n

type stream = {
  g : Ptrng_prng.Gaussian.t;
  sigma_w : float;
  taps : float array;
  buf : float array;  (* ring buffer of past white inputs *)
  mutable pos : int;
}

let stream_create g ~alpha ~sigma_w ~taps =
  if taps <= 0 then invalid_arg "Kasdin.stream_create: taps <= 0";
  {
    g;
    sigma_w;
    taps = coefficients ~alpha taps;
    buf = Array.make taps 0.0;
    pos = 0;
  }

let stream_next s =
  Tm.Counter.incr samples_total;
  let k = Array.length s.taps in
  s.buf.(s.pos) <- s.sigma_w *. Ptrng_prng.Gaussian.draw s.g;
  let acc = ref 0.0 in
  for j = 0 to k - 1 do
    (* taps.(j) multiplies the input from j steps ago. *)
    let idx = s.pos - j in
    let idx = if idx < 0 then idx + k else idx in
    acc := !acc +. (s.taps.(j) *. s.buf.(idx))
  done;
  s.pos <- (s.pos + 1) mod k;
  !acc
