(** Gaussian noise with an arbitrary target PSD, synthesised in the
    frequency domain.

    A Hermitian spectrum with independent complex-Gaussian bins whose
    expected power matches the target density is inverse-transformed
    into a real time series.  The output is a stationary Gaussian
    process with (circulant) covariance matching the target PSD exactly
    at the FFT grid frequencies; statistics that probe lags beyond
    ~n/8 samples feel the periodicity, so callers should generate
    blocks comfortably longer than the longest correlation they study.
    This is the fast block generator behind the oscillator simulator;
    {!Kasdin} and {!Voss} cross-validate it.

    Bin filling is chunked over a {!Ptrng_exec.Pool} with one child
    generator per fixed-size chunk, so for a given seed the output is
    bit-identical for every [?domains] value (including 1). *)

val generate :
  ?domains:int ->
  Ptrng_prng.Rng.t ->
  psd:(float -> float) ->
  fs:float ->
  int ->
  float array
(** [generate rng ~psd ~fs n] returns [n] samples ([n] a power of two)
    whose one-sided PSD matches [psd] (evaluated at [k fs / n],
    k = 1 .. n/2; the DC bin is forced to zero, so the output has zero
    mean over the block).  [rng] advances by exactly one root draw
    regardless of [?domains].  @raise Invalid_argument if [n] is not a
    power of two or [fs <= 0]. *)

val generate_with_root :
  domains:int ->
  backend:Ptrng_prng.Rng.backend ->
  root:int64 ->
  psd:(float -> float) ->
  fs:float ->
  int ->
  float array
(** [generate_with_root ~domains ~backend ~root ~psd ~fs n] is
    {!generate} with the root draw supplied explicitly instead of taken
    from a live generator — the resynthesizable form used by {!Source}
    to rebuild any block of a stream from its recorded root.
    [domains] is a required, already-resolved worker count (the
    streaming hot path passes [~domains:1]; an optional argument here
    would allocate a [Some] per block).  The output is bit-identical
    for every [domains] value.  [generate rng] is exactly
    [generate_with_root ~domains:(Pool.resolve ()) ~backend:(backend
    rng) ~root:(bits64 rng)].  @raise Invalid_argument as
    {!generate}. *)

val generate_frac_freq :
  ?domains:int ->
  Ptrng_prng.Rng.t ->
  model:Psd_model.frac_freq ->
  fs:float ->
  int ->
  float array
(** Fractional-frequency noise for an oscillator: white FM is added in
    the time domain (exactly white, no circularity), flicker and
    random-walk FM come from {!generate}. *)

val generate_many :
  ?domains:int ->
  Ptrng_prng.Rng.t ->
  psd:(float -> float) ->
  fs:float ->
  count:int ->
  int ->
  float array array
(** [generate_many rng ~psd ~fs ~count n] synthesizes [count]
    independent blocks, one derived generator per block, blocks
    distributed over the pool — the Monte-Carlo bulk-synthesis path.
    @raise Invalid_argument if [count < 0] (and as {!generate}). *)
