(* Streaming noise sources: one API over every backend, filling
   caller-owned floatarray buffers with no per-sample allocation.

   Every source derives its whole stream from a single root draw taken
   from the creating generator (exactly one bits64, the same
   consumption as the batch generators and Pool.parallel_init_floats),
   so reset/skip are pure re-derivations and a stream is bit-identical
   however the fill calls partition it:

   - White: one Gaussian child stream per Pool.default_chunk-aligned
     chunk of the output index space — the same chunk/seed alignment as
     Pool.parallel_init_floats, so a streamed white series equals the
     batch parallel one bit for bit, and [skip] over whole chunks is
     O(1).
   - Voss: the octave ladder is a sequential recurrence seeded from
     child stream 0 of the root.
   - Kasdin: the chunk-aligned white input stream is pushed through a
     truncated-tap fractional-integration filter with the Fft
     overlap-add engine — O(log m) per sample, O(m) memory, any stream
     length.
   - Spectral: the stream is a sequence of fixed-size synthesized
     blocks; block b is rebuilt on demand from a salted per-block root,
     so random access (skip) costs at most one block synthesis. *)

module Rng = Ptrng_prng.Rng
module Gaussian = Ptrng_prng.Gaussian
module FA = Float.Array

let samples_total =
  Ptrng_telemetry.Registry.Counter.v
    ~help:"Noise samples delivered through the streaming Source API."
    "ptrng_noise_source_samples_total"

type config =
  | CWhite of { sigma : float }
  | CKasdin of { alpha : float; sigma_w : float; taps : int; block : int }
  | CVoss of { octaves : int; sigma : float }
  | CSpectral of { psd : float -> float; fs : float; block : int }

let white ~sigma =
  if sigma < 0.0 then invalid_arg "Source.white: sigma < 0";
  CWhite { sigma }

let default_kasdin_taps = 1 lsl 15

let kasdin ?(taps = default_kasdin_taps) ?(block = Ptrng_exec.Pool.default_chunk)
    ~alpha ~sigma_w () =
  if taps <= 0 then invalid_arg "Source.kasdin: taps <= 0";
  if block <= 0 then invalid_arg "Source.kasdin: block <= 0";
  if sigma_w < 0.0 then invalid_arg "Source.kasdin: sigma_w < 0";
  CKasdin { alpha; sigma_w; taps; block }

let flicker_fm ?taps ?block ~hm1 () =
  if hm1 < 0.0 then invalid_arg "Source.flicker_fm: negative hm1";
  (* Same calibration as Kasdin.flicker_fm_block: for alpha = 1 the
     driving variance sigma_w^2 = pi h_{-1} puts the one-sided level at
     h_{-1}/f, independent of the sampling rate. *)
  kasdin ?taps ?block ~alpha:1.0 ~sigma_w:(sqrt (Float.pi *. hm1)) ()

let voss ?(octaves = 20) ~sigma () =
  if octaves < 1 || octaves > 62 then
    invalid_arg "Source.voss: octaves outside [1,62]";
  if sigma < 0.0 then invalid_arg "Source.voss: sigma < 0";
  CVoss { octaves; sigma }

let spectral ?(block = 1 lsl 16) ~psd ~fs () =
  if not (Fft.is_pow2 block) then
    invalid_arg "Source.spectral: block not a power of two";
  if fs <= 0.0 then invalid_arg "Source.spectral: fs <= 0";
  CSpectral { psd; fs; block }

(* ------------------------------------------------------------------ *)
(* Chunk-aligned white stream (shared by White and Kasdin)             *)
(* ------------------------------------------------------------------ *)

type white_state = {
  w_sigma : float;
  mutable g : Gaussian.t;
  mutable chunk_index : int;  (* chunk [g] draws for; -1 = none yet *)
  mutable drawn : int;        (* samples already drawn from [g] *)
}

let chunk = Ptrng_exec.Pool.default_chunk

let white_make ~sigma =
  {
    w_sigma = sigma;
    g = Gaussian.create (Rng.create ~seed:0L ());
    chunk_index = -1;
    drawn = 0;
  }

let white_reset st = st.chunk_index <- (-1)

(* Fill [len] samples starting at absolute stream position [abs] into
   [dst] at [dst_pos].  Chunk ci of the index space is served by child
   stream ci of the root; entering a chunk mid-way discards the skipped
   prefix draws so the sample at index i never depends on how fills
   were partitioned. *)
let white_fill st ~backend ~root ~abs ~dst ~dst_pos ~len =
  let p = ref abs and i = ref dst_pos and remaining = ref len in
  while !remaining > 0 do
    let ci = !p / chunk and off = !p mod chunk in
    if ci <> st.chunk_index then begin
      st.g <- Gaussian.create (Rng.child ~backend ~root ~index:ci ());
      st.chunk_index <- ci;
      st.drawn <- 0
    end;
    while st.drawn < off do
      let (_ : float) = Gaussian.draw st.g in
      st.drawn <- st.drawn + 1
    done;
    let take = min !remaining (chunk - off) in
    (* Bulk ziggurat fill: draw-for-draw the per-sample loop, minus the
       boxed round trip per draw (Gaussian.fill_fa). *)
    Gaussian.fill_fa st.g ~sigma:st.w_sigma dst ~pos:!i ~len:take;
    st.drawn <- st.drawn + take;
    p := !p + take;
    i := !i + take;
    remaining := !remaining - take
  done

(* ------------------------------------------------------------------ *)
(* Backend states                                                      *)
(* ------------------------------------------------------------------ *)

type kasdin_state = {
  k_white : white_state;
  ola : Fft.Overlap_add.t;
  wbuf : FA.t;  (* one block of filtered-input staging *)
}

type voss_state = {
  v_sigma : float;
  v_octaves : int;
  mutable v : Voss.t;
}

type spectral_state = {
  s_psd : float -> float;
  s_fs : float;
  s_block : int;
  mutable cur : float array;   (* synthesized block [block_index] *)
  mutable block_index : int;   (* -1 = none yet *)
}

type impl =
  | IWhite of white_state
  | IKasdin of kasdin_state
  | IVoss of voss_state
  | ISpectral of spectral_state

type t = {
  config : config;
  backend : Rng.backend;
  root : int64;
  mutable pos : int;
  impl : impl;
}

(* Per-block roots must not collide with the bin-chunk child indices
   used inside one block's synthesis (a few thousand at most), so they
   are salted far beyond them; block 0 keeps the bare root so a
   single-block stream is bit-identical to Spectral_synth.generate. *)
let spectral_block_salt = 1 lsl 30

let[@inline] spectral_block_root ~root b =
  if b = 0 then root else Rng.derive_seed root (spectral_block_salt + b)

let spectral_sync st ~backend ~root b =
  if b <> st.block_index then begin
    st.cur <-
      Spectral_synth.generate_with_root ~domains:1 ~backend
        ~root:(spectral_block_root ~root b)
        ~psd:st.s_psd ~fs:st.s_fs st.s_block;
    st.block_index <- b
  end

let create config rng =
  let backend = Rng.backend rng in
  let root = Rng.bits64 rng in
  let impl =
    match config with
    | CWhite { sigma } -> IWhite (white_make ~sigma)
    | CKasdin { alpha; sigma_w; taps; block } ->
      let h = FA.create taps in
      let coeffs = Kasdin.coefficients ~alpha taps in
      for k = 0 to taps - 1 do
        FA.set h k coeffs.(k)
      done;
      IKasdin
        {
          k_white = white_make ~sigma:sigma_w;
          ola = Fft.Overlap_add.create ~h ~block;
          wbuf = FA.create block;
        }
    | CVoss { octaves; sigma } ->
      IVoss
        {
          v_sigma = sigma;
          v_octaves = octaves;
          v = Voss.create (Rng.child ~backend ~root ~index:0 ()) ~octaves;
        }
    | CSpectral { psd; fs; block } ->
      ISpectral
        { s_psd = psd; s_fs = fs; s_block = block; cur = [||]; block_index = -1 }
  in
  { config; backend; root; pos = 0; impl }

let config t = t.config

let position t = t.pos

let fill_range t dst ~pos ~len =
  if len < 0 || pos < 0 || pos + len > FA.length dst then
    invalid_arg "Source.fill_range: bad range";
  Ptrng_telemetry.Registry.Counter.add samples_total len;
  (match t.impl with
  | IWhite st ->
    white_fill st ~backend:t.backend ~root:t.root ~abs:t.pos ~dst ~dst_pos:pos
      ~len
  | IKasdin st ->
    let block = Fft.Overlap_add.block st.ola in
    let abs = ref t.pos and i = ref pos and remaining = ref len in
    while !remaining > 0 do
      let take = min !remaining block in
      white_fill st.k_white ~backend:t.backend ~root:t.root ~abs:!abs
        ~dst:st.wbuf ~dst_pos:0 ~len:take;
      Fft.Overlap_add.process st.ola ~src:st.wbuf ~src_pos:0 ~dst ~dst_pos:!i
        ~len:take;
      abs := !abs + take;
      i := !i + take;
      remaining := !remaining - take
    done
  | IVoss st ->
    let sigma = st.v_sigma in
    for j = pos to pos + len - 1 do
      FA.unsafe_set dst j (sigma *. Voss.next st.v)
    done
  | ISpectral st ->
    let abs = ref t.pos and i = ref pos and remaining = ref len in
    while !remaining > 0 do
      let b = !abs / st.s_block and off = !abs mod st.s_block in
      spectral_sync st ~backend:t.backend ~root:t.root b;
      let take = min !remaining (st.s_block - off) in
      let cur = st.cur in
      for j = 0 to take - 1 do
        FA.unsafe_set dst (!i + j) (Array.unsafe_get cur (off + j))
      done;
      abs := !abs + take;
      i := !i + take;
      remaining := !remaining - take
    done);
  t.pos <- t.pos + len

let fill t dst = fill_range t dst ~pos:0 ~len:(FA.length dst)

let reset t =
  (match t.impl with
  | IWhite st -> white_reset st
  | IKasdin st ->
    white_reset st.k_white;
    Fft.Overlap_add.reset st.ola
  | IVoss st ->
    st.v <- Voss.create (Rng.child ~backend:t.backend ~root:t.root ~index:0 ())
        ~octaves:st.v_octaves
  | ISpectral _ -> ());
  t.pos <- 0

let skip t n =
  if n < 0 then invalid_arg "Source.skip: n < 0";
  (match t.impl with
  | IWhite _ | ISpectral _ ->
    (* Position is re-derived lazily on the next fill: whole skipped
       chunks/blocks are never synthesized. *)
    ()
  | IVoss st ->
    for _ = 1 to n do
      let (_ : float) = Voss.next st.v in
      ()
    done
  | IKasdin st ->
    (* The filter tail must see every input, so skipping streams the
       skipped span through the convolver into its own staging. *)
    let block = Fft.Overlap_add.block st.ola in
    let abs = ref t.pos and remaining = ref n in
    while !remaining > 0 do
      let take = min !remaining block in
      white_fill st.k_white ~backend:t.backend ~root:t.root ~abs:!abs
        ~dst:st.wbuf ~dst_pos:0 ~len:take;
      Fft.Overlap_add.process st.ola ~src:st.wbuf ~src_pos:0 ~dst:st.wbuf
        ~dst_pos:0 ~len:take;
      abs := !abs + take;
      remaining := !remaining - take
    done);
  t.pos <- t.pos + n
