(** Power-of-two FFT on unboxed [Float.Array.t] buffers and an
    overlap-add block convolver for streaming FIR filtering.

    Same butterfly algorithm as [Ptrng_signal.Fft] (bit-identical
    output for identical input), but operating in place on caller-owned
    floatarray scratch so long-running noise sources allocate nothing
    per block.  See docs/STREAMING.md for the overlap-add design. *)

val is_pow2 : int -> bool
(** Whether [n] is a positive power of two. *)

val next_pow2 : int -> int
(** Smallest power of two [>= n] (and [>= 1]). *)

val forward_pow2 : re:Float.Array.t -> im:Float.Array.t -> unit
(** In-place forward DFT of a power-of-two complex buffer pair.
    @raise Invalid_argument on length mismatch or non-power-of-two. *)

val inverse_pow2 : re:Float.Array.t -> im:Float.Array.t -> unit
(** In-place inverse DFT including the 1/n scaling, so
    [inverse_pow2 (forward_pow2 x)] returns [x] up to rounding. *)

(** Streaming linear convolution with a fixed FIR filter by the
    overlap-add method: each input block is convolved via one
    forward/inverse FFT pair of length [next_pow2 (block + taps - 1)],
    and the [taps - 1] tail is carried into the next call — output
    equals direct convolution of the whole stream, in O(log m) work
    per sample and O(m) memory, independent of stream length. *)
module Overlap_add : sig
  type t
  (** Convolver state: filter spectrum, FFT scratch and carried tail. *)

  val create : h:Float.Array.t -> block:int -> t
  (** [create ~h ~block] precomputes the spectrum of filter [h] for
      input blocks of at most [block] samples.
      @raise Invalid_argument if [h] is empty or [block <= 0]. *)

  val taps : t -> int
  (** Filter length the convolver was built with. *)

  val block : t -> int
  (** Maximum samples accepted by one [process] call. *)

  val fft_length : t -> int
  (** Internal transform length [next_pow2 (block + taps - 1)]. *)

  val process :
    t ->
    src:Float.Array.t -> src_pos:int ->
    dst:Float.Array.t -> dst_pos:int ->
    len:int -> unit
  (** [process t ~src ~src_pos ~dst ~dst_pos ~len] convolves the next
      [len] input samples and writes [len] output samples; [dst] may
      alias [src] (input is consumed before output is written).
      @raise Invalid_argument on a bad range or [len > block t]. *)

  val reset : t -> unit
  (** Zero the carried tail, restarting the stream. *)
end
