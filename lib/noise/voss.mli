(** Voss–McCartney pink-noise generator.

    Sums [octaves] independent Gaussian sources, source [j] refreshed
    every [2^j] samples; the resulting spectrum approximates 1/f over
    about [octaves] octaves below Nyquist.  Kept as a structurally
    independent cross-check of {!Kasdin} and {!Spectral_synth} — three
    generators built on different principles must agree on the measured
    flicker level within estimator error. *)

type t

val create : Ptrng_prng.Rng.t -> octaves:int -> t
(** [create rng ~octaves] builds the ladder on an explicit generator.
    @raise Invalid_argument unless [1 <= octaves <= 62]. *)

val next : t -> float
(** Next sample; the sum of the current source values. *)

val generate : t -> int -> float array
[@@deprecated "allocates the whole trace; use Source.fill with Source.voss"]
(** [generate t n] is the next [n] samples.
    @raise Invalid_argument if [n < 0].
    @deprecated Allocates the whole trace: stream through
    {!Source.fill} with a {!Source.voss} config instead. *)

val generate_blocks :
  ?domains:int ->
  Ptrng_prng.Rng.t ->
  octaves:int ->
  blocks:int ->
  int ->
  float array array
[@@deprecated "allocates every block; use one Source.fill stream per block"]
(** [generate_blocks rng ~octaves ~blocks n] produces [blocks]
    independent pink blocks of [n] samples, one child stream per block,
    distributed over a {!Ptrng_exec.Pool}; bit-identical for every
    [?domains].  @raise Invalid_argument if [blocks < 0].
    @deprecated Allocates every block: create one {!Source.voss} stream
    per block and {!Source.fill} a reused buffer instead. *)

val level_hm1 : sigma:float -> float
(** Log-averaged one-sided flicker level of the generator when each
    source has standard deviation [sigma].  A source held for [2^j]
    samples has PSD [2 sigma^2 2^j sinc^2(pi f 2^j / fs) / fs]; summing
    the octave ladder and averaging the staircase over a log cycle
    gives [h_{-1} = sigma^2 / ln 2], independent of the sample rate.
    The instantaneous level ripples around this value by a few percent,
    which is why Voss is a cross-check, not the calibrated generator. *)
