let samples_total =
  Ptrng_telemetry.Registry.Counter.v
    ~help:"Noise samples synthesized by frequency-domain shaping."
    "ptrng_noise_spectral_samples_total"

let generate rng ~psd ~fs n =
  if not (Ptrng_signal.Fft.is_pow2 n) then
    invalid_arg "Spectral_synth.generate: n must be a power of two";
  if fs <= 0.0 then invalid_arg "Spectral_synth.generate: fs <= 0";
  Ptrng_telemetry.Registry.Counter.incr ~by:n samples_total;
  let g = Ptrng_prng.Gaussian.create rng in
  let re = Array.make n 0.0 and im = Array.make n 0.0 in
  let half = n / 2 in
  (* E[|X_k|^2] = S(f_k) fs n / 2 for interior bins of an unscaled DFT. *)
  for k = 1 to half - 1 do
    let f = float_of_int k *. fs /. float_of_int n in
    let amp = sqrt (psd f *. fs *. float_of_int n /. 4.0) in
    let a = amp *. Ptrng_prng.Gaussian.draw g in
    let b = amp *. Ptrng_prng.Gaussian.draw g in
    re.(k) <- a;
    im.(k) <- b;
    re.(n - k) <- a;
    im.(n - k) <- -.b
  done;
  (* Nyquist bin is real with the full expected power. *)
  if half >= 1 && half < n then begin
    let f = fs /. 2.0 in
    re.(half) <- sqrt (psd f *. fs *. float_of_int n /. 2.0) *. Ptrng_prng.Gaussian.draw g
  end;
  (* inverse_pow2 applies the 1/n scaling, so a forward transform of the
     result returns exactly the spectrum built above. *)
  Ptrng_signal.Fft.inverse_pow2 ~re ~im;
  re

let generate_frac_freq rng ~model ~fs n =
  let open Psd_model in
  let y = Array.make n 0.0 in
  if model.h0 > 0.0 then begin
    let g = Ptrng_prng.Gaussian.create rng in
    let sigma = sqrt (White.variance_of_level ~level:model.h0 ~fs) in
    for i = 0 to n - 1 do
      y.(i) <- sigma *. Ptrng_prng.Gaussian.draw g
    done
  end;
  if model.hm1 > 0.0 || model.hm2 > 0.0 then begin
    let colored_psd f = (model.hm1 /. f) +. (model.hm2 /. (f *. f)) in
    let colored = generate rng ~psd:colored_psd ~fs n in
    for i = 0 to n - 1 do
      y.(i) <- y.(i) +. colored.(i)
    done
  end;
  y
