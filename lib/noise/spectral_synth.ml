module Pool = Ptrng_exec.Pool
module Rng = Ptrng_prng.Rng

let samples_total =
  Ptrng_telemetry.Registry.Counter.v
    ~help:"Noise samples synthesized by frequency-domain shaping."
    "ptrng_noise_spectral_samples_total"

(* Spectrum bins are filled in fixed-size chunks, each from a child
   generator derived from one root draw, so the synthesized block is
   bit-identical for every domain count (see docs/PARALLELISM.md). *)
let bin_chunk = 4096

(* [domains] is a required resolved count (no option at hot call
   sites): the streaming resynthesis path passes [~domains:1]
   directly, and [generate] resolves its own [?domains]. *)
let generate_with_root ~domains ~backend ~root ~psd ~fs n =
  if not (Ptrng_signal.Fft.is_pow2 n) then
    invalid_arg "Spectral_synth.generate: n must be a power of two";
  if fs <= 0.0 then invalid_arg "Spectral_synth.generate: fs <= 0";
  Ptrng_telemetry.Registry.Counter.add samples_total n;
  let re = Array.make n 0.0 and im = Array.make n 0.0 in
  let half = n / 2 in
  (* E[|X_k|^2] = S(f_k) fs n / 2 for interior bins of an unscaled DFT. *)
  let nbins = half - 1 in
  let nchunks = (nbins + bin_chunk - 1) / bin_chunk in
  if nbins > 0 then
    Pool.run_tasks ~domains ~n_tasks:nchunks (fun ci ->
        let child = Rng.child ~backend ~root ~index:ci () in
        let g = Ptrng_prng.Gaussian.create child in
        let k_lo = 1 + (ci * bin_chunk) in
        let k_hi = min (half - 1) (k_lo + bin_chunk - 1) in
        let bins = k_hi - k_lo + 1 in
        (* One bulk draw of the chunk's (a, b) pairs: same child stream,
           same draw order as the former per-bin pair of draws, but
           allocation-free (Gaussian.fill_fa). *)
        let draws = Float.Array.create (2 * bins) in
        Ptrng_prng.Gaussian.fill_fa g ~sigma:1.0 draws ~pos:0 ~len:(2 * bins);
        for k = k_lo to k_hi do
          let f = float_of_int k *. fs /. float_of_int n in
          let amp = sqrt (psd f *. fs *. float_of_int n /. 4.0) in
          let j = 2 * (k - k_lo) in
          let a = amp *. Float.Array.unsafe_get draws j in
          let b = amp *. Float.Array.unsafe_get draws (j + 1) in
          re.(k) <- a;
          im.(k) <- b;
          re.(n - k) <- a;
          im.(n - k) <- -.b
        done);
  (* Nyquist bin is real with the full expected power; its draw comes
     from a dedicated child stream beyond the interior chunk indices. *)
  if half >= 1 && half < n then begin
    let child = Rng.child ~backend ~root ~index:(nchunks + 1) () in
    let g = Ptrng_prng.Gaussian.create child in
    let f = fs /. 2.0 in
    re.(half) <- sqrt (psd f *. fs *. float_of_int n /. 2.0) *. Ptrng_prng.Gaussian.draw g
  end;
  (* inverse_pow2 applies the 1/n scaling, so a forward transform of the
     result returns exactly the spectrum built above. *)
  Ptrng_signal.Fft.inverse_pow2 ~re ~im;
  re

let generate ?domains rng ~psd ~fs n =
  let root = Rng.bits64 rng in
  let backend = Rng.backend rng in
  generate_with_root ~domains:(Pool.resolve ?domains ()) ~backend ~root ~psd ~fs n

let generate_frac_freq ?domains rng ~model ~fs n =
  let open Psd_model in
  let y =
    if model.h0 > 0.0 then begin
      let sigma = sqrt (White.variance_of_level ~level:model.h0 ~fs) in
      Pool.parallel_init_floats ?domains ~rng
        ~fill:(fun child ~offset ~len out ->
          let g = Ptrng_prng.Gaussian.create child in
          for i = offset to offset + len - 1 do
            out.(i) <- sigma *. Ptrng_prng.Gaussian.draw g
          done)
        n
    end
    else Array.make n 0.0
  in
  if model.hm1 > 0.0 || model.hm2 > 0.0 then begin
    let colored_psd f = (model.hm1 /. f) +. (model.hm2 /. (f *. f)) in
    let colored = generate ?domains rng ~psd:colored_psd ~fs n in
    for i = 0 to n - 1 do
      y.(i) <- y.(i) +. colored.(i)
    done
  end;
  y

let generate_many ?domains rng ~psd ~fs ~count n =
  if count < 0 then invalid_arg "Spectral_synth.generate_many: count < 0";
  Pool.parallel_map_streams ?domains ~rng
    (fun _ child -> generate child ~psd ~fs n)
    count
