(** Incremental AIS31-style online test.

    AIS31 deployments run the monobit (T1) test continuously on every
    block of internal random numbers — the "online test" of a PTG.2
    generator.  {!Procedure_a.t1_monobit} is the batch form over a
    recorded 20000-bit block; this module is the streaming form: feed
    bits as they are produced, get one verdict per completed block,
    with running block/alarm totals exported through the
    [ptrng_ais31_online_*] telemetry counters.  The live
    {!Ptrng_monitor} subsystem feeds its control charts from these
    per-block verdicts.

    Bounds generalise the AIS31 reference interval: a block of [w]
    bits alarms when the ones count leaves
    [w/2 +- z sqrt(w)/2] with [z] the two-sided normal quantile at
    [alpha = 2^-alpha_exp].  The defaults ([w = 20000],
    [alpha_exp = 20]) reproduce AIS31's published T1 interval
    (9654, 10346) to within one count. *)

type t
(** Streaming monobit monitor. *)

val create : ?block_bits:int -> ?alpha_exp:int -> unit -> t
(** Fresh monitor.  [block_bits] defaults to
    {!Procedure_a.block_bits} (20000); smaller blocks react faster at
    a weaker per-block significance.  [alpha_exp] (default 20) sets
    the two-sided false-alarm probability [2^-alpha_exp] per block.
    @raise Invalid_argument if [block_bits < 64] or [alpha_exp <= 0]. *)

val bounds : t -> int * int
(** Inclusive pass interval [(lo, hi)] for the ones count of one
    block; a count outside it is an alarm. *)

val feed : t -> bool -> bool option
(** Feed one bit.  [None] mid-block; [Some alarm] when this bit
    completed a block ([true] = the block's ones count left
    {!bounds}).  Allocates the [Some] at block boundaries; per-bit hot
    loops should use {!feed_flag}. *)

val feed_flag : t -> bool -> int
(** As {!feed}, but the verdict is an int — [-1] mid-block, [0] block
    passed, [1] block alarmed — so the per-bit feed path
    ({!Ptrng_monitor}) stays allocation-free. *)

val blocks : t -> int
(** Completed blocks so far. *)

val alarms : t -> int
(** Blocks that alarmed so far. *)

val scan : t -> bool array -> int
(** Feed a recorded stream, returning the number of alarms it raised —
    the batch path is the same code as the streaming one. *)
