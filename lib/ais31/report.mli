(** Shared result types for the AIS31 test procedures. *)

type test_result = {
  name : string;       (** e.g. "T1 monobit (block 3)". *)
  statistic : float;   (** The test's decision statistic. *)
  pass : bool;
  detail : string;     (** Human-readable bounds / context. *)
}

type summary = {
  results : test_result list;
  passed : int;
  failed : int;
  verdict : bool;  (** Overall pass after the standard's retry rule. *)
}

val make : name:string -> statistic:float -> pass:bool -> detail:string -> test_result
(** Record constructor; keeps test modules free of record syntax. *)

val summarize : ?allowed_failures:int -> test_result list -> summary
(** AIS31 allows a single failed test to be repeated once; we model
    this as tolerating [allowed_failures] (default 1) failures out of
    the whole batch. *)

val pp : Format.formatter -> summary -> unit
(** Table-style rendering of a summary. *)
