module Tm = Ptrng_telemetry.Registry

let test_seconds =
  Tm.Hist.v ~help:"Wall time of one AIS31 procedure-A block (T1-T5)." ~lo:1e-6
    ~hi:1e3 "ptrng_ais31_block_seconds"

let block_bits = 20000

let t0_words = 1 lsl 16
let t0_word_bits = 48

let t0_disjointness stream =
  let need = t0_words * t0_word_bits in
  if Ptrng_trng.Bitstream.length stream < need then
    invalid_arg "Procedure_a.t0_disjointness: need 48*2^16 bits";
  let seen = Hashtbl.create t0_words in
  let duplicates = ref 0 in
  for w = 0 to t0_words - 1 do
    let word = ref 0L in
    for b = 0 to t0_word_bits - 1 do
      word := Int64.shift_left !word 1;
      if Ptrng_trng.Bitstream.get stream ((w * t0_word_bits) + b) then
        word := Int64.logor !word 1L
    done;
    if Hashtbl.mem seen !word then incr duplicates
    else Hashtbl.add seen !word ()
  done;
  Report.make ~name:"T0 disjointness" ~statistic:(float_of_int !duplicates)
    ~pass:(!duplicates = 0)
    ~detail:(Printf.sprintf "%d duplicate 48-bit words among 2^16" !duplicates)

let check_block name block =
  if Array.length block <> block_bits then
    invalid_arg (Printf.sprintf "Procedure_a.%s: block must be %d bits" name block_bits)

let t1_monobit block =
  check_block "t1_monobit" block;
  let ones = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 block in
  Report.make ~name:"T1 monobit" ~statistic:(float_of_int ones)
    ~pass:(ones > 9654 && ones < 10346)
    ~detail:"bound (9654, 10346)"

let t2_poker block =
  check_block "t2_poker" block;
  let counts = Array.make 16 0 in
  for i = 0 to (block_bits / 4) - 1 do
    let v = ref 0 in
    for j = 0 to 3 do
      v := (!v lsl 1) lor (if block.((i * 4) + j) then 1 else 0)
    done;
    counts.(!v) <- counts.(!v) + 1
  done;
  let sum_sq = Array.fold_left (fun acc c -> acc +. (float_of_int c ** 2.0)) 0.0 counts in
  let x = (16.0 /. 5000.0 *. sum_sq) -. 5000.0 in
  Report.make ~name:"T2 poker" ~statistic:x
    ~pass:(x > 1.03 && x < 57.4)
    ~detail:"bound (1.03, 57.4)"

let run_lengths block =
  (* Returns (lengths of 0-runs, lengths of 1-runs) bucketed 1..6+. *)
  let zero = Array.make 6 0 and one = Array.make 6 0 in
  let n = Array.length block in
  let i = ref 0 in
  while !i < n do
    let v = block.(!i) in
    let j = ref !i in
    while !j < n && block.(!j) = v do
      incr j
    done;
    let len = min 6 (!j - !i) in
    let bucket = if v then one else zero in
    bucket.(len - 1) <- bucket.(len - 1) + 1;
    i := !j
  done;
  (zero, one)

let t3_bounds = [| (2267, 2733); (1079, 1421); (502, 748); (223, 402); (90, 223); (90, 223) |]

let t3_runs block =
  check_block "t3_runs" block;
  let zero, one = run_lengths block in
  let violations = ref 0 in
  let check counts =
    Array.iteri
      (fun k c ->
        let lo, hi = t3_bounds.(k) in
        if c < lo || c > hi then incr violations)
      counts
  in
  check zero;
  check one;
  Report.make ~name:"T3 runs" ~statistic:(float_of_int !violations)
    ~pass:(!violations = 0)
    ~detail:"all 12 run-length classes within FIPS bounds"

let t4_long_run block =
  check_block "t4_long_run" block;
  let longest = ref 0 in
  let current = ref 0 in
  let prev = ref None in
  Array.iter
    (fun b ->
      (match !prev with
      | Some p when p = b -> incr current
      | _ -> current := 1);
      prev := Some b;
      if !current > !longest then longest := !current)
    block;
  Report.make ~name:"T4 long run" ~statistic:(float_of_int !longest)
    ~pass:(!longest < 34)
    ~detail:"no run of length >= 34"

let t5_autocorrelation block =
  check_block "t5_autocorrelation" block;
  let half = 10000 in
  (* Select tau on the first half: maximise |Z_tau - 2500| over
     tau = 1..5000, computed on bits 0..9999. *)
  let z_tau offset tau =
    let acc = ref 0 in
    for j = 0 to 4999 do
      if block.(offset + j) <> block.(offset + j + tau) then incr acc
    done;
    !acc
  in
  let best_tau = ref 1 and best_dep = ref (-1.0) in
  for tau = 1 to 5000 do
    let dep = Float.abs (float_of_int (z_tau 0 tau) -. 2500.0) in
    if dep > !best_dep then begin
      best_dep := dep;
      best_tau := tau
    end
  done;
  let z = z_tau half !best_tau in
  Report.make ~name:"T5 autocorrelation"
    ~statistic:(float_of_int z)
    ~pass:(z > 2326 && z < 2674)
    ~detail:(Printf.sprintf "tau = %d, bound (2326, 2674)" !best_tau)

let run_block block =
  check_block "run_block" block;
  Tm.Hist.time test_seconds (fun () ->
      [ t1_monobit block; t2_poker block; t3_runs block; t4_long_run block;
        t5_autocorrelation block ])

let run ?blocks stream =
  Ptrng_telemetry.Span.with_ ~name:"ais31.procedure_a" @@ fun () ->
  let available = Ptrng_trng.Bitstream.length stream / block_bits in
  if available = 0 then invalid_arg "Procedure_a.run: stream shorter than one block";
  let blocks = match blocks with Some b -> min b available | None -> min available 257 in
  let results = ref [] in
  if Ptrng_trng.Bitstream.length stream >= t0_words * t0_word_bits then
    results := [ t0_disjointness stream ];
  for b = 0 to blocks - 1 do
    let block =
      Array.init block_bits (fun i ->
          Ptrng_trng.Bitstream.get stream ((b * block_bits) + i))
    in
    let tag r = { r with Report.name = Printf.sprintf "%s (block %d)" r.Report.name b } in
    results := !results @ List.map tag (run_block block)
  done;
  Report.summarize !results
