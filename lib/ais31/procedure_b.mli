(** AIS31 procedure B: distribution and entropy tests on the raw
    binary sequence (T6–T8).

    T8 is Coron's entropy estimator — the test the paper's conclusion
    wants to complement with the faster embedded thermal-noise test. *)

val t6_uniform : k:int -> a:float -> bool array -> Report.test_result
(** Uniform distribution of [k]-bit words: every word's empirical
    frequency must stay within [a] of [2^-k].  The statistic is the
    largest departure. @raise Invalid_argument if [k] is outside
    [1, 16] or fewer than [1000 * 2^k] words are available. *)

val t7_homogeneity : k:int -> bool array -> Report.test_result
(** Comparative multinomial test: chi-squared homogeneity of [k]-bit
    word counts between the two halves of the sequence; pass at the
    0.0001 significance level. *)

val t8_entropy : ?q:int -> ?k:int -> bool array -> Report.test_result
(** Coron's entropy test on 8-bit blocks with [q] initialisation blocks
    (default 2560) and [k] evaluation blocks (default 256000): the
    statistic estimates the entropy per 8-bit block and must exceed
    7.976 (i.e. 0.997 bit of entropy per bit).
    @raise Invalid_argument without [8 (q + k)] bits. *)

val coron_g : int -> float
(** The weight g(i) = (1/ln 2) * sum_{j=1}^{i-1} 1/j used by T8
    (g(1) = 0); exposed for testing. *)

val required_bits_t8 : q:int -> k:int -> int
(** Bits T8 consumes for the given parameters: [8 * (q + k)]. *)

val run : Ptrng_trng.Bitstream.t -> Report.summary
(** T6 (k = 1 and 2), T7 (k = 4) and T8 with default parameters on the
    stream prefix; tests without enough data are skipped.
    @raise Invalid_argument if even T6 (k=1) lacks data. *)
