let words_of_bits ~k bits =
  let n = Array.length bits / k in
  Array.init n (fun i ->
      let w = ref 0 in
      for j = 0 to k - 1 do
        w := (!w lsl 1) lor (if bits.((i * k) + j) then 1 else 0)
      done;
      !w)

let t6_uniform ~k ~a bits =
  if k < 1 || k > 16 then invalid_arg "Procedure_b.t6_uniform: k outside [1,16]";
  if a <= 0.0 then invalid_arg "Procedure_b.t6_uniform: a <= 0";
  let words = words_of_bits ~k bits in
  let n = Array.length words in
  let cells = 1 lsl k in
  if n < 1000 * cells then invalid_arg "Procedure_b.t6_uniform: not enough words";
  let counts = Array.make cells 0 in
  Array.iter (fun w -> counts.(w) <- counts.(w) + 1) words;
  let target = 1.0 /. float_of_int cells in
  let worst = ref 0.0 in
  Array.iter
    (fun c ->
      let dep = Float.abs ((float_of_int c /. float_of_int n) -. target) in
      if dep > !worst then worst := dep)
    counts;
  Report.make
    ~name:(Printf.sprintf "T6 uniformity (k=%d)" k)
    ~statistic:!worst ~pass:(!worst <= a)
    ~detail:(Printf.sprintf "max departure vs bound %.4f" a)

let t7_homogeneity ~k bits =
  if k < 1 || k > 16 then invalid_arg "Procedure_b.t7_homogeneity: k outside [1,16]";
  let words = words_of_bits ~k bits in
  let n = Array.length words in
  let cells = 1 lsl k in
  if n < 2000 * cells then invalid_arg "Procedure_b.t7_homogeneity: not enough words";
  let half = n / 2 in
  let c1 = Array.make cells 0 and c2 = Array.make cells 0 in
  for i = 0 to half - 1 do
    c1.(words.(i)) <- c1.(words.(i)) + 1
  done;
  for i = half to (2 * half) - 1 do
    c2.(words.(i)) <- c2.(words.(i)) + 1
  done;
  (* Chi-squared homogeneity between the two halves. *)
  let stat = ref 0.0 in
  for w = 0 to cells - 1 do
    let a = float_of_int c1.(w) and b = float_of_int c2.(w) in
    let tot = a +. b in
    if tot > 0.0 then begin
      let expected = tot /. 2.0 in
      stat := !stat +. (((a -. expected) ** 2.0) /. expected)
        +. (((b -. expected) ** 2.0) /. expected)
    end
  done;
  let df = float_of_int (cells - 1) in
  let p = Ptrng_stats.Special.chi2_sf ~df !stat in
  Report.make
    ~name:(Printf.sprintf "T7 homogeneity (k=%d)" k)
    ~statistic:!stat ~pass:(p > 0.0001)
    ~detail:(Printf.sprintf "chi2 df=%g p=%.5f" df p)

(* Harmonic-number weights of Coron's estimator, memoised up to the
   largest distance seen.  Published arrays are never mutated, so a
   reader always sees a fully-initialised prefix; a lost CAS between
   racing growers only costs a recomputation. *)
let harmonic_cache = Atomic.make [| 0.0 |]

let coron_g i =
  if i < 1 then invalid_arg "Procedure_b.coron_g: i < 1";
  let cache = Atomic.get harmonic_cache in
  if i <= Array.length cache then cache.(i - 1) /. log 2.0
  else begin
    let old_len = Array.length cache in
    let grown = Array.make i 0.0 in
    Array.blit cache 0 grown 0 old_len;
    for j = old_len to i - 1 do
      (* grown.(j) = H_j = sum_{m=1}^{j} 1/m; g(i) uses H_{i-1}. *)
      grown.(j) <- grown.(j - 1) +. (1.0 /. float_of_int j)
    done;
    ignore (Atomic.compare_and_set harmonic_cache cache grown);
    grown.(i - 1) /. log 2.0
  end

let required_bits_t8 ~q ~k = 8 * (q + k)

let t8_entropy ?(q = 2560) ?(k = 256000) bits =
  if q < 256 || k < 1000 then invalid_arg "Procedure_b.t8_entropy: q or k too small";
  if Array.length bits < required_bits_t8 ~q ~k then
    invalid_arg "Procedure_b.t8_entropy: not enough bits";
  let blocks = words_of_bits ~k:8 bits in
  let last_seen = Array.make 256 (-1) in
  for i = 0 to q - 1 do
    last_seen.(blocks.(i)) <- i
  done;
  let acc = ref 0.0 in
  for i = q to q + k - 1 do
    let b = blocks.(i) in
    let dist = if last_seen.(b) < 0 then i + 1 else i - last_seen.(b) in
    acc := !acc +. coron_g dist;
    last_seen.(b) <- i
  done;
  let fc = !acc /. float_of_int k in
  Report.make ~name:"T8 Coron entropy" ~statistic:fc ~pass:(fc > 7.976)
    ~detail:"entropy per 8-bit block, bound > 7.976"

let run stream =
  Ptrng_telemetry.Span.with_ ~name:"ais31.procedure_b" @@ fun () ->
  let bits = Ptrng_trng.Bitstream.to_bools stream in
  let n = Array.length bits in
  if n < 2000 then invalid_arg "Procedure_b.run: stream too short";
  let results = ref [] in
  let add r = results := !results @ [ r ] in
  add (t6_uniform ~k:1 ~a:0.025 bits);
  if n >= 2 * 4000 then add (t6_uniform ~k:2 ~a:0.02 bits);
  if n >= 4 * 32000 then add (t7_homogeneity ~k:4 bits);
  if n >= required_bits_t8 ~q:2560 ~k:256000 then add (t8_entropy bits);
  Report.summarize ~allowed_failures:0 !results
