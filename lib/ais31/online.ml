module Tm = Ptrng_telemetry.Registry

let blocks_total =
  Tm.Counter.v ~help:"AIS31 online-test blocks completed (streaming monobit)."
    "ptrng_ais31_online_blocks_total"

let alarms_total =
  Tm.Counter.v ~help:"AIS31 online-test blocks whose ones count left the bound."
    "ptrng_ais31_online_alarms_total"

type t = {
  block_bits : int;
  lo : int;
  hi : int;
  mutable seen : int;    (* bits in the current (incomplete) block *)
  mutable ones : int;
  mutable blocks : int;
  mutable alarms : int;
}

let create ?(block_bits = Procedure_a.block_bits) ?(alpha_exp = 20) () =
  if block_bits < 64 then invalid_arg "Online.create: block_bits < 64";
  if alpha_exp <= 0 then invalid_arg "Online.create: alpha_exp <= 0";
  (* Two-sided bound at alpha = 2^-alpha_exp: half of the mass in each
     tail.  Var(ones) = w/4 under the null. *)
  let alpha = 2.0 ** -.float_of_int alpha_exp in
  let z = Ptrng_stats.Special.normal_ppf (1.0 -. (alpha /. 2.0)) in
  let half = float_of_int block_bits /. 2.0 in
  let d = z *. sqrt (float_of_int block_bits) /. 2.0 in
  let lo = int_of_float (Float.ceil (half -. d)) in
  let hi = int_of_float (Float.floor (half +. d)) in
  { block_bits; lo; hi; seen = 0; ones = 0; blocks = 0; alarms = 0 }

let bounds t = (t.lo, t.hi)

(* -1 = mid-block, 0 = block passed, 1 = block alarmed.  The int
   spelling keeps the per-bit feed path allocation-free; [feed] wraps
   it for callers that want the option. *)
let feed_flag t bit =
  t.seen <- t.seen + 1;
  if bit then t.ones <- t.ones + 1;
  if t.seen < t.block_bits then -1
  else begin
    let alarm = t.ones < t.lo || t.ones > t.hi in
    t.seen <- 0;
    t.ones <- 0;
    t.blocks <- t.blocks + 1;
    if alarm then t.alarms <- t.alarms + 1;
    Tm.Counter.incr blocks_total;
    if alarm then Tm.Counter.incr alarms_total;
    if alarm then 1 else 0
  end

let feed t bit =
  match feed_flag t bit with -1 -> None | f -> Some (f = 1)

let blocks t = t.blocks
let alarms t = t.alarms

let scan t bits =
  let alarms0 = t.alarms in
  Array.iter (fun b -> ignore (feed t b)) bits;
  t.alarms - alarms0
