type test_result = {
  name : string;
  statistic : float;
  pass : bool;
  detail : string;
}

type summary = {
  results : test_result list;
  passed : int;
  failed : int;
  verdict : bool;
}

module Tm = Ptrng_telemetry.Registry

let tests_total =
  Tm.Counter.v ~help:"AIS31 test evaluations (every T0-T8 result built)."
    "ptrng_ais31_tests_total"

let failures_total =
  Tm.Counter.v ~help:"AIS31 test evaluations that failed their bound."
    "ptrng_ais31_failures_total"

(* Every individual test result flows through [make], so counting here
   covers both procedures and direct calls to the T* functions. *)
let make ~name ~statistic ~pass ~detail =
  if !Tm.on then begin
    Tm.Counter.incr tests_total;
    if not pass then Tm.Counter.incr failures_total
  end;
  { name; statistic; pass; detail }

let summarize ?(allowed_failures = 1) results =
  let failed = List.length (List.filter (fun r -> not r.pass) results) in
  {
    results;
    passed = List.length results - failed;
    failed;
    verdict = failed <= allowed_failures;
  }

let pp ppf s =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-28s %12.4f  %-4s  %s@,"
        r.name r.statistic (if r.pass then "ok" else "FAIL") r.detail)
    s.results;
  Format.fprintf ppf "passed %d / %d -> %s@]"
    s.passed (s.passed + s.failed)
    (if s.verdict then "PASS" else "FAIL")
