(** Umbrella namespace for the whole library.

    Depending on the [ptrng] dune library brings every subsystem in
    under one root — [Ptrng.Noise.Kasdin], [Ptrng.Measure.Fit],
    [Ptrng.Model.Multilevel], ... — so applications need a single
    [(libraries ptrng)] stanza instead of enumerating sub-libraries.
    Each alias below is the corresponding [ptrng_*] library, which can
    still be depended on individually for a narrower link. *)

module Prng = Ptrng_prng
(** Deterministic PRNGs ([Rng], [Gaussian], stream splitting). *)

module Exec = Ptrng_exec
(** Domain-based fork-join pool with deterministic RNG streams. *)

module Signal = Ptrng_signal
(** FFT, windows, PSD estimation. *)

module Stats = Ptrng_stats
(** Descriptive statistics, regression, special functions. *)

module Noise = Ptrng_noise
(** 1/f synthesis (Kasdin, spectral, Voss) and PSD models. *)

module Source = Ptrng_noise.Source
(** The streaming noise API ([create] / [fill] / [reset] / [skip])
    over every backend — promoted to the umbrella root because it is
    the recommended way to draw noise. *)

module Device = Ptrng_device
(** Transistor-level phase-noise provenance (ISF, inverter, MOSFET). *)

module Osc = Ptrng_osc
(** Event-level ring-oscillator simulation, pairs, restarts. *)

module Trng = Ptrng_trng
(** Elementary RO-TRNG sampling chain. *)

module Measure = Ptrng_measure
(** Variance-curve estimation, fitting, thermal extraction. *)

module Model = Ptrng_model
(** Stochastic models: multilevel pipeline, Markov chains, entropy. *)

module Ais31 = Ptrng_ais31
(** AIS 31 procedures A and B. *)

module Sp90b = Ptrng_sp90b
(** SP 800-90B min-entropy estimators. *)

module Nist22 = Ptrng_nist22
(** SP 800-22 statistical test battery. *)

module Report = Ptrng_report
(** Machine-readable report emission. *)

module Monitor = Ptrng_monitor
(** Live health observatory: streaming r_N, control charts, HTTP
    endpoints, detection-latency scoring. *)

module Scenario = Ptrng_scenario
(** Adversarial & environmental scenario engine: the named workload
    matrix and the scored runner. *)

module Telemetry = Ptrng_telemetry
(** Metrics registry, span tracing, event log. *)
