(** Domain-based fork-join work pool with deterministic RNG streams.

    Every combinator is a {e fork-join section}: worker domains are
    spawned, pull task indices from a shared counter, write results
    into index-addressed slots and are joined before the call returns.
    Scheduling is work-stealing and therefore nondeterministic, but
    results are assembled by index, so every combinator returns {b bit
    identical} output regardless of the domain count — including the
    1-domain sequential fallback.  Randomized workloads keep that
    guarantee through {!Ptrng_prng.Rng.derive_seed}: work is cut into
    fixed-size chunks (independent of the domain count) and chunk [i]
    draws from a child generator derived from one root seed and [i].

    Domain-count resolution, in priority order: the [?domains] argument,
    {!set_default} (the [--domains] CLI flag), the [PTRNG_DOMAINS]
    environment variable, [Domain.recommended_domain_count ()].  Inside
    a worker domain every section resolves to 1 — nested parallelism
    runs sequentially instead of oversubscribing.

    Exceptions raised by a task abort the section: remaining tasks are
    skipped, domains are joined, and the first captured exception is
    re-raised (with its backtrace) on the calling domain.

    See docs/PARALLELISM.md for the design rationale. *)

val default_chunk : int
(** Chunk granularity (samples) of {!parallel_init_floats} — fixed, so
    chunk boundaries never depend on the domain count. *)

val max_domains : int
(** Hard upper bound on the domain count (64). *)

val set_default : int option -> unit
(** Install (or with [None] remove) a process-wide domain-count
    override; used by the [--domains] CLI flags.
    @raise Invalid_argument if the count is < 1. *)

val available : unit -> int
(** The domain count a section gets when [?domains] is omitted:
    {!set_default} override, else [PTRNG_DOMAINS], else
    [Domain.recommended_domain_count ()], clamped to [1, max_domains].
    Malformed [PTRNG_DOMAINS] values are ignored. *)

val resolve : ?domains:int -> unit -> int
(** The domain count a section with this [?domains] argument will use
    ([1] inside a worker domain).
    @raise Invalid_argument if [domains < 1]. *)

val worker_tasks : unit -> int array
(** Cumulative tasks started per worker slot across all sections so
    far (spawned workers are slots [0 .. workers-2], the calling
    domain the last slot), trimmed to the highest active slot.  Only
    counted while telemetry is enabled; the runtime profiler
    ({!Ptrng_telemetry.Runtime_profile}) samples this into
    [ptrng_exec_worker<i>_tasks] gauges and Perfetto counter
    tracks. *)

val run_tasks : domains:int -> n_tasks:int -> (int -> unit) -> unit
(** [run_tasks ~domains ~n_tasks task] runs [task 0 .. task (n_tasks-1)]
    on [min domains n_tasks] domains.  The building block under the
    combinators below; [task] must only write to disjoint state per
    index.  @raise Invalid_argument if [n_tasks < 0]. *)

val parallel_map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** Like [Array.map]; [f] runs on worker domains in any order, results
    are in input order. *)

val parallel_mapi : ?domains:int -> (int -> 'a -> 'b) -> 'a array -> 'b array
(** Like [Array.mapi]; same ordering guarantees as {!parallel_map}. *)

val parallel_iter : ?domains:int -> ('a -> unit) -> 'a array -> unit
(** Like [Array.iter]; [f] must only touch disjoint or synchronised
    state, as with {!run_tasks}. *)

val parallel_filter_map : ?domains:int -> ('a -> 'b option) -> 'a array -> 'b array
(** Like [Array.map] followed by dropping [None]s; kept in input
    order. *)

val parallel_reduce :
  ?domains:int ->
  map:('a -> 'b) ->
  combine:('b -> 'b -> 'b) ->
  init:'b ->
  'a array ->
  'b
(** Parallel map, then a {e sequential} fold of [combine] in index
    order — deterministic even for non-commutative [combine]. *)

val parallel_init_floats :
  ?domains:int ->
  ?chunk:int ->
  rng:Ptrng_prng.Rng.t ->
  fill:(Ptrng_prng.Rng.t -> offset:int -> len:int -> float array -> unit) ->
  int ->
  float array
(** [parallel_init_floats ~rng ~fill n] builds an [n]-float array in
    fixed-size chunks: one 64-bit root is drawn from [rng] (advancing
    it by exactly one draw, domain-independent), and chunk [i] calls
    [fill child ~offset ~len out] with a child generator derived from
    the root and [i].  [fill] must write exactly
    [out.(offset .. offset+len-1)].  Bit-identical for every domain
    count as long as [chunk] (default {!default_chunk}) is unchanged.
    Returns [[||]] when [n = 0].
    @raise Invalid_argument if [n < 0] or [chunk <= 0]. *)

val parallel_map_streams :
  ?domains:int ->
  rng:Ptrng_prng.Rng.t ->
  (int -> Ptrng_prng.Rng.t -> 'a) ->
  int ->
  'a array
(** [parallel_map_streams ~rng f n] runs [f i child_i] for
    [i = 0 .. n-1] in parallel, each with its own derived generator —
    the Monte-Carlo shape (one task per replicate).  One root draw from
    [rng], as in {!parallel_init_floats}. *)
