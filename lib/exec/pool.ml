module Tm = Ptrng_telemetry.Registry

let sections_total =
  Tm.Counter.v ~help:"Fork-join sections executed by the domain pool."
    "ptrng_exec_sections_total"

let tasks_total =
  Tm.Counter.v ~help:"Tasks executed by the domain pool (all domains)."
    "ptrng_exec_tasks_total"

let domains_gauge =
  Tm.Gauge.v ~help:"Domain count of the most recent fork-join section."
    "ptrng_exec_domains"

let default_chunk = 8192

let max_domains = 64

(* Cumulative tasks started per worker slot (spawned workers are slots
   0 .. workers-2, the calling domain is the last slot), for the
   runtime profiler's per-domain counter tracks.  Only bumped while
   telemetry is on. *)
let slot_tasks = Array.init max_domains (fun _ -> Atomic.make 0)

let worker_tasks () =
  let hi = ref 0 in
  Array.iteri (fun i c -> if Atomic.get c > 0 then hi := i + 1) slot_tasks;
  Array.init !hi (fun i -> Atomic.get slot_tasks.(i))

let () = Ptrng_telemetry.Runtime_profile.set_pool_source worker_tasks

(* CLI override (repro --domains / bench --domains), set once on the
   main domain before any parallel work starts. *)
let cli_default : int option ref = ref None

let set_default d =
  (match d with
  | Some d when d < 1 -> invalid_arg "Pool.set_default: domains < 1"
  | _ -> ());
  cli_default := d

let env_domains () =
  match Sys.getenv_opt "PTRNG_DOMAINS" with
  | None | Some "" -> None
  | Some v -> (
    match int_of_string_opt (String.trim v) with
    | Some d when d >= 1 -> Some (min d max_domains)
    | Some _ | None -> None)

let available () =
  match !cli_default with
  | Some d -> min d max_domains
  | None -> (
    match env_domains () with
    | Some d -> d
    | None -> max 1 (min max_domains (Domain.recommended_domain_count ())))

(* Worker domains must not fork nested pools: a parallel map inside a
   parallel map would oversubscribe the machine and buys nothing.  The
   flag is domain-local, so independent domains are unaffected. *)
let inside_pool : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let resolve ?domains () =
  if Domain.DLS.get inside_pool then 1
  else
    match domains with
    | Some d when d < 1 -> invalid_arg "Pool.resolve: domains < 1"
    | Some d -> min d max_domains
    | None -> available ()

(* ------------------------------------------------------------------ *)
(* Core fork-join runner                                               *)
(* ------------------------------------------------------------------ *)

exception Worker_failure of exn * Printexc.raw_backtrace

let run_tasks ~domains ~n_tasks task =
  if n_tasks < 0 then invalid_arg "Pool.run_tasks: n_tasks < 0";
  if n_tasks > 0 then begin
    if !Tm.on then begin
      Tm.Counter.incr sections_total;
      Tm.Counter.add tasks_total n_tasks
    end;
    let workers = max 1 (min domains n_tasks) in
    Tm.Gauge.set domains_gauge (float_of_int workers);
    if workers = 1 then
      for i = 0 to n_tasks - 1 do
        if !Tm.on then ignore (Atomic.fetch_and_add slot_tasks.(0) 1);
        task i
      done
    else begin
      let next = Atomic.make 0 in
      let failure : (exn * Printexc.raw_backtrace) option Atomic.t =
        Atomic.make None
      in
      let worker slot () =
        Domain.DLS.set inside_pool true;
        let rec loop () =
          if Atomic.get failure = None then begin
            let i = Atomic.fetch_and_add next 1 in
            if i < n_tasks then begin
              if !Tm.on then ignore (Atomic.fetch_and_add slot_tasks.(slot) 1);
              (try task i
               with e ->
                 let bt = Printexc.get_raw_backtrace () in
                 ignore (Atomic.compare_and_set failure None (Some (e, bt))));
              loop ()
            end
          end
        in
        loop ()
      in
      let spawned = Array.init (workers - 1) (fun s -> Domain.spawn (worker s)) in
      (* The calling domain is worker number [workers]. *)
      let was_inside = Domain.DLS.get inside_pool in
      worker (workers - 1) ();
      Domain.DLS.set inside_pool was_inside;
      Array.iter Domain.join spawned;
      match Atomic.get failure with
      | Some (e, bt) -> Printexc.raise_with_backtrace (Worker_failure (e, bt)) bt
      | None -> ()
    end
  end

(* Re-raise the original exception so callers match on what the task
   raised, not on a pool wrapper. *)
let run_tasks ~domains ~n_tasks task =
  try run_tasks ~domains ~n_tasks task
  with Worker_failure (e, bt) -> Printexc.raise_with_backtrace e bt

(* ------------------------------------------------------------------ *)
(* Derived combinators                                                 *)
(* ------------------------------------------------------------------ *)

let parallel_mapi ?domains f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let domains = resolve ?domains () in
    let out = Array.make n None in
    run_tasks ~domains ~n_tasks:n (fun i -> out.(i) <- Some (f i xs.(i)));
    Array.map
      (function Some v -> v | None -> assert false (* every task ran *))
      out
  end

let parallel_map ?domains f xs = parallel_mapi ?domains (fun _ x -> f x) xs

let parallel_iter ?domains f xs =
  let n = Array.length xs in
  if n > 0 then
    run_tasks ~domains:(resolve ?domains ()) ~n_tasks:n (fun i -> f xs.(i))

let parallel_filter_map ?domains f xs =
  let mapped = parallel_map ?domains f xs in
  let out = ref [] in
  for i = Array.length mapped - 1 downto 0 do
    match mapped.(i) with Some v -> out := v :: !out | None -> ()
  done;
  Array.of_list !out

let parallel_reduce ?domains ~map ~combine ~init xs =
  (* Map in parallel, combine sequentially in index order, so the
     result is independent of the domain count even for non-commutative
     [combine]. *)
  Array.fold_left combine init (parallel_map ?domains map xs)

(* ------------------------------------------------------------------ *)
(* Chunked float generation with deterministic RNG streams             *)
(* ------------------------------------------------------------------ *)

module Rng = Ptrng_prng.Rng

let chunk_count ~chunk n =
  if chunk <= 0 then invalid_arg "Pool: chunk <= 0";
  (n + chunk - 1) / chunk

let parallel_init_floats ?domains ?(chunk = default_chunk) ~rng ~fill n =
  if n < 0 then invalid_arg "Pool.parallel_init_floats: n < 0";
  if n = 0 then [||]
  else begin
    let nchunks = chunk_count ~chunk n in
    (* One root draw, regardless of chunk or domain count: the caller's
       generator advances identically whether or not the pool runs. *)
    let root = Rng.bits64 rng in
    let backend = Rng.backend rng in
    let out = Array.make n 0.0 in
    let domains = resolve ?domains () in
    run_tasks ~domains ~n_tasks:nchunks (fun i ->
        let offset = i * chunk in
        let len = min chunk (n - offset) in
        let child = Rng.child ~backend ~root ~index:i () in
        fill child ~offset ~len out);
    out
  end

let parallel_map_streams ?domains ~rng f n =
  if n < 0 then invalid_arg "Pool.parallel_map_streams: n < 0";
  if n = 0 then [||]
  else begin
    let root = Rng.bits64 rng in
    let backend = Rng.backend rng in
    parallel_mapi ?domains
      (fun i () -> f i (Rng.child ~backend ~root ~index:i ()))
      (Array.make n ())
  end
