type estimate = {
  name : string;
  p_max : float;
  min_entropy : float;
}

let z99 = 2.5758293035489004 (* 99% two-sided normal quantile *)

let clamp_prob p = Float.max 1e-12 (Float.min 1.0 p)

let finish ~name p_max =
  let p_max = clamp_prob p_max in
  { name; p_max; min_entropy = Float.max 0.0 (-.(log p_max /. log 2.0)) }

let require name minimum bits =
  if Array.length bits < minimum then
    invalid_arg (Printf.sprintf "Estimators.%s: need >= %d bits" name minimum)

let most_common_value bits =
  require "most_common_value" 100 bits;
  let n = Array.length bits in
  let ones = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 bits in
  let count = max ones (n - ones) in
  let p_hat = float_of_int count /. float_of_int n in
  let p_u =
    p_hat +. (z99 *. sqrt (p_hat *. (1.0 -. p_hat) /. float_of_int (n - 1)))
  in
  finish ~name:"most-common-value" p_u

let collision bits =
  require "collision" 300 bits;
  let n = Array.length bits in
  (* Collision times: the minimal window from the cursor containing a
     repeated symbol; 2 when the next two bits agree, otherwise 3. *)
  let times = ref [] in
  let i = ref 0 in
  while !i + 2 < n do
    if bits.(!i) = bits.(!i + 1) then begin
      times := 2.0 :: !times;
      i := !i + 2
    end
    else begin
      times := 3.0 :: !times;
      i := !i + 3
    end
  done;
  let t = Array.of_list !times in
  let l = Array.length t in
  if l < 50 then invalid_arg "Estimators.collision: too few collisions";
  let mean = Ptrng_stats.Descriptive.mean t in
  let sd = Ptrng_stats.Descriptive.std ~mean t in
  let mean_lo = mean -. (z99 *. sd /. sqrt (float_of_int l)) in
  (* E(t) = 2 + 2 p q  =>  p q = (E(t) - 2) / 2, and p >= 1/2 solves
     p = 1/2 + sqrt(1/4 - pq).  A lower bound on E(t) gives an upper
     bound on p. *)
  let pq = Float.max 0.0 (Float.min 0.25 ((mean_lo -. 2.0) /. 2.0)) in
  let p_u = 0.5 +. sqrt (0.25 -. pq) in
  finish ~name:"collision" p_u

let markov ?(steps = 128) bits =
  require "markov" 1000 bits;
  if steps < 2 then invalid_arg "Estimators.markov: steps < 2";
  let n = Array.length bits in
  (* Upper confidence bounds on P(1), P(0->1), P(1->1). *)
  let upper count total =
    if total = 0 then 1.0
    else begin
      let p = float_of_int count /. float_of_int total in
      clamp_prob (p +. (z99 *. sqrt (p *. (1.0 -. p) /. float_of_int (max 1 (total - 1)))))
    end
  in
  let ones = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 bits in
  let c01 = ref 0 and c11 = ref 0 and n0 = ref 0 and n1 = ref 0 in
  for i = 0 to n - 2 do
    if bits.(i) then begin
      incr n1;
      if bits.(i + 1) then incr c11
    end
    else begin
      incr n0;
      if bits.(i + 1) then incr c01
    end
  done;
  let p1 = upper ones n in
  let p0 = upper (n - ones) n in
  let p01 = upper !c01 !n0 in
  let p00 = upper (!n0 - !c01) !n0 in
  let p11 = upper !c11 !n1 in
  let p10 = upper (!n1 - !c11) !n1 in
  (* Most likely [steps]-bit trajectory under the bounded transition
     matrix, by dynamic programming in log space. *)
  let log2 x = log x /. log 2.0 in
  let best0 = ref (log2 p0) and best1 = ref (log2 p1) in
  for _ = 2 to steps do
    let next0 = Float.max (!best0 +. log2 p00) (!best1 +. log2 p10) in
    let next1 = Float.max (!best0 +. log2 p01) (!best1 +. log2 p11) in
    best0 := next0;
    best1 := next1
  done;
  let log_p = Float.max !best0 !best1 in
  let per_bit = Float.min 1.0 (-.log_p /. float_of_int steps) in
  {
    name = "markov";
    p_max = 2.0 ** (-.per_bit);
    min_entropy = per_bit;
  }

let t_tuple ?(max_t = 16) bits =
  require "t_tuple" 1000 bits;
  if max_t < 1 || max_t > 62 then invalid_arg "Estimators.t_tuple: max_t outside [1,62]";
  let n = Array.length bits in
  let worst = ref 0.0 in
  (try
     for t = 1 to max_t do
       let windows = n - t + 1 in
       let counts = Hashtbl.create 1024 in
       (* Pack each t-bit window into an int key. *)
       let key = ref 0 in
       for j = 0 to t - 1 do
         key := (!key lsl 1) lor (if bits.(j) then 1 else 0)
       done;
       let mask = (1 lsl t) - 1 in
       let bump k =
         Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
       in
       bump !key;
       for i = 1 to windows - 1 do
         key := ((!key lsl 1) lor (if bits.(i + t - 1) then 1 else 0)) land mask;
         bump !key
       done;
       let max_count = Hashtbl.fold (fun _ c acc -> max c acc) counts 0 in
       (* The standard keeps tuple sizes whose champion appears >= 35
          times; below that the frequency estimate is too noisy. *)
       if max_count < 35 then raise Exit;
       let p_hat = float_of_int max_count /. float_of_int windows in
       let p_u =
         p_hat +. (z99 *. sqrt (p_hat *. (1.0 -. p_hat) /. float_of_int (windows - 1)))
       in
       let per_bit = clamp_prob p_u ** (1.0 /. float_of_int t) in
       if per_bit > !worst then worst := per_bit
     done
   with Exit -> ());
  finish ~name:"t-tuple" !worst

module Tm = Ptrng_telemetry.Registry

let estimates_total =
  Tm.Counter.v ~help:"SP 800-90B min-entropy estimates computed."
    "ptrng_sp90b_estimates_total"

let estimator_seconds =
  Tm.Hist.v ~help:"Wall time of one SP 800-90B estimator." ~lo:1e-6 ~hi:1e3
    "ptrng_sp90b_estimator_seconds"

let run_all ?domains bits =
  Ptrng_telemetry.Span.with_ ~name:"sp90b.run_all" @@ fun () ->
  (* One pool task per estimator (shared read-only input); estimates
     come back in battery order, counters are tallied after the join. *)
  let estimators =
    [| most_common_value; collision; (fun bits -> markov bits);
       (fun bits -> t_tuple bits) |]
  in
  let estimates =
    Array.to_list
      (Ptrng_exec.Pool.parallel_map ?domains
         (fun f -> Tm.Hist.time estimator_seconds (fun () -> f bits))
         estimators)
  in
  List.iter (fun _ -> Tm.Counter.incr estimates_total) estimates;
  let aggregate =
    List.fold_left (fun acc e -> Float.min acc e.min_entropy) 1.0 estimates
  in
  (estimates, aggregate)
