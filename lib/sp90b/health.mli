(** SP 800-90B §4 continuous health tests (binary).

    The standard's two mandatory on-line tests, designed to catch total
    failures of the noise source with a false-alarm probability of
    [alpha] (2^-30 by default) per evaluation, assuming the claimed
    min-entropy [h] per bit:

    - the {e repetition count test} (RCT) alarms on an impossible run of
      identical samples;
    - the {e adaptive proportion test} (APT) alarms when one value
      dominates a window.

    These complement the paper's proposed thermal-noise test: RCT/APT
    catch gross failures within microseconds, the thermal test verifies
    the entropy *rate* claim itself (slowly).  A flicker-quenched
    oscillator that still wiggles passes RCT/APT — the gap the paper's
    statistic closes. *)

val rct_cutoff : ?alpha_exp:int -> h:float -> unit -> int
(** Repetition cutoff [1 + ceil (alpha_exp / h)] for
    [alpha = 2^-alpha_exp] (default 30).
    @raise Invalid_argument unless [0 < h <= 1]. *)

val apt_cutoff : ?alpha_exp:int -> ?window:int -> h:float -> unit -> int
(** Smallest count C with [P(Bin(window, 2^-h) >= C) <= 2^-alpha_exp]
    (default window 1024), computed from the exact binomial tail. *)

type rct
type apt

val rct_create : cutoff:int -> rct
(** Fresh repetition-count monitor; see {!rct_cutoff}. *)

val rct_feed : rct -> bool -> bool
(** Feed one sample; [true] means ALARM (cutoff reached). The monitor
    keeps running after an alarm. *)

val apt_create : cutoff:int -> window:int -> apt
(** Fresh adaptive-proportion monitor; see {!apt_cutoff}. *)

val apt_feed : apt -> bool -> bool
(** Feed one sample; [true] means ALARM in the window just closed. *)

type monitor
(** A combined continuous monitor: one RCT and one APT over the same
    stream, plus running sample/alarm totals.  Feeding updates the
    [ptrng_sp90b_*] telemetry counters per sample, so a long-running
    consumer (the live {!Ptrng_monitor} subsystem, a future daemon)
    exposes fresh alarm totals without batch boundaries. *)

type alarm = { rct_alarm : bool; apt_alarm : bool }
(** Per-sample alarm verdicts of the two tests. *)

val monitor_create : cutoff_rct:int -> cutoff_apt:int -> window:int -> monitor
(** Fresh combined monitor from explicit cutoffs; see {!rct_cutoff}
    and {!apt_cutoff}. *)

val monitor_of_entropy :
  ?alpha_exp:int -> ?window:int -> h:float -> unit -> monitor
(** Combined monitor with both cutoffs derived from the claimed
    min-entropy [h] per bit ([alpha_exp] default 30, [window] default
    1024), as SP 800-90B prescribes. *)

val monitor_feed : monitor -> bool -> alarm
(** Feed one sample through both tests and the telemetry counters.
    Allocates the {!alarm} record; per-bit hot loops should use
    {!monitor_feed_flags}. *)

val monitor_feed_flags : monitor -> bool -> int
(** As {!monitor_feed}, but the verdict is an int bitmask — bit 0 set
    on an RCT alarm, bit 1 on an APT alarm — so the per-bit feed path
    ({!Ptrng_monitor}) stays allocation-free. *)

val monitor_samples : monitor -> int
(** Samples fed so far. *)

val monitor_alarms : monitor -> int * int
(** Running [(rct, apt)] alarm totals. *)

val scan : cutoff_rct:int -> cutoff_apt:int -> window:int -> bool array -> int * int
(** Run both monitors over a recorded stream; returns (rct alarms,
    apt alarms).  Thin wrapper over {!monitor_create}/{!monitor_feed} —
    the batch and streaming paths are the same code. *)
