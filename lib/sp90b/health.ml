let rct_cutoff ?(alpha_exp = 30) ~h () =
  if h <= 0.0 || h > 1.0 then invalid_arg "Health.rct_cutoff: h outside (0,1]";
  if alpha_exp <= 0 then invalid_arg "Health.rct_cutoff: alpha_exp <= 0";
  1 + int_of_float (Float.ceil (float_of_int alpha_exp /. h))

let apt_cutoff ?(alpha_exp = 30) ?(window = 1024) ~h () =
  if h <= 0.0 || h > 1.0 then invalid_arg "Health.apt_cutoff: h outside (0,1]";
  if window < 64 then invalid_arg "Health.apt_cutoff: window < 64";
  let p = 2.0 ** -.h in
  let log_alpha = -.float_of_int alpha_exp *. log 2.0 in
  (* Exact binomial upper tail in log space, scanned from the top. *)
  let logp = log p and logq = log (1.0 -. p) in
  let log_choose n k =
    Ptrng_stats.Special.log_gamma (float_of_int (n + 1))
    -. Ptrng_stats.Special.log_gamma (float_of_int (k + 1))
    -. Ptrng_stats.Special.log_gamma (float_of_int (n - k + 1))
  in
  let log_pmf k =
    log_choose window k +. (float_of_int k *. logp)
    +. (float_of_int (window - k) *. logq)
  in
  (* tail(c) = sum_{k >= c} pmf(k); find the smallest c with
     tail(c) <= alpha by accumulating downward from k = window. *)
  let tail = ref neg_infinity in
  let log_add a b =
    if a = neg_infinity then b
    else if b = neg_infinity then a
    else begin
      let hi = Float.max a b in
      hi +. log (exp (a -. hi) +. exp (b -. hi))
    end
  in
  let cutoff = ref (window + 1) in
  (try
     for k = window downto 0 do
       tail := log_add !tail (log_pmf k);
       if !tail > log_alpha then begin
         cutoff := k + 1;
         raise Exit
       end
     done
   with Exit -> ());
  !cutoff

(* [current]/[reference] below use an int encoding (-1 = none,
   0 = false, 1 = true) rather than [bool option]: the feed path runs
   once per raw bit, and a [Some] store there is a heap block per
   state transition (R7). *)
let[@inline] flag_of_bool b = if b then 1 else 0

type rct = { cutoff : int; mutable current : int; mutable count : int }

let rct_create ~cutoff =
  if cutoff < 2 then invalid_arg "Health.rct_create: cutoff < 2";
  { cutoff; current = -1; count = 0 }

let rct_feed t sample =
  let s = flag_of_bool sample in
  if t.current = s then t.count <- t.count + 1
  else begin
    t.current <- s;
    t.count <- 1
  end;
  t.count >= t.cutoff

type apt = {
  a_cutoff : int;
  window : int;
  mutable reference : int;  (* -1 = awaiting a reference bit *)
  mutable seen : int;
  mutable matches : int;
}

let apt_create ~cutoff ~window =
  if cutoff < 2 || cutoff > window then invalid_arg "Health.apt_create: bad cutoff";
  { a_cutoff = cutoff; window; reference = -1; seen = 0; matches = 0 }

let apt_feed t sample =
  if t.reference < 0 then begin
    t.reference <- flag_of_bool sample;
    t.seen <- 1;
    t.matches <- 1;
    false
  end
  else begin
    t.seen <- t.seen + 1;
    if flag_of_bool sample = t.reference then t.matches <- t.matches + 1;
    if t.seen >= t.window then begin
      let alarm = t.matches >= t.a_cutoff in
      t.reference <- -1;
      alarm
    end
    else false
  end

module Tm = Ptrng_telemetry.Registry

let samples_scanned_total =
  Tm.Counter.v ~help:"Bits fed through the continuous RCT/APT health scan."
    "ptrng_sp90b_health_samples_total"

let rct_alarms_total =
  Tm.Counter.v ~help:"Repetition-count health-test alarms raised by scan."
    "ptrng_sp90b_rct_alarms_total"

let apt_alarms_total =
  Tm.Counter.v ~help:"Adaptive-proportion health-test alarms raised by scan."
    "ptrng_sp90b_apt_alarms_total"

(* The combined continuous monitor: one RCT and one APT over the same
   stream, with the telemetry counters fed per sample — the single
   code path shared by the batch [scan] below and the live
   [Ptrng_monitor] subsystem (a long-running daemon must not wait for
   a batch boundary to expose its alarm totals). *)

type monitor = {
  m_rct : rct;
  m_apt : apt;
  mutable m_samples : int;
  mutable m_rct_alarms : int;
  mutable m_apt_alarms : int;
}

type alarm = { rct_alarm : bool; apt_alarm : bool }

let monitor_create ~cutoff_rct ~cutoff_apt ~window =
  {
    m_rct = rct_create ~cutoff:cutoff_rct;
    m_apt = apt_create ~cutoff:cutoff_apt ~window;
    m_samples = 0;
    m_rct_alarms = 0;
    m_apt_alarms = 0;
  }

let monitor_of_entropy ?alpha_exp ?(window = 1024) ~h () =
  let cutoff_rct = rct_cutoff ?alpha_exp ~h () in
  let cutoff_apt = apt_cutoff ?alpha_exp ~window ~h () in
  monitor_create ~cutoff_rct ~cutoff_apt ~window

(* Bit 0 = RCT alarm, bit 1 = APT alarm.  The int result is the
   per-bit spelling: live monitors feed every raw bit through here,
   and the [alarm] record of [monitor_feed] would be a fresh heap
   block per bit (R7). *)
let monitor_feed_flags t sample =
  let rct_alarm = rct_feed t.m_rct sample in
  let apt_alarm = apt_feed t.m_apt sample in
  t.m_samples <- t.m_samples + 1;
  if rct_alarm then t.m_rct_alarms <- t.m_rct_alarms + 1;
  if apt_alarm then t.m_apt_alarms <- t.m_apt_alarms + 1;
  if !Tm.on then begin
    Tm.Counter.incr samples_scanned_total;
    if rct_alarm then Tm.Counter.incr rct_alarms_total;
    if apt_alarm then Tm.Counter.incr apt_alarms_total
  end;
  (if rct_alarm then 1 else 0) lor (if apt_alarm then 2 else 0)

let monitor_feed t sample =
  let flags = monitor_feed_flags t sample in
  { rct_alarm = flags land 1 <> 0; apt_alarm = flags land 2 <> 0 }

let monitor_samples t = t.m_samples
let monitor_alarms t = (t.m_rct_alarms, t.m_apt_alarms)

let scan ~cutoff_rct ~cutoff_apt ~window bits =
  let m = monitor_create ~cutoff_rct ~cutoff_apt ~window in
  Array.iter (fun b -> ignore (monitor_feed m b)) bits;
  monitor_alarms m
