(** Min-entropy estimators in the style of NIST SP 800-90B (binary
    sources).

    The paper's warning — entropy claims built on an invalid
    independence assumption — is exactly the situation 90B's
    non-IID track exists for.  These estimators give empirical,
    assumption-light lower bounds on min-entropy per bit; applied to
    the simulated eRO-TRNG they complement the model-based entropy of
    [Ptrng_model.Entropy].

    All estimators return a per-bit min-entropy in [0, 1] computed from
    a 99% upper confidence bound on the relevant probability, as in the
    standard.  The binary specialisations of the collision and Markov
    estimators use the exact closed forms available for a two-letter
    alphabet (documented inline) rather than the generic numeric
    machinery of the full standard. *)

type estimate = {
  name : string;
  p_max : float;        (** Upper 99% bound on the exploited probability. *)
  min_entropy : float;  (** Per-bit min-entropy implied by [p_max]. *)
}

val most_common_value : bool array -> estimate
(** MCV estimator (90B §6.3.1): upper-bound the frequency of the most
    common symbol. @raise Invalid_argument on fewer than 100 bits. *)

val collision : bool array -> estimate
(** Collision estimator (90B §6.3.2, binary closed form).  For a binary
    source the minimal window containing a repeat has length 2 (prob
    p^2 + q^2) or 3, so [E(t) = 2 + 2 p q]; the lower confidence bound
    on the observed mean inverts to an upper bound on p.
    @raise Invalid_argument on fewer than 300 bits. *)

val markov : ?steps:int -> bool array -> estimate
(** Markov estimator (90B §6.3.3, binary): upper-bound the initial and
    transition probabilities, then dynamic-programming the most likely
    [steps]-bit trajectory (default 128); min-entropy is
    [-log2(P)/steps].  Catches the serial dependence that MCV misses —
    the estimator most sensitive to the paper's flicker-induced
    correlations. @raise Invalid_argument on fewer than 1000 bits. *)

val t_tuple : ?max_t:int -> bool array -> estimate
(** T-tuple estimator (90B §6.3.5): for every tuple length t (up to
    [max_t], default 16) whose most frequent tuple still appears >= 35
    times, bound the per-bit probability by [max_count/(n-t+1)]^(1/t);
    take the most pessimistic. @raise Invalid_argument on fewer than
    1000 bits. *)

val run_all : ?domains:int -> bool array -> estimate list * float
(** All estimators plus the 90B-style aggregate: the minimum of the
    individual min-entropies.  Estimators run as independent tasks on
    a {!Ptrng_exec.Pool}; the result is identical for every
    [?domains] value. *)
