(** Log-bucketed histogram with approximate quantiles.

    Bucket upper bounds form a geometric grid: [lo * 10^(i/bpd)] for
    [i = 0 .. n-1], plus a final +infinity bucket.  Any observation is
    a single array increment; a quantile query walks the cumulative
    counts and interpolates geometrically inside the winning bucket, so
    the relative error is bounded by one bucket ratio
    ([10^(1/buckets_per_decade)]). *)

type t

val create : ?lo:float -> ?hi:float -> ?buckets_per_decade:int -> unit -> t
(** Defaults: [lo = 1e-9], [hi = 1e9], [buckets_per_decade = 5].
    @raise Invalid_argument unless [0 < lo < hi] and
    [buckets_per_decade > 0]. *)

val observe : t -> float -> unit
(** Record one value.  Non-finite values are dropped; values [<= lo]
    land in the first bucket, values above [hi] in the +inf bucket. *)

val count : t -> int
(** Number of recorded (finite) observations. *)

val sum : t -> float
(** Sum of recorded observations (exact, not bucketed). *)

val min_value : t -> float
(** [nan] while empty. *)

val max_value : t -> float
(** [nan] while empty. *)

val mean : t -> float
(** [nan] while empty. *)

val quantile : t -> float -> float
(** [quantile h q] for [q] in [0,1]; [nan] while empty.  The extremes
    are exact: [q = 0.0] returns {!min_value} and [q = 1.0] returns
    {!max_value} (no in-bucket interpolation).
    @raise Invalid_argument on [q] outside [0,1]. *)

val bucket_bounds : t -> float array
(** Finite upper bounds, ascending (the +inf bucket is implicit). *)

val bucket_counts : t -> int array
(** Per-bucket counts, one longer than [bucket_bounds] (last = +inf). *)

val reset : t -> unit
(** Zero all buckets and running aggregates. *)
