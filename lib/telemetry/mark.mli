(** Named instant markers on the trace timeline.

    Where {!Series} records trajectories (counter tracks), a mark
    records a single event — a verdict transition, a fail-safe
    recovery, an incident freeze — that {!Trace_export} renders as a
    Perfetto instant (["i"]) event aligned with the span and counter
    tracks.  Like every telemetry primitive, emitting is a no-op while
    telemetry is disabled and is safe from any domain. *)

val emit : ?args:(string * Json.t) list -> string -> unit
(** Record one instant stamped with {!Clock.now}.  [args] become the
    event's [args] object in the trace. *)

val emit_at : ?args:(string * Json.t) list -> t_s:float -> string -> unit
(** Same with an explicit timestamp (seconds, {!Clock.now} origin).
    Non-finite timestamps are dropped. *)

val all : unit -> (string * float * (string * Json.t) list) list
(** Every recorded [(name, t_s, args)] mark, oldest first. *)

val reset : unit -> unit
(** Drop all recorded marks. *)
