(* Chrome/Perfetto "trace_event" (catapult JSON) exporter.

   The span trees (main + worker-domain roots) become complete "X"
   events — one track per domain, tid = domain id — and the runtime
   profiler's sample series plus the registry gauges become "C"
   counter events.  The output loads directly in ui.perfetto.dev and
   chrome://tracing; see docs/PROFILING.md. *)

let usec s = s *. 1e6

let word_mib = float_of_int (Sys.word_size / 8) /. 1048576.0

(* Earliest timestamp across spans, samples and series: the trace
   origin, so ts values start near zero instead of at the wall-clock
   epoch. *)
let origin_of ~spans ~samples ~series ~marks =
  let t = ref infinity in
  let rec walk (s : Span.t) =
    if s.Span.start_s < !t then t := s.Span.start_s;
    List.iter walk s.Span.children
  in
  List.iter walk spans;
  List.iter
    (fun (s : Runtime_profile.sample) ->
      if s.Runtime_profile.t_s < !t then t := s.Runtime_profile.t_s)
    samples;
  List.iter
    (fun (_, pts) -> List.iter (fun (t_s, _) -> if t_s < !t then t := t_s) pts)
    series;
  List.iter (fun (_, t_s, _) -> if t_s < !t then t := t_s) marks;
  if Float.is_finite !t then !t else 0.0

let span_events ~pid ~origin spans =
  let rec walk acc (s : Span.t) =
    let args =
      [
        ("wall_s", Json.num s.Span.wall_s);
        ("alloc_bytes", Json.num s.Span.alloc_bytes);
      ]
      @ List.rev s.Span.attrs
    in
    let ev =
      Json.Obj
        [
          ("name", Json.String s.Span.name);
          ("cat", Json.String "span");
          ("ph", Json.String "X");
          ("ts", Json.num (usec (s.Span.start_s -. origin)));
          ("dur", Json.num (usec s.Span.wall_s));
          ("pid", Json.Int pid);
          ("tid", Json.Int s.Span.tid);
          ("args", Json.Obj args);
        ]
    in
    List.fold_left walk (ev :: acc) s.Span.children
  in
  List.rev (List.fold_left walk [] spans)

let counter ~pid ~ts name args =
  Json.Obj
    [
      ("name", Json.String name);
      ("cat", Json.String "counter");
      ("ph", Json.String "C");
      ("ts", Json.num (usec ts));
      ("pid", Json.Int pid);
      ("tid", Json.Int 0);
      ("args", Json.Obj args);
    ]

let sample_events ~pid ~origin samples =
  List.concat_map
    (fun (s : Runtime_profile.sample) ->
      let ts = s.Runtime_profile.t_s -. origin in
      let gc =
        [
          counter ~pid ~ts "gc minor collections"
            [ ("value", Json.Int s.Runtime_profile.minor_collections) ];
          counter ~pid ~ts "gc major collections"
            [ ("value", Json.Int s.Runtime_profile.major_collections) ];
          counter ~pid ~ts "gc heap MiB"
            [
              ( "value",
                Json.num (float_of_int s.Runtime_profile.heap_words *. word_mib) );
            ];
          counter ~pid ~ts "gc promoted MiB"
            [ ("value", Json.num (s.Runtime_profile.promoted_words *. word_mib)) ];
        ]
      in
      let pool =
        if Array.length s.Runtime_profile.pool_tasks = 0 then []
        else
          [
            counter ~pid ~ts "pool tasks"
              (Array.to_list
                 (Array.mapi
                    (fun slot n -> (Printf.sprintf "w%d" slot, Json.Int n))
                    s.Runtime_profile.pool_tasks));
          ]
      in
      gc @ pool)
    samples

(* Every Series sample as a counter event: one track per series, the
   whole trajectory (live r_N, control-chart statistics, ...). *)
let series_events ~pid ~origin series =
  List.concat_map
    (fun (name, pts) ->
      List.map
        (fun (t_s, value) ->
          counter ~pid ~ts:(t_s -. origin) name [ ("value", Json.num value) ])
        pts)
    series

(* Every Mark as a global-scope instant event: alarm and recovery
   markers drawn as vertical flags across the counter tracks. *)
let mark_events ~pid ~origin marks =
  List.map
    (fun (name, t_s, args) ->
      Json.Obj
        [
          ("name", Json.String name);
          ("cat", Json.String "mark");
          ("ph", Json.String "i");
          ("s", Json.String "g");
          ("ts", Json.num (usec (t_s -. origin)));
          ("pid", Json.Int pid);
          ("tid", Json.Int 0);
          ("args", Json.Obj args);
        ])
    marks

(* Every registry gauge as a (single-point) counter track at the end
   of the trace, so values that are only set once still show up. *)
let gauge_events ~pid ~ts =
  List.filter_map
    (function
      | Registry.Gauge (name, _, v) ->
        Some (counter ~pid ~ts name [ ("value", Json.num v) ])
      | Registry.Counter _ | Registry.Histogram _ -> None)
    (Registry.all ())

let metadata ~pid ~tids =
  let meta name tid args =
    Json.Obj
      ([
         ("name", Json.String name);
         ("ph", Json.String "M");
         ("pid", Json.Int pid);
       ]
      @ (match tid with None -> [] | Some t -> [ ("tid", Json.Int t) ])
      @ [ ("args", Json.Obj args) ])
  in
  meta "process_name" None [ ("name", Json.String "ptrng") ]
  :: List.concat_map
       (fun tid ->
         let label = if tid = 0 then "domain 0 (main)" else Printf.sprintf "domain %d" tid in
         [
           meta "thread_name" (Some tid) [ ("name", Json.String label) ];
           meta "thread_sort_index" (Some tid) [ ("sort_index", Json.Int tid) ];
         ])
       tids

let to_json () =
  let pid = Unix.getpid () in
  let spans = Span.roots () @ Span.worker_roots () in
  let samples = Runtime_profile.samples () in
  let series = Series.all () in
  let marks = Mark.all () in
  let origin = origin_of ~spans ~samples ~series ~marks in
  let tids =
    let rec collect acc (s : Span.t) =
      List.fold_left collect (s.Span.tid :: acc) s.Span.children
    in
    List.sort_uniq compare (List.fold_left collect [] spans)
  in
  let end_ts =
    let span_end (s : Span.t) = s.Span.start_s -. origin +. s.Span.wall_s in
    List.fold_left (fun acc s -> Float.max acc (span_end s)) 0.0 spans
  in
  let events =
    metadata ~pid ~tids
    @ span_events ~pid ~origin spans
    @ sample_events ~pid ~origin samples
    @ series_events ~pid ~origin series
    @ mark_events ~pid ~origin marks
    @ gauge_events ~pid ~ts:end_ts
  in
  Json.Obj
    [
      ("traceEvents", Json.List events);
      ("displayTimeUnit", Json.String "ms");
      ( "otherData",
        Json.Obj
          [
            ("schema", Json.String "ptrng-trace/1");
            ("generator", Json.String "ptrng_telemetry.trace_export");
          ] );
    ]

let write path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Json.to_string (to_json ()));
      output_char oc '\n')
