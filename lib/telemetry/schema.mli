(** Central registry of the repo's JSON wire-format schema tags.

    Every document the repo emits carries a ["schema"] field of the
    form ["ptrng-<name>/<version>"].  This module is the single source
    of truth for those tags: emitters call {!id} instead of spelling
    the literal, and the R9 lint rule flags any remaining literal that
    is unregistered or version-skewed.  See docs/STATIC_ANALYSIS.md. *)

type entry = {
  name : string;     (** Registry key, e.g. ["bench"]. *)
  version : int;     (** Current wire version. *)
  doc : string;      (** One-line description of the document. *)
}
(** One registered wire format. *)

val all : entry list
(** Every registered schema, sorted by name. *)

val find : string -> entry option
(** [find name] is the registry entry for [name], if registered. *)

val version : string -> int option
(** [version name] is the current version of [name], if registered. *)

val tag : string -> int -> string
(** [tag name v] is ["ptrng-<name>/<v>"] — no registry check; prefer
    {!id} in emitters. *)

val id : string -> string
(** [id name] is the registered tag ["ptrng-<name>/<version>"].
    @raise Invalid_argument if [name] is not registered. *)

val scan : string -> (string * int) list
(** [scan s] is every [(name, version)] occurrence of a
    ["ptrng-<name>/<version>"] tag inside [s], left to right — the
    scanner the R9 rule runs over string literals. *)
