type t = {
  lo : float;
  log10_lo : float;
  bpd : int;
  bounds : float array;       (* finite upper bounds, ascending *)
  counts : int array;         (* length bounds + 1; last = +inf bucket *)
  mutable total : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create ?(lo = 1e-9) ?(hi = 1e9) ?(buckets_per_decade = 5) () =
  if not (lo > 0.0 && hi > lo) then invalid_arg "Histogram.create: need 0 < lo < hi";
  if buckets_per_decade <= 0 then
    invalid_arg "Histogram.create: buckets_per_decade <= 0";
  let bpd = buckets_per_decade in
  let n =
    1 + int_of_float (Float.ceil (log10 (hi /. lo) *. float_of_int bpd -. 1e-9))
  in
  let bounds =
    Array.init n (fun i -> lo *. (10.0 ** (float_of_int i /. float_of_int bpd)))
  in
  {
    lo;
    log10_lo = log10 lo;
    bpd;
    bounds;
    counts = Array.make (n + 1) 0;
    total = 0;
    sum = 0.0;
    min_v = Float.nan;
    max_v = Float.nan;
  }

let bucket_index h v =
  if v <= h.lo then 0
  else begin
    let i =
      int_of_float
        (Float.ceil ((log10 v -. h.log10_lo) *. float_of_int h.bpd -. 1e-9))
    in
    if i >= Array.length h.bounds then Array.length h.bounds else max 0 i
  end

let observe h v =
  if Float.is_finite v then begin
    let i = bucket_index h v in
    h.counts.(i) <- h.counts.(i) + 1;
    h.total <- h.total + 1;
    h.sum <- h.sum +. v;
    if Float.is_nan h.min_v || v < h.min_v then h.min_v <- v;
    if Float.is_nan h.max_v || v > h.max_v then h.max_v <- v
  end

let count h = h.total
let sum h = h.sum
let min_value h = h.min_v
let max_value h = h.max_v
let mean h = if h.total = 0 then Float.nan else h.sum /. float_of_int h.total

let quantile h q =
  if not (q >= 0.0 && q <= 1.0) then invalid_arg "Histogram.quantile: q outside [0,1]";
  if h.total = 0 then Float.nan
  else if q = 0.0 then h.min_v
  else if q = 1.0 then h.max_v
  else begin
    let rank = q *. float_of_int h.total in
    let n = Array.length h.bounds in
    let rec find i acc =
      if i > n then n
      else begin
        let acc' = acc + h.counts.(i) in
        if float_of_int acc' >= rank && h.counts.(i) > 0 then i else find (i + 1) acc'
      end
    in
    let i = find 0 0 in
    if i >= n then h.max_v (* +inf bucket: best available point estimate *)
    else if i = 0 then Float.min h.bounds.(0) h.max_v
    else begin
      (* Geometric interpolation between the bucket's bounds by the
         fraction of its observations below the requested rank. *)
      let below = ref 0 in
      for j = 0 to i - 1 do
        below := !below + h.counts.(j)
      done;
      let inside = h.counts.(i) in
      let frac =
        if inside = 0 then 1.0
        else Float.max 0.0 (Float.min 1.0 ((rank -. float_of_int !below) /. float_of_int inside))
      in
      let lo_b = h.bounds.(i - 1) and hi_b = h.bounds.(i) in
      lo_b *. ((hi_b /. lo_b) ** frac)
    end
  end

let bucket_bounds h = Array.copy h.bounds
let bucket_counts h = Array.copy h.counts

let reset h =
  Array.fill h.counts 0 (Array.length h.counts) 0;
  h.total <- 0;
  h.sum <- 0.0;
  h.min_v <- Float.nan;
  h.max_v <- Float.nan
