(** JSONL structured-event sink: one JSON object per line, appended as
    events happen, so a long Monte-Carlo run can be watched mid-flight
    with [tail -f].  At most one log is open per process. *)

val open_ : string -> unit
(** Open (truncate) [path] as the process event log.  Closes any
    previously open log. *)

val close : unit -> unit
(** Flush and close the current log; no-op when none is open. *)

val is_open : unit -> bool
(** Whether a log file is currently open. *)

val emit : ?kind:string -> (string * Json.t) list -> unit
(** Append one event line [{"ev": kind, "t": <seconds>, ...fields}].
    Dropped silently when no log is open or telemetry is disabled. *)
