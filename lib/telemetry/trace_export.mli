(** Chrome/Perfetto [trace_event] (catapult JSON) export.

    Converts the collected span trees into a timeline that loads in
    {{:https://ui.perfetto.dev}Perfetto} and [chrome://tracing]:

    - every span ({!Span.roots} and {!Span.worker_roots}) becomes a
      complete ["X"] event with [ts]/[dur] in microseconds relative to
      the earliest recorded timestamp, [pid] = process id and
      [tid] = the domain the span ran on — one track per domain;
    - every {!Runtime_profile} sample becomes ["C"] counter events
      (GC collections, heap/promoted MiB, per-worker pool tasks);
    - every {!Series} sample becomes a ["C"] counter event, one track
      per series — monitor state (live r_N, control-chart statistics)
      shows up as a curve aligned with the span timeline;
    - every {!Mark} becomes a global-scope instant (["i"]) event — the
      monitor's verdict transitions, recoveries and incident freezes
      show up as vertical flags across the counter tracks;
    - every registry gauge is emitted as a final single-point counter
      track;
    - ["M"] metadata events name the process and the domain tracks.

    Wired to the [--perfetto-out FILE] flag of [bin/repro.exe] and
    [bench/main.exe]; see docs/PROFILING.md for how to read the
    result. *)

val to_json : unit -> Json.t
(** The whole trace as
    [{"traceEvents": [...], "displayTimeUnit": "ms", "otherData": {...}}]. *)

val write : string -> unit
(** Compact {!to_json} to [path] (trailing newline).
    @raise Sys_error if the file cannot be written. *)
