(** Render the registry (and trace tree) for humans and machines.

    All sinks read {!Registry.all}, which is empty while telemetry is
    disabled — no-op mode can never leak metrics into output. *)

val to_human : unit -> string
(** Metrics table plus span tree, for terminals. *)

val valid_metric_name : string -> bool
(** Whether a name matches the Prometheus metric-name grammar
    [[a-zA-Z_:][a-zA-Z0-9_:]*]. *)

val sanitize_metric_name : string -> string
(** The name itself when {!valid_metric_name}; otherwise every invalid
    character becomes ['_'] (with a ['_'] prefix for a leading digit),
    so one bad registration cannot corrupt the whole exposition. *)

val to_prometheus : unit -> string
(** Prometheus text exposition format 0.0.4: [# HELP]/[# TYPE] lines,
    counters/gauges as bare samples, histograms as cumulative
    [_bucket{le="..."}] samples with [_sum] and [_count].  HELP text is
    escaped ([\ ] and line breaks) and metric names pass through
    {!sanitize_metric_name}, so the live [/metrics] endpoint always
    serves spec-clean text. *)

val snapshot_json : unit -> Json.t
(** [{"schema": "ptrng-telemetry/1", "metrics": {...}, "spans": [...]}];
    each histogram carries count/sum/min/max/mean and p50/p90/p99. *)

val write_snapshot : string -> unit
(** Pretty-printed {!snapshot_json} to a file (with trailing newline). *)

val write_prometheus : string -> unit
(** {!to_prometheus} to a file. *)
