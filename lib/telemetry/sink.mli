(** Render the registry (and trace tree) for humans and machines.

    All sinks read {!Registry.all}, which is empty while telemetry is
    disabled — no-op mode can never leak metrics into output. *)

val to_human : unit -> string
(** Metrics table plus span tree, for terminals. *)

val to_prometheus : unit -> string
(** Prometheus text exposition format 0.0.4: [# HELP]/[# TYPE] lines,
    counters/gauges as bare samples, histograms as cumulative
    [_bucket{le="..."}] samples with [_sum] and [_count]. *)

val snapshot_json : unit -> Json.t
(** [{"schema": "ptrng-telemetry/1", "metrics": {...}, "spans": [...]}];
    each histogram carries count/sum/min/max/mean and p50/p90/p99. *)

val write_snapshot : string -> unit
(** Pretty-printed {!snapshot_json} to a file (with trailing newline). *)

val write_prometheus : string -> unit
(** {!to_prometheus} to a file. *)
