type t = {
  s_name : string;
  s_mu : Mutex.t;
  mutable s_points : (float * float) list; (* newest first *)
}

(* Registration mirrors Registry: name-keyed table plus an order list
   so sinks see series in registration order. *)
let table : (string, t) Hashtbl.t = Hashtbl.create 16
let order : t list ref = ref []
let table_mu = Mutex.create ()

(* [help] is accepted for symmetry with the registry constructors but
   not stored: counter tracks have no help channel in the trace. *)
let v ?help:_ name =
  Mutex.protect table_mu (fun () ->
      match Hashtbl.find_opt table name with
      | Some s -> s
      | None ->
        let s = { s_name = name; s_mu = Mutex.create (); s_points = [] } in
        Hashtbl.add table name s;
        order := s :: !order;
        s)

let record_at s ~t_s value =
  if !Registry.on && Float.is_finite value && Float.is_finite t_s then
    Mutex.protect s.s_mu (fun () -> s.s_points <- (t_s, value) :: s.s_points)

let record s value = record_at s ~t_s:(Clock.now ()) value

let points s = Mutex.protect s.s_mu (fun () -> List.rev s.s_points)

let all () =
  let series = Mutex.protect table_mu (fun () -> List.rev !order) in
  List.map (fun s -> (s.s_name, points s)) series

let reset () =
  let series = Mutex.protect table_mu (fun () -> !order) in
  List.iter (fun s -> Mutex.protect s.s_mu (fun () -> s.s_points <- [])) series
