(** Process-global metric registry.

    Telemetry is OFF by default: every instrumentation site guards on
    {!on}, so a disabled build pays one boolean load per event and the
    sinks see an empty registry.  Naming scheme: [ptrng_<lib>_<name>],
    with Prometheus-style [_total] suffix for counters and base-unit
    suffixes ([_seconds], [_bytes]) for histograms — see
    docs/OBSERVABILITY.md.

    Metric updates are domain-safe: counters are atomic, histogram
    observations are serialized per histogram, and gauge stores are
    word-sized last-write-wins — instrumented code may run inside
    [Ptrng_exec] worker domains without losing events (see
    docs/PARALLELISM.md). *)

val on : bool ref
(** Fast-path flag.  Mutate only through {!enable}/{!disable}. *)

val enable : unit -> unit
(** Turn telemetry on. *)

val disable : unit -> unit
(** Turn telemetry off; instrumentation sites become no-ops. *)

val enabled : unit -> bool
(** Current state of {!on}. *)

val reset : unit -> unit
(** Zero every registered metric (values, not registrations). *)

val clear : unit -> unit
(** Drop all registrations — for tests; live handles created before
    [clear] keep counting into detached metrics and a later [v] with
    the same name returns a fresh handle. *)

module Counter : sig
  type t

  val v : ?help:string -> string -> t
  (** Register (or look up) the counter [name].  Idempotent: the same
      name always yields the same handle. *)

  val add : t -> int -> unit
  (** [add c n] adds [n].  No-op unless telemetry is enabled; the
      allocation-free spelling for hot callers (no option at the call
      site).  @raise Invalid_argument on negative [n]. *)

  val incr : ?by:int -> t -> unit
  (** No-op unless telemetry is enabled.  [by] defaults to 1.
      @raise Invalid_argument on negative [by]. *)

  val value : t -> int
end

module Gauge : sig
  type t

  val v : ?help:string -> string -> t

  val set : t -> float -> unit
  (** No-op unless telemetry is enabled. *)

  val value : t -> float
end

module Hist : sig
  type t

  val v :
    ?help:string ->
    ?lo:float ->
    ?hi:float ->
    ?buckets_per_decade:int ->
    string ->
    t
  (** Bucket parameters are fixed at first registration; later [v]
      calls with the same name return the existing histogram. *)

  val observe : t -> float -> unit
  (** No-op unless enabled. *)

  val time : t -> (unit -> 'a) -> 'a
  (** Run the thunk, observing its wall time in seconds (only when
      enabled; the clock is not read otherwise). *)

  val histogram : t -> Histogram.t
end

type metric =
  | Counter of string * string * int                  (** name, help, value *)
  | Gauge of string * string * float
  | Histogram of string * string * Histogram.t

val all : unit -> metric list
(** Registered metrics in registration order; [[]] while disabled, so
    no metric can leak into any sink in no-op mode. *)
