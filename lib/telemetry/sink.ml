let quantiles = [ (0.5, "p50"); (0.9, "p90"); (0.99, "p99") ]

let to_human () =
  let b = Buffer.create 1024 in
  let metrics = Registry.all () in
  if metrics <> [] then begin
    Buffer.add_string b "metrics:\n";
    List.iter
      (fun m ->
        match m with
        | Registry.Counter (name, _, v) ->
          Buffer.add_string b (Printf.sprintf "  %-48s %d\n" name v)
        | Registry.Gauge (name, _, v) ->
          Buffer.add_string b (Printf.sprintf "  %-48s %g\n" name v)
        | Registry.Histogram (name, _, h) ->
          if Histogram.count h = 0 then
            Buffer.add_string b (Printf.sprintf "  %-48s (empty)\n" name)
          else
            Buffer.add_string b
              (Printf.sprintf "  %-48s n=%d mean=%.3g p50=%.3g p99=%.3g max=%.3g\n"
                 name (Histogram.count h) (Histogram.mean h)
                 (Histogram.quantile h 0.5) (Histogram.quantile h 0.99)
                 (Histogram.max_value h)))
      metrics
  end;
  (match Span.roots () with
  | [] -> ()
  | spans ->
    Buffer.add_string b "spans:\n";
    Buffer.add_string b (Format.asprintf "%a" Span.pp spans));
  Buffer.contents b

(* Prometheus sample values are floats; print integers without the
   decimal point as the exposition format allows. *)
let prom_value v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

(* Exposition-format HELP escaping: backslash first (so escapes are
   unambiguous), then the line breaks that would terminate the sample
   line early. *)
let prom_escape_help s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]* .  Our own naming
   scheme (ptrng_<lib>_<name>) always satisfies this; the check guards
   the live /metrics endpoint against a future dynamically built name
   corrupting the exposition. *)
let valid_metric_name name =
  let ok_head c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':' in
  let ok_rest c = ok_head c || (c >= '0' && c <= '9') in
  name <> ""
  && ok_head name.[0]
  && (let valid = ref true in
      String.iteri (fun i c -> if i > 0 && not (ok_rest c) then valid := false) name;
      !valid)

(* Invalid characters are rewritten to '_' (and a leading digit gets a
   '_' prefix) rather than dropping the metric: a mangled name is
   visible on the endpoint, a silently missing one is not. *)
let sanitize_metric_name name =
  if valid_metric_name name then name
  else begin
    let mapped =
      String.map
        (fun c ->
          if
            (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
            || (c >= '0' && c <= '9')
            || c = '_' || c = ':'
          then c
          else '_')
        name
    in
    if mapped = "" then "_"
    else if mapped.[0] >= '0' && mapped.[0] <= '9' then "_" ^ mapped
    else mapped
  end

let to_prometheus () =
  let b = Buffer.create 1024 in
  let header name help kind =
    if help <> "" then
      Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name (prom_escape_help help));
    Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name kind)
  in
  List.iter
    (fun m ->
      match m with
      | Registry.Counter (name, help, v) ->
        let name = sanitize_metric_name name in
        header name help "counter";
        Buffer.add_string b (Printf.sprintf "%s %d\n" name v)
      | Registry.Gauge (name, help, v) ->
        let name = sanitize_metric_name name in
        header name help "gauge";
        Buffer.add_string b (Printf.sprintf "%s %s\n" name (prom_value v))
      | Registry.Histogram (name, help, h) ->
        let name = sanitize_metric_name name in
        header name help "histogram";
        let bounds = Histogram.bucket_bounds h in
        let counts = Histogram.bucket_counts h in
        let acc = ref 0 in
        Array.iteri
          (fun i ub ->
            acc := !acc + counts.(i);
            Buffer.add_string b
              (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" name (prom_value ub) !acc))
          bounds;
        acc := !acc + counts.(Array.length counts - 1);
        Buffer.add_string b (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" name !acc);
        Buffer.add_string b
          (Printf.sprintf "%s_sum %s\n" name (prom_value (Histogram.sum h)));
        Buffer.add_string b (Printf.sprintf "%s_count %d\n" name (Histogram.count h)))
    (Registry.all ());
  Buffer.contents b

let hist_json h =
  let stats =
    [
      ("count", Json.Int (Histogram.count h));
      ("sum", Json.num (Histogram.sum h));
      ("min", Json.num (Histogram.min_value h));
      ("max", Json.num (Histogram.max_value h));
      ("mean", Json.num (Histogram.mean h));
    ]
  in
  let qs =
    List.map (fun (q, label) -> (label, Json.num (Histogram.quantile h q))) quantiles
  in
  Json.Obj (stats @ qs)

let snapshot_json () =
  let metrics =
    List.map
      (fun m ->
        match m with
        | Registry.Counter (name, _, v) -> (name, Json.Int v)
        | Registry.Gauge (name, _, v) -> (name, Json.num v)
        | Registry.Histogram (name, _, h) -> (name, hist_json h))
      (Registry.all ())
  in
  Json.Obj
    [
      ("schema", Json.String "ptrng-telemetry/1");
      ("metrics", Json.Obj metrics);
      ("spans", Json.List (List.map Span.to_json (Span.roots ())));
    ]

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let write_snapshot path =
  write_file path (Json.to_string_pretty (snapshot_json ()) ^ "\n")

let write_prometheus path = write_file path (to_prometheus ())
