let last = ref neg_infinity

(* No monotonic clock in the stdlib/unix pairing shipped here; clamp
   gettimeofday so NTP steps can never produce a negative span. *)
let now () =
  let t = Unix.gettimeofday () in
  if t > !last then last := t;
  !last

let allocated_bytes () = Gc.allocated_bytes ()
