(** Nested monotonic spans.

    [with_ ~name f] times [f], records the allocation delta
    ([Gc.allocated_bytes]) and attaches the span to the enclosing one,
    building a trace tree per top-level span.  Disabled telemetry makes
    [with_] a bare call of [f].  Exceptions propagate; the span is
    still closed and recorded with whatever elapsed.

    Every span records its start time ({!Clock.now}) and the id of the
    domain it was opened on, so the tree can be replayed on a timeline
    ({!Trace_export}).  The open-span stack is domain-local: spans
    opened inside [Ptrng_exec] worker domains nest and time correctly
    within that domain.  Worker-domain {e root} spans are kept on a
    separate list ({!worker_roots}) rather than spliced into the main
    tree — the tree collected by {!roots} belongs to the main domain,
    whose enclosing span accounts for the whole fork-join section (see
    docs/PARALLELISM.md). *)

type t = {
  name : string;
  tid : int;                    (** Id of the domain the span ran on. *)
  mutable start_s : float;      (** {!Clock.now} at open. *)
  mutable wall_s : float;       (** Total wall time, seconds. *)
  mutable alloc_bytes : float;  (** Heap bytes allocated inside. *)
  mutable attrs : (string * Json.t) list;  (** Newest first. *)
  mutable children : t list;    (** In start order. *)
}

val with_ : name:string -> (unit -> 'a) -> 'a
(** Time the thunk as a span named [name] nested under the enclosing
    open span; the one way spans are opened and closed. *)

val set_attr : string -> Json.t -> unit
(** Attach a key/value to the innermost open span (replacing any
    previous value for the key); no-op outside a span or disabled. *)

val roots : unit -> t list
(** Completed main-domain top-level spans, in completion order. *)

val worker_roots : unit -> t list
(** Completed top-level spans of {e worker} domains, in completion
    order across all domains.  Never part of {!roots}; each carries
    the worker's [tid]. *)

val reset : unit -> unit
(** Forget completed spans, main and worker (open spans unaffected). *)

val to_json : t -> Json.t
(** Recursive span object as embedded in [ptrng-telemetry/1]
    snapshots. *)

val pp : Format.formatter -> t list -> unit
(** Indented text tree with wall time, share of parent and allocation. *)
