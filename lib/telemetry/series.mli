(** Named time series: timestamped value samples that {!Trace_export}
    renders as Perfetto counter tracks.

    Gauges only keep the latest value; a series keeps the whole
    trajectory, so slowly evolving monitor state (live r_N, control
    chart statistics, alarm rates) shows up in traces as a curve
    aligned with the span timeline instead of a single end-of-run
    point.  Like every telemetry primitive, recording is a no-op while
    telemetry is disabled, and recording from worker domains is safe
    (each series carries its own lock). *)

type t
(** Handle to one registered series. *)

val v : ?help:string -> string -> t
(** Register (or look up) the series [name].  Idempotent: the same
    name always yields the same handle. *)

val record : t -> float -> unit
(** Append one sample stamped with {!Clock.now}.  No-op while
    telemetry is disabled; non-finite values are dropped. *)

val record_at : t -> t_s:float -> float -> unit
(** Append one sample with an explicit timestamp (seconds, same origin
    as {!Clock.now}).  Same no-op and non-finite rules as {!record}. *)

val points : t -> (float * float) list
(** Recorded [(t_s, value)] samples of one series, oldest first. *)

val all : unit -> (string * (float * float) list) list
(** Every registered series with its samples, in registration order.
    Series that never recorded a point are included (empty list). *)

val reset : unit -> unit
(** Drop the recorded samples of every series (registrations stay). *)
