(** Time and allocation probes for the span tracer. *)

val now : unit -> float
(** Seconds since an arbitrary origin, guaranteed non-decreasing within
    the process (wall clock, clamped against backwards steps). *)

val allocated_bytes : unit -> float
(** Total bytes allocated on the OCaml heap so far
    ([Gc.allocated_bytes]); differences give per-span allocation. *)
