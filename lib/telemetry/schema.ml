(* Central registry of every wire-format schema tag the repo emits.
   A schema tag is the string "ptrng-<name>/<version>" carried in the
   "schema" field of a JSON document.  Emitters build the tag through
   {!id} instead of repeating the literal, and the R9 lint rule checks
   that any literal that still looks like a tag matches this table —
   so a version bump happens in exactly one place and skewed emitters
   cannot drift silently. *)

type entry = { name : string; version : int; doc : string }

(* Sorted by name so the listing (and any iteration) is stable. *)
let all =
  [
    { name = "bench"; version = 2;
      doc = "bench report: sections, kernels, telemetry snapshot" };
    { name = "bench-history"; version = 1;
      doc = "one-line bench summary appended to the history JSONL" };
    { name = "callgraph"; version = 1;
      doc = "ptrng-lint --graph-out dump: nodes, edges, SCCs" };
    { name = "incident"; version = 1;
      doc = "frozen flight-recorder bundle: trigger, rings, configs" };
    { name = "incident-summary"; version = 1;
      doc = "incident listing row: trigger and stream positions" };
    { name = "incidents"; version = 1;
      doc = "GET /incidents index: summaries of frozen bundles" };
    { name = "lint"; version = 1;
      doc = "ptrng-lint report: findings, counts, rules" };
    { name = "lint-baseline"; version = 1;
      doc = "accepted-finding fingerprints with per-entry notes" };
    { name = "monitor-health"; version = 1;
      doc = "GET /health document: verdict, charts, live r_N" };
    { name = "postmortem"; version = 1;
      doc = "incident replay outcome: segment and full-replay checks" };
    { name = "scenario"; version = 1;
      doc = "scenario run report: detection scores per workload" };
    { name = "telemetry"; version = 1;
      doc = "metrics + spans snapshot (Sink.to_json)" };
    { name = "trace"; version = 1;
      doc = "Chrome/Perfetto catapult trace (Trace_export)" };
  ]

let find name = List.find_opt (fun e -> e.name = name) all

let version name = Option.map (fun e -> e.version) (find name)

let tag name version = Printf.sprintf "ptrng-%s/%d" name version

let id name =
  match find name with
  | Some e -> tag e.name e.version
  | None -> invalid_arg (Printf.sprintf "Schema.id: unregistered schema %S" name)

(* ------------------------------------------------------------------ *)
(* Literal scanning (used by the R9 lint rule)                         *)
(* ------------------------------------------------------------------ *)

let is_name_char c = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-'
let is_digit c = c >= '0' && c <= '9'

(* Occurrences of "ptrng-<name>/<version>" inside [s], left to right.
   The name grammar is [a-z0-9-]+ and the version [0-9]+, mirroring
   what every emitter actually writes. *)
let scan s =
  let n = String.length s in
  let marker = "ptrng-" in
  let mlen = String.length marker in
  let rec span p pred = if p < n && pred s.[p] then span (p + 1) pred else p in
  let rec go acc i =
    if i + mlen >= n then List.rev acc
    else if String.sub s i mlen = marker then begin
      let name_start = i + mlen in
      let name_end = span name_start is_name_char in
      if name_end > name_start && name_end < n && s.[name_end] = '/' then begin
        let ver_start = name_end + 1 in
        let ver_end = span ver_start is_digit in
        if ver_end > ver_start then
          let name = String.sub s name_start (name_end - name_start) in
          let version = int_of_string (String.sub s ver_start (ver_end - ver_start)) in
          go ((name, version) :: acc) ver_end
        else go acc (i + 1)
      end
      else go acc (i + 1)
    end
    else go acc (i + 1)
  in
  go [] 0
