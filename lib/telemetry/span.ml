type t = {
  name : string;
  tid : int;
  mutable start_s : float;
  mutable wall_s : float;
  mutable alloc_bytes : float;
  mutable attrs : (string * Json.t) list;
  mutable children : t list;
}

(* Innermost-first stack of open spans, one per domain so spans opened
   inside Ptrng_exec worker domains nest correctly without racing the
   main trace.  Completed main-domain top-level spans form the trace
   tree; worker-domain root spans are kept on a separate mutexed side
   list (they carry their own tid) so the Perfetto exporter can draw
   one track per domain — they are never spliced into the main tree
   (see docs/PARALLELISM.md and docs/PROFILING.md). *)
let stack_key : t list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])
let stack () = Domain.DLS.get stack_key
let completed : t list ref = ref []
let worker_mu = Mutex.create ()
let worker_completed : t list ref = ref []

let reset () =
  completed := [];
  Mutex.protect worker_mu (fun () -> worker_completed := [])

let roots () = List.rev !completed

let worker_roots () = Mutex.protect worker_mu (fun () -> List.rev !worker_completed)

let set_attr key value =
  if !Registry.on then
    match !(stack ()) with
    | [] -> ()
    | span :: _ -> span.attrs <- (key, value) :: List.remove_assoc key span.attrs

let close span t0 a0 =
  let stack = stack () in
  span.wall_s <- Clock.now () -. t0;
  span.alloc_bytes <- Clock.allocated_bytes () -. a0;
  span.children <- List.rev span.children;
  (match !stack with
  | top :: rest when top == span -> stack := rest
  | _ -> (* unbalanced close: drop everything above us *)
    stack := []);
  Event_log.emit ~kind:"span"
    [
      ("name", Json.String span.name);
      ("tid", Json.Int span.tid);
      ("depth", Json.Int (List.length !stack));
      ("wall_s", Json.num span.wall_s);
      ("alloc_bytes", Json.num span.alloc_bytes);
    ];
  match !stack with
  | parent :: _ -> parent.children <- span :: parent.children
  | [] ->
    if Domain.is_main_domain () then completed := span :: !completed
    else
      Mutex.protect worker_mu (fun () -> worker_completed := span :: !worker_completed)

let with_ ~name f =
  if not !Registry.on then f ()
  else begin
    let stack = stack () in
    let span =
      {
        name;
        tid = (Domain.self () :> int);
        start_s = 0.0;
        wall_s = 0.0;
        alloc_bytes = 0.0;
        attrs = [];
        children = [];
      }
    in
    stack := span :: !stack;
    let t0 = Clock.now () in
    span.start_s <- t0;
    let a0 = Clock.allocated_bytes () in
    Fun.protect ~finally:(fun () -> close span t0 a0) f
  end

let rec to_json span =
  let base =
    [
      ("name", Json.String span.name);
      ("wall_s", Json.num span.wall_s);
      ("alloc_bytes", Json.num span.alloc_bytes);
    ]
  in
  let attrs =
    match span.attrs with
    | [] -> []
    | attrs -> [ ("attrs", Json.Obj (List.rev attrs)) ]
  in
  let children =
    match span.children with
    | [] -> []
    | children -> [ ("children", Json.List (List.map to_json children)) ]
  in
  Json.Obj (base @ attrs @ children)

let human_bytes b =
  if Float.abs b >= 1048576.0 then Printf.sprintf "%.1f MiB" (b /. 1048576.0)
  else if Float.abs b >= 10240.0 then Printf.sprintf "%.1f KiB" (b /. 1024.0)
  else Printf.sprintf "%.0f B" b

let pp ppf spans =
  let rec walk indent parent_wall span =
    let share =
      if parent_wall > 0.0 then
        Printf.sprintf " (%4.1f%%)" (100.0 *. span.wall_s /. parent_wall)
      else ""
    in
    Format.fprintf ppf "%s%-*s %9.3f s%s  %s@,"
      indent
      (max 1 (36 - String.length indent))
      span.name span.wall_s share
      (human_bytes span.alloc_bytes);
    List.iter (walk (indent ^ "  ") span.wall_s) span.children
  in
  Format.fprintf ppf "@[<v>";
  List.iter (walk "" 0.0) spans;
  Format.fprintf ppf "@]"
