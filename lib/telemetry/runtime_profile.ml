type sample = {
  t_s : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  heap_words : int;
  minor_words : float;
  promoted_words : float;
  pool_tasks : int array;
}

let word_bytes = float_of_int (Sys.word_size / 8)

(* The pool lives above telemetry in the dependency order, so it hands
   its per-worker task counts down through a hook instead of being
   called directly. *)
let pool_source : (unit -> int array) ref = ref (fun () -> [||])
let set_pool_source f = pool_source := f

let mu = Mutex.create ()
let recorded : sample list ref = ref []

let minor_collections_g =
  Registry.Gauge.v ~help:"Minor GC collections so far (sampled)."
    "ptrng_runtime_minor_collections"

let major_collections_g =
  Registry.Gauge.v ~help:"Major GC collections so far (sampled)."
    "ptrng_runtime_major_collections"

let heap_bytes_g =
  Registry.Gauge.v ~help:"Major heap size in bytes (sampled)."
    "ptrng_runtime_heap_bytes"

let minor_words_g =
  Registry.Gauge.v ~help:"Words allocated in the minor heap so far (sampled)."
    "ptrng_runtime_minor_words"

let promoted_words_g =
  Registry.Gauge.v ~help:"Words promoted minor->major so far (sampled)."
    "ptrng_runtime_promoted_words"

let samples_total =
  Registry.Counter.v ~help:"Runtime-profiler samples taken."
    "ptrng_runtime_samples_total"

(* One gauge per pool worker slot, registered lazily the first time
   that slot reports a task (the slot count is small and stable). *)
let worker_gauges : (int, Registry.Gauge.t) Hashtbl.t = Hashtbl.create 8

let worker_gauge slot =
  match Hashtbl.find_opt worker_gauges slot with
  | Some g -> g
  | None ->
    let g =
      Registry.Gauge.v
        ~help:(Printf.sprintf "Tasks executed by pool worker slot %d (sampled)." slot)
        (Printf.sprintf "ptrng_exec_worker%d_tasks" slot)
    in
    Hashtbl.add worker_gauges slot g;
    g

let sample_now () =
  if !Registry.on then begin
    let st = Gc.quick_stat () in
    let pool_tasks = !pool_source () in
    let s =
      {
        t_s = Clock.now ();
        minor_collections = st.Gc.minor_collections;
        major_collections = st.Gc.major_collections;
        compactions = st.Gc.compactions;
        heap_words = st.Gc.heap_words;
        minor_words = st.Gc.minor_words;
        promoted_words = st.Gc.promoted_words;
        pool_tasks;
      }
    in
    Mutex.protect mu (fun () -> recorded := s :: !recorded);
    Registry.Counter.incr samples_total;
    Registry.Gauge.set minor_collections_g (float_of_int s.minor_collections);
    Registry.Gauge.set major_collections_g (float_of_int s.major_collections);
    Registry.Gauge.set heap_bytes_g (float_of_int s.heap_words *. word_bytes);
    Registry.Gauge.set minor_words_g s.minor_words;
    Registry.Gauge.set promoted_words_g s.promoted_words;
    Array.iteri
      (fun slot n -> Registry.Gauge.set (worker_gauge slot) (float_of_int n))
      pool_tasks;
    Event_log.emit ~kind:"runtime"
      [
        ("minor_collections", Json.Int s.minor_collections);
        ("major_collections", Json.Int s.major_collections);
        ("heap_bytes", Json.num (float_of_int s.heap_words *. word_bytes));
        ("promoted_words", Json.num s.promoted_words);
        ( "pool_tasks",
          Json.Int (Array.fold_left ( + ) 0 pool_tasks) );
      ]
  end

let samples () = Mutex.protect mu (fun () -> List.rev !recorded)

let reset () = Mutex.protect mu (fun () -> recorded := [])

(* ------------------------------------------------------------------ *)
(* Background sampler                                                  *)
(* ------------------------------------------------------------------ *)

let stop_flag = Atomic.make false
let sampler : unit Domain.t option ref = ref None

let running () = !sampler <> None

let default_interval_s = 0.005

let start ?(interval_s = default_interval_s) () =
  if interval_s <= 0.0 then invalid_arg "Runtime_profile.start: interval <= 0";
  if !sampler = None then begin
    Atomic.set stop_flag false;
    sample_now ();
    sampler :=
      Some
        (Domain.spawn (fun () ->
             while not (Atomic.get stop_flag) do
               Unix.sleepf interval_s;
               sample_now ()
             done))
  end

let stop () =
  match !sampler with
  | None -> ()
  | Some d ->
    Atomic.set stop_flag true;
    Domain.join d;
    sampler := None;
    (* Closing sample so the exported counter tracks reach the end of
       the run even for intervals longer than the workload. *)
    sample_now ()
