type mark = {
  m_name : string;
  m_t_s : float;
  m_args : (string * Json.t) list;
}

(* Newest first, like Series points; a single process-wide list is
   enough — marks are rare (verdict transitions, recoveries, incident
   freezes), so one mutex never contends with a hot path. *)
let marks : mark list ref = ref []
let mu = Mutex.create ()

let emit_at ?(args = []) ~t_s name =
  if !Registry.on && Float.is_finite t_s then
    Mutex.protect mu (fun () ->
        marks := { m_name = name; m_t_s = t_s; m_args = args } :: !marks)

let emit ?args name = emit_at ?args ~t_s:(Clock.now ()) name

let all () =
  List.rev_map
    (fun m -> (m.m_name, m.m_t_s, m.m_args))
    (Mutex.protect mu (fun () -> !marks))

let reset () = Mutex.protect mu (fun () -> marks := [])
