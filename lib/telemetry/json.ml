type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let num v = if Float.is_finite v then Float v else Null

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let escape b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_repr v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.1f" v
  else
    (* Shortest representation that round-trips. *)
    let s = Printf.sprintf "%.12g" v in
    if float_of_string s = v then s else Printf.sprintf "%.17g" v

let rec emit ~indent ~level b j =
  let nl pad =
    if indent then begin
      Buffer.add_char b '\n';
      Buffer.add_string b (String.make (2 * pad) ' ')
    end
  in
  match j with
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float v ->
    if Float.is_finite v then Buffer.add_string b (float_repr v)
    else Buffer.add_string b "null"
  | String s -> escape b s
  | List [] -> Buffer.add_string b "[]"
  | List items ->
    Buffer.add_char b '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char b ',';
        nl (level + 1);
        emit ~indent ~level:(level + 1) b item)
      items;
    nl level;
    Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        nl (level + 1);
        escape b k;
        Buffer.add_char b ':';
        if indent then Buffer.add_char b ' ';
        emit ~indent ~level:(level + 1) b v)
      fields;
    nl level;
    Buffer.add_char b '}'

let to_string j =
  let b = Buffer.create 256 in
  emit ~indent:false ~level:0 b j;
  Buffer.contents b

let to_string_pretty j =
  let b = Buffer.create 1024 in
  emit ~indent:true ~level:0 b j;
  Buffer.contents b

(* ---------------- parser ---------------- *)

type cursor = { src : string; mutable pos : int }

let fail c msg = failwith (Printf.sprintf "Json.of_string: %s at offset %d" msg c.pos)

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected %C" ch)

let literal c word value =
  String.iter (fun ch -> expect c ch) word;
  value

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
      | Some '"' -> Buffer.add_char b '"'; advance c
      | Some '\\' -> Buffer.add_char b '\\'; advance c
      | Some '/' -> Buffer.add_char b '/'; advance c
      | Some 'n' -> Buffer.add_char b '\n'; advance c
      | Some 'r' -> Buffer.add_char b '\r'; advance c
      | Some 't' -> Buffer.add_char b '\t'; advance c
      | Some 'b' -> Buffer.add_char b '\b'; advance c
      | Some 'f' -> Buffer.add_char b '\012'; advance c
      | Some 'u' ->
        advance c;
        if c.pos + 4 > String.length c.src then fail c "truncated \\u escape";
        let hex = String.sub c.src c.pos 4 in
        let code =
          try int_of_string ("0x" ^ hex) with _ -> fail c "bad \\u escape"
        in
        c.pos <- c.pos + 4;
        (* Telemetry output only escapes control characters; emit the
           code point as Latin-1 when it fits, '?' otherwise. *)
        if code < 0x100 then Buffer.add_char b (Char.chr code)
        else Buffer.add_char b '?'
      | _ -> fail c "bad escape");
      loop ()
    | Some ch ->
      Buffer.add_char b ch;
      advance c;
      loop ()
  in
  loop ();
  Buffer.contents b

let parse_number c =
  let start = c.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec run () =
    match peek c with
    | Some ch when is_num_char ch ->
      advance c;
      run ()
    | _ -> ()
  in
  run ();
  let s = String.sub c.src start (c.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail c (Printf.sprintf "bad number %S" s))

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> String (parse_string c)
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else begin
      let items = ref [] in
      let rec loop () =
        items := parse_value c :: !items;
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          loop ()
        | Some ']' -> advance c
        | _ -> fail c "expected ',' or ']'"
      in
      loop ();
      List (List.rev !items)
    end
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec loop () =
        skip_ws c;
        let key = parse_string c in
        skip_ws c;
        expect c ':';
        let value = parse_value c in
        fields := (key, value) :: !fields;
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          loop ()
        | Some '}' -> advance c
        | _ -> fail c "expected ',' or '}'"
      in
      loop ();
      Obj (List.rev !fields)
    end
  | Some _ -> parse_number c

let of_string s =
  let c = { src = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail c "trailing garbage";
  v
