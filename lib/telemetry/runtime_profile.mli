(** GC/domain runtime profiler.

    Periodically samples [Gc.quick_stat] and the pool's per-worker task
    counts, and fans each sample out three ways: registry gauges
    ([ptrng_runtime_*], [ptrng_exec_worker<i>_tasks]), one [runtime]
    event-log line, and an in-memory series that {!Trace_export} turns
    into Perfetto counter tracks.

    The sampler is one dedicated domain waking every [interval_s]; it
    does not run work through [Ptrng_exec] and never blocks the
    workload.  Everything is a no-op while telemetry is disabled.  See
    docs/PROFILING.md. *)

type sample = {
  t_s : float;                (** {!Clock.now} at the sample. *)
  minor_collections : int;
  major_collections : int;
  compactions : int;
  heap_words : int;           (** Major heap size, words. *)
  minor_words : float;        (** Cumulative minor allocation, words. *)
  promoted_words : float;     (** Cumulative promotion, words. *)
  pool_tasks : int array;     (** Cumulative tasks per pool worker slot. *)
}

val set_pool_source : (unit -> int array) -> unit
(** Install the provider of per-worker-slot task counts.  Called once
    by [Ptrng_exec.Pool] at load time; the default source returns
    [[||]] so the profiler works without the pool linked in. *)

val sample_now : unit -> unit
(** Take one sample synchronously (record, gauges, event line).  No-op
    while telemetry is disabled. *)

val start : ?interval_s:float -> unit -> unit
(** Spawn the background sampler (idempotent while running).  Takes an
    immediate first sample.  Default interval: 5 ms.
    @raise Invalid_argument if [interval_s <= 0]. *)

val stop : unit -> unit
(** Stop and join the sampler, then take one closing sample so counter
    tracks extend to the end of the run.  No-op if not running. *)

val running : unit -> bool
(** Whether the sampler domain is currently alive. *)

val samples : unit -> sample list
(** Recorded samples in chronological order. *)

val reset : unit -> unit
(** Drop recorded samples (gauges and counters are untouched). *)
