let channel : out_channel option ref = ref None
let t0 = ref 0.0

let close () =
  match !channel with
  | None -> ()
  | Some oc ->
    channel := None;
    close_out_noerr oc

let open_ path =
  close ();
  channel := Some (open_out path);
  t0 := Clock.now ()

let is_open () = !channel <> None

let emit ?(kind = "event") fields =
  if !Registry.on then
    match !channel with
    | None -> ()
    | Some oc ->
      let line =
        Json.Obj
          (("ev", Json.String kind)
          :: ("t", Json.num (Clock.now () -. !t0))
          :: fields)
      in
      output_string oc (Json.to_string line);
      output_char oc '\n';
      flush oc
