let channel : out_channel option ref = ref None
let t0 = ref 0.0

(* One lock serializes whole lines, so events emitted from Ptrng_exec
   worker domains never interleave mid-line. *)
let mu = Mutex.create ()

let close () =
  match !channel with
  | None -> ()
  | Some oc ->
    channel := None;
    close_out_noerr oc

let open_ path =
  close ();
  channel := Some (open_out path);
  t0 := Clock.now ()

let is_open () = !channel <> None

let emit ?(kind = "event") fields =
  if !Registry.on then
    match !channel with
    | None -> ()
    | Some _ ->
      let line =
        Json.Obj
          (("ev", Json.String kind)
          :: ("t", Json.num (Clock.now () -. !t0))
          :: fields)
      in
      let text = Json.to_string line in
      Mutex.protect mu (fun () ->
          match !channel with
          | None -> ()
          | Some oc ->
            output_string oc text;
            output_char oc '\n';
            flush oc)
