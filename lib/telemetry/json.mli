(** Minimal JSON tree: just enough for telemetry snapshots, the JSONL
    event log and the bench harness — the container ships no JSON
    library, and the observability layer must not grow dependencies. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val num : float -> t
(** [Float], except non-finite values become [Null] (JSON has no NaN). *)

val member : string -> t -> t option
(** First field of that name in an [Obj]; [None] otherwise. *)

val to_float : t -> float option
(** Numeric value of [Int]/[Float]. *)

val to_string : t -> string
(** Compact serialization (no spaces, no trailing newline). *)

val to_string_pretty : t -> string
(** Two-space-indented serialization for files meant to be read. *)

val of_string : string -> t
(** Strict parser for the subset this module emits (no exponents in
    keys, no comments, UTF-8 passed through).
    @raise Failure on malformed input. *)
