let on = ref false
let enable () = on := true
let disable () = on := false
let enabled () = !on

(* Counters are atomics and histograms carry their own lock, so metric
   updates from worker domains (Ptrng_exec pools) are safe and no
   increment is lost.  Gauges stay plain word-sized stores: concurrent
   [set] is last-write-wins, which is the right semantic for a gauge. *)

type counter_cell = { c_name : string; c_help : string; c_value : int Atomic.t }
type gauge_cell = { g_name : string; g_help : string; mutable g_value : float }

type hist_cell = {
  h_name : string;
  h_help : string;
  h_hist : Histogram.t;
  h_mu : Mutex.t;
}

type cell =
  | C of counter_cell
  | G of gauge_cell
  | H of hist_cell

(* Registration order is preserved for the sinks; the table only
   guarantees one cell per name. *)
let table : (string, cell) Hashtbl.t = Hashtbl.create 64
let order : cell list ref = ref []
let table_mu = Mutex.create ()

let register name cell =
  Mutex.protect table_mu (fun () ->
      match Hashtbl.find_opt table name with
      | Some existing -> existing
      | None ->
        Hashtbl.add table name cell;
        order := cell :: !order;
        cell)

let reset () =
  List.iter
    (function
      | C c -> Atomic.set c.c_value 0
      | G g -> g.g_value <- 0.0
      | H h -> Mutex.protect h.h_mu (fun () -> Histogram.reset h.h_hist))
    !order

let clear () =
  Mutex.protect table_mu (fun () ->
      Hashtbl.reset table;
      order := [])

module Counter = struct
  type t = counter_cell

  let v ?(help = "") name =
    match register name (C { c_name = name; c_help = help; c_value = Atomic.make 0 }) with
    | C c -> c
    | _ -> invalid_arg (Printf.sprintf "Registry: %s is not a counter" name)

  (* [add] is the hot-path spelling: no option to build at the call
     site.  [incr ?by] keeps no default value, because a default
     optional argument splits the currying chain — [fun ?by ->
     let by = ... in fun c -> ...] — and the inner lambda is a fresh
     closure on every call (R7 found exactly that here). *)
  let add c n =
    if n < 0 then invalid_arg "Counter.add: negative increment";
    if !on then ignore (Atomic.fetch_and_add c.c_value n)

  let incr ?by c = add c (match by with None -> 1 | Some n -> n)

  let value c = Atomic.get c.c_value
end

module Gauge = struct
  type t = gauge_cell

  let v ?(help = "") name =
    match register name (G { g_name = name; g_help = help; g_value = 0.0 }) with
    | G g -> g
    | _ -> invalid_arg (Printf.sprintf "Registry: %s is not a gauge" name)

  let set g value = if !on then g.g_value <- value
  let value g = g.g_value
end

module Hist = struct
  type t = hist_cell

  let v ?(help = "") ?lo ?hi ?buckets_per_decade name =
    let cell =
      H
        {
          h_name = name;
          h_help = help;
          h_hist = Histogram.create ?lo ?hi ?buckets_per_decade ();
          h_mu = Mutex.create ();
        }
    in
    match register name cell with
    | H h -> h
    | _ -> invalid_arg (Printf.sprintf "Registry: %s is not a histogram" name)

  (* Lock by hand: [Mutex.protect] would close over [h] and [value]
     per call, and observe sits on the per-block synthesis path. *)
  let observe h value =
    if !on then begin
      Mutex.lock h.h_mu;
      (try Histogram.observe h.h_hist value
       with e ->
         Mutex.unlock h.h_mu;
         raise e);
      Mutex.unlock h.h_mu
    end

  let time h f =
    if !on then begin
      let t0 = Clock.now () in
      let finally () = observe h (Clock.now () -. t0) in
      Fun.protect ~finally f
    end
    else f ()

  let histogram h = h.h_hist
end

type metric =
  | Counter of string * string * int
  | Gauge of string * string * float
  | Histogram of string * string * Histogram.t

let all () =
  if not !on then []
  else
    List.rev_map
      (function
        | C c -> Counter (c.c_name, c.c_help, Atomic.get c.c_value)
        | G g -> Gauge (g.g_name, g.g_help, g.g_value)
        | H h -> Histogram (h.h_name, h.h_help, h.h_hist))
      !order
