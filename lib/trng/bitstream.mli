(** Raw binary sequences and their elementary statistics. *)

type t
(** An immutable sequence of bits. *)

val of_bools : bool array -> t
(** Pack a bool array; [true] is 1. *)

val of_ints : int array -> t
(** Values must be 0 or 1. @raise Invalid_argument otherwise. *)

val length : t -> int
(** Number of bits. *)

val get : t -> int -> bool
(** [get s i] is bit [i]. @raise Invalid_argument out of bounds. *)

val to_bools : t -> bool array
(** Unpack to a fresh bool array. *)

val to_bytes : t -> bytes
(** Packs 8 bits per byte, MSB first; the tail is zero-padded. *)

val ones : t -> int
(** Population count. *)

val bias : t -> float
(** [ones/length - 0.5]; 0 for a balanced stream.
    @raise Invalid_argument on the empty stream. *)

val sub : t -> pos:int -> len:int -> t
(** [sub s ~pos ~len] is bits [pos .. pos+len-1].
    @raise Invalid_argument on an out-of-range window. *)

val concat : t list -> t
(** Concatenate streams in order. *)

val serial_correlation : t -> float
(** Lag-1 serial correlation coefficient of the +-1-mapped bits;
    near 0 for independent bits.
    @raise Invalid_argument when shorter than 2 or degenerate. *)
