module Tm = Ptrng_telemetry.Registry

let samples_total =
  Tm.Counter.v ~help:"Raw D-flip-flop samples taken of osc1 by the divided osc2."
    "ptrng_trng_samples_total"

let state_at ~edges t =
  let n = Array.length edges in
  if n < 2 || t < edges.(0) || t >= edges.(n - 1) then
    invalid_arg "Sampler.state_at: instant outside edge span";
  (* Binary search for the period containing t. *)
  let lo = ref 0 and hi = ref (n - 1) in
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    if edges.(mid) <= t then lo := mid else hi := mid
  done;
  let start = edges.(!lo) and stop = edges.(!lo + 1) in
  t -. start < (stop -. start) /. 2.0

let sample ~osc1_edges ~osc2_edges ~divisor =
  if divisor <= 0 then invalid_arg "Sampler.sample: divisor <= 0";
  let n1 = Array.length osc1_edges in
  if n1 < 2 then invalid_arg "Sampler.sample: osc1 stream too short";
  let t_max = osc1_edges.(n1 - 1) in
  let bits = ref [] in
  let p = ref 0 in
  (* Walk the sample instants in order, advancing a single pointer into
     osc1's edges: overall O(edges), not O(samples * log edges). *)
  let idx = ref divisor in
  (try
     while !idx < Array.length osc2_edges do
       let t = osc2_edges.(!idx) in
       if t >= t_max then raise Exit;
       while !p + 1 < n1 && osc1_edges.(!p + 1) <= t do
         incr p
       done;
       let start = osc1_edges.(!p) and stop = osc1_edges.(!p + 1) in
       bits := (t -. start < (stop -. start) /. 2.0) :: !bits;
       idx := !idx + divisor
     done
   with Exit -> ());
  let out = Array.of_list (List.rev !bits) in
  Tm.Counter.add samples_total (Array.length out);
  out
