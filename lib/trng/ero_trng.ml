module Tm = Ptrng_telemetry.Registry

let bits_total =
  Tm.Counter.v ~help:"Bits delivered by the eRO-TRNG after post-processing."
    "ptrng_trng_bits_generated_total"

let periods_simulated_total =
  Tm.Counter.v ~help:"Oscillator periods simulated to feed the sampler."
    "ptrng_trng_periods_simulated_total"

let generate_seconds =
  Tm.Hist.v ~help:"Wall time of one generate call." ~lo:1e-6 ~hi:1e4
    "ptrng_trng_generate_seconds"

type config = {
  pair : Ptrng_osc.Pair.t;
  divisor : int;
  xor_factor : int;
}

let config ?(divisor = 1000) ?(xor_factor = 1) pair =
  if divisor <= 0 then invalid_arg "Ero_trng.config: divisor <= 0";
  if xor_factor <= 0 then invalid_arg "Ero_trng.config: xor_factor <= 0";
  { pair; divisor; xor_factor }

let paper_trng () = config (Ptrng_osc.Pair.paper_pair ())

let generate_raw rng cfg ~bits =
  if bits <= 0 then invalid_arg "Ero_trng.generate_raw: bits <= 0";
  (* Simulate enough periods of both rings: [bits * divisor] Osc2
     cycles, with margin for the frequency mismatch. *)
  let cycles = (bits + 2) * cfg.divisor in
  let n = cycles + (cycles / 64) + 16 in
  Tm.Counter.add periods_simulated_total (2 * n);
  let p1, p2 = Ptrng_osc.Pair.simulate rng cfg.pair ~n in
  let osc1_edges = Ptrng_osc.Oscillator.edges_of_periods p1 in
  let osc2_edges = Ptrng_osc.Oscillator.edges_of_periods p2 in
  let raw = Sampler.sample ~osc1_edges ~osc2_edges ~divisor:cfg.divisor in
  let available = Array.length raw in
  if available < bits then Bitstream.of_bools raw
  else Bitstream.of_bools (Array.sub raw 0 bits)

let generate rng cfg ~bits =
  Tm.Hist.time generate_seconds (fun () ->
      let raw = generate_raw rng cfg ~bits in
      let out =
        if cfg.xor_factor = 1 then raw
        else Post_process.xor_decimate ~k:cfg.xor_factor raw
      in
      Tm.Counter.add bits_total (Bitstream.length out);
      out)
