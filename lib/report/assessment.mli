(** One-call TRNG assessment: every evaluation standard in this
    repository applied to one bitstream, with an opinionated overall
    verdict.

    The verdict logic (documented, deliberately conservative):

    - [`Fail] — AIS31 procedure A fails, two or more SP 800-22 tests
      fail, a health test alarms, or the 90B aggregate falls below
      0.3 bit/bit;
    - [`Caution] — exactly one SP 800-22 failure, or a 90B aggregate
      below 0.5, or (when a stochastic model is supplied) the measured
      serial correlation exceeds what the model's thermal part
      explains;
    - [`Pass] — otherwise.

    Statistical batteries cannot certify entropy (the paper's core
    point); a [`Pass] here plus a multilevel thermal measurement
    ([Ptrng_measure.Thermal_extract]) is the combination AIS31's PTG.2
    class actually asks for. *)

type verdict = [ `Pass | `Caution | `Fail ]

type t = {
  bits_evaluated : int;
  bias : float;
  serial_correlation : float;
  ais31_a : Ptrng_ais31.Report.summary option;    (** Needs 20000 bits. *)
  ais31_b : Ptrng_ais31.Report.summary option;    (** Needs 2000 bits. *)
  nist : Ptrng_nist22.Sp80022.result list;
  sp90b : Ptrng_sp90b.Estimators.estimate list;
  sp90b_aggregate : float;
  predictors : Ptrng_sp90b.Estimators.estimate list;
  predictor_aggregate : float;
  health_rct_alarms : int;
  health_apt_alarms : int;
  verdict : verdict;
}

val evaluate : ?claimed_entropy:float -> Ptrng_trng.Bitstream.t -> t
(** Run everything the stream length allows.  [claimed_entropy]
    (default 0.997) sets the health-test cutoffs.
    @raise Invalid_argument on fewer than 2000 bits. *)

val verdict_name : verdict -> string
(** ["PASS"], ["MARGINAL"] or ["FAIL"]. *)

val pp : Format.formatter -> t -> unit
(** Render the full assessment as a text report. *)
