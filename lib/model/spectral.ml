let ln2 = log 2.0

let check ~f0 ~n =
  if f0 <= 0.0 then invalid_arg "Spectral: f0 <= 0";
  if n <= 0 then invalid_arg "Spectral: n <= 0"

let sigma2_n_thermal (p : Ptrng_noise.Psd_model.phase) ~f0 ~n =
  check ~f0 ~n;
  2.0 *. p.b_th *. float_of_int n /. (f0 ** 3.0)

let sigma2_n_flicker (p : Ptrng_noise.Psd_model.phase) ~f0 ~n =
  check ~f0 ~n;
  let fn = float_of_int n in
  8.0 *. ln2 *. p.b_fl *. fn *. fn /. (f0 ** 4.0)

let sigma2_n p ~f0 ~n = sigma2_n_thermal p ~f0 ~n +. sigma2_n_flicker p ~f0 ~n

(* Simpson integration of f on [a,b] with [panels] panels (even count). *)
let simpson f a b panels =
  if panels <= 0 then invalid_arg "Spectral.simpson: panels <= 0";
  let panels = if panels land 1 = 1 then panels + 1 else panels in
  let h = (b -. a) /. float_of_int panels in
  let acc = ref (f a +. f b) in
  for i = 1 to panels - 1 do
    let x = a +. (float_of_int i *. h) in
    let w = if i land 1 = 1 then 4.0 else 2.0 in
    acc := !acc +. (w *. f x)
  done;
  !acc *. h /. 3.0

(* In the substitution u = f N / f0, eq. 9 needs
   I2 = int_0^inf sin^4(pi u)/u^2 du  (= pi^2/4   analytically) and
   I3 = int_0^inf sin^4(pi u)/u^3 du  (= pi^2 ln2 analytically).
   Both are integrated numerically on [0, u_max] with u_max integer (so
   the oscillatory tail terms vanish) plus the mean-value tail of
   sin^4 = 3/8: 3/(8 u_max) for I2, 3/(16 u_max^2) for I3. *)
let integrals ~rel_tol =
  let u_max = if rel_tol >= 1e-4 then 100 else 1000 in
  let panels = u_max * 32 in
  let s4 u =
    let s = sin (Float.pi *. u) in
    s *. s *. s *. s
  in
  (* Below ~1e-150 the squared/cubed denominators underflow and the
     ratio is 0/0; mathematically sin^4(pi u)/u^k -> 0 there. *)
  let f2 u =
    if Ptrng_stats.Float_cmp.near_zero ~eps:1e-150 u then 0.0
    else s4 u /. (u *. u)
  in
  let f3 u =
    if Ptrng_stats.Float_cmp.near_zero ~eps:1e-150 u then 0.0
    else s4 u /. (u *. u *. u)
  in
  let fu = float_of_int u_max in
  let i2 = simpson f2 0.0 fu panels +. (3.0 /. (8.0 *. fu)) in
  let i3 = simpson f3 0.0 fu panels +. (3.0 /. (16.0 *. fu *. fu)) in
  (i2, i3)

let sigma2_n_numeric ?(rel_tol = 1e-6) (p : Ptrng_noise.Psd_model.phase) ~f0 ~n =
  check ~f0 ~n;
  let i2, i3 = integrals ~rel_tol in
  let fn = float_of_int n in
  let pref = 8.0 /. (Float.pi *. Float.pi *. f0 *. f0) in
  pref
  *. ((p.b_fl *. fn *. fn /. (f0 *. f0) *. i3) +. (p.b_th *. fn /. f0 *. i2))

let sigma2_n_numeric_of_psd ~psd ~f_max ~steps ~f0 ~n =
  check ~f0 ~n;
  if f_max <= 0.0 then invalid_arg "Spectral.sigma2_n_numeric_of_psd: f_max <= 0";
  if steps < 8 then invalid_arg "Spectral.sigma2_n_numeric_of_psd: steps < 8";
  let fn = float_of_int n in
  let integrand f =
    if f <= 0.0 then 0.0
    else begin
      let s = sin (Float.pi *. f *. fn /. f0) in
      psd f *. s *. s *. s *. s
    end
  in
  (* Skip f = 0 (diverging PSD); start one panel in. *)
  let a = f_max /. float_of_int steps in
  8.0 /. (Float.pi *. Float.pi *. f0 *. f0) *. simpson integrand a f_max steps

let scaled p ~f0 ~n = sigma2_n p ~f0 ~n *. f0 *. f0

let sigma2_n_random_walk ~hm2 ~f0 ~n =
  check ~f0 ~n;
  if hm2 < 0.0 then invalid_arg "Spectral.sigma2_n_random_walk: negative hm2";
  let fn = float_of_int n in
  4.0 *. Float.pi *. Float.pi /. 3.0 *. hm2 *. fn *. fn *. fn /. (f0 ** 3.0)
