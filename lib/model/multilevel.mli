(** End-to-end multilevel characterization pipeline (paper Fig. 3):

    oscillator pair -> simulated edge streams -> sigma_N^2 curve ->
    [a N + b N^2] fit -> thermal extraction -> independence threshold
    and entropy assessment.

    This is the one-call API a TRNG designer would use; every stage is
    also available individually in [Ptrng_measure]. *)

type analysis = {
  pair : Ptrng_osc.Pair.t;               (** Device under test. *)
  n_periods : int;                       (** Trace length used. *)
  ideal_curve : Ptrng_measure.Variance_curve.point array;
      (** Quantization-free sigma_N^2 estimates. *)
  counter_curve : Ptrng_measure.Variance_curve.point array;
      (** Counter-based (Fig. 6) estimates, including quantization. *)
  fit : Ptrng_measure.Fit.t;             (** Fit of the ideal curve. *)
  counter_fit : Ptrng_measure.Fit.t option;
      (** Floor-aware fit of the counter curve — what the real Fig. 6
          hardware can extract; [None] when the grid is too small.
          Expect the flicker coefficient to survive and the thermal one
          to carry a large uncertainty below the quantization floor
          (DESIGN.md §8). *)
  extract : Ptrng_measure.Thermal_extract.t;  (** Thermal extraction. *)
  growth_exponent : float * float;       (** Log-log slope and SE. *)
}

val characterize :
  ?domains:int ->
  ?n_periods:int ->
  ?n_grid:int array ->
  rng:Ptrng_prng.Rng.t ->
  Ptrng_osc.Pair.t ->
  analysis
(** Run the full pipeline.  Defaults: [n_periods = 2^20] simulated
    periods, octave N grid from 4 to [n_periods / 32].  Simulation and
    curve estimation run over a {!Ptrng_exec.Pool}; results are
    bit-identical for every [?domains] value.
    @raise Invalid_argument if [n_periods < 1024]. *)

val monte_carlo :
  ?domains:int ->
  ?n_periods:int ->
  ?n_grid:int array ->
  rng:Ptrng_prng.Rng.t ->
  replicates:int ->
  Ptrng_osc.Pair.t ->
  analysis array
(** [monte_carlo ~rng ~replicates pair] repeats {!characterize}
    [replicates] times with independent child streams derived from
    [rng], distributing replicates over a {!Ptrng_exec.Pool} — e.g. to
    bootstrap the spread of the fitted (a, b).  The ensemble is
    bit-identical for every [?domains] value.
    @raise Invalid_argument if [replicates <= 0]. *)

val predicted_curve :
  Ptrng_noise.Psd_model.phase -> f0:float -> ns:int array ->
  (int * float) array
(** Ground-truth [(N, f0^2 sigma_N^2)] series from the closed form —
    what Fig. 7's fitted line shows. *)

val nominal_f0 : Ptrng_osc.Pair.t -> float
(** Mean of the two ring frequencies (the f0 of the paper's formulas). *)
