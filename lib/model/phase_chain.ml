type t = {
  bins : int;
  drift : float;
  diffusion : float;
  kernel : float array;     (* kernel.(d): probability of advancing d bins *)
  high : bool array;        (* bin center in the high half-period? *)
}

let two_pi = 2.0 *. Float.pi

let create ?(bins = 256) ~drift ~diffusion () =
  if bins < 8 then invalid_arg "Phase_chain.create: bins < 8";
  if diffusion < 0.0 then invalid_arg "Phase_chain.create: negative diffusion";
  let width = two_pi /. float_of_int bins in
  let kernel = Array.make bins 0.0 in
  (* Near-zero diffusion must take the point-mass branch: the wrapped
     Gaussian underflows to an all-zero kernel (then 0/0) long before
     diffusion reaches 0.0 exactly. *)
  if Ptrng_stats.Float_cmp.near_zero diffusion then begin
    let d =
      int_of_float (Float.round (drift /. width)) mod bins
    in
    kernel.((d + bins) mod bins) <- 1.0
  end
  else begin
    (* Wrapped Gaussian, integrated per bin by the midpoint rule. *)
    let wraps = 2 + int_of_float (Float.ceil ((4.0 *. diffusion) /. two_pi)) in
    for d = 0 to bins - 1 do
      let centre = (float_of_int d *. width) -. drift in
      let acc = ref 0.0 in
      for w = -wraps to wraps do
        let x = centre +. (two_pi *. float_of_int w) in
        acc := !acc +. exp (-0.5 *. x *. x /. (diffusion *. diffusion))
      done;
      kernel.(d) <- !acc
    done;
    let total = Array.fold_left ( +. ) 0.0 kernel in
    Array.iteri (fun d v -> kernel.(d) <- v /. total) kernel
  end;
  let high =
    Array.init bins (fun i ->
        let theta = (float_of_int i +. 0.5) *. width in
        theta < Float.pi)
  in
  { bins; drift; diffusion; kernel; high }

let drift t = t.drift
let diffusion t = t.diffusion

let stationary t =
  (* Power iteration; the circulant, doubly-stochastic kernel converges
     to uniform, but we compute rather than assume. *)
  let b = t.bins in
  let dist = ref (Array.make b (1.0 /. float_of_int b)) in
  for _ = 1 to 64 do
    let next = Array.make b 0.0 in
    Array.iteri
      (fun i p ->
        if p > 0.0 then
          Array.iteri
            (fun d k -> next.((i + d) mod b) <- next.((i + d) mod b) +. (p *. k))
            t.kernel)
      !dist;
    dist := next
  done;
  !dist

let bit_probability_of_state t i =
  if i < 0 || i >= t.bins then invalid_arg "Phase_chain.bit_probability_of_state";
  let acc = ref 0.0 in
  Array.iteri
    (fun d k -> if t.high.((i + d) mod t.bins) then acc := !acc +. k)
    t.kernel;
  !acc

let marginal_bit_probability t =
  let pi_dist = stationary t in
  let acc = ref 0.0 in
  Array.iteri (fun i p -> acc := !acc +. (p *. bit_probability_of_state t i)) pi_dist;
  !acc

let entropy_rate_given_state t =
  let pi_dist = stationary t in
  let acc = ref 0.0 in
  Array.iteri
    (fun i p -> acc := !acc +. (p *. Entropy.shannon (bit_probability_of_state t i)))
    pi_dist;
  !acc

let simulate rng t ~bits =
  if bits <= 0 then invalid_arg "Phase_chain.simulate: bits <= 0";
  (* Inverse-CDF table for the advance kernel. *)
  let cdf = Array.make t.bins 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun d k ->
      acc := !acc +. k;
      cdf.(d) <- !acc)
    t.kernel;
  let step () =
    let u = Ptrng_prng.Rng.float rng in
    let rec find lo hi =
      if lo >= hi then lo
      else begin
        let mid = (lo + hi) / 2 in
        if cdf.(mid) < u then find (mid + 1) hi else find lo mid
      end
    in
    find 0 (t.bins - 1)
  in
  let state = ref (Ptrng_prng.Rng.int_below rng t.bins) in
  Array.init bits (fun _ ->
      state := (!state + step ()) mod t.bins;
      t.high.(!state))

(* Monte-Carlo sweep: independent chains, one child stream per run. *)
let simulate_many ?domains rng t ~runs ~bits =
  if runs <= 0 then invalid_arg "Phase_chain.simulate_many: runs <= 0";
  Ptrng_exec.Pool.parallel_map_streams ?domains ~rng
    (fun _ child -> simulate child t ~bits)
    runs
