type analysis = {
  pair : Ptrng_osc.Pair.t;
  n_periods : int;
  ideal_curve : Ptrng_measure.Variance_curve.point array;
  counter_curve : Ptrng_measure.Variance_curve.point array;
  fit : Ptrng_measure.Fit.t;
  counter_fit : Ptrng_measure.Fit.t option;
  extract : Ptrng_measure.Thermal_extract.t;
  growth_exponent : float * float;
}

let nominal_f0 (pair : Ptrng_osc.Pair.t) =
  (pair.osc1.Ptrng_osc.Oscillator.f0 +. pair.osc2.Ptrng_osc.Oscillator.f0) /. 2.0

module Span = Ptrng_telemetry.Span

(* Stream the simulation through the accumulators in fixed chunks: the
   resident set is three chunk buffers plus the accumulators (O(2 max N)
   for the jitter ring), instead of five trace-length arrays. *)
let stream_chunk = 8192

let characterize ?domains ?(n_periods = 1 lsl 20) ?n_grid ~rng pair =
  if n_periods < 1024 then invalid_arg "Multilevel.characterize: n_periods < 1024";
  Span.with_ ~name:"model.characterize" @@ fun () ->
  Span.set_attr "n_periods" (Ptrng_telemetry.Json.Int n_periods);
  (* The streamed pipeline is sequential and domain-count independent
     by construction; the parameter is kept so pipeline call sites read
     the same at every level. *)
  let (_ : int option) = domains in
  let f0 = nominal_f0 pair in
  let ns =
    match n_grid with
    | Some g -> g
    | None -> Ptrng_measure.Variance_curve.log2_grid ~n_min:4 ~n_max:(n_periods / 32)
  in
  let module FA = Float.Array in
  let module Vc = Ptrng_measure.Variance_curve in
  let st =
    (* flicker_block = n_periods keeps the streamed flicker bit-identical
       to the batch synthesis (one spectral block spanning the trace). *)
    Span.with_ ~name:"simulate" (fun () ->
        Ptrng_osc.Pair.stream ~flicker_block:n_periods rng pair)
  in
  let jitter_acc = Vc.Jitter_acc.create ~f0 ns in
  let counter_acc = Vc.Counter_acc.create ~f0 ~ns in
  let p1 = FA.create stream_chunk in
  let p2 = FA.create stream_chunk in
  let jbuf = FA.create stream_chunk in
  Span.with_ ~name:"stream.accumulate" (fun () ->
      let pos = ref 0 in
      while !pos < n_periods do
        let len = min stream_chunk (n_periods - !pos) in
        Ptrng_osc.Pair.fill st ~p1 ~p2 ~len;
        for i = 0 to len - 1 do
          (* relative_jitter's op: j(k) = p1(k) - p2(k). *)
          FA.unsafe_set jbuf i (FA.unsafe_get p1 i -. FA.unsafe_get p2 i)
        done;
        Vc.Jitter_acc.feed jitter_acc jbuf ~len;
        Vc.Counter_acc.feed counter_acc ~p1 ~p2 ~len;
        pos := !pos + len
      done);
  let ideal_curve =
    Span.with_ ~name:"variance_curve.jitter" (fun () ->
        Vc.Jitter_acc.points jitter_acc)
  in
  let counter_curve =
    Span.with_ ~name:"variance_curve.counter" (fun () ->
        Vc.Counter_acc.points counter_acc)
  in
  let fit =
    Span.with_ ~name:"fit" (fun () -> Ptrng_measure.Fit.fit ~f0 ideal_curve)
  in
  let counter_fit =
    (* The realistic (integer-counter) extraction: below quantization
       saturation the error variance grows with N (drift regime) and
       would masquerade as a huge thermal term, so only the saturated
       region (drift >= ~1/4 count per window) supports the
       constant-floor model. *)
    let detuning =
      Float.abs
        (pair.osc1.Ptrng_osc.Oscillator.f0 -. pair.osc2.Ptrng_osc.Oscillator.f0)
      /. f0
    in
    let phase = Ptrng_measure.Fit.phase_of fit in
    let saturated =
      Array.of_list
        (List.filter
           (fun (p : Ptrng_measure.Variance_curve.point) ->
             Ptrng_measure.Quantization.drift_per_window ~phase ~f0 ~detuning ~n:p.n
             >= 0.25)
           (Array.to_list counter_curve))
    in
    if Array.length saturated >= 5 then
      Some (Ptrng_measure.Fit.fit ~with_floor:true ~f0 saturated)
    else None
  in
  let extract = Ptrng_measure.Thermal_extract.of_fit fit in
  let growth_exponent = Bienayme.growth_exponent ideal_curve in
  { pair; n_periods; ideal_curve; counter_curve; fit; counter_fit; extract;
    growth_exponent }

let predicted_curve phase ~f0 ~ns =
  Array.map (fun n -> (n, Spectral.scaled phase ~f0 ~n)) ns

(* Replicates are fully independent pipelines, so the Monte-Carlo sweep
   parallelises at the replicate level: one child stream per replicate
   (the inner stages then see a busy pool and run sequentially), making
   the ensemble bit-identical for every domain count. *)
let monte_carlo ?domains ?n_periods ?n_grid ~rng ~replicates pair =
  if replicates <= 0 then invalid_arg "Multilevel.monte_carlo: replicates <= 0";
  Span.with_ ~name:"model.monte_carlo" @@ fun () ->
  Span.set_attr "replicates" (Ptrng_telemetry.Json.Int replicates);
  Ptrng_exec.Pool.parallel_map_streams ?domains ~rng
    (fun _ child -> characterize ?n_periods ?n_grid ~rng:child pair)
    replicates
