let max_fourier_terms = 200

(* Standard normal CDF via erfc's complement (the complementary error
   function of Ptrng_stats.Special). *)
let normal_cdf x = Ptrng_stats.Special.normal_cdf x

(* P(mu + s Z mod 2pi in (0, pi)): direct wrapped-Gaussian sum.  Exact
   for any s but needs ~s/pi wraps; used below the series' comfort
   zone, including the s = 0 step function the Fourier series cannot
   represent without Gibbs error. *)
let probability_wrapped ~mu ~s =
  let two_pi = 2.0 *. Float.pi in
  (* Sub-epsilon jitter is a step function; the wrapped sum would only
     saturate its CDFs at huge arguments anyway. *)
  if Ptrng_stats.Float_cmp.near_zero s then begin
    let m = mu -. (two_pi *. Float.floor (mu /. two_pi)) in
    if m < Float.pi then 1.0 else 0.0
  end
  else begin
    let wraps = 2 + int_of_float (Float.ceil (s /. 2.0)) in
    let acc = ref 0.0 in
    for j = -wraps to wraps do
      let base = (two_pi *. float_of_int j) -. mu in
      acc := !acc +. normal_cdf ((base +. Float.pi) /. s) -. normal_cdf (base /. s)
    done;
    !acc
  end

let bit_probability ~mu ~phase_std =
  if phase_std < 0.0 then invalid_arg "Entropy.bit_probability: negative phase_std";
  if phase_std < 3.0 then Float.max 0.0 (Float.min 1.0 (probability_wrapped ~mu ~s:phase_std))
  else begin
    (* Large diffusion: the Fourier series converges in a few terms. *)
    let acc = ref 0.5 in
    (try
       let k = ref 1 in
       while !k <= max_fourier_terms do
         let fk = float_of_int !k in
         let damp = exp (-0.5 *. fk *. fk *. phase_std *. phase_std) in
         if damp < 1e-18 then raise Exit;
         acc := !acc +. (2.0 /. (Float.pi *. fk) *. damp *. sin (fk *. mu));
         k := !k + 2
       done
     with Exit -> ());
    Float.max 0.0 (Float.min 1.0 !acc)
  end

let shannon p =
  if p < 0.0 || p > 1.0 then invalid_arg "Entropy.shannon: p outside [0,1]";
  if not (0.0 < p && p < 1.0) then 0.0
  else begin
    let q = 1.0 -. p in
    -.((p *. log p) +. (q *. log q)) /. log 2.0
  end

let avg_entropy ~phase_std =
  (* Average h(p(mu)) over one period of the drifting mean; p has
     period 2 pi and the entropy is symmetric, so integrate a half
     period.  Midpoint rule with enough points for the sharp
     low-jitter transitions. *)
  let steps = 2048 in
  let acc = ref 0.0 in
  for i = 0 to steps - 1 do
    let mu = Float.pi *. (float_of_int i +. 0.5) /. float_of_int steps in
    acc := !acc +. shannon (bit_probability ~mu ~phase_std)
  done;
  !acc /. float_of_int steps

let min_entropy ~phase_std =
  let p_max = bit_probability ~mu:(Float.pi /. 2.0) ~phase_std in
  let p_max = Float.max p_max (1.0 -. p_max) in
  -.(log p_max /. log 2.0)

let entropy_lower_bound ~phase_std =
  if phase_std < 0.0 then invalid_arg "Entropy.entropy_lower_bound: negative phase_std";
  let defect = 4.0 /. (Float.pi *. Float.pi *. log 2.0) *. exp (-.(phase_std *. phase_std)) in
  Float.max 0.0 (Float.min 1.0 (1.0 -. defect))

let phase_std_of_accumulated_jitter ~sigma_acc ~f0 =
  if sigma_acc < 0.0 || f0 <= 0.0 then
    invalid_arg "Entropy.phase_std_of_accumulated_jitter: bad arguments";
  2.0 *. Float.pi *. f0 *. sigma_acc

let phase_std_thermal ~sigma_period ~k ~f0 =
  if k <= 0 then invalid_arg "Entropy.phase_std_thermal: k <= 0";
  phase_std_of_accumulated_jitter ~sigma_acc:(sigma_period *. sqrt (float_of_int k)) ~f0
