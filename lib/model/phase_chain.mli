(** Discrete phase-chain stochastic model (Amaki et al., the paper's
    ref. [6] style).

    The sampled relative phase is discretised into [bins] states on
    [0, 2pi); between samples it advances by a deterministic drift plus
    wrapped-Gaussian diffusion, giving a circulant Markov transition
    matrix.  From the chain we obtain, without any closed-form
    shortcuts:

    - the stationary phase distribution (uniform for this kernel, but
      computed, not assumed — power iteration);
    - the bit emission probability per state (first half-period = 1);
    - the entropy rate H(b' | s) of the emitted bit given the current
      state — the quantity Amaki-style models report.

    Validated against {!Bit_markov} (which integrates the same physics
    analytically) in the test-suite; kept as an independent
    implementation of the "state-of-the-art model" family the paper
    positions itself against. *)

type t

val create : ?bins:int -> drift:float -> diffusion:float -> unit -> t
(** Build the chain (default 256 bins).
    @raise Invalid_argument if [bins < 8] or [diffusion < 0]. *)

val drift : t -> float
(** The per-sample deterministic phase advance the chain was built
    with. *)

val diffusion : t -> float
(** The per-sample diffusion (wrapped-Gaussian std) the chain was
    built with. *)

val stationary : t -> float array
(** Stationary distribution over the phase bins (power iteration). *)

val bit_probability_of_state : t -> int -> float
(** P(bit = 1 | phase in bin i) after one transition. *)

val marginal_bit_probability : t -> float
(** P(bit = 1) under the stationary distribution. *)

val entropy_rate_given_state : t -> float
(** H(b' | s) in bits: the entropy of the next bit given the current
    (hidden) phase state, averaged over the stationary distribution —
    the conservative model-based entropy claim. *)

val simulate : Ptrng_prng.Rng.t -> t -> bits:int -> bool array
(** Draw a bit sequence from the chain itself (not the event-level
    oscillator) — used to cross-check the chain against its own
    predictions. *)

val simulate_many :
  ?domains:int ->
  Ptrng_prng.Rng.t -> t -> runs:int -> bits:int -> bool array array
(** [simulate_many rng t ~runs ~bits] draws [runs] independent bit
    sequences, one child stream per run, distributed over a
    {!Ptrng_exec.Pool} — the Monte-Carlo companion of {!simulate}.
    The ensemble is bit-identical for every [?domains] value.
    @raise Invalid_argument on non-positive [runs] or [bits]. *)
