(* A scenario is a pure function of the period index: deterministic
   profiles for the three device coefficients plus a list of faults
   layered on top.  Evaluation writes into a caller-owned all-float
   state record so the oscillator hot loop can query the schedule once
   per sample without allocating. *)

type profile =
  | Const of float
  | Step of { at : int; before : float; after : float }
  | Ramp of { start : int; stop : int; from_ : float; to_ : float }
  | Sine of { period : int; mean : float; amplitude : float; phase : float }
  | Drift of { rate : float }

type fault =
  | Thermal_quench of { onset : int; duration : int; factor : float }
  | Supply_droop of { onset : int; duration : int; depth : float }
  | Tone_injection of {
      onset : int;
      duration : int;
      freq : float;
      amplitude : float;
    }
  | Coupling of { onset : int; duration : int; strength : float }

type t = {
  name : string;
  description : string;
  b_th : profile;
  b_fl : profile;
  f0 : profile;
  faults : fault list;
}

let forever = max_int

let check_profile what = function
  | Const v ->
    if not (v > 0.0 && Float.is_finite v) then
      invalid_arg (Printf.sprintf "Scenario.make: %s: Const not positive" what)
  | Step { at; before; after } ->
    if at < 0 then invalid_arg (Printf.sprintf "Scenario.make: %s: Step at < 0" what);
    if not (before > 0.0 && after > 0.0) then
      invalid_arg (Printf.sprintf "Scenario.make: %s: Step level not positive" what)
  | Ramp { start; stop; from_; to_ } ->
    if start < 0 || stop <= start then
      invalid_arg (Printf.sprintf "Scenario.make: %s: Ramp needs 0 <= start < stop" what);
    if not (from_ > 0.0 && to_ > 0.0) then
      invalid_arg (Printf.sprintf "Scenario.make: %s: Ramp level not positive" what)
  | Sine { period; mean; amplitude; phase = _ } ->
    if period <= 0 then
      invalid_arg (Printf.sprintf "Scenario.make: %s: Sine period <= 0" what);
    if not (amplitude >= 0.0 && mean -. amplitude > 0.0) then
      invalid_arg
        (Printf.sprintf "Scenario.make: %s: Sine needs 0 <= amplitude < mean" what)
  | Drift { rate } ->
    if not (Float.is_finite rate) then
      invalid_arg (Printf.sprintf "Scenario.make: %s: Drift rate not finite" what)

let check_fault = function
  | Thermal_quench { onset; duration; factor } ->
    if onset < 0 || duration <= 0 then
      invalid_arg "Scenario.make: Thermal_quench: bad onset/duration";
    if not (factor > 0.0 && factor <= 1.0) then
      invalid_arg "Scenario.make: Thermal_quench: factor outside (0,1]"
  | Supply_droop { onset; duration; depth } ->
    if onset < 0 || duration <= 0 then
      invalid_arg "Scenario.make: Supply_droop: bad onset/duration";
    if not (depth >= 0.0 && depth < 1.0) then
      invalid_arg "Scenario.make: Supply_droop: depth outside [0,1)"
  | Tone_injection { onset; duration; freq; amplitude } ->
    if onset < 0 || duration <= 0 then
      invalid_arg "Scenario.make: Tone_injection: bad onset/duration";
    if not (freq > 0.0 && freq <= 0.5) then
      invalid_arg "Scenario.make: Tone_injection: freq outside (0,0.5]";
    if not (amplitude >= 0.0 && Float.is_finite amplitude) then
      invalid_arg "Scenario.make: Tone_injection: negative amplitude"
  | Coupling { onset; duration; strength } ->
    if onset < 0 || duration <= 0 then
      invalid_arg "Scenario.make: Coupling: bad onset/duration";
    if not (strength >= 0.0 && strength < 1.0) then
      invalid_arg "Scenario.make: Coupling: strength outside [0,1)"

let make ?(b_th = Const 1.0) ?(b_fl = Const 1.0) ?(f0 = Const 1.0)
    ?(faults = []) ~name ~description () =
  if name = "" then invalid_arg "Scenario.make: empty name";
  check_profile "b_th" b_th;
  check_profile "b_fl" b_fl;
  check_profile "f0" f0;
  List.iter check_fault faults;
  { name; description; b_th; b_fl; f0; faults }

let name t = t.name
let description t = t.description
let faults t = t.faults

let two_pi = 2.0 *. Float.pi

(* [@inline]: called three times per sample from [eval]; without it
   every evaluation returns a boxed float across the call boundary. *)
let[@inline] eval_profile p k =
  match p with
  | Const v -> v
  | Step { at; before; after } -> if k < at then before else after
  | Ramp { start; stop; from_; to_ } ->
    if k <= start then from_
    else if k >= stop then to_
    else
      from_
      +. ((to_ -. from_) *. float_of_int (k - start) /. float_of_int (stop - start))
  | Sine { period; mean; amplitude; phase } ->
    mean +. (amplitude *. sin ((two_pi *. float_of_int k /. float_of_int period) +. phase))
  | Drift { rate } -> exp (rate *. float_of_int k)

(* The identity profile never moves a coefficient; everything else has
   a well-defined first sample at which the device departs from its
   calibration. *)
let profile_onset = function
  | Const v -> if v = 1.0 then None else Some 0
  | Step { at; before; after } -> if before = after then None else Some at
  | Ramp { start; from_; to_; _ } -> if from_ = to_ then None else Some start
  | Sine { amplitude; _ } -> if amplitude = 0.0 then None else Some 0
  | Drift { rate } -> if rate = 0.0 then None else Some 0

let fault_onset = function
  | Thermal_quench { onset; _ }
  | Supply_droop { onset; _ }
  | Tone_injection { onset; _ }
  | Coupling { onset; _ } -> Some onset

let onset t =
  let min_opt a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some a, Some b -> Some (min a b)
  in
  List.fold_left
    (fun acc f -> min_opt acc (fault_onset f))
    (min_opt
       (min_opt (profile_onset t.b_th) (profile_onset t.b_fl))
       (profile_onset t.f0))
    t.faults

type state = {
  mutable th_mult : float;
  mutable fl_mult : float;
  mutable f0_mult : float;
  mutable coupling : float;
  mutable tone : float;
}

let state () =
  { th_mult = 1.0; fl_mult = 1.0; f0_mult = 1.0; coupling = 0.0; tone = 0.0 }

(* Top-level so the per-sample evaluation allocates no closure. *)
let rec apply_faults st k = function
  | [] -> ()
  | f :: rest ->
    (match f with
    | Thermal_quench { onset; duration; factor } ->
      if k >= onset && k - onset < duration then
        st.th_mult <- st.th_mult *. factor
    | Supply_droop { onset; duration; depth } ->
      if k >= onset && k - onset < duration then begin
        let keep = 1.0 -. depth in
        st.f0_mult <- st.f0_mult *. keep;
        st.th_mult <- st.th_mult /. keep
      end
    | Tone_injection { onset; duration; freq; amplitude } ->
      if k >= onset && k - onset < duration then
        st.tone <-
          st.tone +. (amplitude *. sin (two_pi *. freq *. float_of_int (k - onset)))
    | Coupling { onset; duration; strength } ->
      if k >= onset && k - onset < duration && strength > st.coupling then
        (* if/else instead of Float.max: max re-boxes its result *)
        st.coupling <- strength);
    apply_faults st k rest

let eval t k st =
  st.th_mult <- eval_profile t.b_th k;
  st.fl_mult <- eval_profile t.b_fl k;
  st.f0_mult <- eval_profile t.f0 k;
  st.coupling <- 0.0;
  st.tone <- 0.0;
  apply_faults st k t.faults
