(** Deterministic environmental and adversarial scenarios.

    A scenario is a named, fully deterministic schedule of the device
    coefficients over the period index [k]: multiplicative profiles on
    the calibrated [(b_th, b_fl, f0)] — step, ramp, sinusoidal drift,
    exponential aging — plus fault injections with onset and duration
    layered on top (thermal quench, supply droop, injected
    deterministic tone, inter-ring coupling).  The faults generalize
    the one-shot static transforms of [Ptrng_trng.Attack] into
    time-parameterized events.

    Scenarios carry no randomness and no per-device state: evaluation
    at index [k] writes the instantaneous multipliers into a mutable
    all-float {!state}, so a streaming simulator
    ({!Ptrng_osc.Pair.stream} with [~scenario]) can query the schedule
    once per sample without allocating. *)

type profile =
  | Const of float  (** Fixed multiplier; [Const 1.0] is the identity. *)
  | Step of { at : int; before : float; after : float }
      (** [before] for [k < at], [after] from [at] on. *)
  | Ramp of { start : int; stop : int; from_ : float; to_ : float }
      (** Linear from [from_] at [start] to [to_] at [stop], clamped
          outside. *)
  | Sine of { period : int; mean : float; amplitude : float; phase : float }
      (** [mean + amplitude sin(2 pi k / period + phase)] — thermal or
          supply cycling. *)
  | Drift of { rate : float }
      (** [exp (rate k)] — exponential aging drift per period. *)
(** A multiplicative profile over the period index, applied to one
    calibrated coefficient. *)

type fault =
  | Thermal_quench of { onset : int; duration : int; factor : float }
      (** Multiply b_th by [factor] in (0,1] while active — the
          stealthy loss of entropy-bearing thermal noise. *)
  | Supply_droop of { onset : int; duration : int; depth : float }
      (** Scale f0 by [1 - depth] and b_th by [1/(1 - depth)] while
          active: a sagging rail slows the ring and makes it noisier. *)
  | Tone_injection of {
      onset : int;
      duration : int;
      freq : float;  (** Cycles per period, in (0, 0.5]. *)
      amplitude : float;  (** Peak, as a fraction of the nominal period. *)
    }
      (** Add [amplitude sin(2 pi freq (k - onset))] nominal periods of
          deterministic jitter to the sampled ring while active. *)
  | Coupling of { onset : int; duration : int; strength : float }
      (** Pull both rings' frequencies and jitter toward their common
          mean with weight [strength] in [0,1) while active — the
          Markettos-Moore injection-locking attack, time-resolved. *)
(** A fault injection: active for [onset <= k < onset + duration]. *)

val forever : int
(** [max_int] — a duration that never ends. *)

type t
(** One named scenario. *)

val make :
  ?b_th:profile ->
  ?b_fl:profile ->
  ?f0:profile ->
  ?faults:fault list ->
  name:string ->
  description:string ->
  unit ->
  t
(** Build a scenario; omitted profiles default to [Const 1.0] and
    [faults] to none.
    @raise Invalid_argument on a non-positive profile level, a Sine
    with [amplitude >= mean], a fault parameter outside its range, or
    a negative onset. *)

val name : t -> string
(** The scenario's registry name. *)

val description : t -> string
(** One-line human description. *)

val faults : t -> fault list
(** The fault list, in application order. *)

val eval_profile : profile -> int -> float
(** The profile's multiplier at period index [k]. *)

val onset : t -> int option
(** The first period index at which the schedule departs from the
    calibrated device — the earliest fault onset or non-identity
    profile start — or [None] for a calm scenario.  Detection latency
    is measured from here. *)

type state = {
  mutable th_mult : float;  (** Instantaneous multiplier on b_th. *)
  mutable fl_mult : float;  (** Instantaneous multiplier on b_fl. *)
  mutable f0_mult : float;  (** Instantaneous multiplier on f0. *)
  mutable coupling : float; (** Inter-ring coupling strength, [0,1). *)
  mutable tone : float;     (** Additive tone, fraction of nominal period. *)
}
(** The evaluated schedule at one period index — all-float and
    caller-owned, so per-sample evaluation allocates nothing. *)

val state : unit -> state
(** A fresh identity state. *)

val eval : t -> int -> state -> unit
(** [eval t k st] overwrites [st] with the schedule at period index
    [k]: profiles first, then every active fault folded in. *)
