(** SARIF 2.1.0 export of a lint report.

    One run, a [reportingDescriptor] per selected rule, one [result]
    per finding; the line-free {!Finding.fingerprint} travels in
    [partialFingerprints] so external SARIF consumers track findings
    across unrelated edits exactly like the committed baseline.
    See docs/STATIC_ANALYSIS.md. *)

val fingerprint_key : string
(** The [partialFingerprints] property name carrying
    {!Finding.fingerprint} ([ptrngLintFingerprint/v1]). *)

val of_report : rules:Rule.t list -> Report.t -> Ptrng_telemetry.Json.t
(** The SARIF 2.1.0 document for a report produced with [rules]. *)

val validate : Ptrng_telemetry.Json.t -> (int, string) result
(** Structural validation of the invariants {!of_report} guarantees:
    version 2.1.0, at least one run with a named driver, every result
    carrying a declared [ruleId], a valid [level], [message.text], a
    non-empty location list with artifact URIs and 1-based regions,
    and the fingerprint property.  Returns the total number of
    results.  This is the check behind [ptrng-lint --check-sarif] and
    the [@lint] gate — not a full JSON-schema validation. *)
