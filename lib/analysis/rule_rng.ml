(* R8: RNG-stream discipline, interprocedurally.

   The repo's reproducibility story (PR 2) rests on one discipline:
   derive child streams with [Rng.split]/[derive_seed]/[child] *before*
   handing work out, never draw from a parent stream after splitting
   it, never park an [Rng.t] in module state, and never let a parallel
   section capture a parent stream.  R1 greps for [Random]/[Sys.time];
   this rule tracks the [Rng.t] values themselves:

     (a) module-state   : a module-level binding whose type contains
                          [Rng.t] — stream state outliving its owner;
     (b) draw-after-split : a local [Rng.t] passed to a split and later
                          drawn from in the same body, directly or via
                          a callee that may draw (a bottom-up
                          [Dataflow] fixpoint computes "may draw");
     (c) pool-capture   : a lambda handed to a [Pool] combinator
                          capturing an [Rng.t] — every task would
                          mutate the same stream, with domain-count-
                          dependent interleaving ([Rng.t array] is the
                          blessed pre-split pattern and stays allowed);
     (d) iterator-split : [Rng.split] inside a sequential iterator
                          lambda ([Array.map] and friends) — the
                          stream assignment silently depends on the
                          iterator's evaluation order.

   (a)-(c) are errors; (d) is a warning, because a fixed evaluation
   order can be an accepted, documented choice (then it belongs in the
   baseline with a note saying exactly that). *)

let split_heads = [ "Rng.split"; "Rng.derive_seed"; "Rng.child" ]

let draw_heads =
  [
    "Rng.bits64"; "Rng.float"; "Rng.float_pos"; "Rng.float_range";
    "Rng.int_below"; "Rng.bool"; "Rng.fill_floats";
  ]

(* Kept in sync with Rule_state.pool_entry_points (R3). *)
let pool_entry_points =
  [
    "Pool.run_tasks"; "Pool.parallel_map"; "Pool.parallel_mapi";
    "Pool.parallel_iter"; "Pool.parallel_filter_map"; "Pool.parallel_reduce";
    "Pool.parallel_init_floats"; "Pool.parallel_map_streams"; "Pool.run";
  ]

let sequential_iterators =
  [
    "Array.map"; "Array.mapi"; "Array.iter"; "Array.iteri"; "Array.init";
    "List.map"; "List.mapi"; "List.iter"; "List.iteri"; "List.init";
  ]

let suffix_mem name table =
  List.exists (fun suffix -> Tast_util.has_suffix ~suffix name) table

(* Canonical name of an application head: stamp- and alias-resolved
   when possible ([Internal]/[External]), the raw normalized path for
   function-local heads. *)
let head_name g (node : Callgraph.node) (f : Typedtree.expression) =
  match Callgraph.resolve_head g node f with
  | Some (Callgraph.Internal n) | Some (Callgraph.External n) -> Some n
  | Some Callgraph.Local | None ->
    Option.map Tast_util.normalize_path (Tast_util.ident_name f)

let is_rng_constr p =
  Tast_util.has_suffix ~suffix:"Rng.t"
    (Tast_util.normalize_path (Path.name p))

let is_rng_type ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> is_rng_constr p
  | _ -> false

(* [Rng.t] anywhere inside the type (under ref/option/tuple/array...).
   Arrows are opaque — a stored closure is (c)'s business, not (a)'s.
   Depth-bounded: type graphs can be cyclic. *)
let rec type_contains_rng depth ty =
  depth > 0
  &&
  match Types.get_desc ty with
  | Types.Tconstr (p, args, _) ->
    is_rng_constr p || List.exists (type_contains_rng (depth - 1)) args
  | Types.Ttuple ts -> List.exists (type_contains_rng (depth - 1)) ts
  | Types.Tpoly (t, _) -> type_contains_rng (depth - 1) t
  | _ -> false

let local_ident (e : Typedtree.expression) =
  match e.exp_desc with
  | Typedtree.Texp_ident (Path.Pident id, _, _) ->
    Some (Ident.unique_name id, Ident.name id)
  | _ -> None

let first_arg_ident args =
  match
    List.filter_map (fun (_, a) -> Option.map (fun a -> a) a) args
  with
  | a :: _ -> local_ident a
  | [] -> None

(* "May this function draw from an Rng.t it is given?"  Direct draws
   join with the callees' answers over the SCC DAG. *)
module Bool_domain = struct
  type fact = bool

  let bottom = false
  let join = ( || )
  let equal = Bool.equal
end

module Bool_flow = Dataflow.Make (Bool_domain)

let draws_directly g (node : Callgraph.node) =
  let found = ref false in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          (match e.Typedtree.exp_desc with
           | Typedtree.Texp_apply (f, _) -> (
             match head_name g node f with
             | Some name when suffix_mem name draw_heads -> found := true
             | _ -> ())
           | _ -> ());
          Tast_iterator.default_iterator.expr sub e);
    }
  in
  it.expr it node.expr;
  !found

(* ---------------------------------------------------------------- *)

let check ~rule (loader : Loader.t) =
  let g = Callgraph.build loader in
  let may_draw = Bool_flow.solve g ~direct:(draws_directly g) () in
  let findings = ref [] in
  let flag ?severity (node : Callgraph.node) ~loc ~detail msg =
    findings :=
      Rule.make_finding ~rule ?severity ~unit:node.unit_ ~loc
        ~symbol:node.symbol ~detail msg
      :: !findings
  in
  List.iter
    (fun name ->
      match Callgraph.find g name with
      | None -> ()
      | Some node ->
        (* (a) module-level stream state *)
        (if node.kind = Callgraph.Value
            && type_contains_rng 8 node.expr.exp_type
         then
           flag node ~loc:node.loc ~detail:"module-state"
             (Printf.sprintf
                "%s holds an Rng.t in module-level state; streams must be \
                 owned by their call chain (derive children with \
                 Rng.child/derive_seed instead)"
                node.name));
        (* one syntactic pass collects (b)(c)(d) events in source order *)
        let split_seen = ref [] in
        let it =
          {
            Tast_iterator.default_iterator with
            expr =
              (fun sub e ->
                (match e.Typedtree.exp_desc with
                 | Typedtree.Texp_apply (f, args) -> (
                   match head_name g node f with
                   | Some head when suffix_mem head split_heads -> (
                     match first_arg_ident args with
                     | Some (uid, disp) ->
                       if not (List.mem_assoc uid !split_seen) then
                         split_seen := (uid, disp) :: !split_seen
                     | None -> ())
                   | Some head when suffix_mem head draw_heads -> (
                     (* (b) direct draw after a split of the same stream *)
                     match first_arg_ident args with
                     | Some (uid, disp)
                       when List.mem_assoc uid !split_seen ->
                       flag node ~loc:e.exp_loc
                         ~detail:("draw-after-split:" ^ disp)
                         (Printf.sprintf
                            "%s draws from %s after splitting it; the \
                             parent stream is no longer independent of \
                             its children — draw first or derive another \
                             child"
                            node.name disp)
                     | _ -> ())
                   | Some head when suffix_mem head pool_entry_points ->
                     (* (c) parallel section capturing a stream *)
                     List.iter
                       (fun (_, arg) ->
                         match arg with
                         | Some (a : Typedtree.expression)
                           when (match a.exp_desc with
                                | Typedtree.Texp_function _ -> true
                                | _ -> false) ->
                           let enclosing_bound =
                             Tast_util.expr_bound_idents node.expr
                           in
                           List.iter
                             (fun (cap_name, cap_ty, cap_loc) ->
                               if is_rng_type cap_ty then
                                 flag node ~loc:cap_loc
                                   ~detail:("pool-capture:" ^ cap_name)
                                   (Printf.sprintf
                                      "%s: task closure passed to %s \
                                       captures the stream %s; every task \
                                       would advance the same Rng.t in \
                                       domain-dependent order — pre-split \
                                       into an array of child streams"
                                      node.name head cap_name))
                             (Tast_util.lambda_captures ~enclosing_bound a)
                         | _ -> ())
                       args
                   | Some head when suffix_mem head sequential_iterators ->
                     (* (d) split under an iterator lambda *)
                     List.iter
                       (fun (_, arg) ->
                         match arg with
                         | Some (a : Typedtree.expression)
                           when (match a.exp_desc with
                                | Typedtree.Texp_function _ -> true
                                | _ -> false) ->
                           let splits = ref false in
                           let inner =
                             {
                               Tast_iterator.default_iterator with
                               expr =
                                 (fun sub2 e2 ->
                                   (match e2.Typedtree.exp_desc with
                                    | Typedtree.Texp_apply (f2, _) -> (
                                      match head_name g node f2 with
                                      | Some h2
                                        when suffix_mem h2 split_heads ->
                                        splits := true
                                      | _ -> ())
                                    | _ -> ());
                                   Tast_iterator.default_iterator.expr sub2
                                     e2);
                             }
                           in
                           inner.expr inner a;
                           if !splits then
                             flag node ~severity:Finding.Warning
                               ~loc:a.exp_loc
                               ~detail:("iterator-split:"
                                        ^ Filename.basename head)
                               (Printf.sprintf
                                  "%s splits a stream inside a %s lambda; \
                                   the child-stream assignment depends on \
                                   the iterator's evaluation order — \
                                   pre-split outside the iterator, or \
                                   baseline with a note if the order is a \
                                   frozen, documented choice"
                                  node.name head)
                         | _ -> ())
                       args
                   | Some head when Callgraph.mem g head -> (
                     (* (b) interprocedural: stream handed to a callee
                        that may draw, after a split of that stream *)
                     if Bool_flow.get may_draw head then
                       match first_arg_ident args with
                       | Some (uid, disp)
                         when List.mem_assoc uid !split_seen -> (
                         match
                           List.filter_map (fun (_, a) -> a) args
                         with
                         | a :: _ when is_rng_type a.Typedtree.exp_type ->
                           flag node ~loc:e.exp_loc
                             ~detail:("draw-after-split-via:" ^ disp)
                             (Printf.sprintf
                                "%s passes %s to %s, which may draw from \
                                 it, after splitting %s; the parent \
                                 stream is no longer independent of its \
                                 children"
                                node.name disp head disp)
                         | _ -> ())
                       | _ -> ())
                   | _ -> ())
                 | _ -> ());
                Tast_iterator.default_iterator.expr sub e);
          }
        in
        it.expr it node.expr)
    g.order;
  List.rev !findings

let rec rule =
  {
    Rule.id = "R8";
    name = "rng-discipline";
    severity = Finding.Error;
    doc =
      "taint-track Rng.t: no module-level stream state, no draws from a \
       parent after splitting it (interprocedural), no Rng.t captured by \
       Pool task closures, no splits inside sequential iterator lambdas";
    check = (fun loader -> check ~rule loader);
  }
