(** A single diagnostic produced by a lint rule.

    Findings are identified across runs by their {!fingerprint} — a
    location-free key built from the rule, the source file, the
    enclosing top-level symbol and the offending detail — so a
    committed suppression baseline survives unrelated edits that only
    shift line numbers.  See docs/STATIC_ANALYSIS.md. *)

type severity = Error | Warning | Info

val severity_name : severity -> string
(** ["error"], ["warning"] or ["info"]. *)

val severity_of_name : string -> severity option
(** Inverse of {!severity_name}. *)

type t = {
  rule : string;       (** Rule id, e.g. ["R1"]. *)
  rule_name : string;  (** Short rule slug, e.g. ["determinism"]. *)
  severity : severity;
  file : string;       (** Source path as recorded in the cmt, e.g. ["lib/measure/fit.ml"]. *)
  line : int;          (** 1-based; [0] for whole-file findings. *)
  col : int;           (** 0-based column. *)
  symbol : string;     (** Enclosing top-level value, or [""]. *)
  detail : string;     (** Offending ident or short classifier, e.g. ["Stdlib.Random.int"]. *)
  message : string;    (** Human-readable explanation. *)
}

val fingerprint : t -> string
(** [rule:file:symbol:detail] — stable under line-number drift. *)

val compare : t -> t -> int
(** Order by file, line, column, rule — the report order. *)

val to_json : t -> Ptrng_telemetry.Json.t
(** The finding as one object of a [ptrng-lint/1] document. *)

val of_json : Ptrng_telemetry.Json.t -> (t, string) result
(** Inverse of {!to_json}; used by the report round-trip tests. *)

val pp : Format.formatter -> t -> unit
(** [file:line:col: [R1/error] message (symbol)]. *)
