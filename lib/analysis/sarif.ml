(* SARIF 2.1.0 export of a lint report.

   Only the stable core of the format is emitted: one run, a driver
   with one reportingDescriptor per selected rule, and one result per
   finding with a physical location and the line-free fingerprint
   under partialFingerprints (so SARIF consumers track findings across
   edits exactly like the committed baseline does).  [validate] is the
   structural inverse used by the @lint gate and the tests: it checks
   the invariants this emitter guarantees, not the full SARIF JSON
   schema. *)

module Json = Ptrng_telemetry.Json

let version = "2.1.0"
let schema_uri = "https://json.schemastore.org/sarif-2.1.0.json"
let fingerprint_key = "ptrngLintFingerprint/v1"

let level_of_severity (s : Finding.severity) =
  match s with
  | Finding.Error -> "error"
  | Finding.Warning -> "warning"
  | Finding.Info -> "note"

let rule_descriptor (r : Rule.t) =
  Json.Obj
    [
      ("id", Json.String r.id);
      ("name", Json.String r.name);
      ("shortDescription", Json.Obj [ ("text", Json.String r.doc) ]);
      ( "defaultConfiguration",
        Json.Obj [ ("level", Json.String (level_of_severity r.severity)) ] );
    ]

let result_of_finding (f : Finding.t) =
  let message =
    if f.symbol = "" then f.message
    else Printf.sprintf "%s (in %s)" f.message f.symbol
  in
  let region =
    (* SARIF regions are 1-based; a finding without a source position
       (line 0) gets a location without a region. *)
    if f.line >= 1 then
      [
        ( "region",
          Json.Obj
            (("startLine", Json.Int f.line)
            :: (if f.col >= 1 then [ ("startColumn", Json.Int f.col) ] else [])
            ) );
      ]
    else []
  in
  Json.Obj
    [
      ("ruleId", Json.String f.rule);
      ("level", Json.String (level_of_severity f.severity));
      ("message", Json.Obj [ ("text", Json.String message) ]);
      ( "locations",
        Json.List
          [
            Json.Obj
              [
                ( "physicalLocation",
                  Json.Obj
                    (( "artifactLocation",
                       Json.Obj [ ("uri", Json.String f.file) ] )
                    :: region) );
              ];
          ] );
      ( "partialFingerprints",
        Json.Obj [ (fingerprint_key, Json.String (Finding.fingerprint f)) ] );
    ]

let of_report ~rules (report : Report.t) =
  Json.Obj
    [
      ("$schema", Json.String schema_uri);
      ("version", Json.String version);
      ( "runs",
        Json.List
          [
            Json.Obj
              [
                ( "tool",
                  Json.Obj
                    [
                      ( "driver",
                        Json.Obj
                          [
                            ("name", Json.String "ptrng-lint");
                            ( "informationUri",
                              Json.String
                                "https://example.invalid/ptrng/docs/STATIC_ANALYSIS.md"
                            );
                            ("rules", Json.List (List.map rule_descriptor rules));
                          ] );
                    ] );
                ("results", Json.List (List.map result_of_finding report.findings));
              ];
          ] );
    ]

(* ------------------------------------------------------------------ *)
(* Structural validation                                               *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let str j key =
  match Json.member key j with Some (Json.String s) -> Some s | _ -> None

let obj_member j key = Json.member key j

let valid_levels = [ "error"; "warning"; "note"; "none" ]

let validate_result ~rule_ids i r =
  let where = Printf.sprintf "results[%d]" i in
  let* rule_id =
    match str r "ruleId" with
    | Some id -> Ok id
    | None -> Error (where ^ ": missing ruleId")
  in
  let* () =
    if List.mem rule_id rule_ids then Ok ()
    else Error (Printf.sprintf "%s: ruleId %s not declared by the driver" where rule_id)
  in
  let* () =
    match str r "level" with
    | Some l when List.mem l valid_levels -> Ok ()
    | Some l -> Error (Printf.sprintf "%s: invalid level %s" where l)
    | None -> Error (where ^ ": missing level")
  in
  let* () =
    match Option.bind (obj_member r "message") (fun m -> str m "text") with
    | Some _ -> Ok ()
    | None -> Error (where ^ ": missing message.text")
  in
  let* locs =
    match obj_member r "locations" with
    | Some (Json.List (_ :: _ as l)) -> Ok l
    | _ -> Error (where ^ ": missing or empty locations")
  in
  let* () =
    List.fold_left
      (fun acc loc ->
        let* () = acc in
        let phys = obj_member loc "physicalLocation" in
        match Option.bind phys (fun p -> obj_member p "artifactLocation") with
        | None -> Error (where ^ ": location without physicalLocation.artifactLocation")
        | Some art -> (
          match str art "uri" with
          | None -> Error (where ^ ": artifactLocation without uri")
          | Some _ -> (
            match Option.bind phys (fun p -> obj_member p "region") with
            | None -> Ok ()
            | Some region -> (
              match obj_member region "startLine" with
              | Some (Json.Int n) when n >= 1 -> Ok ()
              | _ -> Error (where ^ ": region without positive startLine")))))
      (Ok ()) locs
  in
  let* () =
    match obj_member r "partialFingerprints" with
    | Some pf when str pf fingerprint_key <> None -> Ok ()
    | _ -> Error (Printf.sprintf "%s: missing partialFingerprints.%s" where fingerprint_key)
  in
  Ok ()

let validate j =
  let* () =
    match str j "version" with
    | Some v when v = version -> Ok ()
    | Some v -> Error (Printf.sprintf "sarif version %s, expected %s" v version)
    | None -> Error "missing sarif version"
  in
  let* runs =
    match obj_member j "runs" with
    | Some (Json.List (_ :: _ as runs)) -> Ok runs
    | _ -> Error "missing or empty runs"
  in
  List.fold_left
    (fun acc run ->
      let* total = acc in
      let driver =
        Option.bind (obj_member run "tool") (fun t -> obj_member t "driver")
      in
      let* () =
        match Option.bind driver (fun d -> str d "name") with
        | Some _ -> Ok ()
        | None -> Error "run without tool.driver.name"
      in
      let rule_ids =
        match Option.bind driver (fun d -> obj_member d "rules") with
        | Some (Json.List rules) -> List.filter_map (fun r -> str r "id") rules
        | _ -> []
      in
      let* results =
        match obj_member run "results" with
        | Some (Json.List results) -> Ok results
        | _ -> Error "run without results list"
      in
      let* () =
        List.fold_left
          (fun acc (i, r) ->
            let* () = acc in
            validate_result ~rule_ids i r)
          (Ok ())
          (List.mapi (fun i r -> (i, r)) results)
      in
      Ok (total + List.length results))
    (Ok 0) runs
