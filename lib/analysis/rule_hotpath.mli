(** R7 — interprocedural proof of the zero-allocation hot path.

    Builds the {!Callgraph}, walks everything reachable from a manifest
    of hot entry points, and infers each reached function's direct
    allocation effects under the classic ocamlopt model (closure
    capture of locals, heap construction, boxed numeric returns,
    polymorphic compare/hash, partial application, unknown extern
    calls).  Any reached function with a non-empty effect set is a
    finding carrying the witness call path; registered amortized cuts
    stop traversal but each emits an [Info] finding so the exemption is
    baselined with a note, never silent.  Manifest entries or cuts that
    name nothing are [Error]s — the proof must not go vacuous when code
    moves. *)

type manifest = {
  entries : string list;
      (** Normalized fully-qualified hot entry points, e.g.
          ["Ptrng_noise.Source.fill"]. *)
  cuts : (string * string) list;
      (** [(name, why)] — functions where traversal stops because their
          work is amortized (once per window/incident, not per sample). *)
}

val default_manifest : manifest
(** The repo's steady-state write paths: [Source.fill], [Pair.fill],
    [Gaussian.fill_fa], [Rn_estimator.feed_many], the [Monitor] feed
    entries and the [Flight_recorder] record path.  Creation-time
    constructors ([Pair.stream], [Source.create]) allocate by design
    and are not entries. *)

val make : ?manifest:manifest -> unit -> Rule.t
(** Build the rule against a custom manifest — used by the fixture
    tests to point the proof at fixture-local entries. *)

val rule : Rule.t
(** R7 over {!default_manifest}. *)
