(* Whole-repo call graph from the typedtrees the Loader already has.

   Nodes are the value bindings of every structure (top level and
   nested [module M = struct .. end]), named by their normalized
   fully-qualified path ("Ptrng_noise.Source.fill").  Edges are the
   resolved references between them: a [Path.Pident] use resolves
   through the per-unit stamp table (same-unit binding), a [Path.Pdot]
   through module-alias expansion plus path normalization (so the
   mangled [Lib__Mod.f], the alias [Lib.Mod.f] and a local
   [module FA = Float.Array] all land on one canonical name).
   Unresolved references — stdlib, externals, function-local lets — are
   classified so effect rules can tell them apart.

   Everything is deterministic: units arrive in Loader's sorted order,
   [order] is the sorted node-name list, and every adjacency list is
   sorted.  Hashtbl is used only through [find_opt]/[replace] keyed by
   those lists (the repo's own R1 rule forbids order-dependent
   [Hashtbl.iter]/[fold] here). *)

open Ptrng_telemetry

type kind = Func | Value

type node = {
  name : string;
  unit_ : Loader.unit_info;
  symbol : string;
  loc : Location.t;
  expr : Typedtree.expression;
  params : Typedtree.pattern list;
  body : Typedtree.expression;
  kind : kind;
  inline : bool;
  mutable callees : string list;
  mutable externals : string list;
}

(* Per-unit name resolution: [stamps] maps the [Ident.unique_name] of
   every binding that became a node to the node name; [aliases] maps
   the unique name of every module binding to its canonical path —
   both structure modules ([module M = struct]) and plain aliases
   ([module FA = Float.Array]). *)
type resolver = {
  stamps : (string * string) list;
  aliases : (string * string) list;
}

type resolution =
  | Internal of string  (** A node of the graph. *)
  | External of string  (** Canonical path with no node (stdlib, ...). *)
  | Local  (** A function-local binding — its body is inline. *)

type t = {
  nodes : (string, node) Hashtbl.t;
  order : string list;
  sccs : string list list;
  scc_of : (string, int) Hashtbl.t;
  resolvers : (string, resolver) Hashtbl.t;  (* keyed by unit modname *)
}

let find t name = Hashtbl.find_opt t.nodes name
let mem t name = Hashtbl.mem t.nodes name

(* --------------------------------------------------------------- *)
(* Node collection                                                  *)
(* --------------------------------------------------------------- *)

(* Peel the curried [fun a -> fun b -> ...] chain down to the body.
   Multi-case [function] and guarded lambdas stop the peel: their body
   is the dispatch itself. *)
let rec peel acc (e : Typedtree.expression) =
  match e.exp_desc with
  | Typedtree.Texp_function
      { cases = [ { c_lhs; c_guard = None; c_rhs; _ } ]; _ } ->
    peel (c_lhs :: acc) c_rhs
  | _ -> (List.rev acc, e)

let rec is_arrow_type ty =
  match Types.get_desc ty with
  | Types.Tarrow _ -> true
  | Types.Tpoly (t, _) -> is_arrow_type t
  | _ -> false

let sort_uniq = List.sort_uniq String.compare

let collect_unit (u : Loader.unit_info) =
  let nodes = ref [] in
  let stamps = ref [] in
  let aliases = ref [] in
  let add_binding ~prefix (vb : Typedtree.value_binding) =
    List.iter
      (fun id ->
        let name = prefix ^ "." ^ Ident.name id in
        let params, body = peel [] vb.vb_expr in
        let kind =
          if params <> [] || is_arrow_type vb.vb_expr.exp_type then Func
          else Value
        in
        let node =
          {
            name;
            unit_ = u;
            symbol = Ident.name id;
            loc = vb.vb_pat.pat_loc;
            expr = vb.vb_expr;
            params;
            body;
            kind;
            inline = Tast_util.has_inline_attr vb.vb_attributes;
            callees = [];
            externals = [];
          }
        in
        nodes := node :: !nodes;
        stamps := (Ident.unique_name id, name) :: !stamps)
      (Typedtree.pat_bound_idents vb.vb_pat)
  in
  let rec walk_structure ~prefix (str : Typedtree.structure) =
    List.iter
      (fun (item : Typedtree.structure_item) ->
        match item.str_desc with
        | Typedtree.Tstr_value (_, vbs) -> List.iter (add_binding ~prefix) vbs
        | Typedtree.Tstr_module mb -> walk_module ~prefix mb
        | Typedtree.Tstr_recmodule mbs -> List.iter (walk_module ~prefix) mbs
        | _ -> ())
      str.str_items
  and walk_module ~prefix (mb : Typedtree.module_binding) =
    match mb.mb_id with
    | None -> ()
    | Some id ->
      let here = prefix ^ "." ^ Ident.name id in
      (match alias_target mb.mb_expr with
       | Some target ->
         aliases := (Ident.unique_name id, target) :: !aliases
       | None ->
         aliases := (Ident.unique_name id, here) :: !aliases;
         walk_module_expr ~prefix:here mb.mb_expr)
  and alias_target (me : Typedtree.module_expr) =
    match me.mod_desc with
    | Typedtree.Tmod_ident (p, _) ->
      Some (Tast_util.normalize_path (Path.name p))
    | Typedtree.Tmod_constraint (inner, _, _, _) -> alias_target inner
    | _ -> None
  and walk_module_expr ~prefix (me : Typedtree.module_expr) =
    match me.mod_desc with
    | Typedtree.Tmod_structure str -> walk_structure ~prefix str
    | Typedtree.Tmod_constraint (inner, _, _, _) ->
      walk_module_expr ~prefix inner
    | _ -> ()
  in
  (match u.impl with
   | Some str ->
     walk_structure ~prefix:(Tast_util.normalize_path u.modname) str
   | None -> ());
  (List.rev !nodes, { stamps = !stamps; aliases = !aliases })

(* --------------------------------------------------------------- *)
(* Reference resolution                                             *)
(* --------------------------------------------------------------- *)

let rec path_root (p : Path.t) =
  match p with
  | Path.Pident id -> id
  | Path.Pdot (p, _) -> path_root p
  | Path.Papply (p, _) -> path_root p
  | Path.Pextra_ty (p, _) -> path_root p

(* Canonical dotted name of [p] in the context of [r]: local module
   aliases expand to their target, everything gets "__" normalized. *)
let canonical_name (r : resolver) (p : Path.t) =
  let full = Tast_util.normalize_path (Path.name p) in
  match p with
  | Path.Pident _ -> full
  | _ -> (
    let root = path_root p in
    match List.assoc_opt (Ident.unique_name root) r.aliases with
    | Some target -> (
      let root_name = Tast_util.normalize_path (Ident.name root) in
      match String.index_opt full '.' with
      | Some i when String.sub full 0 i = root_name ->
        target ^ String.sub full i (String.length full - i)
      | _ -> full)
    | None -> full)

let empty_resolver = { stamps = []; aliases = [] }

let resolver_of t (u : Loader.unit_info) =
  match Hashtbl.find_opt t.resolvers u.modname with
  | Some r -> r
  | None -> empty_resolver

let resolve_with nodes_tbl (r : resolver) (p : Path.t) =
  match p with
  | Path.Pident id -> (
    match List.assoc_opt (Ident.unique_name id) r.stamps with
    | Some name -> Internal name
    | None -> Local)
  | _ ->
    let name = canonical_name r p in
    if Hashtbl.mem nodes_tbl name then Internal name else External name

let resolve t (u : Loader.unit_info) p =
  resolve_with t.nodes (resolver_of t u) p

(* Resolution of an application head (or any expression that is an
   identifier), in the defining unit of [node]. *)
let resolve_head t (node : node) (f : Typedtree.expression) =
  match f.exp_desc with
  | Typedtree.Texp_ident (p, _, _) -> Some (resolve t node.unit_ p)
  | _ -> None

(* --------------------------------------------------------------- *)
(* Edge resolution                                                  *)
(* --------------------------------------------------------------- *)

let resolve_edges nodes_tbl (node : node) ~resolver =
  let callees = ref [] and externals = ref [] in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          (match e.Typedtree.exp_desc with
           | Typedtree.Texp_ident (p, _, _) -> (
             match resolve_with nodes_tbl resolver p with
             | Internal target when target <> node.name ->
               callees := target :: !callees
             | Internal _ | Local -> ()
             | External name -> externals := name :: !externals)
           | _ -> ());
          Tast_iterator.default_iterator.expr sub e);
    }
  in
  it.expr it node.expr;
  node.callees <- sort_uniq !callees;
  node.externals <- sort_uniq !externals

(* --------------------------------------------------------------- *)
(* Tarjan SCC (iterating the sorted order, so output is stable).    *)
(* Emits each SCC only after everything it reaches — the resulting   *)
(* list is callees-first, exactly what a bottom-up fixpoint wants.   *)
(* --------------------------------------------------------------- *)

let compute_sccs nodes_tbl order =
  let index = Hashtbl.create 64 in
  let lowlink = Hashtbl.create 64 in
  let on_stack = Hashtbl.create 64 in
  let stack = ref [] in
  let counter = ref 0 in
  let sccs = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    let node = Hashtbl.find nodes_tbl v in
    List.iter
      (fun w ->
        match Hashtbl.find_opt index w with
        | None ->
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        | Some wi ->
          if Hashtbl.find_opt on_stack w = Some true then
            Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) wi))
      node.callees;
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.replace on_stack w false;
          if w = v then w :: acc else pop (w :: acc)
      in
      sccs := pop [] :: !sccs
    end
  in
  List.iter
    (fun v -> if not (Hashtbl.mem index v) then strongconnect v)
    order;
  List.rev !sccs

let build (loader : Loader.t) =
  let per_unit =
    List.map (fun u -> (u, collect_unit u)) loader.units
  in
  let all_nodes = List.concat_map (fun (_, (ns, _)) -> ns) per_unit in
  let nodes = Hashtbl.create (List.length all_nodes * 2 + 1) in
  List.iter (fun n -> Hashtbl.replace nodes n.name n) all_nodes;
  let resolvers = Hashtbl.create 64 in
  List.iter
    (fun ((u : Loader.unit_info), (unit_nodes, resolver)) ->
      Hashtbl.replace resolvers u.modname resolver;
      List.iter (fun n -> resolve_edges nodes n ~resolver) unit_nodes)
    per_unit;
  let order = sort_uniq (List.map (fun n -> n.name) all_nodes) in
  let sccs = compute_sccs nodes order in
  let scc_of = Hashtbl.create (List.length order * 2 + 1) in
  List.iteri
    (fun i members -> List.iter (fun m -> Hashtbl.replace scc_of m i) members)
    sccs;
  { nodes; order; sccs; scc_of; resolvers }

let scc_index t name = Hashtbl.find_opt t.scc_of name

let scc_members t name =
  match scc_index t name with
  | None -> []
  | Some i -> List.nth t.sccs i

(* --------------------------------------------------------------- *)
(* Reachability                                                     *)
(* --------------------------------------------------------------- *)

let reachable t ~roots ~follow =
  let parents = Hashtbl.create 64 in
  let queue = Queue.create () in
  List.iter
    (fun r ->
      match find t r with
      | Some n when follow n && not (Hashtbl.mem parents r) ->
        Hashtbl.replace parents r None;
        Queue.add r queue
      | _ -> ())
    (sort_uniq roots);
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    match find t v with
    | None -> ()
    | Some n ->
      List.iter
        (fun w ->
          if not (Hashtbl.mem parents w) then
            match find t w with
            | Some wn when follow wn ->
              Hashtbl.replace parents w (Some v);
              Queue.add w queue
            | _ -> ())
        n.callees
  done;
  parents

let witness parents name =
  let rec go acc n =
    match Hashtbl.find_opt parents n with
    | None -> acc (* not reached: return what we have *)
    | Some None -> n :: acc
    | Some (Some p) -> go (n :: acc) p
  in
  go [] name

(* --------------------------------------------------------------- *)
(* Debug dump (--graph-out)                                         *)
(* --------------------------------------------------------------- *)

let to_json t =
  let node_json name =
    match find t name with
    | None -> Json.Null
    | Some n ->
      let line, _ = Tast_util.line_col n.loc in
      Json.Obj
        [
          ("name", Json.String n.name);
          ("unit", Json.String (Tast_util.normalize_path n.unit_.modname));
          ("source", Json.String n.unit_.source);
          ("line", Json.Int line);
          ("kind", Json.String (match n.kind with Func -> "func" | Value -> "value"));
          ("inline", Json.Bool n.inline);
          ("params", Json.Int (List.length n.params));
          ("callees", Json.List (List.map (fun c -> Json.String c) n.callees));
          ("externals", Json.List (List.map (fun c -> Json.String c) n.externals));
          ("scc", Json.Int (match scc_index t name with Some i -> i | None -> -1));
        ]
  in
  Json.Obj
    [
      ("schema", Json.String (Schema.id "callgraph"));
      ("nodes", Json.Int (List.length t.order));
      ("sccs", Json.Int (List.length t.sccs));
      ( "scc_sizes",
        Json.List
          (List.filter_map
             (fun members ->
               let n = List.length members in
               if n > 1 then
                 Some (Json.Obj
                   [ ("size", Json.Int n);
                     ("members", Json.List (List.map (fun m -> Json.String m) members)) ])
               else None)
             t.sccs) );
      ("graph", Json.List (List.map node_json t.order));
    ]
