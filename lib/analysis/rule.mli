(** The interface every lint rule implements.

    A rule sees the whole loaded project at once — cross-unit rules
    (pool reachability, interface hygiene) need the global view — and
    returns its findings; scoping to directories is the rule's own
    business, except in fixture mode ([Loader.scope_all]) where every
    rule must consider every unit.  To add a rule: create a
    [rule_<slug>.ml] exporting a [val rule : Rule.t] and append it to
    {!Rules.all}.  See docs/STATIC_ANALYSIS.md. *)

type t = {
  id : string;       (** Stable id used in baselines and [--rules], e.g. ["R1"]. *)
  name : string;     (** Short slug, e.g. ["determinism"]. *)
  severity : Finding.severity;  (** Default severity of this rule's findings. *)
  doc : string;      (** One-line description for [--list] and reports. *)
  check : Loader.t -> Finding.t list;
}

val make_finding :
  rule:t ->
  ?severity:Finding.severity ->
  unit:Loader.unit_info ->
  loc:Location.t ->
  symbol:string ->
  detail:string ->
  string ->
  Finding.t
(** Finding constructor filling in the rule id/name and the unit's
    source path; [?severity] overrides the rule default. *)
