(* R6: no whole-array allocating combinators on the hot path.

   lib/noise and lib/osc are the streaming sample pipeline: every
   per-chunk allocation there is multiplied by millions of periods, so
   trace-sized intermediates ([Array.map] over a block, [Array.append]
   growing a buffer, list building) belong either outside these
   directories or in the explicitly legacy batch entry points — which
   are baselined with a note, exactly like R1-R5 exemptions. *)

let hot_dirs = [ "lib/noise"; "lib/osc" ]

let forbidden =
  [
    ("Stdlib.Array.append", "copies both operands");
    ("Array.append", "copies both operands");
    ("Stdlib.Array.concat", "copies every operand");
    ("Array.concat", "copies every operand");
    ("Stdlib.Array.map", "allocates a same-length result");
    ("Array.map", "allocates a same-length result");
    ("Stdlib.Array.mapi", "allocates a same-length result");
    ("Array.mapi", "allocates a same-length result");
    ("Stdlib.List.map", "allocates one cons cell per element");
    ("List.map", "allocates one cons cell per element");
    ("Stdlib.List.concat_map", "allocates intermediate lists");
    ("List.concat_map", "allocates intermediate lists");
    ("Stdlib.@", "copies the left list");
    ("@", "copies the left list");
  ]

let check_unit ~rule (unit : Loader.unit_info) =
  match unit.impl with
  | None -> []
  | Some str ->
    let acc = ref [] in
    Tast_util.iter_structure_expressions str (fun ~symbol e ->
        match Tast_util.ident_name e with
        | Some name -> (
          match List.assoc_opt name forbidden with
          | Some why ->
            acc :=
              Rule.make_finding ~rule ~unit ~loc:e.exp_loc ~symbol ~detail:name
                (Printf.sprintf
                   "allocating combinator %s (%s) on the hot sample path; \
                    fill a caller-owned buffer (Source.fill / Float.Array \
                    scratch) instead"
                   name why)
              :: !acc
          | None -> ())
        | None -> ());
    !acc

let rec rule =
  {
    Rule.id = "R6";
    name = "hot-path-alloc";
    severity = Finding.Warning;
    doc =
      "forbid Array.append/concat/map/mapi, List.map/concat_map and (@) in \
       lib/noise and lib/osc (the streaming hot path)";
    check =
      (fun loader ->
        List.concat_map
          (fun unit ->
            if loader.Loader.scope_all || Loader.in_dirs ~dirs:hot_dirs unit
            then check_unit ~rule unit
            else [])
          loader.Loader.units);
  }
