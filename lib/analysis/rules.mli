(** The rule registry.  New rules register here (and only here). *)

val all : Rule.t list
(** R1..R9, in id order. *)

val find : string -> Rule.t option
(** Lookup by id, case-insensitive. *)

val select : string -> (Rule.t list, string) result
(** Parse a [--rules] argument: comma-separated ids (["R1,R3"]) or
    ["all"].  Unknown ids are an error listing the known ones. *)
