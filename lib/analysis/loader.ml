(* cmt/cmti discovery.  Dune leaves library annotations under
   <dir>/.<lib>.objs/byte/ and executable annotations under
   <dir>/.<exe>.eobjs/byte/; rather than hard-coding that layout we
   walk the tree and take every annotation file, pairing .cmt with
   .cmti by path-sans-extension. *)

type unit_info = {
  modname : string;
  source : string;
  impl : Typedtree.structure option;
  intf : Typedtree.signature option;
  has_mli : bool;
  imports : string list;
  cmt_path : string;
}

type t = { units : unit_info list; scope_all : bool }

let rec walk dir acc =
  match Sys.readdir dir with
  | exception Sys_error _ -> acc
  | entries ->
    Array.fold_left
      (fun acc entry ->
        let path = Filename.concat dir entry in
        if Sys.is_directory path then walk path acc
        else if
          Filename.check_suffix path ".cmt" || Filename.check_suffix path ".cmti"
        then path :: acc
        else acc)
      acc entries

(* A generated wrapper (module-alias file dune synthesizes for wrapped
   libraries) has a "*.ml-gen" source — nothing a human wrote. *)
let is_generated_source src = Filename.check_suffix src "-gen"

let read_annot path =
  match Cmt_format.read_cmt path with
  | exception _ -> None
  | cmt -> (
    match cmt.cmt_sourcefile with
    | None -> None
    | Some src when is_generated_source src -> None
    | Some src -> Some (cmt, src))

let unit_of_pair ~cmt_path ~cmti_path =
  let impl_info = Option.bind cmt_path read_annot in
  let intf_info = Option.bind cmti_path read_annot in
  let annots = function
    | Some ((cmt : Cmt_format.cmt_infos), _) -> Some cmt.cmt_annots
    | None -> None
  in
  let impl =
    match annots impl_info with
    | Some (Cmt_format.Implementation str) -> Some str
    | _ -> None
  in
  let intf =
    match annots intf_info with
    | Some (Cmt_format.Interface sg) -> Some sg
    | _ -> None
  in
  match (impl_info, intf_info) with
  | None, None -> None
  | _ ->
    (* Prefer the implementation's metadata; an mli-only unit (no .ml,
       e.g. a types-only module) falls back to the interface's. *)
    let cmt, src =
      match (impl_info, intf_info) with
      | Some (cmt, src), _ -> (cmt, src)
      | None, Some (cmt, src) -> (cmt, src)
      | None, None -> assert false
    in
    Some
      {
        modname = cmt.cmt_modname;
        source = src;
        impl;
        intf;
        has_mli = intf_info <> None;
        imports = List.map fst cmt.cmt_imports;
        cmt_path =
          (match (cmt_path, cmti_path) with
          | Some p, _ | None, Some p -> p
          | None, None -> "");
      }

let units_of_paths paths =
  (* Group .cmt/.cmti by path-sans-extension; iterate the sorted key
     list, not the table, so unit order never depends on hashing. *)
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun path ->
      let key = Filename.remove_extension path in
      let cmt, cmti =
        match Hashtbl.find_opt tbl key with
        | Some pair -> pair
        | None -> (None, None)
      in
      if Filename.check_suffix path ".cmti" then
        Hashtbl.replace tbl key (cmt, Some path)
      else Hashtbl.replace tbl key (Some path, cmti))
    paths;
  let keys =
    List.sort_uniq compare (List.map Filename.remove_extension paths)
  in
  let units =
    List.filter_map
      (fun key ->
        match Hashtbl.find_opt tbl key with
        | Some (cmt_path, cmti_path) -> unit_of_pair ~cmt_path ~cmti_path
        | None -> None)
      keys
  in
  List.sort (fun a b -> compare (a.source, a.modname) (b.source, b.modname)) units

let load_dirs ?(scope_all = false) ~root dirs =
  let paths =
    List.concat_map
      (fun dir ->
        let full = Filename.concat root dir in
        if Sys.file_exists full && Sys.is_directory full then walk full []
        else [])
      dirs
  in
  { units = units_of_paths paths; scope_all }

let load_files ?(scope_all = false) paths =
  { units = units_of_paths paths; scope_all }

let dir_of u = Filename.dirname u.source

let in_dirs ~dirs u =
  List.exists
    (fun d ->
      let d = if Filename.check_suffix d "/" then d else d ^ "/" in
      Tast_util.has_prefix ~prefix:d u.source)
    dirs
