(** Shared helpers over the compiler's typedtree.

    Everything the rules need from [compiler-libs] is funneled through
    here, so individual rules stay small and the
    compiler-version-sensitive surface lives in one module. *)

val has_suffix : suffix:string -> string -> bool
(** [has_suffix ~suffix:"Pool.run" "Ptrng_exec.Pool.run"] — dotted-path
    suffix match; the character before the suffix, if any, must be
    ['.'] so ["MyPool.run"] does not match. *)

val has_prefix : prefix:string -> string -> bool
(** Plain string-prefix test, e.g. on directory paths. *)

val is_float_type : Types.type_expr -> bool
(** The expression's type is the predefined [float] constructor. *)

val line_col : Location.t -> int * int
(** (1-based line, 0-based column) of the location's start. *)

val head_ident : Typedtree.expression -> string option
(** [Path.name] of the expression if it is an identifier, or of the
    function head if it is an application of one. *)

val ident_name : Typedtree.expression -> string option
(** [Path.name] of the expression if it is an identifier. *)

val pattern_names : Typedtree.pattern -> string list
(** Every variable bound by the pattern, e.g. [["a"; "b"]] for
    [(a, b)]. *)

val iter_structure_expressions :
  Typedtree.structure ->
  (symbol:string -> Typedtree.expression -> unit) ->
  unit
(** Visit every expression of the structure, depth-first, tagging each
    with the name of the enclosing top-level binding ([""] for
    top-level [let () = ...] and other anonymous items). *)

val iter_toplevel_bindings :
  Typedtree.structure ->
  (symbol:string -> Typedtree.value_binding -> unit) ->
  unit
(** Visit only the structure-level value bindings (not nested lets). *)

val signature_values :
  Typedtree.signature -> (string * bool * Location.t) list
(** The [val] items of an interface as [(name, has_doc_comment, loc)];
    a value is documented when it carries an [ocaml.doc] attribute. *)

val int_literal_bound_idents : Typedtree.structure -> string list
(** Names of variables bound (at any depth) directly to an integer
    literal — used to rule out [float_of_int steps] false positives
    when [steps] is a compile-time constant. *)

val guarded_idents : Typedtree.structure_item -> string list
(** Names of identifiers compared against an integer literal (or
    passed to [max]/[min] with one) anywhere inside the item — the
    cheap stand-in for "this local is validated before use". *)
