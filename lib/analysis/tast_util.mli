(** Shared helpers over the compiler's typedtree.

    Everything the rules need from [compiler-libs] is funneled through
    here, so individual rules stay small and the
    compiler-version-sensitive surface lives in one module. *)

val has_suffix : suffix:string -> string -> bool
(** [has_suffix ~suffix:"Pool.run" "Ptrng_exec.Pool.run"] — dotted-path
    suffix match; the character before the suffix, if any, must be
    ['.'] so ["MyPool.run"] does not match. *)

val has_prefix : prefix:string -> string -> bool
(** Plain string-prefix test, e.g. on directory paths. *)

val normalize_path : string -> string
(** Canonical spelling of a resolved path: dune's wrapped-library
    mangling ["Ptrng_noise__Source"] becomes ["Ptrng_noise.Source"], so
    definitions and references compare equal regardless of which
    spelling the typedtree recorded. *)

val has_inline_attr : Parsetree.attributes -> bool
(** The attribute list carries [[@inline]] (or [[@ocaml.inline]]). *)

val expr_bound_idents : Typedtree.expression -> (string * string) list
(** Idents bound by any pattern inside the expression (let bindings,
    function parameters, match cases) as
    [(Ident.unique_name, Ident.name)]. *)

val expr_local_uses :
  Typedtree.expression ->
  (string * string * Types.type_expr * Location.t) list
(** Every use of a locally bound ident ([Path.Pident]) inside the
    expression: [(unique_name, display_name, type, loc)]. *)

val lambda_captures :
  enclosing_bound:(string * string) list ->
  Typedtree.expression ->
  (string * Types.type_expr * Location.t) list
(** Free variables of the lambda relative to the enclosing bound set —
    the captures that force a heap-allocated closure in classic
    ocamlopt.  Deduplicated, in first-use order. *)

val eliminable_refs : Typedtree.expression -> Typedtree.expression list
(** The [ref e] application expressions (physical nodes) of let-bound
    references that the compiler erases: every use is [!]/[:=]/
    [incr]/[decr] at the binding's own lambda depth, so
    [Simplif.eliminate_ref] turns the cell into a mutable local and
    cmmgen unboxes numeric contents — no allocation survives. *)

val is_float_type : Types.type_expr -> bool
(** The expression's type is the predefined [float] constructor. *)

val line_col : Location.t -> int * int
(** (1-based line, 0-based column) of the location's start. *)

val head_ident : Typedtree.expression -> string option
(** [Path.name] of the expression if it is an identifier, or of the
    function head if it is an application of one. *)

val ident_name : Typedtree.expression -> string option
(** [Path.name] of the expression if it is an identifier. *)

val pattern_names : Typedtree.pattern -> string list
(** Every variable bound by the pattern, e.g. [["a"; "b"]] for
    [(a, b)]. *)

val iter_structure_expressions :
  Typedtree.structure ->
  (symbol:string -> Typedtree.expression -> unit) ->
  unit
(** Visit every expression of the structure, depth-first, tagging each
    with the name of the enclosing top-level binding ([""] for
    top-level [let () = ...] and other anonymous items). *)

val iter_toplevel_bindings :
  Typedtree.structure ->
  (symbol:string -> Typedtree.value_binding -> unit) ->
  unit
(** Visit only the structure-level value bindings (not nested lets). *)

val signature_values :
  Typedtree.signature -> (string * bool * Location.t) list
(** The [val] items of an interface as [(name, has_doc_comment, loc)];
    a value is documented when it carries an [ocaml.doc] attribute. *)

val int_literal_bound_idents : Typedtree.structure -> string list
(** Names of variables bound (at any depth) directly to an integer
    literal — used to rule out [float_of_int steps] false positives
    when [steps] is a compile-time constant. *)

val guarded_idents : Typedtree.structure_item -> string list
(** Names of identifiers compared against an integer literal (or
    passed to [max]/[min] with one) anywhere inside the item — the
    cheap stand-in for "this local is validated before use". *)
