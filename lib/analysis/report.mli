(** Lint run results: human-readable text and machine-readable JSON
    (schema [ptrng-lint/1], built on {!Ptrng_telemetry.Json} like the
    bench and trace schemas). *)

val schema : string
(** ["ptrng-lint/1"]. *)

type t = {
  findings : Finding.t list;  (** Fresh (non-baselined), in report order. *)
  suppressed : int;           (** Findings absorbed by the baseline. *)
  units : int;                (** Compilation units scanned. *)
  rules : string list;        (** Ids of the rules that ran. *)
}

val make :
  rules:Rule.t list -> units:int -> suppressed:int -> Finding.t list -> t
(** Sort the findings into report order and record which rules ran. *)

val errors : t -> int
(** Fresh findings with severity [Error]. *)

val warnings : t -> int
(** Fresh findings with severity [Warning]. *)

val infos : t -> int
(** Fresh findings with severity [Info]. *)

val to_json : t -> Ptrng_telemetry.Json.t
(** The [ptrng-lint/1] document: schema, per-severity counts and the
    findings list. *)

val validate : Ptrng_telemetry.Json.t -> (t, string) result
(** Parse a [ptrng-lint/1] document back; the JSON round-trip pin for
    test/test_lint.ml. *)

val summary_line : t -> string
(** One line, e.g. ["ptrng-lint: 0 errors, 0 warnings, 0 info (12
    baselined) over 104 units, rules R1,R2,R3,R4,R5"] — the string
    the bench history record carries. *)

val pp : Format.formatter -> t -> unit
(** Findings one per line, then the summary line. *)
