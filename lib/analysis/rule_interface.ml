(* R5: .mli everywhere under lib/, doc comments on every exported val.
   Doc comments surface as ocaml.doc attributes on the signature's
   value descriptions, so the check reads the cmti — prose in the .ml
   does not count, the interface is what readers open. *)

let mli_scope = [ "lib" ]

let whole_file_loc (unit : Loader.unit_info) =
  let pos =
    { Lexing.pos_fname = unit.source; pos_lnum = 0; pos_bol = 0; pos_cnum = 0 }
  in
  { Location.loc_start = pos; loc_end = pos; loc_ghost = true }

let check_unit ~rule ~(loader : Loader.t) (unit : Loader.unit_info) =
  let missing_mli =
    if
      unit.impl <> None
      && (not unit.has_mli)
      && (loader.scope_all || Loader.in_dirs ~dirs:mli_scope unit)
    then
      [
        Rule.make_finding ~rule ~unit
          ~loc:(whole_file_loc unit)
          ~symbol:"" ~detail:"missing-mli"
          (Printf.sprintf "%s has no .mli — add one to pin the public surface"
             unit.source);
      ]
    else []
  in
  let undocumented =
    match unit.intf with
    | None -> []
    | Some sg ->
      List.filter_map
        (fun (name, documented, loc) ->
          if documented then None
          else
            let f =
              Rule.make_finding ~rule ~severity:Finding.Warning ~unit ~loc
                ~symbol:name ~detail:("undoc-" ^ name)
                (Printf.sprintf "public value %s has no doc comment" name)
            in
            (* Point at the .mli, not the paired .ml. *)
            let file = loc.Location.loc_start.pos_fname in
            Some (if file = "" then f else { f with Finding.file = file }))
        (Tast_util.signature_values sg)
  in
  missing_mli @ undocumented

let rec rule =
  {
    Rule.id = "R5";
    name = "interface-hygiene";
    severity = Finding.Error;
    doc =
      "every .ml under lib/ needs an .mli, and every exported val a doc \
       comment";
    check =
      (fun loader ->
        List.concat_map
          (fun unit -> check_unit ~rule ~loader unit)
          loader.Loader.units);
  }
