(** R1 — determinism.

    Forbids wall-clock, ambient-randomness and hash-order sources
    outside the allowlisted subsystems ([lib/exec], [lib/telemetry],
    which own scheduling and timestamps by design): [Stdlib.Random.*],
    [Sys.time], [Unix.gettimeofday]/[Unix.time], [Hashtbl.hash] and
    hash-order iteration ([Hashtbl.iter]/[fold]), and [Domain.self].
    The reproduction's bit-identical-for-any-domain-count guarantee
    (docs/PARALLELISM.md) is only as strong as the absence of these. *)

val rule : Rule.t
(** The R1 rule (severity [Error]). *)
