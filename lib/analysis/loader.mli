(** Discovery and loading of dune's [.cmt]/[.cmti] artifacts.

    A {e unit} pairs one compilation unit's typed implementation with
    its typed interface (when an [.mli] exists).  [load_dirs] scans a
    build root — [_build/default] from the repo root, or ["."] from
    inside a dune action — recursively, so both library ([.objs]) and
    executable ([.eobjs]) artifact directories are found.  Generated
    wrapper modules (dune's [*.ml-gen] alias files) are skipped: they
    have no source to lint. *)

type unit_info = {
  modname : string;   (** Compilation unit name, e.g. ["Ptrng_measure__Fit"]. *)
  source : string;    (** Source path recorded in the cmt, e.g. ["lib/measure/fit.ml"]. *)
  impl : Typedtree.structure option;  (** From the [.cmt]. *)
  intf : Typedtree.signature option;  (** From the [.cmti], when present. *)
  has_mli : bool;
  imports : string list;  (** Compilation units this one depends on. *)
  cmt_path : string;
}

type t = {
  units : unit_info list;
  scope_all : bool;
      (** [true] in fixture mode: rules skip their path-based scoping
          and apply to every unit (used by test/test_lint.ml). *)
}

val load_dirs : ?scope_all:bool -> root:string -> string list -> t
(** [load_dirs ~root dirs] loads every annotation file found under
    [root/dir] for each existing [dir].  Unreadable or foreign files
    are skipped silently — a partial build must not crash the linter,
    the gate relies on dune having built [@check] first. *)

val load_files : ?scope_all:bool -> string list -> t
(** Load explicit [.cmt]/[.cmti] paths (test fixtures). *)

val dir_of : unit_info -> string
(** Directory part of the unit's source path, e.g. ["lib/measure"]. *)

val in_dirs : dirs:string list -> unit_info -> bool
(** The unit's source lives under one of [dirs] (path-prefix match). *)
