(** R4 — span/exception safety.

    Paired enter/exit primitives leak on exceptions unless wrapped:
    the rule flags calls to values whose resolved path ends in
    [Span.enter], [Span.exit], [Mutex.lock] or [Mutex.unlock] inside
    any top-level definition that never applies [Fun.protect] or
    [Mutex.protect] — the safe idiom opens the pair and immediately
    hands the closing half to a protect wrapper, so a definition with
    no protect in sight cannot be exception-safe.  The codebase's own
    idioms —
    [Ptrng_telemetry.Span.with_] and [Mutex.protect] — never trip
    this; the rule exists so a hand-rolled enter/exit pair cannot
    sneak in and leak an open span (or a held lock) on the first
    exception. *)

val rule : Rule.t
(** The R4 rule (severity [Error]). *)
