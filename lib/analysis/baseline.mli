(** The committed suppression baseline (schema
    [ptrng-lint-baseline/1]).

    A baseline entry is a finding {!Finding.fingerprint} plus the
    number of occurrences it absorbs — line-number-free, so the file
    only churns when violations are added or removed.  The workflow:
    [ptrng-lint --update-baseline] regenerates the file from the
    current findings (preserving any [note] fields of entries that
    survive), the file is committed, and the [@lint] gate fails on
    anything the baseline does not absorb.  See
    docs/STATIC_ANALYSIS.md. *)

type t

val empty : t
(** The baseline that absorbs nothing. *)

val count : t -> int
(** Total occurrences the baseline absorbs. *)

val of_findings : ?prev:t -> Finding.t list -> t
(** Baseline absorbing exactly the given findings; notes of [prev]
    entries whose fingerprint survives are carried over. *)

val prune : t -> Finding.t list -> t * (string * int) list
(** [prune t findings] shrinks the baseline to what the current
    findings still exercise: each entry keeps
    [min count occurrences], entries with no surviving occurrence are
    dropped, and notes are preserved.  Returns the pruned baseline and
    the per-fingerprint number of absorbed-but-dead occurrences that
    were removed — unlike {!of_findings} it never absorbs a {e new}
    finding, so pruning cannot mask a regression. *)

val apply : t -> Finding.t list -> Finding.t list * Finding.t list
(** [(fresh, suppressed)]: per fingerprint, the first [count]
    occurrences (in report order) are suppressed, the rest are
    fresh. *)

val load : path:string -> (t, string) result
(** A missing file is {e not} an error — it is the empty baseline. *)

val save : path:string -> t -> (unit, string) result
(** Write the baseline as pretty-printed JSON, sorted by fingerprint
    so the committed file diffs cleanly. *)

val to_json : t -> Ptrng_telemetry.Json.t
(** The [ptrng-lint-baseline/1] document. *)

val of_json : Ptrng_telemetry.Json.t -> (t, string) result
(** Inverse of {!to_json}; rejects other schemas. *)
