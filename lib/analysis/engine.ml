let run ~rules loader =
  List.concat_map (fun (r : Rule.t) -> r.check loader) rules
  |> List.sort Finding.compare

let lint ~rules ~baseline loader =
  let all = run ~rules loader in
  let fresh, suppressed = Baseline.apply baseline all in
  ( Report.make ~rules
      ~units:(List.length loader.Loader.units)
      ~suppressed:(List.length suppressed) fresh,
    all )
