(** R9 — wire-format schema tags must match the central registry.

    Scans every string literal for ["ptrng-<name>/<version>"]
    occurrences and checks them against {!Ptrng_telemetry.Schema}:
    unregistered names and version skews are errors.  Registered,
    current-version literals are allowed (parsers match on them);
    emitters should build tags with [Schema.id] so a version bump is a
    one-line change. *)

val rule : Rule.t
(** The R9 rule value, registered in {!Rules.all}. *)
