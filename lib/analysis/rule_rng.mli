(** R8 — RNG-stream discipline, tracked interprocedurally.

    Four checks over the {!Callgraph}: (a) no module-level binding
    whose type contains [Rng.t]; (b) no draw from a parent stream
    after splitting it — directly or via a callee that "may draw",
    computed by a bottom-up {!Dataflow} fixpoint; (c) no [Rng.t]
    captured by a task closure handed to a [Pool] combinator (an
    [Rng.t array] of pre-split children stays allowed); (d) no
    [Rng.split] inside a sequential iterator lambda, where the stream
    assignment silently depends on evaluation order ([Warning] — a
    frozen, documented order is baselined with a note). *)

val rule : Rule.t
(** The R8 rule value, registered in {!Rules.all}. *)
