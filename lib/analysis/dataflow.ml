(* Generic bottom-up effect inference over the call graph's SCC DAG.

   A rule supplies a join-semilattice of per-function facts and a
   [direct] function computing a node's own contribution; [solve]
   propagates facts from callees to callers.  Because Callgraph emits
   SCCs callees-first, a single pass over the SCC list suffices for the
   DAG part; within one SCC (mutual recursion) the members iterate to a
   local fixpoint, which terminates as long as the lattice has finite
   height — every domain in this repo is a small powerset or a bool.

   The solver only consults callee facts; what a node's [direct] fact
   means (allocates, draws from an Rng, ...) is entirely the rule's
   business, as is any decision to cut propagation (a rule cuts an edge
   by filtering inside [transfer]). *)

module type DOMAIN = sig
  type fact

  val bottom : fact
  (** Identity of [join]; the fact of an unknown or absent callee. *)

  val join : fact -> fact -> fact
  val equal : fact -> fact -> bool
end

module Make (D : DOMAIN) = struct
  type summary = (string, D.fact) Hashtbl.t

  let get (s : summary) name =
    match Hashtbl.find_opt s name with Some f -> f | None -> D.bottom

  let solve (g : Callgraph.t)
      ~(direct : Callgraph.node -> D.fact)
      ?(transfer =
        fun ~caller:_ ~callee:_ (fact : D.fact) -> fact)
      () : summary =
    let summary = Hashtbl.create (List.length g.order * 2 + 1) in
    let flow_into caller_name =
      match Callgraph.find g caller_name with
      | None -> D.bottom
      | Some caller ->
        List.fold_left
          (fun acc callee_name ->
            match Callgraph.find g callee_name with
            | None -> acc
            | Some callee ->
              D.join acc
                (transfer ~caller ~callee (get summary callee_name)))
          D.bottom caller.callees
    in
    List.iter
      (fun members ->
        (* Seed each member with its direct fact, then iterate the SCC
           to a fixpoint.  For the common singleton SCC the loop body
           runs once and stabilizes immediately. *)
        List.iter
          (fun name ->
            match Callgraph.find g name with
            | Some node -> Hashtbl.replace summary name (direct node)
            | None -> ())
          members;
        let changed = ref true in
        while !changed do
          changed := false;
          List.iter
            (fun name ->
              match Callgraph.find g name with
              | None -> ()
              | Some node ->
                let next = D.join (direct node) (flow_into name) in
                if not (D.equal next (get summary name)) then begin
                  Hashtbl.replace summary name next;
                  changed := true
                end)
            members
        done)
      g.sccs;
    summary
end
