(* Suppression baseline: fingerprint -> (allowed count, optional note).
   Serialized sorted by fingerprint so regeneration diffs cleanly. *)

module Json = Ptrng_telemetry.Json

let schema = "ptrng-lint-baseline/1"

type entry = { count : int; note : string option }

type t = (string * entry) list (* sorted by fingerprint *)

let empty = []

let count t = List.fold_left (fun acc (_, e) -> acc + e.count) 0 t

let of_findings ?(prev = empty) findings =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun f ->
      let fp = Finding.fingerprint f in
      Hashtbl.replace tbl fp (1 + Option.value ~default:0 (Hashtbl.find_opt tbl fp)))
    findings;
  (* Iterate the sorted fingerprints, not the table: serialization
     order must not depend on hashing (our own R1). *)
  let fingerprints =
    List.sort_uniq compare (List.map Finding.fingerprint findings)
  in
  List.map
    (fun fp ->
      let note = Option.bind (List.assoc_opt fp prev) (fun e -> e.note) in
      (fp, { count = Option.value ~default:1 (Hashtbl.find_opt tbl fp); note }))
    fingerprints

let prune t findings =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun f ->
      let fp = Finding.fingerprint f in
      Hashtbl.replace tbl fp (1 + Option.value ~default:0 (Hashtbl.find_opt tbl fp)))
    findings;
  let pruned = ref [] in
  let kept =
    List.filter_map
      (fun (fp, e) ->
        let live = Option.value ~default:0 (Hashtbl.find_opt tbl fp) in
        let keep = min e.count live in
        if keep < e.count then pruned := (fp, e.count - keep) :: !pruned;
        if keep = 0 then None else Some (fp, { e with count = keep }))
      t
  in
  (kept, List.rev !pruned)

let apply t findings =
  let remaining = Hashtbl.create 64 in
  List.iter (fun (fp, e) -> Hashtbl.replace remaining fp e.count) t;
  List.partition_map
    (fun f ->
      let fp = Finding.fingerprint f in
      match Hashtbl.find_opt remaining fp with
      | Some n when n > 0 ->
        Hashtbl.replace remaining fp (n - 1);
        Right f
      | _ -> Left f)
    (List.sort Finding.compare findings)

let to_json t =
  Json.Obj
    [
      ("schema", Json.String schema);
      ( "entries",
        Json.List
          (List.map
             (fun (fp, e) ->
               Json.Obj
                 (("fingerprint", Json.String fp)
                  :: ("count", Json.Int e.count)
                  ::
                  (match e.note with
                  | Some n -> [ ("note", Json.String n) ]
                  | None -> [])))
             t) );
    ]

let of_json j =
  match Json.member "schema" j with
  | Some (Json.String s) when s = schema -> (
    match Json.member "entries" j with
    | Some (Json.List entries) ->
      let parse e =
        match (Json.member "fingerprint" e, Json.member "count" e) with
        | Some (Json.String fp), Some (Json.Int n) when n > 0 ->
          let note =
            match Json.member "note" e with
            | Some (Json.String s) -> Some s
            | _ -> None
          in
          Ok (fp, { count = n; note })
        | _ -> Error "baseline entry missing fingerprint/positive count"
      in
      List.fold_left
        (fun acc e ->
          match (acc, parse e) with
          | Error _, _ -> acc
          | _, Error e -> Error e
          | Ok l, Ok entry -> Ok (entry :: l))
        (Ok []) entries
      |> Result.map (List.sort (fun (a, _) (b, _) -> compare a b))
    | _ -> Error "baseline has no entries list")
  | _ -> Error (Printf.sprintf "baseline schema is not %s" schema)

let load ~path =
  if not (Sys.file_exists path) then Ok empty
  else
    match In_channel.with_open_text path In_channel.input_all with
    | exception Sys_error e -> Error e
    | contents -> (
      match Json.of_string contents with
      | exception Failure e -> Error (path ^ ": " ^ e)
      | j -> of_json j)

let save ~path t =
  try
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc (Json.to_string_pretty (to_json t));
        Out_channel.output_char oc '\n');
    Ok ()
  with Sys_error e -> Error e
