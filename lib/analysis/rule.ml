type t = {
  id : string;
  name : string;
  severity : Finding.severity;
  doc : string;
  check : Loader.t -> Finding.t list;
}

let make_finding ~rule ?severity ~(unit : Loader.unit_info) ~loc ~symbol
    ~detail message =
  let line, col = Tast_util.line_col loc in
  {
    Finding.rule = rule.id;
    rule_name = rule.name;
    severity = Option.value ~default:rule.severity severity;
    file = unit.source;
    line;
    col;
    symbol;
    detail;
    message;
  }
