(** R3 — concurrency discipline.

    Module-level [ref] cells are data races waiting for the pool:
    worker domains run task closures that may touch any module their
    library depends on.  The rule computes the set of units reachable
    (over [cmt] imports, transitively) from any unit that calls a
    [Ptrng_exec.Pool] combinator, and flags top-level [let x = ref ...]
    bindings there as errors — unless the unit is allowlisted
    ([lib/exec], [lib/telemetry], whose state is [Atomic.t] or
    mutex-guarded by construction) or creates a module-level mutex
    (the cheap "has a locking discipline" signal).  Module-level refs
    in {e unreachable} in-scope units are still reported, at [info]
    severity: they are one refactor away from being shared. *)

val rule : Rule.t
(** The R3 rule ([Error] when reachable from pool tasks, [Info]
    otherwise). *)
