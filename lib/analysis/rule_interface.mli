(** R5 — interface hygiene.

    Every [.ml] under [lib/] must have an [.mli] (an unconstrained
    module surface is an accident waiting to be depended on), and
    every [val] an interface exports must carry a doc comment.
    Executables ([bin/], [bench/] mains) are exempt from the
    missing-mli check; interfaces anywhere in scope are held to the
    doc-comment bar. *)

val rule : Rule.t
(** The R5 rule ([Error] for a missing mli, [Warning] for an
    undocumented val). *)
