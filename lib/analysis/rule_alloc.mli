(** R6 — hot-path allocation hygiene: whole-array and list-building
    combinators are flagged inside [lib/noise] and [lib/osc], where the
    streaming sample pipeline must fill caller-owned buffers instead of
    allocating per chunk.  Intentional legacy batch paths are baselined
    with a note. *)

val rule : Rule.t
(** The rule instance registered in {!Rules.all}. *)
