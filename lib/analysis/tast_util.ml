(* Typedtree helpers shared by the rules.  All direct contact with
   compiler-libs data structures (OCaml 5.1 typedtree) lives here and
   in Loader; the rules only see strings, locations and callbacks. *)

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let has_suffix ~suffix s =
  let ls = String.length s and lx = String.length suffix in
  ls >= lx
  && String.sub s (ls - lx) lx = suffix
  && (ls = lx || s.[ls - lx - 1] = '.')

let is_float_type ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, [], _) -> Path.same p Predef.path_float
  | _ -> false

let line_col (loc : Location.t) =
  let p = loc.loc_start in
  (p.pos_lnum, p.pos_cnum - p.pos_bol)

let ident_name (e : Typedtree.expression) =
  match e.exp_desc with
  | Typedtree.Texp_ident (p, _, _) -> Some (Path.name p)
  | _ -> None

let head_ident (e : Typedtree.expression) =
  match e.exp_desc with
  | Typedtree.Texp_apply (f, _) -> ident_name f
  | _ -> ident_name e

let rec pattern_names (p : Typedtree.pattern) =
  match p.pat_desc with
  | Typedtree.Tpat_var (id, _) -> [ Ident.name id ]
  | Typedtree.Tpat_alias (inner, id, _) -> Ident.name id :: pattern_names inner
  | Typedtree.Tpat_tuple ps -> List.concat_map pattern_names ps
  | Typedtree.Tpat_construct (_, _, ps, _) -> List.concat_map pattern_names ps
  | Typedtree.Tpat_record (fields, _) ->
    List.concat_map (fun (_, _, sub) -> pattern_names sub) fields
  | Typedtree.Tpat_array ps -> List.concat_map pattern_names ps
  | Typedtree.Tpat_or (a, b, _) -> pattern_names a @ pattern_names b
  | Typedtree.Tpat_variant (_, Some sub, _) -> pattern_names sub
  | Typedtree.Tpat_lazy sub -> pattern_names sub
  | _ -> []

(* First name a structure item binds, used as the "enclosing symbol"
   of every expression under it. *)
let item_symbol (item : Typedtree.structure_item) =
  match item.str_desc with
  | Typedtree.Tstr_value (_, vbs) -> (
    match List.concat_map (fun vb -> pattern_names vb.Typedtree.vb_pat) vbs with
    | name :: _ -> name
    | [] -> "")
  | Typedtree.Tstr_module mb -> (
    match mb.mb_id with Some id -> Ident.name id | None -> "")
  | _ -> ""

let iter_structure_expressions str f =
  List.iter
    (fun (item : Typedtree.structure_item) ->
      let symbol = item_symbol item in
      let it =
        {
          Tast_iterator.default_iterator with
          expr =
            (fun sub e ->
              f ~symbol e;
              Tast_iterator.default_iterator.expr sub e);
        }
      in
      it.structure_item it item)
    str.Typedtree.str_items

let iter_toplevel_bindings str f =
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Typedtree.Tstr_value (_, vbs) ->
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            let symbol =
              match pattern_names vb.vb_pat with n :: _ -> n | [] -> ""
            in
            f ~symbol vb)
          vbs
      | _ -> ())
    str.Typedtree.str_items

let is_doc_attribute (a : Parsetree.attribute) =
  a.attr_name.txt = "ocaml.doc" || a.attr_name.txt = "doc"

let signature_values (sg : Typedtree.signature) =
  List.filter_map
    (fun (item : Typedtree.signature_item) ->
      match item.sig_desc with
      | Typedtree.Tsig_value vd ->
        let documented =
          List.exists is_doc_attribute vd.val_val.Types.val_attributes
        in
        Some (Ident.name vd.val_id, documented, item.sig_loc)
      | _ -> None)
    sg.sig_items

let int_literal_bound_idents str =
  let acc = ref [] in
  let record (vb : Typedtree.value_binding) =
    match vb.vb_expr.exp_desc with
    | Typedtree.Texp_constant (Asttypes.Const_int _) ->
      acc := pattern_names vb.vb_pat @ !acc
    | _ -> ()
  in
  let it =
    {
      Tast_iterator.default_iterator with
      value_binding =
        (fun sub vb ->
          record vb;
          Tast_iterator.default_iterator.value_binding sub vb);
    }
  in
  it.structure it str;
  !acc

let comparison_heads =
  [
    "Stdlib.<="; "Stdlib.<"; "Stdlib.>="; "Stdlib.>"; "Stdlib.=";
    "Stdlib.<>"; "Stdlib.max"; "Stdlib.min";
  ]

let guarded_idents (item : Typedtree.structure_item) =
  let acc = ref [] in
  let is_int_const (e : Typedtree.expression) =
    match e.exp_desc with
    | Typedtree.Texp_constant (Asttypes.Const_int _) -> true
    | _ -> false
  in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          (match e.Typedtree.exp_desc with
           | Typedtree.Texp_apply (f, args) -> (
             match ident_name f with
             | Some head when List.mem head comparison_heads -> (
               let exprs = List.filter_map snd args in
               match exprs with
               | [ a; b ] when is_int_const a || is_int_const b ->
                 List.iter
                   (fun operand ->
                     match ident_name operand with
                     | Some n -> acc := n :: !acc
                     | None -> ())
                   exprs
               | _ -> ())
             | _ -> ())
           | _ -> ());
          Tast_iterator.default_iterator.expr sub e);
    }
  in
  it.structure_item it item;
  !acc
