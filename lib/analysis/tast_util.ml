(* Typedtree helpers shared by the rules.  All direct contact with
   compiler-libs data structures (OCaml 5.1 typedtree) lives here and
   in Loader; the rules only see strings, locations and callbacks. *)

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let has_suffix ~suffix s =
  let ls = String.length s and lx = String.length suffix in
  ls >= lx
  && String.sub s (ls - lx) lx = suffix
  && (ls = lx || s.[ls - lx - 1] = '.')

(* Dune mangles the modules of a wrapped library: the compilation unit
   of [Ptrng_noise.Source] is [Ptrng_noise__Source], and resolved paths
   in the typedtree may use either spelling.  Normalizing "__" to "."
   gives every definition and reference one canonical name, so the call
   graph can match them up.  (User identifiers containing "__" would be
   mangled too — the repo has none, and the lint only ever compares
   normalized forms against each other, so the approximation is safe.) *)
let normalize_path s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && s.[!i] = '_' && s.[!i + 1] = '_' then begin
      Buffer.add_char b '.';
      i := !i + 2
    end
    else begin
      Buffer.add_char b s.[!i];
      incr i
    end
  done;
  Buffer.contents b

let is_float_type ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, [], _) -> Path.same p Predef.path_float
  | _ -> false

let line_col (loc : Location.t) =
  let p = loc.loc_start in
  (p.pos_lnum, p.pos_cnum - p.pos_bol)

let ident_name (e : Typedtree.expression) =
  match e.exp_desc with
  | Typedtree.Texp_ident (p, _, _) -> Some (Path.name p)
  | _ -> None

let head_ident (e : Typedtree.expression) =
  match e.exp_desc with
  | Typedtree.Texp_apply (f, _) -> ident_name f
  | _ -> ident_name e

let rec pattern_names (p : Typedtree.pattern) =
  match p.pat_desc with
  | Typedtree.Tpat_var (id, _) -> [ Ident.name id ]
  | Typedtree.Tpat_alias (inner, id, _) -> Ident.name id :: pattern_names inner
  | Typedtree.Tpat_tuple ps -> List.concat_map pattern_names ps
  | Typedtree.Tpat_construct (_, _, ps, _) -> List.concat_map pattern_names ps
  | Typedtree.Tpat_record (fields, _) ->
    List.concat_map (fun (_, _, sub) -> pattern_names sub) fields
  | Typedtree.Tpat_array ps -> List.concat_map pattern_names ps
  | Typedtree.Tpat_or (a, b, _) -> pattern_names a @ pattern_names b
  | Typedtree.Tpat_variant (_, Some sub, _) -> pattern_names sub
  | Typedtree.Tpat_lazy sub -> pattern_names sub
  | _ -> []

(* First name a structure item binds, used as the "enclosing symbol"
   of every expression under it. *)
let item_symbol (item : Typedtree.structure_item) =
  match item.str_desc with
  | Typedtree.Tstr_value (_, vbs) -> (
    match List.concat_map (fun vb -> pattern_names vb.Typedtree.vb_pat) vbs with
    | name :: _ -> name
    | [] -> "")
  | Typedtree.Tstr_module mb -> (
    match mb.mb_id with Some id -> Ident.name id | None -> "")
  | _ -> ""

let iter_structure_expressions str f =
  List.iter
    (fun (item : Typedtree.structure_item) ->
      let symbol = item_symbol item in
      let it =
        {
          Tast_iterator.default_iterator with
          expr =
            (fun sub e ->
              f ~symbol e;
              Tast_iterator.default_iterator.expr sub e);
        }
      in
      it.structure_item it item)
    str.Typedtree.str_items

let iter_toplevel_bindings str f =
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Typedtree.Tstr_value (_, vbs) ->
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            let symbol =
              match pattern_names vb.vb_pat with n :: _ -> n | [] -> ""
            in
            f ~symbol vb)
          vbs
      | _ -> ())
    str.Typedtree.str_items

let has_inline_attr (attrs : Parsetree.attributes) =
  List.exists
    (fun (a : Parsetree.attribute) ->
      a.attr_name.txt = "inline" || a.attr_name.txt = "ocaml.inline")
    attrs

(* Idents bound by any pattern inside [e] — let bindings, function
   parameters, match cases — as [(Ident.unique_name, Ident.name)].
   Stamped names make the set shadow-proof. *)
let expr_bound_idents (e : Typedtree.expression) =
  let acc = ref [] in
  let record id = acc := (Ident.unique_name id, Ident.name id) :: !acc in
  let it =
    {
      Tast_iterator.default_iterator with
      pat =
        (fun (type k) sub (p : k Typedtree.general_pattern) ->
          List.iter record (Typedtree.pat_bound_idents p);
          Tast_iterator.default_iterator.pat sub p);
    }
  in
  it.expr it e;
  !acc

(* Every use of a locally bound ident inside [e]:
   [(unique_name, display_name, type, loc)].  Module-level and external
   references resolve to [Path.Pdot] and are not included. *)
let expr_local_uses (e : Typedtree.expression) =
  let acc = ref [] in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          (match e.Typedtree.exp_desc with
           | Typedtree.Texp_ident (Path.Pident id, _, _) ->
             acc :=
               (Ident.unique_name id, Ident.name id, e.exp_type, e.exp_loc)
               :: !acc
           | _ -> ());
          Tast_iterator.default_iterator.expr sub e);
    }
  in
  it.expr it e;
  List.rev !acc

(* Free variables of [lambda] relative to [enclosing]: uses inside the
   lambda of idents bound in the enclosing function body but not inside
   the lambda itself.  These are exactly the captures that force a heap
   closure in classic (non-flambda) ocamlopt — a lambda with no captures
   compiles to a static closure and never allocates. *)
let lambda_captures ~enclosing_bound (lambda : Typedtree.expression) =
  let inside = expr_bound_idents lambda in
  let is_outer u =
    List.mem_assoc u enclosing_bound && not (List.mem_assoc u inside)
  in
  let seen = ref [] in
  List.filter_map
    (fun (u, display, ty, loc) ->
      if is_outer u && not (List.mem u !seen) then begin
        seen := u :: !seen;
        Some (display, ty, loc)
      end
      else None)
    (expr_local_uses lambda)

(* Mirrors the compiler's [Simplif.eliminate_ref] + cmmgen unboxing: a
   [let r = ref e] whose every use is [!r], [r := _], [incr r] or
   [decr r], at the same lambda depth as the binding, is compiled to a
   mutable local variable — the cell is never allocated, and for
   float/int64/int32/nativeint contents the variable is unboxed too.
   A use under a nested lambda, or any bare use (passed, stored,
   returned), defeats the optimization.  Returns the [ref e]
   application expressions (physical nodes) of the eliminable
   bindings, so an allocation scan can skip exactly those. *)
let deref_heads = [ "Stdlib.!"; "Stdlib.:="; "Stdlib.incr"; "Stdlib.decr" ]

let eliminable_refs (root : Typedtree.expression) =
  let candidates :
      (string * (Typedtree.expression * int * bool ref)) list ref =
    ref []
  in
  let safe_nodes : Typedtree.expression list ref = ref [] in
  let depth = ref 0 in
  let head_is (f : Typedtree.expression) names =
    match ident_name f with
    | Some n -> List.exists (fun h -> has_suffix ~suffix:h n) names
    | None -> false
  in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          match e.Typedtree.exp_desc with
          | Typedtree.Texp_function _ ->
            incr depth;
            Tast_iterator.default_iterator.expr sub e;
            decr depth
          | Typedtree.Texp_let (Asttypes.Nonrecursive, vbs, _) ->
            List.iter
              (fun (vb : Typedtree.value_binding) ->
                match (vb.vb_pat.pat_desc, vb.vb_expr.exp_desc) with
                | ( Typedtree.Tpat_var (id, _),
                    Typedtree.Texp_apply (f, [ _ ]) )
                  when head_is f [ "Stdlib.ref" ] ->
                  candidates :=
                    (Ident.unique_name id, (vb.vb_expr, !depth, ref false))
                    :: !candidates
                | _ -> ())
              vbs;
            Tast_iterator.default_iterator.expr sub e
          | Typedtree.Texp_apply (f, args) when head_is f deref_heads ->
            (match List.filter_map snd args with
             | ({ exp_desc = Typedtree.Texp_ident (Path.Pident _, _, _); _ }
                as a)
               :: _ ->
               safe_nodes := a :: !safe_nodes
             | _ -> ());
            Tast_iterator.default_iterator.expr sub e
          | Typedtree.Texp_ident (Path.Pident id, _, _) -> (
            match List.assoc_opt (Ident.unique_name id) !candidates with
            | Some (_, cdepth, bad) ->
              if not (List.memq e !safe_nodes && !depth = cdepth) then
                bad := true
            | None -> ())
          | _ -> Tast_iterator.default_iterator.expr sub e);
    }
  in
  it.expr it root;
  List.filter_map
    (fun (_, (rhs, _, bad)) -> if !bad then None else Some rhs)
    !candidates

let is_doc_attribute (a : Parsetree.attribute) =
  a.attr_name.txt = "ocaml.doc" || a.attr_name.txt = "doc"

let signature_values (sg : Typedtree.signature) =
  List.filter_map
    (fun (item : Typedtree.signature_item) ->
      match item.sig_desc with
      | Typedtree.Tsig_value vd ->
        let documented =
          List.exists is_doc_attribute vd.val_val.Types.val_attributes
        in
        Some (Ident.name vd.val_id, documented, item.sig_loc)
      | _ -> None)
    sg.sig_items

let int_literal_bound_idents str =
  let acc = ref [] in
  let record (vb : Typedtree.value_binding) =
    match vb.vb_expr.exp_desc with
    | Typedtree.Texp_constant (Asttypes.Const_int _) ->
      acc := pattern_names vb.vb_pat @ !acc
    | _ -> ()
  in
  let it =
    {
      Tast_iterator.default_iterator with
      value_binding =
        (fun sub vb ->
          record vb;
          Tast_iterator.default_iterator.value_binding sub vb);
    }
  in
  it.structure it str;
  !acc

let comparison_heads =
  [
    "Stdlib.<="; "Stdlib.<"; "Stdlib.>="; "Stdlib.>"; "Stdlib.=";
    "Stdlib.<>"; "Stdlib.max"; "Stdlib.min";
  ]

let guarded_idents (item : Typedtree.structure_item) =
  let acc = ref [] in
  let is_int_const (e : Typedtree.expression) =
    match e.exp_desc with
    | Typedtree.Texp_constant (Asttypes.Const_int _) -> true
    | _ -> false
  in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          (match e.Typedtree.exp_desc with
           | Typedtree.Texp_apply (f, args) -> (
             match ident_name f with
             | Some head when List.mem head comparison_heads -> (
               let exprs = List.filter_map snd args in
               match exprs with
               | [ a; b ] when is_int_const a || is_int_const b ->
                 List.iter
                   (fun operand ->
                     match ident_name operand with
                     | Some n -> acc := n :: !acc
                     | None -> ())
                   exprs
               | _ -> ())
             | _ -> ())
           | _ -> ());
          Tast_iterator.default_iterator.expr sub e);
    }
  in
  it.structure_item it item;
  !acc
