(* R3: no naked module-level mutable state where worker domains can
   reach it.  Reachability is over-approximated by the compilation
   units' import closure seeded at every Pool-combinator caller —
   coarse, but sound for "could a task closure touch this module". *)

let allowlist = [ "lib/exec"; "lib/telemetry" ]

let pool_entry_points =
  [
    "Pool.run_tasks"; "Pool.parallel_map"; "Pool.parallel_mapi";
    "Pool.parallel_iter"; "Pool.parallel_filter_map"; "Pool.parallel_reduce";
    "Pool.parallel_init_floats"; "Pool.parallel_map_streams"; "Pool.run";
  ]

let uses_pool (unit : Loader.unit_info) =
  match unit.impl with
  | None -> false
  | Some str ->
    let found = ref false in
    Tast_util.iter_structure_expressions str (fun ~symbol:_ e ->
        match Tast_util.ident_name e with
        | Some name ->
          if
            List.exists
              (fun suffix -> Tast_util.has_suffix ~suffix name)
              pool_entry_points
          then found := true
        | None -> ());
    !found

(* Transitive closure of cmt imports, restricted to loaded units. *)
let reachable_modnames (loader : Loader.t) =
  let by_modname = Hashtbl.create 64 in
  List.iter
    (fun (u : Loader.unit_info) -> Hashtbl.replace by_modname u.modname u)
    loader.units;
  let seen = Hashtbl.create 64 in
  let rec visit modname =
    if not (Hashtbl.mem seen modname) then begin
      Hashtbl.add seen modname ();
      match Hashtbl.find_opt by_modname modname with
      | Some u -> List.iter visit u.imports
      | None -> ()
    end
  in
  List.iter
    (fun (u : Loader.unit_info) -> if uses_pool u then visit u.modname)
    loader.units;
  seen

let creates_toplevel_mutex (str : Typedtree.structure) =
  let found = ref false in
  Tast_util.iter_toplevel_bindings str (fun ~symbol:_ vb ->
      match Tast_util.head_ident vb.vb_expr with
      | Some ("Stdlib.Mutex.create" | "Mutex.create") -> found := true
      | _ -> ());
  !found

let toplevel_refs (str : Typedtree.structure) =
  let acc = ref [] in
  Tast_util.iter_toplevel_bindings str (fun ~symbol vb ->
      match Tast_util.head_ident vb.vb_expr with
      | Some ("Stdlib.ref" | "ref") -> acc := (symbol, vb.vb_loc) :: !acc
      | _ -> ());
  List.rev !acc

let check_unit ~rule ~reachable (unit : Loader.unit_info) =
  match unit.impl with
  | None -> []
  | Some str ->
    if creates_toplevel_mutex str then []
    else
      let is_reachable = Hashtbl.mem reachable unit.modname in
      List.map
        (fun (symbol, loc) ->
          let name = if symbol = "" then "_" else symbol in
          if is_reachable then
            Rule.make_finding ~rule ~unit ~loc ~symbol ~detail:("ref-" ^ name)
              (Printf.sprintf
                 "module-level ref %s is reachable from Pool task closures; \
                  use Atomic.t or guard it with a mutex"
                 name)
          else
            Rule.make_finding ~rule ~severity:Finding.Info ~unit ~loc ~symbol
              ~detail:("ref-" ^ name)
              (Printf.sprintf
                 "module-level ref %s (not currently pool-reachable); prefer \
                  Atomic.t before it becomes shared"
                 name))
        (toplevel_refs str)

let rec rule =
  {
    Rule.id = "R3";
    name = "shared-state";
    severity = Finding.Error;
    doc =
      "flag module-level refs in units reachable from Ptrng_exec.Pool task \
       closures that are neither Atomic.t nor mutex-guarded";
    check =
      (fun loader ->
        let reachable = reachable_modnames loader in
        List.concat_map
          (fun unit ->
            if Loader.in_dirs ~dirs:allowlist unit then []
            else check_unit ~rule ~reachable unit)
          loader.Loader.units);
  }
