(* R1: no ambient nondeterminism.  The typed tree gives us resolved
   paths, so "Random.int" is seen as "Stdlib.Random.int" whatever was
   opened or aliased at the use site. *)

(* lib/monitor is the live health observatory: wall-clock-coupled by
   design (HTTP listener, dashboard refresh, timestamped series), so
   it sits beside the runtime layers the rule exempts. *)
let allowlist = [ "lib/exec"; "lib/monitor"; "lib/telemetry" ]

let forbidden_exact =
  [
    ("Stdlib.Sys.time", "process-time clock");
    ("Sys.time", "process-time clock");
    ("Unix.gettimeofday", "wall clock");
    ("Unix.time", "wall clock");
    ("Stdlib.Hashtbl.hash", "hash of arbitrary values");
    ("Hashtbl.hash", "hash of arbitrary values");
    ("Stdlib.Hashtbl.iter", "hash-order iteration");
    ("Stdlib.Hashtbl.fold", "hash-order iteration");
    ("Stdlib.Domain.self", "domain-id-dependent value");
    ("Domain.self", "domain-id-dependent value");
  ]

let forbidden_prefixes =
  [ ("Stdlib.Random.", "ambient global RNG"); ("Random.", "ambient global RNG") ]

let classify name =
  match List.assoc_opt name forbidden_exact with
  | Some why -> Some why
  | None ->
    List.find_map
      (fun (prefix, why) ->
        if Tast_util.has_prefix ~prefix name then Some why else None)
      forbidden_prefixes

let check_unit ~rule (unit : Loader.unit_info) =
  match unit.impl with
  | None -> []
  | Some str ->
    let acc = ref [] in
    Tast_util.iter_structure_expressions str (fun ~symbol e ->
        match Tast_util.ident_name e with
        | Some name -> (
          match classify name with
          | Some why ->
            acc :=
              Rule.make_finding ~rule ~unit ~loc:e.exp_loc ~symbol ~detail:name
                (Printf.sprintf
                   "nondeterministic primitive %s (%s); use Ptrng_prng.Rng \
                    streams or Ptrng_telemetry.Clock instead"
                   name why)
              :: !acc
          | None -> ())
        | None -> ());
    !acc

let rec rule =
  {
    Rule.id = "R1";
    name = "determinism";
    severity = Finding.Error;
    doc =
      "forbid Stdlib.Random, Sys.time, Unix.gettimeofday, Hashtbl hashing \
       and Domain.self outside lib/exec, lib/monitor and lib/telemetry";
    check =
      (fun loader ->
        List.concat_map
          (fun unit ->
            if Loader.in_dirs ~dirs:allowlist unit then []
            else check_unit ~rule unit)
          loader.Loader.units);
  }
