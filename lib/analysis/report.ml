module Json = Ptrng_telemetry.Json

let schema = "ptrng-lint/1"

type t = {
  findings : Finding.t list;
  suppressed : int;
  units : int;
  rules : string list;
}

let make ~rules ~units ~suppressed findings =
  {
    findings = List.sort Finding.compare findings;
    suppressed;
    units;
    rules = List.map (fun (r : Rule.t) -> r.id) rules;
  }

let count_severity sev t =
  List.length (List.filter (fun (f : Finding.t) -> f.severity = sev) t.findings)

let errors t = count_severity Finding.Error t
let warnings t = count_severity Finding.Warning t
let infos t = count_severity Finding.Info t

let to_json t =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("units", Json.Int t.units);
      ("rules", Json.List (List.map (fun r -> Json.String r) t.rules));
      ( "counts",
        Json.Obj
          [
            ("error", Json.Int (errors t));
            ("warning", Json.Int (warnings t));
            ("info", Json.Int (infos t));
            ("suppressed", Json.Int t.suppressed);
          ] );
      ("findings", Json.List (List.map Finding.to_json t.findings));
    ]

let validate j =
  match Json.member "schema" j with
  | Some (Json.String s) when s = schema -> (
    match (Json.member "units" j, Json.member "findings" j) with
    | Some (Json.Int units), Some (Json.List findings) ->
      let rules =
        match Json.member "rules" j with
        | Some (Json.List l) ->
          List.filter_map
            (function Json.String s -> Some s | _ -> None)
            l
        | _ -> []
      in
      let suppressed =
        match Option.bind (Json.member "counts" j) (Json.member "suppressed") with
        | Some (Json.Int n) -> n
        | _ -> 0
      in
      List.fold_left
        (fun acc f ->
          match (acc, Finding.of_json f) with
          | Error _, _ -> acc
          | _, Error e -> Error e
          | Ok l, Ok finding -> Ok (finding :: l))
        (Ok []) findings
      |> Result.map (fun parsed ->
             {
               findings = List.rev parsed;
               suppressed;
               units;
               rules;
             })
    | _ -> Error "lint report missing units/findings")
  | _ -> Error (Printf.sprintf "lint report schema is not %s" schema)

let summary_line t =
  Printf.sprintf
    "ptrng-lint: %d errors, %d warnings, %d info (%d baselined) over %d \
     units, rules %s"
    (errors t) (warnings t) (infos t) t.suppressed t.units
    (String.concat "," t.rules)

let pp ppf t =
  List.iter (fun f -> Format.fprintf ppf "%a@." Finding.pp f) t.findings;
  Format.fprintf ppf "%s@." (summary_line t)
