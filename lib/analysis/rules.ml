let all =
  [
    Rule_determinism.rule;
    Rule_float.rule;
    Rule_state.rule;
    Rule_span.rule;
    Rule_interface.rule;
    Rule_alloc.rule;
    Rule_hotpath.rule;
    Rule_rng.rule;
    Rule_schema.rule;
  ]

let find id =
  let id = String.uppercase_ascii id in
  List.find_opt (fun (r : Rule.t) -> r.id = id) all

let select spec =
  match String.lowercase_ascii (String.trim spec) with
  | "" | "all" -> Ok all
  | _ ->
    let ids =
      List.filter
        (fun s -> s <> "")
        (List.map String.trim (String.split_on_char ',' spec))
    in
    let missing = List.filter (fun id -> find id = None) ids in
    if missing <> [] then
      Error
        (Printf.sprintf "unknown rule(s) %s; known: %s"
           (String.concat ", " missing)
           (String.concat ", " (List.map (fun (r : Rule.t) -> r.id) all)))
    else
      Ok
        (List.filter
           (fun (r : Rule.t) ->
             List.exists
               (fun id -> String.uppercase_ascii id = r.id)
               ids)
           all)
