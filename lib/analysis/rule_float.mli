(** R2 — float safety.

    Scoped to [lib/measure] and [lib/model], where the paper's
    variance-curve fits ([sigma²_N = a·N + b·N²]) live.  Two checks:

    - structural equality ([=], [<>], [compare]) with a float-typed
      operand — exact float comparison is almost always a latent
      tolerance bug; use {!Ptrng_stats.Float_cmp};
    - division [x /. float_of_int n] where [n] is a plain local that
      is neither bound to an integer literal nor compared against one
      (or clamped with [max]/[min]) inside the same top-level
      definition — i.e. a possibly-zero denominator nothing
      validates. *)

val rule : Rule.t
(** The R2 rule (severity [Warning]). *)
