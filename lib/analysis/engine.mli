(** Orchestration: run a rule set over loaded units and fold the
    result through a baseline into a {!Report.t}. *)

val run : rules:Rule.t list -> Loader.t -> Finding.t list
(** Every selected rule over every unit, sorted in report order. *)

val lint :
  rules:Rule.t list ->
  baseline:Baseline.t ->
  Loader.t ->
  Report.t * Finding.t list
(** [(report of fresh findings, all findings pre-baseline)] — the
    second component is what [--update-baseline] snapshots. *)
