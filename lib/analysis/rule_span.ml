(* R4: paired calls must sit under an exception-safe wrapper.  The
   check is syntactic over the typed tree: a protect application's
   whole argument subtree is sanctioned, everything else is not. *)

let paired_suffixes =
  [ "Span.enter"; "Span.exit"; "Mutex.lock"; "Mutex.unlock" ]

let protect_heads =
  [ "Stdlib.Fun.protect"; "Fun.protect"; "Stdlib.Mutex.protect"; "Mutex.protect" ]

let is_paired name =
  List.exists (fun suffix -> Tast_util.has_suffix ~suffix name) paired_suffixes

(* The closure-free spelling used on zero-allocation hot entries —
   [Mutex.lock m; (try body with e -> Mutex.unlock m; raise e);
   Mutex.unlock m] — is exception-safe without a protect wrapper
   ([Mutex.protect] builds a fresh closure per call, which R7 forbids
   on those entries).  Sanction it by its shape: a [try] whose handler
   both releases the pair and re-raises. *)
let closing_suffixes = [ "Mutex.unlock"; "Span.exit" ]

let handler_releases_and_reraises (cases : Typedtree.value Typedtree.case list) =
  List.exists
    (fun (c : Typedtree.value Typedtree.case) ->
      let releases = ref false and reraises = ref false in
      let it_ref = ref Tast_iterator.default_iterator in
      let expr _sub (e : Typedtree.expression) =
        (match Tast_util.ident_name e with
        | Some name ->
          if
            List.exists
              (fun suffix -> Tast_util.has_suffix ~suffix name)
              closing_suffixes
          then releases := true;
          if Tast_util.has_suffix ~suffix:"Stdlib.raise" name then
            reraises := true
        | None -> ());
        Tast_iterator.default_iterator.expr !it_ref e
      in
      it_ref := { Tast_iterator.default_iterator with expr };
      !it_ref.expr !it_ref c.c_rhs;
      !releases && !reraises)
    cases

(* Granularity: the top-level definition.  The safe idioms open the
   pair and either hand the closing half to a protect wrapper
   ([Span.enter ...; Fun.protect ~finally:(fun () -> Span.exit ...)])
   or release-and-reraise by hand, so a definition that applies a
   protect head or contains the manual idiom anywhere is sanctioned;
   one that uses paired calls with neither in sight cannot be
   exception-safe. *)
let item_uses_protect (item : Typedtree.structure_item) =
  let found = ref false in
  let it_ref = ref Tast_iterator.default_iterator in
  let expr _sub (e : Typedtree.expression) =
    (match Tast_util.ident_name e with
    | Some name when List.mem name protect_heads -> found := true
    | _ -> ());
    (match e.exp_desc with
    | Typedtree.Texp_try (_, cases) when handler_releases_and_reraises cases ->
      found := true
    | _ -> ());
    Tast_iterator.default_iterator.expr !it_ref e
  in
  it_ref := { Tast_iterator.default_iterator with expr };
  !it_ref.structure_item !it_ref item;
  !found

let check_unit ~rule (unit : Loader.unit_info) =
  match unit.impl with
  | None -> []
  | Some str ->
    let acc = ref [] in
    List.iter
      (fun (item : Typedtree.structure_item) ->
        if not (item_uses_protect item) then begin
          let symbol =
            match item.str_desc with
            | Typedtree.Tstr_value (_, vb :: _) -> (
              match Tast_util.pattern_names vb.vb_pat with
              | n :: _ -> n
              | [] -> "")
            | _ -> ""
          in
          let it_ref = ref Tast_iterator.default_iterator in
          let expr _sub (e : Typedtree.expression) =
            (match e.exp_desc with
            | Typedtree.Texp_ident _ -> (
              match Tast_util.ident_name e with
              | Some name when is_paired name ->
                acc :=
                  Rule.make_finding ~rule ~unit ~loc:e.exp_loc ~symbol
                    ~detail:name
                    (Printf.sprintf
                       "%s outside Fun.protect/Mutex.protect — an exception \
                        leaks the open span or held lock"
                       name)
                  :: !acc
              | _ -> ())
            | _ -> ());
            Tast_iterator.default_iterator.expr !it_ref e
          in
          it_ref := { Tast_iterator.default_iterator with expr };
          !it_ref.structure_item !it_ref item
        end)
      str.Typedtree.str_items;
    !acc

let rec rule =
  {
    Rule.id = "R4";
    name = "span-safety";
    severity = Finding.Error;
    doc =
      "flag Span.enter/exit and Mutex.lock/unlock calls not wrapped in \
       Fun.protect or Mutex.protect";
    check =
      (fun loader ->
        List.concat_map (fun unit -> check_unit ~rule unit) loader.Loader.units);
  }
